package pftk

// Golden regression values: the model evaluated at the parameter points
// the paper names in its figure captions. These pin the arithmetic of the
// whole eq. (32)/(37) stack — any change to the formulas that moves these
// numbers is a regression, not a refactor.

import (
	"fmt"
	"testing"
)

func TestGoldenFigureCaptions(t *testing.T) {
	cases := []struct {
		name string
		pr   Params
		p    float64
		fn   func(float64, Params) float64
		want string // %.6g
	}{
		// Fig. 12/13 parameters: RTT=0.47, T0=3.2, Wm=12.
		{"fig12 B(0.01)", NewParams(0.47, 3.2, 12), 0.01, SendRate, "15.5585"},
		{"fig12 B(0.1)", NewParams(0.47, 3.2, 12), 0.1, SendRate, "2.4592"},
		{"fig13 T(0.01)", NewParams(0.47, 3.2, 12), 0.01, Throughput, "14.7193"},
		{"fig13 T(0.1)", NewParams(0.47, 3.2, 12), 0.1, Throughput, "2.07773"},
		// Fig. 7(a) caption: manic-baskerville, RTT=0.243, T0=2.495, Wm=6.
		{"fig7a B(0.0126)", NewParams(0.243, 2.495, 6), 0.0126, SendRate, "15.7946"},
		// Fig. 7(c): pif-manic, RTT=0.257, T0=1.454, Wm=33.
		{"fig7c B(0.0415)", NewParams(0.257, 1.454, 33), 0.0415, SendRate, "10.8119"},
		// Fig. 11 caption: manic-p5, RTT=4.726, T0=18.407, Wm=22.
		{"fig11 B(0.02)", NewParams(4.726, 18.407, 22), 0.02, SendRate, "1.08019"},
		// Unconstrained approximations.
		{"approx B(0.02)", Params{RTT: 0.2, T0: 2, B: 2}, 0.02, SendRateApprox, "21.0327"},
		{"tdonly B(0.02)", Params{RTT: 0.2, T0: 2, B: 2}, 0.02, SendRateTDOnly, "30.6186"},
	}
	for _, c := range cases {
		got := fmt.Sprintf("%.6g", c.fn(c.p, c.pr))
		if got != c.want {
			t.Errorf("%s = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestGoldenIntermediates(t *testing.T) {
	check := func(name string, got float64, want string) {
		if s := fmt.Sprintf("%.6g", got); s != want {
			t.Errorf("%s = %s, want %s", name, s, want)
		}
	}
	pr := NewParams(0.2, 2.0, 12)
	check("full B(0.02) wm12", SendRate(0.02, pr), "20.8728")
	check("full B(0.2) wm12", SendRate(0.2, pr), "2.01869")
	check("friendly(0) wm12", FriendlyRate(0, pr), "60")
}
