package pftk

import (
	"math"
	"testing"
)

func TestFacadeModelFunctions(t *testing.T) {
	pr := NewParams(0.2, 2.0, 12)
	p := 0.02
	full := SendRate(p, pr)
	if full <= 0 || math.IsInf(full, 0) {
		t.Fatalf("SendRate = %g", full)
	}
	if a := SendRateApprox(p, pr); a <= 0 {
		t.Errorf("approx = %g", a)
	}
	td := SendRateTDOnly(p, pr)
	if td <= full {
		t.Errorf("TD-only %g should exceed full %g at 2%% loss with Wm=12", td, full)
	}
	tput := Throughput(p, pr)
	if tput > full {
		t.Errorf("throughput %g above send rate %g", tput, full)
	}
}

func TestFacadeModelDispatch(t *testing.T) {
	pr := NewParams(0.2, 2.0, 12)
	for _, m := range []Model{ModelFull, ModelApprox, ModelTDOnly, ModelThroughput, ModelNoTimeout} {
		if r := m.Rate(0.05, pr); !(r > 0) {
			t.Errorf("%v rate = %g", m, r)
		}
	}
}

func TestFacadeInverse(t *testing.T) {
	pr := NewParams(0.2, 2.0, 0)
	rate := SendRate(0.03, pr)
	p, err := LossRateFor(rate, pr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.03) > 1e-4 {
		t.Errorf("inverse gave %g, want 0.03", p)
	}
	if f := FriendlyRate(0, pr); math.IsInf(f, 0) {
		t.Error("FriendlyRate must be finite")
	}
}

func TestFacadeCurve(t *testing.T) {
	pr := NewParams(0.2, 2.0, 12)
	c := Curve(ModelFull, pr, 1e-3, 0.3, 10)
	if len(c) != 10 {
		t.Fatalf("curve length %d", len(c))
	}
}

func TestSimulateLossless(t *testing.T) {
	res := Simulate(SimConfig{RTT: 0.1, Wm: 8, Duration: 30, Seed: 1})
	if res.Stats.Retransmits != 0 {
		t.Errorf("lossless sim retransmitted %d", res.Stats.Retransmits)
	}
	ceiling := 8 / 0.1
	if r := res.SendRate(); r < 0.7*ceiling || r > 1.05*ceiling {
		t.Errorf("rate %g, want near %g", r, ceiling)
	}
}

func TestSimulateMatchesModel(t *testing.T) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.02, Wm: 64, Duration: 2000, Seed: 7, MinRTO: 1})
	sum := Analyze(res.Trace)
	if sum.LossIndications == 0 {
		t.Fatal("no loss indications")
	}
	pr := Params{RTT: sum.MeanRTT, T0: sum.MeanT0, Wm: 64, B: 2}
	if pr.RTT <= 0 {
		pr.RTT = 0.1
	}
	if pr.T0 <= 0 {
		pr.T0 = 1
	}
	pred := SendRate(sum.P, pr)
	if ratio := res.SendRate() / pred; ratio < 0.5 || ratio > 2 {
		t.Errorf("measured/model = %g", ratio)
	}
}

func TestSimulateVariants(t *testing.T) {
	for _, v := range []string{"reno", "tahoe", "linux", "irix", ""} {
		res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.05, Wm: 16, Duration: 120, Seed: 3, Variant: v})
		if res.Stats.TotalSent() == 0 {
			t.Errorf("variant %q sent nothing", v)
		}
	}
}

func TestSimulateBurstLoss(t *testing.T) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.01, BurstDur: 0.2, Wm: 16, Duration: 600, Seed: 5, MinRTO: 1})
	sum := Analyze(res.Trace)
	if sum.TimeoutSequences() == 0 {
		t.Error("burst losses should produce timeout sequences")
	}
}

func TestAnalyzeEventsAndIntervals(t *testing.T) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.03, Wm: 16, Duration: 600, Seed: 9, MinRTO: 1})
	sum := Analyze(res.Trace)
	if len(sum.Events) == 0 {
		t.Fatal("no events")
	}
	ivs := Intervals(res.Trace, sum.Events, 100)
	if len(ivs) != 6 {
		t.Errorf("intervals = %d, want 6", len(ivs))
	}
	total := 0
	for _, iv := range ivs {
		total += iv.Packets
	}
	if total != res.Stats.TotalSent() {
		t.Errorf("interval packets %d != total %d", total, res.Stats.TotalSent())
	}
}

func TestRTTWindowCorrelationFacade(t *testing.T) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.02, Wm: 16, Duration: 1000, Seed: 11, MinRTO: 1})
	rho := RTTWindowCorrelation(res.Trace)
	if math.IsNaN(rho) || math.Abs(rho) > 0.4 {
		t.Errorf("correlation = %g on a constant-delay path", rho)
	}
}

func TestSimulateDefaults(t *testing.T) {
	res := Simulate(SimConfig{Seed: 13})
	if res.Duration != 100 {
		t.Errorf("default duration = %g", res.Duration)
	}
	if res.Stats.TotalSent() == 0 {
		t.Error("defaults produced no traffic")
	}
}

func TestSimulateTransferCompletes(t *testing.T) {
	dt := SimulateTransfer(SimConfig{RTT: 0.1, Wm: 16, Seed: 1}, 200, 120)
	if dt <= 0 || dt >= 120 {
		t.Errorf("lossless 200-packet transfer time = %g", dt)
	}
	// With loss it takes longer but still completes.
	lossy := SimulateTransfer(SimConfig{RTT: 0.1, LossRate: 0.05, Wm: 16, MinRTO: 1, Seed: 2}, 200, 600)
	if lossy <= dt || lossy >= 600 {
		t.Errorf("lossy transfer time = %g (lossless %g)", lossy, dt)
	}
	// Burst-loss variant exercises the TimedBurst path.
	burst := SimulateTransfer(SimConfig{RTT: 0.1, LossRate: 0.02, BurstDur: 0.15, Wm: 16, MinRTO: 1, Seed: 3}, 200, 600)
	if burst <= 0 || burst >= 600 {
		t.Errorf("burst transfer time = %g", burst)
	}
}

func TestShortFlowFacade(t *testing.T) {
	pr := NewParams(0.1, 1.2, 64)
	tN := ShortFlowTime(500, 0.02, pr)
	if tN <= 0 {
		t.Fatalf("ShortFlowTime = %g", tN)
	}
	if r := ShortFlowRate(500, 0.02, pr); math.Abs(r-500/tN) > 1e-9 {
		t.Errorf("ShortFlowRate inconsistent: %g vs %g", r, 500/tN)
	}
	// Model tracks a simulated transfer of the same size.
	sim := SimulateTransfer(SimConfig{RTT: 0.1, LossRate: 0.02, Wm: 64, MinRTO: 1, Seed: 4}, 500, 3600)
	if ratio := sim / tN; ratio < 0.3 || ratio > 3 {
		t.Errorf("simulated %g vs model %g (ratio %.2f)", sim, tN, ratio)
	}
}

func TestSendRateTDOnlyDefaultB(t *testing.T) {
	pr := Params{RTT: 0.2, T0: 2} // B unset: defaults to 2
	withDefault := SendRateTDOnly(0.02, pr)
	pr.B = 2
	explicit := SendRateTDOnly(0.02, pr)
	if withDefault != explicit {
		t.Errorf("default-B path diverges: %g vs %g", withDefault, explicit)
	}
}
