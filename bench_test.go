package pftk

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=.). Each Table/Fig benchmark runs the
// corresponding experiment end to end on an abbreviated campaign and
// reports, beyond ns/op, the headline quantity of that artifact as a
// custom metric, so `go test -bench` output doubles as a compact
// reproduction report:
//
//   - BenchmarkTable2Traces reports the fraction of traces whose loss
//     indications are timeout-dominated (paper: ~all).
//   - BenchmarkFig9Errors / Fig10 report the mean average-error of the
//     full and TD-only models (paper: full well below TD-only).
//   - BenchmarkFig11Modem reports the RTT-window correlation (paper: up
//     to 0.97).
//   - BenchmarkFig12Markov reports the mean Markov/closed-form ratio
//     (paper: ~1).
//   - BenchmarkFig13Throughput reports the max relative gap between
//     throughput and send rate.
//
// Micro-benchmarks cover the model evaluation itself and the substrates
// (simulator event rate, trace codec, analysis pipeline, Markov solve).

import (
	"bytes"
	"math"
	"strconv"
	"testing"

	"pftk/internal/analysis"
	"pftk/internal/core"
	"pftk/internal/experiments"
	"pftk/internal/hosts"
	"pftk/internal/markov"
	"pftk/internal/reno"
	"pftk/internal/roundsim"
	"pftk/internal/trace"
)

// benchOpts keeps the campaign benchmarks affordable while exercising the
// full pipeline.
func benchOpts() experiments.Options {
	return experiments.Options{
		HourTraceDuration:  300,
		ShortTraces:        5,
		ShortTraceDuration: 100,
		IntervalWidth:      100,
		Salt:               7,
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkTable1Hosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(benchOpts())
		if r.Tables[0].NumRows() != 19 {
			b.Fatal("table I rows")
		}
	}
}

func BenchmarkTable2Traces(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		c := experiments.RunCampaign(benchOpts())
		dominated := 0
		for _, run := range c.Runs {
			if run.Summary.TimeoutSequences() >= run.Summary.TD {
				dominated++
			}
		}
		frac = float64(dominated) / float64(len(c.Runs))
	}
	b.ReportMetric(frac, "timeout-dominated-frac")
}

func BenchmarkFig7Scatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(benchOpts())
		if len(r.Figures) != 6 {
			b.Fatal("fig7 panels")
		}
	}
}

func BenchmarkFig8Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchOpts())
		if len(r.Figures) != 6 {
			b.Fatal("fig8 panels")
		}
	}
}

func BenchmarkFig9Errors(b *testing.B) {
	var meanFull, meanTD float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchOpts())
		for _, s := range r.Figures[0].Series {
			sum := 0.0
			for _, y := range s.Y {
				sum += y
			}
			switch s.Name {
			case "proposed (full)":
				meanFull = sum / float64(len(s.Y))
			case "TD only":
				meanTD = sum / float64(len(s.Y))
			}
		}
	}
	b.ReportMetric(meanFull, "full-model-error")
	b.ReportMetric(meanTD, "tdonly-error")
}

func BenchmarkFig10Errors(b *testing.B) {
	var meanFull, meanTD float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchOpts())
		for _, s := range r.Figures[0].Series {
			sum := 0.0
			for _, y := range s.Y {
				sum += y
			}
			switch s.Name {
			case "proposed (full)":
				meanFull = sum / float64(len(s.Y))
			case "TD only":
				meanTD = sum / float64(len(s.Y))
			}
		}
	}
	b.ReportMetric(meanFull, "full-model-error")
	b.ReportMetric(meanTD, "tdonly-error")
}

func BenchmarkFig11Modem(b *testing.B) {
	var rho float64
	for i := 0; i < b.N; i++ {
		_, cfg := hosts.ModemPair()
		res := reno.RunConnection(cfg, 600)
		rho = analysis.RoundCorrelation(res.Trace)
	}
	b.ReportMetric(rho, "rtt-window-correlation")
}

func BenchmarkFig12Markov(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(benchOpts())
		closed, chain := r.Figures[0].Series[0].Y, r.Figures[0].Series[1].Y
		sum, n := 0.0, 0
		for j := range closed {
			if closed[j] > 0 {
				sum += chain[j] / closed[j]
				n++
			}
		}
		mean = sum / float64(n)
	}
	b.ReportMetric(mean, "markov-closed-ratio")
}

func BenchmarkFig13Throughput(b *testing.B) {
	var maxGap float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(benchOpts())
		send, tput := r.Figures[0].Series[0].Y, r.Figures[0].Series[1].Y
		maxGap = 0
		for j := range send {
			if send[j] > 0 {
				if g := 1 - tput[j]/send[j]; g > maxGap {
					maxGap = g
				}
			}
		}
	}
	b.ReportMetric(maxGap, "max-throughput-gap")
}

func BenchmarkCorrelationStudy(b *testing.B) {
	o := benchOpts()
	o.HourTraceDuration = 200
	for i := 0; i < b.N; i++ {
		r := experiments.Correlation(o)
		if r.Tables[0].NumRows() != 4 {
			b.Fatal("rows")
		}
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationTimeoutTerm quantifies what modeling timeouts buys: the
// average interval error of the full model vs the no-timeout ablation on
// the same simulated trace.
func BenchmarkAblationTimeoutTerm(b *testing.B) {
	var errFull, errNoTO float64
	for i := 0; i < b.N; i++ {
		res := Simulate(SimConfig{RTT: 0.2, LossRate: 0.05, BurstDur: 0.25, Wm: 12, MinRTO: 1, Duration: 1500, Seed: 3})
		events := analysis.InferLossEvents(res.Trace, 3)
		sum := analysis.Summarize(res.Trace, events)
		ivs := analysis.Intervals(res.Trace, events, 100)
		pr := core.Params{RTT: sum.MeanRTT, T0: sum.MeanT0, Wm: 12, B: 2}
		errFull = analysis.ModelError(ivs, core.ModelFull, pr)
		errNoTO = analysis.ModelError(ivs, core.ModelNoTimeout, pr)
	}
	b.ReportMetric(errFull, "full-error")
	b.ReportMetric(errNoTO, "no-timeout-error")
}

// BenchmarkAblationQHatForm compares the closed form of Q-hat (24) against
// the exact summation (22)-(23) in cost; the accuracy side is covered by
// tests.
func BenchmarkAblationQHatForm(b *testing.B) {
	b.Run("closed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.QHat(0.03, 24)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.QHatExact(0.03, 24)
		}
	})
}

// BenchmarkAblationBackoffCap contrasts the 2^6 backoff cap with the Irix
// 2^5 cap under heavy loss (effect on send rate).
func BenchmarkAblationBackoffCap(b *testing.B) {
	run := func(variant string) float64 {
		res := Simulate(SimConfig{RTT: 0.2, LossRate: 0.15, Wm: 8, MinRTO: 1, Duration: 1000, Seed: 9, Variant: variant})
		return res.SendRate()
	}
	var reno64, irix32 float64
	for i := 0; i < b.N; i++ {
		reno64 = run("reno")
		irix32 = run("irix")
	}
	b.ReportMetric(reno64, "reno-rate")
	b.ReportMetric(irix32, "irix-rate")
}

// BenchmarkAblationFastRecovery quantifies the fast-recovery refinement
// the paper lists as future work: classic Reno vs NewReno partial-ACK
// recovery under RTT-scale loss outages.
func BenchmarkAblationFastRecovery(b *testing.B) {
	run := func(variant string) float64 {
		return Simulate(SimConfig{
			RTT: 0.1, LossRate: 0.004, BurstDur: 0.06, Wm: 32, MinRTO: 1,
			Duration: 1500, Seed: 21, Variant: variant,
		}).SendRate()
	}
	var classic, newreno float64
	for i := 0; i < b.N; i++ {
		classic = run("reno")
		newreno = run("newreno")
	}
	b.ReportMetric(classic, "reno-rate")
	b.ReportMetric(newreno, "newreno-rate")
}

// BenchmarkAblationDelayedAcks measures the delayed-ACK (b=2) rate penalty
// the model captures through its b parameter.
func BenchmarkAblationDelayedAcks(b *testing.B) {
	var withDel, without float64
	for i := 0; i < b.N; i++ {
		withDel = Simulate(SimConfig{RTT: 0.2, LossRate: 0.02, Wm: 0, MinRTO: 1, Duration: 1000, Seed: 5, AckEvery: 2}).SendRate()
		without = Simulate(SimConfig{RTT: 0.2, LossRate: 0.02, Wm: 0, MinRTO: 1, Duration: 1000, Seed: 5, AckEvery: 1}).SendRate()
	}
	b.ReportMetric(without/withDel, "b1-over-b2-speedup")
}

// --- extension-study benches ---

// BenchmarkExtLossModels reruns the loss-process sensitivity study.
func BenchmarkExtLossModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.LossModels(benchOpts())
		if r.Tables[0].NumRows() != 4 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkExtShortFlows reruns the short-flow latency study.
func BenchmarkExtShortFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ShortFlows(benchOpts())
		if r.Tables[0].NumRows() != 6 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkExtFairness reruns the shared-bottleneck fairness study and
// reports the TFRC/TCP ratio under RED.
func BenchmarkExtFairness(b *testing.B) {
	o := benchOpts()
	o.HourTraceDuration = 1200
	var redRatio float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fairness(o)
		var buf bytes.Buffer
		if err := r.Tables[0].WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
		fields := bytes.Split(lines[2], []byte(","))
		redRatio, _ = strconv.ParseFloat(string(fields[3]), 64)
	}
	b.ReportMetric(redRatio, "red-tfrc-tcp-ratio")
}

func BenchmarkShortFlowTime(b *testing.B) {
	pr := core.NewParams(0.1, 1.2, 64)
	for i := 0; i < b.N; i++ {
		core.ShortFlowTime(500, 0.02, pr)
	}
}

// --- model micro-benchmarks ---

func BenchmarkSendRateFull(b *testing.B) {
	pr := core.NewParams(0.2, 2.0, 12)
	for i := 0; i < b.N; i++ {
		core.SendRateFull(0.02, pr)
	}
}

func BenchmarkSendRateApprox(b *testing.B) {
	pr := core.NewParams(0.2, 2.0, 12)
	for i := 0; i < b.N; i++ {
		core.SendRateApprox(0.02, pr)
	}
}

func BenchmarkSendRateTDOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.SendRateTDOnly(0.02, 0.2, 2)
	}
}

func BenchmarkThroughputModel(b *testing.B) {
	pr := core.NewParams(0.2, 2.0, 12)
	for i := 0; i < b.N; i++ {
		core.Throughput(0.02, pr)
	}
}

func BenchmarkLossRateFor(b *testing.B) {
	pr := core.NewParams(0.2, 2.0, 0)
	for i := 0; i < b.N; i++ {
		if _, err := core.LossRateFor(20, pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkovSolve(b *testing.B) {
	for _, wm := range []int{8, 16, 48} {
		b.Run("Wm"+strconv.Itoa(wm), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := markov.SendRate(0.03, markov.Config{RTT: 0.2, T0: 2, Wm: wm}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRoundsimTDP(b *testing.B) {
	s, err := roundsim.New(roundsim.Config{P: 0.03, RTT: 0.2, T0: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.RunTDPs(b.N)
}

// --- substrate micro-benchmarks ---

// BenchmarkSimulatedSecond measures simulator throughput: one simulated
// second of a saturated 2%-loss connection per iteration.
func BenchmarkSimulatedSecond(b *testing.B) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.02, Wm: 32, MinRTO: 1, Duration: float64(b.N), Seed: 11})
	if res.Stats.TotalSent() == 0 {
		b.Fatal("no traffic")
	}
	b.ReportMetric(float64(res.Stats.TotalSent())/float64(b.N), "pkts/simsec")
}

// benchMultiFlow measures one simulated second of an n-flow shared
// bottleneck per iteration: the multi-flow engine's whole-system
// throughput at the fairness experiments' operating point (20 pkts/s
// fair share, 5-packet-per-flow queue).
func benchMultiFlow(b *testing.B, n int) {
	res := Sim(
		WithPath(0.08),
		WithWindow(64),
		WithMinRTO(0.5),
		WithFlowCount(n),
		WithBottleneck(Bottleneck{Rate: 20 * float64(n), QueueCap: 5 * n, OneWay: 0.04}),
		WithDuration(float64(b.N)),
		WithSeed(11),
	)
	var total int
	for _, fr := range res.FlowResults {
		total += fr.Result.Stats.TotalSent()
	}
	if total == 0 {
		b.Fatal("no traffic")
	}
	b.ReportMetric(float64(total)/float64(b.N), "pkts/simsec")
}

func BenchmarkMultiFlow10(b *testing.B)  { benchMultiFlow(b, 10) }
func BenchmarkMultiFlow100(b *testing.B) { benchMultiFlow(b, 100) }

func BenchmarkTraceEncode(b *testing.B) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.02, Wm: 16, Duration: 60, Seed: 1})
	tr := res.Trace
	b.SetBytes(int64(len(tr) * 33))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceDecode(b *testing.B) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.02, Wm: 16, Duration: 60, Seed: 1})
	var buf bytes.Buffer
	if err := trace.Encode(&buf, res.Trace); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferLossEvents(b *testing.B) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.03, Wm: 16, MinRTO: 1, Duration: 600, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.InferLossEvents(res.Trace, 3)
	}
}

func BenchmarkKarnRTTSamples(b *testing.B) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.03, Wm: 16, MinRTO: 1, Duration: 600, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.KarnRTTSamples(res.Trace)
	}
}

func BenchmarkTcpdumpEncode(b *testing.B) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.02, Wm: 16, Duration: 60, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.EncodeTcpdump(&buf, res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTcpdumpDecode(b *testing.B) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.02, Wm: 16, Duration: 60, Seed: 1})
	var buf bytes.Buffer
	if err := trace.EncodeTcpdump(&buf, res.Trace); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.DecodeTcpdump(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlightSeries(b *testing.B) {
	res := Simulate(SimConfig{RTT: 0.1, LossRate: 0.03, Wm: 16, MinRTO: 1, Duration: 600, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.FlightSeries(res.Trace)
	}
}

func BenchmarkElasticities(b *testing.B) {
	pr := core.NewParams(0.2, 2.0, 12)
	for i := 0; i < b.N; i++ {
		core.SendRateElasticities(0.02, pr)
	}
}

// sink prevents over-eager dead-code elimination in model benches.
var sink float64

func init() { sink = math.Pi }
