package pftk

import (
	"pftk/internal/netem"
	"pftk/internal/obs"
	"pftk/internal/sim"
)

// Registry is an observability metric registry (counters, gauges,
// histograms); attach one to a run with WithObs and read it back with
// its Snapshot method. It aliases the internal type so callers outside
// the module can construct and consume one.
type Registry = obs.Registry

// NewRegistry returns an empty metric registry for WithObs.
func NewRegistry() *Registry { return obs.New() }

// LinkStats are one link direction's packet counters (offered,
// delivered, drops by cause, queue high-water mark).
type LinkStats = netem.LinkStats

// PathStats snapshots both directions of the emulated path after a run:
// Forward carries data packets, Reverse carries ACKs. Populated via
// WithLinkStats; the counters are the ground truth that packet-
// conservation checks reconcile against trace- and metric-level counts.
type PathStats struct {
	Forward LinkStats
	Reverse LinkStats
}

// FlightRecorder is the engine's black box: a fixed ring of the most
// recent schedule/fire/cancel/drop operations, dumpable after a panic
// or invariant failure. It aliases the internal type so callers outside
// the module can construct and read one.
type FlightRecorder = sim.FlightRecorder

// NewFlightRecorder returns a flight recorder retaining the last k
// engine operations (k <= 0 selects the default capacity). Attach it to
// a run with WithFlightRecorder.
func NewFlightRecorder(k int) *FlightRecorder { return sim.NewFlightRecorder(k) }

// SimOption configures one simulated transfer; pass options to Sim. The
// zero configuration is a 100-second saturated Reno transfer over a
// lossless 0.1 s-RTT path.
type SimOption func(*SimConfig)

// WithPath sets the path's two-way propagation delay (RTT) in seconds.
func WithPath(rtt float64) SimOption {
	return func(c *SimConfig) { c.RTT = rtt }
}

// WithLoss sets a Bernoulli (i.i.d.) packet loss probability on the data
// direction.
func WithLoss(rate float64) SimOption {
	return func(c *SimConfig) { c.LossRate = rate; c.BurstDur = 0 }
}

// WithBurstLoss sets a timed-outage loss process: each data packet starts
// a dur-second outage with probability rate, correlating losses the way
// the paper's bursty paths did.
func WithBurstLoss(rate, dur float64) SimOption {
	return func(c *SimConfig) { c.LossRate = rate; c.BurstDur = dur }
}

// WithScenario schedules time-varying path conditions and fault
// injection over the run: phases and faults fire at their scheduled
// simulated times on the engine's event queue, byte-reproducibly for a
// fixed seed. The scenario's base state is the path configured by the
// other options.
func WithScenario(sc *Scenario) SimOption {
	return func(c *SimConfig) { c.Scenario = sc }
}

// WithSeed fixes the run's random streams, making it reproducible.
func WithSeed(seed uint64) SimOption {
	return func(c *SimConfig) { c.Seed = seed }
}

// WithDuration sets the transfer length in simulated seconds.
func WithDuration(seconds float64) SimOption {
	return func(c *SimConfig) { c.Duration = seconds }
}

// WithOS selects the sender's TCP flavor by the paper's Table I naming:
// "reno" (default), "tahoe", "linux", "irix" or "newreno".
func WithOS(variant string) SimOption {
	return func(c *SimConfig) { c.Variant = variant }
}

// WithWindow sets the receiver's advertised window Wm in packets
// (default 64).
func WithWindow(wm int) SimOption {
	return func(c *SimConfig) { c.Wm = wm }
}

// WithMinRTO floors the retransmission timeout in seconds, shaping the
// trace's T0 (default 1 s).
func WithMinRTO(seconds float64) SimOption {
	return func(c *SimConfig) { c.MinRTO = seconds }
}

// WithDelayedACKs sets the receiver's ACK ratio b (default 2, the
// paper's delayed-ACK assumption; 1 = ACK every packet).
func WithDelayedACKs(b int) SimOption {
	return func(c *SimConfig) { c.AckEvery = b }
}

// WithPhaseStats directs the per-phase attribution of a scenario run
// (packets offered/dropped/delivered per scenario segment) into dst
// after the run completes. Without a scenario, dst is left untouched.
func WithPhaseStats(dst *[]PhaseStat) SimOption {
	return func(c *SimConfig) { c.phaseStats = dst }
}

// WithFlightRecorder attaches a flight recorder to the run's engine:
// the last schedule/fire/cancel/drop operations are retained in f's
// fixed ring for a post-mortem dump if the run panics or trips an
// invariant. Recording writes into preallocated ring slots, so the
// engine hot path stays allocation-free.
func WithFlightRecorder(f *FlightRecorder) SimOption {
	return func(c *SimConfig) { c.flight = f }
}

// WithObs instruments the run with metric collection on reg: the engine
// (events, queue depth, cancels), both link directions (netem.fwd.* /
// netem.rev.* offered/delivered/drop counters), the sender (cwnd/RTT
// histograms, loss-indication counters) and, when a scenario is bound,
// the scenario runner (transitions, fault windows, per-phase
// attribution). Observation never perturbs the simulation: metric hooks
// draw no randomness, so a run with and without a registry produces
// byte-identical traces. A nil registry disables collection.
func WithObs(reg *Registry) SimOption {
	return func(c *SimConfig) { c.registry = reg }
}

// WithLinkStats directs both directions' final link counters into dst
// after the run completes — the packet-conservation ground truth
// (offered = delivered + drops + still-in-flight) that invariant
// checkers reconcile against the sender's trace and the obs counters.
func WithLinkStats(dst *PathStats) SimOption {
	return func(c *SimConfig) { c.linkStats = dst }
}

// WithFlows runs the given flows concurrently on one simulation engine
// instead of a single saturated transfer. With WithBottleneck they
// share one link; otherwise each flow runs over its own private path.
// The result's Flows, FlowResults and Fairness fields carry the
// per-flow and aggregate outcomes:
//
//	res := pftk.Sim(
//		pftk.WithFlows(
//			pftk.Flow{Variant: "reno", RTT: 0.08},
//			pftk.Flow{Variant: "tfrc", RTT: 0.08},
//		),
//		pftk.WithBottleneck(pftk.Bottleneck{Rate: 60, QueueCap: 20, OneWay: 0.04}),
//		pftk.WithDuration(500),
//	)
//	fmt.Println(res.Fairness.Jain)
//
// Scenario, observability and flight-recorder options apply only to
// single-flow runs and are ignored in multi-flow mode.
func WithFlows(flows ...Flow) SimOption {
	return func(c *SimConfig) { c.flows = flows }
}

// WithFlowCount replicates the single-flow knobs (WithPath, WithLoss,
// WithOS, WithWindow, ...) into n identical flows — the symmetric
// population of the fairness experiments. Ignored when WithFlows
// supplies explicit specs. Per-flow random streams are forked from the
// run seed by flow index.
func WithFlowCount(n int) SimOption {
	return func(c *SimConfig) { c.flowCount = n }
}

// WithBottleneck routes every flow of a multi-flow run through one
// shared link, making the flows compete: congestive loss comes from the
// common queue rather than each flow's private loss process. A
// non-positive Rate (the zero value) keeps the flows on disjoint paths.
func WithBottleneck(b Bottleneck) SimOption {
	return func(c *SimConfig) { c.bottleneck = b }
}

// WithTransfer makes the run a finite n-packet transfer: the simulation
// stops when the last packet is delivered or at deadline, whichever
// comes first, and the result's TransferTime / TransferComplete fields
// report the outcome — the short-flow counterpart of the default
// saturated run. Replaces the deprecated SimulateTransfer.
func WithTransfer(n int, deadline float64) SimOption {
	return func(c *SimConfig) {
		c.totalPackets = uint64(n)
		c.transferDeadline = deadline
	}
}

// analyzeConfig collects Analyze's options.
type analyzeConfig struct {
	dupThreshold int
	groundTruth  bool
}

// AnalyzeOption configures Analyze.
type AnalyzeOption func(*analyzeConfig)

// WithDupThreshold sets the sender's fast-retransmit duplicate-ACK
// threshold used when inferring loss events: 3 for standard Reno (the
// default), 2 for the Linux stacks of the paper's Section III.
func WithDupThreshold(n int) AnalyzeOption {
	return func(c *analyzeConfig) { c.dupThreshold = n }
}

// WithGroundTruth analyzes the simulator's explicit loss-indication
// records instead of inferring events from wire-level records — the
// oracle unavailable to the paper's authors but available to a
// simulation.
func WithGroundTruth() AnalyzeOption {
	return func(c *analyzeConfig) { c.groundTruth = true }
}
