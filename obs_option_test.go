package pftk_test

import (
	"testing"

	"pftk"
)

// TestWithObsDoesNotPerturb pins the WithObs contract: attaching a
// metric registry (and a link-stats sink) must not change the simulated
// outcome — the trace, the counters, everything byte for byte.
func TestWithObsDoesNotPerturb(t *testing.T) {
	base := []pftk.SimOption{
		pftk.WithPath(0.2),
		pftk.WithLoss(0.02),
		pftk.WithDuration(50),
		pftk.WithSeed(7),
	}
	plain := pftk.Sim(base...)

	reg := pftk.NewRegistry()
	var ls pftk.PathStats
	observed := pftk.Sim(append(append([]pftk.SimOption{}, base...),
		pftk.WithObs(reg), pftk.WithLinkStats(&ls))...)

	if len(plain.Trace) != len(observed.Trace) {
		t.Fatalf("trace length changed under observation: %d vs %d", len(plain.Trace), len(observed.Trace))
	}
	for i := range plain.Trace {
		if plain.Trace[i] != observed.Trace[i] {
			t.Fatalf("trace record %d changed under observation: %+v vs %+v", i, plain.Trace[i], observed.Trace[i])
		}
	}
	if plain.Stats != observed.Stats {
		t.Fatalf("sender stats changed under observation: %+v vs %+v", plain.Stats, observed.Stats)
	}
}

// TestWithObsAndLinkStatsReconcile pins that the three measurement
// layers agree on the same run: obs counters mirror the link's own
// counters exactly, and the link's forward-direction offered count is
// the sender's total transmissions.
func TestWithObsAndLinkStatsReconcile(t *testing.T) {
	reg := pftk.NewRegistry()
	var ls pftk.PathStats
	res := pftk.Sim(
		pftk.WithPath(0.1),
		pftk.WithLoss(0.05),
		pftk.WithDuration(60),
		pftk.WithSeed(11),
		pftk.WithObs(reg),
		pftk.WithLinkStats(&ls),
	)
	snap := reg.Snapshot()
	if got, want := snap.Counter("netem.fwd.offered"), uint64(ls.Forward.Offered); got != want {
		t.Errorf("netem.fwd.offered = %d, link stats say %d", got, want)
	}
	if got, want := snap.Counter("netem.fwd.drops.loss"), uint64(ls.Forward.RandomDrops); got != want {
		t.Errorf("netem.fwd.drops.loss = %d, link stats say %d", got, want)
	}
	if got, want := snap.Counter("netem.rev.offered"), uint64(ls.Reverse.Offered); got != want {
		t.Errorf("netem.rev.offered = %d, link stats say %d", got, want)
	}
	if got, want := ls.Forward.Offered, res.Stats.TotalSent(); got != want {
		t.Errorf("forward link offered %d packets, sender sent %d", got, want)
	}
	if ls.Forward.RandomDrops == 0 {
		t.Error("5% loss over 60s produced no random drops")
	}
	if snap.Counter("sim.events") == 0 {
		t.Error("engine hooks recorded no events")
	}
}
