package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: pftk
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatedSecond 	  100000	     30000 ns/op	        36.92 pkts/simsec	   20326 B/op	     236 allocs/op
BenchmarkSimulatedSecond 	  100000	     10000 ns/op	        36.92 pkts/simsec	   20326 B/op	     236 allocs/op
BenchmarkSimulatedSecond 	  100000	     20000 ns/op	        36.92 pkts/simsec	   20326 B/op	     236 allocs/op
BenchmarkTimerReset-8    	 5000000	       120 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	pftk	24.041s
ok  	pftk/internal/obs	0.004s [no tests to run]
`

func TestParseAndReduce(t *testing.T) {
	raw, env, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if env.goos != "linux" || env.goarch != "amd64" || !strings.Contains(env.cpu, "Xeon") {
		t.Errorf("env = %+v", env)
	}
	results := reduce(raw)
	sec, ok := results["BenchmarkSimulatedSecond"]
	if !ok {
		t.Fatalf("BenchmarkSimulatedSecond missing: %v", results)
	}
	if sec.Runs != 3 {
		t.Errorf("runs = %d, want 3", sec.Runs)
	}
	if sec.NsPerOp != 20000 { // median of 30000, 10000, 20000
		t.Errorf("ns/op median = %g, want 20000", sec.NsPerOp)
	}
	if sec.BytesPerOp != 20326 || sec.AllocsPerOp != 236 {
		t.Errorf("B/op = %g allocs/op = %g", sec.BytesPerOp, sec.AllocsPerOp)
	}
	if sec.Extra["pkts/simsec"] != 36.92 {
		t.Errorf("extra = %v", sec.Extra)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	tr, ok := results["BenchmarkTimerReset"]
	if !ok {
		t.Fatalf("BenchmarkTimerReset missing: %v", results)
	}
	if tr.NsPerOp != 120 || tr.AllocsPerOp != 0 {
		t.Errorf("timer reset = %+v", tr)
	}
}

func TestMedianEvenCountIsObservedValue(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2 {
		t.Errorf("median = %g, want lower-middle 2", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median(nil) = %g, want 0", m)
	}
}

func TestRunMergesLabelsIntoFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	var out strings.Builder
	if err := run([]string{"-o", path, "-label", "pre", "-note", "seed"},
		strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", path, "-label", "post"},
		strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(f.Baselines) != 2 {
		t.Fatalf("baselines = %v", f.Baselines)
	}
	if f.Baselines["pre"].Note != "seed" {
		t.Errorf("pre note = %q", f.Baselines["pre"].Note)
	}
	if f.GOOS != "linux" {
		t.Errorf("goos = %q", f.GOOS)
	}
	if f.Baselines["post"].Benchmarks["BenchmarkSimulatedSecond"].NsPerOp != 20000 {
		t.Error("post baseline lost the benchmark medians")
	}
}

func TestRunRelabelReplacesBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	var out strings.Builder
	for i := 0; i < 2; i++ {
		if err := run([]string{"-o", path, "-label", "current"},
			strings.NewReader(sampleBench), &out); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Baselines) != 1 {
		t.Errorf("re-recording a label duplicated baselines: %v", f.Baselines)
	}
}

// multiFlowBench is a second run set with one benchmark overlapping
// sampleBench (different numbers) and one new to it — the shape of the
// Makefile's separate fixed-benchtime MultiFlow invocation.
const multiFlowBench = `goos: linux
goarch: amd64
pkg: pftk
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatedSecond 	  100000	     15000 ns/op	        36.92 pkts/simsec	   20326 B/op	     236 allocs/op
BenchmarkMultiFlow10     	   10000	    110000 ns/op	       200.0 pkts/simsec	   43146 B/op	       0 allocs/op
PASS
ok  	pftk	2.041s
`

func TestRunMergesBenchmarksWithinLabel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	var out strings.Builder
	if err := run([]string{"-o", path, "-label", "current"},
		strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", path, "-label", "current"},
		strings.NewReader(multiFlowBench), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	b := f.Baselines["current"]
	if b == nil {
		t.Fatalf("current label missing: %v", f.Baselines)
	}
	// The earlier run's exclusive benchmark survives the second merge...
	if tr := b.Benchmarks["BenchmarkTimerReset"]; tr == nil || tr.NsPerOp != 120 {
		t.Errorf("merge dropped BenchmarkTimerReset: %+v", tr)
	}
	// ...the second run's new benchmark is recorded...
	if mf := b.Benchmarks["BenchmarkMultiFlow10"]; mf == nil || mf.NsPerOp != 110000 {
		t.Errorf("merge missed BenchmarkMultiFlow10: %+v", mf)
	}
	// ...and on a name collision the incoming run wins.
	if sec := b.Benchmarks["BenchmarkSimulatedSecond"]; sec == nil || sec.NsPerOp != 15000 {
		t.Errorf("collision not won by incoming run: %+v", sec)
	}
}

func TestCheckMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-check", "-require", "BenchmarkSimulatedSecond,BenchmarkTimerReset"},
		strings.NewReader(sampleBench), &out)
	if err != nil {
		t.Fatalf("check should pass: %v", err)
	}
	if !strings.Contains(out.String(), "ok BenchmarkSimulatedSecond") {
		t.Errorf("check output = %q", out.String())
	}
	err = run([]string{"-check", "-require", "BenchmarkMissing"},
		strings.NewReader(sampleBench), &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkMissing") {
		t.Errorf("check with missing benchmark: err = %v", err)
	}
}

func TestEmptyInputIsAnError(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("PASS\nok pftk 0.1s\n"), &out); err == nil {
		t.Error("expected an error for input with no benchmark lines")
	}
}

func TestCorruptBaselineFileIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-o", path}, strings.NewReader(sampleBench), &out); err == nil {
		t.Error("expected an error merging into a corrupt baseline file")
	}
}

// TestServeModeRecordsBaseline folds a pftkload -json report into a
// BENCH_serve.json baseline file and checks the recorded shape.
func TestServeModeRecordsBaseline(t *testing.T) {
	in := strings.NewReader(`{
		"target": "http://127.0.0.1:1/v1/predict",
		"mode": "predict", "concurrency": 8, "requests": 100,
		"seconds": 2.0, "req_per_sec": 50,
		"status_2xx": 100,
		"latency_seconds": {"p50": 0.002, "p90": 0.004, "p95": 0.005, "p99": 0.009, "max": 0.02},
		"queue_seconds": {"p50": 0.0001, "p99": 0.001},
		"service_seconds": {"p50": 0.0015, "p99": 0.007}
	}`)
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out bytes.Buffer
	if err := run([]string{"-serve", "-o", path, "-label", "initial"}, in, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	sr := f.Baselines["initial"].Serve
	if sr == nil {
		t.Fatalf("no serve baseline recorded: %s", data)
	}
	if sr.ReqPerSec != 50 || sr.P50Seconds != 0.002 || sr.P99Seconds != 0.009 {
		t.Errorf("serve baseline = %+v", sr)
	}
	if sr.QueueP99Seconds != 0.001 || sr.ServiceP50Seconds != 0.0015 {
		t.Errorf("queue/service split lost: %+v", sr)
	}

	// A report with no successes must be refused.
	bad := strings.NewReader(`{"requests": 5, "status_2xx": 0, "latency_seconds": {"p50": 1, "p99": 1}}`)
	if err := run([]string{"-serve", "-o", path}, bad, &out); err == nil {
		t.Error("all-failure report was recorded")
	}
}

const sampleLoadReport = `{
	"mode": "predict", "concurrency": 8, "requests": 100,
	"req_per_sec": 50, "status_2xx": 100,
	"latency_seconds": {"p50": 0.002, "p99": 0.009}
}`

// TestServeCheckMode exercises the CI regression gate for
// BENCH_serve.json: a healthy pftkload report plus a committed baseline
// with the required serve label passes; a stream of failures, a missing
// label, or a degenerate committed entry each fail with a pointed
// error.
func TestServeCheckMode(t *testing.T) {
	dir := t.TempDir()
	writeBaseline := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := writeBaseline("good.json", `{"baselines": {"current": {"serve": {
		"mode": "predict", "concurrency": 8, "requests": 5000,
		"req_per_sec": 5000, "p50_seconds": 0.001, "p99_seconds": 0.005}}}}`)

	var out bytes.Buffer
	err := run([]string{"-serve", "-check", "-baseline", good, "-require", "current"},
		strings.NewReader(sampleLoadReport), &out)
	if err != nil {
		t.Fatalf("healthy report + good baseline should pass: %v", err)
	}
	if !strings.Contains(out.String(), "ok serve:") {
		t.Errorf("check output = %q", out.String())
	}

	// Stream validation still applies in check mode.
	dead := strings.NewReader(`{"requests": 5, "status_2xx": 0, "latency_seconds": {"p50": 1, "p99": 1}}`)
	if err := run([]string{"-serve", "-check", "-baseline", good, "-require", "current"}, dead, &out); err == nil {
		t.Error("all-failure report passed the serve check")
	}

	cases := []struct {
		name, file, want string
	}{
		{"missing label", `{"baselines": {}}`, "no recorded serve entry"},
		{"bench-only label", `{"baselines": {"current": {"benchmarks": {}}}}`, "no recorded serve entry"},
		{"zero traffic", `{"baselines": {"current": {"serve": {
			"mode": "predict", "requests": 0, "req_per_sec": 0,
			"p50_seconds": 0.001, "p99_seconds": 0.005}}}}`, "records no traffic"},
		{"inverted quantiles", `{"baselines": {"current": {"serve": {
			"mode": "predict", "requests": 100, "req_per_sec": 50,
			"p50_seconds": 0.005, "p99_seconds": 0.001}}}}`, "inconsistent latency quantiles"},
		{"corrupt file", `{not json`, "not valid baseline JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeBaseline(strings.ReplaceAll(tc.name, " ", "-")+".json", tc.file)
			err := run([]string{"-serve", "-check", "-baseline", path, "-require", "current"},
				strings.NewReader(sampleLoadReport), &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
