// Command benchjson turns `go test -bench -benchmem` output into a
// tracked JSON benchmark baseline. It reads the benchmark text on stdin,
// takes the per-metric median across repeated runs (-count), and either
// prints the result or merges it under a named label into a baseline file
// such as BENCH_sim.json — so before/after performance numbers live in
// the repository next to the code they measure.
//
// Example:
//
//	go test -run '^$' -bench 'BenchmarkSimulatedSecond$' -benchmem \
//	    -benchtime 100000x -count 5 . | benchjson -label post -o BENCH_sim.json
//
// With -check, benchjson validates the stream instead of recording it:
// it exits non-zero unless every benchmark named in -require was parsed,
// which CI uses as a cheap smoke test that the benchmark suite still
// runs and still reports allocations.
//
// The two flags compose: `-serve -check` validates a pftkload -json
// report (successful traffic, latency quantiles present) and, with
// -baseline, additionally requires the committed serving baseline file
// to parse and to hold a recorded serve entry under every -require
// label — CI's regression gate that BENCH_serve.json stays comparable
// against what the load pipeline produces today:
//
//	pftkload -url $url -c 8 -n 500 -json \
//	    | benchjson -serve -check -baseline BENCH_serve.json -require current
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is the median of one benchmark's metrics across its runs.
type Result struct {
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds custom ReportMetric units (e.g. pkts/simsec).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Baseline is one labeled benchmark snapshot.
type Baseline struct {
	Date       string             `json:"date,omitempty"`
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]*Result `json:"benchmarks,omitempty"`
	// Serve is the serving-latency baseline recorded with -serve from a
	// pftkload -json report (BENCH_serve.json entries).
	Serve *ServeResult `json:"serve,omitempty"`
}

// ServeResult is the committed serving baseline: achieved rate plus the
// client-observed latency quantiles and the server-reported
// queue/service split.
type ServeResult struct {
	Mode              string  `json:"mode"`
	Concurrency       int     `json:"concurrency"`
	Requests          int     `json:"requests"`
	ReqPerSec         float64 `json:"req_per_sec"`
	P50Seconds        float64 `json:"p50_seconds"`
	P99Seconds        float64 `json:"p99_seconds"`
	QueueP50Seconds   float64 `json:"queue_p50_seconds,omitempty"`
	QueueP99Seconds   float64 `json:"queue_p99_seconds,omitempty"`
	ServiceP50Seconds float64 `json:"service_p50_seconds,omitempty"`
	ServiceP99Seconds float64 `json:"service_p99_seconds,omitempty"`
}

// loadQuantiles mirrors pftkload's quantile summary.
type loadQuantiles struct {
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

// loadReport is the subset of the pftkload -json report benchjson
// records.
type loadReport struct {
	Mode           string         `json:"mode"`
	Concurrency    int            `json:"concurrency"`
	Requests       int            `json:"requests"`
	ReqPerSec      float64        `json:"req_per_sec"`
	Status2xx      int            `json:"status_2xx"`
	LatencySeconds *loadQuantiles `json:"latency_seconds"`
	QueueSeconds   *loadQuantiles `json:"queue_seconds"`
	ServiceSeconds *loadQuantiles `json:"service_seconds"`
}

// parseServe reads one pftkload -json report and reduces it to the
// committed ServeResult, rejecting reports with no successful traffic —
// a baseline of failures is worse than no baseline.
func parseServe(r io.Reader) (*ServeResult, error) {
	var rep loadReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("stdin is not a pftkload -json report: %w", err)
	}
	if rep.Status2xx == 0 {
		return nil, fmt.Errorf("report has no successful responses (%d requests); refusing to record it", rep.Requests)
	}
	if rep.LatencySeconds == nil {
		return nil, fmt.Errorf("report carries no latency quantiles")
	}
	sr := &ServeResult{
		Mode:        rep.Mode,
		Concurrency: rep.Concurrency,
		Requests:    rep.Requests,
		ReqPerSec:   rep.ReqPerSec,
		P50Seconds:  rep.LatencySeconds.P50,
		P99Seconds:  rep.LatencySeconds.P99,
	}
	if q := rep.QueueSeconds; q != nil {
		sr.QueueP50Seconds, sr.QueueP99Seconds = q.P50, q.P99
	}
	if q := rep.ServiceSeconds; q != nil {
		sr.ServiceP50Seconds, sr.ServiceP99Seconds = q.P50, q.P99
	}
	return sr, nil
}

// checkServeBaseline validates the committed serving baseline file: it
// must parse into the baseline schema, and every label named in require
// must hold a recorded serve entry with real traffic and ordered
// latency quantiles. Together with the stream validation in parseServe
// this is the CI regression gate for BENCH_serve.json: the load
// pipeline still emits comparable reports, and the committed numbers
// are still something a fresh run can be compared against.
//
// With gateFrac > 0 the gate also compares performance: against every
// required label whose entry matches the live report's mode and
// concurrency, the live run must achieve at least gateFrac of the
// committed throughput and stay within 1/gateFrac of the committed p99.
// The slack absorbs machine-to-machine variance (CI runners are not the
// recording machine) while still catching the collapse a real
// regression causes.
func checkServeBaseline(path, require string, live *ServeResult, gateFrac float64) error {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%s: not valid baseline JSON: %w", path, err)
	}
	for _, label := range strings.Split(require, ",") {
		label = strings.TrimSpace(label)
		if label == "" {
			continue
		}
		b := f.Baselines[label]
		if b == nil || b.Serve == nil {
			return fmt.Errorf("%s: baseline %q has no recorded serve entry", path, label)
		}
		sr := b.Serve
		if sr.Requests <= 0 || sr.ReqPerSec <= 0 {
			return fmt.Errorf("%s: baseline %q records no traffic (requests=%d, req/s=%g)",
				path, label, sr.Requests, sr.ReqPerSec)
		}
		if sr.P50Seconds <= 0 || sr.P99Seconds < sr.P50Seconds {
			return fmt.Errorf("%s: baseline %q has inconsistent latency quantiles (p50=%g, p99=%g)",
				path, label, sr.P50Seconds, sr.P99Seconds)
		}
		if gateFrac > 0 && live != nil && sr.Mode == live.Mode && sr.Concurrency == live.Concurrency {
			if live.ReqPerSec < gateFrac*sr.ReqPerSec {
				return fmt.Errorf("%s: throughput regression against %q: live %.1f req/s < %.0f%% of committed %.1f req/s",
					path, label, live.ReqPerSec, gateFrac*100, sr.ReqPerSec)
			}
			if live.P99Seconds > sr.P99Seconds/gateFrac {
				return fmt.Errorf("%s: p99 regression against %q: live %.6fs > committed %.6fs / %.2f",
					path, label, live.P99Seconds, sr.P99Seconds, gateFrac)
			}
		}
	}
	return nil
}

// File is the on-disk shape of BENCH_sim.json.
type File struct {
	GOOS      string               `json:"goos,omitempty"`
	GOARCH    string               `json:"goarch,omitempty"`
	CPU       string               `json:"cpu,omitempty"`
	Baselines map[string]*Baseline `json:"baselines"`
}

// env captures the goos/goarch/cpu header lines of a benchmark run.
type env struct {
	goos, goarch, cpu string
}

// samples accumulates every observed value per benchmark per unit.
type samples map[string]map[string][]float64

// parse consumes `go test -bench` output, returning the raw per-unit
// samples keyed by benchmark name (GOMAXPROCS suffix stripped) and the
// run environment.
func parse(r io.Reader) (samples, env, error) {
	out := samples{}
	var e env
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			e.goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			e.goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			e.cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; the rest are (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, e, fmt.Errorf("line %q: bad value %q: %w", line, fields[i], err)
			}
			unit := fields[i+1]
			if out[name] == nil {
				out[name] = map[string][]float64{}
			}
			out[name][unit] = append(out[name][unit], v)
		}
	}
	return out, e, sc.Err()
}

// median returns the middle of the sorted values (lower middle for even
// counts, so the result is always an observed measurement).
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// reduce folds raw samples into per-benchmark median Results.
func reduce(raw samples) map[string]*Result {
	out := map[string]*Result{}
	for name, units := range raw {
		r := &Result{}
		for unit, vs := range units {
			m := median(vs)
			switch unit {
			case "ns/op":
				r.NsPerOp = m
				r.Runs = len(vs)
			case "B/op":
				r.BytesPerOp = m
			case "allocs/op":
				r.AllocsPerOp = m
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = m
			}
		}
		out[name] = r
	}
	return out
}

// mergeFile folds a labeled baseline into the JSON file at path,
// creating it if absent. Within an existing label, incoming benchmark
// entries replace same-named ones and all others are kept — so suites
// that need different fixed iteration counts (the single-flow path at
// 100000x, the multi-flow systems at 10000x/1000x) can be recorded by
// consecutive invocations under one label; the incoming run's date and
// note win.
func mergeFile(path, label string, b *Baseline, e env) error {
	f := &File{Baselines: map[string]*Baseline{}}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, f); err != nil {
			return fmt.Errorf("%s: existing file is not valid baseline JSON: %w", path, err)
		}
		if f.Baselines == nil {
			f.Baselines = map[string]*Baseline{}
		}
	case errors.Is(err, os.ErrNotExist):
		// First run: start a fresh file.
	default:
		return err
	}
	if e.goos != "" {
		f.GOOS = e.goos
	}
	if e.goarch != "" {
		f.GOARCH = e.goarch
	}
	if e.cpu != "" {
		f.CPU = e.cpu
	}
	if prev := f.Baselines[label]; prev != nil {
		for name, r := range prev.Benchmarks {
			if b.Benchmarks == nil {
				b.Benchmarks = map[string]*Result{}
			}
			if _, ok := b.Benchmarks[name]; !ok {
				b.Benchmarks[name] = r
			}
		}
		if b.Serve == nil {
			b.Serve = prev.Serve
		}
	}
	f.Baselines[label] = b
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		outFile  = fs.String("o", "", "baseline file to merge into (default: print JSON to stdout)")
		label    = fs.String("label", "current", "baseline label to record the results under")
		note     = fs.String("note", "", "free-text note stored with the baseline")
		check    = fs.Bool("check", false, "validate the stream instead of recording it")
		require  = fs.String("require", "", "comma-separated names that must be present (with -check): benchmark names, or baseline labels with -serve")
		serve    = fs.Bool("serve", false, "read a pftkload -json report instead of go test -bench output (BENCH_serve.json)")
		baseline = fs.String("baseline", "", "with -serve -check: committed baseline file that must hold the -require serve labels")
		gateFrac = fs.Float64("gatefrac", 0, "with -serve -check -baseline: live run must reach this fraction of the committed throughput (and 1/frac of committed p99) for matching mode+concurrency labels; 0 disables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serve {
		sr, err := parseServe(in)
		if err != nil {
			return err
		}
		if *check {
			if *gateFrac < 0 || *gateFrac > 1 {
				return fmt.Errorf("-gatefrac must be in [0, 1], got %g", *gateFrac)
			}
			if err := checkServeBaseline(*baseline, *require, sr, *gateFrac); err != nil {
				return err
			}
			_, err = fmt.Fprintf(out, "ok serve: mode=%s c=%d n=%d, %.1f req/s, p50 %.6fs, p99 %.6fs\n",
				sr.Mode, sr.Concurrency, sr.Requests, sr.ReqPerSec, sr.P50Seconds, sr.P99Seconds)
			return err
		}
		b := &Baseline{
			Date:  time.Now().UTC().Format("2006-01-02"),
			Note:  *note,
			Serve: sr,
		}
		e := env{goos: runtime.GOOS, goarch: runtime.GOARCH}
		if *outFile == "" {
			data, err := json.MarshalIndent(&File{
				GOOS: e.goos, GOARCH: e.goarch,
				Baselines: map[string]*Baseline{*label: b},
			}, "", "  ")
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(out, "%s\n", data)
			return err
		}
		if err := mergeFile(*outFile, *label, b, e); err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "benchjson: recorded serving baseline (%.1f req/s, p50 %.6fs, p99 %.6fs) under %q in %s\n",
			sr.ReqPerSec, sr.P50Seconds, sr.P99Seconds, *label, *outFile)
		return err
	}
	raw, e, err := parse(in)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin (pipe `go test -bench -benchmem` output in)")
	}
	results := reduce(raw)

	if *check {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := results[name]; !ok {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("missing required benchmarks: %s", strings.Join(missing, ", "))
		}
		names := make([]string, 0, len(results))
		for name := range results {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r := results[name]
			if _, err := fmt.Fprintf(out, "ok %s: %d run(s), %.0f ns/op, %.0f B/op, %.0f allocs/op\n",
				name, r.Runs, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp); err != nil {
				return err
			}
		}
		return nil
	}

	b := &Baseline{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Note:       *note,
		Benchmarks: results,
	}
	if *outFile == "" {
		data, err := json.MarshalIndent(&File{
			GOOS: e.goos, GOARCH: e.goarch, CPU: e.cpu,
			Baselines: map[string]*Baseline{*label: b},
		}, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", data)
		return err
	}
	if err := mergeFile(*outFile, *label, b, e); err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "benchjson: recorded %d benchmark(s) under %q in %s\n", len(results), *label, *outFile)
	return err
}
