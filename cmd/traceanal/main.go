// Command traceanal is the reproduction of the paper's trace-analysis
// programs: it reads a sender-side trace file, classifies every loss
// indication (TD vs timeout sequence, with backoff depth), estimates p,
// the Karn-filtered RTT and the mean T0, splits the trace into
// fixed-width intervals, and compares the measured packet counts with the
// predictions of the full, approximate and TD-only models.
//
// Example:
//
//	tracesim -dur 3600 -o trace.pftk && traceanal trace.pftk
//	traceanal -dupthresh 2 -interval 100 linux-sender.pftk
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"pftk"
	"pftk/internal/analysis"
	"pftk/internal/cli"
	"pftk/internal/core"
	"pftk/internal/obs"
	"pftk/internal/tablefmt"
	"pftk/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes the analysis against args, writing the report to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceanal", flag.ContinueOnError)
	var (
		dupThresh = fs.Int("dupthresh", 3, "sender's duplicate-ACK threshold (Linux-era stacks: 2)")
		interval  = fs.Float64("interval", 100, "analysis interval width in seconds")
		wm        = fs.Float64("wm", 0, "receiver window for model predictions (0 = unlimited)")
		format    = fs.String("format", "binary", "input format: binary, jsonl or tcpdump")
		flight    = fs.Bool("flight", false, "also report the reconstructed flight statistics and idle fraction")
		version   = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		w := cli.NewWriter(out)
		w.Printf("traceanal %s\n", obs.BuildVersion())
		return w.Err()
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceanal [flags] <trace-file>")
	}
	switch {
	case *interval <= 0:
		return fmt.Errorf("-interval must be a positive width in seconds, got %v", *interval)
	case *dupThresh < 0:
		return fmt.Errorf("-dupthresh must be non-negative, got %d", *dupThresh)
	case *wm < 0:
		return fmt.Errorf("-wm must be non-negative packets (0 = unlimited), got %v", *wm)
	}

	tr, err := readTrace(fs.Arg(0), *format)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("invalid trace: %w", err)
	}

	sum := pftk.Analyze(tr, pftk.WithDupThreshold(*dupThresh))

	w := cli.NewWriter(out)
	w.Println("== Trace summary (Table II row) ==")
	t := tablefmt.New("Pkts", "Loss", "TD", "T0", "T1", "T2", "T3", "T4", "T5+", "p", "RTT", "TOdur")
	t.AddRow(
		fmt.Sprintf("%d", sum.PacketsSent),
		fmt.Sprintf("%d", sum.LossIndications),
		fmt.Sprintf("%d", sum.TD),
		fmt.Sprintf("%d", sum.TimeoutHist[0]),
		fmt.Sprintf("%d", sum.TimeoutHist[1]),
		fmt.Sprintf("%d", sum.TimeoutHist[2]),
		fmt.Sprintf("%d", sum.TimeoutHist[3]),
		fmt.Sprintf("%d", sum.TimeoutHist[4]),
		fmt.Sprintf("%d", sum.TimeoutHist[5]),
		fmt.Sprintf("%.4f", sum.P),
		fmt.Sprintf("%.3f", sum.MeanRTT),
		fmt.Sprintf("%.3f", sum.MeanT0),
	)
	w.Print(t.ASCII())

	params := pftk.Params{RTT: sum.MeanRTT, T0: sum.MeanT0, Wm: *wm, B: 2}
	if params.Validate() != nil {
		w.Println("\n(no usable RTT/T0 measurements; skipping model comparison)")
		return w.Err()
	}

	ivs := analysis.Intervals(tr, sum.Events, *interval)
	w.Printf("\n== Intervals (%.0f s) ==\n", *interval)
	it := tablefmt.New("Start", "Pkts", "Loss", "p", "Category", "N_full", "N_approx", "N_tdonly")
	for _, iv := range ivs {
		it.AddRow(
			fmt.Sprintf("%.0f", iv.Start),
			fmt.Sprintf("%d", iv.Packets),
			fmt.Sprintf("%d", iv.LossIndications),
			fmt.Sprintf("%.4f", iv.P()),
			iv.Category(),
			fmt.Sprintf("%.0f", analysis.PredictPackets(iv, core.ModelFull, params)),
			fmt.Sprintf("%.0f", analysis.PredictPackets(iv, core.ModelApprox, params)),
			fmt.Sprintf("%.0f", analysis.PredictPackets(iv, core.ModelTDOnly, params)),
		)
	}
	w.Print(it.ASCII())

	w.Println("\n== Average error (Section III metric) ==")
	et := tablefmt.New("Model", "Average error")
	for _, m := range []core.Model{core.ModelFull, core.ModelApprox, core.ModelTDOnly} {
		et.AddRow(m.String(), fmt.Sprintf("%.3f", analysis.ModelError(ivs, m, params)))
	}
	w.Print(et.ASCII())

	if rho := analysis.RoundCorrelation(tr); !math.IsNaN(rho) {
		w.Printf("\nRTT-window correlation: %.3f\n", rho)
	}

	if *flight {
		series := analysis.FlightSeries(tr)
		fs := analysis.SummarizeFlight(series)
		idleThresh := 3 * sum.MeanRTT
		if idleThresh <= 0 {
			idleThresh = 0.5
		}
		w.Println("\n== Flight reconstruction (wire-level) ==")
		ft := tablefmt.New("Metric", "Value")
		ft.AddRow("samples", fmt.Sprintf("%d", len(series)))
		ft.AddRow("mean flight", fmt.Sprintf("%.2f pkts", fs.Mean))
		ft.AddRow("peak flight", fmt.Sprintf("%d pkts", fs.Peak))
		ft.AddRow("idle fraction", fmt.Sprintf("%.3f (gaps > %.2fs)", analysis.IdleFraction(tr, idleThresh), idleThresh))
		w.Print(ft.ASCII())
	}
	return w.Err()
}

func readTrace(path string, format string) (trace.Trace, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		// Read-only close: a failure cannot corrupt anything we decoded.
		defer func() { _ = f.Close() }()
		r = f
	}
	switch format {
	case "jsonl":
		return trace.DecodeJSONL(r)
	case "tcpdump":
		return trace.DecodeTcpdump(r)
	case "binary":
		tr, err := trace.Decode(r)
		if errors.Is(err, trace.ErrBadMagic) {
			return nil, fmt.Errorf("%w (text trace? try -format jsonl or -format tcpdump)", err)
		}
		return tr, err
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "traceanal:", err)
	os.Exit(1)
}
