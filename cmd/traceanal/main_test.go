package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pftk"
	"pftk/internal/trace"
)

// writeTestTrace simulates a connection and writes its trace to a file.
func writeTestTrace(t *testing.T, jsonl bool) string {
	t.Helper()
	res := pftk.Simulate(pftk.SimConfig{
		RTT: 0.1, LossRate: 0.03, Wm: 16, MinRTO: 1, Duration: 300, Seed: 5,
	})
	name := "t.pftk"
	if jsonl {
		name = "t.jsonl"
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if jsonl {
		err = trace.EncodeJSONL(f, res.Trace)
	} else {
		err = trace.Encode(f, res.Trace)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeBinaryTrace(t *testing.T) {
	path := writeTestTrace(t, false)
	var out bytes.Buffer
	if err := run([]string{"-wm", "16", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Trace summary", "Intervals", "Average error",
		"full", "TD only", "RTT-window correlation",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in report", want)
		}
	}
}

func TestAnalyzeJSONLTrace(t *testing.T) {
	path := writeTestTrace(t, true)
	var out bytes.Buffer
	if err := run([]string{"-format", "jsonl", "-wm", "16", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Trace summary") {
		t.Error("no summary in jsonl report")
	}
}

func TestBinaryMisdetectionHint(t *testing.T) {
	path := writeTestTrace(t, true) // jsonl content
	var out bytes.Buffer
	err := run([]string{path}, &out) // read as binary
	if err == nil || !strings.Contains(err.Error(), "-format") {
		t.Errorf("expected a -format hint, got %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing file should error")
	}
	if err := run([]string{"/does/not/exist.pftk"}, &out); err == nil {
		t.Error("nonexistent file should error")
	}
	path := writeTestTrace(t, false)
	if err := run([]string{"-format", "pcapng", path}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestAnalyzeTcpdumpFormat(t *testing.T) {
	res := pftk.Simulate(pftk.SimConfig{
		RTT: 0.1, LossRate: 0.03, Wm: 16, MinRTO: 1, Duration: 200, Seed: 6,
	})
	path := filepath.Join(t.TempDir(), "t.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeTcpdump(f, res.Trace); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-format", "tcpdump", "-wm", "16", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Trace summary") {
		t.Error("no summary from tcpdump input")
	}
}

func TestDupThreshChangesClassification(t *testing.T) {
	path := writeTestTrace(t, false)
	var a, b bytes.Buffer
	if err := run([]string{"-dupthresh", "3", path}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dupthresh", "100", path}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("dupthresh had no effect on classification")
	}
}

func TestFlightFlag(t *testing.T) {
	path := writeTestTrace(t, false)
	var out bytes.Buffer
	if err := run([]string{"-wm", "16", "-flight", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Flight reconstruction", "mean flight", "peak flight", "idle fraction"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

// TestVersionFlag checks -version prints the build identity.
func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "traceanal ") {
		t.Errorf("version output malformed: %q", out.String())
	}
}

// TestFlagValidation rejects non-positive interval widths and negative
// thresholds with a clear error before any file is read.
func TestFlagValidation(t *testing.T) {
	path := writeTestTrace(t, false)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero interval", []string{"-interval", "0", path}, "-interval must be"},
		{"negative interval", []string{"-interval", "-100", path}, "-interval must be"},
		{"negative dupthresh", []string{"-dupthresh", "-1", path}, "-dupthresh must be"},
		{"negative wm", []string{"-wm", "-4", path}, "-wm must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}
