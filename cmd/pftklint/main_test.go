package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a small Go module for the CLI to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const badSource = `package bad

func eq(a, b float64) bool { return a == b }
`

const cleanSource = `package clean

func eq(a, b float64) bool { return a == 0 && b == 0 }
`

func TestRunFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad/bad.go":     badSource,
		"clean/clean.go": cleanSource,
	})
	var out strings.Builder
	code, err := run([]string{"-C", dir, "./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (findings present)", code)
	}
	got := out.String()
	if !strings.Contains(got, "bad.go:3") || !strings.Contains(got, "floatcmp") {
		t.Errorf("output missing the expected finding:\n%s", got)
	}
	if strings.Contains(got, "clean.go") {
		t.Errorf("clean package must not be flagged:\n%s", got)
	}
}

func TestRunClean(t *testing.T) {
	dir := writeModule(t, map[string]string{"clean/clean.go": cleanSource})
	var out strings.Builder
	code, err := run([]string{"-C", dir}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0; output:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run must print nothing, got:\n%s", out.String())
	}
}

func TestRunOnlySubset(t *testing.T) {
	dir := writeModule(t, map[string]string{"bad/bad.go": badSource})
	// The only violation is floatcmp; restricting to errdrop must be clean.
	var out strings.Builder
	code, err := run([]string{"-C", dir, "-only", "errdrop", "./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("-only errdrop exit code = %d, want 0; output:\n%s", code, out.String())
	}
	if _, err := run([]string{"-C", dir, "-only", "nosuch"}, &out); err == nil {
		t.Error("-only with an unknown analyzer must error")
	}
}

func TestRunSingleDirAndList(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad/bad.go":     badSource,
		"clean/clean.go": cleanSource,
	})
	var out strings.Builder
	code, err := run([]string{"-C", dir, "./clean"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("linting only ./clean: exit code = %d, want 0; output:\n%s", code, out.String())
	}

	out.Reset()
	code, err = run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-list: code=%d err=%v", code, err)
	}
	for _, name := range []string{"floatcmp", "errdrop", "panicstyle", "mutexcopy"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}
