package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a small Go module for the CLI to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const badSource = `package bad

func eq(a, b float64) bool { return a == b }
`

const cleanSource = `package clean

func eq(a, b float64) bool { return a == 0 && b == 0 }
`

func TestRunFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad/bad.go":     badSource,
		"clean/clean.go": cleanSource,
	})
	var out strings.Builder
	code, err := run([]string{"-C", dir, "./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (findings present)", code)
	}
	got := out.String()
	if !strings.Contains(got, "bad.go:3") || !strings.Contains(got, "floatcmp") {
		t.Errorf("output missing the expected finding:\n%s", got)
	}
	if strings.Contains(got, "clean.go") {
		t.Errorf("clean package must not be flagged:\n%s", got)
	}
}

func TestRunClean(t *testing.T) {
	dir := writeModule(t, map[string]string{"clean/clean.go": cleanSource})
	var out strings.Builder
	code, err := run([]string{"-C", dir}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0; output:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run must print nothing, got:\n%s", out.String())
	}
}

func TestRunOnlySubset(t *testing.T) {
	dir := writeModule(t, map[string]string{"bad/bad.go": badSource})
	// The only violation is floatcmp; restricting to errdrop must be clean.
	var out strings.Builder
	code, err := run([]string{"-C", dir, "-only", "errdrop", "./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("-only errdrop exit code = %d, want 0; output:\n%s", code, out.String())
	}
	if _, err := run([]string{"-C", dir, "-only", "nosuch"}, &out); err == nil {
		t.Error("-only with an unknown analyzer must error")
	}
}

func TestRunSingleDirAndList(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad/bad.go":     badSource,
		"clean/clean.go": cleanSource,
	})
	var out strings.Builder
	code, err := run([]string{"-C", dir, "./clean"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("linting only ./clean: exit code = %d, want 0; output:\n%s", code, out.String())
	}

	out.Reset()
	code, err = run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-list: code=%d err=%v", code, err)
	}
	for _, name := range []string{
		"floatcmp", "errdrop", "panicstyle", "mutexcopy", "ctorparams",
		"hotalloc", "determinism", "guardedby", "directive", "jsontag", "ignoreaudit",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

const brokenSource = `package broken

func oops( {
`

func TestRunLoadErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"broken/broken.go": brokenSource,
		"bad/bad.go":       badSource,
	})
	var out strings.Builder
	code, err := run([]string{"-C", dir, "./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Exit code 2: a broken package must dominate findings — never be
	// silently skipped.
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (load errors dominate)", code)
	}
	got := out.String()
	if !strings.Contains(got, "load error: broken") {
		t.Errorf("output must name the broken package:\n%s", got)
	}
	// The loadable package's finding still surfaces.
	if !strings.Contains(got, "bad.go:3") || !strings.Contains(got, "floatcmp") {
		t.Errorf("findings in loadable packages must still be reported:\n%s", got)
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{"bad/bad.go": badSource})
	var out strings.Builder
	code, err := run([]string{"-C", dir, "-json", "./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	var doc struct {
		Module   string `json:"module"`
		Packages int    `json:"packages"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Module != "tmpmod" || doc.Packages != 1 {
		t.Errorf("module=%q packages=%d, want tmpmod/1", doc.Module, doc.Packages)
	}
	if len(doc.Findings) != 1 || doc.Findings[0].Analyzer != "floatcmp" ||
		doc.Findings[0].File != "bad/bad.go" || doc.Findings[0].Line != 3 {
		t.Errorf("unexpected findings: %+v", doc.Findings)
	}
}

func TestRunBaselineWorkflow(t *testing.T) {
	dir := writeModule(t, map[string]string{"bad/bad.go": badSource})
	var out strings.Builder

	// -check without a baseline file is an error, not a silent pass.
	if _, err := run([]string{"-C", dir, "-check", "./..."}, &out); err == nil {
		t.Error("-check with no baseline file must error")
	}

	// Accept the current findings.
	out.Reset()
	code, err := run([]string{"-C", dir, "-write-baseline", "./..."}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-write-baseline: code=%d err=%v\n%s", code, err, out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, ".pftklint-baseline.json")); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}

	// Baselined findings no longer fail -check.
	out.Reset()
	code, err = run([]string{"-C", dir, "-check", "./..."}, &out)
	if err != nil {
		t.Fatalf("run -check: %v", err)
	}
	if code != 0 {
		t.Errorf("-check with all findings baselined: code = %d, want 0\n%s", code, out.String())
	}

	// A new finding fails -check and is labelled as new.
	if err := os.WriteFile(filepath.Join(dir, "bad", "more.go"), []byte(`package bad

func neq(a, b float64) bool { return a != b }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run([]string{"-C", dir, "-check", "./..."}, &out)
	if err != nil {
		t.Fatalf("run -check: %v", err)
	}
	if code != 1 {
		t.Errorf("-check with a new finding: code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "new finding (not in baseline)") {
		t.Errorf("new finding must be labelled:\n%s", out.String())
	}

	// Fixing the original baselined finding makes its entry stale, which
	// also fails -check (rot must be pruned, not accumulated).
	if err := os.WriteFile(filepath.Join(dir, "bad", "bad.go"), []byte(cleanSource), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "bad", "more.go")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run([]string{"-C", dir, "-check", "./..."}, &out)
	if err != nil {
		t.Fatalf("run -check: %v", err)
	}
	if code != 1 {
		t.Errorf("-check with a stale baseline entry: code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "stale baseline entry") {
		t.Errorf("stale entry must be labelled:\n%s", out.String())
	}
}

func TestRunJSONCheck(t *testing.T) {
	dir := writeModule(t, map[string]string{"bad/bad.go": badSource})
	var out strings.Builder
	code, err := run([]string{"-C", dir, "-write-baseline", "./..."}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-write-baseline: code=%d err=%v", code, err)
	}

	// -json -check must emit ONE valid JSON document carrying the diff.
	out.Reset()
	code, err = run([]string{"-C", dir, "-json", "-check", "./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("baselined -json -check: code = %d, want 0", code)
	}
	var doc struct {
		Findings      []any `json:"findings"`
		NewFindings   []any `json:"new_findings"`
		StaleBaseline []any `json:"stale_baseline"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-json -check output is not one valid JSON document: %v\n%s", err, out.String())
	}
	if len(doc.Findings) != 1 {
		t.Errorf("report must still carry the baselined finding, got %d", len(doc.Findings))
	}
	if doc.NewFindings == nil || doc.StaleBaseline == nil {
		t.Error("new_findings and stale_baseline must be [] (never null) when clean")
	}
	if len(doc.NewFindings) != 0 || len(doc.StaleBaseline) != 0 {
		t.Errorf("clean check: new=%v stale=%v", doc.NewFindings, doc.StaleBaseline)
	}
}

func TestWriteBaselineRefusesPartialAnalysis(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"broken/broken.go": brokenSource,
		"bad/bad.go":       badSource,
	})
	var out strings.Builder
	if _, err := run([]string{"-C", dir, "-write-baseline", "./..."}, &out); err == nil {
		t.Error("-write-baseline over a module with load errors must refuse")
	}
	if _, err := os.Stat(filepath.Join(dir, ".pftklint-baseline.json")); !os.IsNotExist(err) {
		t.Error("no baseline file may be written from a partial analysis")
	}
}
