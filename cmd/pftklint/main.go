// Command pftklint runs the project's static-analysis suite
// (internal/lint) over the module. It is stdlib-only — packages are
// parsed with go/parser and type-checked with go/types against the
// source importer — so it runs anywhere the repository builds. Packages
// are analyzed in parallel on the shared worker pool, and packages that
// fail to parse or type-check are reported (never silently skipped).
//
// Usage:
//
//	pftklint ./...                  # lint every package in the module
//	pftklint ./internal/core        # lint one directory
//	pftklint -tests ./...           # include in-package _test.go files
//	pftklint -only floatcmp ./...   # run a subset of analyzers
//	pftklint -json ./...            # machine-readable report
//	pftklint -json -check ./...     # diff against the committed baseline
//	pftklint -write-baseline ./...  # accept the current findings
//
// Exit status: 0 clean, 1 findings (or baseline drift under -check),
// 2 load errors or usage errors. Load errors dominate findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pftk/internal/lint"
)

// defaultBaseline is the committed baseline file, relative to the
// module root.
const defaultBaseline = ".pftklint-baseline.json"

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "pftklint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the linter, printing diagnostics to out. It returns the
// process exit code: 0 clean, 1 findings, 2 load errors.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("pftklint", flag.ContinueOnError)
	var (
		dir      = fs.String("C", ".", "change to this directory before resolving packages")
		tests    = fs.Bool("tests", false, "also analyze in-package _test.go files")
		only     = fs.String("only", "", "comma-separated subset of analyzers to run")
		list     = fs.Bool("list", false, "list the available analyzers and exit")
		tags     = fs.String("tags", "", "comma-separated extra build tags to consider satisfied")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON")
		check    = fs.Bool("check", false, "diff findings against the baseline; new or stale entries fail")
		baseline = fs.String("baseline", "", "baseline file (default <module root>/"+defaultBaseline+")")
		writeBl  = fs.Bool("write-baseline", false, "write the current findings to the baseline file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *list {
		for _, a := range lint.Analyzers {
			if _, err := fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc); err != nil {
				return 2, err
			}
		}
		return 0, nil
	}

	analyzers := lint.Analyzers
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				return 2, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		return 2, err
	}
	loader.IncludeTests = *tests
	if *tags != "" {
		loader.Tags = strings.Split(*tags, ",")
	}

	dirs, err := resolvePatterns(loader, *dir, fs.Args())
	if err != nil {
		return 2, err
	}

	driver := &lint.Driver{Loader: loader, Analyzers: analyzers}
	report, err := driver.Run(dirs)
	if err != nil {
		return 2, err
	}

	blPath := *baseline
	if blPath == "" {
		blPath = filepath.Join(loader.Root(), defaultBaseline)
	}

	if *writeBl {
		if len(report.LoadErrors) > 0 {
			printLoadErrors(out, report)
			return 2, fmt.Errorf("refusing to write a baseline from a partial analysis (%d load errors)", len(report.LoadErrors))
		}
		if err := lint.NewBaseline(report).WriteFile(blPath); err != nil {
			return 2, err
		}
		if _, err := fmt.Fprintf(out, "wrote %d finding(s) to %s\n", len(report.Findings), blPath); err != nil {
			return 2, err
		}
		return 0, nil
	}

	code := report.ExitCode()
	var news []lint.Finding
	var stale []lint.BaselineEntry
	if *check {
		bl, err := lint.ReadBaseline(blPath)
		if err != nil {
			return 2, err
		}
		news, stale = bl.Diff(report)
		// Under -check the baseline decides: only unbaselined findings
		// (or rot in the baseline itself) fail, load errors still
		// dominate.
		code = 0
		if len(news) > 0 || len(stale) > 0 {
			code = 1
		}
		if len(report.LoadErrors) > 0 {
			code = 2
		}
	}

	if *jsonOut {
		// Under -check the baseline diff rides inside the JSON document
		// (appending text lines would corrupt the machine-readable
		// stream).
		var data []byte
		if *check {
			data, err = checkedJSON(report, news, stale)
		} else {
			data, err = report.JSON()
		}
		if err != nil {
			return 2, err
		}
		if _, err := out.Write(data); err != nil {
			return 2, err
		}
		return code, nil
	}
	for _, f := range report.Findings {
		if _, err := fmt.Fprintln(out, f); err != nil {
			return 2, err
		}
	}
	printLoadErrors(out, report)
	for _, f := range news {
		if _, err := fmt.Fprintf(out, "new finding (not in baseline): %s\n", f); err != nil {
			return 2, err
		}
	}
	for _, e := range stale {
		if _, err := fmt.Fprintf(out, "stale baseline entry (finding no longer fires): %s: %s: %s\n", e.File, e.Analyzer, e.Message); err != nil {
			return 2, err
		}
	}
	return code, nil
}

// checkedJSON renders the report plus the baseline diff as one JSON
// document.
func checkedJSON(report *lint.Report, news []lint.Finding, stale []lint.BaselineEntry) ([]byte, error) {
	if news == nil {
		news = []lint.Finding{}
	}
	if stale == nil {
		stale = []lint.BaselineEntry{}
	}
	doc := struct {
		*lint.Report
		NewFindings   []lint.Finding       `json:"new_findings"`
		StaleBaseline []lint.BaselineEntry `json:"stale_baseline"`
	}{report, news, stale}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// printLoadErrors reports broken packages in human mode; they are part
// of the JSON report already.
func printLoadErrors(out io.Writer, report *lint.Report) {
	for _, le := range report.LoadErrors {
		_, _ = fmt.Fprintf(out, "load error: %s: %s\n", le.Dir, le.Error)
	}
}

// resolvePatterns maps the command-line package patterns to directories.
// "./..." (or no argument at all) means the whole module; anything else
// is a directory path relative to -C.
func resolvePatterns(loader *lint.Loader, base string, patterns []string) ([]string, error) {
	var dirs []string
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." || pat == "all" {
			return nil, nil // whole module
		}
		dir := pat
		if !strings.HasPrefix(dir, "/") {
			dir = base + "/" + strings.TrimPrefix(dir, "./")
		}
		dirs = append(dirs, dir)
	}
	return dirs, nil
}
