// Command pftklint runs the project's static-analysis suite
// (internal/lint) over the module: floatcmp, errdrop, panicstyle and
// mutexcopy. It is stdlib-only — packages are parsed with go/parser and
// type-checked with go/types against the source importer — so it runs
// anywhere the repository builds.
//
// Usage:
//
//	pftklint ./...                  # lint every package in the module
//	pftklint ./internal/core        # lint one directory
//	pftklint -tests ./...           # include in-package _test.go files
//	pftklint -only floatcmp ./...   # run a subset of analyzers
//
// Diagnostics are printed one per line as file:line:col: analyzer:
// message, and the exit status is 1 if anything was reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pftk/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "pftklint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the linter, printing diagnostics to out. It returns the
// process exit code: 0 clean, 1 findings.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("pftklint", flag.ContinueOnError)
	var (
		dir   = fs.String("C", ".", "change to this directory before resolving packages")
		tests = fs.Bool("tests", false, "also analyze in-package _test.go files")
		only  = fs.String("only", "", "comma-separated subset of analyzers to run")
		list  = fs.Bool("list", false, "list the available analyzers and exit")
		tags  = fs.String("tags", "", "comma-separated extra build tags to consider satisfied")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *list {
		for _, a := range lint.Analyzers {
			if _, err := fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc); err != nil {
				return 2, err
			}
		}
		return 0, nil
	}

	analyzers := lint.Analyzers
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				return 2, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		return 2, err
	}
	loader.IncludeTests = *tests
	if *tags != "" {
		loader.Tags = strings.Split(*tags, ",")
	}

	pkgs, err := loadPatterns(loader, *dir, fs.Args())
	if err != nil {
		return 2, err
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		if _, err := fmt.Fprintln(out, d); err != nil {
			return 2, err
		}
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// loadPatterns resolves the command-line package patterns. "./..." (or no
// argument at all) means the whole module; anything else is a directory
// path relative to -C.
func loadPatterns(loader *lint.Loader, base string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return loader.LoadAll()
	}
	var pkgs []*lint.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." || pat == "all" {
			return loader.LoadAll()
		}
		dir := pat
		if !strings.HasPrefix(dir, "/") {
			dir = base + "/" + strings.TrimPrefix(dir, "./")
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if !seen[pkg.Path] {
			seen[pkg.Path] = true
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}
