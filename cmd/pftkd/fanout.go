package main

import (
	"hash/fnv"
	"net"
	"sync"
)

// fanoutGroup serves one kernel listener through n virtual listeners: a
// single accept loop hashes each connection's remote address onto a
// member, so every http.Server accept goroutine sees a stable shard of
// the peers. It is the SO_REUSEPORT fallback — same topology, one accept
// queue — used where the socket option is unavailable.
type fanoutGroup struct {
	base    net.Listener
	members []*fanoutListener
	done    chan struct{}
	once    sync.Once
	err     error // set by closeWith before done closes; read after <-done
}

// newFanoutGroup starts the accept loop feeding n members.
func newFanoutGroup(base net.Listener, n int) *fanoutGroup {
	g := &fanoutGroup{base: base, done: make(chan struct{})}
	for i := 0; i < n; i++ {
		g.members = append(g.members, &fanoutListener{g: g, ch: make(chan net.Conn, 64)})
	}
	go g.acceptLoop()
	return g
}

// listeners returns the n virtual listeners, each safe to hand to its
// own http.Server accept goroutine. Closing any of them closes the
// group (and the base listener), matching http.Server.Shutdown, which
// closes every registered listener.
func (g *fanoutGroup) listeners() []net.Listener {
	lns := make([]net.Listener, len(g.members))
	for i, m := range g.members {
		lns[i] = m
	}
	return lns
}

func (g *fanoutGroup) acceptLoop() {
	for {
		c, err := g.base.Accept()
		if err != nil {
			g.closeWith(err)
			return
		}
		m := g.members[shardOf(c.RemoteAddr().String(), len(g.members))]
		select {
		case m.ch <- c:
		case <-g.done:
			_ = c.Close()
			return
		}
	}
}

// closeWith shuts the group down once: the base listener closes, and
// every member's Accept returns err after draining already-routed
// connections.
func (g *fanoutGroup) closeWith(err error) {
	g.once.Do(func() {
		g.err = err
		_ = g.base.Close()
		close(g.done)
	})
}

// shardOf maps a remote address onto [0, n) by FNV-1a hash, keeping one
// peer's connections on one accept path.
func shardOf(remote string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(remote))
	return int(h.Sum32() % uint32(n))
}

// fanoutListener is one member's accept path.
type fanoutListener struct {
	g  *fanoutGroup
	ch chan net.Conn
}

func (l *fanoutListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.g.done:
		// Drain connections routed before shutdown so none are dropped
		// silently while a handler could still serve them.
		select {
		case c := <-l.ch:
			return c, nil
		default:
			return nil, l.g.err
		}
	}
}

func (l *fanoutListener) Close() error {
	l.g.closeWith(net.ErrClosed)
	return nil
}

func (l *fanoutListener) Addr() net.Addr {
	return l.g.base.Addr()
}
