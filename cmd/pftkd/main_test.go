package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFlagValidation rejects nonsensical sizing flags before binding a
// socket.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative workers", []string{"-workers", "-1"}, "-workers must be"},
		{"zero queue", []string{"-queue", "0"}, "-queue must be"},
		{"negative queue", []string{"-queue", "-8"}, "-queue must be"},
		{"zero cache", []string{"-cache", "0"}, "-cache must be"},
		{"zero maxbatch", []string{"-maxbatch", "0"}, "-maxbatch must be"},
		{"negative batchwait", []string{"-batchwait", "-1s"}, "-batchwait must be"},
		{"zero listeners", []string{"-listeners", "0"}, "-listeners must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(context.Background(), tc.args, &out, io.Discard)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "pftkd ") {
		t.Errorf("version output %q", out.String())
	}
}

// TestRunLifecycle boots the daemon on an ephemeral port, talks to it
// over real TCP, cancels the context and requires a graceful drain.
func TestRunLifecycle(t *testing.T) {
	addrfile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile, "-workers", "2"}, &out, io.Discard)
	}()

	// Wait for the address file: its presence means the listener is bound.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, err := os.ReadFile(addrfile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}

	base := "http://" + addr
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
	_ = resp.Body.Close()

	body := strings.NewReader(`{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`)
	resp, err = http.Post(base+"/v1/predict", "application/json", body)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	var pr struct {
		Rates map[string]float64 `json:"rates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode predict: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(pr.Rates) == 0 {
		t.Errorf("predict status %d rates %v", resp.StatusCode, pr.Rates)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after cancel")
	}
	for _, want := range []string{"listening on http://", "drained and stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestBadAddrFails covers the listen-error path.
func TestBadAddrFails(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, io.Discard)
	if err == nil {
		t.Fatal("expected listen error")
	}
	if strings.Contains(out.String(), "listening") {
		t.Errorf("claimed to listen despite error: %s", out.String())
	}
}
