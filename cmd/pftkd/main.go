// Command pftkd is the throughput-prediction and simulation daemon: a
// stdlib-only HTTP JSON service over the PFTK model family (full,
// approximate, TD-only and Markov predictions) and the packet-level
// validation simulator, with a bounded job queue, a fixed worker pool,
// an exact LRU result cache and 429 load shedding.
//
// Examples:
//
//	pftkd -addr 127.0.0.1:8080
//	pftkd -addr 127.0.0.1:0 -addrfile /tmp/pftkd.addr -workers 8
//	pftkd -addr 127.0.0.1:8080 -listeners 4 -batchwait 200us
//	curl -d '{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}' http://127.0.0.1:8080/v1/predict
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pftk/internal/cli"
	"pftk/internal/obs"
	"pftk/internal/serve"
	"pftk/internal/tracez"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fatal(err)
	}
}

// run starts the daemon and blocks until ctx is canceled (SIGINT/SIGTERM
// in production, a test context in tests), then shuts down gracefully:
// stop accepting connections, let in-flight handlers finish, drain the
// job queue.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pftkd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		addrfile  = fs.String("addrfile", "", "write the bound address to this file (for scripts with -addr :0)")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 256, "job queue depth; a full queue sheds load with 429")
		cache     = fs.Int("cache", 4096, "result cache entries")
		maxBatch  = fs.Int("maxbatch", 1024, "maximum points per predict batch (and per micro-batched pool job)")
		batchWait = fs.Duration("batchwait", 0, "micro-batching latency budget for single-point predicts (0 = dispatch immediately)")
		listeners = fs.Int("listeners", 1, "accept paths on -addr (SO_REUSEPORT where available, else a shard-by-hash accept loop)")
		debug     = fs.String("debugaddr", "", "serve expvar and pprof on this address (e.g. :0)")
		trace     = fs.Bool("trace", true, "record request spans and serve /debug/tracez")
		tracecap  = fs.Int("tracecap", 4096, "spans retained across the trace ring")
		accessLog = fs.String("accesslog", "", "write one access-log line per request to this file (\"-\" = stderr)")
		version   = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cli.NewWriter(stdout)
	if *version {
		w.Printf("pftkd %s\n", obs.BuildVersion())
		return w.Err()
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be positive (or 0 for GOMAXPROCS), got %d", *workers)
	}
	if *queue < 1 {
		return fmt.Errorf("-queue must be positive, got %d", *queue)
	}
	if *cache < 1 {
		return fmt.Errorf("-cache must be positive, got %d", *cache)
	}
	if *maxBatch < 1 {
		return fmt.Errorf("-maxbatch must be positive, got %d", *maxBatch)
	}
	if *batchWait < 0 {
		return fmt.Errorf("-batchwait must be non-negative, got %v", *batchWait)
	}
	if *listeners < 1 {
		return fmt.Errorf("-listeners must be positive, got %d", *listeners)
	}

	if *tracecap < 1 {
		return fmt.Errorf("-tracecap must be positive, got %d", *tracecap)
	}

	reg := obs.New()
	var tracer *tracez.Tracer
	if *trace {
		// 8 shards spread commit contention across handler goroutines;
		// the cap is the total spans retained.
		tracer = tracez.New(tracez.Options{Shards: 8, PerShard: (*tracecap + 7) / 8})
	}
	var logw io.Writer
	switch *accessLog {
	case "":
	case "-":
		logw = stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		// Error at close is uninteresting: the log is append-only and the
		// process is exiting.
		defer func() { _ = f.Close() }()
		logw = f
	}
	if *debug != "" {
		dbgAddr, err := obs.ServeDebug(*debug, reg,
			obs.Mount{Pattern: "/debug/tracez", Handler: tracer.Handler()})
		if err != nil {
			return err
		}
		_, _ = fmt.Fprintf(stderr, "debug server on http://%s/debug/\n", dbgAddr)
	}

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		MaxBatch:     *maxBatch,
		BatchWait:    *batchWait,
		Registry:     reg,
		Tracer:       tracer,
		AccessLog:    logw,
	})
	lns, lmode, err := listenAll(*addr, *listeners)
	if err != nil {
		return err
	}
	bound := lns[0].Addr().String()
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(bound), 0o644); err != nil {
			closeAll(lns)
			return err
		}
	}
	w.Printf("pftkd %s listening on http://%s\n", obs.BuildVersion(), bound)
	if len(lns) > 1 {
		w.Printf("  %d listeners (%s)\n", len(lns), lmode)
	}
	if err := w.Err(); err != nil {
		closeAll(lns)
		return err
	}

	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, len(lns))
	for _, ln := range lns {
		go func(l net.Listener) { errc <- hs.Serve(l) }(ln)
	}

	select {
	case err := <-errc:
		// Serve never returns nil; any return before shutdown is fatal.
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	for range lns {
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	// With the listener closed and handlers done, drain the job queue so
	// every accepted simulation reaches a terminal state.
	srv.Close()
	w.Printf("pftkd drained and stopped\n")
	return w.Err()
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "pftkd:", err)
	os.Exit(1)
}
