package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestListenAllSingle keeps the n==1 path a plain listener.
func TestListenAllSingle(t *testing.T) {
	lns, mode, err := listenAll("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(lns)
	if len(lns) != 1 || mode != "single" {
		t.Fatalf("got %d listeners mode %q, want 1 listener mode \"single\"", len(lns), mode)
	}
}

// TestListenAllMulti opens n accept paths on one address and proves each
// serves real connections. Both multi-listener modes (reuseport on Linux,
// fanout elsewhere) must satisfy the same contract, so the test only pins
// mode to a non-single value.
func TestListenAllMulti(t *testing.T) {
	const n = 3
	lns, mode, err := listenAll("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(lns)
	if len(lns) != n {
		t.Fatalf("got %d listeners, want %d", len(lns), n)
	}
	if mode != "reuseport" && mode != "fanout" {
		t.Fatalf("mode %q, want reuseport or fanout", mode)
	}
	addr := lns[0].Addr().String()
	for i, ln := range lns {
		if ln.Addr().String() != addr {
			t.Fatalf("listener %d bound %s, want %s", i, ln.Addr(), addr)
		}
	}

	// Echo-accept on every path, then dial repeatedly: every connection
	// must be served no matter which accept queue the kernel (or the
	// fanout hash) routes it to.
	var wg sync.WaitGroup
	for _, ln := range lns {
		wg.Add(1)
		go func(ln net.Listener) {
			defer wg.Done()
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				_, _ = c.Write([]byte("ok"))
				_ = c.Close()
			}
		}(ln)
	}
	for i := 0; i < 8; i++ {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		buf := make([]byte, 2)
		_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ok" {
			t.Fatalf("conn %d: read %q, %v", i, buf, err)
		}
		_ = c.Close()
	}
	closeAll(lns)
	wg.Wait()
}

// TestFanoutGroupCloseUnblocksAccept pins the shutdown contract the
// http.Server relies on: closing one member stops the whole group and
// every blocked Accept returns an error.
func TestFanoutGroupCloseUnblocksAccept(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g := newFanoutGroup(base, 2)
	lns := g.listeners()

	errs := make(chan error, len(lns))
	for _, ln := range lns {
		go func(ln net.Listener) {
			_, err := ln.Accept()
			errs <- err
		}(ln)
	}
	if err := lns[0].Close(); err != nil {
		t.Fatal(err)
	}
	for range lns {
		select {
		case err := <-errs:
			if !errors.Is(err, net.ErrClosed) {
				t.Errorf("Accept returned %v, want net.ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Accept still blocked after group close")
		}
	}
	// The base socket must be released too.
	if c, err := net.DialTimeout("tcp", base.Addr().String(), 250*time.Millisecond); err == nil {
		_ = c.Close()
		t.Error("base listener still accepting after group close")
	}
}

// TestShardOfStable keeps the remote-address hash deterministic and in
// range, so one peer's connections stay on one accept path.
func TestShardOfStable(t *testing.T) {
	for _, remote := range []string{"10.0.0.1:1234", "10.0.0.2:80", "[::1]:9"} {
		first := shardOf(remote, 4)
		if first < 0 || first >= 4 {
			t.Fatalf("shardOf(%q, 4) = %d out of range", remote, first)
		}
		if again := shardOf(remote, 4); again != first {
			t.Fatalf("shardOf(%q) unstable: %d then %d", remote, first, again)
		}
	}
}

// TestRunMultiListener boots the daemon with -listeners 2 and serves
// requests end to end, then drains cleanly — the full lifecycle over
// whichever multi-listener mode the platform provides.
func TestRunMultiListener(t *testing.T) {
	addrfile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile, "-listeners", "2", "-workers", "2"}, &out, io.Discard)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, err := os.ReadFile(addrfile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}

	for i := 0; i < 4; i++ {
		body := strings.NewReader(`{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`)
		resp, err := http.Post("http://"+addr+"/v1/predict", "application/json", body)
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d status %d", i, resp.StatusCode)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after cancel")
	}
	if !strings.Contains(out.String(), "2 listeners (") {
		t.Errorf("output missing listener-mode line:\n%s", out.String())
	}
}
