//go:build !linux

package main

import (
	"errors"
	"net"
)

// listenReusePort is not attempted off linux (the option constant and its
// load-balancing semantics are platform-specific); listenAll falls back
// to the fanout accept loop.
func listenReusePort(string, int) ([]net.Listener, error) {
	return nil, errors.ErrUnsupported
}
