package main

import (
	"net"
)

// listenAll opens n accept paths on addr. n == 1 is a plain listener;
// for n > 1 each listener gets its own http.Server accept goroutine, so
// connection admission scales past one accept loop.
//
// The preferred mechanism is SO_REUSEPORT: n independent kernel sockets
// bound to one address, with the kernel hashing incoming connections
// across their accept queues. Where reuse-port is unavailable (platform
// or socket rejects it) the fallback is a single kernel socket fanned out
// by a shard-by-hash accept loop (fanout.go). The returned mode names
// which path was taken: "single", "reuseport" or "fanout".
func listenAll(addr string, n int) ([]net.Listener, string, error) {
	if n <= 1 {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, "", err
		}
		return []net.Listener{ln}, "single", nil
	}
	if lns, err := listenReusePort(addr, n); err == nil {
		return lns, "reuseport", nil
	}
	base, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	return newFanoutGroup(base, n).listeners(), "fanout", nil
}

// closeAll closes every listener, keeping the first error.
func closeAll(lns []net.Listener) {
	for _, ln := range lns {
		_ = ln.Close()
	}
}
