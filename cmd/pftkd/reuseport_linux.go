//go:build linux

package main

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT, which the frozen stdlib syscall package
// never gained on linux; the value is 0x0f on every linux architecture.
const soReusePort = 0x0f

// listenReusePort opens n independent TCP listeners on the same address
// via SO_REUSEPORT. Each is its own kernel socket with its own accept
// queue; the kernel load-balances incoming connections across them. The
// first listener resolves addr (host:0 picks the port); the rest bind the
// resolved address so all n share it.
func listenReusePort(addr string, n int) ([]net.Listener, error) {
	lc := net.ListenConfig{Control: func(_, _ string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		bind := addr
		if i > 0 {
			bind = lns[0].Addr().String()
		}
		ln, err := lc.Listen(context.Background(), "tcp", bind)
		if err != nil {
			closeAll(lns)
			return nil, err
		}
		lns = append(lns, ln)
	}
	return lns, nil
}
