package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"pftk/internal/chaos/chaoshttp"
)

// TestCrashRecoveryDrill is the daemon's crash-recovery lifecycle test:
// build the real binary, load it with in-flight simulations, SIGKILL it
// mid-flight, restart, and assert the recovery contract — the restarted
// daemon is healthy, owes nothing to the dead process's job table,
// runs identical resubmitted jobs to completion, replays them from
// cache, and still drains cleanly on SIGTERM. The drill itself lives in
// internal/chaos/chaoshttp so `pftkchaos -mode drill` runs the same
// checks against any build.
func TestCrashRecoveryDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	bin := filepath.Join(t.TempDir(), "pftkd")
	build := exec.Command("go", "build", "-o", bin, "pftk/cmd/pftkd")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pftkd: %v\n%s", err, out)
	}

	rep, err := chaoshttp.Drill(chaoshttp.DrillConfig{
		Binary:  bin,
		Jobs:    4,
		Seed:    uint64(os.Getpid()), // vary the cache keys between test runs
		Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("[%s] %s", v.Invariant, v.Detail)
	}
	if rep.KilledInFlight == 0 {
		t.Error("drill killed an idle daemon; the crash was not exercised mid-flight")
	}
}

// moduleRoot locates the repository root (the directory holding go.mod)
// so the build works under any test working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}
