// Command pftkchaos runs randomized scenario-soak campaigns against the
// simulator: it samples cases from a distribution spec (see
// internal/chaos), executes them across a worker pool, checks the
// global invariants on every run — packet conservation, metric
// reconciliation, phase attribution, model envelope, byte-exact replay
// — and, on failure, shrinks the case to a minimal repro in the corpus
// directory. In -mode http the same cases are fed to a live pftkd and
// cross-checked against the in-process oracle; -mode drill runs the
// kill-and-restart crash-recovery drill against a pftkd binary.
//
// Examples:
//
//	pftkchaos -n 500 -seed 1 -j 8 -out report.json
//	pftkchaos -spec custom.json -n 2000 -corpus testdata/chaos-corpus
//	pftkchaos -mode http -url http://127.0.0.1:8080 -n 50
//	pftkchaos -mode drill -pftkd ./pftkd
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"pftk/internal/chaos"
	"pftk/internal/chaos/chaoshttp"
	"pftk/internal/cli"
	"pftk/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pftkchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath  = fs.String("spec", "", "distribution spec JSON (empty = built-in default)")
		printSpec = fs.Bool("printspec", false, "print the effective spec JSON and exit")
		n         = fs.Int("n", 500, "cases to generate and check")
		seed      = fs.Uint64("seed", 1, "campaign seed; (spec, seed) replays the campaign exactly")
		j         = fs.Int("j", runtime.GOMAXPROCS(0), "worker pool size")
		out       = fs.String("out", "", "write the campaign report JSON to this file (\"-\" = stdout)")
		corpus    = fs.String("corpus", "", "write shrunk minimal repros into this directory")
		maxRepros = fs.Int("maxrepros", 5, "failures to shrink and persist per campaign")
		mode      = fs.String("mode", "sim", "sim (local invariant soak), http (feed a live pftkd), drill (crash-recovery drill)")
		url       = fs.String("url", "http://127.0.0.1:8080", "pftkd base URL for -mode http")
		pftkd     = fs.String("pftkd", "", "pftkd binary path for -mode drill")
		maxWall   = fs.Duration("maxwall", 0, "kill the campaign if it outlives this wall-clock budget (0 = no box)")
		progress  = fs.Bool("progress", false, "print a progress line every 100 cases")
		version   = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cli.NewWriter(stdout)
	if *version {
		w.Printf("pftkchaos %s\n", obs.BuildVersion())
		return w.Err()
	}
	if *n < 1 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	if *j < 1 {
		return fmt.Errorf("-j must be positive, got %d", *j)
	}
	if *maxRepros < 1 {
		return fmt.Errorf("-maxrepros must be positive, got %d", *maxRepros)
	}
	switch *mode {
	case "sim", "http", "drill":
	default:
		return fmt.Errorf("unknown -mode %q (valid: sim, http, drill)", *mode)
	}
	if *mode == "drill" && *pftkd == "" {
		return fmt.Errorf("-mode drill needs -pftkd <binary>")
	}

	sp := new(chaos.Spec)
	if *specPath == "" {
		*sp = chaos.DefaultSpec()
	} else {
		loaded, err := chaos.ParseSpecFile(*specPath)
		if err != nil {
			return err
		}
		sp = loaded
	}
	if *printSpec {
		data, err := sp.Encode()
		if err != nil {
			return err
		}
		w.WriteString(string(data))
		return w.Err()
	}

	if *maxWall > 0 {
		// A hard wall-clock box: a wedged campaign (livelocked run,
		// stuck daemon) must fail loudly in CI, not hang it.
		time.AfterFunc(*maxWall, func() {
			_, _ = fmt.Fprintf(stderr, "pftkchaos: campaign exceeded -maxwall %v\n", *maxWall)
			os.Exit(3)
		})
	}

	switch *mode {
	case "http":
		return runHTTP(w, sp, *url, *seed, *n)
	case "drill":
		return runDrill(w, stderr, *pftkd, *seed)
	}

	cfg := chaos.Config{
		Spec:      sp,
		Runs:      *n,
		Seed:      *seed,
		Workers:   *j,
		CorpusDir: *corpus,
		MaxRepros: *maxRepros,
	}
	if *progress {
		cfg.Progress = func(done, total int) {
			if done%100 == 0 || done == total {
				_, _ = fmt.Fprintf(stderr, "pftkchaos: %d/%d\n", done, total)
			}
		}
	}
	rep, err := chaos.Run(cfg)
	if err != nil {
		return err
	}
	if err := writeReport(w, *out, rep); err != nil {
		return err
	}
	w.Printf("pftkchaos: %d cases, %d failures (spec %s seed %d)\n",
		rep.Runs, rep.Failures, rep.SpecHash[:8], rep.Seed)
	for _, o := range rep.Outcomes {
		for _, v := range o.Violations {
			w.Printf("  case %d [%s]: %s\n", o.Index, v.Invariant, v.Detail)
		}
	}
	for _, path := range rep.Repros {
		w.Printf("  minimal repro: %s\n", path)
	}
	if err := w.Err(); err != nil {
		return err
	}
	if rep.Failures > 0 {
		return fmt.Errorf("%d of %d cases violated invariants", rep.Failures, rep.Runs)
	}
	return nil
}

// writeReport renders the report to -out (file, stdout, or nowhere).
func writeReport(w *cli.Writer, out string, rep *chaos.Report) error {
	if out == "" {
		return nil
	}
	data, err := rep.Encode()
	if err != nil {
		return err
	}
	if out == "-" {
		w.WriteString(string(data))
		return w.Err()
	}
	return os.WriteFile(out, data, 0o644)
}

// runHTTP feeds the campaign to a live daemon and reports cross-check
// violations.
func runHTTP(w *cli.Writer, sp *chaos.Spec, url string, seed uint64, n int) error {
	rep, err := chaoshttp.Feed(chaoshttp.FeedConfig{URL: url, Spec: sp, Seed: seed, Cases: n})
	if err != nil {
		return err
	}
	w.Printf("pftkchaos: http campaign against %s: %d submitted, %d completed, %d cache replays, %d violations\n",
		url, rep.Submitted, rep.Completed, rep.CacheHits, len(rep.Violations))
	for _, v := range rep.Violations {
		w.Printf("  [%s] %s\n", v.Invariant, v.Detail)
	}
	if err := w.Err(); err != nil {
		return err
	}
	if rep.Failed() {
		return fmt.Errorf("%d cross-check violations", len(rep.Violations))
	}
	return nil
}

// runDrill runs the kill-and-restart crash-recovery drill.
func runDrill(w *cli.Writer, stderr io.Writer, binary string, seed uint64) error {
	rep, err := chaoshttp.Drill(chaoshttp.DrillConfig{Binary: binary, Seed: seed, Log: stderr})
	if err != nil {
		return err
	}
	w.Printf("pftkchaos: drill: %d jobs killed in flight, %d violations\n",
		rep.KilledInFlight, len(rep.Violations))
	for _, v := range rep.Violations {
		w.Printf("  [%s] %s\n", v.Invariant, v.Detail)
	}
	if err := w.Err(); err != nil {
		return err
	}
	if rep.Failed() {
		return fmt.Errorf("%d crash-recovery violations", len(rep.Violations))
	}
	return nil
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "pftkchaos:", err)
	os.Exit(1)
}
