package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pftk/internal/chaos"
)

// TestFlagValidation rejects bad counts and modes before any work runs.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero n", []string{"-n", "0"}, "-n must be"},
		{"zero j", []string{"-j", "0"}, "-j must be"},
		{"zero maxrepros", []string{"-maxrepros", "0"}, "-maxrepros must be"},
		{"bad mode", []string{"-mode", "yolo"}, "unknown -mode"},
		{"drill without binary", []string{"-mode", "drill"}, "needs -pftkd"},
		{"missing spec file", []string{"-spec", "/nonexistent/spec.json"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out, io.Discard)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestVersionFlag prints a version and exits cleanly.
func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pftkchaos") {
		t.Errorf("version output %q", out.String())
	}
}

// TestPrintSpecRoundTrips pins that -printspec emits a document the
// strict spec parser accepts — the documented way to start a custom
// spec.
func TestPrintSpecRoundTrips(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-printspec"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	sp, err := chaos.ParseSpec(out.Bytes())
	if err != nil {
		t.Fatalf("printed spec does not re-parse: %v", err)
	}
	def := chaos.DefaultSpec()
	if sp.Hash() != def.Hash() {
		t.Error("printed spec is not the default spec")
	}
}

// TestSmallCampaignDeterministicReport runs two tiny same-seed
// campaigns end to end through the CLI and requires byte-identical
// report files — the exact property `make chaos-smoke` checks at scale.
func TestSmallCampaignDeterministicReport(t *testing.T) {
	dir := t.TempDir()
	spec := writeTestSpec(t, dir)
	runOnce := func(name string, workers string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		var out bytes.Buffer
		if err := run([]string{"-spec", spec, "-n", "6", "-seed", "9", "-j", workers, "-out", path},
			&out, io.Discard); err != nil {
			t.Fatalf("campaign failed: %v\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "6 cases, 0 failures") {
			t.Fatalf("summary %q", out.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := runOnce("a.json", "1")
	b := runOnce("b.json", "4")
	if !bytes.Equal(a, b) {
		t.Error("reports differ between -j1 and -j4")
	}
}

// writeTestSpec persists a fast test spec (short runs) and returns its
// path.
func writeTestSpec(t *testing.T, dir string) string {
	t.Helper()
	sp := chaos.DefaultSpec()
	sp.Name = "clitest"
	sp.Duration = chaos.Range{Min: 2, Max: 4}
	sp.FaultDur = chaos.Range{Min: 0.1, Max: 0.5}
	data, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
