package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestPointEvaluation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rtt", "0.2", "-t0", "2", "-wm", "12", "-p", "0.02"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"full", "approx", "tdonly", "throughput", "pkts/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSingleModelSelection(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-p", "0.02", "-model", "full"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "full") || strings.Contains(s, "tdonly") {
		t.Errorf("model selection failed:\n%s", s)
	}
}

func TestCurveOutputIsCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rtt", "0.2", "-t0", "2", "-curve", "1e-3:0.1:5", "-model", "full"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want header + 5 points:\n%s", len(lines), out.String())
	}
	if lines[0] != "p,full" {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != 2 {
			t.Errorf("bad CSV row %q", l)
		}
	}
}

func TestInvert(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rtt", "0.2", "-t0", "2", "-invert", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loss rate for 20.000") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no action
		{"-p", "0.02", "-rtt", "0"}, // invalid params
		{"-p", "0.02", "-model", "bogus"},
		{"-curve", "nonsense", "-model", "full"},
		{"-curve", "0.5:0.1:x"},
		{"-invert", "1e12", "-wm", "8"}, // unreachable rate
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestParseCurve(t *testing.T) {
	pmin, pmax, n, err := parseCurve("1e-4:0.5:50")
	if err != nil || pmin != 1e-4 || pmax != 0.5 || n != 50 {
		t.Errorf("parseCurve: %g %g %d %v", pmin, pmax, n, err)
	}
	for _, bad := range []string{"", "1:2", "a:b:c", "1:2:3:4"} {
		if _, _, _, err := parseCurve(bad); err == nil {
			t.Errorf("parseCurve(%q) should fail", bad)
		}
	}
}

func TestRegimeFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rtt", "0.2", "-t0", "2", "-wm", "6", "-p", "0.001", "-regime"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "regime: window-limited") {
		t.Errorf("regime missing:\n%s", s)
	}
	if !strings.Contains(s, "elasticities") {
		t.Errorf("elasticities missing:\n%s", s)
	}
}

// TestVersionFlag checks -version prints the build identity.
func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tcpmodel ") {
		t.Errorf("version output malformed: %q", out.String())
	}
}

// TestFlagValidation rejects non-positive or out-of-domain flag values
// with a clear error instead of silently producing degenerate output.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero b", []string{"-b", "0", "-p", "0.02"}, "-b must be"},
		{"negative b", []string{"-b", "-2", "-p", "0.02"}, "-b must be"},
		{"p above 1", []string{"-p", "1.5"}, "must be in [0, 1]"},
		{"zero invert target", []string{"-invert", "0"}, "must be positive"},
		{"negative invert target", []string{"-invert", "-3"}, "must be positive"},
		{"zero curve pmin", []string{"-curve", "0:0.5:50"}, "pmin must be"},
		{"inverted curve range", []string{"-curve", "0.5:0.1:50"}, "pmax must be at least"},
		{"curve pmax above 1", []string{"-curve", "0.1:2:50"}, "at most 1"},
		{"one-point curve", []string{"-curve", "1e-4:0.5:1"}, "at least 2 points"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}
