// Command tcpmodel evaluates the PFTK TCP throughput model from the
// command line: single points, log-spaced curves, and the inverse
// ("TCP-friendly") computation.
//
// Examples:
//
//	tcpmodel -rtt 0.2 -t0 2.0 -wm 12 -p 0.02
//	tcpmodel -rtt 0.2 -t0 2.0 -wm 12 -curve 1e-4:0.5:50 -model all
//	tcpmodel -rtt 0.2 -t0 2.0 -wm 12 -invert 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pftk"
	"pftk/internal/cli"
	"pftk/internal/core"
	"pftk/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fatal(err)
	}
}

// errUsage asks main to print usage and exit non-zero.
var errUsage = fmt.Errorf("no action requested: pass -p, -curve or -invert")

// run executes the tool against args, writing to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tcpmodel", flag.ContinueOnError)
	var (
		rtt     = fs.Float64("rtt", 0.2, "average round trip time in seconds")
		t0      = fs.Float64("t0", 2.0, "average first timeout duration in seconds")
		wm      = fs.Float64("wm", 0, "receiver window in packets (0 = unlimited)")
		b       = fs.Int("b", 2, "packets acknowledged per ACK (delayed ACKs: 2)")
		p       = fs.Float64("p", -1, "evaluate the models at this loss rate")
		curve   = fs.String("curve", "", "sample a curve: pmin:pmax:points")
		model   = fs.String("model", "all", "model: full, approx, tdonly, throughput, or all")
		invert  = fs.Float64("invert", -1, "find the loss rate achieving this rate (pkts/s)")
		regime  = fs.Bool("regime", false, "with -p: also report the operating regime and input sensitivities")
		version = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		vw := cli.NewWriter(out)
		vw.Printf("tcpmodel %s\n", obs.BuildVersion())
		return vw.Err()
	}

	if *b < 1 {
		return fmt.Errorf("-b must be at least 1, got %d", *b)
	}
	params := pftk.Params{RTT: *rtt, T0: *t0, Wm: *wm, B: *b}
	if err := params.Validate(); err != nil {
		return err
	}
	if *p > 1 {
		return fmt.Errorf("-p is a loss rate and must be in [0, 1], got %v", *p)
	}
	if *invert != -1 && *invert <= 0 {
		return fmt.Errorf("-invert target rate must be positive packets/s, got %v", *invert)
	}

	models := map[string]pftk.Model{
		"full":       pftk.ModelFull,
		"approx":     pftk.ModelApprox,
		"tdonly":     pftk.ModelTDOnly,
		"throughput": pftk.ModelThroughput,
	}
	var selected []string
	if *model == "all" {
		selected = []string{"full", "approx", "tdonly", "throughput"}
	} else {
		if _, ok := models[*model]; !ok {
			return fmt.Errorf("unknown model %q", *model)
		}
		selected = []string{*model}
	}

	w := cli.NewWriter(out)
	switch {
	case *invert > 0:
		lp, err := pftk.LossRateFor(*invert, params)
		if err != nil {
			return err
		}
		w.Printf("loss rate for %.3f pkts/s: p = %.6g\n", *invert, lp)
		w.Printf("check: B(%.6g) = %.3f pkts/s\n", lp, pftk.SendRate(lp, params))

	case *curve != "":
		pmin, pmax, n, err := parseCurve(*curve)
		if err != nil {
			return err
		}
		w.Printf("p")
		for _, name := range selected {
			w.Printf(",%s", name)
		}
		w.Println()
		curves := make([][]pftk.CurvePoint, len(selected))
		for i, name := range selected {
			curves[i] = pftk.Curve(models[name], params, pmin, pmax, n)
		}
		for j := 0; j < n; j++ {
			w.Printf("%.6g", curves[0][j].P)
			for i := range selected {
				w.Printf(",%.6g", curves[i][j].Rate)
			}
			w.Println()
		}

	case *p >= 0:
		w.Printf("%s at p=%g:\n", params, *p)
		for _, name := range selected {
			w.Printf("  %-12s %10.3f pkts/s\n", name, models[name].Rate(*p, params))
		}
		if *regime {
			rg := core.ClassifyRegime(*p, params)
			e := core.SendRateElasticities(*p, params)
			w.Printf("regime: %s\n", rg)
			w.Printf("elasticities (d log B / d log x): p %+0.2f, RTT %+0.2f, T0 %+0.2f, Wm %+0.2f\n",
				e.P, e.RTT, e.T0, e.Wm)
		}

	default:
		return errUsage
	}
	return w.Err()
}

func parseCurve(s string) (pmin, pmax float64, n int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("curve spec must be pmin:pmax:points, got %q", s)
	}
	if pmin, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return
	}
	if pmax, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return
	}
	if n, err = strconv.Atoi(parts[2]); err != nil {
		return
	}
	switch {
	case !(pmin > 0):
		err = fmt.Errorf("curve pmin must be a positive loss rate, got %v", pmin)
	case pmax < pmin:
		err = fmt.Errorf("curve pmax must be at least pmin (%v), got %v", pmin, pmax)
	case pmax > 1:
		err = fmt.Errorf("curve pmax is a loss rate and must be at most 1, got %v", pmax)
	case n < 2:
		err = fmt.Errorf("curve needs at least 2 points, got %d", n)
	}
	return
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "tcpmodel:", err)
	os.Exit(1)
}
