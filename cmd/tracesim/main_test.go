package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pftk/internal/trace"
)

func TestSummaryOnly(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dur", "30", "-loss", "0.02"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"send rate", "throughput", "loss indication rate", "trace records"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if strings.Contains(s, "wrote") {
		t.Error("should not write a file without -o")
	}
}

func TestWritesBinaryTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pftk")
	var out bytes.Buffer
	if err := run([]string{"-dur", "30", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(tr) == 0 {
		t.Error("empty trace written")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("invalid trace: %v", err)
	}
}

func TestWritesJSONLTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-dur", "20", "-format", "jsonl", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.DecodeJSONL(f)
	if err != nil || len(tr) == 0 {
		t.Fatalf("jsonl decode: %v (%d records)", err, len(tr))
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.x")
	var out bytes.Buffer
	if err := run([]string{"-dur", "5", "-format", "yaml", "-o", path}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestDeterministicSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-dur", "30", "-seed", "7"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dur", "30", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

// TestVersionFlag checks -version prints the build identity and exits
// without simulating.
func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tracesim ") {
		t.Errorf("version output malformed: %q", out.String())
	}
}

// TestDebugAddr starts the diagnostics endpoint on an ephemeral port.
func TestDebugAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dur", "5", "-debugaddr", "127.0.0.1:0"}, &out); err != nil {
		t.Fatal(err)
	}
}

// TestFlagValidation rejects non-positive durations and out-of-domain
// rates instead of silently substituting defaults.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero duration", []string{"-dur", "0"}, "-dur must be"},
		{"negative duration", []string{"-dur", "-10"}, "-dur must be"},
		{"zero rtt", []string{"-rtt", "0"}, "-rtt must be"},
		{"negative loss", []string{"-loss", "-0.1"}, "must be in [0, 1]"},
		{"loss above 1", []string{"-loss", "1.5"}, "must be in [0, 1]"},
		{"negative burst", []string{"-burst", "-1"}, "-burst must be"},
		{"zero minrto", []string{"-minrto", "0"}, "-minrto must be"},
		{"zero wm", []string{"-wm", "0"}, "-wm must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
			if out.Len() > 0 {
				t.Errorf("args %v: partial output before validation error:\n%s", tc.args, out.String())
			}
		})
	}
}

// TestScenarioFlag drives a scheduled step-loss run through the CLI:
// the scenario file is parsed, the per-segment attribution is printed,
// and a lossier second half means more retransmissions than the
// scenario-free twin.
func TestScenarioFlag(t *testing.T) {
	scn := filepath.Join(t.TempDir(), "step.json")
	doc := `{"name":"step","phases":[{"at":50,"loss":{"rate":0.2}}]}`
	if err := os.WriteFile(scn, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var with, without bytes.Buffer
	args := []string{"-dur", "100", "-loss", "0.01", "-seed", "3"}
	if err := run(append(args, "-scenario", scn), &with); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &without); err != nil {
		t.Fatal(err)
	}
	s := with.String()
	if !strings.Contains(s, "scenario base [0, 50)") || !strings.Contains(s, "scenario phase 0 [50, 100)") {
		t.Errorf("per-segment attribution missing from output:\n%s", s)
	}
	if strings.Contains(without.String(), "scenario") {
		t.Errorf("scenario-free run printed segment stats:\n%s", without.String())
	}
}

// TestScenarioFlagRejectsBadFile surfaces parse and validation errors
// with the flag's name attached.
func TestScenarioFlagRejectsBadFile(t *testing.T) {
	scn := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(scn, []byte(`{"phases":[{"at":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-dur", "5", "-scenario", scn}, &out)
	if err == nil || !strings.Contains(err.Error(), "-scenario") {
		t.Errorf("bad scenario file not rejected with flag context: %v", err)
	}
	err = run([]string{"-dur", "5", "-scenario", filepath.Join(t.TempDir(), "missing.json")}, &out)
	if err == nil {
		t.Error("missing scenario file accepted")
	}
}

// TestProfileFlags: -cpuprofile and -memprofile write non-empty pprof
// files covering the simulation.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run([]string{"-dur", "60", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	if err := run([]string{"-dur", "5", "-cpuprofile", filepath.Join(dir, "no", "cpu")}, &out); err == nil {
		t.Error("uncreatable -cpuprofile path accepted")
	}
}
