package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pftk/internal/trace"
)

func TestSummaryOnly(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dur", "30", "-loss", "0.02"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"send rate", "throughput", "loss indication rate", "trace records"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if strings.Contains(s, "wrote") {
		t.Error("should not write a file without -o")
	}
}

func TestWritesBinaryTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pftk")
	var out bytes.Buffer
	if err := run([]string{"-dur", "30", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(tr) == 0 {
		t.Error("empty trace written")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("invalid trace: %v", err)
	}
}

func TestWritesJSONLTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-dur", "20", "-format", "jsonl", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.DecodeJSONL(f)
	if err != nil || len(tr) == 0 {
		t.Fatalf("jsonl decode: %v (%d records)", err, len(tr))
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.x")
	var out bytes.Buffer
	if err := run([]string{"-dur", "5", "-format", "yaml", "-o", path}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestDeterministicSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-dur", "30", "-seed", "7"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dur", "30", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

// TestVersionFlag checks -version prints the build identity and exits
// without simulating.
func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tracesim ") {
		t.Errorf("version output malformed: %q", out.String())
	}
}

// TestDebugAddr starts the diagnostics endpoint on an ephemeral port.
func TestDebugAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dur", "5", "-debugaddr", "127.0.0.1:0"}, &out); err != nil {
		t.Fatal(err)
	}
}
