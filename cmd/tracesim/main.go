// Command tracesim runs one simulated TCP Reno bulk transfer over an
// emulated lossy path and writes the sender-side trace — the substitute
// for running tcpdump next to a real sender.
//
// Example:
//
//	tracesim -rtt 0.2 -loss 0.02 -burst 0.3 -wm 12 -dur 3600 -o trace.pftk
//	tracesim -rtt 0.1 -loss 0.05 -format jsonl -o trace.jsonl
//	tracesim -loss 0.01 -dur 600 -scenario examples/scenarios/step-loss.json -o step.pftk
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pftk"
	"pftk/internal/cli"
	"pftk/internal/obs"
	"pftk/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes the tool against args, writing human output to stdout.
func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("tracesim", flag.ContinueOnError)
	var (
		rtt     = fs.Float64("rtt", 0.2, "path round trip time in seconds")
		loss    = fs.Float64("loss", 0.02, "loss-burst start probability per packet")
		burst   = fs.Float64("burst", 0, "loss outage duration in seconds (0 = isolated losses)")
		wm      = fs.Int("wm", 16, "receiver advertised window in packets")
		minRTO  = fs.Float64("minrto", 1.0, "RTO floor in seconds (shapes T0)")
		dur     = fs.Float64("dur", 100, "transfer duration in simulated seconds")
		seed    = fs.Uint64("seed", 1, "random seed")
		variant = fs.String("variant", "reno", "sender TCP flavor: reno, tahoe, linux, irix, newreno")
		scnFile = fs.String("scenario", "", "JSON scenario file scheduling path changes and faults over the run")
		out     = fs.String("o", "", "output trace file (default stdout summary only)")
		format  = fs.String("format", "binary", "trace format: binary, jsonl or tcpdump")
		flight  = fs.Int("flight", 0, "attach a flight recorder retaining the last N engine events, dumped to stderr if the run panics (0 = off)")
		debug   = fs.String("debugaddr", "", "serve expvar and pprof on this address (e.g. :0) while running")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = fs.String("memprofile", "", "write a heap (allocs) profile to this file after the run")
		version = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		w := cli.NewWriter(stdout)
		w.Printf("tracesim %s\n", obs.BuildVersion())
		return w.Err()
	}
	switch {
	case *dur <= 0:
		return fmt.Errorf("-dur must be a positive duration in simulated seconds, got %v", *dur)
	case *rtt <= 0:
		return fmt.Errorf("-rtt must be positive seconds, got %v", *rtt)
	case *loss < 0 || *loss > 1:
		return fmt.Errorf("-loss is a probability and must be in [0, 1], got %v", *loss)
	case *burst < 0:
		return fmt.Errorf("-burst must be a non-negative duration in seconds, got %v", *burst)
	case *minRTO <= 0:
		return fmt.Errorf("-minrto must be positive seconds, got %v", *minRTO)
	case *wm < 1:
		return fmt.Errorf("-wm must be at least 1 packet, got %d", *wm)
	}
	if *debug != "" {
		addr, err := obs.ServeDebug(*debug, nil)
		if err != nil {
			return err
		}
		_, _ = fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/\n", addr)
	}

	stopProf, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	var sc *pftk.Scenario
	if *scnFile != "" {
		var err error
		if sc, err = pftk.ParseScenarioFile(*scnFile); err != nil {
			return fmt.Errorf("-scenario: %w", err)
		}
	}

	opts := []pftk.SimOption{
		pftk.WithPath(*rtt),
		pftk.WithBurstLoss(*loss, *burst),
		pftk.WithWindow(*wm),
		pftk.WithMinRTO(*minRTO),
		pftk.WithDuration(*dur),
		pftk.WithSeed(*seed),
		pftk.WithOS(*variant),
		pftk.WithScenario(sc),
	}
	var phases []pftk.PhaseStat
	opts = append(opts, pftk.WithPhaseStats(&phases))
	if *flight > 0 {
		// The engine black box: on a panic, dump the last engine
		// operations before re-raising, then crash as before.
		rec := pftk.NewFlightRecorder(*flight)
		opts = append(opts, pftk.WithFlightRecorder(rec))
		defer func() {
			if p := recover(); p != nil {
				_, _ = fmt.Fprint(os.Stderr, rec.String())
				panic(p)
			}
		}()
	}
	res := pftk.Sim(opts...)

	w := cli.NewWriter(stdout)
	w.Printf("simulated %.0f s: %s\n", *dur, res)
	w.Printf("  send rate  %.2f pkts/s, throughput %.2f pkts/s\n", res.SendRate(), res.Throughput())
	w.Printf("  loss indication rate %.4f\n", res.LossIndicationRate())
	w.Printf("  trace records: %d\n", len(res.Trace))
	for _, ps := range phases {
		w.Printf("  scenario %s\n", ps)
	}

	if *out == "" {
		return w.Err()
	}
	if err := writeTrace(*out, *format, res.Trace); err != nil {
		return err
	}
	w.Printf("wrote %s (%s)\n", *out, *format)
	return w.Err()
}

// writeTrace encodes the trace to path; a failed Close (buffered data
// that never hit the disk) is reported like any other write error.
func writeTrace(path, format string, tr trace.Trace) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer cli.CloseWith(&err, f)
	switch format {
	case "binary":
		return trace.Encode(f, tr)
	case "jsonl":
		return trace.EncodeJSONL(f, tr)
	case "tcpdump":
		return trace.EncodeTcpdump(f, tr)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "tracesim:", err)
	os.Exit(1)
}
