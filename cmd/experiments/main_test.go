package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig12"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "fig12") || !strings.Contains(s, "markov") {
		t.Errorf("report missing content:\n%s", s)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCSVExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	var out bytes.Buffer
	if err := run([]string{"-run", "fig13", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files exported")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "series,") {
		t.Errorf("unexpected CSV header: %s", string(data[:50]))
	}
}

func TestScaledCampaign(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-run", "table2", "-hour", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "durations scaled to 200s") {
		t.Errorf("scale flag ignored:\n%s", out.String())
	}
}

func TestSVGAndHTMLExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "r")
	var out bytes.Buffer
	if err := run([]string{"-run", "fig12", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "fig12_fig0.svg"))
	if err != nil {
		t.Fatalf("svg missing: %v", err)
	}
	if !strings.Contains(string(svg), "<svg") || !strings.Contains(string(svg), "polyline") {
		t.Error("svg malformed")
	}
	html, err := os.ReadFile(filepath.Join(dir, "report.html"))
	if err != nil {
		t.Fatalf("report.html missing: %v", err)
	}
	page := string(html)
	for _, want := range []string{"<!DOCTYPE html>", "fig12", "<svg", "markov"} {
		if !strings.Contains(page, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
