package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"pftk/internal/experiments"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig12"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "fig12") || !strings.Contains(s, "markov") {
		t.Errorf("report missing content:\n%s", s)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &out, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCSVExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	var out bytes.Buffer
	if err := run([]string{"-run", "fig13", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files exported")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "series,") {
		t.Errorf("unexpected CSV header: %s", string(data[:50]))
	}
}

func TestScaledCampaign(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-run", "table2", "-hour", "200"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "durations scaled to 200s") {
		t.Errorf("scale flag ignored:\n%s", out.String())
	}
}

func TestSVGAndHTMLExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "r")
	var out bytes.Buffer
	if err := run([]string{"-run", "fig12", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "fig12_fig0.svg"))
	if err != nil {
		t.Fatalf("svg missing: %v", err)
	}
	if !strings.Contains(string(svg), "<svg") || !strings.Contains(string(svg), "polyline") {
		t.Error("svg malformed")
	}
	html, err := os.ReadFile(filepath.Join(dir, "report.html"))
	if err != nil {
		t.Fatalf("report.html missing: %v", err)
	}
	page := string(html)
	for _, want := range []string{"<!DOCTYPE html>", "fig12", "<svg", "markov"} {
		if !strings.Contains(page, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestUnknownExperimentListsIDs pins the self-correcting error: a typo'd
// -run value must produce an error naming every valid experiment ID.
func TestUnknownExperimentListsIDs(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-run", "fig99"}, &out, io.Discard)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	msg := err.Error()
	for _, id := range experiments.IDs() {
		if !strings.Contains(msg, id) {
			t.Errorf("error %q does not list valid id %q", msg, id)
		}
	}
}

// TestVersionFlag checks -version prints and exits cleanly.
func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "experiments ") {
		t.Errorf("version output malformed: %q", out.String())
	}
}

// TestMetricsManifestAndCheckObs is the end-to-end observability path:
// run an abbreviated campaign with -metrics/-progress/-out, then validate
// the produced directory with -checkobs (the obs-smoke contract).
func TestMetricsManifestAndCheckObs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	metrics := filepath.Join(dir, "metrics.jsonl")
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-run", "table2", "-hour", "60",
		"-out", dir, "-metrics", metrics, "-progress",
	}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "hour campaign") {
		t.Errorf("no progress lines on stderr:\n%s", errBuf.String())
	}
	if !strings.Contains(out.String(), "metric records written") {
		t.Errorf("no metrics summary on stdout:\n%s", out.String())
	}

	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	for _, want := range []string{`"tool": "experiments"`, `"id": "table2"`, `"metrics_file"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("manifest missing %s:\n%s", want, data)
		}
	}

	var check bytes.Buffer
	if err := run([]string{"-checkobs", dir}, &check, io.Discard); err != nil {
		t.Fatalf("checkobs rejected a fresh results dir: %v", err)
	}
	s := check.String()
	if !strings.Contains(s, "manifest ok") || !strings.Contains(s, "metrics ok") {
		t.Errorf("checkobs output incomplete:\n%s", s)
	}
}

// TestCheckObsRejectsGarbage confirms validation actually fails on a
// malformed directory.
func TestCheckObsRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"schema_version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-checkobs", dir}, &out, io.Discard); err == nil {
		t.Error("bad manifest accepted")
	}
	if err := run([]string{"-checkobs", t.TempDir()}, &out, io.Discard); err == nil {
		t.Error("empty dir accepted")
	}
}

// TestDebugAddr spins up the diagnostics server on a random port and
// fetches expvar.
func TestDebugAddr(t *testing.T) {
	var out bytes.Buffer
	var errBuf bytes.Buffer
	if err := run([]string{"-run", "fig12", "-debugaddr", "127.0.0.1:0"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "debug server on http://") {
		t.Errorf("debug address not announced:\n%s", errBuf.String())
	}
}

// TestFlagValidation rejects non-positive campaign dimensions instead of
// silently falling back to the full paper-scale defaults.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero hour", []string{"-run", "table2", "-hour", "0"}, "-hour must be"},
		{"negative hour", []string{"-run", "table2", "-hour", "-60"}, "-hour must be"},
		{"zero traces", []string{"-run", "fig8", "-traces", "0"}, "-traces must be"},
		{"negative short", []string{"-run", "fig8", "-short", "-5"}, "-short must be"},
		{"negative workers", []string{"-run", "table2", "-j", "-2"}, "-j must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out, io.Discard)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
			if out.Len() > 0 {
				t.Errorf("args %v: output produced despite validation error", tc.args)
			}
		})
	}
}

// TestParallelFlagMatchesSerial runs an abbreviated campaign twice, -j 1
// vs -j 4, and requires byte-identical reports on stdout.
func TestParallelFlagMatchesSerial(t *testing.T) {
	var serial, parallel bytes.Buffer
	args := []string{"-run", "table2", "-hour", "60", "-salt", "5"}
	if err := run(append(args, "-j", "1"), &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-j", "4"), &parallel, io.Discard); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("-j 1 and -j 4 reports differ:\n%s\nvs\n%s", serial.String(), parallel.String())
	}
}

// TestProfileFlags: -cpuprofile and -memprofile write non-empty pprof
// files covering the campaign.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	err := run([]string{"-run", "fig12", "-cpuprofile", cpu, "-memprofile", mem}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
