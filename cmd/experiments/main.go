// Command experiments regenerates the paper's tables and figures from the
// emulated measurement campaign. ASCII renderings go to stdout; with -out
// every table and figure is also written as CSV for external plotting,
// along with a manifest.json recording how the results were produced.
//
// Examples:
//
//	experiments -run table2
//	experiments -run all -out results/
//	experiments -run fig7 -hour 600        # abbreviated campaign
//	experiments -run all -out results/ -metrics results/metrics.jsonl -progress
//	experiments -checkobs results/         # validate a results directory
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pftk/internal/cli"
	"pftk/internal/experiments"
	"pftk/internal/obs"
	"pftk/internal/tablefmt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fatal(err)
	}
}

// run executes the requested experiments against args, writing reports to
// stdout and progress/diagnostics to stderr.
func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runID    = fs.String("run", "all", "experiment to run: "+strings.Join(experiments.IDs(), ", ")+", or all")
		out      = fs.String("out", "", "directory for CSV exports and manifest.json (omit to skip)")
		hour     = fs.Float64("hour", 3600, "duration of each '1-hour' trace in simulated seconds")
		traces   = fs.Int("traces", 100, "number of serial connections in the 100-s campaign")
		short    = fs.Float64("short", 100, "duration of each short connection in seconds")
		workers  = fs.Int("j", 0, "concurrent trace simulations (0 = GOMAXPROCS); results are identical for any value")
		salt     = fs.Uint64("salt", 0, "random salt for all campaigns")
		plot     = fs.Bool("plot", false, "render figures as ASCII plots (log-x) instead of range summaries")
		metrics  = fs.String("metrics", "", "write one JSONL metric record per simulated trace to this file")
		progress = fs.Bool("progress", false, "report live campaign progress with an ETA on stderr")
		debug    = fs.String("debugaddr", "", "serve expvar and pprof on this address (e.g. :0) while running")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf  = fs.String("memprofile", "", "write a heap (allocs) profile to this file after the campaign")
		check    = fs.String("checkobs", "", "validate manifest.json and metrics JSONL in this directory, then exit")
		version  = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cli.NewWriter(stdout)
	if *version {
		w.Printf("experiments %s\n", obs.BuildVersion())
		return w.Err()
	}
	if *check != "" {
		if err := checkObsDir(*check, w); err != nil {
			return err
		}
		return w.Err()
	}
	if *hour <= 0 {
		return fmt.Errorf("-hour must be a positive duration in seconds, got %v", *hour)
	}
	if *traces <= 0 {
		return fmt.Errorf("-traces must be positive, got %d", *traces)
	}
	if *short <= 0 {
		return fmt.Errorf("-short must be a positive duration in seconds, got %v", *short)
	}
	if *workers < 0 {
		return fmt.Errorf("-j must be positive (or 0 for GOMAXPROCS), got %d", *workers)
	}
	if *debug != "" {
		addr, err := obs.ServeDebug(*debug, nil)
		if err != nil {
			return err
		}
		_, _ = fmt.Fprintf(stderr, "debug server on http://%s/debug/\n", addr)
	}

	stopProf, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	opts := experiments.Options{
		HourTraceDuration:  *hour,
		ShortTraces:        *traces,
		ShortTraceDuration: *short,
		IntervalWidth:      100,
		Salt:               *salt,
		Workers:            *workers,
	}
	if *progress {
		opts.Progress = stderr
	}
	var mw *obs.JSONLWriter
	if *metrics != "" {
		if dir := filepath.Dir(*metrics); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		f, err := os.Create(*metrics)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		mw = obs.NewJSONLWriter(f)
		opts.Metrics = mw
	}

	manifest := obs.NewManifest("experiments")
	manifest.Args = args
	manifest.Salt = *salt
	manifest.Options = map[string]any{
		"hour_trace_duration":  *hour,
		"short_traces":         *traces,
		"short_trace_duration": *short,
		"interval_width":       100,
		"workers":              *workers,
	}
	start := time.Now()

	var reports []*experiments.Report
	onDone := func(r *experiments.Report, wall float64) {
		manifest.Artifacts = append(manifest.Artifacts, obs.Artifact{ID: r.ID, Title: r.Title, WallSeconds: wall})
	}
	if *runID == "all" {
		reports = experiments.RunAllTimed(opts, onDone)
	} else {
		runner, err := experiments.Get(*runID)
		if err != nil {
			return err
		}
		t0 := time.Now()
		r := runner(opts)
		onDone(r, time.Since(t0).Seconds())
		reports = []*experiments.Report{r}
	}
	var htmlBuf strings.Builder

	for _, r := range reports {
		w.Printf("==== %s: %s ====\n\n", r.ID, r.Title)
		for _, t := range r.Tables {
			w.Print(t.ASCII())
			w.Println()
		}
		for _, f := range r.Figures {
			if *plot {
				w.Print(f.ASCIIPlot(tablefmt.PlotOptions{LogX: true}))
			} else {
				w.Print(f.Summary())
			}
			w.Println()
		}
		for _, n := range r.Notes {
			w.Printf("note: %s\n", n)
		}
		w.Println()
		if *out != "" {
			files, err := export(*out, r)
			if err != nil {
				return err
			}
			manifest.Artifacts[artifactIndex(manifest, r.ID)].Files = files
			appendHTML(&htmlBuf, r)
		}
	}
	if mw != nil {
		if err := mw.Flush(); err != nil {
			return fmt.Errorf("metrics export: %w", err)
		}
		manifest.MetricsFile = *metrics
		w.Printf("%d metric records written to %s\n", mw.Records(), *metrics)
	}
	if *out != "" {
		if err := writeHTMLReport(*out, htmlBuf.String()); err != nil {
			return err
		}
		manifest.WallSeconds = time.Since(start).Seconds()
		if err := manifest.Write(filepath.Join(*out, "manifest.json")); err != nil {
			return err
		}
		w.Printf("CSV, SVG, report.html and manifest.json written under %s\n", *out)
	}
	return w.Err()
}

// artifactIndex finds the manifest entry for an experiment ID.
func artifactIndex(m *obs.Manifest, id string) int {
	for i, a := range m.Artifacts {
		if a.ID == id {
			return i
		}
	}
	return len(m.Artifacts) - 1
}

// checkObsDir validates a results directory produced with -out (and
// optionally -metrics): the manifest must match the documented schema and
// any metrics export it references must be well-formed JSONL. This backs
// `make obs-smoke`.
func checkObsDir(dir string, w *cli.Writer) error {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("checkobs: %w", err)
	}
	m, err := obs.ValidateManifest(data)
	if err != nil {
		return fmt.Errorf("checkobs: %w", err)
	}
	w.Printf("manifest ok: tool=%s version=%s artifacts=%d\n", m.Tool, m.Version, len(m.Artifacts))
	if m.MetricsFile == "" {
		w.Print("no metrics export referenced\n")
		return nil
	}
	path := m.MetricsFile
	if !filepath.IsAbs(path) {
		// Relative metric paths are resolved against the manifest's
		// directory, falling back to the raw path (the manifest records
		// the -metrics argument verbatim).
		if p := filepath.Join(dir, filepath.Base(path)); fileExists(p) {
			path = p
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkobs: %w", err)
	}
	defer func() { _ = f.Close() }()
	n, err := obs.ValidateMetricsJSONL(f)
	if err != nil {
		return fmt.Errorf("checkobs: %s: %w", path, err)
	}
	w.Printf("metrics ok: %d records in %s\n", n, path)
	return nil
}

// fileExists reports whether path names an existing file.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// appendHTML adds one report's tables (as preformatted text) and figures
// (as inline SVG) to the HTML body.
func appendHTML(b *strings.Builder, r *experiments.Report) {
	fmt.Fprintf(b, "<h2 id=%q>%s: %s</h2>\n", r.ID, r.ID, htmlEscape(r.Title))
	for _, t := range r.Tables {
		fmt.Fprintf(b, "<pre>%s</pre>\n", htmlEscape(t.ASCII()))
	}
	for _, f := range r.Figures {
		var svg strings.Builder
		if err := f.WriteSVG(&svg, tablefmt.SVGOptions{LogX: figureWantsLogX(r.ID)}); err == nil {
			b.WriteString(svg.String())
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(b, "<p><em>%s</em></p>\n", htmlEscape(n))
	}
}

// figureWantsLogX: loss-rate axes are logarithmic; trace-number and
// flow-size axes are linear.
func figureWantsLogX(id string) bool {
	switch id {
	case "fig8", "fig9", "fig10", "shortflows":
		return false
	}
	return true
}

// writeHTMLReport assembles the standalone report page.
func writeHTMLReport(dir, body string) error {
	page := "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">" +
		"<title>PFTK reproduction report</title>" +
		"<style>body{font-family:sans-serif;max-width:960px;margin:2em auto;padding:0 1em}" +
		"pre{background:#f6f6f6;padding:0.8em;overflow-x:auto;font-size:12px}</style>" +
		"</head><body>\n<h1>PFTK reproduction report</h1>\n" +
		body + "</body></html>\n"
	return os.WriteFile(filepath.Join(dir, "report.html"), []byte(page), 0o644)
}

// htmlEscape escapes HTML metacharacters.
func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// export writes every table and figure of a report as CSV files named
// <id>_table<i>.csv and <id>_fig<i>.csv (plus SVG renderings), returning
// the created file names for the manifest.
func export(dir string, r *experiments.Report) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	add := func(name string, write func(io.Writer) error) error {
		if err := writeFile(filepath.Join(dir, name), write); err != nil {
			return err
		}
		files = append(files, name)
		return nil
	}
	for i, t := range r.Tables {
		if err := add(fmt.Sprintf("%s_table%d.csv", r.ID, i), t.WriteCSV); err != nil {
			return nil, err
		}
	}
	for i, fig := range r.Figures {
		if err := add(fmt.Sprintf("%s_fig%d.csv", r.ID, i), fig.WriteCSV); err != nil {
			return nil, err
		}
		writeSVG := func(w io.Writer) error {
			return fig.WriteSVG(w, tablefmt.SVGOptions{LogX: figureWantsLogX(r.ID)})
		}
		if err := add(fmt.Sprintf("%s_fig%d.svg", r.ID, i), writeSVG); err != nil {
			return nil, err
		}
	}
	return files, nil
}

// writeFile creates path and streams write into it, propagating a failed
// Close (buffered data that never reached the disk) as an error.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer cli.CloseWith(&err, f)
	return write(f)
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
