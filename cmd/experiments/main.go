// Command experiments regenerates the paper's tables and figures from the
// emulated measurement campaign. ASCII renderings go to stdout; with -out
// every table and figure is also written as CSV for external plotting.
//
// Examples:
//
//	experiments -run table2
//	experiments -run all -out results/
//	experiments -run fig7 -hour 600        # abbreviated campaign
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pftk/internal/cli"
	"pftk/internal/experiments"
	"pftk/internal/tablefmt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes the requested experiments against args, writing reports to
// stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runID  = fs.String("run", "all", "experiment to run: "+strings.Join(experiments.IDs(), ", ")+", or all")
		out    = fs.String("out", "", "directory for CSV exports (omit to skip)")
		hour   = fs.Float64("hour", 3600, "duration of each '1-hour' trace in simulated seconds")
		traces = fs.Int("traces", 100, "number of serial connections in the 100-s campaign")
		short  = fs.Float64("short", 100, "duration of each short connection in seconds")
		salt   = fs.Uint64("salt", 0, "random salt for all campaigns")
		plot   = fs.Bool("plot", false, "render figures as ASCII plots (log-x) instead of range summaries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.Options{
		HourTraceDuration:  *hour,
		ShortTraces:        *traces,
		ShortTraceDuration: *short,
		IntervalWidth:      100,
		Salt:               *salt,
	}

	var reports []*experiments.Report
	if *runID == "all" {
		reports = experiments.RunAll(opts)
	} else {
		runner, err := experiments.Get(*runID)
		if err != nil {
			return err
		}
		reports = []*experiments.Report{runner(opts)}
	}
	var htmlBuf strings.Builder

	w := cli.NewWriter(stdout)
	for _, r := range reports {
		w.Printf("==== %s: %s ====\n\n", r.ID, r.Title)
		for _, t := range r.Tables {
			w.Print(t.ASCII())
			w.Println()
		}
		for _, f := range r.Figures {
			if *plot {
				w.Print(f.ASCIIPlot(tablefmt.PlotOptions{LogX: true}))
			} else {
				w.Print(f.Summary())
			}
			w.Println()
		}
		for _, n := range r.Notes {
			w.Printf("note: %s\n", n)
		}
		w.Println()
		if *out != "" {
			if err := export(*out, r); err != nil {
				return err
			}
			appendHTML(&htmlBuf, r)
		}
	}
	if *out != "" {
		if err := writeHTMLReport(*out, htmlBuf.String()); err != nil {
			return err
		}
		w.Printf("CSV, SVG and report.html written under %s\n", *out)
	}
	return w.Err()
}

// appendHTML adds one report's tables (as preformatted text) and figures
// (as inline SVG) to the HTML body.
func appendHTML(b *strings.Builder, r *experiments.Report) {
	fmt.Fprintf(b, "<h2 id=%q>%s: %s</h2>\n", r.ID, r.ID, htmlEscape(r.Title))
	for _, t := range r.Tables {
		fmt.Fprintf(b, "<pre>%s</pre>\n", htmlEscape(t.ASCII()))
	}
	for _, f := range r.Figures {
		var svg strings.Builder
		if err := f.WriteSVG(&svg, tablefmt.SVGOptions{LogX: figureWantsLogX(r.ID)}); err == nil {
			b.WriteString(svg.String())
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(b, "<p><em>%s</em></p>\n", htmlEscape(n))
	}
}

// figureWantsLogX: loss-rate axes are logarithmic; trace-number and
// flow-size axes are linear.
func figureWantsLogX(id string) bool {
	switch id {
	case "fig8", "fig9", "fig10", "shortflows":
		return false
	}
	return true
}

// writeHTMLReport assembles the standalone report page.
func writeHTMLReport(dir, body string) error {
	page := "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">" +
		"<title>PFTK reproduction report</title>" +
		"<style>body{font-family:sans-serif;max-width:960px;margin:2em auto;padding:0 1em}" +
		"pre{background:#f6f6f6;padding:0.8em;overflow-x:auto;font-size:12px}</style>" +
		"</head><body>\n<h1>PFTK reproduction report</h1>\n" +
		body + "</body></html>\n"
	return os.WriteFile(filepath.Join(dir, "report.html"), []byte(page), 0o644)
}

// htmlEscape escapes HTML metacharacters.
func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// export writes every table and figure of a report as CSV files named
// <id>_table<i>.csv and <id>_fig<i>.csv.
func export(dir string, r *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range r.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", r.ID, i))
		if err := writeFile(path, t.WriteCSV); err != nil {
			return err
		}
	}
	for i, fig := range r.Figures {
		path := filepath.Join(dir, fmt.Sprintf("%s_fig%d.csv", r.ID, i))
		if err := writeFile(path, fig.WriteCSV); err != nil {
			return err
		}
		svgPath := filepath.Join(dir, fmt.Sprintf("%s_fig%d.svg", r.ID, i))
		write := func(w io.Writer) error {
			return fig.WriteSVG(w, tablefmt.SVGOptions{LogX: figureWantsLogX(r.ID)})
		}
		if err := writeFile(svgPath, write); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path and streams write into it, propagating a failed
// Close (buffered data that never reached the disk) as an error.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer cli.CloseWith(&err, f)
	return write(f)
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
