package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"pftk/internal/serve"
	"pftk/internal/tracez"
)

// TestFlagValidation rejects non-positive counts, rates and durations.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero workers", []string{"-c", "0"}, "-c must be"},
		{"negative duration", []string{"-duration", "-1s"}, "-duration must be"},
		{"zero duration", []string{"-duration", "0s"}, "-duration must be"},
		{"negative n", []string{"-n", "-5"}, "-n must be"},
		{"negative qps", []string{"-qps", "-100"}, "-qps must be"},
		{"zero batch", []string{"-batch", "0"}, "-batch must be"},
		{"zero simdur", []string{"-simdur", "0"}, "-simdur must be"},
		{"negative seeds", []string{"-seeds", "-1"}, "-seeds must be"},
		{"bad mode", []string{"-mode", "chaos"}, "unknown -mode"},
		{"openloop without rate", []string{"-openloop"}, "-openloop needs an arrival rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out, io.Discard)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestCountedDurationInteraction: a positive -n makes -duration irrelevant,
// so a zero duration must not be rejected then.
func TestCountedRunIgnoresDuration(t *testing.T) {
	var out bytes.Buffer
	// Unroutable URL: the run starts (validation passes) and every request
	// fails in transport, so run reports zero successes.
	err := run([]string{"-n", "2", "-c", "1", "-duration", "0s", "-url", "http://127.0.0.1:1"}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no successful responses") {
		t.Fatalf("expected transport-failure error, got %v", err)
	}
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "pftkload ") {
		t.Errorf("version output %q", out.String())
	}
}

// TestRequestBodyDeterminism: the i-th body is a pure function of the
// flags, so re-running a load test replays the exact request stream.
func TestRequestBodyDeterminism(t *testing.T) {
	for _, mode := range []string{"predict", "simulate"} {
		for i := int64(0); i < 130; i++ {
			a := requestBody(mode, i, 4, 5, 3)
			b := requestBody(mode, i, 4, 5, 3)
			if !bytes.Equal(a, b) {
				t.Fatalf("%s body %d not deterministic", mode, i)
			}
			if !json.Valid(a) {
				t.Fatalf("%s body %d is not valid JSON: %s", mode, i, a)
			}
		}
	}
	// Seed reuse: with -seeds 3, bodies 0 and 3 differ only if the loss
	// grid differs; body 0 and 24 (same grid slot, same seed) must match.
	a := requestBody("simulate", 0, 1, 5, 3)
	b := requestBody("simulate", 24, 1, 5, 3)
	if !bytes.Equal(a, b) {
		t.Errorf("seed reuse broken: body 0 %s vs body 24 %s", a, b)
	}
}

// TestLoadLoopAgainstService drives a real in-process pftkd handler and
// checks the closed-loop accounting: n requests issued, all 2xx, report
// printed with latency quantiles.
func TestLoadLoopAgainstService(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-mode", "predict", "-c", "4", "-n", "40", "-batch", "2"}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"40 requests", "2xx=40", "5xx=0", "p99="} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestLoadLoopSimulateMode exercises the async-job request path end to
// end (202 responses count as 2xx successes).
func TestLoadLoopSimulateMode(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-mode", "simulate", "-c", "2", "-n", "6", "-simdur", "2", "-seeds", "2"}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "6 requests") {
		t.Errorf("report missing request count:\n%s", out.String())
	}
}

// TestOpenLoopAgainstService runs the Poisson open-loop discipline
// against a real handler: all n requests issue regardless of server
// latency, the offered rate is reported, and the JSON report flags the
// discipline so trajectories never mix the two latency definitions.
func TestOpenLoopAgainstService(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	// A high rate keeps the test fast: 40 arrivals at 4000/s is ~10ms of
	// scheduled arrivals.
	err := run([]string{"-url", ts.URL, "-mode", "predict", "-c", "4", "-n", "40", "-qps", "4000", "-openloop", "-json"}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output invalid: %v\n%s", err, out.String())
	}
	if rep.Requests != 40 || rep.Status2xx != 40 {
		t.Fatalf("report counts = %+v, want 40 requests all 2xx", rep)
	}
	if !rep.OpenLoop || rep.OfferedQPS != 4000 {
		t.Fatalf("open-loop marker missing: open_loop=%v offered=%v", rep.OpenLoop, rep.OfferedQPS)
	}
	if rep.LatencySeconds == nil {
		t.Fatal("report missing latency quantiles")
	}

	// Human-readable output names the discipline too.
	out.Reset()
	if err := run([]string{"-url", ts.URL, "-mode", "predict", "-c", "4", "-n", "40", "-qps", "4000", "-openloop"}, &out, io.Discard); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "open loop") {
		t.Errorf("human report missing open-loop line:\n%s", out.String())
	}
}

// TestOpenLoopSeedDeterminism: the same -seed replays the same arrival
// schedule, so two runs issue identical request counts.
func TestOpenLoopSeedDeterminism(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, seed := range []string{"7", "7"} {
		var out bytes.Buffer
		err := run([]string{"-url", ts.URL, "-mode", "predict", "-c", "2", "-n", "20", "-qps", "5000", "-openloop", "-seed", seed, "-json"}, &out, io.Discard)
		if err != nil {
			t.Fatalf("seed %s: %v\n%s", seed, err, out.String())
		}
		var rep report
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Requests != 20 {
			t.Fatalf("seed %s issued %d requests, want 20", seed, rep.Requests)
		}
	}
}

// TestJSONReportAndRequestIDPropagation drives a traced pftkd handler
// with -json and proves the whole loop: the generator's X-Request-Id
// reaches the server's spans, the server's queue/service split comes
// back in the report, and the report is machine-readable.
func TestJSONReportAndRequestIDPropagation(t *testing.T) {
	tr := tracez.New(tracez.Options{})
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 64, Tracer: tr})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-mode", "predict", "-c", "2", "-n", "10", "-json"}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Requests != 10 || rep.Status2xx != 10 {
		t.Fatalf("report counts = %+v, want 10 requests all 2xx", rep)
	}
	if rep.ReqPerSec <= 0 || rep.LatencySeconds == nil {
		t.Fatalf("report missing rate or latency: %+v", rep)
	}
	if rep.QueueSeconds == nil || rep.ServiceSeconds == nil {
		t.Fatalf("report missing queue/service split (headers not echoed?): %+v", rep)
	}

	// Every root span must carry a load-generator request ID.
	roots := 0
	for _, rec := range tr.Snapshot() {
		if rec.Parent != 0 || rec.Name == "workpool.wait" || rec.Name == "workpool.service" {
			continue
		}
		roots++
		found := false
		for _, a := range rec.Attrs {
			if a.Key == "request_id" && strings.HasPrefix(a.Value, "load-") {
				found = true
			}
		}
		if !found {
			t.Errorf("root span %q lacks a load- request_id attr: %v", rec.Name, rec.Attrs)
		}
	}
	if roots != 10 {
		t.Errorf("traced %d root spans, want 10", roots)
	}
}
