// Command pftkload is a load generator for pftkd with two arrival
// disciplines:
//
// Closed loop (default): -c worker goroutines issue requests
// back-to-back — each waits for its response before sending the next —
// optionally paced to a shared schedule of 1/-qps slots. Throughput
// found this way is the server's capacity, but latency under saturation
// is self-limiting: a slow server slows the request stream down, so the
// reported quantiles describe only the requests that were actually sent
// (coordinated omission).
//
// Open loop (-openloop, requires -qps): arrivals form a Poisson process
// of rate -qps, split across -c workers as independent streams of rate
// qps/c (their superposition is Poisson at the full rate). Each request
// has a scheduled arrival time drawn in advance, and latency is measured
// from that *scheduled* time — not from when the worker got around to
// sending it — so a stalled server inflates the tail of every backlogged
// request instead of silently thinning the stream. This is the
// coordinated-omission-safe discipline; use -c high enough that workers
// are not the bottleneck, or the backlog shows up as (honestly reported)
// latency.
//
// Examples:
//
//	pftkload -url http://127.0.0.1:8080 -c 64 -duration 10s
//	pftkload -url http://127.0.0.1:8080 -mode simulate -c 4 -n 100
//	pftkload -url http://127.0.0.1:8080 -c 32 -qps 5000 -batch 16
//	pftkload -url http://127.0.0.1:8080 -c 64 -openloop -qps 8000 -duration 10s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pftk/internal/cli"
	"pftk/internal/obs"
	"pftk/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fatal(err)
	}
}

// workerStats accumulates one worker's private view of the run; workers
// never share mutable state on the hot path.
type workerStats struct {
	latencies []float64 // seconds, successful round trips only
	queues    []float64 // server-reported queue-wait seconds (X-Queue-Seconds)
	services  []float64 // server-reported service seconds (X-Service-Seconds)
	n2xx      int
	n429      int
	n4xx      int // other 4xx
	n5xx      int
	errors    int // transport failures
}

// quantileSet is the latency summary shape of the -json report.
type quantileSet struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// quantileSetOf summarizes samples; ok is false with no samples.
func quantileSetOf(vs []float64) (quantileSet, bool) {
	if len(vs) == 0 {
		return quantileSet{}, false
	}
	return quantileSet{
		P50: stats.Quantile(vs, 0.50),
		P90: stats.Quantile(vs, 0.90),
		P95: stats.Quantile(vs, 0.95),
		P99: stats.Quantile(vs, 0.99),
		Max: stats.Quantile(vs, 1.0),
	}, true
}

// report is the machine-readable run summary emitted by -json and
// consumed by `benchjson -serve` to maintain BENCH_serve.json.
type report struct {
	Target          string       `json:"target"`
	Mode            string       `json:"mode"`
	Concurrency     int          `json:"concurrency"`
	Requests        int          `json:"requests"`
	Seconds         float64      `json:"seconds"`
	ReqPerSec       float64      `json:"req_per_sec"`
	Status2xx       int          `json:"status_2xx"`
	Status429       int          `json:"status_429"`
	Status4xx       int          `json:"status_4xx"`
	Status5xx       int          `json:"status_5xx"`
	TransportErrors int          `json:"transport_errors"`
	LatencySeconds  *quantileSet `json:"latency_seconds,omitempty"`
	// QueueSeconds and ServiceSeconds split the round trip using the
	// X-Queue-Seconds / X-Service-Seconds headers pftkd echoes; absent
	// when the server does not report them.
	QueueSeconds   *quantileSet `json:"queue_seconds,omitempty"`
	ServiceSeconds *quantileSet `json:"service_seconds,omitempty"`
	// OpenLoop marks a Poisson-arrival run; latencies are then measured
	// from each request's scheduled arrival time (coordinated-omission
	// safe) and OfferedQPS is the arrival rate the run offered.
	OpenLoop   bool    `json:"open_loop,omitempty"`
	OfferedQPS float64 `json:"offered_qps,omitempty"`
}

// run executes the load test described by args.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pftkload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "http://127.0.0.1:8080", "base URL of the pftkd service")
		mode     = fs.String("mode", "predict", "request mix: predict or simulate")
		conc     = fs.Int("c", 64, "concurrent workers")
		duration = fs.Duration("duration", 10*time.Second, "run length (ignored when -n is set)")
		total    = fs.Int("n", 0, "stop after this many requests (0 = run for -duration)")
		qps      = fs.Float64("qps", 0, "target aggregate request rate (0 = unpaced closed loop)")
		openLoop = fs.Bool("openloop", false, "Poisson arrivals at -qps with latency from scheduled send time (coordinated-omission safe)")
		seed     = fs.Int64("seed", 1, "base seed of the open-loop arrival streams")
		batch    = fs.Int("batch", 1, "points per predict request (1 = single-point body)")
		simDur   = fs.Float64("simdur", 5, "simulated seconds per simulate job")
		seeds    = fs.Int("seeds", 0, "distinct simulate seeds before reuse turns runs into cache hits (0 = all distinct)")
		jsonOut  = fs.Bool("json", false, "write the machine-readable report to stdout instead of the human summary")
		version  = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cli.NewWriter(stdout)
	if *version {
		w.Printf("pftkload %s\n", obs.BuildVersion())
		return w.Err()
	}
	if *conc < 1 {
		return fmt.Errorf("-c must be positive, got %d", *conc)
	}
	if *total == 0 && *duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", *duration)
	}
	if *total < 0 {
		return fmt.Errorf("-n must be non-negative, got %d", *total)
	}
	if *qps < 0 {
		return fmt.Errorf("-qps must be non-negative, got %v", *qps)
	}
	if *openLoop && *qps <= 0 {
		return fmt.Errorf("-openloop needs an arrival rate: set -qps")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be positive, got %d", *batch)
	}
	if *simDur <= 0 {
		return fmt.Errorf("-simdur must be positive, got %v", *simDur)
	}
	if *seeds < 0 {
		return fmt.Errorf("-seeds must be non-negative, got %d", *seeds)
	}
	var path string
	switch *mode {
	case "predict":
		path = "/v1/predict"
	case "simulate":
		path = "/v1/simulate"
	default:
		return fmt.Errorf("unknown -mode %q (valid: predict, simulate)", *mode)
	}
	target := strings.TrimSuffix(*url, "/") + path

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *conc * 2,
			MaxIdleConnsPerHost: *conc * 2,
		},
		Timeout: 30 * time.Second,
	}

	var (
		issued  atomic.Int64 // request sequence numbers
		results = make([]workerStats, *conc)
		wg      sync.WaitGroup
	)
	bodies := newBodyCache(*mode, *batch, *simDur, *seeds)
	start := time.Now()
	deadline := start.Add(*duration)
	interval := time.Duration(0)
	if *qps > 0 {
		interval = time.Duration(float64(time.Second) / *qps)
	}
	for g := 0; g < *conc; g++ {
		wg.Add(1)
		go func(g int, ws *workerStats) {
			defer wg.Done()
			lw := &loadWorker{
				client: client, target: target, mode: *mode,
				batch: *batch, simDur: *simDur, seeds: *seeds,
				bodies: bodies, issued: &issued, total: int64(*total),
				deadline: deadline, ws: ws,
			}
			if *openLoop {
				lw.runOpen(start, *qps/float64(*conc), *seed+int64(g))
			} else {
				lw.runClosed(start, interval)
			}
		}(g, &results[g])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var agg workerStats
	for _, ws := range results {
		agg.latencies = append(agg.latencies, ws.latencies...)
		agg.queues = append(agg.queues, ws.queues...)
		agg.services = append(agg.services, ws.services...)
		agg.n2xx += ws.n2xx
		agg.n429 += ws.n429
		agg.n4xx += ws.n4xx
		agg.n5xx += ws.n5xx
		agg.errors += ws.errors
	}
	n := len(agg.latencies) + agg.errors

	rep := report{
		Target:          target,
		Mode:            *mode,
		Concurrency:     *conc,
		Requests:        n,
		Seconds:         elapsed.Seconds(),
		ReqPerSec:       float64(n) / elapsed.Seconds(),
		Status2xx:       agg.n2xx,
		Status429:       agg.n429,
		Status4xx:       agg.n4xx,
		Status5xx:       agg.n5xx,
		TransportErrors: agg.errors,
	}
	if *openLoop {
		rep.OpenLoop = true
		rep.OfferedQPS = *qps
	}
	if q, ok := quantileSetOf(agg.latencies); ok {
		rep.LatencySeconds = &q
	}
	if q, ok := quantileSetOf(agg.queues); ok {
		rep.QueueSeconds = &q
	}
	if q, ok := quantileSetOf(agg.services); ok {
		rep.ServiceSeconds = &q
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		w.Printf("pftkload: %d requests in %.2fs (%.1f req/s) against %s\n",
			n, rep.Seconds, rep.ReqPerSec, target)
		if rep.OpenLoop {
			w.Printf("  open loop: Poisson arrivals offered at %.1f req/s; latency from scheduled send time\n", rep.OfferedQPS)
		}
		w.Printf("  status: 2xx=%d 429=%d other-4xx=%d 5xx=%d transport-errors=%d\n",
			agg.n2xx, agg.n429, agg.n4xx, agg.n5xx, agg.errors)
		if q := rep.LatencySeconds; q != nil {
			w.Printf("  latency: p50=%s p90=%s p95=%s p99=%s max=%s\n",
				ms(q.P50), ms(q.P90), ms(q.P95), ms(q.P99), ms(q.Max))
		}
		if q := rep.QueueSeconds; q != nil {
			w.Printf("  queue-wait: p50=%s p99=%s max=%s\n", ms(q.P50), ms(q.P99), ms(q.Max))
		}
		if q := rep.ServiceSeconds; q != nil {
			w.Printf("  service: p50=%s p99=%s max=%s\n", ms(q.P50), ms(q.P99), ms(q.Max))
		}
		if err := w.Err(); err != nil {
			return err
		}
	}
	if agg.n2xx == 0 {
		return fmt.Errorf("no successful responses out of %d requests", n)
	}
	return nil
}

// loadWorker is one generator goroutine's state: everything it needs to
// claim sequence numbers, build bodies and record outcomes without
// touching shared mutable state beyond the issue counter.
type loadWorker struct {
	client   *http.Client
	target   string
	mode     string
	batch    int
	simDur   float64
	seeds    int
	bodies   [][]byte // precomputed cycle; nil = build per request
	issued   *atomic.Int64
	total    int64
	deadline time.Time
	ws       *workerStats
}

// next claims the next request sequence number; false ends the worker
// (request budget or deadline exhausted).
func (lw *loadWorker) next() (int64, bool) {
	i := lw.issued.Add(1) - 1
	if lw.total > 0 && i >= lw.total {
		return 0, false
	}
	if lw.total == 0 && time.Now().After(lw.deadline) {
		return 0, false
	}
	return i, true
}

// body returns request i's body, from the precomputed cycle when one
// exists.
func (lw *loadWorker) body(i int64) []byte {
	if lw.bodies != nil {
		return lw.bodies[i%int64(len(lw.bodies))]
	}
	return requestBody(lw.mode, i, lw.batch, lw.simDur, lw.seeds)
}

// runClosed is the closed loop: issue, wait for the response, repeat —
// optionally paced so request i is not sent before its slot i/qps opens.
// Sequence numbers make the schedule exact without a shared ticker.
func (lw *loadWorker) runClosed(start time.Time, interval time.Duration) {
	for {
		i, ok := lw.next()
		if !ok {
			return
		}
		if interval > 0 {
			if wait := time.Until(start.Add(time.Duration(i) * interval)); wait > 0 {
				time.Sleep(wait)
			}
		}
		lw.issue(i, time.Now())
	}
}

// runOpen fires this worker's independent Poisson arrival stream at the
// given rate (streams superpose to the aggregate -qps). Latency is
// measured from each request's scheduled arrival: when the server (or a
// saturated worker) falls behind, the wait shows up in every backlogged
// request's latency instead of being coordinated away.
func (lw *loadWorker) runOpen(start time.Time, rate float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	next := start
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		i, ok := lw.next()
		if !ok {
			return
		}
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		lw.issue(i, next)
	}
}

// issue sends request i and records its outcome; latency is measured
// from t0 (the send time in closed loop, the scheduled arrival in open
// loop).
func (lw *loadWorker) issue(i int64, t0 time.Time) {
	req, err := http.NewRequest(http.MethodPost, lw.target, bytes.NewReader(lw.body(i)))
	if err != nil {
		lw.ws.errors++
		return
	}
	req.Header.Set("Content-Type", "application/json")
	// One ID per request, propagated end to end: pftkd echoes it in
	// X-Request-Id, tags the request's spans with it, and stamps it on
	// async job results.
	req.Header.Set("X-Request-Id", fmt.Sprintf("load-%08d", i))
	resp, err := lw.client.Do(req)
	if err != nil {
		lw.ws.errors++
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	lw.ws.latencies = append(lw.ws.latencies, time.Since(t0).Seconds())
	if q, ok := headerSeconds(resp, "X-Queue-Seconds"); ok {
		lw.ws.queues = append(lw.ws.queues, q)
	}
	if sv, ok := headerSeconds(resp, "X-Service-Seconds"); ok {
		lw.ws.services = append(lw.ws.services, sv)
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		lw.ws.n429++
	case resp.StatusCode >= 500:
		lw.ws.n5xx++
	case resp.StatusCode >= 400:
		lw.ws.n4xx++
	default:
		lw.ws.n2xx++
	}
}

// headerSeconds parses a float-seconds response header.
func headerSeconds(resp *http.Response, name string) (float64, bool) {
	v := resp.Header.Get(name)
	if v == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// ms renders a latency in seconds as a human-readable duration.
func ms(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// newBodyCache precomputes predict-mode bodies. They depend on the
// sequence number only through the 64-point loss grid — point index
// (i*batch+j) mod 64 equals ((i mod 64)*batch+j) mod 64 — so 64 bodies
// cover every request and the hot path stops re-marshaling JSON per
// request. Simulate bodies embed the per-request seed and stay dynamic.
func newBodyCache(mode string, batch int, simDur float64, seeds int) [][]byte {
	if mode != "predict" {
		return nil
	}
	bodies := make([][]byte, 64)
	for j := range bodies {
		bodies[j] = requestBody(mode, int64(j), batch, simDur, seeds)
	}
	return bodies
}

// requestBody builds the i-th request. Parameters sweep a deterministic
// log-spaced loss-rate grid (the shape of the paper's Fig. 7-13 model
// queries), so a run exercises many distinct cache keys without any
// nondeterminism.
func requestBody(mode string, i int64, batch int, simDur float64, seeds int) []byte {
	lossAt := func(k int64) float64 {
		// 64 log-spaced points in [1e-4, 0.5], repeating.
		frac := float64(k%64) / 63
		return 1e-4 * math.Pow(0.5/1e-4, frac)
	}
	var v any
	switch mode {
	case "simulate":
		seed := uint64(i)
		if seeds > 0 {
			seed = uint64(i) % uint64(seeds)
		}
		v = map[string]any{
			"rtt":       0.1,
			"loss_rate": lossAt(i % 8),
			"duration":  simDur,
			"seed":      seed,
		}
	default:
		if batch > 1 {
			reqs := make([]map[string]any, batch)
			for j := range reqs {
				reqs[j] = predictPoint(lossAt(i*int64(batch) + int64(j)))
			}
			v = map[string]any{"requests": reqs}
		} else {
			v = predictPoint(lossAt(i))
		}
	}
	body, err := json.Marshal(v)
	if err != nil {
		// Bodies are maps of numbers; this cannot fail.
		panic(err)
	}
	return body
}

// predictPoint is one predict body on the paper's canonical wide-area
// parameters.
func predictPoint(p float64) map[string]any {
	return map[string]any{"p": p, "rtt": 0.2, "t0": 2.0, "wm": 12}
}

func fatal(err error) {
	_, _ = fmt.Fprintln(os.Stderr, "pftkload:", err)
	os.Exit(1)
}
