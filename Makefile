# PFTK reproduction — common development targets.

GO ?= go

.PHONY: all build test test-short race cover bench bench-json bench-json-smoke bench-serve-json bench-serve-json-smoke serve-scale-smoke chaos-smoke fuzz fuzz-ci experiments examples fmt fmtcheck vet lint lint-baseline invariants obs-smoke serve-smoke trace-smoke scenario-smoke scenario-golden check clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Tracked benchmark baseline: run the allocation-sensitive benchmark
# suite at a FIXED iteration count (BenchmarkSimulatedSecond's cost per
# op depends on b.N, so auto-calibrated benchtime is not comparable
# across runs) and fold the per-metric medians into BENCH_sim.json under
# the "current" label. The committed "pre" label is the seed baseline
# this PR was measured against — do not overwrite it.
#
# The multi-flow benchmarks simulate N flows per iteration, so they get
# their own (smaller) fixed iteration counts; benchjson merges each run
# into the same "current" label without dropping the earlier entries.
BENCH_JSON_PATTERN = BenchmarkSimulatedSecond$$|BenchmarkSimStepObsDisabled$$|BenchmarkLinkSend$$|BenchmarkTimerReset$$|BenchmarkTraceAppend$$
BENCH_JSON_MULTI_PATTERN = BenchmarkMultiFlow10$$|BenchmarkMultiFlow100$$
BENCH_JSON_REQUIRE = BenchmarkSimulatedSecond,BenchmarkSimStepObsDisabled,BenchmarkLinkSend,BenchmarkTimerReset,BenchmarkTraceAppend,BenchmarkMultiFlow10,BenchmarkMultiFlow100

bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_JSON_PATTERN)' -benchmem \
		-benchtime 100000x -count 5 ./... \
		| $(GO) run ./cmd/benchjson -o BENCH_sim.json -label current
	$(GO) test -run '^$$' -bench 'BenchmarkMultiFlow10$$' -benchmem \
		-benchtime 10000x -count 5 . \
		| $(GO) run ./cmd/benchjson -o BENCH_sim.json -label current
	$(GO) test -run '^$$' -bench 'BenchmarkMultiFlow100$$' -benchmem \
		-benchtime 1000x -count 5 . \
		| $(GO) run ./cmd/benchjson -o BENCH_sim.json -label current

# CI smoke: a 10-iteration pass proves the benchmark suite still runs,
# still reports allocations, and still parses into the baseline schema.
bench-json-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_JSON_PATTERN)|$(BENCH_JSON_MULTI_PATTERN)' -benchmem \
		-benchtime 10x ./... \
		| $(GO) run ./cmd/benchjson -check -require '$(BENCH_JSON_REQUIRE)'

# Short fuzzing passes over every fuzz target.
fuzz:
	$(GO) test ./internal/trace -fuzz FuzzDecode$$ -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzDecodeTcpdump -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzDecodeJSONL -fuzztime 30s
	$(GO) test ./internal/analysis -fuzz FuzzInferLossEvents -fuzztime 30s
	$(GO) test ./internal/scenario -fuzz FuzzParseScenario -fuzztime 30s

# Abbreviated fuzzing pass for CI: parsers fed attacker-controlled bytes
# (the trace decoders and the scenario JSON parser, which rides inside
# service requests) get 10 seconds each on every push.
fuzz-ci:
	$(GO) test ./internal/trace -fuzz FuzzDecode$$ -fuzztime 10s
	$(GO) test ./internal/trace -fuzz FuzzDecodeTcpdump -fuzztime 10s
	$(GO) test ./internal/trace -fuzz FuzzDecodeJSONL -fuzztime 10s
	$(GO) test ./internal/scenario -fuzz FuzzParseScenario -fuzztime 10s

# Regenerate every table and figure at the paper's campaign scale.
experiments:
	$(GO) run ./cmd/experiments -run all -out results/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tcpfriendly
	$(GO) run ./examples/validation
	$(GO) run ./examples/modem
	$(GO) run ./examples/shortflows

fmt:
	gofmt -w .

# Fails (with the offending files listed) if anything is not gofmt-clean.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-specific static analysis: the full 12-analyzer suite over the
# whole module as JSON, diffed against the committed baseline. Exit
# status: 0 clean, 1 unbaselined findings or stale baseline entries,
# 2 packages that failed to parse/type-check.
lint:
	$(GO) run ./cmd/pftklint -json -check ./...

# Accept the current findings into the committed baseline. Run only when
# a finding is a deliberate, justified exception that an
# //pftklint:ignore directive cannot express better.
lint-baseline:
	$(GO) run ./cmd/pftklint -write-baseline ./...

# The pftkinvariants build turns the invariant layer's checks into
# panics. The full test suite deliberately feeds NaN to the entry points,
# so only the build and the invariant package's own tests run under the
# tag.
invariants:
	$(GO) build -tags pftkinvariants ./...
	$(GO) test -tags pftkinvariants ./internal/invariant

# End-to-end observability smoke test: run an abbreviated campaign with
# live progress and a JSONL metric export, then validate the produced
# manifest.json and metrics against the documented schema with -checkobs.
obs-smoke:
	rm -rf obs-smoke-out
	$(GO) run ./cmd/experiments -run table2 -hour 60 \
		-out obs-smoke-out -metrics obs-smoke-out/metrics.jsonl -progress >/dev/null
	$(GO) run ./cmd/experiments -checkobs obs-smoke-out
	rm -rf obs-smoke-out

# End-to-end serving smoke test: build pftkd and pftkload, boot the
# daemon on an ephemeral port, hit it with a short closed-loop predict
# burst plus a couple of simulate jobs (pftkload exits non-zero when no
# request succeeds), then require a clean SIGTERM drain.
serve-smoke:
	rm -rf serve-smoke-out && mkdir -p serve-smoke-out
	$(GO) build -o serve-smoke-out/pftkd ./cmd/pftkd
	$(GO) build -o serve-smoke-out/pftkload ./cmd/pftkload
	./serve-smoke-out/pftkd -addr 127.0.0.1:0 \
		-addrfile serve-smoke-out/addr >serve-smoke-out/pftkd.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s serve-smoke-out/addr ] && break; sleep 0.1; done; \
	[ -s serve-smoke-out/addr ] || { echo "pftkd never bound"; kill $$pid; exit 1; }; \
	url="http://$$(cat serve-smoke-out/addr)"; \
	./serve-smoke-out/pftkload -url $$url -c 8 -n 500 -batch 4 && \
	./serve-smoke-out/pftkload -url $$url -mode simulate -c 2 -n 4 -simdur 2 && \
	kill -TERM $$pid && wait $$pid && \
	grep -q "drained and stopped" serve-smoke-out/pftkd.log
	rm -rf serve-smoke-out

# End-to-end tracing smoke test: boot pftkd with tracing and an access
# log, push a traced predict burst through pftkload, then require the
# /debug/tracez JSONL export to contain the request root spans, their
# eval children and the load tool's propagated request ids — and the
# access log to carry the same ids with the queue/service split.
trace-smoke:
	rm -rf trace-smoke-out && mkdir -p trace-smoke-out
	$(GO) build -o trace-smoke-out/pftkd ./cmd/pftkd
	$(GO) build -o trace-smoke-out/pftkload ./cmd/pftkload
	./trace-smoke-out/pftkd -addr 127.0.0.1:0 \
		-addrfile trace-smoke-out/addr \
		-accesslog trace-smoke-out/access.log >trace-smoke-out/pftkd.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s trace-smoke-out/addr ] && break; sleep 0.1; done; \
	[ -s trace-smoke-out/addr ] || { echo "pftkd never bound"; kill $$pid; exit 1; }; \
	url="http://$$(cat trace-smoke-out/addr)"; \
	./trace-smoke-out/pftkload -url $$url -c 4 -n 200 && \
	curl -fsS "$$url/debug/tracez" >/dev/null && \
	curl -fsS "$$url/debug/tracez?format=jsonl" >trace-smoke-out/spans.jsonl && \
	grep -q '"name":"POST /v1/predict"' trace-smoke-out/spans.jsonl && \
	grep -q '"name":"eval"' trace-smoke-out/spans.jsonl && \
	grep -q '"key":"request_id","value":"load-' trace-smoke-out/spans.jsonl && \
	grep -q 'request_id=load-' trace-smoke-out/access.log && \
	grep -q 'queue_seconds=' trace-smoke-out/access.log && \
	kill -TERM $$pid && wait $$pid
	rm -rf trace-smoke-out

# Serving throughput trajectory: boot pftkd in its default (traced)
# configuration and drive closed-loop predict bursts at two concurrency
# levels. The c=8 report is folded into BENCH_serve.json under both
# "current" (the moving head the smoke gate compares against) and a
# descriptive trajectory label naming the serving architecture; the c=64
# report records how the same architecture holds up past the worker
# count. Committed historical labels ("mutex-lru", ...) are the
# baselines earlier PRs were measured against — do not overwrite them.
bench-serve-json:
	rm -rf bench-serve-out && mkdir -p bench-serve-out
	$(GO) build -o bench-serve-out/pftkd ./cmd/pftkd
	$(GO) build -o bench-serve-out/pftkload ./cmd/pftkload
	./bench-serve-out/pftkd -addr 127.0.0.1:0 \
		-addrfile bench-serve-out/addr >bench-serve-out/pftkd.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s bench-serve-out/addr ] && break; sleep 0.1; done; \
	[ -s bench-serve-out/addr ] || { echo "pftkd never bound"; kill $$pid; exit 1; }; \
	url="http://$$(cat bench-serve-out/addr)"; \
	./bench-serve-out/pftkload -url $$url -c 8 -n 5000 -json \
		>bench-serve-out/c8.json && \
	./bench-serve-out/pftkload -url $$url -c 64 -n 5000 -json \
		>bench-serve-out/c64.json && \
	$(GO) run ./cmd/benchjson -serve -o BENCH_serve.json \
		-label current <bench-serve-out/c8.json && \
	$(GO) run ./cmd/benchjson -serve -o BENCH_serve.json \
		-label sharded+singleflight+batch-c8 <bench-serve-out/c8.json && \
	$(GO) run ./cmd/benchjson -serve -o BENCH_serve.json \
		-label sharded+singleflight+batch-c64 <bench-serve-out/c64.json; \
	status=$$?; kill -TERM $$pid; wait $$pid; \
	rm -rf bench-serve-out; exit $$status

# CI regression gate for the committed serving baseline: drive a short
# predict burst against a live pftkd and require (a) the pftkload -json
# report still parses as healthy traffic with latency quantiles, and
# (b) BENCH_serve.json still parses into the baseline schema with a
# recorded serve entry under the "current" label — so the committed
# numbers stay comparable against what the load pipeline produces.
# -gatefrac 0.2 additionally requires the live run to reach 20% of the
# committed throughput (and stay within 5x the committed p99) for the
# matching mode+concurrency label: generous machine-variance slack that
# still fails on the order-of-magnitude collapse a real serving
# regression causes.
bench-serve-json-smoke:
	rm -rf bench-serve-out && mkdir -p bench-serve-out
	$(GO) build -o bench-serve-out/pftkd ./cmd/pftkd
	$(GO) build -o bench-serve-out/pftkload ./cmd/pftkload
	./bench-serve-out/pftkd -addr 127.0.0.1:0 \
		-addrfile bench-serve-out/addr >bench-serve-out/pftkd.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s bench-serve-out/addr ] && break; sleep 0.1; done; \
	[ -s bench-serve-out/addr ] || { echo "pftkd never bound"; kill $$pid; exit 1; }; \
	url="http://$$(cat bench-serve-out/addr)"; \
	./bench-serve-out/pftkload -url $$url -c 8 -n 500 -json \
		| $(GO) run ./cmd/benchjson -serve -check \
			-baseline BENCH_serve.json -require current -gatefrac 0.2; \
	status=$$?; kill -TERM $$pid; wait $$pid; \
	rm -rf bench-serve-out; exit $$status

# Multi-listener scale smoke: boot pftkd with two accept paths
# (SO_REUSEPORT where the kernel allows it, shard-by-hash fanout
# otherwise) and drive an open-loop Poisson predict burst — the
# discipline that keeps latency honest under overload, measured from
# each request's scheduled send time. pftkload exits non-zero if no
# request succeeds; the grep requires the daemon actually ran in
# multi-listener mode and still drained cleanly.
serve-scale-smoke:
	rm -rf serve-scale-out && mkdir -p serve-scale-out
	$(GO) build -o serve-scale-out/pftkd ./cmd/pftkd
	$(GO) build -o serve-scale-out/pftkload ./cmd/pftkload
	./serve-scale-out/pftkd -addr 127.0.0.1:0 -listeners 2 \
		-addrfile serve-scale-out/addr >serve-scale-out/pftkd.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s serve-scale-out/addr ] && break; sleep 0.1; done; \
	[ -s serve-scale-out/addr ] || { echo "pftkd never bound"; kill $$pid; exit 1; }; \
	url="http://$$(cat serve-scale-out/addr)"; \
	./serve-scale-out/pftkload -url $$url -c 8 -n 1000 -qps 2000 -openloop && \
	kill -TERM $$pid && wait $$pid && \
	grep -q "2 listeners (" serve-scale-out/pftkd.log && \
	grep -q "drained and stopped" serve-scale-out/pftkd.log
	rm -rf serve-scale-out

# Chaos soak: 500 randomized scenario campaigns under the race detector,
# from a fixed (spec, seed), run three times — parallel, serial, and
# parallel again — with every run required to produce the byte-identical
# report and zero invariant violations. -maxwall hard-kills a wedged
# campaign so CI fails instead of hanging. On a failure, rerun with
# -corpus to shrink a minimal repro (see DESIGN.md §11).
chaos-smoke:
	rm -rf chaos-smoke-out && mkdir -p chaos-smoke-out
	$(GO) build -race -o chaos-smoke-out/pftkchaos ./cmd/pftkchaos
	./chaos-smoke-out/pftkchaos -n 500 -seed 1 -j 8 -maxwall 10m \
		-out chaos-smoke-out/j8.json
	./chaos-smoke-out/pftkchaos -n 500 -seed 1 -j 1 -maxwall 10m \
		-out chaos-smoke-out/j1.json
	./chaos-smoke-out/pftkchaos -n 500 -seed 1 -j 8 -maxwall 10m \
		-out chaos-smoke-out/j8b.json
	cmp chaos-smoke-out/j8.json chaos-smoke-out/j1.json
	cmp chaos-smoke-out/j8.json chaos-smoke-out/j8b.json
	rm -rf chaos-smoke-out

# End-to-end scenario smoke test: simulate the bundled outage scenario
# through tracesim, analyze it with traceanal, and diff the per-interval
# report against the checked-in golden output. Any nondeterminism in the
# scenario engine — or an unintended behavior change — shows up as a
# golden diff. Regenerate with: make scenario-golden.
SCENARIO_SMOKE_ARGS = -rtt 0.1 -loss 0.01 -wm 32 -dur 600 -seed 42 \
	-scenario examples/scenarios/outage.json

scenario-smoke:
	rm -rf scenario-smoke-out && mkdir -p scenario-smoke-out
	$(GO) run ./cmd/tracesim $(SCENARIO_SMOKE_ARGS) \
		-o scenario-smoke-out/outage.pftk >/dev/null
	$(GO) run ./cmd/traceanal -interval 100 scenario-smoke-out/outage.pftk \
		> scenario-smoke-out/outage.out
	diff -u examples/scenarios/outage.golden scenario-smoke-out/outage.out
	rm -rf scenario-smoke-out

# Refresh the scenario-smoke golden after an intentional change.
scenario-golden:
	$(GO) run ./cmd/tracesim $(SCENARIO_SMOKE_ARGS) -o /tmp/outage-golden.pftk >/dev/null
	$(GO) run ./cmd/traceanal -interval 100 /tmp/outage-golden.pftk \
		> examples/scenarios/outage.golden
	rm -f /tmp/outage-golden.pftk

# Umbrella gate: everything CI runs.
check: build vet fmtcheck lint test race invariants obs-smoke serve-smoke serve-scale-smoke trace-smoke scenario-smoke chaos-smoke bench-serve-json-smoke

clean:
	rm -rf results obs-smoke-out serve-smoke-out serve-scale-out trace-smoke-out bench-serve-out chaos-smoke-out
