# PFTK reproduction — common development targets.

GO ?= go

.PHONY: all build test test-short race cover bench fuzz fuzz-ci experiments examples fmt fmtcheck vet lint invariants obs-smoke serve-smoke check clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing passes over every fuzz target.
fuzz:
	$(GO) test ./internal/trace -fuzz FuzzDecode$$ -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzDecodeTcpdump -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzDecodeJSONL -fuzztime 30s
	$(GO) test ./internal/analysis -fuzz FuzzInferLossEvents -fuzztime 30s

# Abbreviated fuzzing pass for CI: the trace decoders are the only parsers
# fed attacker-controlled bytes, so they get 10 seconds each on every push.
fuzz-ci:
	$(GO) test ./internal/trace -fuzz FuzzDecode$$ -fuzztime 10s
	$(GO) test ./internal/trace -fuzz FuzzDecodeTcpdump -fuzztime 10s
	$(GO) test ./internal/trace -fuzz FuzzDecodeJSONL -fuzztime 10s

# Regenerate every table and figure at the paper's campaign scale.
experiments:
	$(GO) run ./cmd/experiments -run all -out results/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tcpfriendly
	$(GO) run ./examples/validation
	$(GO) run ./examples/modem
	$(GO) run ./examples/shortflows

fmt:
	gofmt -w .

# Fails (with the offending files listed) if anything is not gofmt-clean.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-specific static analysis (floatcmp, errdrop, panicstyle,
# mutexcopy). Exit status 1 means findings.
lint:
	$(GO) run ./cmd/pftklint ./...

# The pftkinvariants build turns the invariant layer's checks into
# panics. The full test suite deliberately feeds NaN to the entry points,
# so only the build and the invariant package's own tests run under the
# tag.
invariants:
	$(GO) build -tags pftkinvariants ./...
	$(GO) test -tags pftkinvariants ./internal/invariant

# End-to-end observability smoke test: run an abbreviated campaign with
# live progress and a JSONL metric export, then validate the produced
# manifest.json and metrics against the documented schema with -checkobs.
obs-smoke:
	rm -rf obs-smoke-out
	$(GO) run ./cmd/experiments -run table2 -hour 60 \
		-out obs-smoke-out -metrics obs-smoke-out/metrics.jsonl -progress >/dev/null
	$(GO) run ./cmd/experiments -checkobs obs-smoke-out
	rm -rf obs-smoke-out

# End-to-end serving smoke test: build pftkd and pftkload, boot the
# daemon on an ephemeral port, hit it with a short closed-loop predict
# burst plus a couple of simulate jobs (pftkload exits non-zero when no
# request succeeds), then require a clean SIGTERM drain.
serve-smoke:
	rm -rf serve-smoke-out && mkdir -p serve-smoke-out
	$(GO) build -o serve-smoke-out/pftkd ./cmd/pftkd
	$(GO) build -o serve-smoke-out/pftkload ./cmd/pftkload
	./serve-smoke-out/pftkd -addr 127.0.0.1:0 \
		-addrfile serve-smoke-out/addr >serve-smoke-out/pftkd.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s serve-smoke-out/addr ] && break; sleep 0.1; done; \
	[ -s serve-smoke-out/addr ] || { echo "pftkd never bound"; kill $$pid; exit 1; }; \
	url="http://$$(cat serve-smoke-out/addr)"; \
	./serve-smoke-out/pftkload -url $$url -c 8 -n 500 -batch 4 && \
	./serve-smoke-out/pftkload -url $$url -mode simulate -c 2 -n 4 -simdur 2 && \
	kill -TERM $$pid && wait $$pid && \
	grep -q "drained and stopped" serve-smoke-out/pftkd.log
	rm -rf serve-smoke-out

# Umbrella gate: everything CI runs.
check: build vet fmtcheck lint test race invariants obs-smoke serve-smoke

clean:
	rm -rf results obs-smoke-out serve-smoke-out
