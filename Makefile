# PFTK reproduction — common development targets.

GO ?= go

.PHONY: all build test test-short race cover bench fuzz experiments examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing passes over every fuzz target.
fuzz:
	$(GO) test ./internal/trace -fuzz FuzzDecode$$ -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzDecodeTcpdump -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzDecodeJSONL -fuzztime 30s
	$(GO) test ./internal/analysis -fuzz FuzzInferLossEvents -fuzztime 30s

# Regenerate every table and figure at the paper's campaign scale.
experiments:
	$(GO) run ./cmd/experiments -run all -out results/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tcpfriendly
	$(GO) run ./examples/validation
	$(GO) run ./examples/modem
	$(GO) run ./examples/shortflows

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -rf results
