module pftk

go 1.22
