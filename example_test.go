package pftk_test

import (
	"fmt"

	"pftk"
)

// The headline computation: the paper's full model at a typical operating
// point.
func ExampleSendRate() {
	params := pftk.NewParams(0.2 /* RTT s */, 2.0 /* T0 s */, 12 /* Wm pkts */)
	fmt.Printf("%.2f pkts/s\n", pftk.SendRate(0.02, params))
	// Output: 20.87 pkts/s
}

// Comparing the full model with the TD-only baseline shows why modeling
// timeouts matters: at 10% loss the baseline is several times too
// optimistic.
func ExampleSendRateTDOnly() {
	params := pftk.NewParams(0.2, 2.0, 0)
	full := pftk.SendRate(0.1, params)
	tdOnly := pftk.SendRateTDOnly(0.1, params)
	fmt.Printf("full %.1f vs TD-only %.1f pkts/s (%.1fx)\n", full, tdOnly, tdOnly/full)
	// Output: full 4.6 vs TD-only 13.7 pkts/s (3.0x)
}

// Throughput counts only the data that reaches the receiver; it sits
// below the send rate and the gap widens with loss.
func ExampleThroughput() {
	params := pftk.NewParams(0.47, 3.2, 12) // Fig. 13 parameters
	for _, p := range []float64{0.01, 0.1, 0.3} {
		fmt.Printf("p=%.2f: B=%.2f T=%.2f\n", p,
			pftk.SendRate(p, params), pftk.Throughput(p, params))
	}
	// Output:
	// p=0.01: B=15.56 T=14.72
	// p=0.10: B=2.46 T=2.08
	// p=0.30: B=0.66 T=0.48
}

// LossRateFor inverts the model: the loss budget for a target rate — the
// provisioning question behind TCP-friendly rate control.
func ExampleLossRateFor() {
	params := pftk.NewParams(0.2, 2.0, 0)
	p, err := pftk.LossRateFor(20, params)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("20 pkts/s tolerates p = %.4f\n", p)
	// Output: 20 pkts/s tolerates p = 0.0211
}

// Sim runs a packet-level TCP Reno transfer over an emulated lossy
// path; Analyze applies the paper's trace-analysis methodology to the
// resulting sender-side trace.
func ExampleSim() {
	res := pftk.Sim(
		pftk.WithPath(0.1),
		pftk.WithLoss(0.02),
		pftk.WithWindow(16),
		pftk.WithMinRTO(1),
		pftk.WithDuration(500),
		pftk.WithSeed(42),
	)
	sum := pftk.Analyze(res.Trace)
	fmt.Printf("loss indications: %d (TD %d, timeout sequences %d)\n",
		sum.LossIndications, sum.TD, sum.TimeoutSequences())
	fmt.Printf("measured p: %.3f\n", sum.P)
	// Output:
	// loss indications: 350 (TD 260, timeout sequences 90)
	// measured p: 0.019
}

// ShortFlowTime extends the model to finite transfers: small flows are
// dominated by slow start and never reach the steady-state rate.
func ExampleShortFlowTime() {
	params := pftk.NewParams(0.1, 1.2, 64)
	for _, n := range []int{10, 1000} {
		rate := pftk.ShortFlowRate(n, 0.02, params)
		fmt.Printf("%4d packets: %.0f%% of steady state\n",
			n, 100*rate/pftk.SendRate(0.02, params))
	}
	// Output:
	//   10 packets: 25% of steady state
	// 1000 packets: 100% of steady state
}
