package pftk

// Facade-level multi-flow tests: the lockstep oracle (disjoint flows
// reproduce independent single-flow runs byte for byte), the
// WithTransfer/SimulateTransfer equivalence pins, and the guarantee
// that the redesigned SimResult leaves the single-flow path untouched.

import (
	"fmt"
	"testing"
)

// TestLockstepOracle runs N flows on disjoint paths inside ONE engine
// and checks each is byte-identical to the same flow run alone through
// the single-flow facade: sharing an event queue must not perturb
// anything. This is the oracle that licenses the multi-flow engine's
// construction — any cross-flow state leak breaks it.
func TestLockstepOracle(t *testing.T) {
	flows := []Flow{
		{LossRate: 0.02, Wm: 32, Seed: 101},
		{Variant: "tahoe", LossRate: 0.05, Wm: 16, MinRTO: 0.5, Seed: 102},
		{LossRate: 0.01, BurstDur: 0.15, Wm: 64, AckEvery: 1, Seed: 103},
	}
	const dur = 120
	multi := Sim(WithFlows(flows...), WithDuration(dur))
	if len(multi.FlowResults) != len(flows) {
		t.Fatalf("FlowResults = %d, want %d", len(multi.FlowResults), len(flows))
	}

	for i, f := range flows {
		solo := Sim(
			WithOS(f.Variant),
			WithBurstLoss(f.LossRate, f.BurstDur),
			WithWindow(f.Wm),
			WithMinRTO(f.MinRTO),
			WithDelayedACKs(f.AckEvery),
			WithSeed(f.Seed),
			WithDuration(dur),
		)
		got := multi.FlowResults[i].Result
		if len(got.Trace) != len(solo.Trace) {
			t.Fatalf("flow %d: trace length %d, solo %d", i, len(got.Trace), len(solo.Trace))
		}
		for j := range got.Trace {
			if got.Trace[j] != solo.Trace[j] {
				t.Fatalf("flow %d: trace diverges at %d: %v vs %v",
					i, j, got.Trace[j], solo.Trace[j])
			}
		}
		if got.Stats != solo.Stats {
			t.Errorf("flow %d: stats %+v, solo %+v", i, got.Stats, solo.Stats)
		}
		if got.Delivered != solo.Delivered {
			t.Errorf("flow %d: delivered %d, solo %d", i, got.Delivered, solo.Delivered)
		}
	}
}

// TestTransferPins pins the finite-transfer path: the deprecated
// SimulateTransfer and the WithTransfer option must return the exact
// same completion times, and those times are pinned to the values the
// construction has produced since the seed (any drift means the
// transfer path's RNG or event order changed).
func TestTransferPins(t *testing.T) {
	cases := []struct {
		name     string
		cfg      SimConfig
		n        int
		deadline float64
	}{
		{"clean", SimConfig{RTT: 0.1, Wm: 16, Seed: 1}, 200, 120},
		{"lossy", SimConfig{RTT: 0.1, LossRate: 0.05, Wm: 16, MinRTO: 1, Seed: 2}, 200, 600},
		{"burst", SimConfig{RTT: 0.1, LossRate: 0.02, BurstDur: 0.15, Wm: 16, MinRTO: 1, Seed: 3}, 200, 600},
	}
	for _, c := range cases {
		legacy := SimulateTransfer(c.cfg, c.n, c.deadline)
		res := Sim(
			WithPath(c.cfg.RTT),
			WithBurstLoss(c.cfg.LossRate, c.cfg.BurstDur),
			WithWindow(c.cfg.Wm),
			WithMinRTO(c.cfg.MinRTO),
			WithSeed(c.cfg.Seed),
			WithTransfer(c.n, c.deadline),
		)
		if res.TransferTime != legacy {
			t.Errorf("%s: WithTransfer = %v, SimulateTransfer = %v", c.name, res.TransferTime, legacy)
		}
		if !res.TransferComplete {
			t.Errorf("%s: transfer did not complete (time %v)", c.name, res.TransferTime)
		}
		if res.Delivered < uint64(c.n) {
			t.Errorf("%s: delivered %d < %d", c.name, res.Delivered, c.n)
		}
	}
}

// TestTransferDeadline: an impossible deadline reports non-completion
// and returns the deadline.
func TestTransferDeadline(t *testing.T) {
	res := Sim(WithPath(0.2), WithWindow(4), WithSeed(9), WithTransfer(10000, 5))
	if res.TransferComplete {
		t.Fatal("10000 packets through a 4-packet window in 5 s reported complete")
	}
	if res.TransferTime != 5 {
		t.Errorf("TransferTime = %v, want deadline 5", res.TransferTime)
	}
}

// TestSingleFlowResultShape: the redesigned SimResult must leave
// single-flow runs exactly as before — same trace through the embedded
// Result, no multi-flow or transfer fields populated.
func TestSingleFlowResultShape(t *testing.T) {
	res := Sim(WithLoss(0.02), WithSeed(7), WithDuration(50))
	legacy := Simulate(SimConfig{LossRate: 0.02, Seed: 7, Duration: 50})
	if fmt.Sprintf("%v", res.Trace) != fmt.Sprintf("%v", legacy.Trace) {
		t.Fatal("Sim and Simulate traces differ for the same config")
	}
	if res.Flows != nil || res.FlowResults != nil {
		t.Errorf("single-flow run populated Flows/FlowResults")
	}
	if res.Fairness.Jain != 0 || res.TransferTime != 0 || res.TransferComplete {
		t.Errorf("single-flow run populated multi-flow/transfer fields: %+v", res.Fairness)
	}
}

// TestWithFlowCountSharedBottleneck drives the symmetric fairness
// population through the public facade and checks the per-flow
// summaries and fairness aggregates are populated coherently.
func TestWithFlowCountSharedBottleneck(t *testing.T) {
	const n = 8
	res := Sim(
		WithPath(0.08),
		WithWindow(64),
		WithMinRTO(0.5),
		WithFlowCount(n),
		WithBottleneck(Bottleneck{Rate: 20 * n, QueueCap: 5 * n, OneWay: 0.04}),
		WithDuration(400),
		WithSeed(42),
	)
	if len(res.Flows) != n || len(res.FlowResults) != n {
		t.Fatalf("flows = %d/%d, want %d", len(res.Flows), len(res.FlowResults), n)
	}
	if res.Fairness.Jain < 0.9 {
		t.Errorf("jain = %v, want >= 0.9", res.Fairness.Jain)
	}
	if res.Fairness.Utilization < 0.5 {
		t.Errorf("utilization = %v, want >= 0.5", res.Fairness.Utilization)
	}
	for i, sum := range res.Flows {
		fr := res.FlowResults[i]
		if sum.PacketsSent == 0 {
			t.Errorf("flow %d: summary has no packets", i)
		}
		if sum.PacketsSent != fr.Result.Stats.PacketsSent+fr.Result.Stats.Retransmits {
			t.Errorf("flow %d: summary sent %d != stats %d+%d",
				i, sum.PacketsSent, fr.Result.Stats.PacketsSent, fr.Result.Stats.Retransmits)
		}
		if fr.P > 0 && fr.Predicted <= 0 {
			t.Errorf("flow %d: p=%v but no prediction", i, fr.P)
		}
	}
	// The embedded Result mirrors flow 0 for drop-in consumers.
	if res.Stats != res.FlowResults[0].Result.Stats {
		t.Errorf("embedded Result is not flow 0's")
	}
}
