// Package pftk is a from-scratch Go implementation of the PFTK
// steady-state TCP throughput model from Padhye, Firoiu, Towsley and
// Kurose, "Modeling TCP Throughput: A Simple Model and Its Empirical
// Validation" (SIGCOMM 1998), together with everything needed to
// re-validate it: a packet-level TCP Reno simulator over an emulated
// network path, tcpdump-style trace capture and analysis, the
// numerically-solved Markov model the paper compares against, and an
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// # The model
//
// The headline result is B(p): the steady-state send rate of a saturated
// (bulk-transfer) TCP Reno connection as a function of the
// loss-indication rate p, the average round-trip time, the average first
// retransmission-timeout duration T0, and the receiver's advertised
// window Wm:
//
//	params := pftk.NewParams(0.2 /* RTT s */, 2.0 /* T0 s */, 12 /* Wm pkts */)
//	rate := pftk.SendRate(0.02, params) // packets per second at 2% loss
//
// SendRate implements the paper's "full model" (eq. 32); SendRateApprox
// the closed-form approximation (eq. 33); SendRateTDOnly the
// Mathis et al. square-root baseline the paper compares against;
// Throughput the receiver-side rate T(p) of eq. (37). LossRateFor inverts
// the model, which is the "TCP-friendly rate" computation that motivated
// the paper.
//
// # The validation stack
//
// Simulate runs a packet-level TCP Reno bulk transfer over an emulated
// lossy path and returns both the measured rates and the sender-side
// event trace; Analyze runs the paper's trace-analysis methodology
// (loss-indication classification, Karn RTT filtering, 100-second
// intervals) over any trace. The cmd/experiments binary regenerates
// Table I, Table II and Figs. 7-13.
package pftk

import (
	"pftk/internal/analysis"
	"pftk/internal/core"
	"pftk/internal/multiflow"
	"pftk/internal/netem"
	"pftk/internal/obs"
	"pftk/internal/reno"
	"pftk/internal/scenario"
	"pftk/internal/sim"
	"pftk/internal/trace"
)

// Params holds the model parameters (RTT, T0, Wm, b). See core.Params.
type Params = core.Params

// Model selects one of the analytic characterizations.
type Model = core.Model

// The available models.
const (
	// ModelFull is the paper's full model, eq. (32).
	ModelFull = core.ModelFull
	// ModelApprox is the approximate model, eq. (33).
	ModelApprox = core.ModelApprox
	// ModelTDOnly is the Mathis et al. baseline ("TD only"), eq. (20).
	ModelTDOnly = core.ModelTDOnly
	// ModelThroughput is the receiver-side throughput model, eq. (37).
	ModelThroughput = core.ModelThroughput
	// ModelNoTimeout is the no-timeout ablation of Section II-A.
	ModelNoTimeout = core.ModelNoTimeout
)

// DefaultB is the delayed-ACK ratio b = 2 used throughout the paper.
const DefaultB = core.DefaultB

// CurvePoint is one (p, rate) sample of a model curve.
type CurvePoint = core.CurvePoint

// NewParams returns Params for the given average RTT (seconds), timeout
// T0 (seconds) and receiver window wm (packets; <= 0 means unlimited),
// with delayed ACKs (b = 2).
func NewParams(rtt, t0, wm float64) Params { return core.NewParams(rtt, t0, wm) }

// SendRate returns the full-model send rate B(p) of eq. (32) in packets
// per second.
func SendRate(p float64, pr Params) float64 { return core.SendRateFull(p, pr) }

// SendRateApprox returns the approximate model of eq. (33).
func SendRateApprox(p float64, pr Params) float64 { return core.SendRateApprox(p, pr) }

// SendRateTDOnly returns the Mathis et al. square-root baseline of
// eq. (20), which ignores timeouts and the receiver window. An unset
// delayed-ACK ratio defaults to DefaultB inside core, identically for
// every caller.
func SendRateTDOnly(p float64, pr Params) float64 {
	return core.SendRateTDOnly(p, pr.RTT, float64(pr.B))
}

// Throughput returns the receiver-side rate T(p) of eq. (37).
func Throughput(p float64, pr Params) float64 { return core.Throughput(p, pr) }

// LossRateFor inverts the full model: the loss rate at which a connection
// with the given parameters achieves the target send rate (packets per
// second). This is the computation behind "TCP-friendly" rate control.
func LossRateFor(target float64, pr Params) (float64, error) {
	return core.LossRateFor(target, pr)
}

// FriendlyRate returns the TCP-friendly send rate for a non-TCP flow
// observing loss rate p on a path with the given parameters; always
// finite.
func FriendlyRate(p float64, pr Params) float64 { return core.FriendlyRate(p, pr) }

// Curve samples a model at n log-spaced loss rates in [pmin, pmax].
func Curve(m Model, pr Params, pmin, pmax float64, n int) []CurvePoint {
	return core.Curve(m, pr, pmin, pmax, n)
}

// Trace is a sender-side packet event trace.
type Trace = trace.Trace

// TraceRecord is one trace event.
type TraceRecord = trace.Record

// Summary is a Table II-style per-trace summary.
type Summary = analysis.Summary

// LossEvent is one classified loss indication.
type LossEvent = analysis.LossEvent

// Interval is one fixed-width analysis interval of a trace.
type Interval = analysis.Interval

// SimResult is the outcome of a simulated transfer. The embedded
// reno.Result carries the single-flow measurements (for multi-flow runs
// it is flow 0's result, kept for drop-in compatibility); the Flows,
// FlowResults and Fairness fields are populated only by multi-flow runs
// (WithFlows / WithFlowCount), and the Transfer fields only by finite
// transfers (WithTransfer).
type SimResult struct {
	reno.Result
	// Flows holds per-flow Table II-style summaries, computed by the
	// same loss-inference analysis as Analyze, indexed by flow ID.
	// (TFRC flows have no sender trace and summarize to zero.)
	Flows []Summary
	// FlowResults holds each flow's measured rates, loss, RTT,
	// bottleneck attribution and TD-only model prediction.
	FlowResults []FlowResult
	// Fairness aggregates the multi-flow run: Jain's index, aggregate
	// rate, utilization and the per-flow rate/prediction vectors.
	Fairness Fairness
	// TransferTime is the finite transfer's completion time in seconds
	// (the deadline when it did not finish).
	TransferTime float64
	// TransferComplete reports whether the finite transfer finished
	// before its deadline.
	TransferComplete bool
}

// Flow specifies one sender in a multi-flow simulation: its congestion
// control variant, path parameters and start offset. See WithFlows.
type Flow = multiflow.FlowSpec

// Bottleneck describes the link shared by all flows of a multi-flow
// simulation. See WithBottleneck.
type Bottleneck = multiflow.Bottleneck

// FlowResult is one flow's measured outcome in a multi-flow run.
type FlowResult = multiflow.FlowResult

// Fairness aggregates a multi-flow run: Jain's index and per-flow rates
// against the TD-only model predictions.
type Fairness = multiflow.Fairness

// Scenario is a declarative schedule of path changes and injected
// faults; see package internal/scenario for the semantics and
// ParseScenario for the JSON form.
type Scenario = scenario.Scenario

// Phase is one scheduled rewrite of the steady-state path parameters.
type Phase = scenario.Phase

// Fault is one transient perturbation window, optionally repeating.
type Fault = scenario.Fault

// LossSpec declaratively describes a steady-state loss process.
type LossSpec = scenario.LossSpec

// PhaseStat attributes packets offered/dropped/delivered on the data
// path to one scenario segment.
type PhaseStat = scenario.PhaseStat

// ParseScenario decodes and validates a JSON scenario document.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// ParseScenarioFile reads and parses the scenario document at path.
func ParseScenarioFile(path string) (*Scenario, error) { return scenario.ParseFile(path) }

// SimConfig describes a simulated bulk-transfer experiment at the level a
// model user thinks in; Sim and Simulate map it onto the packet-level TCP
// Reno implementation and the path emulator.
type SimConfig struct {
	// RTT is the two-way propagation delay of the path in seconds.
	RTT float64
	// LossRate is the probability that a packet starts a loss burst.
	LossRate float64
	// BurstDur is the loss-outage duration in seconds (0 = isolated
	// single-packet losses).
	BurstDur float64
	// Wm is the receiver's advertised window in packets (default 64).
	Wm int
	// MinRTO floors the retransmission timeout, shaping T0 (default
	// 1 s).
	MinRTO float64
	// Duration is the transfer length in simulated seconds (default
	// 100).
	Duration float64
	// Seed makes the run reproducible.
	Seed uint64
	// Variant selects the sender's TCP flavor: "reno" (default),
	// "tahoe", "linux", "irix" or "newreno".
	Variant string
	// AckEvery is the receiver's delayed-ACK ratio b (default 2).
	AckEvery int
	// Scenario, when set, schedules time-varying path conditions and
	// fault injection over the run (see WithScenario).
	Scenario *Scenario

	// phaseStats, when set via WithPhaseStats, receives the per-phase
	// attribution after a scenario run.
	phaseStats *[]PhaseStat
	// flight, when set via WithFlightRecorder, is attached to the run's
	// engine so the last schedule/fire/cancel/drop operations are
	// retained for a post-mortem dump.
	flight *FlightRecorder
	// registry, when set via WithObs, instruments the engine, both link
	// directions, the sender and (when present) the scenario runner.
	registry *obs.Registry
	// linkStats, when set via WithLinkStats, receives both directions'
	// final link counters after the run.
	linkStats *PathStats
	// totalPackets, when positive, makes the transfer finite
	// (WithTransfer, SimulateTransfer).
	totalPackets uint64
	// transferDeadline, when positive, selects the finite-transfer
	// execution path: run until totalPackets complete or the deadline
	// passes (WithTransfer).
	transferDeadline float64
	// flows, when non-empty, selects the multi-flow execution path
	// (WithFlows).
	flows []Flow
	// flowCount, when positive and flows is empty, replicates the
	// single-flow knobs into that many identical flows (WithFlowCount).
	flowCount int
	// bottleneck, when its Rate is positive, routes all flows through
	// one shared link; otherwise each flow gets a private path
	// (WithBottleneck).
	bottleneck Bottleneck
}

func (c SimConfig) variant() reno.Variant {
	switch c.Variant {
	case "tahoe":
		return reno.Tahoe
	case "linux":
		return reno.Linux
	case "irix":
		return reno.Irix
	case "newreno":
		return reno.NewReno
	default:
		return reno.Reno
	}
}

// buildConn assembles the engine, connection and (when a scenario is
// configured) the bound scenario runner for one simulated transfer.
// horizon bounds the expansion of unbounded periodic faults. When no
// scenario is configured, the construction — including the RNG fork
// sequence — is identical to the pre-scenario releases, so legacy
// configs reproduce their traces byte for byte.
func buildConn(c *SimConfig, horizon float64) (*reno.Connection, *scenario.Runner) {
	if c.RTT <= 0 {
		c.RTT = 0.1
	}
	rng := sim.NewRNG(c.Seed)
	var loss netem.LossModel
	switch {
	case c.LossRate <= 0:
		loss = nil
	case c.BurstDur > 0:
		loss = netem.NewTimedBurst(c.LossRate, c.BurstDur, rng.Fork("loss"))
	default:
		loss = netem.NewBernoulli(c.LossRate, rng.Fork("loss"))
	}
	cfg := reno.ConnConfig{
		Sender: reno.SenderConfig{
			Variant:      c.variant(),
			RWnd:         c.Wm,
			MinRTO:       c.MinRTO,
			TotalPackets: c.totalPackets,
		},
		Receiver: reno.ReceiverConfig{AckEvery: c.AckEvery},
		Path:     netem.SymmetricPath(c.RTT/2, loss),
	}
	eng := new(sim.Engine)
	eng.SetFlightRecorder(c.flight)
	if c.registry != nil {
		cfg.Sender.Metrics = reno.NewMetrics(c.registry)
		cfg.Path.Forward.Metrics = netem.NewLinkMetrics(c.registry, "netem.fwd")
		cfg.Path.Reverse.Metrics = netem.NewLinkMetrics(c.registry, "netem.rev")
		eng.SetHooks(engineHooks(c.registry))
	}
	conn := reno.NewConnection(eng, cfg)
	var runner *scenario.Runner
	if c.Scenario != nil {
		runner = scenario.Bind(eng, conn.Path, scenario.Config{
			Scenario: c.Scenario,
			RNG:      rng.Fork("scenario"),
			Base:     scenario.Base{RTT: c.RTT, Loss: loss},
			Horizon:  horizon,
			Registry: c.registry,
		})
	}
	return conn, runner
}

// engineHooks is the standard engine instrumentation for WithObs: events
// fired, queue-depth high-water mark and cancels, all into preallocated
// handles so the hooks never allocate on the hot path.
func engineHooks(reg *obs.Registry) sim.Hooks {
	events := reg.Counter("sim.events")
	depth := reg.Gauge("sim.queue.depth")
	cancels := reg.Counter("sim.cancels")
	return sim.Hooks{
		EventFired: func(_ float64, pending int) {
			events.Inc()
			depth.Set(float64(pending))
		},
		Scheduled: func(_ float64, pending int) { depth.Set(float64(pending)) },
		Cancelled: func() { cancels.Inc() },
	}
}

// Sim runs a saturated TCP bulk transfer over an emulated — optionally
// time-varying — path and returns the measured result, including the
// sender-side trace:
//
//	res := pftk.Sim(
//		pftk.WithPath(0.2),
//		pftk.WithLoss(0.02),
//		pftk.WithDuration(1000),
//		pftk.WithSeed(42),
//	)
//
// Defaults: 0.1 s RTT, lossless path, 100 s duration, Reno sender with a
// 64-packet window, delayed ACKs (b = 2).
func Sim(opts ...SimOption) SimResult {
	var c SimConfig
	for _, o := range opts {
		o(&c)
	}
	return runSim(c)
}

// runSim is the single execution path behind Sim and Simulate. It is
// annotated deterministic: for a fixed config (including the seed) it
// must produce byte-identical traces — the contract the golden tests and
// serial==parallel campaign identity rest on — so the determinism
// analyzer checks it like the simulation packages themselves.
//
//pftk:deterministic
func runSim(c SimConfig) SimResult {
	if c.Duration <= 0 {
		c.Duration = 100
	}
	if len(c.flows) > 0 || c.flowCount > 0 {
		return runMultiSim(c)
	}
	if c.transferDeadline > 0 {
		return runTransferSim(c)
	}
	conn, runner := buildConn(&c, c.Duration)
	res := conn.Run(c.Duration)
	if runner != nil && c.phaseStats != nil {
		*c.phaseStats = runner.Finish()
	}
	if c.linkStats != nil {
		*c.linkStats = PathStats{
			Forward: conn.Path.Forward.Stats(),
			Reverse: conn.Path.Reverse.Stats(),
		}
	}
	return SimResult{Result: res}
}

// runTransferSim is the finite-transfer execution path (WithTransfer):
// the same construction as SimulateTransfer always used, so the
// deprecated wrapper reproduces its traces byte for byte.
func runTransferSim(c SimConfig) SimResult {
	deadline := c.transferDeadline
	conn, _ := buildConn(&c, deadline)
	res, done := conn.RunUntilComplete(deadline)
	out := SimResult{Result: res, TransferTime: done}
	out.TransferComplete = done < deadline
	if c.linkStats != nil {
		*c.linkStats = PathStats{
			Forward: conn.Path.Forward.Stats(),
			Reverse: conn.Path.Reverse.Stats(),
		}
	}
	return out
}

// runMultiSim is the multi-flow execution path (WithFlows,
// WithFlowCount): N flows on one engine, through a shared bottleneck
// when one is configured and over disjoint private paths otherwise.
// Scenario, observability and flight-recorder options apply only to
// single-flow runs and are ignored here.
func runMultiSim(c SimConfig) SimResult {
	flows := c.flows
	if len(flows) == 0 {
		flows = multiflow.SymmetricFlows(c.flowCount, Flow{
			Variant:  c.Variant,
			RTT:      c.RTT,
			LossRate: c.LossRate,
			BurstDur: c.BurstDur,
			Wm:       c.Wm,
			MinRTO:   c.MinRTO,
			AckEvery: c.AckEvery,
		})
	}
	mres := multiflow.Run(multiflow.Config{
		Flows:      flows,
		Bottleneck: c.bottleneck,
		Duration:   c.Duration,
		Seed:       c.Seed,
	})
	out := SimResult{Fairness: mres.Fairness}
	for _, fr := range mres.Flows {
		out.FlowResults = append(out.FlowResults, fr)
		out.Flows = append(out.Flows, Analyze(fr.Result.Trace))
	}
	if len(mres.Flows) > 0 {
		out.Result = mres.Flows[0].Result
	}
	return out
}

// Simulate runs a saturated TCP Reno bulk transfer over an emulated path
// and returns the measured result, including the sender-side trace.
//
// Deprecated: use Sim with functional options; Simulate delegates to the
// same execution path and produces byte-identical traces, but new knobs
// (scenarios, fault injection) are only exposed as options.
func Simulate(c SimConfig) SimResult {
	return runSim(c)
}

// Analyze runs the paper's trace-analysis programs over a sender-side
// trace: loss indications are inferred from wire-level records exactly as
// the paper's programs had to do from tcpdump output, then summarized
// Table II-style. The returned Summary embeds the classified loss events,
// so one call serves both the table row and event-level consumers:
//
//	sum := pftk.Analyze(res.Trace)                         // standard Reno (3 dupacks)
//	sum  = pftk.Analyze(res.Trace, pftk.WithDupThreshold(2)) // Linux-style senders
//	ivs := pftk.Intervals(res.Trace, sum.Events, 100)
func Analyze(tr Trace, opts ...AnalyzeOption) Summary {
	var c analyzeConfig
	for _, o := range opts {
		o(&c)
	}
	var events []LossEvent
	if c.groundTruth {
		events = analysis.GroundTruthLossEvents(tr)
	} else {
		events = analysis.InferLossEvents(tr, c.dupThreshold)
	}
	return analysis.Summarize(tr, events)
}

// Intervals splits a trace into width-second intervals with per-interval
// loss statistics, as in the paper's Fig. 7 methodology.
func Intervals(tr Trace, events []LossEvent, width float64) []Interval {
	return analysis.Intervals(tr, events, width)
}

// RTTWindowCorrelation returns the Section IV correlation between round
// duration and packets in flight for a simulated trace (near 0 on
// wide-area paths, near 1 behind a modem-style deep buffer).
func RTTWindowCorrelation(tr Trace) float64 { return analysis.RoundCorrelation(tr) }

// ShortFlowTime returns the expected completion time (seconds) of an
// n-packet transfer under loss rate p — the short-connection extension the
// paper lists as future work (Cardwell et al. developed it into a full
// model in 2000): slow start, the expected first-loss cost, then steady
// state at B(p).
func ShortFlowTime(n int, p float64, pr Params) float64 {
	return core.ShortFlowTime(n, p, pr)
}

// ShortFlowRate returns n / ShortFlowTime — the effective rate of a short
// transfer, which approaches SendRate only for large n.
func ShortFlowRate(n int, p float64, pr Params) float64 {
	return core.ShortFlowRate(n, p, pr)
}

// SimulateTransfer runs a finite n-packet transfer with the given
// simulation config and returns its completion time in seconds (or the
// deadline if it never completes).
//
// Deprecated: use Sim with WithTransfer(n, deadline) and read
// TransferTime from the result; SimulateTransfer delegates to the same
// execution path and produces byte-identical traces.
func SimulateTransfer(c SimConfig, n int, deadline float64) float64 {
	c.totalPackets = uint64(n)
	c.transferDeadline = deadline
	return runSim(c).TransferTime
}
