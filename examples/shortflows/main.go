// Short flows: why web-page-sized transfers never see the steady-state
// rate.
//
// The paper models saturated senders and flags short connections as
// future work (its reference [2]; Cardwell et al. completed the model in
// 2000). This example exercises the shortflow extension: for flow sizes
// from a single packet to tens of thousands, it compares the expected
// completion time from the model with simulated TCP Reno transfers, and
// shows the effective rate climbing toward B(p) as slow start amortizes.
package main

import (
	"fmt"

	"pftk"
)

func main() {
	const (
		rtt  = 0.1
		loss = 0.02
	)
	params := pftk.Params{RTT: rtt + 0.01, T0: 1.2, Wm: 64, B: 2}
	steady := pftk.SendRate(loss, params)

	fmt.Printf("path: RTT %.0f ms, loss %.0f%%, Wm 64 — steady-state B(p) = %.1f pkts/s\n\n",
		rtt*1000, loss*100, steady)
	fmt.Printf("%-10s %14s %14s %14s %12s\n",
		"flow size", "model time(s)", "sim time(s)", "eff. rate", "% of B(p)")

	for _, n := range []int{1, 10, 50, 200, 1000, 5000, 20000} {
		model := pftk.ShortFlowTime(n, loss, params)
		sim := pftk.SimulateTransfer(pftk.SimConfig{
			RTT: rtt, LossRate: loss, Wm: 64, MinRTO: 1,
			Seed: uint64(n),
		}, n, 7200)
		rate := pftk.ShortFlowRate(n, loss, params)
		fmt.Printf("%-10d %14.2f %14.2f %14.1f %11.0f%%\n",
			n, model, sim, rate, 100*rate/steady)
	}

	fmt.Println()
	fmt.Println("a 10-packet flow runs at roughly a quarter of the steady-state")
	fmt.Println("rate: its lifetime is pure slow start. Only after hundreds of")
	fmt.Println("packets does the effective rate approach the PFTK prediction —")
	fmt.Println("the reason mean-rate models mispredict web traffic, and the")
	fmt.Println("reason the short-connection extension exists.")
}
