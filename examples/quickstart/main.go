// Quickstart: evaluate the PFTK model and check it against a simulated
// TCP Reno transfer in ~40 lines.
package main

import (
	"fmt"

	"pftk"
)

func main() {
	// A transcontinental path of the late-90s Internet: 200 ms RTT,
	// 2-second timeouts, a 12-packet receiver window.
	params := pftk.NewParams(0.2, 2.0, 12)

	fmt.Println("PFTK send-rate model,", params)
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "p", "full", "approx", "TD-only", "throughput")
	for _, p := range []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2} {
		fmt.Printf("%-8.3f %12.2f %12.2f %12.2f %12.2f\n",
			p,
			pftk.SendRate(p, params),
			pftk.SendRateApprox(p, params),
			pftk.SendRateTDOnly(p, params),
			pftk.Throughput(p, params))
	}

	// Validate one point against the packet-level simulator: run a
	// 1000-second bulk transfer at 2% loss and compare.
	res := pftk.Simulate(pftk.SimConfig{
		RTT:      0.2,
		LossRate: 0.02,
		Wm:       12,
		MinRTO:   2.0, // shapes T0 toward the model's 2 s
		Duration: 1000,
		Seed:     42,
	})
	sum := pftk.Analyze(res.Trace)
	measured := pftk.Params{RTT: sum.MeanRTT, T0: sum.MeanT0, Wm: 12, B: 2}
	fmt.Println()
	fmt.Printf("simulated 1000 s at 2%% loss: measured p=%.4f RTT=%.3fs T0=%.3fs\n",
		sum.P, sum.MeanRTT, sum.MeanT0)
	fmt.Printf("  measured send rate: %8.2f pkts/s\n", res.SendRate())
	fmt.Printf("  model prediction:   %8.2f pkts/s\n", pftk.SendRate(sum.P, measured))
	fmt.Printf("  TD-only baseline:   %8.2f pkts/s (overestimates)\n",
		pftk.SendRateTDOnly(sum.P, measured))
}
