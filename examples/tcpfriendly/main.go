// TCP-friendly rate control: the application that motivated the paper.
//
// A non-TCP flow (say, a UDP video stream) wants to consume no more
// bandwidth than a TCP connection would under the same conditions —
// otherwise it starves TCP traffic. The PFTK formula gives it the target:
// measure the loss rate and RTT over each control interval, then send at
// B(p). This is the mechanism later standardized as TFRC (RFC 5348),
// whose throughput equation is exactly the model implemented here.
//
// This example simulates a path whose loss rate drifts over time and
// shows a controller tracking the TCP-fair rate, plus the inverse
// computation: "how much loss could I tolerate at my current rate?"
package main

import (
	"fmt"
	"math"

	"pftk"
)

// lossAt models a path whose congestion varies over a day-like cycle
// between 0.5% and 8%.
func lossAt(minute float64) float64 {
	return 0.0425 - 0.0375*math.Cos(2*math.Pi*minute/180)
}

func main() {
	params := pftk.NewParams(0.15, 1.2, 32)

	fmt.Println("TCP-friendly controller,", params)
	fmt.Println()
	fmt.Printf("%-8s %-8s %14s %16s\n", "minute", "loss", "fair rate", "tolerable loss")
	fmt.Printf("%-8s %-8s %14s %16s\n", "", "", "(pkts/s)", "at this rate")

	// The controller smooths its loss estimate (as TFRC does) with an
	// EWMA and re-computes the allowed rate each "minute".
	est := lossAt(0)
	for minute := 0.0; minute <= 360; minute += 30 {
		p := lossAt(minute)
		est = 0.7*est + 0.3*p
		rate := pftk.FriendlyRate(est, params)

		// The inverse question a provisioning tool asks: how much
		// loss can this rate absorb before TCP-friendliness would
		// force a slowdown below it?
		tolerable, err := pftk.LossRateFor(rate, params)
		if err != nil {
			tolerable = math.NaN()
		}
		fmt.Printf("%-8.0f %-8.4f %14.2f %16.4f\n", minute, est, rate, tolerable)
	}

	fmt.Println()
	fmt.Println("sanity: a flow pacing itself with FriendlyRate matches a real")
	fmt.Println("TCP connection simulated under the same loss process:")
	for _, p := range []float64{0.01, 0.04} {
		res := pftk.Simulate(pftk.SimConfig{
			RTT: 0.15, LossRate: p, Wm: 32, MinRTO: 1.2,
			Duration: 2000, Seed: uint64(p * 1e4),
		})
		sum := pftk.Analyze(res.Trace)
		fair := pftk.FriendlyRate(sum.P, params)
		fmt.Printf("  loss %.2f: simulated TCP %.1f pkts/s, controller target %.1f pkts/s (ratio %.2f)\n",
			p, res.SendRate(), fair, fair/res.SendRate())
	}
}
