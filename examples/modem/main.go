// The Fig. 11 pathology: where the model (and every contemporaneous
// model) breaks.
//
// A receiver behind a 28.8 kb/s modem with a buffer dedicated to the
// connection violates the model's core assumption that the round-trip
// time is independent of the window: with a saturated sender, almost
// every queued packet waits behind the sender's own window, so RTT grows
// linearly with the window and the RTT-window correlation approaches 1
// (the paper measured up to 0.97). This example reproduces the effect
// and contrasts it with a wide-area path.
package main

import (
	"fmt"

	"pftk"
	"pftk/internal/analysis"
	"pftk/internal/core"
	"pftk/internal/hosts"
	"pftk/internal/reno"
)

func main() {
	// Wide-area reference path: constant propagation delay.
	wan := pftk.Simulate(pftk.SimConfig{
		RTT: 0.2, LossRate: 0.02, Wm: 22, MinRTO: 1.0,
		Duration: 1800, Seed: 1,
	})
	fmt.Println("wide-area path (propagation-dominated):")
	report(wan.Trace, wan.Result, 22)

	// Modem path: 3.5 pkts/s bottleneck, 40-packet dedicated buffer.
	_, cfg := hosts.ModemPair()
	modem := reno.RunConnection(cfg, 1800)
	fmt.Println("\nmodem path (queueing-dominated, Fig. 11):")
	report(modem.Trace, modem, 22)

	fmt.Println("\nconclusion: on the modem path the RTT is a function of the window,")
	fmt.Println("violating the independence assumption shared by this model and by")
	fmt.Println("Lakshman-Madhow, Mathis et al. and Ott et al.; all of them misestimate")
	fmt.Println("such paths (Section IV / Fig. 11).")
}

func report(tr pftk.Trace, res reno.Result, wm float64) {
	sum := pftk.Analyze(tr)
	rho := pftk.RTTWindowCorrelation(tr)
	fmt.Printf("  measured: rate %.2f pkts/s, p %.4f, RTT %.3fs, T0 %.3fs\n",
		res.SendRate(), sum.P, sum.MeanRTT, sum.MeanT0)
	fmt.Printf("  RTT-window correlation: %.3f\n", rho)

	params := pftk.Params{RTT: sum.MeanRTT, T0: sum.MeanT0, Wm: wm, B: 2}
	if params.Validate() != nil {
		fmt.Println("  (insufficient measurements for model comparison)")
		return
	}
	ivs := pftk.Intervals(tr, sum.Events, 100)
	err := analysis.ModelError(ivs, core.ModelFull, params)
	fmt.Printf("  full-model prediction: %.2f pkts/s, average interval error %.3f\n",
		pftk.SendRate(sum.P, params), err)
}
