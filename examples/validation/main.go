// Validation campaign in miniature: the Section III methodology end to
// end. For a sweep of loss rates, simulate a bulk TCP Reno transfer,
// analyze the sender-side trace exactly as the paper's analysis programs
// did (inferring loss indications from wire events, Karn-filtered RTT,
// measured T0), and compare the measured send rate with the predictions
// of the full, approximate and TD-only models.
package main

import (
	"fmt"
	"math"

	"pftk"
)

func main() {
	fmt.Println("loss      measured    full(err)      approx(err)    TD-only(err)   TO-dominated?")
	var errFull, errApprox, errTD []float64
	for _, loss := range []float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.15} {
		res := pftk.Simulate(pftk.SimConfig{
			RTT:      0.18,
			LossRate: loss,
			BurstDur: 0.2, // correlated losses, as observed on real paths
			Wm:       24,
			MinRTO:   1.0,
			Duration: 3000,
			Seed:     uint64(loss * 1e6),
		})
		sum := pftk.Analyze(res.Trace)
		params := pftk.Params{RTT: sum.MeanRTT, T0: sum.MeanT0, Wm: 24, B: 2}
		if params.Validate() != nil {
			params = pftk.NewParams(0.18, 1.0, 24)
		}
		meas := res.SendRate()
		rel := func(pred float64) float64 { return math.Abs(pred-meas) / meas }

		full := pftk.SendRate(sum.P, params)
		approx := pftk.SendRateApprox(sum.P, params)
		td := pftk.SendRateTDOnly(sum.P, params)
		errFull = append(errFull, rel(full))
		errApprox = append(errApprox, rel(approx))
		errTD = append(errTD, rel(td))

		fmt.Printf("%-8.3f  %8.1f  %8.1f(%4.2f)  %8.1f(%4.2f)  %8.1f(%4.2f)   %v\n",
			loss, meas, full, rel(full), approx, rel(approx), td, rel(td),
			sum.TimeoutSequences() > sum.TD)
	}

	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	fmt.Println()
	fmt.Printf("mean relative error: full %.2f, approx %.2f, TD-only %.2f\n",
		mean(errFull), mean(errApprox), mean(errTD))
	fmt.Println("(the paper's finding: the full model tracks measurements across the")
	fmt.Println(" whole loss range while TD-only overestimates badly beyond ~5% loss)")
}
