package roundsim

import (
	"math"
	"testing"
	"testing/quick"

	"pftk/internal/core"
)

func run(t *testing.T, cfg Config, tdps int) Stats {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.RunTDPs(tdps)
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{P: 0, RTT: 1, T0: 1},
		{P: 1, RTT: 1, T0: 1},
		{P: 0.1, RTT: 0, T0: 1},
		{P: 0.1, RTT: 1, T0: 0},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(Config{P: 0.1, RTT: 0.2, T0: 1}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestMeanWMatchesEq13 validates the E[W] derivation. Eq. (13) is derived
// in Section II-A under the TD-only assumption (every period starts at
// half the previous end window), so the simulator runs in TDOnly mode: the
// Monte-Carlo end-of-period window must converge to eq. (13).
func TestMeanWMatchesEq13(t *testing.T) {
	for _, p := range []float64{0.01, 0.03, 0.08} {
		st := run(t, Config{P: p, RTT: 0.1, T0: 1, Seed: uint64(p * 1e5), TDOnly: true}, 60000)
		got := st.MeanW()
		want := core.EW(p, 2)
		if r := got / want; r < 0.85 || r > 1.15 {
			t.Errorf("p=%g: empirical E[W]=%.2f vs eq.(13)=%.2f (ratio %.3f)", p, got, want, r)
		}
	}
}

// TestFullProcessWindowBelowEq13 documents why TDOnly mode exists: with
// timeouts resetting the window to one, the end-of-period window sits
// measurably below the TD-only E[W].
func TestFullProcessWindowBelowEq13(t *testing.T) {
	for _, p := range []float64{0.03, 0.08} {
		st := run(t, Config{P: p, RTT: 0.1, T0: 1, Seed: 5}, 40000)
		if st.MeanW() >= core.EW(p, 2) {
			t.Errorf("p=%g: full-process E[W]=%.2f should be below eq.(13)=%.2f",
				p, st.MeanW(), core.EW(p, 2))
		}
	}
}

// TestMeanXMatchesEq15 validates the round-count derivation.
func TestMeanXMatchesEq15(t *testing.T) {
	for _, p := range []float64{0.01, 0.03, 0.08} {
		st := run(t, Config{P: p, RTT: 0.1, T0: 1, Seed: 7 + uint64(p*1e5)}, 60000)
		got := st.MeanX()
		want := core.EX(p, 2) + 1 // the simulator counts the final (last) round too
		if r := got / want; r < 0.85 || r > 1.15 {
			t.Errorf("p=%g: empirical E[X]=%.2f vs eq.(15)+1=%.2f (ratio %.3f)", p, got, want, r)
		}
	}
}

// TestMeanYMatchesEq5 validates E[Y] = (1-p)/p + E[W].
func TestMeanYMatchesEq5(t *testing.T) {
	for _, p := range []float64{0.01, 0.03, 0.08} {
		st := run(t, Config{P: p, RTT: 0.1, T0: 1, Seed: 11}, 60000)
		got := st.MeanY()
		want := core.EY(p, 2)
		if r := got / want; r < 0.8 || r > 1.25 {
			t.Errorf("p=%g: empirical E[Y]=%.1f vs eq.(5)=%.1f (ratio %.3f)", p, got, want, r)
		}
	}
}

// TestQMatchesQHat validates the timeout-probability construction of
// Fig. 4 against the closed form Q̂ of eq. (24), evaluated at the
// process's own mean end-of-period window (the paper's approximation (26)
// plugs in E[W]; using the empirical mean removes the feedback bias that
// timeout-reset windows introduce).
func TestQMatchesQHat(t *testing.T) {
	for _, p := range []float64{0.02, 0.05, 0.1} {
		st := run(t, Config{P: p, RTT: 0.1, T0: 1, Seed: 13}, 80000)
		got := st.Q()
		want := core.QHat(p, st.MeanW())
		if math.Abs(got-want) > 0.1 {
			t.Errorf("p=%g: empirical Q=%.3f vs Q̂(meanW=%.2f)=%.3f", p, got, st.MeanW(), want)
		}
	}
}

// TestSendRateMatchesEq32 validates the end-to-end formula on the model's
// own process.
func TestSendRateMatchesEq32(t *testing.T) {
	for _, p := range []float64{0.01, 0.03, 0.08, 0.15} {
		cfg := Config{P: p, RTT: 0.2, T0: 2.0, Seed: 17}
		st := run(t, cfg, 60000)
		got := st.SendRate()
		want := core.SendRateFull(p, core.Params{RTT: cfg.RTT, T0: cfg.T0, Wm: 0, B: 2})
		if r := got / want; r < 0.75 || r > 1.35 {
			t.Errorf("p=%g: empirical B=%.2f vs eq.(32)=%.2f (ratio %.3f)", p, got, want, r)
		}
	}
}

// TestWindowCapRespected checks the Wm-limited regime of Section II-C.
func TestWindowCapRespected(t *testing.T) {
	cfg := Config{P: 0.003, RTT: 0.2, T0: 2.0, Wm: 8, Seed: 19}
	st := run(t, cfg, 30000)
	if st.MeanW() > 8.0001 {
		t.Errorf("mean end window %g exceeds Wm", st.MeanW())
	}
	// Rate must respect the ceiling.
	if st.SendRate() > 8/0.2*1.01 {
		t.Errorf("rate %g above Wm/RTT", st.SendRate())
	}
	want := core.SendRateFull(0.003, core.Params{RTT: 0.2, T0: 2, Wm: 8, B: 2})
	if r := st.SendRate() / want; r < 0.7 || r > 1.3 {
		t.Errorf("window-limited rate %.2f vs model %.2f", st.SendRate(), want)
	}
}

// TestTimeoutSequenceLengthGeometric verifies the geometric distribution
// of timeouts per sequence assumed in eq. (27).
func TestTimeoutSequenceLengthGeometric(t *testing.T) {
	p := 0.3
	st := run(t, Config{P: p, RTT: 0.1, T0: 0.5, Seed: 23}, 50000)
	if st.TOEvents == 0 {
		t.Fatal("no timeout sequences")
	}
	meanLen := float64(st.Timeouts) / float64(st.TOEvents)
	want := 1 / (1 - p) // eq. (27)
	if math.Abs(meanLen-want)/want > 0.1 {
		t.Errorf("mean timeouts per sequence = %.3f, want %.3f", meanLen, want)
	}
}

// TestDeterministicBySeed ensures reproducibility.
func TestDeterministicBySeed(t *testing.T) {
	a := run(t, Config{P: 0.05, RTT: 0.1, T0: 1, Seed: 99}, 5000)
	b := run(t, Config{P: 0.05, RTT: 0.1, T0: 1, Seed: 99}, 5000)
	if a != b {
		t.Error("same seed produced different stats")
	}
	c := run(t, Config{P: 0.05, RTT: 0.1, T0: 1, Seed: 100}, 5000)
	if a == c {
		t.Error("different seeds produced identical stats")
	}
}

// TestStatsAccessorsOnEmpty guards division by zero.
func TestStatsAccessorsOnEmpty(t *testing.T) {
	var s Stats
	if s.Q() != 0 || s.SendRate() != 0 {
		t.Error("empty stats should report zeros where defined")
	}
}

// TestHighLossMostlyTimeouts reproduces the regime insight: at high p
// nearly all loss indications are timeouts (Q -> 1).
func TestHighLossMostlyTimeouts(t *testing.T) {
	st := run(t, Config{P: 0.4, RTT: 0.1, T0: 1, Seed: 31}, 30000)
	if st.Q() < 0.9 {
		t.Errorf("Q at p=0.4 is %g, want near 1", st.Q())
	}
}

func TestQuickSendRateMonotoneInP(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		p1 := 0.005 + float64(aRaw%100)/400 // up to ~0.25
		p2 := p1 + 0.02 + float64(bRaw%50)/400
		if p2 >= 0.6 {
			p2 = 0.6
		}
		r1 := run2(p1)
		r2 := run2(p2)
		// Allow 10% statistical slack.
		return r1 >= r2*0.9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func run2(p float64) float64 {
	s, err := New(Config{P: p, RTT: 0.2, T0: 1.5, Seed: uint64(p * 1e6)})
	if err != nil {
		panic(err)
	}
	return s.RunTDPs(20000).SendRate()
}

func TestQuickStatsAlwaysCoherent(t *testing.T) {
	f := func(pRaw, wmRaw uint8, seed uint64) bool {
		p := 0.005 + float64(pRaw%120)/200 // up to ~0.6
		wm := float64(wmRaw % 40)          // 0 = unlimited
		s, err := New(Config{P: p, RTT: 0.1, T0: 1, Wm: wm, Seed: seed})
		if err != nil {
			return false
		}
		st := s.RunTDPs(2000)
		if st.TDPs != 2000 {
			return false
		}
		if st.TDEvents+st.TOEvents != st.TDPs {
			return false
		}
		if st.Timeouts < st.TOEvents {
			return false
		}
		if st.SumW <= 0 || st.SumX <= 0 || st.SumY <= 0 || st.Elapsed <= 0 {
			return false
		}
		if wm > 0 && st.MeanW() > wm+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
