// Package roundsim simulates the paper's *own* stochastic model of TCP
// congestion avoidance, exactly as formulated in Section II: windows
// evolve in rounds, in-round losses are perfectly correlated (the first
// loss kills the rest of the round), the TD-vs-TO decision follows the
// penultimate/last-round construction of Fig. 4, and timeout sequences
// back off exponentially with the 64·T0 cap.
//
// Monte-Carlo estimates from this simulator converge to the closed-form
// expressions (E[W] of eq. 13, E[X] of eq. 15, Q of eq. 26, B of eq. 32),
// providing a derivation-level validation that is independent of the
// packet-level simulator in package reno.
package roundsim

import (
	"fmt"
	"math"

	"pftk/internal/sim"
)

// Config parameterizes the model process.
type Config struct {
	// P is the per-packet loss probability conditioned as in the paper.
	P float64
	// RTT is the round duration in seconds.
	RTT float64
	// T0 is the first timeout duration in seconds.
	T0 float64
	// Wm caps the window (packets); 0 disables the cap.
	Wm float64
	// B is the ACK ratio; defaults to 2.
	B int
	// Seed seeds the deterministic RNG.
	Seed uint64
	// TDOnly restricts the process to the Section II-A regime: every
	// loss indication halves the window (no timeout sequences). Use it
	// to validate the quantities derived under that assumption —
	// E[W] (13), E[X] (15), E[Y] (5) and B (19).
	TDOnly bool
}

func (c Config) normalize() Config {
	if c.B < 1 {
		c.B = 2
	}
	return c
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if !(c.P > 0 && c.P < 1) {
		return fmt.Errorf("roundsim: P must be in (0,1), got %v", c.P)
	}
	if c.RTT <= 0 || c.T0 <= 0 {
		return fmt.Errorf("roundsim: RTT and T0 must be positive (%v, %v)", c.RTT, c.T0)
	}
	return nil
}

// Stats accumulates per-TDP observations over a run.
type Stats struct {
	// TDPs is the number of completed triple-duplicate periods.
	TDPs int
	// TDEvents and TOEvents split loss indications by kind.
	TDEvents, TOEvents int
	// SumW, SumX, SumY sum the end-of-period window, round count and
	// packets per TDP.
	SumW, SumX, SumY float64
	// Timeouts counts individual timeout fires; TimeoutSequences counts
	// backoff sequences (equal to TOEvents).
	Timeouts int
	// PacketsSent counts every transmission, including timeout
	// retransmissions.
	PacketsSent float64
	// Elapsed is the simulated time in seconds.
	Elapsed float64
}

// MeanW returns the empirical E[W].
func (s Stats) MeanW() float64 { return s.SumW / float64(s.TDPs) }

// MeanX returns the empirical E[X].
func (s Stats) MeanX() float64 { return s.SumX / float64(s.TDPs) }

// MeanY returns the empirical E[Y].
func (s Stats) MeanY() float64 { return s.SumY / float64(s.TDPs) }

// Q returns the empirical probability that a loss indication is a timeout.
func (s Stats) Q() float64 {
	n := s.TDEvents + s.TOEvents
	if n == 0 {
		return 0
	}
	return float64(s.TOEvents) / float64(n)
}

// SendRate returns the empirical long-run send rate in packets per second.
func (s Stats) SendRate() float64 {
	if s.Elapsed == 0 {
		return 0
	}
	return s.PacketsSent / s.Elapsed
}

// Sim runs the round-level stochastic process.
type Sim struct {
	cfg Config
	rng *sim.RNG
	// w is the congestion window at the start of the current round.
	w float64
	// stats accumulates observations.
	stats Stats
}

// New creates a simulator; the initial window is 1 (as after a timeout).
func New(cfg Config) (*Sim, error) {
	cfg = cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg, rng: sim.NewRNG(cfg.Seed), w: 1}, nil
}

// Stats returns a copy of the accumulated statistics.
func (s *Sim) Stats() Stats { return s.stats }

// capWindow applies the receiver-window cap.
func (s *Sim) capWindow(w float64) float64 {
	if s.cfg.Wm > 0 && w > s.cfg.Wm {
		return s.cfg.Wm
	}
	if w < 1 {
		return 1
	}
	return w
}

// firstLoss samples the position of the first loss in a round of n
// packets: it returns n if the round is loss-free, otherwise the number of
// packets acknowledged before the loss (0..n-1).
func (s *Sim) firstLoss(n int) int {
	for i := 0; i < n; i++ {
		if s.rng.Bool(s.cfg.P) {
			return i
		}
	}
	return n
}

// RunTDPs advances the process through n triple-duplicate periods
// (each terminated by a TD or TO indication, with any following timeout
// sequence charged to the same period).
func (s *Sim) RunTDPs(n int) Stats {
	for i := 0; i < n; i++ {
		s.runOneTDP()
	}
	return s.stats
}

// runOneTDP plays out one period: rounds of growth until a loss
// indication, the Fig. 4 last-round lottery, and a possible timeout
// sequence.
func (s *Sim) runOneTDP() {
	cfg := s.cfg
	rounds := 0
	packets := 0.0
	w := s.capWindow(s.w)
	for {
		n := int(math.Round(w))
		if n < 1 {
			n = 1
		}
		k := s.firstLoss(n)
		if k == n {
			// Loss-free round: the whole window is sent and
			// acknowledged, the window grows by 1/b.
			rounds++
			packets += float64(n)
			w = s.capWindow(w + 1/float64(cfg.B))
			continue
		}
		// Penultimate round: k packets acked, the rest lost.
		rounds++
		packets += float64(n) // every packet of the round was transmitted
		// Last round: the k ACKed packets trigger k new sends, of
		// which m are received in sequence (C(k, m) of Section II-B).
		m := s.firstLoss(k)
		rounds++
		packets += float64(k)
		// Record the period. Eq. (7) defines the end-of-period window
		// as W_i = W_{i-1}/2 + X_i/b — one increment beyond the
		// window of the round in which the loss occurred, so add the
		// final 1/b the paper's bookkeeping includes.
		endW := s.capWindow(w + 1/float64(cfg.B))
		s.stats.TDPs++
		s.stats.SumW += endW
		s.stats.SumX += float64(rounds)
		s.stats.SumY += packets
		s.stats.Elapsed += float64(rounds) * cfg.RTT
		s.stats.PacketsSent += packets
		if m >= 3 || s.cfg.TDOnly {
			// Enough duplicate ACKs: a TD indication; the next
			// period starts at half the end-of-period window.
			s.stats.TDEvents++
			s.w = s.capWindow(endW / 2)
		} else {
			// A timeout sequence: R is geometric (each
			// retransmission is lost with probability P); the k-th
			// timeout in the sequence waits 2^(k-1)·T0 capped at
			// 64·T0, and sends one packet.
			s.stats.TOEvents++
			r := s.rng.Geometric(1 - cfg.P)
			s.stats.Timeouts += r
			for k := 1; k <= r; k++ {
				factor := math.Pow(2, float64(k-1))
				if factor > 64 {
					factor = 64
				}
				s.stats.Elapsed += factor * cfg.T0
			}
			s.stats.PacketsSent += float64(r)
			s.w = 1
		}
		return
	}
}
