package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// maxDocumentBytes bounds a scenario document; a legitimate scenario is a
// few kilobytes, and the parser is fed attacker-controlled bytes when it
// arrives inside a service request.
const maxDocumentBytes = 1 << 20

// Parse decodes and validates one JSON scenario document. Unknown fields
// and trailing garbage are rejected: a typo'd knob silently ignored would
// run a different experiment than the one written down.
func Parse(data []byte) (*Scenario, error) {
	if len(data) > maxDocumentBytes {
		return nil, fmt.Errorf("scenario: document of %d bytes exceeds limit %d", len(data), maxDocumentBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, errors.New("scenario: trailing data after JSON document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseFile reads and parses the scenario document at path.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Encode renders the scenario as indented JSON, the inverse of Parse up
// to formatting: Parse(Encode(s)) reproduces s exactly (the golden
// round-trip pinned by the package tests).
func (s *Scenario) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode: %w", err)
	}
	return append(data, '\n'), nil
}
