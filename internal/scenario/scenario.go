// Package scenario is the declarative, deterministic scenario engine for
// time-varying path conditions and injected faults: the missing half of
// the paper's validation story. The 1997-98 Internet paths behind
// Table I were anything but stationary — loss rate and RTT drifted over
// every 1-hour trace — while the emulator in internal/netem holds path
// parameters fixed. A Scenario schedules *changes*: phases that rewrite
// the steady-state path (loss process, RTT, bottleneck rate, queue
// limit) at simulated times, and transient faults (outage windows, loss
// bursts, delay spikes, reordering and duplication windows, optionally
// periodic) layered on top, in the declarative style of pumba- and
// netem-like network chaos tools.
//
// Scenarios are specified programmatically or as a small JSON document
// (see Parse). Execution is handled by Bind, which schedules every
// transition on the simulation engine's event queue: a scenario run is a
// pure function of (scenario, seed), byte-reproducible across runs and
// across any worker count, because transitions fire at exact event-time
// boundaries and every random stream is forked from a deterministic
// label.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Named validation errors, matchable with errors.Is. A scenario with a
// declared Duration must fit its whole program inside it: a fault train
// or phase scheduled past the end would otherwise be silently truncated
// at run time, and the experiment that ran would not be the experiment
// that was written down.
var (
	// ErrFaultPastEnd reports a fault occurrence that ends after the
	// scenario's declared duration.
	ErrFaultPastEnd = errors.New("fault train schedules past scenario duration")
	// ErrPhasePastEnd reports a phase that begins at or after the
	// scenario's declared duration.
	ErrPhasePastEnd = errors.New("phase begins at or after scenario duration")
)

// Fault kinds.
const (
	// KindOutage drops every packet offered during the window — the
	// "pull the cable" fault. Windows of an RTT or more escalate loss
	// indications into retransmission timeouts (Table II's timeout-
	// dominated mixes).
	KindOutage = "outage"
	// KindLossBurst layers an extra independent loss probability
	// (LossRate) on top of the phase's base loss process.
	KindLossBurst = "loss_burst"
	// KindDelaySpike adds ExtraDelay seconds to the data direction's
	// one-way delay — a route change or a sudden standing queue.
	KindDelaySpike = "delay_spike"
	// KindReorder suspends FIFO delivery and adds up to Jitter seconds
	// of uniform per-packet delay, producing out-of-order arrivals.
	KindReorder = "reorder"
	// KindDuplicate duplicates each data packet with probability Prob.
	KindDuplicate = "duplicate"
)

// validKinds is the closed set of fault kinds.
var validKinds = map[string]bool{
	KindOutage:     true,
	KindLossBurst:  true,
	KindDelaySpike: true,
	KindReorder:    true,
	KindDuplicate:  true,
}

// Loss model names accepted in a LossSpec.
const (
	// LossBernoulli drops packets i.i.d. (netem.Bernoulli); the default.
	LossBernoulli = "bernoulli"
	// LossGE is the two-state bursty Gilbert-Elliott process fitted to
	// (rate, mean burst length).
	LossGE = "ge"
	// LossOutage is the timed-outage process (netem.TimedBurst): each
	// packet starts a BurstDur-second outage with probability Rate.
	LossOutage = "timedburst"
)

// LossSpec describes a steady-state loss process declaratively, so a
// phase can swap not just the rate but the whole process family.
type LossSpec struct {
	// Rate is the headline loss parameter: the drop probability
	// (bernoulli), aggregate loss rate (ge), or outage-start probability
	// (timedburst). 0 disables loss.
	Rate float64 `json:"rate"`
	// Model selects the process family; empty means bernoulli.
	Model string `json:"model,omitempty"`
	// BurstLen is the ge model's mean loss-burst length in packets
	// (minimum 1).
	BurstLen float64 `json:"burst_len,omitempty"`
	// BurstDur is the timedburst model's outage duration in seconds.
	BurstDur float64 `json:"burst_dur,omitempty"`
}

// validate reports the first problem with the spec.
func (ls LossSpec) validate() error {
	switch {
	case ls.Rate < 0 || ls.Rate > 1 || math.IsNaN(ls.Rate):
		return fmt.Errorf("loss rate must be in [0, 1], got %v", ls.Rate)
	case ls.BurstLen < 0:
		return fmt.Errorf("loss burst_len must be non-negative packets, got %v", ls.BurstLen)
	case ls.BurstDur < 0:
		return fmt.Errorf("loss burst_dur must be non-negative seconds, got %v", ls.BurstDur)
	}
	switch ls.Model {
	case "", LossBernoulli, LossGE, LossOutage:
		return nil
	default:
		return fmt.Errorf("unknown loss model %q (valid: %s, %s, %s)",
			ls.Model, LossBernoulli, LossGE, LossOutage)
	}
}

// Phase is one scheduled rewrite of the steady-state path parameters.
// Only the non-nil fields change; everything else carries over from the
// previous phase (or the base path for the first phase). Pointer fields
// distinguish "set to zero" from "leave alone" — `"rate": 0` explicitly
// makes the bottleneck infinitely fast, while omitting it keeps the
// current rate.
type Phase struct {
	// At is the simulated time (seconds) the phase begins.
	At float64 `json:"at"`
	// Loss, when set, replaces the base loss process.
	Loss *LossSpec `json:"loss,omitempty"`
	// RTT, when set, changes the two-way propagation delay (split
	// evenly across the two directions).
	RTT *float64 `json:"rtt,omitempty"`
	// Rate, when set, changes the bottleneck transmission rate in
	// packets per second (0 = infinitely fast).
	Rate *float64 `json:"rate,omitempty"`
	// QueueCap, when set, changes the drop-tail queue capacity.
	QueueCap *int `json:"queue_cap,omitempty"`
}

// validate reports the first problem with phase i.
func (ph Phase) validate(i int) error {
	if ph.At < 0 || math.IsNaN(ph.At) {
		return fmt.Errorf("phase %d: at must be non-negative seconds, got %v", i, ph.At)
	}
	if ph.Loss == nil && ph.RTT == nil && ph.Rate == nil && ph.QueueCap == nil {
		return fmt.Errorf("phase %d: changes nothing (set loss, rtt, rate or queue_cap)", i)
	}
	if ph.Loss != nil {
		if err := ph.Loss.validate(); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
	}
	if ph.RTT != nil && !(*ph.RTT > 0) {
		return fmt.Errorf("phase %d: rtt must be positive seconds, got %v", i, *ph.RTT)
	}
	if ph.Rate != nil && (*ph.Rate < 0 || math.IsNaN(*ph.Rate)) {
		return fmt.Errorf("phase %d: rate must be non-negative pkts/s, got %v", i, *ph.Rate)
	}
	if ph.QueueCap != nil && *ph.QueueCap < 0 {
		return fmt.Errorf("phase %d: queue_cap must be non-negative packets, got %d", i, *ph.QueueCap)
	}
	return nil
}

// Fault is one transient perturbation window, optionally repeating.
type Fault struct {
	// Kind selects the fault (outage, loss_burst, delay_spike, reorder,
	// duplicate).
	Kind string `json:"kind"`
	// Start is the simulated time (seconds) of the first occurrence.
	Start float64 `json:"start"`
	// Dur is each occurrence's length in seconds.
	Dur float64 `json:"dur"`
	// LossRate is the extra drop probability of a loss_burst window.
	LossRate float64 `json:"loss_rate,omitempty"`
	// ExtraDelay is the added one-way delay of a delay_spike, seconds.
	ExtraDelay float64 `json:"extra_delay,omitempty"`
	// Jitter is the reorder window's uniform extra delay bound, seconds.
	Jitter float64 `json:"jitter,omitempty"`
	// Prob is the duplicate window's per-packet duplication probability.
	Prob float64 `json:"prob,omitempty"`
	// Period, when positive, repeats the fault every Period seconds
	// (measured start-to-start). Zero means a one-shot fault.
	Period float64 `json:"period,omitempty"`
	// Count bounds the number of occurrences of a periodic fault;
	// 0 means "until the end of the run".
	Count int `json:"count,omitempty"`
}

// validate reports the first problem with fault i.
func (f Fault) validate(i int) error {
	if !validKinds[f.Kind] {
		return fmt.Errorf("fault %d: unknown kind %q (valid: %s, %s, %s, %s, %s)",
			i, f.Kind, KindOutage, KindLossBurst, KindDelaySpike, KindReorder, KindDuplicate)
	}
	switch {
	case f.Start < 0 || math.IsNaN(f.Start):
		return fmt.Errorf("fault %d: start must be non-negative seconds, got %v", i, f.Start)
	case !(f.Dur > 0):
		return fmt.Errorf("fault %d: dur must be positive seconds, got %v", i, f.Dur)
	case f.Period < 0 || math.IsNaN(f.Period):
		return fmt.Errorf("fault %d: period must be non-negative seconds, got %v", i, f.Period)
	case f.Period > 0 && f.Period < f.Dur:
		return fmt.Errorf("fault %d: period %v shorter than dur %v (occurrences would overlap)", i, f.Period, f.Dur)
	case f.Count < 0:
		return fmt.Errorf("fault %d: count must be non-negative, got %d", i, f.Count)
	case f.Count > 0 && f.Period == 0:
		return fmt.Errorf("fault %d: count %d needs a positive period", i, f.Count)
	}
	switch f.Kind {
	case KindLossBurst:
		if f.LossRate <= 0 || f.LossRate > 1 || math.IsNaN(f.LossRate) {
			return fmt.Errorf("fault %d: loss_burst needs loss_rate in (0, 1], got %v", i, f.LossRate)
		}
	case KindDelaySpike:
		if !(f.ExtraDelay > 0) {
			return fmt.Errorf("fault %d: delay_spike needs positive extra_delay, got %v", i, f.ExtraDelay)
		}
	case KindReorder:
		if !(f.Jitter > 0) {
			return fmt.Errorf("fault %d: reorder needs positive jitter, got %v", i, f.Jitter)
		}
	case KindDuplicate:
		if f.Prob <= 0 || f.Prob > 1 || math.IsNaN(f.Prob) {
			return fmt.Errorf("fault %d: duplicate needs prob in (0, 1], got %v", i, f.Prob)
		}
	}
	return nil
}

// Limits on scenario size: scenarios ride inside service requests, so an
// adversarial document must not be able to schedule unbounded work.
const (
	// MaxPhases bounds len(Scenario.Phases).
	MaxPhases = 1000
	// MaxFaults bounds len(Scenario.Faults).
	MaxFaults = 1000
	// MaxOccurrences bounds the expanded occurrences of one periodic
	// fault over a run.
	MaxOccurrences = 10000
)

// Scenario is a declarative schedule of path changes and faults. The
// zero value (no phases, no faults) is valid and changes nothing.
type Scenario struct {
	// Name labels the scenario in reports and metrics.
	Name string `json:"name,omitempty"`
	// Duration, when positive, declares the scenario's intended run
	// length in simulated seconds. Validate then rejects any phase or
	// fault occurrence scheduled past it (ErrPhasePastEnd,
	// ErrFaultPastEnd) instead of letting the run silently truncate the
	// program. Zero (the default, and the only value older documents can
	// carry) declares nothing and checks nothing.
	Duration float64 `json:"duration,omitempty"`
	// Phases are steady-state rewrites, sorted by strictly increasing
	// At.
	Phases []Phase `json:"phases,omitempty"`
	// Faults are transient windows; order is free.
	Faults []Fault `json:"faults,omitempty"`
}

// Validate reports the first problem with the scenario, or nil.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	if len(s.Phases) > MaxPhases {
		return fmt.Errorf("scenario: %d phases exceeds limit %d", len(s.Phases), MaxPhases)
	}
	if len(s.Faults) > MaxFaults {
		return fmt.Errorf("scenario: %d faults exceeds limit %d", len(s.Faults), MaxFaults)
	}
	if s.Duration < 0 || math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) {
		return fmt.Errorf("scenario: duration must be non-negative and finite seconds, got %v", s.Duration)
	}
	for i, ph := range s.Phases {
		if err := ph.validate(i); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if i > 0 && !(ph.At > s.Phases[i-1].At) {
			return fmt.Errorf("scenario: phase %d at %v does not follow phase %d at %v (phases must be strictly increasing)",
				i, ph.At, i-1, s.Phases[i-1].At)
		}
		if s.Duration > 0 && ph.At >= s.Duration {
			return fmt.Errorf("scenario: phase %d at %v, duration %v: %w", i, ph.At, s.Duration, ErrPhasePastEnd)
		}
	}
	for i, f := range s.Faults {
		if err := f.validate(i); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if err := f.validateWithin(i, s.Duration); err != nil {
			return err
		}
	}
	return nil
}

// validateWithin checks fault i against the scenario's declared duration
// (no-op when duration is 0/undeclared). The first occurrence must fit
// entirely — a fault that cannot complete even once is a program error,
// not a boundary effect — and a bounded train's last occurrence must fit
// too. Unbounded periodic trains (Count 0) are horizon-clipped by
// design, so only their first occurrence is checked.
func (f Fault) validateWithin(i int, duration float64) error {
	if duration <= 0 {
		return nil
	}
	if f.Start+f.Dur > duration {
		return fmt.Errorf("scenario: fault %d (%s): first occurrence [%v, %v] ends after duration %v: %w",
			i, f.Kind, f.Start, f.Start+f.Dur, duration, ErrFaultPastEnd)
	}
	if f.Period > 0 && f.Count > 0 {
		last := f.Start + float64(f.Count-1)*f.Period
		if last+f.Dur > duration {
			return fmt.Errorf("scenario: fault %d (%s): occurrence %d of %d [%v, %v] ends after duration %v: %w",
				i, f.Kind, f.Count, f.Count, last, last+f.Dur, duration, ErrFaultPastEnd)
		}
	}
	return nil
}

// Hash returns a canonical content hash of the scenario: equal scenarios
// (field for field) hash identically however they were spelled in JSON.
// Service caches join it into their request keys so a scenario-bearing
// simulation never collides with its fixed-path twin.
func (s *Scenario) Hash() string {
	if s == nil {
		return ""
	}
	data, err := json.Marshal(s)
	if err != nil {
		// Scenario is a plain struct of numbers and strings; failure to
		// encode is a programming error.
		panic(fmt.Sprintf("scenario: hash: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
