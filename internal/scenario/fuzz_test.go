package scenario

import "testing"

// FuzzParseScenario hammers the JSON parser with arbitrary bytes. Parse
// must never panic, and any document it accepts must survive the
// Encode → Parse round-trip with an identical content hash — the
// property the golden test pins for one document, checked here for all.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(goldenJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"phases": [{"at": 0, "rtt": 0.2}]}`))
	f.Add([]byte(`{"faults": [{"kind": "outage", "start": 1, "dur": 2, "period": 4, "count": 2}]}`))
	f.Add([]byte(`{"phases": [{"at": 1, "loss": {"rate": 0.5, "model": "ge", "burst_len": 3}}]}`))
	f.Add([]byte(`{"name": "x", "unknown": 1}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a scenario its own Validate rejects: %v", err)
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("Encode of parsed scenario failed: %v", err)
		}
		again, err := Parse(enc)
		if err != nil {
			t.Fatalf("round-trip Parse failed: %v\ndoc: %s", err, enc)
		}
		if again.Hash() != s.Hash() {
			t.Fatalf("round-trip changed the scenario:\nbefore %s\nafter  %s", s.Hash(), again.Hash())
		}
	})
}
