package scenario

import (
	"errors"
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }
func iptr(v int) *int        { return &v }

func TestValidateAcceptsWellFormedScenario(t *testing.T) {
	s := &Scenario{
		Name: "step-loss",
		Phases: []Phase{
			{At: 0, Loss: &LossSpec{Rate: 0.01}},
			{At: 30, Loss: &LossSpec{Rate: 0.1, Model: LossGE, BurstLen: 3}, RTT: f64(0.3)},
			{At: 60, Rate: f64(0), QueueCap: iptr(16)},
		},
		Faults: []Fault{
			{Kind: KindOutage, Start: 10, Dur: 2},
			{Kind: KindLossBurst, Start: 5, Dur: 1, LossRate: 0.5, Period: 20, Count: 3},
			{Kind: KindDelaySpike, Start: 40, Dur: 5, ExtraDelay: 0.2},
			{Kind: KindReorder, Start: 50, Dur: 5, Jitter: 0.05},
			{Kind: KindDuplicate, Start: 55, Dur: 5, Prob: 0.1},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateNilAndZeroScenarios(t *testing.T) {
	var nilSc *Scenario
	if err := nilSc.Validate(); err != nil {
		t.Errorf("nil scenario: %v", err)
	}
	if err := (&Scenario{}).Validate(); err != nil {
		t.Errorf("zero scenario: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"negative phase time", Scenario{Phases: []Phase{{At: -1, RTT: f64(0.1)}}}, "non-negative"},
		{"empty phase", Scenario{Phases: []Phase{{At: 0}}}, "changes nothing"},
		{"non-increasing phases", Scenario{Phases: []Phase{
			{At: 5, RTT: f64(0.1)}, {At: 5, RTT: f64(0.2)},
		}}, "strictly increasing"},
		{"loss rate out of range", Scenario{Phases: []Phase{{At: 0, Loss: &LossSpec{Rate: 1.5}}}}, "loss rate"},
		{"unknown loss model", Scenario{Phases: []Phase{{At: 0, Loss: &LossSpec{Rate: 0.1, Model: "weibull"}}}}, "unknown loss model"},
		{"zero rtt", Scenario{Phases: []Phase{{At: 0, RTT: f64(0)}}}, "rtt must be positive"},
		{"negative rate", Scenario{Phases: []Phase{{At: 0, Rate: f64(-1)}}}, "rate must be non-negative"},
		{"negative queue", Scenario{Phases: []Phase{{At: 0, QueueCap: iptr(-1)}}}, "queue_cap"},
		{"unknown fault kind", Scenario{Faults: []Fault{{Kind: "fire", Start: 0, Dur: 1}}}, "unknown kind"},
		{"zero duration fault", Scenario{Faults: []Fault{{Kind: KindOutage, Start: 0, Dur: 0}}}, "dur must be positive"},
		{"overlapping period", Scenario{Faults: []Fault{{Kind: KindOutage, Start: 0, Dur: 5, Period: 2}}}, "shorter than dur"},
		{"count without period", Scenario{Faults: []Fault{{Kind: KindOutage, Start: 0, Dur: 1, Count: 2}}}, "needs a positive period"},
		{"loss burst without rate", Scenario{Faults: []Fault{{Kind: KindLossBurst, Start: 0, Dur: 1}}}, "loss_rate"},
		{"delay spike without delay", Scenario{Faults: []Fault{{Kind: KindDelaySpike, Start: 0, Dur: 1}}}, "extra_delay"},
		{"reorder without jitter", Scenario{Faults: []Fault{{Kind: KindReorder, Start: 0, Dur: 1}}}, "jitter"},
		{"duplicate bad prob", Scenario{Faults: []Fault{{Kind: KindDuplicate, Start: 0, Dur: 1, Prob: 2}}}, "prob"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestValidateDuration pins the declared-duration contract: with
// Duration set, any phase or fault occurrence past the end is rejected
// with a named, errors.Is-matchable error instead of being silently
// truncated at run time; with Duration unset nothing changes.
func TestValidateDuration(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want error // nil = must validate
	}{
		{"no duration declared checks nothing", Scenario{
			Faults: []Fault{{Kind: KindOutage, Start: 1e6, Dur: 5}},
		}, nil},
		{"negative duration", Scenario{Duration: -1}, errBadDuration},
		{"program that fits", Scenario{
			Duration: 100,
			Phases:   []Phase{{At: 50, RTT: f64(0.2)}},
			Faults: []Fault{
				{Kind: KindOutage, Start: 90, Dur: 10},
				{Kind: KindLossBurst, Start: 5, Dur: 1, LossRate: 0.5, Period: 30, Count: 4},
			},
		}, nil},
		{"phase at the end", Scenario{
			Duration: 100,
			Phases:   []Phase{{At: 100, RTT: f64(0.2)}},
		}, ErrPhasePastEnd},
		{"one-shot fault straddling the end", Scenario{
			Duration: 100,
			Faults:   []Fault{{Kind: KindOutage, Start: 99, Dur: 2}},
		}, ErrFaultPastEnd},
		{"one-shot fault entirely past the end", Scenario{
			Duration: 100,
			Faults:   []Fault{{Kind: KindDelaySpike, Start: 200, Dur: 1, ExtraDelay: 0.1}},
		}, ErrFaultPastEnd},
		{"bounded train overrunning the end", Scenario{
			Duration: 100,
			Faults:   []Fault{{Kind: KindLossBurst, Start: 5, Dur: 1, LossRate: 0.5, Period: 40, Count: 4}},
		}, ErrFaultPastEnd},
		{"unbounded train is horizon-clipped by design", Scenario{
			Duration: 100,
			Faults:   []Fault{{Kind: KindOutage, Start: 10, Dur: 2, Period: 30}},
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if tc.want == errBadDuration {
				if err == nil || !strings.Contains(err.Error(), "duration must be") {
					t.Fatalf("Validate() = %v, want duration range error", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

// errBadDuration marks the table entries whose rejection carries no
// sentinel (plain range validation).
var errBadDuration = errors.New("bad duration marker")

// TestDurationRoundTripsAndHashes pins that the new field survives the
// codec and that declaring it changes the canonical hash (it is part of
// the program, so caches must not collide a bounded scenario with its
// unbounded twin).
func TestDurationRoundTrips(t *testing.T) {
	s := &Scenario{Name: "d", Duration: 60, Phases: []Phase{{At: 10, RTT: f64(0.2)}}}
	enc, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode() = %v", err)
	}
	back, err := Parse(enc)
	if err != nil {
		t.Fatalf("Parse(Encode()) = %v", err)
	}
	//pftklint:ignore floatcmp codec round-trip must be bit-exact
	if back.Duration != 60 {
		t.Fatalf("Duration round-tripped to %v, want 60", back.Duration)
	}
	unbounded := &Scenario{Name: "d", Phases: []Phase{{At: 10, RTT: f64(0.2)}}}
	if s.Hash() == unbounded.Hash() {
		t.Error("declared duration does not change the canonical hash")
	}
}

// goldenJSON is the canonical encoding of goldenScenario; the round-trip
// Parse(goldenJSON) == goldenScenario and Encode(goldenScenario) ==
// goldenJSON pins the wire format.
const goldenJSON = `{
  "name": "golden",
  "phases": [
    {
      "at": 0,
      "loss": {
        "rate": 0.02
      }
    },
    {
      "at": 30,
      "loss": {
        "rate": 0.1,
        "model": "ge",
        "burst_len": 2.5
      },
      "rtt": 0.35,
      "rate": 250,
      "queue_cap": 20
    }
  ],
  "faults": [
    {
      "kind": "outage",
      "start": 10,
      "dur": 1.5
    },
    {
      "kind": "loss_burst",
      "start": 5,
      "dur": 2,
      "loss_rate": 0.25,
      "period": 15,
      "count": 3
    }
  ]
}
`

func goldenScenario() *Scenario {
	return &Scenario{
		Name: "golden",
		Phases: []Phase{
			{At: 0, Loss: &LossSpec{Rate: 0.02}},
			{At: 30, Loss: &LossSpec{Rate: 0.1, Model: LossGE, BurstLen: 2.5},
				RTT: f64(0.35), Rate: f64(250), QueueCap: iptr(20)},
		},
		Faults: []Fault{
			{Kind: KindOutage, Start: 10, Dur: 1.5},
			{Kind: KindLossBurst, Start: 5, Dur: 2, LossRate: 0.25, Period: 15, Count: 3},
		},
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	parsed, err := Parse([]byte(goldenJSON))
	if err != nil {
		t.Fatalf("Parse(golden) = %v", err)
	}
	want := goldenScenario()
	if parsed.Hash() != want.Hash() {
		t.Fatalf("parsed golden differs from expected scenario:\n%+v\nvs\n%+v", parsed, want)
	}
	enc, err := want.Encode()
	if err != nil {
		t.Fatalf("Encode() = %v", err)
	}
	if string(enc) != goldenJSON {
		t.Fatalf("Encode() drifted from golden:\n%s", enc)
	}
	// And Encode∘Parse is the identity on the parsed form.
	again, err := Parse(enc)
	if err != nil {
		t.Fatalf("Parse(Encode()) = %v", err)
	}
	if again.Hash() != want.Hash() {
		t.Fatal("Parse(Encode()) changed the scenario")
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown field", `{"name": "x", "phasez": []}`},
		{"trailing garbage", `{"name": "x"} {"again": true}`},
		{"invalid content", `{"phases": [{"at": -3, "rtt": 0.1}]}`},
		{"not json", `hello`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.doc)); err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.doc)
			}
		})
	}
}

func TestParseRejectsOversizeDocument(t *testing.T) {
	doc := `{"name": "` + strings.Repeat("x", maxDocumentBytes) + `"}`
	if _, err := Parse([]byte(doc)); err == nil {
		t.Fatal("Parse accepted an oversized document")
	}
}

func TestHash(t *testing.T) {
	if (*Scenario)(nil).Hash() != "" {
		t.Error("nil scenario should hash to empty string")
	}
	a := goldenScenario()
	b := goldenScenario()
	if a.Hash() != b.Hash() {
		t.Error("equal scenarios hash differently")
	}
	b.Phases[0].Loss.Rate = 0.03
	if a.Hash() == b.Hash() {
		t.Error("different scenarios hash identically")
	}
	if len(a.Hash()) != 64 {
		t.Errorf("Hash() = %q, want 64 hex chars", a.Hash())
	}
}
