package scenario

import (
	"fmt"
	"testing"

	"pftk/internal/netem"
	"pftk/internal/obs"
	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// pump schedules one data packet per second on the path's forward link
// for the whole horizon, recording arrival times.
func pump(eng *sim.Engine, p *netem.Path, horizon float64, arrivals *[]float64) {
	for t := 0.5; t < horizon; t++ {
		at := t
		eng.Schedule(at, func() {
			p.Forward.Send(pkt.Packet{Seq: uint64(at)}, func(pkt.Packet) { *arrivals = append(*arrivals, eng.Now()) })
		})
	}
}

func TestPhaseSwitchesLossAtBoundary(t *testing.T) {
	var eng sim.Engine
	p := netem.NewPath(&eng, netem.SymmetricPath(0.05, nil))
	sc := &Scenario{Phases: []Phase{{At: 5, Loss: &LossSpec{Rate: 1}}}}
	var arrivals []float64
	r := Bind(&eng, p, Config{Scenario: sc, RNG: sim.NewRNG(1), Base: Base{RTT: 0.1}, Horizon: 10})
	pump(&eng, p, 10, &arrivals)
	eng.Run()
	stats := r.Finish()

	// Packets at 0.5..4.5 arrive; 5.5..9.5 all die in the p=1 phase.
	if len(arrivals) != 5 {
		t.Fatalf("delivered %d packets, want 5 (phase must drop the rest)", len(arrivals))
	}
	if r.Transitions() != 1 {
		t.Fatalf("Transitions() = %d, want 1", r.Transitions())
	}
	if len(stats) != 2 {
		t.Fatalf("PhaseStats = %v, want base + 1 phase", stats)
	}
	base, ph := stats[0], stats[1]
	if base.Phase != -1 || base.Offered != 5 || base.Dropped != 0 {
		t.Errorf("base segment = %v, want 5 offered 0 dropped", base)
	}
	if ph.Phase != 0 || ph.Offered != 5 || ph.Dropped != 5 {
		t.Errorf("phase segment = %v, want 5 offered 5 dropped", ph)
	}
	if base.Start != 0 || base.End != 5 || ph.Start != 5 {
		t.Errorf("segment bounds base=[%g,%g) phase=[%g,...), want [0,5) [5,...)", base.Start, base.End, ph.Start)
	}
}

func TestPhaseChangesRTTMidRun(t *testing.T) {
	var eng sim.Engine
	p := netem.NewPath(&eng, netem.SymmetricPath(0.05, nil))
	sc := &Scenario{Phases: []Phase{{At: 5, RTT: f64(0.5)}}}
	Bind(&eng, p, Config{Scenario: sc, RNG: sim.NewRNG(1), Base: Base{RTT: 0.1}, Horizon: 10})

	var arrivals []float64
	deliver := func(pkt.Packet) { arrivals = append(arrivals, eng.Now()) }
	eng.Schedule(1, func() { p.Forward.Send(pkt.Packet{Seq: 1}, deliver) })
	eng.Schedule(6, func() { p.Forward.Send(pkt.Packet{Seq: 2}, deliver) })
	eng.Run()

	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 1.05 {
		t.Errorf("pre-phase arrival at %g, want 1.05 (one-way 0.05)", arrivals[0])
	}
	if arrivals[1] != 6.25 {
		t.Errorf("post-phase arrival at %g, want 6.25 (one-way 0.25)", arrivals[1])
	}
}

func TestOutageFaultWindow(t *testing.T) {
	var eng sim.Engine
	p := netem.NewPath(&eng, netem.SymmetricPath(0.05, nil))
	sc := &Scenario{Faults: []Fault{{Kind: KindOutage, Start: 2, Dur: 2}}}
	reg := obs.New()
	r := Bind(&eng, p, Config{Scenario: sc, RNG: sim.NewRNG(1), Base: Base{RTT: 0.1}, Horizon: 6, Registry: reg})

	var got []int
	deliver := func(pl pkt.Packet) { got = append(got, int(pl.Seq)) }
	eng.Schedule(1, func() { p.Forward.Send(pkt.Packet{Seq: 1}, deliver) })
	eng.Schedule(3, func() {
		if r.ActiveFaults() != 1 {
			t.Errorf("ActiveFaults() = %d inside window, want 1", r.ActiveFaults())
		}
		p.Forward.Send(pkt.Packet{Seq: 2}, deliver)
	})
	eng.Schedule(5, func() { p.Forward.Send(pkt.Packet{Seq: 3}, deliver) })
	eng.Run()

	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("delivered %v, want [1 3] (packet 2 inside the outage)", got)
	}
	if r.ActiveFaults() != 0 {
		t.Errorf("ActiveFaults() = %d after window, want 0", r.ActiveFaults())
	}
	if r.FaultsStarted() != 1 {
		t.Errorf("FaultsStarted() = %d, want 1", r.FaultsStarted())
	}
	snap := reg.Snapshot()
	if c := snap.Counters["scenario.faults.started"]; c != 1 {
		t.Errorf("scenario.faults.started = %d, want 1", c)
	}
	if c := snap.Counters["scenario.faults.ended"]; c != 1 {
		t.Errorf("scenario.faults.ended = %d, want 1", c)
	}
}

func TestPeriodicFaultOccurrences(t *testing.T) {
	var eng sim.Engine
	p := netem.NewPath(&eng, netem.SymmetricPath(0.01, nil))

	// Bounded by count.
	sc := &Scenario{Faults: []Fault{{Kind: KindOutage, Start: 1, Dur: 0.5, Period: 2, Count: 3}}}
	r := Bind(&eng, p, Config{Scenario: sc, RNG: sim.NewRNG(1), Base: Base{RTT: 0.02}, Horizon: 100})
	eng.Run()
	if r.FaultsStarted() != 3 {
		t.Errorf("count=3: FaultsStarted() = %d, want 3", r.FaultsStarted())
	}

	// Unbounded: expands to the horizon.
	var eng2 sim.Engine
	p2 := netem.NewPath(&eng2, netem.SymmetricPath(0.01, nil))
	sc2 := &Scenario{Faults: []Fault{{Kind: KindOutage, Start: 0, Dur: 1, Period: 5}}}
	r2 := Bind(&eng2, p2, Config{Scenario: sc2, RNG: sim.NewRNG(1), Base: Base{RTT: 0.02}, Horizon: 20})
	eng2.Run()
	if r2.FaultsStarted() != 4 {
		t.Errorf("horizon=20 period=5: FaultsStarted() = %d, want 4 (t=0,5,10,15)", r2.FaultsStarted())
	}
}

func TestOverlappingFaultsCompose(t *testing.T) {
	var eng sim.Engine
	p := netem.NewPath(&eng, netem.SymmetricPath(0.05, nil))
	sc := &Scenario{Faults: []Fault{
		{Kind: KindDelaySpike, Start: 1, Dur: 4, ExtraDelay: 0.1},
		{Kind: KindDelaySpike, Start: 2, Dur: 2, ExtraDelay: 0.2},
	}}
	Bind(&eng, p, Config{Scenario: sc, RNG: sim.NewRNG(1), Base: Base{RTT: 0.1}, Horizon: 10})

	var arrivals []float64
	deliver := func(pkt.Packet) { arrivals = append(arrivals, eng.Now()) }
	eng.Schedule(3, func() { p.Forward.Send(pkt.Packet{Seq: 1}, deliver) })   // both spikes active
	eng.Schedule(4.5, func() { p.Forward.Send(pkt.Packet{Seq: 2}, deliver) }) // only the first
	eng.Schedule(6, func() { p.Forward.Send(pkt.Packet{Seq: 3}, deliver) })   // none
	eng.Run()

	want := []float64{3 + 0.05 + 0.3, 4.5 + 0.05 + 0.1, 6 + 0.05}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if diff := arrivals[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("arrival %d at %g, want %g", i, arrivals[i], want[i])
		}
	}
}

func TestDuplicateFaultWindow(t *testing.T) {
	var eng sim.Engine
	p := netem.NewPath(&eng, netem.SymmetricPath(0.05, nil))
	sc := &Scenario{Faults: []Fault{{Kind: KindDuplicate, Start: 0, Dur: 10, Prob: 1}}}
	r := Bind(&eng, p, Config{Scenario: sc, RNG: sim.NewRNG(1), Base: Base{RTT: 0.1}, Horizon: 10})
	var got []int
	eng.Schedule(1, func() { p.Forward.Send(pkt.Packet{Seq: 1}, func(pl pkt.Packet) { got = append(got, int(pl.Seq)) }) })
	eng.Run()
	r.Finish()
	if len(got) != 2 {
		t.Fatalf("delivered %v, want the packet twice", got)
	}
	if st := p.DataStats(); st.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", st.Duplicated)
	}
}

// scenarioFingerprint runs a loss+jitter-heavy scenario and returns a
// string capturing every arrival (payload and time).
func scenarioFingerprint(seed uint64) string {
	var eng sim.Engine
	p := netem.NewPath(&eng, netem.SymmetricPath(0.05, nil))
	sc := &Scenario{
		Phases: []Phase{
			{At: 10, Loss: &LossSpec{Rate: 0.3, Model: LossGE, BurstLen: 2}},
			{At: 20, Loss: &LossSpec{Rate: 0.1}, RTT: f64(0.4)},
		},
		Faults: []Fault{
			{Kind: KindLossBurst, Start: 5, Dur: 3, LossRate: 0.5},
			{Kind: KindReorder, Start: 12, Dur: 6, Jitter: 0.2},
			{Kind: KindDuplicate, Start: 15, Dur: 10, Prob: 0.3},
		},
	}
	r := Bind(&eng, p, Config{Scenario: sc, RNG: sim.NewRNG(seed), Base: Base{RTT: 0.1, Loss: netem.NewBernoulli(0.05, sim.NewRNG(seed).Fork("base-loss"))}, Horizon: 30})
	out := ""
	for t := 0.25; t < 30; t += 0.25 {
		at := t
		eng.Schedule(at, func() {
			p.Forward.Send(pkt.Packet{Sent: at}, func(pl pkt.Packet) {
				out += fmt.Sprintf("%v@%v;", pl.Sent, eng.Now())
			})
		})
	}
	eng.Run()
	for _, ps := range r.Finish() {
		out += ps.String() + "|"
	}
	return out
}

func TestScenarioRunsAreByteReproducible(t *testing.T) {
	a := scenarioFingerprint(42)
	b := scenarioFingerprint(42)
	if a != b {
		t.Fatal("identical seeds produced different runs")
	}
	c := scenarioFingerprint(43)
	if a == c {
		t.Fatal("different seeds produced identical runs (RNG not wired through)")
	}
}

func TestBindRejectsInvalidInputs(t *testing.T) {
	var eng sim.Engine
	p := netem.NewPath(&eng, netem.SymmetricPath(0.05, nil))
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Bind did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil rng", func() { Bind(&eng, p, Config{}) })
	mustPanic("invalid scenario", func() {
		Bind(&eng, p, Config{RNG: sim.NewRNG(1), Scenario: &Scenario{Phases: []Phase{{At: -1}}}})
	})
	mustPanic("nil controller", func() { Bind(&eng, nil, Config{RNG: sim.NewRNG(1)}) })
}

func TestNilScenarioBindsBaseOnly(t *testing.T) {
	var eng sim.Engine
	p := netem.NewPath(&eng, netem.SymmetricPath(0.05, nil))
	r := Bind(&eng, p, Config{Scenario: nil, RNG: sim.NewRNG(1), Base: Base{RTT: 0.2}})
	var arrivals []float64
	eng.Schedule(1, func() {
		p.Forward.Send(pkt.Packet{Seq: 1}, func(pkt.Packet) { arrivals = append(arrivals, eng.Now()) })
	})
	eng.Run()
	if len(arrivals) != 1 || arrivals[0] != 1.1 {
		t.Fatalf("arrivals = %v, want [1.1] (base one-way 0.1)", arrivals)
	}
	stats := r.Finish()
	if len(stats) != 1 || stats[0].Phase != -1 || stats[0].Offered != 1 {
		t.Fatalf("PhaseStats = %v, want a single base segment with 1 offered", stats)
	}
}
