package scenario

import (
	"fmt"

	"pftk/internal/netem"
	"pftk/internal/obs"
	"pftk/internal/sim"
)

// Base describes the path's steady state at t = 0, before any phase
// applies: the configuration the scenario's deltas are relative to and
// the state faults restore when their window closes.
type Base struct {
	// RTT is the two-way propagation delay in seconds, split evenly
	// across the two directions.
	RTT float64
	// Loss is the initial data-direction loss process (nil = lossless).
	Loss netem.LossModel
	// Rate is the initial bottleneck rate in packets/s (0 = infinite).
	Rate float64
	// QueueCap is the initial drop-tail capacity in packets.
	QueueCap int
}

// Config parameterizes Bind.
type Config struct {
	// Scenario is the schedule to execute; nil or empty binds nothing
	// beyond the base state.
	Scenario *Scenario
	// RNG seeds every stream the runner forks (fault decisions, phase
	// loss processes). Required.
	RNG *sim.RNG
	// Base is the t = 0 path state.
	Base Base
	// Horizon bounds the expansion of unbounded periodic faults
	// (occurrences at or past Horizon are not scheduled). Use the run's
	// planned duration.
	Horizon float64
	// Registry receives scenario.* metrics; nil disables them.
	Registry *obs.Registry
}

// PhaseStat attributes data-direction link activity to one scenario
// segment: packets offered, dropped and delivered while that phase's
// parameters were the steady state.
type PhaseStat struct {
	// Phase is the index into Scenario.Phases, or -1 for the base
	// segment before the first phase applies.
	Phase int `json:"phase"`
	// Start and End bound the segment in simulated seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Offered, Dropped and Delivered count data-direction packets over
	// the segment (Dropped = loss-model plus queue drops).
	Offered   int `json:"offered"`
	Dropped   int `json:"dropped"`
	Delivered int `json:"delivered"`
}

// String implements fmt.Stringer.
func (ps PhaseStat) String() string {
	label := "base"
	if ps.Phase >= 0 {
		label = fmt.Sprintf("phase %d", ps.Phase)
	}
	return fmt.Sprintf("%s [%.0f, %.0f): offered=%d dropped=%d delivered=%d",
		label, ps.Start, ps.End, ps.Offered, ps.Dropped, ps.Delivered)
}

// overlayLoss is the effective data-direction loss process: fault
// overlays first (an active outage drops everything; active loss bursts
// add an independent drop probability), then the phase-controlled base
// process. Installing it once at Bind keeps the base process's random
// stream continuous across fault windows.
type overlayLoss struct {
	base    netem.LossModel
	outages int
	burstP  float64
	rng     *sim.RNG
}

// Drop implements netem.LossModel.
func (o *overlayLoss) Drop(now float64) bool {
	if o.outages > 0 {
		return true
	}
	if o.burstP > 0 && o.rng.Bool(o.burstP) {
		return true
	}
	if o.base != nil {
		return o.base.Drop(now)
	}
	return false
}

// adjDelay is a mutable constant-delay process: a base one-way delay
// plus the sum of active delay spikes, plus uniform jitter during
// reorder windows.
type adjDelay struct {
	oneWay float64
	extra  float64
	jitter float64
	rng    *sim.RNG
}

// Delay implements netem.DelayProcess.
func (d *adjDelay) Delay(float64) float64 {
	dl := d.oneWay + d.extra
	if d.jitter > 0 && d.rng != nil {
		dl += d.rng.Uniform(0, d.jitter)
	}
	return dl
}

// Runner executes one bound scenario. Create it with Bind; after the
// simulation completes, call Finish for the per-phase attribution.
type Runner struct {
	eng     *sim.Engine
	pc      netem.PathController
	sc      *Scenario
	rng     *sim.RNG
	horizon float64

	overlay *overlayLoss
	fwd     *adjDelay
	rev     *adjDelay

	curRate  float64
	curQueue int

	// Active fault multisets; effective values are recomputed from
	// these at every fault boundary.
	outages int
	bursts  []float64
	spikes  []float64
	jitters []float64
	dups    []float64
	dupRNG  *sim.RNG

	marks []phaseMark

	transitions  uint64
	faultsOn     uint64
	faultsOff    uint64
	activeFaults int

	reg          *obs.Registry
	mTransitions *obs.Counter
	mFaultStart  *obs.Counter
	mFaultEnd    *obs.Counter
	gActive      *obs.Gauge
	gPhase       *obs.Gauge
}

// phaseMark snapshots the data link at the moment a segment begins.
type phaseMark struct {
	phase int
	start float64
	stats netem.LinkStats
}

// Bind installs the scenario on a path and schedules every transition on
// the engine's event queue. It must be called before the simulation
// starts (transitions scheduled at Bind time sort ahead of same-time
// packet events, so a phase boundary always applies before the packets
// of that instant). The path's delay processes are replaced with
// scenario-controlled constant delays derived from Base.RTT.
//
// Bind panics if the scenario fails Validate — callers parse or construct
// scenarios ahead of simulation time, where errors are reportable.
func Bind(eng *sim.Engine, pc netem.PathController, cfg Config) *Runner {
	if eng == nil || pc == nil {
		panic("scenario: Bind needs an engine and a path controller")
	}
	if cfg.RNG == nil {
		panic("scenario: Bind needs an RNG")
	}
	if err := cfg.Scenario.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: Bind on invalid scenario: %v", err))
	}
	reg := cfg.Registry
	r := &Runner{
		eng:      eng,
		pc:       pc,
		sc:       cfg.Scenario,
		rng:      cfg.RNG,
		horizon:  cfg.Horizon,
		curRate:  cfg.Base.Rate,
		curQueue: cfg.Base.QueueCap,
		dupRNG:   cfg.RNG.Fork("fault.duplicate"),

		reg:          reg,
		mTransitions: reg.Counter("scenario.transitions"),
		mFaultStart:  reg.Counter("scenario.faults.started"),
		mFaultEnd:    reg.Counter("scenario.faults.ended"),
		gActive:      reg.Gauge("scenario.faults.active"),
		gPhase:       reg.Gauge("scenario.phase"),
	}
	r.overlay = &overlayLoss{base: cfg.Base.Loss, rng: cfg.RNG.Fork("fault.loss")}
	r.fwd = &adjDelay{oneWay: cfg.Base.RTT / 2, rng: cfg.RNG.Fork("fault.jitter")}
	r.rev = &adjDelay{oneWay: cfg.Base.RTT / 2}
	pc.SetLoss(r.overlay)
	pc.SetOneWayDelay(r.fwd, r.rev)
	pc.SetBottleneck(r.curRate, r.curQueue)
	r.mark(-1)

	if r.sc == nil {
		return r
	}
	for i := range r.sc.Phases {
		r.schedulePhase(i)
	}
	for i := range r.sc.Faults {
		r.scheduleFault(i)
	}
	return r
}

// mark opens a new attribution segment for phase index p.
func (r *Runner) mark(p int) {
	r.marks = append(r.marks, phaseMark{phase: p, start: r.eng.Now(), stats: r.pc.DataStats()})
}

// schedulePhase queues the application of phase i. The phase's loss
// process is forked from a label that depends only on the phase index,
// so re-runs (and any worker count) see identical streams.
func (r *Runner) schedulePhase(i int) {
	ph := r.sc.Phases[i]
	at := ph.At
	if at < r.eng.Now() {
		at = r.eng.Now()
	}
	r.eng.Schedule(at, func() { r.applyPhase(i) })
}

// applyPhase rewrites the steady-state path parameters.
func (r *Runner) applyPhase(i int) {
	ph := r.sc.Phases[i]
	if ph.Loss != nil {
		r.overlay.base = buildLoss(ph.Loss, r.rng.Fork(fmt.Sprintf("phase.%d.loss", i)))
	}
	if ph.RTT != nil {
		r.fwd.oneWay = *ph.RTT / 2
		r.rev.oneWay = *ph.RTT / 2
	}
	if ph.Rate != nil {
		r.curRate = *ph.Rate
	}
	if ph.QueueCap != nil {
		r.curQueue = *ph.QueueCap
	}
	if ph.Rate != nil || ph.QueueCap != nil {
		r.pc.SetBottleneck(r.curRate, r.curQueue)
	}
	r.transitions++
	r.mTransitions.Inc()
	r.gPhase.Set(float64(i + 1))
	r.mark(i)
}

// scheduleFault expands fault i into occurrences and queues each
// occurrence's start and end transitions.
func (r *Runner) scheduleFault(i int) {
	f := r.sc.Faults[i]
	n := f.Count
	if f.Period <= 0 {
		n = 1
	}
	for k := 0; n == 0 || k < n; k++ {
		if k >= MaxOccurrences {
			break
		}
		start := f.Start + float64(k)*f.Period
		if n == 0 && !(start < r.horizon) {
			break
		}
		at := start
		if at < r.eng.Now() {
			at = r.eng.Now()
		}
		r.eng.Schedule(at, func() { r.applyFault(f, true) })
		r.eng.Schedule(at+f.Dur, func() { r.applyFault(f, false) })
		if f.Period <= 0 {
			break
		}
	}
}

// applyFault opens (on) or closes one fault occurrence and recomputes
// the effective overlay state.
func (r *Runner) applyFault(f Fault, on bool) {
	switch f.Kind {
	case KindOutage:
		if on {
			r.outages++
		} else {
			r.outages--
		}
	case KindLossBurst:
		r.bursts = toggle(r.bursts, f.LossRate, on)
	case KindDelaySpike:
		r.spikes = toggle(r.spikes, f.ExtraDelay, on)
	case KindReorder:
		r.jitters = toggle(r.jitters, f.Jitter, on)
	case KindDuplicate:
		r.dups = toggle(r.dups, f.Prob, on)
	}
	if on {
		r.activeFaults++
		r.faultsOn++
		r.mFaultStart.Inc()
	} else {
		r.activeFaults--
		r.faultsOff++
		r.mFaultEnd.Inc()
	}
	r.gActive.Set(float64(r.activeFaults))

	// Recompute the effective overlays from the active multisets.
	r.overlay.outages = r.outages
	r.overlay.burstP = combinedProb(r.bursts)
	r.fwd.extra = sum(r.spikes)
	r.fwd.jitter = maxOf(r.jitters)
	r.pc.SetReorder(len(r.jitters) > 0)
	r.pc.SetDuplicate(maxOf(r.dups), r.dupRNG)
}

// toggle adds (on) or removes one instance of v from the multiset.
func toggle(set []float64, v float64, on bool) []float64 {
	if on {
		return append(set, v)
	}
	for i := range set {
		//pftklint:ignore floatcmp removing the bit-identical value inserted at fault start
		if set[i] == v {
			return append(set[:i], set[i+1:]...)
		}
	}
	return set
}

// combinedProb folds independent extra-loss probabilities:
// 1 - Π(1 - p_i).
func combinedProb(ps []float64) float64 {
	if len(ps) == 0 {
		return 0
	}
	keep := 1.0
	for _, p := range ps {
		keep *= 1 - p
	}
	return 1 - keep
}

// sum returns Σ vs.
func sum(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s
}

// maxOf returns the largest element, or 0 for an empty set.
func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// buildLoss instantiates a loss process from its declarative spec.
func buildLoss(ls *LossSpec, rng *sim.RNG) netem.LossModel {
	if ls == nil || ls.Rate <= 0 {
		return nil
	}
	switch ls.Model {
	case "", LossBernoulli:
		return netem.NewBernoulli(ls.Rate, rng)
	case LossGE:
		burst := ls.BurstLen
		if burst < 1 {
			burst = 1
		}
		return netem.GilbertElliottForLossRate(ls.Rate, burst, rng)
	case LossOutage:
		return netem.NewTimedBurst(ls.Rate, ls.BurstDur, rng)
	default:
		// Validate rejects unknown models before Bind.
		panic(fmt.Sprintf("scenario: unknown loss model %q", ls.Model))
	}
}

// Transitions returns the number of phase transitions applied so far.
func (r *Runner) Transitions() uint64 { return r.transitions }

// FaultsStarted returns the number of fault occurrences opened so far.
func (r *Runner) FaultsStarted() uint64 { return r.faultsOn }

// ActiveFaults returns the number of currently open fault occurrences.
func (r *Runner) ActiveFaults() int { return r.activeFaults }

// Finish closes the last attribution segment at the engine's current
// time and returns the per-phase statistics. When a registry was
// configured, it also exports scenario.phase.<n>.offered/dropped
// counters so campaigns can attribute loss indications to phases. Call
// it once, after the simulation has run.
func (r *Runner) Finish() []PhaseStat {
	now := r.eng.Now()
	final := r.pc.DataStats()
	out := make([]PhaseStat, 0, len(r.marks))
	for i, m := range r.marks {
		end := now
		next := final
		if i+1 < len(r.marks) {
			end = r.marks[i+1].start
			next = r.marks[i+1].stats
		}
		out = append(out, PhaseStat{
			Phase:     m.phase,
			Start:     m.start,
			End:       end,
			Offered:   next.Offered - m.stats.Offered,
			Dropped:   (next.RandomDrops + next.QueueDrops) - (m.stats.RandomDrops + m.stats.QueueDrops),
			Delivered: next.Delivered - m.stats.Delivered,
		})
	}
	if r.reg != nil {
		for _, ps := range out {
			label := "base"
			if ps.Phase >= 0 {
				label = fmt.Sprintf("%d", ps.Phase)
			}
			r.reg.Counter(fmt.Sprintf("scenario.phase.%s.offered", label)).Add(uint64(ps.Offered))
			r.reg.Counter(fmt.Sprintf("scenario.phase.%s.dropped", label)).Add(uint64(ps.Dropped))
		}
	}
	return out
}
