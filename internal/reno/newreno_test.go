package reno

import (
	"testing"

	"pftk/internal/netem"
	"pftk/internal/sim"
)

// TestNewRenoRepairsMultiLossWithoutTimeout is the variant's defining
// behavior: with several packets dropped from one window, classic Reno
// exits recovery on the first partial ACK and usually needs an RTO for
// the remaining holes, while NewReno retransmits hole after hole on
// partial ACKs and finishes recovery without any timeout.
func TestNewRenoRepairsMultiLossWithoutTimeout(t *testing.T) {
	// Drop three packets of one established window (indexes chosen well
	// after slow start at window 16).
	mk := func(v Variant) SenderStats {
		scfg := SenderConfig{Variant: v, RWnd: 16, InitialCwnd: 16, InitialSsthresh: 16, MinRTO: 1}
		cfg := ConnConfig{
			Sender:   scfg,
			Receiver: ReceiverConfig{AckEvery: 1},
			Path:     netem.SymmetricPath(0.05, netem.NewScript(30, 32, 34)),
		}
		return RunConnection(cfg, 30).Stats
	}
	nr := mk(NewReno)
	classic := mk(Reno)
	if nr.TimeoutEvents != 0 {
		t.Errorf("NewReno needed %d timeouts for a 3-loss window", nr.TimeoutEvents)
	}
	if classic.TimeoutEvents == 0 {
		t.Error("classic Reno repaired a 3-loss window without RTO (unexpectedly lucky)")
	}
	if nr.Retransmits < 3 {
		t.Errorf("NewReno retransmitted %d packets, want >= 3", nr.Retransmits)
	}
}

// TestNewRenoStaysInRecoveryUntilRecoverPoint drives the sender manually
// and asserts the recovery exit point.
func TestNewRenoStaysInRecoveryUntilRecoverPoint(t *testing.T) {
	scfg := SenderConfig{Variant: NewReno, RWnd: 16, InitialCwnd: 12, InitialSsthresh: 12, MinRTO: 1}
	cfg := ConnConfig{
		Sender:   scfg,
		Receiver: ReceiverConfig{AckEvery: 1},
		Path:     netem.SymmetricPath(0.05, netem.NewScript(20, 22)),
	}
	var eng sim.Engine
	c := NewConnection(&eng, cfg)
	c.Sender.Start()
	sawRecovery := false
	for eng.Step() {
		if c.Sender.inRecovery {
			sawRecovery = true
			if c.Sender.una > c.Sender.recover {
				t.Fatal("in recovery past the recovery point")
			}
		}
		if eng.Now() > 20 {
			break
		}
	}
	c.Sender.Stop()
	if !sawRecovery {
		t.Error("never entered fast recovery")
	}
}

// TestNewRenoOutperformsRenoUnderBurstLoss quantifies the ablation: under
// RTT-scale loss outages, NewReno's send rate should be at least as high
// as classic Reno's (it avoids the RTO stalls).
func TestNewRenoOutperformsRenoUnderBurstLoss(t *testing.T) {
	run := func(v Variant, seed uint64) float64 {
		cfg := ConnConfig{
			Sender: SenderConfig{Variant: v, RWnd: 32, MinRTO: 1},
			Path:   netem.SymmetricPath(0.05, netem.NewTimedBurst(0.004, 0.06, sim.NewRNG(seed))),
		}
		return RunConnection(cfg, 2000).SendRate()
	}
	var nr, classic float64
	for seed := uint64(1); seed <= 3; seed++ {
		nr += run(NewReno, seed)
		classic += run(Reno, seed)
	}
	t.Logf("newreno %.1f pkts/s vs reno %.1f pkts/s", nr/3, classic/3)
	if nr < classic*0.95 {
		t.Errorf("NewReno (%.1f) slower than classic Reno (%.1f) under burst loss", nr/3, classic/3)
	}
}

// TestNewRenoVariantPreset sanity-checks the preset.
func TestNewRenoVariantPreset(t *testing.T) {
	if !NewReno.NewReno || NewReno.Tahoe || NewReno.DupThreshold != 3 {
		t.Errorf("NewReno preset wrong: %+v", NewReno)
	}
	v := Variant{NewReno: true}.normalize()
	if v.DupThreshold != 3 || v.MaxBackoffExp != 6 {
		t.Errorf("normalize dropped NewReno defaults: %+v", v)
	}
}
