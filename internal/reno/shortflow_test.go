package reno

import (
	"testing"

	"pftk/internal/core"
	"pftk/internal/netem"
	"pftk/internal/sim"
	"pftk/internal/stats"
)

// TestFiniteTransferCompletes checks the finite-transfer machinery.
func TestFiniteTransferCompletes(t *testing.T) {
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 16, TotalPackets: 100},
		Path:   netem.SymmetricPath(0.05, nil),
	}
	var eng sim.Engine
	c := NewConnection(&eng, cfg)
	res, done := c.RunUntilComplete(60)
	if !c.Sender.Complete() {
		t.Fatal("transfer did not complete")
	}
	if res.Delivered != 100 {
		t.Errorf("delivered %d, want 100", res.Delivered)
	}
	if res.Stats.PacketsSent != 100 {
		t.Errorf("sent %d originals, want exactly 100", res.Stats.PacketsSent)
	}
	if done <= 0 || done >= 60 {
		t.Errorf("completion time %g out of range", done)
	}
}

func TestFiniteTransferWithLossStillCompletes(t *testing.T) {
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 16, TotalPackets: 300, MinRTO: 0.4, Tick: 0.1},
		Path:   netem.SymmetricPath(0.05, netem.NewBernoulli(0.05, sim.NewRNG(3))),
	}
	var eng sim.Engine
	c := NewConnection(&eng, cfg)
	res, done := c.RunUntilComplete(600)
	if !c.Sender.Complete() {
		t.Fatalf("lossy transfer did not complete (delivered %d)", res.Delivered)
	}
	if res.Delivered != 300 {
		t.Errorf("delivered %d, want 300", res.Delivered)
	}
	if res.Stats.Retransmits == 0 {
		t.Error("expected retransmissions under 5% loss")
	}
	_ = done
}

func TestTransferTimeDeadline(t *testing.T) {
	// A blackholed transfer never completes; TransferTime returns the
	// deadline.
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 4, MinRTO: 0.5},
		Path: netem.PathConfig{
			Forward: netem.LinkConfig{Delay: netem.ConstantDelay(0.05), Loss: &netem.Periodic{N: 1}},
			Reverse: netem.LinkConfig{Delay: netem.ConstantDelay(0.05)},
		},
	}
	if got := TransferTime(cfg, 10, 30); got != 30 {
		t.Errorf("blackholed transfer time = %g, want deadline 30", got)
	}
}

// TestShortFlowModelTracksSimulator validates the short-flow latency
// extension: the model's expected completion time must track the mean
// simulated completion time across flow sizes and loss rates.
func TestShortFlowModelTracksSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulations")
	}
	rtt := 0.1
	for _, tc := range []struct {
		n    int
		drop float64
	}{
		{10, 0}, {100, 0}, {1000, 0},
		{100, 0.01}, {500, 0.02}, {2000, 0.03},
	} {
		var times stats.Running
		reps := 20
		if tc.drop == 0 {
			reps = 1 // deterministic
		}
		var measuredP stats.Running
		for r := 0; r < reps; r++ {
			cfg := ConnConfig{
				Sender: SenderConfig{RWnd: 64, MinRTO: 1.0, TotalPackets: uint64(tc.n)},
				Path: netem.SymmetricPath(rtt/2,
					lossOrNil(tc.drop, uint64(r)+uint64(tc.n))),
			}
			var eng sim.Engine
			c := NewConnection(&eng, cfg)
			res, done := c.RunUntilComplete(3600)
			times.Add(done)
			measuredP.Add(res.LossIndicationRate())
		}
		pr := core.Params{RTT: rtt + 0.01, T0: 1.2, Wm: 64, B: 2}
		pEff := measuredP.Mean()
		want := core.ShortFlowTime(tc.n, pEff, pr)
		got := times.Mean()
		ratio := got / want
		t.Logf("n=%d drop=%.2f: simulated %.2fs model %.2fs (ratio %.2f, pEff=%.4f)",
			tc.n, tc.drop, got, want, ratio, pEff)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("n=%d drop=%g: simulated %.2f vs model %.2f (ratio %.2f)",
				tc.n, tc.drop, got, want, ratio)
		}
	}
}

func lossOrNil(p float64, seed uint64) netem.LossModel {
	if p <= 0 {
		return nil
	}
	return netem.NewBernoulli(p, sim.NewRNG(seed))
}

// TestShortFlowsSlowerThanSteadyState demonstrates the headline effect of
// the extension: short flows achieve a small fraction of the steady-state
// rate.
func TestShortFlowsSlowerThanSteadyState(t *testing.T) {
	rtt, drop := 0.1, 0.02
	short := TransferTime(ConnConfig{
		Sender: SenderConfig{RWnd: 64, MinRTO: 1.0},
		Path:   netem.SymmetricPath(rtt/2, netem.NewBernoulli(drop, sim.NewRNG(1))),
	}, 20, 600)
	shortRate := 20 / short

	long := RunConnection(ConnConfig{
		Sender: SenderConfig{RWnd: 64, MinRTO: 1.0},
		Path:   netem.SymmetricPath(rtt/2, netem.NewBernoulli(drop, sim.NewRNG(2))),
	}, 2000)
	if shortRate > long.SendRate()*0.8 {
		t.Errorf("20-packet flow rate %.1f should sit well below steady state %.1f",
			shortRate, long.SendRate())
	}
}
