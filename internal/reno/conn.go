package reno

import (
	"fmt"

	"pftk/internal/netem"
	"pftk/internal/sim"
	"pftk/internal/trace"
)

// ConnConfig bundles everything needed to run one bulk-transfer
// connection.
type ConnConfig struct {
	Sender   SenderConfig
	Receiver ReceiverConfig
	Path     netem.PathConfig
}

// Connection wires a saturated Reno sender to a receiver across an
// emulated path on a shared simulation engine.
type Connection struct {
	Eng      *sim.Engine
	Path     *netem.Path
	Sender   *Sender
	Receiver *Receiver
}

// NewConnection constructs the sender, receiver and both link directions
// on eng.
func NewConnection(eng *sim.Engine, cfg ConnConfig) *Connection {
	path := netem.NewPath(eng, cfg.Path)
	snd := NewSender(eng, path.Forward, cfg.Sender)
	rcv := NewReceiver(eng, path.Reverse, snd.OnAck, cfg.Receiver)
	snd.toRecv = rcv.OnPacket
	return &Connection{Eng: eng, Path: path, Sender: snd, Receiver: rcv}
}

// Result summarizes one finished run.
type Result struct {
	// Duration is the wall-clock (simulated) length of the run in
	// seconds.
	Duration float64
	// Trace is the sender-side event trace.
	Trace trace.Trace
	// Stats are the sender's ground-truth counters.
	Stats SenderStats
	// Delivered is the count of distinct in-order packets at the
	// receiver.
	Delivered uint64
}

// SendRate returns packets transmitted (originals + retransmissions) per
// second — the paper's B.
func (r Result) SendRate() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Stats.TotalSent()) / r.Duration
}

// Throughput returns distinct packets delivered per second — the paper's
// T.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Delivered) / r.Duration
}

// LossIndicationRate returns loss indications divided by packets sent —
// the paper's p estimate ("dividing the total number of loss indications
// by the total number of packets sent").
func (r Result) LossIndicationRate() float64 {
	sent := r.Stats.TotalSent()
	if sent == 0 {
		return 0
	}
	return float64(r.Stats.LossIndications()) / float64(sent)
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("Result(%.0fs: sent=%d retx=%d td=%d to=%d rate=%.2f pkts/s)",
		r.Duration, r.Stats.TotalSent(), r.Stats.Retransmits,
		r.Stats.TDEvents, r.Stats.TimeoutEvents, r.SendRate())
}

// Run starts the sender and advances the simulation for the given number
// of seconds, then freezes the connection and returns the results.
func (c *Connection) Run(duration float64) Result {
	start := c.Eng.Now()
	c.Sender.Start()
	c.Eng.RunUntil(start + duration)
	c.Sender.Stop()
	return Result{
		Duration:  duration,
		Trace:     c.Sender.Trace(),
		Stats:     c.Sender.Stats(),
		Delivered: c.Receiver.Delivered(),
	}
}

// RunConnection is the one-call convenience used by the experiment
// harness: build a fresh engine and connection, run it for duration
// seconds.
func RunConnection(cfg ConnConfig, duration float64) Result {
	var eng sim.Engine
	conn := NewConnection(&eng, cfg)
	return conn.Run(duration)
}

// RunUntilComplete starts the sender and advances the simulation until a
// finite transfer (SenderConfig.TotalPackets > 0) completes or the
// deadline passes, returning the result and the completion time (the
// deadline if it never completed).
func (c *Connection) RunUntilComplete(deadline float64) (Result, float64) {
	c.Sender.Start()
	done := deadline
	for c.Eng.Now() < deadline {
		if !c.Eng.Step() {
			break
		}
		if c.Sender.Complete() {
			done = c.Eng.Now()
			break
		}
	}
	c.Sender.Stop()
	return Result{
		Duration:  c.Eng.Now(),
		Trace:     c.Sender.Trace(),
		Stats:     c.Sender.Stats(),
		Delivered: c.Receiver.Delivered(),
	}, done
}

// TransferTime simulates a finite transfer of n packets over the given
// configuration and returns the completion time in seconds (deadline on
// non-completion).
func TransferTime(cfg ConnConfig, n uint64, deadline float64) float64 {
	cfg.Sender.TotalPackets = n
	var eng sim.Engine
	conn := NewConnection(&eng, cfg)
	_, done := conn.RunUntilComplete(deadline)
	return done
}
