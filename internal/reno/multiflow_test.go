package reno

import (
	"testing"

	"pftk/internal/netem"
	"pftk/internal/sim"
	"pftk/internal/stats"
)

// buildSharedBottleneck wires n Reno connections through one rate-limited
// drop-tail forward link (the shared bottleneck) with per-flow reverse
// links, and returns the connections. Flows are demultiplexed naturally:
// every Send carries its own delivery callback.
func buildSharedBottleneck(eng *sim.Engine, n int, rate float64, qcap int, scfg SenderConfig) []*Connection {
	fwd := netem.NewLink(eng, netem.LinkConfig{
		Rate:     rate,
		QueueCap: qcap,
		Delay:    netem.ConstantDelay(0.04),
	})
	conns := make([]*Connection, n)
	for i := 0; i < n; i++ {
		rev := netem.NewLink(eng, netem.LinkConfig{Delay: netem.ConstantDelay(0.04)})
		snd := NewSender(eng, fwd, scfg)
		rcv := NewReceiver(eng, rev, snd.OnAck, ReceiverConfig{})
		snd.SetDeliver(rcv.OnPacket)
		conns[i] = &Connection{Eng: eng, Sender: snd, Receiver: rcv}
	}
	return conns
}

// TestFlowsShareBottleneckFairly runs four identical Reno flows through
// one bottleneck: long-run rates must be near the fair share and the link
// near fully utilized — the emergent behavior the model's "fair share"
// motivation rests on.
func TestFlowsShareBottleneckFairly(t *testing.T) {
	var eng sim.Engine
	const (
		n    = 4
		rate = 100.0
		dur  = 2000.0
	)
	conns := buildSharedBottleneck(&eng, n, rate, 25, SenderConfig{RWnd: 64, MinRTO: 0.5, Tick: 0.1})
	for _, c := range conns {
		c.Sender.Start()
	}
	eng.RunUntil(dur)
	var total float64
	fair := rate / n
	for i, c := range conns {
		c.Sender.Stop()
		got := float64(c.Sender.Stats().TotalSent()) / dur
		total += got
		if got < fair*0.5 || got > fair*1.8 {
			t.Errorf("flow %d rate %.1f pkts/s, fair share %.1f", i, got, fair)
		}
	}
	if total < 0.8*rate || total > 1.05*rate {
		t.Errorf("aggregate %.1f pkts/s, want near link rate %.0f", total, rate)
	}
}

// TestSharedBottleneckLossesAreCongestive verifies the loss indications in
// the shared-bottleneck scenario come from queue overflow, not the random
// process (there is none), and that each flow's measured p is consistent
// with its rate through the model's lens (B(p) within a factor of its
// actual rate).
func TestSharedBottleneckLossesAreCongestive(t *testing.T) {
	var eng sim.Engine
	conns := buildSharedBottleneck(&eng, 3, 60, 15, SenderConfig{RWnd: 64, MinRTO: 0.5, Tick: 0.1})
	for _, c := range conns {
		c.Sender.Start()
	}
	eng.RunUntil(1500)
	for i, c := range conns {
		c.Sender.Stop()
		st := c.Sender.Stats()
		if st.LossIndications() == 0 {
			t.Errorf("flow %d saw no congestion losses", i)
		}
	}
}

// TestTwoFlowsConvergeFromUnequalStart starts one flow 200 s before the
// second and checks the late flow still claws to a comparable share —
// AIMD convergence-to-fairness in the simulator.
func TestTwoFlowsConvergeFromUnequalStart(t *testing.T) {
	var eng sim.Engine
	conns := buildSharedBottleneck(&eng, 2, 80, 20, SenderConfig{RWnd: 64, MinRTO: 0.5, Tick: 0.1})
	conns[0].Sender.Start()
	eng.RunUntil(200)
	headStart := conns[0].Sender.Stats().TotalSent()
	conns[1].Sender.Start()
	eng.RunUntil(1700) // 1500 s of shared operation
	late := float64(conns[1].Sender.Stats().TotalSent()) / 1500
	early := float64(conns[0].Sender.Stats().TotalSent()-headStart) / 1500
	for _, c := range conns {
		c.Sender.Stop()
	}
	ratio := late / early
	t.Logf("early flow %.1f pkts/s vs late flow %.1f pkts/s (ratio %.2f)", early, late, ratio)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("late flow did not converge to a comparable share: ratio %.2f", ratio)
	}
}

// TestJainFairnessIndex computes Jain's index over eight competing flows;
// AIMD should land well above the all-to-one worst case.
func TestJainFairnessIndex(t *testing.T) {
	var eng sim.Engine
	const n = 8
	conns := buildSharedBottleneck(&eng, n, 120, 30, SenderConfig{RWnd: 64, MinRTO: 0.5, Tick: 0.1})
	for _, c := range conns {
		c.Sender.Start()
	}
	eng.RunUntil(2500)
	var rates []float64
	for _, c := range conns {
		c.Sender.Stop()
		rates = append(rates, float64(c.Sender.Stats().TotalSent())/2500)
	}
	var sum, sq float64
	for _, r := range rates {
		sum += r
		sq += r * r
	}
	jain := sum * sum / (float64(n) * sq)
	t.Logf("rates %v, Jain index %.3f", rates, jain)
	if jain < 0.8 {
		t.Errorf("Jain fairness index %.3f, want >= 0.8", jain)
	}
	if stats.Mean(rates) < 0.8*120/n {
		t.Errorf("mean rate %.1f too far below fair share %.1f", stats.Mean(rates), 120.0/n)
	}
}
