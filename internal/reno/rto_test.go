package reno

import (
	"math"
	"testing"
)

func TestRTOInitial(t *testing.T) {
	e := NewRTOEstimator(1, 240, 0)
	if e.HasSample() {
		t.Error("fresh estimator should have no sample")
	}
	if got := e.RTO(); got != 3 {
		t.Errorf("initial RTO = %g, want 3", got)
	}
}

func TestRTOFirstSample(t *testing.T) {
	e := NewRTOEstimator(0.1, 240, 0)
	e.Sample(0.5)
	if !e.HasSample() {
		t.Fatal("sample not absorbed")
	}
	if e.SRTT() != 0.5 || e.RTTVar() != 0.25 {
		t.Errorf("SRTT=%g RTTVar=%g, want 0.5/0.25", e.SRTT(), e.RTTVar())
	}
	// RTO = 0.5 + 4*0.25 = 1.5
	if got := e.RTO(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("RTO = %g, want 1.5", got)
	}
}

func TestRTOConvergesOnSteadyRTT(t *testing.T) {
	e := NewRTOEstimator(0.01, 240, 0)
	for i := 0; i < 200; i++ {
		e.Sample(0.3)
	}
	if math.Abs(e.SRTT()-0.3) > 1e-6 {
		t.Errorf("SRTT = %g, want ~0.3", e.SRTT())
	}
	if e.RTTVar() > 1e-6 {
		t.Errorf("RTTVar = %g, want ~0 on constant input", e.RTTVar())
	}
	if got := e.RTO(); math.Abs(got-0.3) > 1e-3 {
		t.Errorf("converged RTO = %g, want ~0.3 (above MinRTO)", got)
	}
}

func TestRTOMinClamp(t *testing.T) {
	e := NewRTOEstimator(1.0, 240, 0)
	for i := 0; i < 100; i++ {
		e.Sample(0.05)
	}
	if got := e.RTO(); got != 1.0 {
		t.Errorf("RTO = %g, want clamped to MinRTO 1.0", got)
	}
}

func TestRTOMaxClamp(t *testing.T) {
	e := NewRTOEstimator(0.1, 5, 0)
	e.Sample(100)
	if got := e.RTO(); got != 5 {
		t.Errorf("RTO = %g, want clamped to MaxRTO 5", got)
	}
}

func TestRTOTickQuantization(t *testing.T) {
	e := NewRTOEstimator(0.01, 240, 0.5)
	for i := 0; i < 100; i++ {
		e.Sample(0.3)
	}
	// ~0.3 rounds up to 0.5.
	if got := e.RTO(); got != 0.5 {
		t.Errorf("RTO = %g, want 0.5 (tick-rounded)", got)
	}
	e.Sample(2.0) // jolt variance upward
	rto := e.RTO()
	if math.Mod(rto, 0.5) > 1e-9 && math.Abs(math.Mod(rto, 0.5)-0.5) > 1e-9 {
		t.Errorf("RTO = %g not a tick multiple", rto)
	}
}

func TestRTOIgnoresBadSamples(t *testing.T) {
	e := NewRTOEstimator(0.1, 240, 0)
	e.Sample(-1)
	e.Sample(0)
	e.Sample(math.NaN())
	if e.HasSample() {
		t.Error("invalid samples should be ignored")
	}
}

func TestRTOVarianceTracksJitter(t *testing.T) {
	e := NewRTOEstimator(0.01, 240, 0)
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			e.Sample(0.2)
		} else {
			e.Sample(0.4)
		}
	}
	if e.RTTVar() < 0.03 {
		t.Errorf("RTTVar = %g, want substantial on alternating input", e.RTTVar())
	}
	if rto := e.RTO(); rto < e.SRTT() {
		t.Errorf("RTO %g below SRTT %g", rto, e.SRTT())
	}
}

func TestVariantNormalize(t *testing.T) {
	v := Variant{}.normalize()
	if v.DupThreshold != 3 || v.MaxBackoffExp != 6 || v.Name != "reno" || v.Tahoe {
		t.Errorf("zero Variant normalized to %+v", v)
	}
	l := Linux.normalize()
	if l.DupThreshold != 2 {
		t.Errorf("Linux threshold = %d, want 2", l.DupThreshold)
	}
	i := Irix.normalize()
	if i.MaxBackoffExp != 5 {
		t.Errorf("Irix backoff cap = %d, want 5", i.MaxBackoffExp)
	}
	if !Tahoe.Tahoe {
		t.Error("Tahoe variant must set Tahoe")
	}
}

func TestSenderConfigNormalize(t *testing.T) {
	c := SenderConfig{}.normalize()
	if c.RWnd != 64 || c.InitialCwnd != 1 || c.InitialSsthresh != 64 {
		t.Errorf("defaults: %+v", c)
	}
	if c.MinRTO != 1.0 || c.MaxRTO != 240 {
		t.Errorf("RTO defaults: min=%g max=%g", c.MinRTO, c.MaxRTO)
	}
	c2 := SenderConfig{RWnd: 8, InitialSsthresh: 4}.normalize()
	if c2.InitialSsthresh != 4 || c2.RWnd != 8 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

func TestReceiverConfigNormalize(t *testing.T) {
	c := ReceiverConfig{}.normalize()
	if c.AckEvery != 2 || c.DelAckTimeout != 0.2 {
		t.Errorf("defaults: %+v", c)
	}
	d := ReceiverConfig{AckEvery: 1, DelAckTimeout: -1}.normalize()
	if d.AckEvery != 1 || d.DelAckTimeout != -1 {
		t.Errorf("explicit values overridden: %+v", d)
	}
}
