package reno

import (
	"math"
	"testing"

	"pftk/internal/core"
	"pftk/internal/netem"
	"pftk/internal/sim"
)

// measured runs a long bulk transfer over a Bernoulli-loss path and
// returns the measured send rate and loss-indication rate, plus the model
// parameters describing the run (using the paper's methodology: p, RTT
// and T0 are all *measured* quantities fed back into the model).
func measuredRun(t *testing.T, drop float64, rwnd int, seed uint64, dur float64) (rate, p float64, pr core.Params) {
	t.Helper()
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: rwnd, MinRTO: 1.0},
		Path:   netem.SymmetricPath(0.05, netem.NewBernoulli(drop, sim.NewRNG(seed))),
	}
	var eng sim.Engine
	c := NewConnection(&eng, cfg)
	res := c.Run(dur)
	srtt := c.Sender.Estimator().SRTT()
	if srtt <= 0 {
		srtt = 0.1
	}
	t0 := c.Sender.BaseRTO()
	return res.SendRate(), res.LossIndicationRate(),
		core.Params{RTT: srtt, T0: t0, Wm: float64(rwnd), B: 2}
}

// TestSimulatorMatchesFullModel is the repository's core validation: the
// packet-level Reno simulator, measured the way the paper measures real
// TCP (p = loss indications / packets sent, RTT from the sender's
// estimator), must agree with eq. (32) to within a factor of 2 across the
// loss range — the same quality of fit the paper reports for real stacks.
func TestSimulatorMatchesFullModel(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	for _, drop := range []float64{0.005, 0.01, 0.03, 0.06, 0.12} {
		rate, p, pr := measuredRun(t, drop, 64, uint64(drop*1e6), 3000)
		if p <= 0 {
			t.Fatalf("drop=%g: no loss indications measured", drop)
		}
		pred := core.SendRateFull(p, pr)
		ratio := rate / pred
		t.Logf("drop=%.3f: measured p=%.4f rate=%.1f, model=%.1f (ratio %.2f, T0=%.2f RTT=%.3f)",
			drop, p, rate, pred, ratio, pr.T0, pr.RTT)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("drop=%g: measured/model = %.2f, want within [0.5, 2]", drop, ratio)
		}
	}
}

// TestFullModelBeatsTDOnlyAtHighLoss reproduces the paper's headline
// comparison on simulated traces: at loss rates above ~5% the TD-only
// model overestimates badly while the full model stays close.
func TestFullModelBeatsTDOnlyAtHighLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	for _, drop := range []float64{0.08, 0.15} {
		rate, p, pr := measuredRun(t, drop, 64, 77+uint64(drop*100), 3000)
		full := core.SendRateFull(p, pr)
		td := core.SendRateTDOnly(p, pr.RTT, 2)
		errFull := math.Abs(full-rate) / rate
		errTD := math.Abs(td-rate) / rate
		t.Logf("drop=%.2f: measured=%.1f full=%.1f (err %.2f) tdonly=%.1f (err %.2f)",
			drop, rate, full, errFull, td, errTD)
		if errFull >= errTD {
			t.Errorf("drop=%g: full model error %.2f not better than TD-only %.2f", drop, errFull, errTD)
		}
		if td < rate {
			t.Errorf("drop=%g: TD-only %g should overestimate measured %g", drop, td, rate)
		}
	}
}

// TestWindowLimitedRegime checks the Wm branch: with a small advertised
// window and light loss the connection pins at Wm/RTT, which the full
// model predicts and the TD-only model overshoots.
func TestWindowLimitedRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	rate, p, pr := measuredRun(t, 0.001, 6, 99, 2000)
	ceiling := pr.Wm / pr.RTT
	if rate > ceiling*1.05 {
		t.Errorf("measured rate %g above ceiling %g", rate, ceiling)
	}
	full := core.SendRateFull(p, pr)
	if math.Abs(full-rate)/rate > 0.5 {
		t.Errorf("full model %g vs measured %g: off by more than 50%% in window-limited regime", full, rate)
	}
	td := core.SendRateTDOnly(p, pr.RTT, 2)
	if td <= rate {
		t.Errorf("TD-only %g should overestimate the window-limited rate %g", td, rate)
	}
}

// TestTimeoutsDominateWithSmallWindows reproduces the paper's Table II
// observation: with realistic (small) windows, timeouts form the majority
// of loss indications.
func TestTimeoutsDominateWithSmallWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 8, MinRTO: 1.0},
		Path:   netem.SymmetricPath(0.1, netem.NewBernoulli(0.05, sim.NewRNG(123))),
	}
	var eng sim.Engine
	c := NewConnection(&eng, cfg)
	res := c.Run(3000)
	if res.Stats.TimeoutEvents <= res.Stats.TDEvents {
		t.Errorf("timeouts (%d) should outnumber TD events (%d) with Wm=8 and 5%% loss",
			res.Stats.TimeoutEvents, res.Stats.TDEvents)
	}
}

// TestThroughputTracksModelT verifies the receiver-side rate against
// eq. (37) loosely.
func TestThroughputTracksModelT(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 12, MinRTO: 1.0},
		Path:   netem.SymmetricPath(0.05, netem.NewBernoulli(0.03, sim.NewRNG(321))),
	}
	var eng sim.Engine
	c := NewConnection(&eng, cfg)
	res := c.Run(3000)
	p := res.LossIndicationRate()
	srtt := c.Sender.Estimator().SRTT()
	pr := core.Params{RTT: srtt, T0: c.Sender.BaseRTO(), Wm: 12, B: 2}
	pred := core.Throughput(p, pr)
	got := res.Throughput()
	if ratio := got / pred; ratio < 0.5 || ratio > 2 {
		t.Errorf("throughput measured %g vs model %g (ratio %.2f)", got, pred, ratio)
	}
	if got > res.SendRate() {
		t.Error("throughput exceeded send rate")
	}
}

// TestMultiHopPathStillMatchesModel runs the sender over a three-hop path
// (loss concentrated at the middle hop, delay spread across all three):
// the model only sees (p, RTT, T0, Wm), so its fit must survive the
// topology change.
func TestMultiHopPathStillMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	var eng sim.Engine
	rng := sim.NewRNG(41)
	fwd := netem.NewMultiHop(&eng,
		netem.LinkConfig{Delay: netem.ConstantDelay(0.02)},
		netem.LinkConfig{Delay: netem.ConstantDelay(0.03), Loss: netem.NewBernoulli(0.02, rng)},
		netem.LinkConfig{Delay: netem.ConstantDelay(0.01)},
	)
	rev := netem.NewLink(&eng, netem.LinkConfig{Delay: netem.ConstantDelay(0.05)})
	snd := NewSender(&eng, fwd, SenderConfig{RWnd: 64, MinRTO: 1})
	rcv := NewReceiver(&eng, rev, snd.OnAck, ReceiverConfig{})
	snd.SetDeliver(rcv.OnPacket)
	snd.Start()
	eng.RunUntil(2000)
	snd.Stop()

	st := snd.Stats()
	sent := float64(st.TotalSent())
	p := float64(st.LossIndications()) / sent
	rate := sent / 2000
	pr := core.Params{RTT: snd.Estimator().SRTT(), T0: snd.BaseRTO(), Wm: 64, B: 2}
	pred := core.SendRateFull(p, pr)
	if ratio := rate / pred; ratio < 0.5 || ratio > 2 {
		t.Errorf("multi-hop measured %.1f vs model %.1f (ratio %.2f)", rate, pred, ratio)
	}
	if fwd.Stats().RandomDrops == 0 {
		t.Error("middle hop never dropped")
	}
}
