// Package reno implements a packet-level TCP Reno sender and receiver on
// top of the sim engine and netem links — the stand-in for the commercial
// TCP stacks (SunOS, Linux, Irix, ...) the paper measured.
//
// The implementation covers slow start, congestion avoidance, duplicate-ACK
// detection with fast retransmit, optional fast recovery (classic Reno) or
// Tahoe behavior, retransmission timeouts with exponential backoff capped
// at 64·T0, Karn's algorithm and Jacobson/Karels RTO estimation with a
// configurable coarse timer tick, delayed ACKs, and the receiver's
// advertised window. Per-OS quirks observed by the paper (Linux
// fast-retransmit after two duplicate ACKs, the Irix 2^5 backoff cap,
// SunOS Tahoe-derived behavior) are expressed as Variant presets.
//
// Sequence numbers count packets, matching the paper's packet-based model;
// every transmission is logged to a trace.Trace for the analysis package.
package reno

import "math"

// RTO estimation constants (Jacobson/Karels).
const (
	rttAlpha = 1.0 / 8 // SRTT gain
	rttBeta  = 1.0 / 4 // RTTVAR gain
)

// RTOEstimator tracks smoothed RTT and variance and derives the
// retransmission timeout, with optional coarse-clock quantization like the
// BSD 500 ms timer wheel that shapes the large T0 values in Table II.
type RTOEstimator struct {
	// MinRTO and MaxRTO clamp the computed timeout (seconds).
	MinRTO, MaxRTO float64
	// Tick, when positive, rounds the timeout up to a multiple of the
	// tick, emulating a coarse retransmission timer.
	Tick float64
	// InitialRTO is used before the first RTT sample (RFC 6298: 3 s).
	InitialRTO float64

	srtt   float64
	rttvar float64
	ok     bool
}

// NewRTOEstimator returns an estimator with the given clamps and tick and
// a 3-second initial RTO.
func NewRTOEstimator(minRTO, maxRTO, tick float64) *RTOEstimator {
	return &RTOEstimator{MinRTO: minRTO, MaxRTO: maxRTO, Tick: tick, InitialRTO: 3}
}

// Sample feeds one RTT measurement (seconds). Non-positive and NaN samples
// are ignored.
func (e *RTOEstimator) Sample(rtt float64) {
	if !(rtt > 0) || math.IsNaN(rtt) {
		return
	}
	if !e.ok {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.ok = true
		return
	}
	err := rtt - e.srtt
	e.rttvar = (1-rttBeta)*e.rttvar + rttBeta*math.Abs(err)
	e.srtt = (1-rttAlpha)*e.srtt + rttAlpha*rtt
}

// HasSample reports whether at least one RTT measurement was absorbed.
func (e *RTOEstimator) HasSample() bool { return e.ok }

// SRTT returns the smoothed RTT, or 0 before the first sample.
func (e *RTOEstimator) SRTT() float64 { return e.srtt }

// RTTVar returns the smoothed RTT deviation, or 0 before the first sample.
func (e *RTOEstimator) RTTVar() float64 { return e.rttvar }

// RTO returns the current base retransmission timeout (before exponential
// backoff): SRTT + 4·RTTVAR, clamped to [MinRTO, MaxRTO] and rounded up to
// the timer tick.
func (e *RTOEstimator) RTO() float64 {
	rto := e.InitialRTO
	if e.ok {
		rto = e.srtt + 4*e.rttvar
	}
	if rto < e.MinRTO {
		rto = e.MinRTO
	}
	if e.MaxRTO > 0 && rto > e.MaxRTO {
		rto = e.MaxRTO
	}
	if e.Tick > 0 {
		rto = math.Ceil(rto/e.Tick) * e.Tick
	}
	return rto
}

// Variant captures the per-OS protocol quirks the paper's trace-analysis
// programs had to account for (Section III and IV).
type Variant struct {
	// Name labels the variant in reports.
	Name string
	// DupThreshold is the number of duplicate ACKs that triggers fast
	// retransmit: 3 for standard Reno, 2 for the Linux stacks of the
	// paper's era.
	DupThreshold int
	// MaxBackoffExp caps the timeout backoff factor at 2^MaxBackoffExp:
	// 6 (64·T0) for standard Reno, 5 for the Irix stacks the paper
	// observed.
	MaxBackoffExp int
	// Tahoe, when set, disables fast recovery: after a fast retransmit
	// the window collapses to one and slow start follows (the paper
	// notes SunOS TCP is Tahoe-derived).
	Tahoe bool
	// NewReno, when set, keeps the sender in fast recovery across
	// partial ACKs (RFC 6582): each ACK that advances but does not
	// reach the recovery point triggers an immediate retransmission of
	// the next hole instead of waiting for three fresh duplicate ACKs
	// or an RTO. The paper predates NewReno's RFC and models plain
	// Reno; this variant exists for the fast-recovery ablation the
	// paper lists as future work.
	NewReno bool
}

// Standard protocol variants.
var (
	// Reno is standard 4.4BSD-style Reno.
	Reno = Variant{Name: "reno", DupThreshold: 3, MaxBackoffExp: 6}
	// Tahoe models Tahoe-derived stacks (SunOS 4.1.x): fast retransmit
	// without fast recovery.
	Tahoe = Variant{Name: "tahoe", DupThreshold: 3, MaxBackoffExp: 6, Tahoe: true}
	// Linux models the Linux 2.0.x stacks: fast retransmit after only
	// two duplicate ACKs.
	Linux = Variant{Name: "linux", DupThreshold: 2, MaxBackoffExp: 6}
	// Irix models the Irix 6.2 stacks: exponential backoff limited to
	// 2^5 instead of 2^6.
	Irix = Variant{Name: "irix", DupThreshold: 3, MaxBackoffExp: 5}
	// NewReno is Reno with RFC 6582 partial-ACK handling in fast
	// recovery — the fast-recovery refinement the paper lists as future
	// work.
	NewReno = Variant{Name: "newreno", DupThreshold: 3, MaxBackoffExp: 6, NewReno: true}
)

// normalize fills zero fields with Reno defaults so the zero Variant is
// usable.
func (v Variant) normalize() Variant {
	if v.DupThreshold <= 0 {
		v.DupThreshold = 3
	}
	if v.MaxBackoffExp <= 0 {
		v.MaxBackoffExp = 6
	}
	if v.Name == "" {
		v.Name = "reno"
	}
	return v
}
