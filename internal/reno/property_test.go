package reno

import (
	"math"
	"testing"
	"testing/quick"

	"pftk/internal/netem"
	"pftk/internal/sim"
	"pftk/internal/trace"
)

// TestQuickProtocolInvariants drives randomized connections and checks the
// invariants that must hold regardless of the loss pattern:
//
//   - the cumulative acknowledgment point never regresses,
//   - in-flight data never exceeds the advertised window,
//   - the trace is well formed and its packet count matches the counters,
//   - everything delivered in order is eventually bounded by what was
//     sent.
func TestQuickProtocolInvariants(t *testing.T) {
	f := func(seed uint64, dropPct, wndRaw, durRaw uint8) bool {
		drop := float64(dropPct%30) / 100
		wnd := int(wndRaw%30) + 2
		dur := float64(durRaw%60) + 20

		var eng sim.Engine
		cfg := ConnConfig{
			Sender: SenderConfig{RWnd: wnd, MinRTO: 0.5, Tick: 0.1},
			Path:   netem.SymmetricPath(0.05, netem.NewBernoulli(drop, sim.NewRNG(seed))),
		}
		c := NewConnection(&eng, cfg)
		c.Sender.Start()

		prevUna := uint64(0)
		deadline := dur
		for eng.Now() < deadline {
			if !eng.Step() {
				break
			}
			if c.Sender.una < prevUna {
				t.Logf("una regressed: %d -> %d", prevUna, c.Sender.una)
				return false
			}
			prevUna = c.Sender.una
			if f := c.Sender.InFlight(); f > wnd {
				t.Logf("flight %d > window %d", f, wnd)
				return false
			}
		}
		c.Sender.Stop()

		tr := c.Sender.Trace()
		if err := tr.Validate(); err != nil {
			t.Logf("trace invalid: %v", err)
			return false
		}
		st := c.Sender.Stats()
		if tr.PacketsSent() != st.TotalSent() {
			t.Logf("trace packets %d != stats %d", tr.PacketsSent(), st.TotalSent())
			return false
		}
		if int(c.Receiver.Delivered()) > st.PacketsSent {
			t.Logf("delivered %d > distinct sent %d", c.Receiver.Delivered(), st.PacketsSent)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickEventuallyDeliversUnderAnyScriptedLoss drops arbitrary (finite)
// packet sets and checks the protocol always recovers: every finite
// transfer completes once the loss script is exhausted.
func TestQuickEventuallyDeliversUnderAnyScriptedLoss(t *testing.T) {
	f := func(drops []uint16) bool {
		// Drop up to 40 of the first 200 offered packets.
		script := map[int]bool{}
		for i, d := range drops {
			if i >= 40 {
				break
			}
			script[int(d%200)] = true
		}
		drop := make([]int, 0, len(script))
		for d := range script {
			drop = append(drop, d)
		}
		cfg := ConnConfig{
			Sender: SenderConfig{RWnd: 8, MinRTO: 0.3, Tick: 0.1, TotalPackets: 150},
			Path:   netem.SymmetricPath(0.02, netem.NewScript(drop...)),
		}
		var eng sim.Engine
		c := NewConnection(&eng, cfg)
		_, done := c.RunUntilComplete(600)
		if !c.Sender.Complete() {
			t.Logf("transfer stuck with drops %v (done=%g)", drop, done)
			return false
		}
		return c.Receiver.Delivered() == 150
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAckPathLoss injects heavy loss on the *reverse* path: cumulative
// ACKs make TCP resilient to ACK loss, so the transfer must still
// complete, merely more slowly and with spurious retransmissions.
func TestAckPathLoss(t *testing.T) {
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 16, MinRTO: 0.5, Tick: 0.1, TotalPackets: 500},
		Path: netem.PathConfig{
			Forward: netem.LinkConfig{Delay: netem.ConstantDelay(0.05)},
			Reverse: netem.LinkConfig{
				Delay: netem.ConstantDelay(0.05),
				Loss:  netem.NewBernoulli(0.3, sim.NewRNG(5)),
			},
		},
	}
	var eng sim.Engine
	c := NewConnection(&eng, cfg)
	_, done := c.RunUntilComplete(600)
	if !c.Sender.Complete() {
		t.Fatalf("transfer did not survive 30%% ACK loss (delivered %d)", c.Receiver.Delivered())
	}
	if done >= 600 {
		t.Error("no completion time recorded")
	}
	// A lossless forward path means every original arrives; duplicates
	// can occur only via retransmission.
	if got := c.Receiver.Delivered(); got != 500 {
		t.Errorf("delivered %d, want 500", got)
	}
}

// TestBidirectionalLossStorm is the survival test: 15% loss in both
// directions plus a tiny window. The connection must keep making forward
// progress (no deadlock, no livelock).
func TestBidirectionalLossStorm(t *testing.T) {
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 4, MinRTO: 0.3, Tick: 0.1},
		Path: netem.PathConfig{
			Forward: netem.LinkConfig{
				Delay: netem.ConstantDelay(0.05),
				Loss:  netem.NewBernoulli(0.15, sim.NewRNG(7)),
			},
			Reverse: netem.LinkConfig{
				Delay: netem.ConstantDelay(0.05),
				Loss:  netem.NewBernoulli(0.15, sim.NewRNG(8)),
			},
		},
	}
	res := RunConnection(cfg, 1200)
	if res.Delivered < 100 {
		t.Errorf("only %d packets delivered in 1200s of bidirectional loss", res.Delivered)
	}
	if res.Stats.TimeoutEvents == 0 {
		t.Error("a loss storm without timeouts is implausible")
	}
}

// TestZeroDelayPath exercises the degenerate path with no propagation
// delay at all: events collapse onto single instants and the FIFO
// ordering of the engine must keep the protocol coherent.
func TestZeroDelayPath(t *testing.T) {
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 8, TotalPackets: 200},
		Path:   netem.PathConfig{}, // zero delay, infinite rate, no loss
	}
	var eng sim.Engine
	c := NewConnection(&eng, cfg)
	_, _ = c.RunUntilComplete(10)
	if !c.Sender.Complete() {
		t.Fatal("zero-delay transfer did not complete")
	}
	if c.Sender.Stats().Retransmits != 0 {
		t.Error("zero-delay lossless path retransmitted")
	}
}

// TestDuplicatedTraceKindsConsistent cross-checks the Val convention on
// retransmission records: Val=1 for timeout-driven, 0 for fast
// retransmits, and their counts match the stats.
func TestRetransmitFlavorsConsistent(t *testing.T) {
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 16, MinRTO: 0.5, Tick: 0.1},
		Path:   netem.SymmetricPath(0.05, netem.NewBernoulli(0.07, sim.NewRNG(11))),
	}
	res := RunConnection(cfg, 600)
	var fast, timeout int
	for _, r := range res.Trace.Kind(trace.KindRetransmit) {
		if r.Val == 1 {
			timeout++
		} else {
			fast++
		}
	}
	if fast != res.Stats.FastRetx {
		t.Errorf("trace fast retx %d != stats %d", fast, res.Stats.FastRetx)
	}
	if timeout != res.Stats.TimeoutRetx {
		t.Errorf("trace timeout retx %d != stats %d", timeout, res.Stats.TimeoutRetx)
	}
}

// TestAckPacingSmoothsSender rate-limits the *reverse* path: ACKs are
// serialized through the slow link and arrive evenly spaced, which paces
// the ACK-clocked sender. The coefficient of variation of inter-send gaps
// must drop relative to an unconstrained reverse path, where ACKs (and
// hence sends) arrive in window-sized clumps — the ACK-clocking dynamics
// beneath the paper's rounds abstraction.
func TestAckPacingSmoothsSender(t *testing.T) {
	gapCV := func(reverse netem.LinkConfig) float64 {
		cfg := ConnConfig{
			Sender: SenderConfig{RWnd: 32, MinRTO: 1},
			Path: netem.PathConfig{
				Forward: netem.LinkConfig{Delay: netem.ConstantDelay(0.05)},
				Reverse: reverse,
			},
		}
		res := RunConnection(cfg, 300)
		var gaps []float64
		last := -1.0
		for _, r := range res.Trace {
			if r.Kind != trace.KindSend {
				continue
			}
			if last >= 0 {
				gaps = append(gaps, r.Time-last)
			}
			last = r.Time
		}
		if len(gaps) < 100 {
			t.Fatalf("only %d send gaps", len(gaps))
		}
		mean := 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		varsum := 0.0
		for _, g := range gaps {
			varsum += (g - mean) * (g - mean)
		}
		return math.Sqrt(varsum/float64(len(gaps))) / mean
	}
	clumped := gapCV(netem.LinkConfig{Delay: netem.ConstantDelay(0.05)})
	// Reverse path just above the ACK rate: ACKs serialize and space out.
	paced := gapCV(netem.LinkConfig{Rate: 200, QueueCap: 64, Delay: netem.ConstantDelay(0.05)})
	t.Logf("inter-send gap CV: unconstrained %.2f, ACK-paced %.2f", clumped, paced)
	if paced >= clumped {
		t.Errorf("ACK pacing should smooth the sender: %.2f >= %.2f", paced, clumped)
	}
}
