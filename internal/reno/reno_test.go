package reno

import (
	"math"
	"testing"

	"pftk/internal/netem"
	"pftk/internal/pkt"
	"pftk/internal/sim"
	"pftk/internal/trace"
)

// testConn builds a connection over a clean constant-delay path with the
// given forward loss model.
func testConn(t *testing.T, loss netem.LossModel, scfg SenderConfig, rcfg ReceiverConfig) (*sim.Engine, *Connection) {
	t.Helper()
	var eng sim.Engine
	cfg := ConnConfig{
		Sender:   scfg,
		Receiver: rcfg,
		Path:     netem.SymmetricPath(0.05, loss), // RTT = 0.1 s
	}
	return &eng, NewConnection(&eng, cfg)
}

func TestLosslessTransferDeliversInOrder(t *testing.T) {
	eng, c := testConn(t, nil, SenderConfig{RWnd: 8}, ReceiverConfig{})
	_ = eng
	res := c.Run(30)
	if res.Stats.Retransmits != 0 {
		t.Errorf("lossless run retransmitted %d packets", res.Stats.Retransmits)
	}
	if res.Stats.TimeoutEvents != 0 || res.Stats.TDEvents != 0 {
		t.Errorf("lossless run saw loss indications: %+v", res.Stats)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Everything sent should eventually be delivered (minus in-flight
	// tail at cutoff).
	if diff := res.Stats.PacketsSent - int(res.Delivered); diff < 0 || diff > 16 {
		t.Errorf("sent %d vs delivered %d", res.Stats.PacketsSent, res.Delivered)
	}
}

func TestLosslessRateApproachesWindowCeiling(t *testing.T) {
	// Wm = 8, RTT = 0.1 s: ceiling = 80 pkts/s. A saturated lossless
	// sender should reach most of it (slow start consumes a little).
	eng, c := testConn(t, nil, SenderConfig{RWnd: 8}, ReceiverConfig{})
	_ = eng
	res := c.Run(60)
	ceiling := 8 / 0.1
	if r := res.SendRate(); r < 0.8*ceiling || r > 1.05*ceiling {
		t.Errorf("send rate %g, want near ceiling %g", r, ceiling)
	}
}

func TestWindowNeverExceedsAdvertised(t *testing.T) {
	eng, c := testConn(t, nil, SenderConfig{RWnd: 5}, ReceiverConfig{})
	// Snoop flight size after every event by interleaving RunUntil.
	c.Sender.Start()
	for i := 0; i < 2000; i++ {
		eng.Step()
		if f := c.Sender.InFlight(); f > 5 {
			t.Fatalf("in flight %d exceeds advertised window 5", f)
		}
	}
	c.Sender.Stop()
}

func TestSlowStartDoublesPerRound(t *testing.T) {
	eng, c := testConn(t, nil, SenderConfig{RWnd: 64, TraceCwnd: true}, ReceiverConfig{AckEvery: 1})
	c.Sender.Start()
	eng.RunUntil(0.95) // ~9 RTTs of 0.1 s
	c.Sender.Stop()
	// With per-packet ACKs, slow start doubles cwnd every RTT; after ~9
	// rounds cwnd should have hit the advertised window.
	if w := c.Sender.Cwnd(); w < 32 {
		t.Errorf("cwnd after slow start = %g, want >= 32", w)
	}
}

func TestCongestionAvoidanceLinearGrowth(t *testing.T) {
	// Start above ssthresh: growth should be ~1/b packets per RTT.
	scfg := SenderConfig{RWnd: 400, InitialCwnd: 20, InitialSsthresh: 2}
	eng, c := testConn(t, nil, scfg, ReceiverConfig{AckEvery: 2})
	c.Sender.Start()
	eng.RunUntil(0.3) // let it settle into CA
	w0 := c.Sender.Cwnd()
	rounds := 40.0
	eng.RunUntil(0.3 + rounds*0.1)
	c.Sender.Stop()
	growth := (c.Sender.Cwnd() - w0) / rounds // packets per RTT
	if growth < 0.3 || growth > 0.7 {
		t.Errorf("CA growth = %g pkts/RTT, want ~0.5 (1/b with b=2)", growth)
	}
}

func TestFastRetransmitOnThirdDupAck(t *testing.T) {
	// Drop a single packet once the window is comfortably above 4 so
	// three dupacks arrive.
	scfg := SenderConfig{RWnd: 32, InitialCwnd: 10, InitialSsthresh: 10}
	eng, c := testConn(t, netem.NewScript(5), scfg, ReceiverConfig{AckEvery: 1})
	_ = eng
	res := c.Run(5)
	if res.Stats.TDEvents != 1 {
		t.Errorf("TD events = %d, want exactly 1", res.Stats.TDEvents)
	}
	if res.Stats.FastRetx != 1 {
		t.Errorf("fast retransmits = %d, want 1", res.Stats.FastRetx)
	}
	if res.Stats.TimeoutEvents != 0 {
		t.Errorf("timeouts = %d, want 0 (loss should be repaired by fast retx)", res.Stats.TimeoutEvents)
	}
	// All data eventually delivered.
	if res.Delivered == 0 || res.Stats.PacketsSent-int(res.Delivered) > 40 {
		t.Errorf("delivered %d of %d", res.Delivered, res.Stats.PacketsSent)
	}
}

func TestFastRetransmitHalvesWindow(t *testing.T) {
	scfg := SenderConfig{RWnd: 64, InitialCwnd: 16, InitialSsthresh: 16, TraceCwnd: true}
	eng, c := testConn(t, netem.NewScript(20), scfg, ReceiverConfig{AckEvery: 1})
	c.Sender.Start()
	for eng.Step() {
		if c.Sender.Stats().TDEvents > 0 {
			break
		}
	}
	if c.Sender.Stats().TDEvents != 1 {
		t.Fatal("no TD event observed")
	}
	// Let recovery complete (a couple of RTTs), then check the window
	// deflated to about half its value at the loss — before additive
	// growth has had time to rebuild it.
	eng.RunUntil(eng.Now() + 0.5)
	c.Sender.Stop()
	if w := c.Sender.Cwnd(); w < 6 || w > 32 {
		t.Errorf("cwnd after fast recovery = %g, want roughly halved", w)
	}
}

func TestLinuxVariantRetransmitsOnSecondDupAck(t *testing.T) {
	// With exactly 2 packets following the loss in flight, standard
	// Reno cannot fast-retransmit but the Linux variant can.
	// Window of 4: drop packet index 10; in-flight afterwards yields 3
	// dupacks for Reno threshold, so instead use window 3 -> 2 dupacks.
	mk := func(v Variant) SenderStats {
		scfg := SenderConfig{Variant: v, RWnd: 3, InitialCwnd: 3, InitialSsthresh: 1}
		eng, c := testConn(t, netem.NewScript(10), scfg, ReceiverConfig{AckEvery: 1})
		_ = eng
		return c.Run(20).Stats
	}
	linux := mk(Linux)
	std := mk(Reno)
	if linux.TDEvents != 1 {
		t.Errorf("linux TD events = %d, want 1 (fast retx after 2 dupacks)", linux.TDEvents)
	}
	if std.TDEvents != 0 {
		t.Errorf("reno TD events = %d, want 0 (only 2 dupacks available)", std.TDEvents)
	}
	if std.TimeoutEvents == 0 {
		t.Error("reno should have recovered via timeout")
	}
}

func TestTimeoutWhenWindowTooSmallForDupAcks(t *testing.T) {
	// Window of 2: a loss can never generate 3 dupacks -> timeout. This
	// is exactly the w <= 3 => Q̂ = 1 regime of eq. (22).
	scfg := SenderConfig{RWnd: 2, MinRTO: 0.4, Tick: 0.1}
	eng, c := testConn(t, netem.NewScript(6), scfg, ReceiverConfig{AckEvery: 1})
	_ = eng
	res := c.Run(30)
	if res.Stats.TDEvents != 0 {
		t.Errorf("TD events = %d, want 0 with window 2", res.Stats.TDEvents)
	}
	if res.Stats.TimeoutEvents < 1 {
		t.Error("expected at least one timeout")
	}
	if res.Delivered == 0 {
		t.Error("connection did not recover from timeout")
	}
}

func TestTimeoutCollapsesWindowToOne(t *testing.T) {
	scfg := SenderConfig{RWnd: 2, MinRTO: 0.4, Tick: 0.1, TraceCwnd: true}
	eng, c := testConn(t, netem.NewScript(6), scfg, ReceiverConfig{AckEvery: 1})
	c.Sender.Start()
	// Run until just after the first timeout fires.
	for eng.Step() {
		if c.Sender.Stats().TimeoutEvents > 0 {
			break
		}
	}
	if w := c.Sender.Cwnd(); w != 1 {
		t.Errorf("cwnd after timeout = %g, want 1", w)
	}
	c.Sender.Stop()
}

func TestExponentialBackoffDoublesAndCaps(t *testing.T) {
	// Cut the wire entirely after the first packets: every retransmit
	// is lost, so timeouts must double up to the 2^6 cap.
	var eng sim.Engine
	blackhole := &netem.Periodic{N: 1} // drop everything
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 4, MinRTO: 0.5, Tick: 0},
		Path: netem.PathConfig{
			Forward: netem.LinkConfig{Delay: netem.ConstantDelay(0.05), Loss: blackhole},
			Reverse: netem.LinkConfig{Delay: netem.ConstantDelay(0.05)},
		},
	}
	c := NewConnection(&eng, cfg)
	c.Sender.Start()
	var fireTimes []float64
	for eng.Now() < 1300 {
		before := c.Sender.Stats().TimeoutEvents
		if !eng.Step() {
			break
		}
		if c.Sender.Stats().TimeoutEvents > before {
			fireTimes = append(fireTimes, eng.Now())
		}
	}
	c.Sender.Stop()
	if len(fireTimes) < 10 {
		t.Fatalf("only %d timeouts fired", len(fireTimes))
	}
	var gaps []float64
	for i := 1; i < len(fireTimes); i++ {
		gaps = append(gaps, fireTimes[i]-fireTimes[i-1])
	}
	// The first fire happens after T0, so gaps[0] is already the
	// doubled timeout 2*T0. Subsequent gaps double until the 64*T0 cap,
	// i.e. 32*gaps[0].
	base := gaps[0]
	cap64 := 32 * base
	for i := 1; i < len(gaps); i++ {
		want := base * math.Pow(2, float64(i))
		if want > cap64 {
			want = cap64
		}
		if math.Abs(gaps[i]-want)/want > 0.05 {
			t.Errorf("gap %d = %g, want ~%g", i, gaps[i], want)
		}
	}
	if math.Abs(gaps[len(gaps)-1]-cap64)/cap64 > 0.05 {
		t.Errorf("final gap %g, want saturated at %g", gaps[len(gaps)-1], cap64)
	}
}

func TestIrixBackoffCap(t *testing.T) {
	var eng sim.Engine
	cfg := ConnConfig{
		Sender: SenderConfig{Variant: Irix, RWnd: 4, MinRTO: 0.5},
		Path: netem.PathConfig{
			Forward: netem.LinkConfig{Delay: netem.ConstantDelay(0.05), Loss: &netem.Periodic{N: 1}},
			Reverse: netem.LinkConfig{Delay: netem.ConstantDelay(0.05)},
		},
	}
	c := NewConnection(&eng, cfg)
	c.Sender.Start()
	var fireTimes []float64
	for eng.Now() < 700 {
		before := c.Sender.Stats().TimeoutEvents
		if !eng.Step() {
			break
		}
		if c.Sender.Stats().TimeoutEvents > before {
			fireTimes = append(fireTimes, eng.Now())
		}
	}
	c.Sender.Stop()
	if len(fireTimes) < 10 {
		t.Fatalf("only %d timeouts", len(fireTimes))
	}
	// fireTimes[1]-fireTimes[0] is 2*T0; the Irix cap is 32*T0, i.e.
	// 16x the first gap.
	base := fireTimes[1] - fireTimes[0]
	last := fireTimes[len(fireTimes)-1] - fireTimes[len(fireTimes)-2]
	if math.Abs(last-16*base)/(16*base) > 0.05 {
		t.Errorf("Irix saturated gap = %g, want 16*first gap = %g", last, 16*base)
	}
}

func TestBackoffResetAfterNewAck(t *testing.T) {
	// A timeout doubling must reset once fresh data is acknowledged.
	scfg := SenderConfig{RWnd: 2, MinRTO: 0.4}
	eng, c := testConn(t, netem.NewScript(4, 5, 10), scfg, ReceiverConfig{AckEvery: 1})
	c.Sender.Start()
	eng.RunUntil(60)
	c.Sender.Stop()
	st := c.Sender.Stats()
	if st.TimeoutEvents == 0 {
		t.Fatal("no timeouts")
	}
	// All timeouts after recovery should be "single" (backoff exponent
	// 0) since losses are isolated.
	if st.TimeoutsByBackoff[0] < 2 {
		t.Errorf("backoff histogram %v: want at least two single timeouts", st.TimeoutsByBackoff[:4])
	}
}

func TestTahoeCollapsesOnFastRetransmit(t *testing.T) {
	scfg := SenderConfig{Variant: Tahoe, RWnd: 32, InitialCwnd: 12, InitialSsthresh: 12, TraceCwnd: true}
	eng, c := testConn(t, netem.NewScript(15), scfg, ReceiverConfig{AckEvery: 1})
	c.Sender.Start()
	for eng.Step() {
		if c.Sender.Stats().TDEvents > 0 {
			break
		}
	}
	if w := c.Sender.Cwnd(); w != 1 {
		t.Errorf("Tahoe cwnd after TD = %g, want 1", w)
	}
	c.Sender.Stop()
}

func TestKarnNoSampleFromRetransmission(t *testing.T) {
	// Force a retransmission of the timed segment and check that no
	// RTT sample with absurd value is absorbed. With a 0.1 s path RTT,
	// every valid sample is ~0.1 s; a Karn violation would feed in a
	// sample including the RTO wait.
	scfg := SenderConfig{RWnd: 2, MinRTO: 0.4}
	eng, c := testConn(t, netem.NewScript(2), scfg, ReceiverConfig{AckEvery: 1})
	_ = eng
	res := c.Run(30)
	for _, r := range res.Trace.Kind(trace.KindRoundSample) {
		if r.Val > 0.35 {
			t.Errorf("RTT sample %g leaked through a retransmission (Karn violation)", r.Val)
		}
	}
	if res.Stats.RTTSamples == 0 {
		t.Error("no RTT samples at all")
	}
}

func TestDelayedAckRoughlyHalvesAcks(t *testing.T) {
	eng, c := testConn(t, nil, SenderConfig{RWnd: 16}, ReceiverConfig{AckEvery: 2})
	_ = eng
	res := c.Run(30)
	ratio := float64(res.Stats.AcksReceived) / float64(res.Delivered)
	if ratio < 0.4 || ratio > 0.7 {
		t.Errorf("acks/packets = %g, want ~0.5 with delayed ACKs", ratio)
	}
}

func TestAckEveryOneAcksEachPacket(t *testing.T) {
	eng, c := testConn(t, nil, SenderConfig{RWnd: 16}, ReceiverConfig{AckEvery: 1})
	_ = eng
	res := c.Run(10)
	ratio := float64(res.Stats.AcksReceived) / float64(res.Delivered)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("acks/packets = %g, want ~1", ratio)
	}
}

func TestReceiverFillsHoles(t *testing.T) {
	var eng sim.Engine
	var acks []uint64
	rcv := NewReceiver(&eng, netem.NewLink(&eng, netem.LinkConfig{}), func(p pkt.Packet) {
		acks = append(acks, p.Seq)
	}, ReceiverConfig{AckEvery: 1})
	for _, seq := range []uint64{1, 3, 4, 2, 5} {
		rcv.OnPacket(pkt.Packet{Seq: seq})
		eng.Run()
	}
	if rcv.Delivered() != 5 {
		t.Errorf("delivered = %d, want 5", rcv.Delivered())
	}
	// ACKs: 2 (in order), 2 (dup), 2 (dup), 5 (hole filled), 6.
	want := []uint64{2, 2, 2, 5, 6}
	if len(acks) != len(want) {
		t.Fatalf("acks = %v, want %v", acks, want)
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Errorf("ack %d = %d, want %d", i, acks[i], want[i])
		}
	}
}

func TestReceiverCountsDuplicates(t *testing.T) {
	var eng sim.Engine
	rcv := NewReceiver(&eng, netem.NewLink(&eng, netem.LinkConfig{}), func(pkt.Packet) {}, ReceiverConfig{AckEvery: 1})
	rcv.OnPacket(pkt.Packet{Seq: 1})
	rcv.OnPacket(pkt.Packet{Seq: 1})
	rcv.OnPacket(pkt.Packet{Seq: 3})
	rcv.OnPacket(pkt.Packet{Seq: 3})
	eng.Run()
	if rcv.Duplicates() != 2 {
		t.Errorf("duplicates = %d, want 2", rcv.Duplicates())
	}
	if rcv.Received() != 4 {
		t.Errorf("received = %d, want 4", rcv.Received())
	}
}

func TestReceiverIgnoresCrossTraffic(t *testing.T) {
	var eng sim.Engine
	rcv := NewReceiver(&eng, netem.NewLink(&eng, netem.LinkConfig{}), func(pkt.Packet) {}, ReceiverConfig{})
	rcv.OnPacket(pkt.Packet{Kind: pkt.Cross}) // non-data payload
	if rcv.Received() != 0 {
		t.Error("cross traffic should not count as received data")
	}
}

func TestTraceIsValidAndOrdered(t *testing.T) {
	eng, c := testConn(t, netem.NewBernoulli(0.02, sim.NewRNG(1)), SenderConfig{RWnd: 16}, ReceiverConfig{})
	_ = eng
	res := c.Run(120)
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if res.Trace.PacketsSent() != res.Stats.TotalSent() {
		t.Errorf("trace packet count %d != stats %d", res.Trace.PacketsSent(), res.Stats.TotalSent())
	}
	if got := res.Trace.Count(trace.KindTimeoutFired); got != res.Stats.TimeoutEvents {
		t.Errorf("trace timeouts %d != stats %d", got, res.Stats.TimeoutEvents)
	}
	if got := res.Trace.Count(trace.KindTDIndication); got != res.Stats.TDEvents {
		t.Errorf("trace TDs %d != stats %d", got, res.Stats.TDEvents)
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Duration: 10, Stats: SenderStats{PacketsSent: 90, Retransmits: 10, TDEvents: 3, TimeoutEvents: 2}, Delivered: 85}
	if r.SendRate() != 10 {
		t.Errorf("SendRate = %g, want 10", r.SendRate())
	}
	if r.Throughput() != 8.5 {
		t.Errorf("Throughput = %g, want 8.5", r.Throughput())
	}
	if got := r.LossIndicationRate(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("LossIndicationRate = %g, want 0.05", got)
	}
	var zero Result
	if zero.SendRate() != 0 || zero.Throughput() != 0 || zero.LossIndicationRate() != 0 {
		t.Error("zero Result should report zero rates")
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

func TestThroughputNeverExceedsSendRate(t *testing.T) {
	for _, p := range []float64{0.01, 0.05, 0.15} {
		eng, c := testConn(t, netem.NewBernoulli(p, sim.NewRNG(uint64(p*1000))), SenderConfig{RWnd: 20}, ReceiverConfig{})
		_ = eng
		res := c.Run(300)
		if res.Throughput() > res.SendRate() {
			t.Errorf("p=%g: throughput %g exceeds send rate %g", p, res.Throughput(), res.SendRate())
		}
	}
}

func TestSenderStopsCleanly(t *testing.T) {
	eng, c := testConn(t, nil, SenderConfig{RWnd: 8}, ReceiverConfig{})
	res := c.Run(5)
	sent := res.Stats.TotalSent()
	// Draining the engine after Stop must not transmit more data.
	eng.Run()
	if c.Sender.Stats().TotalSent() != sent {
		t.Error("sender transmitted after Stop")
	}
}

func TestRunConnectionConvenience(t *testing.T) {
	res := RunConnection(ConnConfig{
		Sender: SenderConfig{RWnd: 8},
		Path:   netem.SymmetricPath(0.05, nil),
	}, 10)
	if res.Stats.TotalSent() == 0 || res.Delivered == 0 {
		t.Errorf("convenience run produced nothing: %v", res)
	}
}
