package reno

import (
	"pftk/internal/netem"
	"pftk/internal/sim"
)

// Packet is one data segment, numbered in packets from 1.
type Packet struct {
	Seq uint64
	// Retx marks retransmissions (diagnostic only; receivers do not see
	// this bit on a real wire and the receiver logic never reads it).
	Retx bool
}

// AckPacket is a cumulative acknowledgment: every packet with Seq < Ack
// has been received.
type AckPacket struct {
	Ack uint64
}

// ReceiverConfig controls receiver behavior.
type ReceiverConfig struct {
	// AckEvery is the paper's b: a cumulative ACK is generated for every
	// AckEvery in-order packets (2 emulates delayed ACKs, 1 acks every
	// packet). Values < 1 default to 2.
	AckEvery int
	// DelAckTimeout flushes a holding delayed ACK after this many
	// seconds. Zero defaults to the classic 200 ms heartbeat; negative
	// disables the timer entirely (a sender with a one-packet window
	// then recovers only via RTO, so disable it in tests only).
	DelAckTimeout float64
}

func (c ReceiverConfig) normalize() ReceiverConfig {
	if c.AckEvery < 1 {
		c.AckEvery = 2
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = 0.2
	}
	return c
}

// Receiver consumes packets from the forward link and produces cumulative
// (possibly delayed) ACKs on the reverse link. Out-of-order arrivals are
// acknowledged immediately, generating the duplicate ACKs that drive fast
// retransmit — "these ACKs are not delayed" (Section II-B).
type Receiver struct {
	cfg      ReceiverConfig
	eng      *sim.Engine
	reverse  *netem.Link
	toSender func(any)

	rcvNext uint64 // next in-order packet expected
	buffer  map[uint64]bool
	pending int // in-order packets not yet acknowledged
	// delTimer is a reusable delayed-ACK heartbeat; rearming allocates
	// nothing (the callback is captured once in NewReceiver).
	delTimer *sim.Timer

	received   int // total packets observed, including duplicates
	duplicates int // packets at or below rcvNext seen again
	acksSent   int
}

// NewReceiver builds a receiver that sends its ACKs over reverse and
// delivers them to the sender via toSender.
func NewReceiver(eng *sim.Engine, reverse *netem.Link, toSender func(any), cfg ReceiverConfig) *Receiver {
	r := &Receiver{
		cfg:      cfg.normalize(),
		eng:      eng,
		reverse:  reverse,
		toSender: toSender,
		rcvNext:  1,
		buffer:   make(map[uint64]bool),
	}
	r.delTimer = eng.NewTimer(func() {
		if r.pending > 0 {
			r.sendAck()
		}
	})
	return r
}

// Delivered returns the number of distinct packets delivered in order —
// the receiver-side count behind the paper's throughput T(p).
func (r *Receiver) Delivered() uint64 { return r.rcvNext - 1 }

// Received returns the total packets that arrived, including duplicates
// and out-of-order packets.
func (r *Receiver) Received() int { return r.received }

// Duplicates returns the number of arrivals the receiver had already seen.
func (r *Receiver) Duplicates() int { return r.duplicates }

// AcksSent returns the number of ACK packets emitted.
func (r *Receiver) AcksSent() int { return r.acksSent }

// OnPacket handles one arriving data packet. Pass it as the forward link's
// delivery callback.
func (r *Receiver) OnPacket(payload any) {
	pkt, ok := payload.(Packet)
	if !ok {
		return // cross traffic shares the link; ignore it
	}
	r.received++
	switch {
	case pkt.Seq == r.rcvNext:
		r.rcvNext++
		for len(r.buffer) > 0 && r.buffer[r.rcvNext] {
			delete(r.buffer, r.rcvNext)
			r.rcvNext++
		}
		r.pending++
		if r.pending >= r.cfg.AckEvery || len(r.buffer) > 0 {
			// Ack immediately at the delayed-ACK quota, or when the
			// arrival fills a hole (fast-retransmit recovery wants
			// prompt cumulative ACKs).
			r.sendAck()
		} else if r.cfg.DelAckTimeout > 0 && !r.delTimer.Pending() {
			r.delTimer.Reset(r.cfg.DelAckTimeout)
		}
	case pkt.Seq > r.rcvNext:
		// Out of order: buffer and emit an immediate duplicate ACK.
		if !r.buffer[pkt.Seq] {
			r.buffer[pkt.Seq] = true
		} else {
			r.duplicates++
		}
		r.sendAck()
	default:
		// Below rcvNext: a retransmission of data already received.
		r.duplicates++
		r.sendAck()
	}
}

// sendAck emits the current cumulative acknowledgment.
func (r *Receiver) sendAck() {
	r.delTimer.Stop()
	r.pending = 0
	r.acksSent++
	r.reverse.Send(AckPacket{Ack: r.rcvNext}, r.toSender)
}
