package reno

import (
	"pftk/internal/netem"
	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// ReceiverConfig controls receiver behavior.
type ReceiverConfig struct {
	// AckEvery is the paper's b: a cumulative ACK is generated for every
	// AckEvery in-order packets (2 emulates delayed ACKs, 1 acks every
	// packet). Values < 1 default to 2.
	AckEvery int
	// DelAckTimeout flushes a holding delayed ACK after this many
	// seconds. Zero defaults to the classic 200 ms heartbeat; negative
	// disables the timer entirely (a sender with a one-packet window
	// then recovers only via RTO, so disable it in tests only).
	DelAckTimeout float64
	// FlowID stamps outgoing ACKs so per-flow link counters attribute
	// them when several flows share a reverse link. Single-flow runs
	// leave it 0.
	FlowID int32
}

func (c ReceiverConfig) normalize() ReceiverConfig {
	if c.AckEvery < 1 {
		c.AckEvery = 2
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = 0.2
	}
	return c
}

// Receiver consumes packets from the forward link and produces cumulative
// (possibly delayed) ACKs on the reverse link. Out-of-order arrivals are
// acknowledged immediately, generating the duplicate ACKs that drive fast
// retransmit — "these ACKs are not delayed" (Section II-B).
type Receiver struct {
	cfg      ReceiverConfig
	eng      *sim.Engine
	reverse  *netem.Link
	toSender func(pkt.Packet)

	rcvNext uint64 // next in-order packet expected
	buffer  map[uint64]bool
	pending int // in-order packets not yet acknowledged
	// delTimer is a reusable delayed-ACK heartbeat; rearming allocates
	// nothing (the callback is captured once in NewReceiver).
	delTimer *sim.Timer

	received   int // total packets observed, including duplicates
	duplicates int // packets at or below rcvNext seen again
	acksSent   int
}

// NewReceiver builds a receiver that sends its ACKs over reverse and
// delivers them to the sender via toSender.
func NewReceiver(eng *sim.Engine, reverse *netem.Link, toSender func(pkt.Packet), cfg ReceiverConfig) *Receiver {
	r := &Receiver{
		cfg:      cfg.normalize(),
		eng:      eng,
		reverse:  reverse,
		toSender: toSender,
		rcvNext:  1,
		buffer:   make(map[uint64]bool),
	}
	r.delTimer = eng.NewTimer(func() {
		if r.pending > 0 {
			r.sendAck()
		}
	})
	return r
}

// Delivered returns the number of distinct packets delivered in order —
// the receiver-side count behind the paper's throughput T(p).
func (r *Receiver) Delivered() uint64 { return r.rcvNext - 1 }

// Received returns the total packets that arrived, including duplicates
// and out-of-order packets.
func (r *Receiver) Received() int { return r.received }

// Duplicates returns the number of arrivals the receiver had already seen.
func (r *Receiver) Duplicates() int { return r.duplicates }

// AcksSent returns the number of ACK packets emitted.
func (r *Receiver) AcksSent() int { return r.acksSent }

// OnPacket handles one arriving data packet. Pass it as the forward link's
// delivery callback. Packets of other kinds (cross traffic, other
// protocols sharing the link) are ignored, as are data packets stamped
// with another flow's ID.
//
//pftk:hotpath
func (r *Receiver) OnPacket(p pkt.Packet) {
	if p.Kind != pkt.Data || p.Flow != r.cfg.FlowID {
		return // the link is shared; this packet is not ours
	}
	r.received++
	switch {
	case p.Seq == r.rcvNext:
		r.rcvNext++
		for len(r.buffer) > 0 && r.buffer[r.rcvNext] {
			delete(r.buffer, r.rcvNext)
			r.rcvNext++
		}
		r.pending++
		if r.pending >= r.cfg.AckEvery || len(r.buffer) > 0 {
			// Ack immediately at the delayed-ACK quota, or when the
			// arrival fills a hole (fast-retransmit recovery wants
			// prompt cumulative ACKs).
			r.sendAck()
		} else if r.cfg.DelAckTimeout > 0 && !r.delTimer.Pending() {
			r.delTimer.Reset(r.cfg.DelAckTimeout)
		}
	case p.Seq > r.rcvNext:
		// Out of order: buffer and emit an immediate duplicate ACK.
		if !r.buffer[p.Seq] {
			r.buffer[p.Seq] = true
		} else {
			r.duplicates++
		}
		r.sendAck()
	default:
		// Below rcvNext: a retransmission of data already received.
		r.duplicates++
		r.sendAck()
	}
}

// sendAck emits the current cumulative acknowledgment.
//
//pftk:hotpath
func (r *Receiver) sendAck() {
	r.delTimer.Stop()
	r.pending = 0
	r.acksSent++
	r.reverse.Send(pkt.Packet{Seq: r.rcvNext, Kind: pkt.Ack, Flow: r.cfg.FlowID}, r.toSender)
}
