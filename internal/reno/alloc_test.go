package reno

import (
	"testing"

	"pftk/internal/netem"
	"pftk/internal/sim"
)

// TestPacketPathZeroAlloc pins the monomorphized packet path: once the
// connection is warm (event pool grown, timers allocated, trace buffer
// chunked), advancing the simulation allocates nothing per packet —
// data packets and ACKs ride typed pkt.Packet slots in the event arena,
// never the heap. Amortized trace-chunk growth is the only tolerated
// residue, hence the < 1 alloc-per-simulated-second bound (the boxed
// path cost ~57 allocs per simulated second at this operating point).
func TestPacketPathZeroAlloc(t *testing.T) {
	var eng sim.Engine
	loss := netem.NewBernoulli(0.02, sim.NewRNG(3))
	conn := NewConnection(&eng, ConnConfig{
		Sender: SenderConfig{RWnd: 32, MinRTO: 1},
		Path:   netem.SymmetricPath(0.05, loss),
	})
	conn.Sender.Start()
	deadline := 30.0
	eng.RunUntil(deadline)

	allocs := testing.AllocsPerRun(50, func() {
		deadline++
		eng.RunUntil(deadline)
	})
	if allocs >= 1 {
		t.Errorf("packet path allocates %.2f times per simulated second, want < 1 (amortized trace growth only)", allocs)
	}
}
