package reno

import (
	"testing"

	"pftk/internal/netem"
	"pftk/internal/obs"
	"pftk/internal/sim"
)

// metricsRun drives one lossy bulk transfer with a live registry.
func metricsRun(t *testing.T, reg *obs.Registry) Result {
	t.Helper()
	cfg := ConnConfig{
		Sender: SenderConfig{RWnd: 16, MinRTO: 1.0, Metrics: NewMetrics(reg)},
		Path:   netem.SymmetricPath(0.05, netem.NewBernoulli(0.05, sim.NewRNG(11))),
	}
	cfg.Path.Forward.Metrics = netem.NewLinkMetrics(reg, "netem.fwd")
	cfg.Path.Reverse.Metrics = netem.NewLinkMetrics(reg, "netem.rev")
	var eng sim.Engine
	return NewConnection(&eng, cfg).Run(400)
}

// TestSenderMetricsMatchStats pins the reconciliation contract: every
// obs counter equals the sender's ground-truth SenderStats counterpart.
func TestSenderMetricsMatchStats(t *testing.T) {
	reg := obs.New()
	res := metricsRun(t, reg)
	snap := reg.Snapshot()
	st := res.Stats

	if st.TDEvents == 0 || st.TimeoutEvents == 0 {
		t.Fatalf("run must exercise both loss-indication kinds: %+v", st)
	}
	if got := snap.Counter("reno.indications.td"); got != uint64(st.TDEvents) {
		t.Errorf("td counter = %d, stats = %d", got, st.TDEvents)
	}
	if got := snap.Counter("reno.timeouts.fired"); got != uint64(st.TimeoutEvents) {
		t.Errorf("timeout fires = %d, stats = %d", got, st.TimeoutEvents)
	}
	if got := snap.Counter("reno.timeouts.sequences"); got != uint64(st.TimeoutsByBackoff[0]) {
		t.Errorf("timeout sequences = %d, depth-0 fires = %d", got, st.TimeoutsByBackoff[0])
	}
	if got := snap.Counter("reno.acks"); got != uint64(st.AcksReceived) {
		t.Errorf("acks = %d, stats = %d", got, st.AcksReceived)
	}
	bh := snap.Histograms["reno.timeouts.backoff"]
	if bh.Count != uint64(st.TimeoutEvents) {
		t.Errorf("backoff histogram count = %d, fires = %d", bh.Count, st.TimeoutEvents)
	}
	// Bucket k of the backoff histogram is exactly TimeoutsByBackoff[k]
	// for the uncapped depths.
	for k := 0; k < 5; k++ {
		if bh.Counts[k] != uint64(st.TimeoutsByBackoff[k]) {
			t.Errorf("backoff bucket %d = %d, stats = %d", k, bh.Counts[k], st.TimeoutsByBackoff[k])
		}
	}
	rh := snap.Histograms["reno.rtt"]
	if rh.Count != uint64(st.RTTSamples) {
		t.Errorf("rtt histogram count = %d, samples = %d", rh.Count, st.RTTSamples)
	}
	// The forward link saw every transmission.
	if got := snap.Counter("netem.fwd.offered"); got != uint64(st.TotalSent()) {
		t.Errorf("forward offered = %d, total sent = %d", got, st.TotalSent())
	}
	if snap.Counter("reno.timer.cancels") == 0 {
		t.Error("timer cancels never counted")
	}
	if snap.Histograms["reno.cwnd"].Count == 0 {
		t.Error("cwnd never sampled")
	}
}

// TestDisabledSenderMetricsIdenticalRun confirms the disabled-metrics
// sender produces the identical trace (observability must never perturb
// the simulation).
func TestDisabledSenderMetricsIdenticalRun(t *testing.T) {
	run := func(reg *obs.Registry) Result {
		cfg := ConnConfig{
			Sender: SenderConfig{RWnd: 16, MinRTO: 1.0, Metrics: NewMetrics(reg)},
			Path:   netem.SymmetricPath(0.05, netem.NewBernoulli(0.05, sim.NewRNG(11))),
		}
		var eng sim.Engine
		return NewConnection(&eng, cfg).Run(200)
	}
	on := run(obs.New())
	off := run(nil)
	if on.Stats != off.Stats {
		t.Errorf("metrics changed the run:\n on=%+v\noff=%+v", on.Stats, off.Stats)
	}
	if len(on.Trace) != len(off.Trace) {
		t.Errorf("trace length differs: %d vs %d", len(on.Trace), len(off.Trace))
	}
}
