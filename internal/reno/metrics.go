package reno

import "pftk/internal/obs"

// Metrics carries the sender's optional observability handles. The zero
// value (all-nil handles) disables collection; the ACK-processing hot
// path then pays one nil check per update and allocates nothing.
//
// The counters mirror the quantities the paper's Table II is built from,
// so a run's metric snapshot can be reconciled against its
// analysis.Summary (the experiments package tests exactly that):
// IndicationsTD matches the TD column, TimeoutSeqs the total of the
// T0..T5+ columns, and the Backoff histogram the per-column split.
type Metrics struct {
	// Cwnd samples the congestion window (packets) after every change.
	Cwnd *obs.Histogram
	// RTT samples Karn-valid round-trip measurements (seconds).
	RTT *obs.Histogram
	// IndicationsTD counts triple-duplicate loss indications.
	IndicationsTD *obs.Counter
	// TimeoutFires counts every RTO expiry (each backoff doubling fires
	// again).
	TimeoutFires *obs.Counter
	// TimeoutSeqs counts timeout *sequences*: fires at backoff depth 0,
	// i.e. the paper's per-trace timeout-event count.
	TimeoutSeqs *obs.Counter
	// Backoff records the backoff exponent of each fire (0 = single
	// timeout, 1 = first doubling, ...).
	Backoff *obs.Histogram
	// TimerCancels counts pending RTO timers cancelled before firing
	// (restarts on new ACKs plus the final Stop).
	TimerCancels *obs.Counter
	// Acks counts cumulative acknowledgments processed.
	Acks *obs.Counter
}

// Standard bucket bounds for the sender histograms: cwnd in powers of
// two up to the largest advertised windows of Table I, backoff by exact
// exponent (overflow = "T5 or more"), RTT log-spaced from LAN to
// satellite scale.
var (
	cwndBounds    = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	backoffBounds = []float64{0, 1, 2, 3, 4, 5}
	rttBounds     = []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10}
)

// NewMetrics registers the standard sender metrics on r (names
// "reno.*"), returning the handle bundle. A nil registry yields the
// all-nil (disabled) bundle.
func NewMetrics(r *obs.Registry) Metrics {
	return Metrics{
		Cwnd:          r.Histogram("reno.cwnd", cwndBounds),
		RTT:           r.Histogram("reno.rtt", rttBounds),
		IndicationsTD: r.Counter("reno.indications.td"),
		TimeoutFires:  r.Counter("reno.timeouts.fired"),
		TimeoutSeqs:   r.Counter("reno.timeouts.sequences"),
		Backoff:       r.Histogram("reno.timeouts.backoff", backoffBounds),
		TimerCancels:  r.Counter("reno.timer.cancels"),
		Acks:          r.Counter("reno.acks"),
	}
}
