package reno

import (
	"math"

	"pftk/internal/pkt"
	"pftk/internal/sim"
	"pftk/internal/trace"
)

// SenderConfig controls the saturated ("infinite source") Reno sender.
type SenderConfig struct {
	// Variant selects the protocol flavor; the zero value is standard
	// Reno.
	Variant Variant
	// RWnd is the receiver's advertised window Wm in packets; the
	// in-flight data never exceeds min(cwnd, RWnd). Values < 1 default
	// to 64.
	RWnd int
	// InitialCwnd is the initial congestion window (packets); values
	// < 1 default to 1.
	InitialCwnd float64
	// InitialSsthresh defaults to the advertised window when <= 0.
	InitialSsthresh float64
	// MinRTO, MaxRTO and Tick configure the RTO estimator; MinRTO
	// defaults to 1 s (RFC 6298), Tick to 0.5 s (BSD coarse timer) when
	// both are zero-valued only if UseDefaults is kept.
	MinRTO, MaxRTO, Tick float64
	// TraceCwnd, when set, logs a KindCwndChange record on every
	// congestion-window update (verbose; intended for unit tests).
	TraceCwnd bool
	// TotalPackets, when positive, makes the transfer finite: the
	// sender transmits packets 1..TotalPackets and completes once all
	// are acknowledged. Zero keeps the paper's saturated
	// infinite-source sender.
	TotalPackets uint64
	// FlowID stamps outgoing data packets so shared links can attribute
	// them per flow; ACKs stamped with a different flow ID are ignored.
	// Single-flow runs leave it 0.
	FlowID int32
	// Metrics holds optional observability handles; the zero value
	// disables collection (see Metrics).
	Metrics Metrics
}

func (c SenderConfig) normalize() SenderConfig {
	c.Variant = c.Variant.normalize()
	if c.RWnd < 1 {
		c.RWnd = 64
	}
	if c.InitialCwnd < 1 {
		c.InitialCwnd = 1
	}
	if c.InitialSsthresh <= 0 {
		c.InitialSsthresh = float64(c.RWnd)
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 1.0
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 240
	}
	return c
}

// SenderStats aggregates ground-truth counters for a run.
type SenderStats struct {
	PacketsSent   int // original transmissions
	Retransmits   int // all retransmissions
	FastRetx      int // fast retransmits (subset of Retransmits)
	TimeoutRetx   int // timeout retransmissions (subset of Retransmits)
	TDEvents      int // triple-duplicate loss indications
	TimeoutEvents int // timeout loss indications (timer fires)
	// TimeoutsByBackoff[k] counts timeouts fired with backoff exponent
	// k: index 0 are "single" timeouts (duration T0), 1 doubles, etc.
	TimeoutsByBackoff [16]int
	AcksReceived      int
	RTTSamples        int
}

// TotalSent returns originals plus retransmissions — the model's
// packet count N_t.
func (s SenderStats) TotalSent() int { return s.PacketsSent + s.Retransmits }

// LossIndications returns TD events plus timeout *sequences* (consecutive
// backoff timeouts count once), matching how Table II counts "Loss
// Indic." as TD + T0-column events... Note: the paper's per-column counts
// T0..T5 classify each timeout sequence by its final backoff depth; the
// analysis package reconstructs that classification from the trace.
func (s SenderStats) LossIndications() int { return s.TDEvents + s.TimeoutEvents }

// DataPath is the transmit interface the sender needs from the forward
// direction of a path; *netem.Link and *netem.REDQueueLink both satisfy
// it.
type DataPath interface {
	Send(payload pkt.Packet, deliver func(pkt.Packet))
}

// Sender is a saturated TCP Reno sender.
type Sender struct {
	cfg     SenderConfig
	eng     *sim.Engine
	forward DataPath
	toRecv  func(pkt.Packet)
	est     *RTOEstimator

	// Congestion state. Sequence numbers count packets from 1; una is
	// the lowest unacknowledged packet, sndNxt the send cursor (pulled
	// back to una after a timeout, BSD-style go-back-N), and maxNext
	// the lowest never-transmitted sequence.
	una        uint64
	sndNxt     uint64
	maxNext    uint64
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	inRecovery bool
	recover    uint64 // highest seq outstanding when recovery began
	backoffExp int

	// rtoTimer is a reusable handle rearmed on every ACK; rearming
	// allocates nothing (the callback is captured once in NewSender).
	rtoTimer *sim.Timer

	// RTT timing (one timed segment at a time, per BSD; Karn's rule
	// invalidates the measurement if the timed segment is
	// retransmitted).
	timedSeq    uint64
	timedAt     float64
	timedFlight int
	timedValid  bool
	timing      bool

	stats  SenderStats
	trace  *trace.Buffer
	closed bool
}

// NewSender builds a saturated sender that transmits over forward and
// whose ACKs arrive via OnAck. Wire the delivery side with SetDeliver (or
// use NewConnection, which does it for you).
func NewSender(eng *sim.Engine, forward DataPath, cfg SenderConfig) *Sender {
	cfg = cfg.normalize()
	s := &Sender{
		cfg:      cfg,
		eng:      eng,
		forward:  forward,
		una:      1,
		sndNxt:   1,
		maxNext:  1,
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.InitialSsthresh,
		est:      NewRTOEstimator(cfg.MinRTO, cfg.MaxRTO, cfg.Tick),
		trace:    trace.NewBuffer(1024),
	}
	s.rtoTimer = eng.NewTimer(s.onTimeout)
	return s
}

// SetDeliver sets the callback invoked at the receiver side of the
// forward path for every packet that survives it (normally the receiver's
// OnPacket).
func (s *Sender) SetDeliver(fn func(pkt.Packet)) { s.toRecv = fn }

// Start begins transmitting.
func (s *Sender) Start() { s.trySend() }

// Stop freezes the sender: no further transmissions or timer restarts.
func (s *Sender) Stop() {
	s.closed = true
	if s.rtoTimer.Stop() {
		s.cfg.Metrics.TimerCancels.Inc()
	}
}

// Stats returns the ground-truth counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Trace returns the accumulated trace records. The slice is owned by the
// sender; copy before mutating.
func (s *Sender) Trace() trace.Trace { return s.trace.Records() }

// Cwnd returns the current congestion window in packets.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Ssthresh returns the current slow-start threshold in packets.
func (s *Sender) Ssthresh() float64 { return s.ssthresh }

// InFlight returns the number of packets between the cumulative
// acknowledgment point and the send cursor.
func (s *Sender) InFlight() int { return int(s.sndNxt - s.una) }

// Estimator exposes the RTO estimator (read-mostly; used by the harness
// to report the effective T0).
func (s *Sender) Estimator() *RTOEstimator { return s.est }

// BaseRTO returns the current first-timeout duration — the live T0.
func (s *Sender) BaseRTO() float64 { return s.est.RTO() }

//pftk:hotpath
func (s *Sender) log(r trace.Record) {
	r.Time = s.eng.Now()
	s.trace.Append(r)
}

// sendWindow returns the current usable window in whole packets.
func (s *Sender) sendWindow() int {
	w := math.Floor(s.cwnd)
	if rw := float64(s.cfg.RWnd); w > rw {
		w = rw
	}
	if w < 1 {
		w = 1
	}
	return int(w)
}

// trySend advances the send cursor while the window allows. Sequences
// below maxNext have been transmitted before (the cursor was pulled back
// by a timeout) and count as timeout-driven retransmissions.
func (s *Sender) trySend() {
	if s.closed {
		return
	}
	for s.InFlight() < s.sendWindow() {
		seq := s.sndNxt
		if s.cfg.TotalPackets > 0 && seq > s.cfg.TotalPackets {
			break // finite transfer: nothing left to send
		}
		s.sndNxt++
		if seq < s.maxNext {
			s.resend(seq)
		} else {
			s.maxNext = seq + 1
			s.sendNew(seq)
		}
	}
}

// Complete reports whether a finite transfer has been fully
// acknowledged. It is always false for the saturated sender.
func (s *Sender) Complete() bool {
	return s.cfg.TotalPackets > 0 && s.una > s.cfg.TotalPackets
}

func (s *Sender) sendNew(seq uint64) {
	s.stats.PacketsSent++
	s.log(trace.Record{Kind: trace.KindSend, Seq: seq})
	if !s.timing {
		s.timing = true
		s.timedSeq = seq
		s.timedAt = s.eng.Now()
		s.timedFlight = s.InFlight()
		s.timedValid = true
	}
	s.forward.Send(pkt.Packet{Seq: seq, Flow: s.cfg.FlowID}, s.toRecv)
	if !s.rtoTimer.Pending() {
		s.restartRTO()
	}
}

// resend retransmits a pulled-back sequence during post-timeout go-back-N
// recovery.
func (s *Sender) resend(seq uint64) {
	s.stats.Retransmits++
	s.stats.TimeoutRetx++
	s.log(trace.Record{Kind: trace.KindRetransmit, Seq: seq, Val: 1})
	if s.timing && seq == s.timedSeq {
		s.timedValid = false
	}
	s.forward.Send(pkt.Packet{Seq: seq, Retx: true, Flow: s.cfg.FlowID}, s.toRecv)
	if !s.rtoTimer.Pending() {
		s.restartRTO()
	}
}

// retransmit resends packet seq. timeout distinguishes RTO-driven
// retransmissions from fast retransmits.
func (s *Sender) retransmit(seq uint64, timeout bool) {
	s.stats.Retransmits++
	val := 0.0
	if timeout {
		val = 1
		s.stats.TimeoutRetx++
	} else {
		s.stats.FastRetx++
	}
	s.log(trace.Record{Kind: trace.KindRetransmit, Seq: seq, Val: val})
	if s.timing && seq == s.timedSeq {
		// Karn's rule: a retransmitted segment yields no RTT sample.
		s.timedValid = false
	}
	s.forward.Send(pkt.Packet{Seq: seq, Retx: true, Flow: s.cfg.FlowID}, s.toRecv)
}

// effectiveRTO applies exponential backoff with the variant's cap. The
// factor is built by bit shift — exactly math.Pow(2, exp) for the small
// integer exponents backoff uses, without the transcendental call on the
// per-ACK timer-rearm path.
func (s *Sender) effectiveRTO() float64 {
	exp := s.backoffExp
	if max := s.cfg.Variant.MaxBackoffExp; exp > max {
		exp = max
	}
	return s.est.RTO() * float64(uint64(1)<<uint(exp))
}

func (s *Sender) restartRTO() {
	if s.rtoTimer.Stop() {
		s.cfg.Metrics.TimerCancels.Inc()
	}
	if s.closed || s.InFlight() == 0 {
		return
	}
	s.rtoTimer.Reset(s.effectiveRTO())
}

// onTimeout handles RTO expiry: collapse the window, back the timer off,
// and retransmit the oldest outstanding packet.
func (s *Sender) onTimeout() {
	if s.closed || s.InFlight() == 0 {
		return
	}
	s.stats.TimeoutEvents++
	idx := s.backoffExp
	if idx >= len(s.stats.TimeoutsByBackoff) {
		idx = len(s.stats.TimeoutsByBackoff) - 1
	}
	s.stats.TimeoutsByBackoff[idx]++
	s.cfg.Metrics.TimeoutFires.Inc()
	s.cfg.Metrics.Backoff.Observe(float64(s.backoffExp))
	if s.backoffExp == 0 {
		// Depth-0 fires open a new timeout sequence — the unit Table II
		// counts as one loss indication.
		s.cfg.Metrics.TimeoutSeqs.Inc()
	}
	s.log(trace.Record{Kind: trace.KindTimeoutFired, Val: float64(s.backoffExp)})

	s.ssthresh = math.Max(float64(s.InFlight())/2, 2)
	s.setCwnd(1)
	s.dupAcks = 0
	s.inRecovery = false
	if s.backoffExp < s.cfg.Variant.MaxBackoffExp {
		s.backoffExp++
	}
	s.timedValid = false
	s.timing = false
	// BSD-style go-back-N: pull the send cursor back to the
	// acknowledgment point; the window (now one packet) governs how
	// fast the outstanding data is retransmitted.
	s.sndNxt = s.una
	s.trySend()
	s.restartRTO()
}

func (s *Sender) setCwnd(w float64) {
	if w < 1 {
		w = 1
	}
	if w-s.cwnd == 0 {
		return // no-op update: suppress a duplicate trace record
	}
	s.cwnd = w
	s.cfg.Metrics.Cwnd.Observe(w)
	if s.cfg.TraceCwnd {
		s.log(trace.Record{Kind: trace.KindCwndChange, Val: w})
	}
}

// OnAck handles one arriving cumulative acknowledgment. Pass it as the
// reverse link's delivery callback. Non-ACK packets and ACKs stamped
// with another flow's ID are ignored.
//
//pftk:hotpath
func (s *Sender) OnAck(p pkt.Packet) {
	if p.Kind != pkt.Ack || p.Flow != s.cfg.FlowID || s.closed {
		return
	}
	ack := p.Seq
	s.stats.AcksReceived++
	s.cfg.Metrics.Acks.Inc()
	s.log(trace.Record{Kind: trace.KindAck, Ack: ack})
	switch {
	case ack > s.una:
		s.onNewAck(ack)
	case ack == s.una && s.InFlight() > 0:
		s.onDupAck()
	}
}

func (s *Sender) onNewAck(ack uint64) {
	// RTT sample per Karn: only if the timed segment is covered and was
	// never retransmitted.
	if s.timing && ack > s.timedSeq {
		if s.timedValid {
			sample := s.eng.Now() - s.timedAt
			s.est.Sample(sample)
			s.stats.RTTSamples++
			s.cfg.Metrics.RTT.Observe(sample)
			s.log(trace.Record{Kind: trace.KindRoundSample, Seq: uint64(s.timedFlight), Val: sample})
		}
		s.timing = false
	}
	s.backoffExp = 0
	s.una = ack
	if s.sndNxt < s.una {
		// The cumulative ACK can jump past the pulled-back cursor when
		// the receiver had buffered out-of-order data.
		s.sndNxt = s.una
	}
	wasRecovery := s.inRecovery
	if s.inRecovery {
		if s.cfg.Variant.NewReno && ack <= s.recover {
			// NewReno partial ACK (RFC 6582): the ACK advanced but
			// holes remain below the recovery point. Retransmit the
			// next hole immediately and stay in recovery.
			s.retransmit(s.una, false)
			s.setCwnd(math.Max(s.cwnd-float64(ack-s.una)+1, 1))
			s.restartRTO()
			return
		}
		// Leave recovery (classic Reno: on any ACK of new data;
		// NewReno: once the recovery point is covered), deflating the
		// window to ssthresh.
		s.inRecovery = false
		s.setCwnd(s.ssthresh)
	}
	s.dupAcks = 0
	if !wasRecovery {
		if s.cwnd < s.ssthresh {
			s.setCwnd(s.cwnd + 1) // slow start
		} else {
			s.setCwnd(s.cwnd + 1/s.cwnd) // congestion avoidance
		}
	}
	s.restartRTO()
	s.trySend()
}

func (s *Sender) onDupAck() {
	s.dupAcks++
	if s.inRecovery {
		// Window inflation: each duplicate ACK signals a departure.
		s.setCwnd(s.cwnd + 1)
		s.trySend()
		return
	}
	if s.dupAcks != s.cfg.Variant.DupThreshold {
		return
	}
	// Fast retransmit: a TD loss indication.
	s.stats.TDEvents++
	s.cfg.Metrics.IndicationsTD.Inc()
	s.log(trace.Record{Kind: trace.KindTDIndication, Seq: s.una})
	s.ssthresh = math.Max(float64(s.InFlight())/2, 2)
	s.retransmit(s.una, false)
	if s.cfg.Variant.Tahoe {
		s.setCwnd(1)
		s.dupAcks = 0
	} else {
		s.inRecovery = true
		s.recover = s.sndNxt - 1
		s.setCwnd(s.ssthresh + float64(s.cfg.Variant.DupThreshold))
	}
	s.restartRTO()
}
