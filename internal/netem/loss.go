// Package netem emulates the Internet paths of the paper's measurement
// campaign: unidirectional links with finite rate, propagation delay and
// drop-tail queues, random and bursty loss processes, background cross
// traffic, and the "modem with a dedicated deep buffer" pathology of
// Fig. 11.
//
// It substitutes for the 1997-98 Internet between the Table I hosts: the
// PFTK model consumes only (p, RTT, T0, Wm), so a path that reproduces a
// pair's loss process and delay statistics exercises the same validation
// surface as the original measurements.
package netem

import (
	"fmt"

	"pftk/internal/sim"
)

// LossModel decides the fate of each packet offered to a link. Implementations
// may be stateful; they are driven from a single goroutine by the
// simulation and need no locking.
type LossModel interface {
	// Drop reports whether the packet offered at simulation time now
	// should be dropped.
	Drop(now float64) bool
}

// NoLoss is a LossModel that never drops.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(float64) bool { return false }

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct {
	P   float64
	RNG *sim.RNG
}

// NewBernoulli returns an i.i.d. loss process with drop probability p.
func NewBernoulli(p float64, rng *sim.RNG) *Bernoulli {
	return &Bernoulli{P: p, RNG: rng}
}

// Drop implements LossModel.
func (b *Bernoulli) Drop(float64) bool { return b.RNG.Bool(b.P) }

// GilbertElliott is the classic two-state bursty loss process: the channel
// alternates between a Good and a Bad state with per-packet transition
// probabilities, and drops with a state-dependent probability. It captures
// the temporal dependence in Internet packet loss reported by Yajnik et
// al. [23], which motivates the paper's correlated-loss assumption.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are per-packet transition probabilities.
	PGoodToBad, PBadToGood float64
	// DropGood and DropBad are loss probabilities within each state.
	DropGood, DropBad float64
	RNG               *sim.RNG
	bad               bool
}

// NewGilbertElliott returns a bursty loss process. A common
// parameterization for mean loss p with mean burst length L is
// PGoodToBad = p/(L(1-p)), PBadToGood = 1/L, DropBad = 1, DropGood = 0.
func NewGilbertElliott(pGB, pBG, dropGood, dropBad float64, rng *sim.RNG) *GilbertElliott {
	return &GilbertElliott{
		PGoodToBad: pGB, PBadToGood: pBG,
		DropGood: dropGood, DropBad: dropBad, RNG: rng,
	}
}

// GilbertElliottForLossRate builds a GE process with aggregate loss rate p
// and mean loss-burst length burst (packets).
func GilbertElliottForLossRate(p, burst float64, rng *sim.RNG) *GilbertElliott {
	if burst < 1 {
		burst = 1
	}
	if p >= 1 {
		p = 0.999
	}
	return NewGilbertElliott(p/(burst*(1-p)), 1/burst, 0, 1, rng)
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(float64) bool {
	if g.bad {
		if g.RNG.Bool(g.PBadToGood) {
			g.bad = false
		}
	} else if g.RNG.Bool(g.PGoodToBad) {
		g.bad = true
	}
	if g.bad {
		return g.RNG.Bool(g.DropBad)
	}
	return g.RNG.Bool(g.DropGood)
}

// Bad reports whether the process is currently in the Bad state (exported
// for tests).
func (g *GilbertElliott) Bad() bool { return g.bad }

// RoundCorrelated realizes the paper's own loss assumption directly: each
// packet is the start of a loss event with probability P, and once a loss
// occurs every subsequent packet within Gap seconds of the previous
// offered packet is also dropped — i.e. "if a packet is lost, all
// remaining packets transmitted until the end of that round are also
// lost". Back-to-back packets of a window arrive well within Gap of each
// other, while the next round starts an RTT later, resetting the burst.
type RoundCorrelated struct {
	// P is the per-packet probability of starting a loss burst.
	P float64
	// Gap is the idle time (seconds) that terminates a burst; set it
	// below the path RTT and above the back-to-back packet spacing.
	Gap float64
	RNG *sim.RNG

	bursting bool
	lastSeen float64
	started  bool
}

// NewRoundCorrelated returns the paper-faithful correlated loss process.
func NewRoundCorrelated(p, gap float64, rng *sim.RNG) *RoundCorrelated {
	return &RoundCorrelated{P: p, Gap: gap, RNG: rng}
}

// Drop implements LossModel.
func (rc *RoundCorrelated) Drop(now float64) bool {
	if rc.started && rc.bursting && now-rc.lastSeen > rc.Gap {
		rc.bursting = false
	}
	rc.lastSeen = now
	rc.started = true
	if rc.bursting {
		return true
	}
	if rc.RNG.Bool(rc.P) {
		rc.bursting = true
		return true
	}
	return false
}

// TimedBurst is an outage-style loss process: each offered packet starts
// an outage with probability P; during an outage every packet offered in
// the next Dur seconds is dropped. Long outages (around one RTT or more)
// take out the tail of a window *and* the ensuing fast retransmission,
// escalating the loss indication into a retransmission timeout — the
// mechanism behind the heavily timeout-dominated loss mixes of Table II.
// Dur well below an RTT yields isolated losses that fast retransmit
// repairs, i.e. TD indications.
type TimedBurst struct {
	// P is the per-packet probability of starting an outage.
	P float64
	// Dur is the outage duration in seconds.
	Dur float64
	RNG *sim.RNG

	until float64
	armed bool
}

// NewTimedBurst returns an outage loss process.
func NewTimedBurst(p, dur float64, rng *sim.RNG) *TimedBurst {
	return &TimedBurst{P: p, Dur: dur, RNG: rng}
}

// Drop implements LossModel.
func (tb *TimedBurst) Drop(now float64) bool {
	if tb.armed && now < tb.until {
		return true
	}
	tb.armed = false
	if tb.RNG.Bool(tb.P) {
		tb.armed = true
		tb.until = now + tb.Dur
		return true
	}
	return false
}

// Periodic drops every Nth packet deterministically — useful for exact
// expectations in tests. N <= 0 never drops.
type Periodic struct {
	N     int
	count int
}

// Drop implements LossModel.
func (p *Periodic) Drop(float64) bool {
	if p.N <= 0 {
		return false
	}
	p.count++
	if p.count == p.N {
		p.count = 0
		return true
	}
	return false
}

// TraceDriven replays a recorded drop pattern: packet i of the run is
// dropped iff Pattern[i mod len(Pattern)] is true. Extracted from a
// previous run (or a real capture), it reproduces one experiment's loss
// process inside another — the "loss distribution function" hook the
// paper's future-work list asks for.
type TraceDriven struct {
	Pattern []bool
	next    int
}

// NewTraceDriven returns a replaying loss model. An empty pattern never
// drops.
func NewTraceDriven(pattern []bool) *TraceDriven {
	return &TraceDriven{Pattern: pattern}
}

// Drop implements LossModel.
func (td *TraceDriven) Drop(float64) bool {
	if len(td.Pattern) == 0 {
		return false
	}
	d := td.Pattern[td.next%len(td.Pattern)]
	td.next++
	return d
}

// Offered returns how many packets have been examined.
func (td *TraceDriven) Offered() int { return td.next }

// Script drops exactly the packet indexes (0-based, in arrival order)
// listed in Drops — the fully deterministic loss model used by protocol
// unit tests.
type Script struct {
	Drops map[int]bool
	next  int
}

// NewScript returns a scripted loss model dropping the given 0-based
// packet indexes.
func NewScript(drops ...int) *Script {
	m := make(map[int]bool, len(drops))
	for _, d := range drops {
		m[d] = true
	}
	return &Script{Drops: m}
}

// Drop implements LossModel.
func (s *Script) Drop(float64) bool {
	i := s.next
	s.next++
	return s.Drops[i]
}

// Offered returns how many packets the script has examined.
func (s *Script) Offered() int { return s.next }

// String implements fmt.Stringer.
func (s *Script) String() string { return fmt.Sprintf("Script(%d offered)", s.next) }
