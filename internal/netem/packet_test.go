package netem

import "pftk/internal/pkt"

// pk wraps an integer test payload in a data packet; tests recover it
// from the sequence number on delivery.
func pk(i int) pkt.Packet { return pkt.Packet{Seq: uint64(i)} }

// collect returns a deliver callback appending packet sequence numbers
// (as ints) to out in arrival order.
func collect(out *[]int) func(pkt.Packet) {
	return func(p pkt.Packet) { *out = append(*out, int(p.Seq)) }
}
