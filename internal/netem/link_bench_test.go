package netem

import (
	"testing"

	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// benchSink makes the delivery callback observable without capturing any
// benchmark-local state (a capture would charge a closure allocation to
// the path under test).
var benchSink int

func benchDeliver(pkt.Packet) { benchSink++ }

// BenchmarkLinkSend measures the full per-packet link cycle on a
// rate-limited queued link: admit, serialize, propagate, deliver. The
// payload is a typed value, so the measured loop is exactly the simulator's
// steady state — ring-buffer slots and arena events all recycled.
func BenchmarkLinkSend(b *testing.B) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 1e6, QueueCap: 64, Delay: ConstantDelay(0.001)})
	payload := pkt.Packet{Seq: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(payload, benchDeliver)
		for eng.Step() {
		}
	}
	b.StopTimer()
	if l.Stats().Delivered != b.N {
		b.Fatalf("delivered %d of %d packets", l.Stats().Delivered, b.N)
	}
}

// TestLinkSendZeroAlloc is the acceptance guard for the link hot path:
// with observability disabled, Send plus the event processing it
// triggers allocates nothing in steady state — no interface boxing
// anywhere on the typed packet path.
func TestLinkSendZeroAlloc(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 1e6, QueueCap: 64, Delay: ConstantDelay(0.001)})
	payload := pkt.Packet{Seq: 1}
	// Warm the ring, heap and arena past their growth phase.
	for i := 0; i < 128; i++ {
		l.Send(payload, benchDeliver)
	}
	eng.Run()
	allocs := testing.AllocsPerRun(500, func() {
		l.Send(payload, benchDeliver)
		eng.Run()
	})
	if allocs != 0 {
		t.Errorf("Link.Send allocates %.1f objects per packet, want 0", allocs)
	}
}

// TestLinkSendZeroAllocWhileQueueing covers the other steady-state shape:
// packets arriving while the link is busy must recycle ring slots, not
// allocate queue entries.
func TestLinkSendZeroAllocWhileQueueing(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 100, QueueCap: 32, Delay: ConstantDelay(0.001)})
	payload := pkt.Packet{Seq: 1}
	for i := 0; i < 64; i++ {
		l.Send(payload, benchDeliver)
	}
	eng.Run()
	allocs := testing.AllocsPerRun(500, func() {
		// Burst of four: the first occupies the server, the rest queue.
		for i := 0; i < 4; i++ {
			l.Send(payload, benchDeliver)
		}
		eng.Run()
	})
	if allocs != 0 {
		t.Errorf("queued Send allocates %.1f objects per burst, want 0", allocs)
	}
}
