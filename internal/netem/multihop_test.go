package netem

import (
	"math"
	"testing"

	"pftk/internal/pkt"
	"pftk/internal/sim"
)

func TestMultiHopAccumulatesDelay(t *testing.T) {
	var eng sim.Engine
	m := NewMultiHop(&eng,
		LinkConfig{Delay: ConstantDelay(0.01)},
		LinkConfig{Delay: ConstantDelay(0.02)},
		LinkConfig{Delay: ConstantDelay(0.03)},
	)
	var at float64
	m.Send(pk(1), func(pkt.Packet) { at = eng.Now() })
	eng.Run()
	if math.Abs(at-0.06) > 1e-12 {
		t.Errorf("arrival at %g, want 0.06", at)
	}
	if m.NumHops() != 3 {
		t.Errorf("hops = %d", m.NumHops())
	}
}

func TestMultiHopBottleneckGovernsThroughput(t *testing.T) {
	// Fast-slow-fast chain: spacing at the exit equals the slow hop's
	// service time.
	var eng sim.Engine
	m := NewMultiHop(&eng,
		LinkConfig{Rate: 1000, QueueCap: 100},
		LinkConfig{Rate: 10, QueueCap: 100}, // bottleneck
		LinkConfig{Rate: 1000, QueueCap: 100},
	)
	var times []float64
	for i := 0; i < 5; i++ {
		m.Send(pk(i), func(pkt.Packet) { times = append(times, eng.Now()) })
	}
	eng.Run()
	if len(times) != 5 {
		t.Fatalf("delivered %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if gap := times[i] - times[i-1]; math.Abs(gap-0.1) > 1e-9 {
			t.Errorf("exit gap %d = %g, want 0.1 (bottleneck service time)", i, gap)
		}
	}
}

func TestMultiHopLossAtAnyHop(t *testing.T) {
	var eng sim.Engine
	m := NewMultiHop(&eng,
		LinkConfig{Loss: NewScript(0)}, // drops first packet
		LinkConfig{Loss: NewScript(0)}, // drops its first arrival too
	)
	delivered := 0
	for i := 0; i < 3; i++ {
		m.Send(pk(i), func(pkt.Packet) { delivered++ })
	}
	eng.Run()
	// Packet 0 dies at hop 0; packet 1 survives hop 0 but is the first
	// arrival at hop 1 and dies there; packet 2 survives both.
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
	st := m.Stats()
	if st.Offered != 3 || st.Delivered != 1 || st.RandomDrops != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMultiHopEmptyChain(t *testing.T) {
	var eng sim.Engine
	m := NewMultiHop(&eng)
	delivered := false
	m.Send(pk(1), func(pkt.Packet) { delivered = true })
	if !delivered {
		t.Error("empty chain should deliver synchronously")
	}
}

func TestMultiHopPreservesFIFO(t *testing.T) {
	var eng sim.Engine
	rng := sim.NewRNG(3)
	m := NewMultiHop(&eng,
		LinkConfig{Delay: &UniformJitterDelay{Base: 0.01, Jitter: 0.02, RNG: rng.Fork("a")}},
		LinkConfig{Rate: 200, QueueCap: 50, Delay: &UniformJitterDelay{Base: 0.01, Jitter: 0.02, RNG: rng.Fork("b")}},
	)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		eng.Schedule(float64(i)*0.001, func() {
			m.Send(pk(i), func(p pkt.Packet) { order = append(order, int(p.Seq)) })
		})
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered: %v", order[:i+1])
		}
	}
}
