package netem

import (
	"testing"

	"pftk/internal/obs"
	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// TestLinkMetricsMatchStats drives a rate-limited lossy link and checks
// that the obs counters agree exactly with the link's own LinkStats, and
// that drops are attributed to the right cause.
func TestLinkMetricsMatchStats(t *testing.T) {
	reg := obs.New()
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{
		Rate:     10,
		QueueCap: 3,
		Delay:    ConstantDelay(0.01),
		Loss:     NewBernoulli(0.3, sim.NewRNG(42)),
		Metrics:  NewLinkMetrics(reg, "netem.fwd"),
	})
	delivered := 0
	for i := 0; i < 200; i++ {
		l.Send(pk(i), func(pkt.Packet) { delivered++ })
	}
	eng.Run()

	st := l.Stats()
	snap := reg.Snapshot()
	if got := snap.Counter("netem.fwd.offered"); got != uint64(st.Offered) {
		t.Errorf("offered counter = %d, stats = %d", got, st.Offered)
	}
	if got := snap.Counter("netem.fwd.delivered"); got != uint64(st.Delivered) {
		t.Errorf("delivered counter = %d, stats = %d", got, st.Delivered)
	}
	if got := snap.Counter("netem.fwd.drops.loss"); got != uint64(st.RandomDrops) {
		t.Errorf("loss drops counter = %d, stats = %d", got, st.RandomDrops)
	}
	if got := snap.Counter("netem.fwd.drops.fifo"); got != uint64(st.QueueDrops) {
		t.Errorf("fifo drops counter = %d, stats = %d", got, st.QueueDrops)
	}
	if st.QueueDrops == 0 {
		t.Error("test should exercise drop-tail overflow (raise the burst)")
	}
	if hw := snap.Gauges["netem.fwd.queue"].Max; hw != float64(st.MaxQueue) {
		t.Errorf("queue high-water gauge = %g, stats MaxQueue = %d", hw, st.MaxQueue)
	}
	if delivered != st.Delivered {
		t.Errorf("callback deliveries %d != stats %d", delivered, st.Delivered)
	}
}

// TestREDDropsAttributed checks RED early drops land in the RED counter,
// not the FIFO one.
func TestREDDropsAttributed(t *testing.T) {
	reg := obs.New()
	var eng sim.Engine
	l := NewREDLink(&eng, LinkConfig{
		Rate:     5,
		QueueCap: 8,
		Metrics:  NewLinkMetrics(reg, "netem.fwd"),
	}, sim.NewRNG(7))
	for i := 0; i < 400; i++ {
		l.Send(pk(i), func(pkt.Packet) {})
	}
	eng.Run()
	snap := reg.Snapshot()
	if got := snap.Counter("netem.fwd.drops.red"); got != uint64(l.REDDrops()) {
		t.Errorf("red drops counter = %d, REDDrops() = %d", got, l.REDDrops())
	}
	if l.REDDrops() == 0 {
		t.Error("test should exercise RED drops")
	}
	// Offered must count RED-dropped packets too, mirroring LinkStats.
	if got := snap.Counter("netem.fwd.offered"); got != uint64(l.Stats().Offered) {
		t.Errorf("offered counter = %d, stats = %d", got, l.Stats().Offered)
	}
}

// TestLinkMetricsAllocationFree asserts that metrics — disabled or
// enabled — add zero allocations to the Send path. The baseline itself
// allocates (the delivery event and its closure); the metrics layer must
// not add to it.
func TestLinkMetricsAllocationFree(t *testing.T) {
	measure := func(m LinkMetrics) float64 {
		var eng sim.Engine
		l := NewLink(&eng, LinkConfig{Metrics: m})
		deliver := func(pkt.Packet) {}
		return testing.AllocsPerRun(200, func() {
			l.Send(pk(0), deliver)
			eng.Run()
		})
	}
	base := measure(LinkMetrics{})
	enabled := measure(NewLinkMetrics(obs.New(), "netem.fwd"))
	if enabled > base {
		t.Errorf("enabled metrics allocate %.1f objects per Send, baseline %.1f — must be equal", enabled, base)
	}
}
