package netem

import (
	"fmt"
	"math"

	"pftk/internal/sim"
)

// DelayProcess produces the propagation delay for each packet. The
// unidirectional one-way delays of the paper's Internet paths are modeled
// as a base plus jitter.
type DelayProcess interface {
	// Delay returns the one-way propagation delay in seconds for a
	// packet entering the wire at simulation time now.
	Delay(now float64) float64
}

// ConstantDelay is a fixed one-way delay.
type ConstantDelay float64

// Delay implements DelayProcess.
func (d ConstantDelay) Delay(float64) float64 { return float64(d) }

// UniformJitterDelay is Base plus a uniform jitter in [0, Jitter).
type UniformJitterDelay struct {
	Base, Jitter float64
	RNG          *sim.RNG
}

// Delay implements DelayProcess.
func (d *UniformJitterDelay) Delay(float64) float64 {
	if d.Jitter <= 0 {
		return d.Base
	}
	return d.Base + d.RNG.Uniform(0, d.Jitter)
}

// ShiftedExpDelay is Base plus an exponential tail with the given mean —
// a common fit for wide-area queueing delay outside the bottleneck.
type ShiftedExpDelay struct {
	Base, TailMean float64
	RNG            *sim.RNG
}

// Delay implements DelayProcess.
func (d *ShiftedExpDelay) Delay(float64) float64 {
	if d.TailMean <= 0 {
		return d.Base
	}
	return d.Base + d.RNG.Exp(d.TailMean)
}

// LinkStats counts what happened on a link.
type LinkStats struct {
	Offered      int // packets presented to the link
	Delivered    int // packets handed to the receiver
	RandomDrops  int // dropped by the LossModel
	QueueDrops   int // dropped by drop-tail overflow
	MaxQueue     int // high-water mark of the queue, in packets
	BusySeconds  float64
	lastBusyFrom float64
}

// LossRate returns total drops divided by offered packets.
func (s LinkStats) LossRate() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.RandomDrops+s.QueueDrops) / float64(s.Offered)
}

// String implements fmt.Stringer.
func (s LinkStats) String() string {
	return fmt.Sprintf("offered=%d delivered=%d randomDrops=%d queueDrops=%d maxQ=%d",
		s.Offered, s.Delivered, s.RandomDrops, s.QueueDrops, s.MaxQueue)
}

// LinkConfig describes one direction of a path.
type LinkConfig struct {
	// Rate is the transmission rate in packets per second; 0 or negative
	// means infinitely fast (no serialization or queueing).
	Rate float64
	// QueueCap is the drop-tail queue capacity in packets (excluding the
	// packet in service). Ignored when Rate is infinite. Zero means no
	// buffering: a packet arriving while the link is busy is dropped.
	QueueCap int
	// Delay is the propagation delay process; nil means zero delay.
	Delay DelayProcess
	// Loss drops packets before they enter the queue; nil means no loss.
	Loss LossModel
	// Metrics holds optional observability handles; the zero value
	// disables collection (see LinkMetrics).
	Metrics LinkMetrics
}

// Link is one unidirectional emulated link: loss model, then a finite-rate
// server with a drop-tail queue, then propagation delay. Deliveries are
// made through the callback passed to Send. Delivery order is FIFO: jitter
// never reorders packets (a later packet is delivered no earlier than its
// predecessor), matching the in-order paths of the paper's model.
type Link struct {
	eng     *sim.Engine
	cfg     LinkConfig
	busy    bool
	queue   []queued
	stats   LinkStats
	lastOut float64 // latest scheduled delivery time, for FIFO clamping
}

type queued struct {
	payload any
	deliver func(any)
}

// NewLink creates a link driven by eng.
func NewLink(eng *sim.Engine, cfg LinkConfig) *Link {
	if eng == nil {
		panic("netem: nil engine")
	}
	return &Link{eng: eng, cfg: cfg}
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueLen returns the number of packets waiting (not in service).
func (l *Link) QueueLen() int { return len(l.queue) }

// Send offers one packet to the link. deliver is invoked with payload at
// the receiver once the packet survives loss, queueing and propagation;
// dropped packets simply never arrive, exactly like the real network.
func (l *Link) Send(payload any, deliver func(any)) {
	if deliver == nil {
		panic("netem: nil deliver callback")
	}
	l.stats.Offered++
	l.cfg.Metrics.Offered.Inc()
	now := l.eng.Now()
	if l.cfg.Loss != nil && l.cfg.Loss.Drop(now) {
		l.stats.RandomDrops++
		l.cfg.Metrics.LossDrops.Inc()
		return
	}
	if l.cfg.Rate <= 0 {
		l.propagate(payload, deliver)
		return
	}
	if l.busy {
		if len(l.queue) >= l.cfg.QueueCap {
			l.stats.QueueDrops++
			l.cfg.Metrics.FIFODrops.Inc()
			return
		}
		l.queue = append(l.queue, queued{payload, deliver})
		if len(l.queue) > l.stats.MaxQueue {
			l.stats.MaxQueue = len(l.queue)
		}
		l.cfg.Metrics.Queue.Set(float64(len(l.queue)))
		return
	}
	l.serve(payload, deliver)
}

// serve puts a packet into transmission.
func (l *Link) serve(payload any, deliver func(any)) {
	l.busy = true
	l.stats.lastBusyFrom = l.eng.Now()
	txTime := 1 / l.cfg.Rate
	l.eng.After(txTime, func() {
		l.stats.BusySeconds += l.eng.Now() - l.stats.lastBusyFrom
		l.propagate(payload, deliver)
		if len(l.queue) > 0 {
			next := l.queue[0]
			copy(l.queue, l.queue[1:])
			l.queue = l.queue[:len(l.queue)-1]
			l.cfg.Metrics.Queue.Set(float64(len(l.queue)))
			l.serve(next.payload, next.deliver)
		} else {
			l.busy = false
		}
	})
}

// propagate schedules final delivery after the propagation delay,
// clamping so deliveries stay in FIFO order under jitter.
func (l *Link) propagate(payload any, deliver func(any)) {
	d := 0.0
	if l.cfg.Delay != nil {
		d = l.cfg.Delay.Delay(l.eng.Now())
	}
	if d < 0 || math.IsNaN(d) {
		d = 0
	}
	at := l.eng.Now() + d
	if at < l.lastOut {
		at = l.lastOut
	}
	l.lastOut = at
	l.stats.Delivered++
	l.cfg.Metrics.Delivered.Inc()
	l.eng.Schedule(at, func() { deliver(payload) })
}

// PathConfig describes a bidirectional sender-receiver path.
type PathConfig struct {
	// Forward carries data packets, Reverse carries ACKs.
	Forward, Reverse LinkConfig
}

// Path couples a forward (data) and reverse (ACK) link.
type Path struct {
	// Forward and Reverse are the two directions.
	Forward, Reverse *Link
}

// NewPath builds both directions of a path on the same engine.
func NewPath(eng *sim.Engine, cfg PathConfig) *Path {
	return &Path{
		Forward: NewLink(eng, cfg.Forward),
		Reverse: NewLink(eng, cfg.Reverse),
	}
}

// SymmetricPath returns a PathConfig with the given one-way delay process
// constructors, loss on the forward direction only (the common case for
// the paper's unidirectional bulk transfers) and infinitely fast links.
func SymmetricPath(oneWay float64, loss LossModel) PathConfig {
	return PathConfig{
		Forward: LinkConfig{Delay: ConstantDelay(oneWay), Loss: loss},
		Reverse: LinkConfig{Delay: ConstantDelay(oneWay)},
	}
}

// ModemPath reproduces the Fig. 11 pathology: a slow bottleneck (rate in
// packets/s) with a deep buffer dedicated to the connection (queueCap
// packets) and a small propagation delay. With a saturated sender, the
// queueing delay — and hence the measured RTT — grows with the window,
// producing the RTT/window correlation near 1 reported in Section IV.
func ModemPath(rate float64, queueCap int, oneWay float64) PathConfig {
	return PathConfig{
		Forward: LinkConfig{Rate: rate, QueueCap: queueCap, Delay: ConstantDelay(oneWay)},
		Reverse: LinkConfig{Delay: ConstantDelay(oneWay)},
	}
}
