package netem

import (
	"fmt"
	"math"

	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// DelayProcess produces the propagation delay for each packet. The
// unidirectional one-way delays of the paper's Internet paths are modeled
// as a base plus jitter.
type DelayProcess interface {
	// Delay returns the one-way propagation delay in seconds for a
	// packet entering the wire at simulation time now.
	Delay(now float64) float64
}

// ConstantDelay is a fixed one-way delay.
type ConstantDelay float64

// Delay implements DelayProcess.
func (d ConstantDelay) Delay(float64) float64 { return float64(d) }

// UniformJitterDelay is Base plus a uniform jitter in [0, Jitter).
type UniformJitterDelay struct {
	Base, Jitter float64
	RNG          *sim.RNG
}

// Delay implements DelayProcess.
func (d *UniformJitterDelay) Delay(float64) float64 {
	if d.Jitter <= 0 {
		return d.Base
	}
	return d.Base + d.RNG.Uniform(0, d.Jitter)
}

// ShiftedExpDelay is Base plus an exponential tail with the given mean —
// a common fit for wide-area queueing delay outside the bottleneck.
type ShiftedExpDelay struct {
	Base, TailMean float64
	RNG            *sim.RNG
}

// Delay implements DelayProcess.
func (d *ShiftedExpDelay) Delay(float64) float64 {
	if d.TailMean <= 0 {
		return d.Base
	}
	return d.Base + d.RNG.Exp(d.TailMean)
}

// LinkStats counts what happened on a link.
type LinkStats struct {
	Offered      int // packets presented to the link
	Delivered    int // packets handed to the receiver
	RandomDrops  int // dropped by the LossModel
	QueueDrops   int // dropped by drop-tail overflow
	Duplicated   int // extra copies injected by a duplication window
	MaxQueue     int // high-water mark of the queue, in packets
	BusySeconds  float64
	lastBusyFrom float64
}

// LossRate returns total drops divided by offered packets.
func (s LinkStats) LossRate() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.RandomDrops+s.QueueDrops) / float64(s.Offered)
}

// FlowStats counts what happened on a link to one flow's packets, keyed
// by the Flow field of the packets it carried. Collected only when
// EnablePerFlowStats has sized the per-flow table; the multi-flow
// engine uses it for per-flow conservation checks and loss attribution.
type FlowStats struct {
	Offered     int // packets this flow presented to the link
	Delivered   int // packets handed to the receiver
	RandomDrops int // dropped by the LossModel (or RED decision)
	QueueDrops  int // dropped by drop-tail overflow
}

// LossRate returns the flow's drops divided by its offered packets.
func (s FlowStats) LossRate() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.RandomDrops+s.QueueDrops) / float64(s.Offered)
}

// String implements fmt.Stringer.
func (s LinkStats) String() string {
	return fmt.Sprintf("offered=%d delivered=%d randomDrops=%d queueDrops=%d maxQ=%d",
		s.Offered, s.Delivered, s.RandomDrops, s.QueueDrops, s.MaxQueue)
}

// LinkConfig describes one direction of a path.
type LinkConfig struct {
	// Rate is the transmission rate in packets per second; 0 or negative
	// means infinitely fast (no serialization or queueing).
	Rate float64
	// QueueCap is the drop-tail queue capacity in packets (excluding the
	// packet in service). Ignored when Rate is infinite. Zero means no
	// buffering: a packet arriving while the link is busy is dropped.
	QueueCap int
	// Delay is the propagation delay process; nil means zero delay.
	Delay DelayProcess
	// Loss drops packets before they enter the queue; nil means no loss.
	Loss LossModel
	// Metrics holds optional observability handles; the zero value
	// disables collection (see LinkMetrics).
	Metrics LinkMetrics
}

// Link is one unidirectional emulated link: loss model, then a finite-rate
// server with a drop-tail queue, then propagation delay. Deliveries are
// made through the callback passed to Send. Delivery order is FIFO: jitter
// never reorders packets (a later packet is delivered no earlier than its
// predecessor), matching the in-order paths of the paper's model.
type Link struct {
	eng     *sim.Engine
	cfg     LinkConfig
	busy    bool
	queue   ring
	stats   LinkStats
	lastOut float64 // latest scheduled delivery time, for FIFO clamping

	// In-service packet and the pre-built completion callback, so serving
	// a packet schedules a stored func instead of allocating a closure
	// per transmission.
	txPayload pkt.Packet
	txDeliver func(pkt.Packet)
	txDone    func()

	// Per-flow counters, indexed by the packets' Flow field; nil (the
	// default) disables collection and costs one nil check per packet.
	perFlow []FlowStats

	// Fault-injection state, mutable at runtime (see the Set* methods).
	dupP    float64  // per-packet duplication probability; 0 disables
	dupRNG  *sim.RNG // stream for duplication decisions
	reorder bool     // when set, the FIFO delivery clamp is suspended
}

type queued struct {
	payload pkt.Packet
	deliver func(pkt.Packet)
}

// ring is a growable circular buffer of queued packets. Pre-sized to the
// link's QueueCap, it recycles its slots so the steady-state FIFO path
// never allocates; growth (capacity raised at runtime) is amortized
// doubling.
type ring struct {
	buf  []queued
	head int // index of the oldest element
	n    int // number of queued elements
}

// push appends one packet at the tail.
func (r *ring) push(q queued) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = q
	r.n++
}

// pop removes and returns the oldest packet, clearing the vacated slot so
// the ring never pins delivered payloads.
func (r *ring) pop() queued {
	q := r.buf[r.head]
	r.buf[r.head] = queued{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return q
}

// grow doubles the ring's capacity, linearizing the live elements.
func (r *ring) grow() {
	newCap := 2 * len(r.buf)
	if newCap < 4 {
		newCap = 4
	}
	buf := make([]queued, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

// presize allocates capacity for n packets up front (bounded, so an
// absurd QueueCap cannot balloon memory before any packet queues).
func (r *ring) presize(n int) {
	const maxPresize = 4096
	if n > maxPresize {
		n = maxPresize
	}
	if n > 0 {
		r.buf = make([]queued, n)
	}
}

// NewLink creates a link driven by eng.
func NewLink(eng *sim.Engine, cfg LinkConfig) *Link {
	if eng == nil {
		panic("netem: nil engine")
	}
	l := &Link{eng: eng, cfg: cfg}
	l.queue.presize(cfg.QueueCap)
	l.txDone = l.onTxDone
	return l
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// EnablePerFlowStats sizes the per-flow counter table for flow IDs
// 0..n-1 and starts collecting. Packets whose Flow falls outside the
// table (or all packets, before this call) are counted only in the
// aggregate LinkStats.
func (l *Link) EnablePerFlowStats(n int) {
	if n > 0 {
		l.perFlow = make([]FlowStats, n)
	}
}

// FlowStats returns a snapshot of flow i's counters; the zero value when
// per-flow collection is disabled or i is out of range.
func (l *Link) FlowStats(i int) FlowStats {
	if i < 0 || i >= len(l.perFlow) {
		return FlowStats{}
	}
	return l.perFlow[i]
}

// flowEntry returns the mutable per-flow counter slot for p, or nil when
// collection is off or the flow ID is out of range.
//
//pftk:hotpath
func (l *Link) flowEntry(p pkt.Packet) *FlowStats {
	if int(p.Flow) >= len(l.perFlow) || p.Flow < 0 {
		return nil
	}
	return &l.perFlow[p.Flow]
}

// QueueLen returns the number of packets waiting (not in service).
func (l *Link) QueueLen() int { return l.queue.n }

// Send offers one packet to the link. deliver is invoked with payload at
// the receiver once the packet survives loss, queueing and propagation;
// dropped packets simply never arrive, exactly like the real network.
// During a duplication window an extra copy of the packet may be admitted
// behind the original, riding the same queue.
//
// Send allocates nothing: queueing recycles ring slots, transmission and
// propagation schedule stored callbacks (no per-packet closures), and the
// event arena underneath is pooled — pinned by TestLinkSendZeroAlloc.
//
//pftk:hotpath
func (l *Link) Send(payload pkt.Packet, deliver func(pkt.Packet)) {
	if deliver == nil {
		panic("netem: nil deliver callback")
	}
	l.stats.Offered++
	l.cfg.Metrics.Offered.Inc()
	fs := l.flowEntry(payload)
	if fs != nil {
		fs.Offered++
	}
	now := l.eng.Now()
	if l.cfg.Loss != nil && l.cfg.Loss.Drop(now) {
		l.stats.RandomDrops++
		if fs != nil {
			fs.RandomDrops++
		}
		l.cfg.Metrics.LossDrops.Inc()
		if f := l.eng.FlightRecorder(); f != nil {
			f.Note(sim.FlightDrop, now, now, 0, "loss")
		}
		return
	}
	l.admit(payload, deliver)
	if l.dupP > 0 && l.dupRNG != nil && l.dupRNG.Bool(l.dupP) {
		l.stats.Duplicated++
		l.admit(payload, deliver)
	}
}

// admit routes one surviving packet into the rate server (or straight to
// propagation on an infinitely fast link).
//
//pftk:hotpath
func (l *Link) admit(payload pkt.Packet, deliver func(pkt.Packet)) {
	if l.busy {
		if l.queue.n >= l.cfg.QueueCap {
			l.stats.QueueDrops++
			if fs := l.flowEntry(payload); fs != nil {
				fs.QueueDrops++
			}
			l.cfg.Metrics.FIFODrops.Inc()
			if f := l.eng.FlightRecorder(); f != nil {
				f.Note(sim.FlightDrop, l.eng.Now(), l.eng.Now(), 0, "fifo")
			}
			return
		}
		l.queue.push(queued{payload, deliver})
		if l.queue.n > l.stats.MaxQueue {
			l.stats.MaxQueue = l.queue.n
		}
		l.cfg.Metrics.Queue.Set(float64(l.queue.n))
		return
	}
	if l.cfg.Rate <= 0 {
		l.propagate(payload, deliver)
		return
	}
	l.serve(payload, deliver)
}

// serve puts a packet into transmission. If the link rate was switched to
// infinite while packets were queued, the backlog drains immediately.
//
//pftk:hotpath
func (l *Link) serve(payload pkt.Packet, deliver func(pkt.Packet)) {
	if l.cfg.Rate <= 0 {
		l.busy = false
		l.propagate(payload, deliver)
		for l.queue.n > 0 {
			next := l.queue.pop()
			l.propagate(next.payload, next.deliver)
		}
		l.cfg.Metrics.Queue.Set(0)
		return
	}
	l.busy = true
	l.stats.lastBusyFrom = l.eng.Now()
	l.txPayload, l.txDeliver = payload, deliver
	l.eng.After(1/l.cfg.Rate, l.txDone)
}

// onTxDone completes the in-service packet's transmission: hand it to
// propagation and pull the next packet, if any, into service. Stored as
// l.txDone at construction so serve never allocates a closure.
//
//pftk:hotpath
func (l *Link) onTxDone() {
	l.stats.BusySeconds += l.eng.Now() - l.stats.lastBusyFrom
	payload, deliver := l.txPayload, l.txDeliver
	l.txPayload, l.txDeliver = pkt.Packet{}, nil
	l.propagate(payload, deliver)
	if l.queue.n > 0 {
		next := l.queue.pop()
		l.cfg.Metrics.Queue.Set(float64(l.queue.n))
		l.serve(next.payload, next.deliver)
	} else {
		l.busy = false
	}
}

// propagate schedules final delivery after the propagation delay,
// clamping so deliveries stay in FIFO order under jitter. During a
// reordering window the clamp is suspended: a short-delay packet may
// overtake its predecessors, which is exactly the pathology the fault
// injects.
//
//pftk:hotpath
func (l *Link) propagate(payload pkt.Packet, deliver func(pkt.Packet)) {
	d := 0.0
	if l.cfg.Delay != nil {
		d = l.cfg.Delay.Delay(l.eng.Now())
	}
	if d < 0 || math.IsNaN(d) {
		d = 0
	}
	at := l.eng.Now() + d
	if !l.reorder && at < l.lastOut {
		at = l.lastOut
	}
	if at > l.lastOut {
		l.lastOut = at
	}
	l.stats.Delivered++
	if fs := l.flowEntry(payload); fs != nil {
		fs.Delivered++
	}
	l.cfg.Metrics.Delivered.Inc()
	l.eng.SchedulePacket(at, deliver, payload)
}

// SetLoss replaces the link's loss model; nil disables loss. Effective
// for the next offered packet.
func (l *Link) SetLoss(m LossModel) { l.cfg.Loss = m }

// Loss returns the link's current loss model (nil when lossless).
func (l *Link) Loss() LossModel { return l.cfg.Loss }

// SetDelay replaces the link's propagation-delay process; nil means zero
// delay. In-flight packets keep the delay they were assigned.
func (l *Link) SetDelay(d DelayProcess) { l.cfg.Delay = d }

// Delay returns the link's current delay process.
func (l *Link) Delay() DelayProcess { return l.cfg.Delay }

// SetRate changes the transmission rate in packets per second; 0 or
// negative means infinitely fast. A packet already in transmission keeps
// its old serialization time; queued packets are served at the new rate
// (and drain immediately when the link becomes infinitely fast).
func (l *Link) SetRate(rate float64) { l.cfg.Rate = rate }

// SetQueueCap changes the drop-tail capacity. Already-queued packets are
// never evicted; a shrunken capacity only affects new arrivals.
func (l *Link) SetQueueCap(capacity int) { l.cfg.QueueCap = capacity }

// SetDuplicate opens (p > 0) or closes (p <= 0) a duplication window:
// each surviving packet is duplicated with probability p, drawing
// decisions from rng.
func (l *Link) SetDuplicate(p float64, rng *sim.RNG) {
	l.dupP = p
	l.dupRNG = rng
}

// SetReorder suspends (on) or restores (off) the FIFO delivery clamp.
// With the clamp suspended, delay jitter translates into out-of-order
// arrivals — the duplicate-ACK generator of real networks.
func (l *Link) SetReorder(on bool) { l.reorder = on }

// PathConfig describes a bidirectional sender-receiver path.
type PathConfig struct {
	// Forward carries data packets, Reverse carries ACKs.
	Forward, Reverse LinkConfig
}

// Path couples a forward (data) and reverse (ACK) link.
type Path struct {
	// Forward and Reverse are the two directions.
	Forward, Reverse *Link
}

// NewPath builds both directions of a path on the same engine.
func NewPath(eng *sim.Engine, cfg PathConfig) *Path {
	return &Path{
		Forward: NewLink(eng, cfg.Forward),
		Reverse: NewLink(eng, cfg.Reverse),
	}
}

// PathController is the runtime-mutation surface of an emulated path: the
// handle a scenario engine drives to change path conditions and inject
// faults mid-simulation. All methods follow the convention of the paper's
// unidirectional bulk transfers: loss, bottleneck, duplication and
// reordering act on the forward (data) direction, while delay is settable
// per direction so an RTT change splits across both. Implementations are
// driven from the single simulation goroutine and need no locking.
type PathController interface {
	// SetLoss replaces the data-direction loss model (nil = lossless).
	SetLoss(m LossModel)
	// Loss returns the data-direction loss model currently installed.
	Loss() LossModel
	// SetOneWayDelay replaces the delay processes of the forward and
	// reverse directions (nil leaves a direction unchanged).
	SetOneWayDelay(fwd, rev DelayProcess)
	// SetBottleneck reconfigures the data direction's transmission rate
	// (packets/s; <= 0 means infinitely fast) and drop-tail capacity.
	SetBottleneck(rate float64, queueCap int)
	// SetDuplicate opens (p > 0) or closes a data-direction duplication
	// window.
	SetDuplicate(p float64, rng *sim.RNG)
	// SetReorder suspends (on) or restores the data direction's FIFO
	// delivery ordering.
	SetReorder(on bool)
	// DataStats snapshots the data-direction link counters, the basis
	// for per-phase packet/drop attribution.
	DataStats() LinkStats
}

var _ PathController = (*Path)(nil)

// SetLoss implements PathController on the forward link.
func (p *Path) SetLoss(m LossModel) { p.Forward.SetLoss(m) }

// Loss implements PathController.
func (p *Path) Loss() LossModel { return p.Forward.Loss() }

// SetOneWayDelay implements PathController; a nil process leaves that
// direction's delay unchanged.
func (p *Path) SetOneWayDelay(fwd, rev DelayProcess) {
	if fwd != nil {
		p.Forward.SetDelay(fwd)
	}
	if rev != nil {
		p.Reverse.SetDelay(rev)
	}
}

// SetBottleneck implements PathController on the forward link.
func (p *Path) SetBottleneck(rate float64, queueCap int) {
	p.Forward.SetRate(rate)
	p.Forward.SetQueueCap(queueCap)
}

// SetDuplicate implements PathController on the forward link.
func (p *Path) SetDuplicate(prob float64, rng *sim.RNG) { p.Forward.SetDuplicate(prob, rng) }

// SetReorder implements PathController on the forward link.
func (p *Path) SetReorder(on bool) { p.Forward.SetReorder(on) }

// DataStats implements PathController.
func (p *Path) DataStats() LinkStats { return p.Forward.Stats() }

// SymmetricPath returns a PathConfig with the given one-way delay process
// constructors, loss on the forward direction only (the common case for
// the paper's unidirectional bulk transfers) and infinitely fast links.
func SymmetricPath(oneWay float64, loss LossModel) PathConfig {
	return PathConfig{
		Forward: LinkConfig{Delay: ConstantDelay(oneWay), Loss: loss},
		Reverse: LinkConfig{Delay: ConstantDelay(oneWay)},
	}
}

// ModemPath reproduces the Fig. 11 pathology: a slow bottleneck (rate in
// packets/s) with a deep buffer dedicated to the connection (queueCap
// packets) and a small propagation delay. With a saturated sender, the
// queueing delay — and hence the measured RTT — grows with the window,
// producing the RTT/window correlation near 1 reported in Section IV.
func ModemPath(rate float64, queueCap int, oneWay float64) PathConfig {
	return PathConfig{
		Forward: LinkConfig{Rate: rate, QueueCap: queueCap, Delay: ConstantDelay(oneWay)},
		Reverse: LinkConfig{Delay: ConstantDelay(oneWay)},
	}
}
