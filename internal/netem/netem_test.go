package netem

import (
	"math"
	"testing"
	"testing/quick"

	"pftk/internal/pkt"
	"pftk/internal/sim"
)

func TestNoLossNeverDrops(t *testing.T) {
	var m NoLoss
	for i := 0; i < 100; i++ {
		if m.Drop(float64(i)) {
			t.Fatal("NoLoss dropped")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	m := NewBernoulli(0.2, sim.NewRNG(1))
	drops := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Drop(0) {
			drops++
		}
	}
	if rate := float64(drops) / n; math.Abs(rate-0.2) > 0.01 {
		t.Errorf("bernoulli rate = %g, want ~0.2", rate)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	never := NewBernoulli(0, sim.NewRNG(1))
	always := NewBernoulli(1, sim.NewRNG(1))
	for i := 0; i < 100; i++ {
		if never.Drop(0) {
			t.Fatal("p=0 dropped")
		}
		if !always.Drop(0) {
			t.Fatal("p=1 kept")
		}
	}
}

func TestGilbertElliottAggregateRate(t *testing.T) {
	for _, p := range []float64{0.01, 0.05, 0.2} {
		m := GilbertElliottForLossRate(p, 3, sim.NewRNG(42))
		drops := 0
		const n = 300000
		for i := 0; i < n; i++ {
			if m.Drop(0) {
				drops++
			}
		}
		rate := float64(drops) / n
		if math.Abs(rate-p)/p > 0.15 {
			t.Errorf("GE(%g) aggregate rate = %g", p, rate)
		}
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// Mean burst length should be near the configured value.
	m := GilbertElliottForLossRate(0.05, 4, sim.NewRNG(7))
	var bursts, lost int
	in := false
	for i := 0; i < 500000; i++ {
		if m.Drop(0) {
			lost++
			if !in {
				bursts++
				in = true
			}
		} else {
			in = false
		}
	}
	meanBurst := float64(lost) / float64(bursts)
	if meanBurst < 2.5 || meanBurst > 6 {
		t.Errorf("mean burst length = %g, want ~4", meanBurst)
	}
}

func TestRoundCorrelatedBurstsWithinGap(t *testing.T) {
	// Force a burst start, then verify packets within the gap all drop
	// and a packet after the gap is evaluated fresh.
	rc := NewRoundCorrelated(1, 0.05, sim.NewRNG(3)) // always start burst
	if !rc.Drop(0) {
		t.Fatal("p=1 must drop first packet")
	}
	rc.P = 0 // no new bursts
	if !rc.Drop(0.01) || !rc.Drop(0.02) {
		t.Error("packets within gap of an active burst must drop")
	}
	if rc.Drop(0.02 + 0.06) {
		t.Error("packet after the gap should see a fresh (p=0) trial")
	}
}

func TestRoundCorrelatedAggregateRate(t *testing.T) {
	// With per-packet spacing larger than the gap, each trial is fresh
	// Bernoulli, so the aggregate equals P.
	rc := NewRoundCorrelated(0.1, 0.001, sim.NewRNG(5))
	drops := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if rc.Drop(float64(i)) { // 1s spacing >> 1ms gap
			drops++
		}
	}
	if rate := float64(drops) / n; math.Abs(rate-0.1) > 0.01 {
		t.Errorf("isolated-packet rate = %g, want ~0.1", rate)
	}
}

func TestPeriodic(t *testing.T) {
	m := &Periodic{N: 3}
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, m.Drop(0))
	}
	for i, d := range pattern {
		want := (i+1)%3 == 0
		if d != want {
			t.Errorf("packet %d drop=%v, want %v", i, d, want)
		}
	}
	z := &Periodic{N: 0}
	if z.Drop(0) {
		t.Error("N=0 should never drop")
	}
}

func TestScript(t *testing.T) {
	s := NewScript(1, 3)
	want := []bool{false, true, false, true, false}
	for i, w := range want {
		if got := s.Drop(0); got != w {
			t.Errorf("packet %d: drop=%v want %v", i, got, w)
		}
	}
	if s.Offered() != 5 {
		t.Errorf("Offered = %d, want 5", s.Offered())
	}
}

func TestConstantDelay(t *testing.T) {
	if d := ConstantDelay(0.05).Delay(99); d != 0.05 {
		t.Errorf("delay = %g", d)
	}
}

func TestUniformJitterDelayRange(t *testing.T) {
	d := &UniformJitterDelay{Base: 0.1, Jitter: 0.02, RNG: sim.NewRNG(1)}
	for i := 0; i < 1000; i++ {
		v := d.Delay(0)
		if v < 0.1 || v >= 0.12 {
			t.Fatalf("jitter delay out of range: %g", v)
		}
	}
	noJitter := &UniformJitterDelay{Base: 0.1}
	if noJitter.Delay(0) != 0.1 {
		t.Error("zero jitter should return base")
	}
}

func TestShiftedExpDelayMean(t *testing.T) {
	d := &ShiftedExpDelay{Base: 0.1, TailMean: 0.05, RNG: sim.NewRNG(2)}
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += d.Delay(0)
	}
	if m := sum / n; math.Abs(m-0.15) > 0.005 {
		t.Errorf("mean delay = %g, want ~0.15", m)
	}
	plain := &ShiftedExpDelay{Base: 0.2}
	if plain.Delay(0) != 0.2 {
		t.Error("zero tail should return base")
	}
}

func TestLinkDeliversInstantWhenInfinitelyFast(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Delay: ConstantDelay(0.05)})
	var arrived []float64
	l.Send(pk(1), func(pkt.Packet) { arrived = append(arrived, eng.Now()) })
	eng.Run()
	if len(arrived) != 1 || arrived[0] != 0.05 {
		t.Errorf("arrived = %v, want [0.05]", arrived)
	}
	st := l.Stats()
	if st.Offered != 1 || st.Delivered != 1 {
		t.Errorf("stats = %v", st)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Rate 10 pkts/s: back-to-back sends leave the link 0.1s apart.
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 10, QueueCap: 10})
	var times []float64
	deliver := func(pkt.Packet) { times = append(times, eng.Now()) }
	for i := 0; i < 3; i++ {
		l.Send(pk(i), deliver)
	}
	eng.Run()
	want := []float64{0.1, 0.2, 0.3}
	if len(times) != 3 {
		t.Fatalf("delivered %d, want 3", len(times))
	}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-9 {
			t.Errorf("delivery %d at %g, want %g", i, times[i], want[i])
		}
	}
}

func TestLinkDropTail(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 1, QueueCap: 2})
	delivered := 0
	for i := 0; i < 10; i++ {
		l.Send(pk(i), func(pkt.Packet) { delivered++ })
	}
	eng.Run()
	// 1 in service + 2 queued survive; 7 dropped.
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3", delivered)
	}
	st := l.Stats()
	if st.QueueDrops != 7 {
		t.Errorf("queue drops = %d, want 7", st.QueueDrops)
	}
	if st.MaxQueue != 2 {
		t.Errorf("max queue = %d, want 2", st.MaxQueue)
	}
	if lr := st.LossRate(); math.Abs(lr-0.7) > 1e-12 {
		t.Errorf("loss rate = %g, want 0.7", lr)
	}
}

func TestLinkZeroQueueCap(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 1, QueueCap: 0})
	delivered := 0
	l.Send(pk(1), func(pkt.Packet) { delivered++ })
	l.Send(pk(2), func(pkt.Packet) { delivered++ })
	eng.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 with no buffering", delivered)
	}
}

func TestLinkRandomLossBeforeQueue(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Loss: NewScript(0)})
	delivered := 0
	l.Send(pk(1), func(pkt.Packet) { delivered++ })
	l.Send(pk(2), func(pkt.Packet) { delivered++ })
	eng.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
	if l.Stats().RandomDrops != 1 {
		t.Errorf("random drops = %d, want 1", l.Stats().RandomDrops)
	}
}

func TestLinkFIFOOrder(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 100, QueueCap: 50})
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		l.Send(pk(i), func(p pkt.Packet) { order = append(order, int(p.Seq)) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order delivery: %v", order)
		}
	}
}

func TestLinkPayloadIntegrity(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 10, QueueCap: 5, Delay: ConstantDelay(0.01)})
	var got []pkt.Packet
	for i, k := range []pkt.Kind{pkt.Data, pkt.Ack, pkt.Feedback} {
		l.Send(pkt.Packet{Seq: uint64(i + 1), Kind: k, Flow: int32(i), Sent: float64(i) * 0.5, Retx: i == 2},
			func(p pkt.Packet) { got = append(got, p) })
	}
	eng.Run()
	if len(got) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(got))
	}
	for i, p := range got {
		want := pkt.Packet{Seq: uint64(i + 1), Flow: int32(i), Sent: float64(i) * 0.5, Retx: i == 2}
		switch i {
		case 0:
			want.Kind = pkt.Data
		case 1:
			want.Kind = pkt.Ack
		case 2:
			want.Kind = pkt.Feedback
		}
		if p != want {
			t.Errorf("packet %d = %+v, want %+v", i, p, want)
		}
	}
}

func TestPathDirections(t *testing.T) {
	var eng sim.Engine
	p := NewPath(&eng, SymmetricPath(0.05, nil))
	var fwdAt, revAt float64
	p.Forward.Send(pk(1), func(pkt.Packet) { fwdAt = eng.Now() })
	p.Reverse.Send(pk(2), func(pkt.Packet) { revAt = eng.Now() })
	eng.Run()
	if fwdAt != 0.05 || revAt != 0.05 {
		t.Errorf("one-way delays: fwd=%g rev=%g, want 0.05 both", fwdAt, revAt)
	}
}

func TestModemPathQueueingDelayGrowsWithBacklog(t *testing.T) {
	var eng sim.Engine
	cfg := ModemPath(4, 30, 0.05) // ~28.8kbps with 1KB packets
	p := NewPath(&eng, cfg)
	var arrivals []float64
	n := 10
	for i := 0; i < n; i++ {
		p.Forward.Send(pk(i), func(pkt.Packet) { arrivals = append(arrivals, eng.Now()) })
	}
	eng.Run()
	if len(arrivals) != n {
		t.Fatalf("delivered %d, want %d", len(arrivals), n)
	}
	// Packet i sees i/rate of queueing: arrival gap must equal 1/rate.
	for i := 1; i < n; i++ {
		if gap := arrivals[i] - arrivals[i-1]; math.Abs(gap-0.25) > 1e-9 {
			t.Errorf("gap %d = %g, want 0.25", i, gap)
		}
	}
}

func TestCrossTrafficPoissonRate(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{}) // infinitely fast sink
	ct := NewCrossTraffic(&eng, l, CrossTrafficConfig{Rate: 50, RNG: sim.NewRNG(11)})
	ct.Start()
	eng.RunUntil(100)
	got := float64(ct.Injected()) / 100
	if math.Abs(got-50)/50 > 0.1 {
		t.Errorf("cross traffic rate = %g pkts/s, want ~50", got)
	}
	ct.Stop()
}

func TestCrossTrafficOnOffDutyCycle(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{})
	// 50% duty cycle: mean rate should be ~half the ON rate.
	ct := NewCrossTraffic(&eng, l, CrossTrafficConfig{Rate: 100, OnMean: 1, OffMean: 1, RNG: sim.NewRNG(13)})
	ct.Start()
	eng.RunUntil(200)
	got := float64(ct.Injected()) / 200
	if got < 30 || got > 70 {
		t.Errorf("on/off mean rate = %g pkts/s, want ~50", got)
	}
	ct.Stop()
}

func TestCrossTrafficZeroRateNoop(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{})
	ct := NewCrossTraffic(&eng, l, CrossTrafficConfig{RNG: sim.NewRNG(1)})
	ct.Start()
	eng.RunUntil(10)
	if ct.Injected() != 0 {
		t.Error("zero-rate generator injected packets")
	}
}

func TestCrossTrafficCongestsBottleneck(t *testing.T) {
	// Heavy cross traffic through a slow bottleneck must produce queue
	// drops for a probe stream.
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 20, QueueCap: 10})
	ct := NewCrossTraffic(&eng, l, CrossTrafficConfig{Rate: 40, RNG: sim.NewRNG(17)})
	ct.Start()
	eng.RunUntil(50)
	ct.Stop()
	eng.Run()
	if l.Stats().QueueDrops == 0 {
		t.Error("overloaded bottleneck produced no queue drops")
	}
}

func TestQuickLinkConservation(t *testing.T) {
	// offered = delivered + randomDrops + queueDrops, for arbitrary
	// configurations and workloads.
	f := func(nRaw uint8, rateRaw, capRaw uint8, lossRaw uint8, seed uint64) bool {
		var eng sim.Engine
		n := int(nRaw)%100 + 1
		cfg := LinkConfig{
			Rate:     float64(rateRaw%50) * 2, // may be 0 = infinite
			QueueCap: int(capRaw % 20),
			Loss:     NewBernoulli(float64(lossRaw%100)/100, sim.NewRNG(seed)),
			Delay:    ConstantDelay(0.01),
		}
		l := NewLink(&eng, cfg)
		delivered := 0
		for i := 0; i < n; i++ {
			l.Send(pk(i), func(pkt.Packet) { delivered++ })
			eng.RunUntil(eng.Now() + float64(i%3)*0.005)
		}
		eng.Run()
		st := l.Stats()
		return st.Offered == n &&
			st.Delivered == delivered &&
			st.Offered == st.Delivered+st.RandomDrops+st.QueueDrops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLinkNilDeliverPanics(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil deliver")
		}
	}()
	l.Send(pk(1), nil)
}

func TestNewLinkNilEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil engine")
		}
	}()
	NewLink(nil, LinkConfig{})
}

func TestTraceDrivenReplay(t *testing.T) {
	pattern := []bool{false, true, false, false}
	td := NewTraceDriven(pattern)
	var got []bool
	for i := 0; i < 8; i++ { // wraps around
		got = append(got, td.Drop(0))
	}
	for i, want := range append(pattern, pattern...) {
		if got[i] != want {
			t.Errorf("replay[%d] = %v, want %v", i, got[i], want)
		}
	}
	if td.Offered() != 8 {
		t.Errorf("Offered = %d", td.Offered())
	}
	empty := NewTraceDriven(nil)
	if empty.Drop(0) {
		t.Error("empty pattern dropped")
	}
}
