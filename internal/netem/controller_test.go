package netem

import (
	"testing"

	"pftk/internal/pkt"
	"pftk/internal/sim"
)

func TestLinkSetLossTakesEffectImmediately(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{})
	var got []int
	l.Send(pk(1), collect(&got))
	l.SetLoss(NewScript(0)) // drop the next offered packet
	l.Send(pk(2), collect(&got))
	l.SetLoss(nil)
	l.Send(pk(3), collect(&got))
	eng.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
	if s := l.Stats(); s.RandomDrops != 1 {
		t.Fatalf("RandomDrops = %d, want 1", s.RandomDrops)
	}
}

func TestLinkSetDelayChangesRTTMidRun(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Delay: ConstantDelay(0.1)})
	var arrivals []float64
	deliver := func(pkt.Packet) { arrivals = append(arrivals, eng.Now()) }
	l.Send(pk(1), deliver)
	eng.Run()
	l.SetDelay(ConstantDelay(0.5))
	l.Send(pk(2), deliver)
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 0.1 {
		t.Errorf("first arrival at %g, want 0.1", arrivals[0])
	}
	if arrivals[1] != 0.6 {
		t.Errorf("second arrival at %g, want 0.6", arrivals[1])
	}
}

func TestLinkSetRateInfiniteDrainsQueue(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 1, QueueCap: 10})
	var got []int
	// First packet enters service (1 s serialization); the rest queue.
	for i := 1; i <= 4; i++ {
		l.Send(pk(i), collect(&got))
	}
	if l.QueueLen() != 3 {
		t.Fatalf("QueueLen = %d, want 3", l.QueueLen())
	}
	// Switch to an infinitely fast link: when the in-service packet
	// completes, the backlog must drain immediately rather than hang.
	l.SetRate(0)
	eng.Run()
	if len(got) != 4 {
		t.Fatalf("delivered %v, want all 4", got)
	}
	if l.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after drain, want 0", l.QueueLen())
	}
}

func TestLinkSetQueueCapAffectsNewArrivalsOnly(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{Rate: 1, QueueCap: 4})
	var got []int
	for i := 1; i <= 5; i++ { // 1 in service, 4 queued
		l.Send(pk(i), collect(&got))
	}
	l.SetQueueCap(1) // shrink below current backlog: nothing evicted
	if l.QueueLen() != 4 {
		t.Fatalf("QueueLen = %d, want 4 (no eviction)", l.QueueLen())
	}
	l.Send(pk(6), collect(&got)) // over the new cap: dropped
	if s := l.Stats(); s.QueueDrops != 1 {
		t.Fatalf("QueueDrops = %d, want 1", s.QueueDrops)
	}
	eng.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d packets, want 5", len(got))
	}
}

func TestLinkDuplicateWindow(t *testing.T) {
	var eng sim.Engine
	l := NewLink(&eng, LinkConfig{})
	var got []int
	l.SetDuplicate(1, sim.NewRNG(1)) // duplicate every packet
	for i := 1; i <= 3; i++ {
		l.Send(pk(i), collect(&got))
	}
	l.SetDuplicate(0, nil)
	l.Send(pk(4), collect(&got))
	eng.Run()
	if len(got) != 7 {
		t.Fatalf("delivered %v, want 3 duplicated + 1 single = 7", got)
	}
	if s := l.Stats(); s.Duplicated != 3 {
		t.Fatalf("Duplicated = %d, want 3", s.Duplicated)
	}
}

func TestLinkReorderWindowAllowsOvertaking(t *testing.T) {
	var eng sim.Engine
	// Scripted delays: first packet slow, second fast.
	delays := []float64{0.5, 0.1}
	i := 0
	l := NewLink(&eng, LinkConfig{Delay: delayFunc(func() float64 {
		d := delays[i%len(delays)]
		i++
		return d
	})})
	var got []int
	l.SetReorder(true)
	l.Send(pk(1), collect(&got))
	l.Send(pk(2), collect(&got))
	eng.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("got %v, want [2 1] (overtaking allowed)", got)
	}

	// With the clamp restored, the same delays stay FIFO.
	l.SetReorder(false)
	i = 0
	got = nil
	l.Send(pk(1), collect(&got))
	l.Send(pk(2), collect(&got))
	eng.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2] (FIFO clamp)", got)
	}
}

// delayFunc adapts a closure to DelayProcess for tests.
type delayFunc func() float64

func (f delayFunc) Delay(float64) float64 { return f() }

func TestPathImplementsController(t *testing.T) {
	var eng sim.Engine
	p := NewPath(&eng, SymmetricPath(0.05, nil))
	var pc PathController = p

	pc.SetLoss(NewScript(0))
	if pc.Loss() == nil {
		t.Fatal("Loss() = nil after SetLoss")
	}
	pc.SetOneWayDelay(ConstantDelay(0.2), ConstantDelay(0.2))
	pc.SetBottleneck(100, 8)
	pc.SetDuplicate(0.5, sim.NewRNG(2))
	pc.SetReorder(true)

	var got []int
	p.Forward.Send(pk(1), collect(&got)) // dropped by the script
	eng.Run()
	if st := pc.DataStats(); st.Offered != 1 || st.RandomDrops != 1 {
		t.Fatalf("DataStats = %+v, want offered=1 randomDrops=1", st)
	}

	// Nil delay leaves a direction untouched.
	before := p.Reverse.Delay()
	pc.SetOneWayDelay(ConstantDelay(0.3), nil)
	if p.Reverse.Delay() != before {
		t.Error("nil reverse delay replaced the existing process")
	}
}
