package netem

import (
	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// CrossTraffic injects background packets into a link so that a TCP flow
// under test competes for the bottleneck queue, producing the
// congestion-induced (rather than purely random) drops typical of the
// paper's Internet paths.
//
// Arrivals follow an interrupted Poisson process: during ON periods
// packets arrive at rate Rate; ON and OFF period lengths are exponential
// with means OnMean and OffMean. With OffMean = 0 the process is plain
// Poisson.
type CrossTraffic struct {
	Link    *Link
	Rate    float64 // packet arrival rate during ON periods (pkts/s)
	OnMean  float64 // mean ON duration (seconds)
	OffMean float64 // mean OFF duration (seconds); 0 disables OFF periods

	eng      *sim.Engine
	rng      *sim.RNG
	on       bool
	until    float64 // end of current ON/OFF period
	injected int
	stopped  bool
}

// CrossTrafficConfig parameterizes a generator.
type CrossTrafficConfig struct {
	// Rate is the packet arrival rate during ON periods (pkts/s); 0
	// makes Start a no-op.
	Rate float64
	// OnMean and OffMean are the mean ON/OFF period lengths in seconds;
	// OffMean = 0 disables OFF periods (plain Poisson arrivals).
	OnMean, OffMean float64
	// RNG drives the arrival and period processes.
	RNG *sim.RNG
}

// NewCrossTraffic creates a generator feeding link. Call Start to begin.
func NewCrossTraffic(eng *sim.Engine, link *Link, cfg CrossTrafficConfig) *CrossTraffic {
	return &CrossTraffic{Link: link, Rate: cfg.Rate, OnMean: cfg.OnMean, OffMean: cfg.OffMean, eng: eng, rng: cfg.RNG}
}

// Injected returns the number of background packets offered so far.
func (c *CrossTraffic) Injected() int { return c.injected }

// Stop halts the generator after the next scheduled arrival.
func (c *CrossTraffic) Stop() { c.stopped = true }

// Start begins injecting background packets.
func (c *CrossTraffic) Start() {
	if c.Rate <= 0 {
		return
	}
	c.on = true
	if c.OffMean > 0 && c.OnMean > 0 {
		c.until = c.eng.Now() + c.rng.Exp(c.OnMean)
	} else {
		c.until = -1 // always on
	}
	c.scheduleNext()
}

func (c *CrossTraffic) scheduleNext() {
	if c.stopped {
		return
	}
	gap := c.rng.Exp(1 / c.Rate)
	c.eng.After(gap, func() {
		if c.stopped {
			return
		}
		c.togglePeriods()
		if c.on {
			c.injected++
			c.Link.Send(pkt.Packet{Kind: pkt.Cross}, crossSink)
		}
		c.scheduleNext()
	})
}

// crossSink absorbs delivered background packets; no protocol consumes
// them.
func crossSink(pkt.Packet) {}

// togglePeriods flips between ON and OFF when the current period expires.
func (c *CrossTraffic) togglePeriods() {
	if c.until < 0 {
		return
	}
	now := c.eng.Now()
	for now >= c.until {
		if c.on {
			c.on = false
			c.until += c.rng.Exp(c.OffMean)
		} else {
			c.on = true
			c.until += c.rng.Exp(c.OnMean)
		}
	}
}
