package netem

import (
	"testing"
	"testing/quick"

	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// TestQuickFIFOUnderJitter is the regression property for the reordering
// bug class: however jittery the delay process, deliveries must preserve
// send order (real paths in the paper's model are FIFO; reordering would
// fabricate duplicate ACKs and spurious fast retransmits).
func TestQuickFIFOUnderJitter(t *testing.T) {
	f := func(seed uint64, baseRaw, jitterRaw uint8, nRaw uint16) bool {
		base := float64(baseRaw%100)/1000 + 0.001
		jitter := float64(jitterRaw%200) / 1000 // may exceed base
		n := int(nRaw%300) + 2

		var eng sim.Engine
		rng := sim.NewRNG(seed)
		l := NewLink(&eng, LinkConfig{
			Delay: &UniformJitterDelay{Base: base, Jitter: jitter, RNG: rng},
		})
		var order []int
		for i := 0; i < n; i++ {
			i := i
			// Send in bursts with tiny gaps, the worst case for
			// jitter reordering.
			eng.Schedule(float64(i/8)*0.001, func() {
				l.Send(pk(i), func(p pkt.Packet) { order = append(order, int(p.Seq)) })
			})
		}
		eng.Run()
		if len(order) != n {
			return false
		}
		for i, v := range order {
			if v != i {
				t.Logf("reordered at %d: %v", i, order[:i+1])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFIFOThroughQueue extends the property to rate-limited queued
// links with random loss: surviving packets still arrive in order.
func TestQuickFIFOThroughQueue(t *testing.T) {
	f := func(seed uint64, rateRaw, capRaw uint8) bool {
		rate := float64(rateRaw%80) + 5
		qcap := int(capRaw%20) + 1
		var eng sim.Engine
		rng := sim.NewRNG(seed)
		l := NewLink(&eng, LinkConfig{
			Rate:     rate,
			QueueCap: qcap,
			Delay:    &ShiftedExpDelay{Base: 0.01, TailMean: 0.03, RNG: rng.Fork("d")},
			Loss:     NewBernoulli(0.1, rng.Fork("l")),
		})
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			eng.Schedule(float64(i)*0.005, func() {
				l.Send(pk(i), func(p pkt.Packet) { order = append(order, int(p.Seq)) })
			})
		}
		eng.Run()
		prev := -1
		for _, v := range order {
			if v <= prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
