package netem

import (
	"math"

	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// RED implements Random Early Detection (Floyd & Jacobson, 1993 — the
// paper's reference [4]) as a drop decision usable in front of a link
// queue: it tracks an exponentially-weighted moving average of the queue
// length and drops arriving packets with a probability that rises linearly
// between a minimum and maximum threshold, spacing drops out instead of
// clustering them at buffer overflow.
//
// Relative to drop-tail, RED de-correlates losses within a window, which
// shifts a TCP flow's loss indications from timeouts toward fast
// retransmits — an effect the experiment harness quantifies (the
// "lossmodels" study).
type RED struct {
	// MinTh and MaxTh are the average-queue thresholds in packets.
	MinTh, MaxTh float64
	// MaxP is the drop probability at MaxTh (classic value: 0.1).
	MaxP float64
	// Wq is the EWMA weight for the average queue (classic value:
	// 0.002).
	Wq float64
	// RNG drives the probabilistic drops.
	RNG *sim.RNG

	avg   float64
	count int // packets since the last drop, for drop spreading
}

// NewRED returns a RED controller with the classic parameters for a queue
// of the given capacity: MinTh = cap/4 (at least 1), MaxTh = 3·cap/4,
// MaxP = 0.1, Wq = 0.002.
func NewRED(capacity int, rng *sim.RNG) *RED {
	minTh := float64(capacity) / 4
	if minTh < 1 {
		minTh = 1
	}
	return &RED{
		MinTh: minTh,
		MaxTh: 3 * float64(capacity) / 4,
		MaxP:  0.1,
		Wq:    0.002,
		RNG:   rng,
	}
}

// Avg returns the current average queue estimate.
func (r *RED) Avg() float64 { return r.avg }

// ShouldDrop updates the average with the instantaneous queue length q
// (in packets, including the packet in service) and decides the fate of
// the arriving packet.
func (r *RED) ShouldDrop(q int) bool {
	r.avg = (1-r.Wq)*r.avg + r.Wq*float64(q)
	switch {
	case r.avg < r.MinTh:
		r.count = 0
		return false
	case r.avg >= r.MaxTh:
		r.count = 0
		return true
	default:
		// Linear ramp with Floyd's count correction, which spaces
		// drops roughly uniformly.
		pb := r.MaxP * (r.avg - r.MinTh) / (r.MaxTh - r.MinTh)
		pa := pb / math.Max(1-float64(r.count)*pb, 1e-9)
		r.count++
		if r.RNG.Bool(pa) {
			r.count = 0
			return true
		}
		return false
	}
}

// REDQueueLink wraps a Link with a RED controller: arriving packets first
// pass the RED decision against the link's current queue occupancy, then
// enter the normal drop-tail queue (which still bounds the worst case).
type REDQueueLink struct {
	*Link
	RED *RED

	redDrops int
}

// NewREDLink builds a rate-limited link whose queue is managed by RED.
func NewREDLink(eng *sim.Engine, cfg LinkConfig, rng *sim.RNG) *REDQueueLink {
	return &REDQueueLink{
		Link: NewLink(eng, cfg),
		RED:  NewRED(cfg.QueueCap, rng),
	}
}

// REDDrops returns the number of packets dropped by the RED decision
// (excluding drop-tail overflow).
func (l *REDQueueLink) REDDrops() int { return l.redDrops }

// Send offers a packet through RED and then the underlying link.
func (l *REDQueueLink) Send(payload pkt.Packet, deliver func(pkt.Packet)) {
	occupancy := l.QueueLen()
	if l.busy {
		occupancy++
	}
	if l.RED.ShouldDrop(occupancy) {
		l.redDrops++
		l.stats.Offered++
		l.stats.RandomDrops++
		if fs := l.flowEntry(payload); fs != nil {
			fs.Offered++
			fs.RandomDrops++
		}
		l.cfg.Metrics.Offered.Inc()
		l.cfg.Metrics.REDDrops.Inc()
		return
	}
	l.Link.Send(payload, deliver)
}
