package netem

import "pftk/internal/obs"

// LinkMetrics carries the optional observability handles for one link.
// The zero value (all-nil handles) disables collection at the cost of a
// nil check per update — the obs-layer contract that keeps the enqueue
// and drop paths allocation-free when metrics are off.
//
// Drops are attributed by cause, which is exactly the decomposition the
// trace analysis needs to explain loss-indication mixes: LossDrops come
// from the configured LossModel (the paper's wide-area loss process),
// FIFODrops from drop-tail overflow, REDDrops from the RED early-drop
// decision in front of the queue.
type LinkMetrics struct {
	Offered   *obs.Counter
	Delivered *obs.Counter
	LossDrops *obs.Counter
	FIFODrops *obs.Counter
	REDDrops  *obs.Counter
	// Queue tracks the instantaneous queue occupancy in packets
	// (excluding the packet in service); its Max is the high-water mark.
	Queue *obs.Gauge
}

// NewLinkMetrics registers the standard link metrics on r under prefix
// (e.g. "netem.fwd"), returning the handle bundle. A nil registry yields
// the all-nil (disabled) bundle.
func NewLinkMetrics(r *obs.Registry, prefix string) LinkMetrics {
	return LinkMetrics{
		Offered:   r.Counter(prefix + ".offered"),
		Delivered: r.Counter(prefix + ".delivered"),
		LossDrops: r.Counter(prefix + ".drops.loss"),
		FIFODrops: r.Counter(prefix + ".drops.fifo"),
		REDDrops:  r.Counter(prefix + ".drops.red"),
		Queue:     r.Gauge(prefix + ".queue"),
	}
}
