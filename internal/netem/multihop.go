package netem

import (
	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// MultiHop chains several links into one logical direction: a packet
// traverses hop 0, then hop 1, and so on, accumulating each hop's
// serialization, queueing, delay and loss. It models real Internet paths
// — where the bottleneck is one hop among many and loss can occur at any
// of them — more faithfully than a single composite link.
type MultiHop struct {
	hops []*Link
}

// NewMultiHop builds the chain from per-hop configurations, in order from
// sender to receiver.
func NewMultiHop(eng *sim.Engine, hops ...LinkConfig) *MultiHop {
	m := &MultiHop{}
	for _, cfg := range hops {
		m.hops = append(m.hops, NewLink(eng, cfg))
	}
	return m
}

// Hop exposes hop i for stats inspection.
func (m *MultiHop) Hop(i int) *Link { return m.hops[i] }

// NumHops returns the number of hops.
func (m *MultiHop) NumHops() int { return len(m.hops) }

// Send offers a packet to the first hop; deliver fires when (and if) it
// exits the last.
func (m *MultiHop) Send(payload pkt.Packet, deliver func(pkt.Packet)) {
	if len(m.hops) == 0 {
		deliver(payload)
		return
	}
	m.forward(0, payload, deliver)
}

func (m *MultiHop) forward(hop int, payload pkt.Packet, deliver func(pkt.Packet)) {
	if hop == len(m.hops)-1 {
		m.hops[hop].Send(payload, deliver)
		return
	}
	m.hops[hop].Send(payload, func(p pkt.Packet) {
		m.forward(hop+1, p, deliver)
	})
}

// Stats aggregates the per-hop counters: offered at the first hop,
// delivered from the last, and drops summed across hops.
func (m *MultiHop) Stats() LinkStats {
	var agg LinkStats
	if len(m.hops) == 0 {
		return agg
	}
	agg.Offered = m.hops[0].Stats().Offered
	agg.Delivered = m.hops[len(m.hops)-1].Stats().Delivered
	for _, h := range m.hops {
		st := h.Stats()
		agg.RandomDrops += st.RandomDrops
		agg.QueueDrops += st.QueueDrops
		if st.MaxQueue > agg.MaxQueue {
			agg.MaxQueue = st.MaxQueue
		}
	}
	return agg
}
