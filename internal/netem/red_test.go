package netem

import (
	"math"
	"testing"

	"pftk/internal/pkt"
	"pftk/internal/sim"
)

func TestREDNoDropsBelowMinThreshold(t *testing.T) {
	r := NewRED(40, sim.NewRNG(1))
	for i := 0; i < 1000; i++ {
		if r.ShouldDrop(2) { // far below MinTh = 10
			t.Fatal("dropped below MinTh")
		}
	}
}

func TestREDAlwaysDropsAboveMaxThreshold(t *testing.T) {
	r := NewRED(40, sim.NewRNG(1))
	// Saturate the average well above MaxTh = 30.
	for i := 0; i < 20000; i++ {
		r.ShouldDrop(40)
	}
	if r.Avg() < r.MaxTh {
		t.Fatalf("average %g did not converge above MaxTh %g", r.Avg(), r.MaxTh)
	}
	for i := 0; i < 100; i++ {
		if !r.ShouldDrop(40) {
			t.Fatal("kept a packet with average above MaxTh")
		}
	}
}

func TestREDLinearRamp(t *testing.T) {
	// With the average held mid-ramp, the aggregate drop rate should be
	// near MaxP/2 (count correction raises it slightly).
	r := NewRED(40, sim.NewRNG(2))
	mid := int((r.MinTh + r.MaxTh) / 2)
	for i := 0; i < 20000; i++ {
		r.ShouldDrop(mid) // warm the EWMA
	}
	drops := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if r.ShouldDrop(mid) {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.03 || rate > 0.12 {
		t.Errorf("mid-ramp drop rate = %g, want around MaxP/2 = 0.05", rate)
	}
}

func TestREDAverageTracksQueue(t *testing.T) {
	r := NewRED(40, sim.NewRNG(3))
	for i := 0; i < 50000; i++ {
		r.ShouldDrop(20)
	}
	if math.Abs(r.Avg()-20) > 0.5 {
		t.Errorf("EWMA = %g, want ~20", r.Avg())
	}
}

func TestREDSpacesDrops(t *testing.T) {
	// Floyd's count correction: consecutive drops should be rare
	// mid-ramp compared to a Bernoulli process with the same rate.
	r := NewRED(40, sim.NewRNG(4))
	mid := int((r.MinTh + r.MaxTh) / 2)
	for i := 0; i < 20000; i++ {
		r.ShouldDrop(mid)
	}
	var gaps []int
	gap := 0
	for i := 0; i < 100000; i++ {
		if r.ShouldDrop(mid) {
			gaps = append(gaps, gap)
			gap = 0
		} else {
			gap++
		}
	}
	if len(gaps) < 100 {
		t.Fatalf("only %d drops", len(gaps))
	}
	// Floyd's count correction makes inter-drop gaps roughly uniform on
	// [0, 1/p_b] instead of geometric: the coefficient of variation
	// should be near the uniform value (~0.58), well below the
	// geometric value (~1).
	var sum, sq float64
	for _, g := range gaps {
		sum += float64(g)
		sq += float64(g) * float64(g)
	}
	mean := sum / float64(len(gaps))
	cv := math.Sqrt(sq/float64(len(gaps))-mean*mean) / mean
	if cv > 0.8 {
		t.Errorf("inter-drop gap CV = %.2f, want < 0.8 (uniform-ish spacing)", cv)
	}
}

func TestREDLinkDropsUnderLoad(t *testing.T) {
	var eng sim.Engine
	l := NewREDLink(&eng, LinkConfig{Rate: 20, QueueCap: 20}, sim.NewRNG(5))
	delivered := 0
	// Offer 3x the service rate for 60 seconds.
	for i := 0; i < 60*60; i++ {
		i := i
		eng.Schedule(float64(i)/60, func() {
			l.Send(pk(i), func(pkt.Packet) { delivered++ })
		})
	}
	eng.Run()
	if l.REDDrops() == 0 {
		t.Error("overloaded RED link made no early drops")
	}
	st := l.Stats()
	if st.Offered != 3600 {
		t.Errorf("offered = %d", st.Offered)
	}
	if st.Delivered != delivered {
		t.Errorf("stats delivered %d != callback count %d", st.Delivered, delivered)
	}
	// RED should keep the queue well below the hard cap most of the
	// time: early drops happen before overflow.
	if st.QueueDrops > l.REDDrops() {
		t.Errorf("drop-tail drops (%d) exceed RED drops (%d): RED not engaging early",
			st.QueueDrops, l.REDDrops())
	}
}

func TestREDLinkIdleNoDrops(t *testing.T) {
	var eng sim.Engine
	l := NewREDLink(&eng, LinkConfig{Rate: 100, QueueCap: 20}, sim.NewRNG(6))
	delivered := 0
	// One packet per 100 ms against a 100 pkts/s server: queue stays
	// empty.
	for i := 0; i < 100; i++ {
		eng.Schedule(float64(i)/10, func() {
			l.Send(pk(i), func(pkt.Packet) { delivered++ })
		})
	}
	eng.Run()
	if delivered != 100 {
		t.Errorf("delivered %d of 100 on an idle RED link", delivered)
	}
}
