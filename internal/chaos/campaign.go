package chaos

import (
	"encoding/json"
	"fmt"

	"pftk/internal/workpool"
)

// Config parameterizes one campaign.
type Config struct {
	// Spec is the case distribution; nil selects DefaultSpec.
	Spec *Spec
	// Runs is the number of cases to generate and check.
	Runs int
	// Seed is the campaign seed; (Spec, Seed) replays the campaign
	// exactly.
	Seed uint64
	// Workers sizes the worker pool (floored at 1). The report is
	// byte-identical at any worker count.
	Workers int
	// CorpusDir, when non-empty, receives a shrunk minimal repro file
	// for each failing case (capped by MaxRepros).
	CorpusDir string
	// MaxRepros caps the number of failures shrunk and written per
	// campaign; 0 selects a small default. Shrinking re-executes the
	// case dozens of times, so an invariant bug that fails every case
	// must not turn the campaign into a quadratic stall.
	MaxRepros int
	// ShrinkBudget caps case executions per shrink (0 = default).
	ShrinkBudget int
	// Hook, when set, runs after every case's invariant checks with the
	// case and its outcome; it may append violations. Tests use it to
	// prove the shrink-and-corpus pipeline end to end with an
	// intentionally broken invariant.
	Hook func(Case, *Outcome)
	// Progress, when set, is called after each completed case with
	// (done, total). Calls arrive from worker goroutines.
	Progress func(done, total int)
}

// Report is a campaign's serializable result: everything needed to
// audit or replay it, and nothing machine-dependent — no wall times, no
// hostnames — so two same-seed campaigns diff empty byte for byte.
type Report struct {
	// SpecName and SpecHash identify the exact distribution.
	SpecName string `json:"spec_name"`
	SpecHash string `json:"spec_hash"`
	// Seed is the campaign seed.
	Seed uint64 `json:"seed"`
	// Runs is the number of cases checked.
	Runs int `json:"runs"`
	// Failures counts cases with at least one violation.
	Failures int `json:"failures"`
	// Outcomes holds every case's outcome in index order.
	Outcomes []Outcome `json:"outcomes"`
	// Repros lists the corpus files written for shrunk failures.
	Repros []string `json:"repros,omitempty"`
}

// Encode renders the report as indented JSON.
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: report: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Run executes the campaign: generate Runs cases from (Spec, Seed),
// check every invariant on each across the worker pool, then shrink and
// persist the first failures. Outcomes land in a preallocated slice
// indexed by case — workers never contend on shared accumulators — so
// the report is deterministic at any worker count.
func Run(cfg Config) (*Report, error) {
	sp := cfg.Spec
	if sp == nil {
		def := DefaultSpec()
		sp = &def
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("chaos: campaign needs a positive run count, got %d", cfg.Runs)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}

	// Generation is sequential and cheap; execution is the parallel
	// part. Generating up front also means a generator bug fails fast.
	cases := make([]Case, cfg.Runs)
	genErrs := make([]error, cfg.Runs)
	for i := 0; i < cfg.Runs; i++ {
		cases[i], genErrs[i] = Generate(sp, cfg.Seed, i)
	}

	outcomes := make([]Outcome, cfg.Runs)
	pool := workpool.New(workers, workers*2)
	done := make(chan int, cfg.Runs)
	for i := 0; i < cfg.Runs; i++ {
		i := i
		pool.Submit(func() {
			outcomes[i] = evaluate(cases[i], genErrs[i], sp.Envelope, cfg.Hook)
			done <- i
		})
	}
	for i := 0; i < cfg.Runs; i++ {
		<-done
		if cfg.Progress != nil {
			cfg.Progress(i+1, cfg.Runs)
		}
	}
	pool.Close()

	rep := &Report{
		SpecName: sp.Name,
		SpecHash: sp.Hash(),
		Seed:     cfg.Seed,
		Runs:     cfg.Runs,
		Outcomes: outcomes,
	}
	for i := range outcomes {
		if outcomes[i].Failed() {
			rep.Failures++
		}
	}
	if rep.Failures > 0 && cfg.CorpusDir != "" {
		if err := shrinkAndPersist(rep, cases, sp.Envelope, cfg); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// evaluate checks one case: a generation error is itself a violation
// (the generator's contract is "always valid"), otherwise the full
// invariant battery runs, then the optional hook.
func evaluate(c Case, genErr error, env Envelope, hook func(Case, *Outcome)) Outcome {
	var out Outcome
	if genErr != nil {
		out = Outcome{Index: c.Index, CaseHash: c.Hash()}
		out.violate(InvGenerate, "%v", genErr)
		return out
	}
	out = RunCase(c, env)
	if hook != nil {
		hook(c, &out)
	}
	return out
}

// shrinkAndPersist minimizes the first failing cases (in index order)
// and writes each minimal repro to the corpus directory.
func shrinkAndPersist(rep *Report, cases []Case, env Envelope, cfg Config) error {
	maxRepros := cfg.MaxRepros
	if maxRepros <= 0 {
		maxRepros = 5
	}
	for i := range rep.Outcomes {
		if len(rep.Repros) >= maxRepros {
			break
		}
		if !rep.Outcomes[i].Failed() {
			continue
		}
		v := rep.Outcomes[i].Violations[0]
		if v.Invariant == InvGenerate {
			// Nothing to shrink: the case never ran. Persist as-is so
			// the generator bug still has a committed repro.
			path, err := WriteCorpusEntry(cfg.CorpusDir, CorpusEntry{
				Version: CorpusVersion, Invariant: v.Invariant, Detail: v.Detail, Case: cases[i],
			})
			if err != nil {
				return err
			}
			rep.Repros = append(rep.Repros, path)
			continue
		}
		min := Shrink(cases[i], v.Invariant, env, cfg.Hook, cfg.ShrinkBudget)
		minOut := evaluate(min, nil, env, cfg.Hook)
		detail := v.Detail
		if d := findViolation(minOut, v.Invariant); d != "" {
			detail = d
		}
		path, err := WriteCorpusEntry(cfg.CorpusDir, CorpusEntry{
			Version: CorpusVersion, Invariant: v.Invariant, Detail: detail, Case: min,
		})
		if err != nil {
			return err
		}
		rep.Repros = append(rep.Repros, path)
	}
	return nil
}

// findViolation returns the detail of the named invariant's violation
// in out, or "".
func findViolation(out Outcome, invariant string) string {
	for _, v := range out.Violations {
		if v.Invariant == invariant {
			return v.Detail
		}
	}
	return ""
}
