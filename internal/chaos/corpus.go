package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CorpusVersion is the current corpus-entry schema version.
const CorpusVersion = 1

// CorpusEntry is one persisted minimal repro: the invariant it failed,
// the failure detail at the time it was found, and the (shrunk) case.
// Entries live under testdata/chaos-corpus/ and are replayed by the
// package tests: a fixed bug stays fixed, and its repro documents what
// the bug was.
type CorpusEntry struct {
	// Version is the schema version (CorpusVersion).
	Version int `json:"version"`
	// Invariant names the failed check when the entry was written.
	Invariant string `json:"invariant"`
	// Detail is the violation text when the entry was written.
	Detail string `json:"detail,omitempty"`
	// Case is the minimal failing (now fixed) case.
	Case Case `json:"case"`
}

// EntryFilename is the stable name an entry is stored under:
// "<invariant>-<first 8 hash hex digits>.json". Content-addressed
// naming keeps re-found repros from piling up as duplicates.
func (e CorpusEntry) EntryFilename() string {
	return fmt.Sprintf("%s-%s.json", e.Invariant, e.Case.Hash()[:8])
}

// WriteCorpusEntry writes the entry into dir (created if missing) under
// its stable name, returning the path written.
func WriteCorpusEntry(dir string, e CorpusEntry) (string, error) {
	if e.Version == 0 {
		e.Version = CorpusVersion
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("chaos: corpus: %w", err)
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", fmt.Errorf("chaos: corpus: encode: %w", err)
	}
	path := filepath.Join(dir, e.EntryFilename())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("chaos: corpus: %w", err)
	}
	return path, nil
}

// ParseCorpusEntry decodes one corpus document strictly: unknown
// fields, trailing garbage and invalid cases are all errors, because a
// corpus entry that no longer parses is a repro that no longer runs.
func ParseCorpusEntry(data []byte) (CorpusEntry, error) {
	var e CorpusEntry
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return e, fmt.Errorf("chaos: corpus: %w", err)
	}
	if dec.More() {
		return e, errors.New("chaos: corpus: trailing data after JSON document")
	}
	if e.Version != CorpusVersion {
		return e, fmt.Errorf("chaos: corpus: unknown version %d (current %d)", e.Version, CorpusVersion)
	}
	if e.Invariant == "" {
		return e, errors.New("chaos: corpus: entry names no invariant")
	}
	if err := e.Case.Validate(); err != nil {
		return e, err
	}
	return e, nil
}

// ReadCorpusDir loads every *.json entry under dir in sorted filename
// order. A missing directory is an empty corpus, not an error.
func ReadCorpusDir(dir string) ([]CorpusEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("chaos: corpus: %w", err)
	}
	sort.Strings(names)
	var entries []CorpusEntry
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("chaos: corpus: %w", err)
		}
		e, err := ParseCorpusEntry(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}
