package chaoshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pftk/internal/chaos"
	"pftk/internal/serve"
)

// DrillConfig parameterizes one crash-recovery drill.
type DrillConfig struct {
	// Binary is the path of the pftkd executable to drill.
	Binary string
	// Jobs is the number of slow simulations to have in flight when the
	// daemon is killed (0 = 4).
	Jobs int
	// Seed varies the drill's requests between runs.
	Seed uint64
	// Timeout bounds each daemon interaction (0 = 30 s).
	Timeout time.Duration
	// Log, when set, receives progress lines.
	Log io.Writer
}

// DrillReport summarizes one crash-recovery drill.
type DrillReport struct {
	// KilledInFlight counts jobs that were non-terminal at kill time.
	KilledInFlight int `json:"killed_in_flight"`
	// Violations lists every recovery-contract failure.
	Violations []chaos.Violation `json:"violations,omitempty"`
}

// Failed reports whether the drill found a violation.
func (r *DrillReport) Failed() bool { return len(r.Violations) > 0 }

func (r *DrillReport) violate(inv, format string, args ...any) {
	r.Violations = append(r.Violations, chaos.Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// daemon is one running pftkd under drill control.
type daemon struct {
	cmd  *exec.Cmd
	url  string
	out  *strings.Builder
	done chan error
}

// startDaemon launches the binary on an ephemeral port and waits for
// the address file.
func startDaemon(binary, dir string, timeout time.Duration, args ...string) (*daemon, error) {
	addrfile := filepath.Join(dir, fmt.Sprintf("addr-%d", time.Now().UnixNano()))
	d := &daemon{out: &strings.Builder{}, done: make(chan error, 1)}
	argv := append([]string{"-addr", "127.0.0.1:0", "-addrfile", addrfile}, args...)
	d.cmd = exec.Command(binary, argv...)
	d.cmd.Stdout = d.out
	d.cmd.Stderr = d.out
	if err := d.cmd.Start(); err != nil {
		return nil, err
	}
	go func() { d.done <- d.cmd.Wait() }()
	deadline := time.Now().Add(timeout)
	for {
		if data, err := os.ReadFile(addrfile); err == nil && len(data) > 0 {
			d.url = "http://" + strings.TrimSpace(string(data))
			return d, nil
		}
		select {
		case err := <-d.done:
			return nil, fmt.Errorf("pftkd exited before binding: %v\n%s", err, d.out.String())
		default:
		}
		if time.Now().After(deadline) {
			_ = d.cmd.Process.Kill()
			return nil, fmt.Errorf("pftkd did not write %s within %v", addrfile, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// healthy checks GET /healthz.
func (d *daemon) healthy(client *http.Client) error {
	resp, err := client.Get(d.url + "/healthz")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

// Drill runs the kill-and-restart crash-recovery drill:
//
//  1. Start the daemon, verify health, and put several slow simulations
//     in flight.
//  2. SIGKILL it mid-flight — no drain, no goodbye — and verify the
//     process actually died with work outstanding.
//  3. Restart, and verify the daemon comes up healthy with an empty,
//     consistent job table (a fresh daemon owes nothing to its
//     predecessor's jobs; what it owes is a clean slate).
//  4. Resubmit an identical job: it must run to done (the crash leaked
//     nothing that wedges new work), and an immediate second submission
//     must replay it from cache.
//  5. SIGTERM, and verify the graceful path still works after a
//     crash-restart cycle: exit code 0 and the drain marker in the log.
//
// Environmental failures return an error; contract failures become
// violations in the report.
func Drill(cfg DrillConfig) (*DrillReport, error) {
	if cfg.Binary == "" {
		return nil, fmt.Errorf("chaoshttp: drill needs the pftkd binary path")
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 4
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			_, _ = fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	client := &http.Client{Timeout: timeout}
	rep := &DrillReport{}
	dir, err := os.MkdirTemp("", "pftkchaos-drill")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	// Phase 1: start and load.
	d, err := startDaemon(cfg.Binary, dir, timeout)
	if err != nil {
		return nil, err
	}
	defer func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
		}
	}()
	if err := d.healthy(client); err != nil {
		return nil, fmt.Errorf("fresh daemon unhealthy: %w", err)
	}
	logf("daemon up at %s", d.url)

	// Slow jobs: hour-scale simulated transfers take long enough to
	// still be queued or running when the kill lands.
	slow := serve.SimulateRequest{
		RTT: 0.02, LossRate: 0.002, Wm: 64, Duration: 14400, Variant: "reno", AckEvery: 2,
	}
	var inflight []serve.Job
	for i := 0; i < jobs; i++ {
		req := slow
		req.Seed = cfg.Seed + uint64(i)
		job, status, err := submit(client, d.url, req, fmt.Sprintf("drill-%d", i))
		if err != nil {
			return rep, err
		}
		if status != http.StatusAccepted {
			rep.violate(InvHTTPProto, "slow job %d: submit status %d, want 202", i, status)
			continue
		}
		inflight = append(inflight, job)
	}

	// Phase 2: kill without ceremony.
	for _, job := range inflight {
		cur, err := getJob(client, d.url, job.ID)
		if err != nil {
			return rep, err
		}
		if cur.Status == serve.JobQueued || cur.Status == serve.JobRunning {
			rep.KilledInFlight++
		}
	}
	if rep.KilledInFlight == 0 {
		rep.violate(InvHTTPProto,
			"no job was still in flight at kill time; the drill killed an idle daemon (raise Jobs or job duration)")
	}
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return rep, err
	}
	if err := <-d.done; err == nil {
		rep.violate(InvHTTPProto, "daemon exited cleanly on SIGKILL; expected a killed process")
	}
	logf("killed with %d jobs in flight", rep.KilledInFlight)

	// Phase 3: restart into a clean slate.
	d2, err := startDaemon(cfg.Binary, dir, timeout)
	if err != nil {
		return rep, fmt.Errorf("restart after SIGKILL: %w", err)
	}
	defer func() {
		if d2.cmd.ProcessState == nil {
			_ = d2.cmd.Process.Kill()
		}
	}()
	if err := d2.healthy(client); err != nil {
		rep.violate(InvHTTPProto, "restarted daemon unhealthy: %v", err)
		return rep, nil
	}
	// The predecessor's job IDs must not resolve: a job table that
	// survived a SIGKILL would mean state is leaking between processes.
	if len(inflight) > 0 {
		resp, err := client.Get(d2.url + "/v1/jobs/" + inflight[0].ID)
		if err != nil {
			return rep, err
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			rep.violate(InvHTTPProto, "restarted daemon resolves the dead daemon's job %s with status %d",
				inflight[0].ID, resp.StatusCode)
		}
	}

	// Phase 4: identical work runs fresh, then replays from cache.
	quick := serve.SimulateRequest{
		RTT: 0.1, LossRate: 0.02, Wm: 32, Duration: 30, Variant: "reno", AckEvery: 2, Seed: cfg.Seed,
	}
	job, status, err := submit(client, d2.url, quick, "drill-recover")
	if err != nil {
		return rep, err
	}
	if status != http.StatusAccepted {
		rep.violate(InvHTTPProto, "post-restart submit status %d, want 202 (fresh daemon cannot have it cached)", status)
	} else {
		job, err = waitTerminal(client, d2.url, job.ID, timeout)
		if err != nil {
			return rep, err
		}
		if job.Status != serve.JobDone {
			rep.violate(InvHTTPProto, "post-restart job ended %q (error %q), want done", job.Status, job.Error)
		}
	}
	again, status, err := submit(client, d2.url, quick, "drill-recover-replay")
	if err != nil {
		return rep, err
	}
	if status != http.StatusOK || !again.Cached {
		rep.violate(InvHTTPCache, "post-restart resubmission status=%d cached=%v, want exact cache replay",
			status, again.Cached)
	}
	logf("recovery job done and replayed from cache")

	// Phase 5: graceful shutdown still works after the crash cycle.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return rep, err
	}
	select {
	case err := <-d2.done:
		if err != nil {
			rep.violate(InvHTTPProto, "SIGTERM exit: %v\n%s", err, d2.out.String())
		}
	case <-time.After(timeout):
		_ = d2.cmd.Process.Kill()
		rep.violate(InvHTTPProto, "daemon did not shut down within %v of SIGTERM", timeout)
	}
	if !strings.Contains(d2.out.String(), "drained and stopped") {
		rep.violate(InvHTTPProto, "daemon log missing the drain marker after SIGTERM:\n%s", d2.out.String())
	}
	logf("graceful shutdown verified")
	return rep, nil
}

// getJob fetches one job's current state.
func getJob(client *http.Client, baseURL, id string) (serve.Job, error) {
	var job serve.Job
	resp, err := client.Get(baseURL + "/v1/jobs/" + id)
	if err != nil {
		return job, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return job, fmt.Errorf("job %s: status %d", id, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return job, err
	}
	return job, json.Unmarshal(data, &job)
}
