// Package chaoshttp drives chaos campaigns against a live pftkd: the
// same generated cases the local runner checks in-process are submitted
// over HTTP to /v1/simulate, every daemon response is cross-checked
// against the in-process oracle (same request, same bytes, or the
// daemon has diverged from the library), and resubmissions must replay
// from the daemon's cache exactly.
//
// It lives in its own package, outside the deterministic core: talking
// to a real daemon means real wall clocks, real sockets and real
// processes, none of which belong in internal/chaos proper (whose
// package-wide determinism is enforced by pftklint).
package chaoshttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"pftk/internal/chaos"
	"pftk/internal/serve"
)

// Violation names used by the HTTP harness, alongside the chaos.Inv*
// set.
const (
	// InvHTTPOracle is a daemon result that differs from the in-process
	// oracle's for the same request.
	InvHTTPOracle = "http-oracle"
	// InvHTTPCache is a resubmission that did not replay exactly from
	// the daemon's cache.
	InvHTTPCache = "http-cache"
	// InvHTTPProto is a protocol-level failure: unexpected status code,
	// malformed body, job stuck outside a terminal state.
	InvHTTPProto = "http-proto"
)

// Request converts a generated case into the daemon's wire request.
// The mapping is field-for-field; the case's Index intentionally stays
// local (two campaigns' case 7 with equal parameters must share one
// cache entry).
func Request(c chaos.Case) serve.SimulateRequest {
	return serve.SimulateRequest{
		RTT:      c.RTT,
		LossRate: c.LossRate,
		BurstDur: c.BurstDur,
		Wm:       c.Wm,
		MinRTO:   c.MinRTO,
		Duration: c.Duration,
		Seed:     c.Seed,
		Variant:  c.Variant,
		AckEvery: c.AckEvery,
		Scenario: c.Scenario,
	}
}

// FeedConfig parameterizes one HTTP campaign.
type FeedConfig struct {
	// URL is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// Spec is the case distribution; nil selects chaos.DefaultSpec.
	Spec *chaos.Spec
	// Seed and Cases select the campaign slice to feed.
	Seed  uint64
	Cases int
	// Timeout bounds each job's submit-to-terminal wait (0 = 30 s).
	Timeout time.Duration
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
}

// FeedReport summarizes one HTTP campaign.
type FeedReport struct {
	// Submitted counts cases sent to the daemon.
	Submitted int `json:"submitted"`
	// Completed counts jobs that reached done.
	Completed int `json:"completed"`
	// CacheHits counts resubmissions served from the daemon's cache.
	CacheHits int `json:"cache_hits"`
	// Violations lists every cross-check failure.
	Violations []chaos.Violation `json:"violations,omitempty"`
}

// Failed reports whether any cross-check failed.
func (r *FeedReport) Failed() bool { return len(r.Violations) > 0 }

// violate appends a formatted violation.
func (r *FeedReport) violate(inv, format string, args ...any) {
	r.Violations = append(r.Violations, chaos.Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// Feed generates cases from (Spec, Seed) and runs each through the
// daemon: submit, wait for the terminal state, cross-check the result
// against the in-process oracle, then resubmit and require an exact
// cache replay. Returns an error only for environmental failures (the
// daemon unreachable); divergences are violations in the report.
func Feed(cfg FeedConfig) (*FeedReport, error) {
	sp := cfg.Spec
	if sp == nil {
		def := chaos.DefaultSpec()
		sp = &def
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	rep := &FeedReport{}
	for i := 0; i < cfg.Cases; i++ {
		c, err := chaos.Generate(sp, cfg.Seed, i)
		if err != nil {
			rep.violate(chaos.InvGenerate, "case %d: %v", i, err)
			continue
		}
		req := Request(c)
		oracle, err := serve.Run(req)
		if err != nil {
			rep.violate(InvHTTPOracle, "case %d: local oracle refused the request: %v", i, err)
			continue
		}
		oracleJSON, err := json.Marshal(oracle)
		if err != nil {
			return nil, err
		}

		rep.Submitted++
		job, status, err := submit(client, cfg.URL, req, fmt.Sprintf("chaos-%d", i))
		if err != nil {
			return rep, fmt.Errorf("case %d: %w", i, err)
		}
		switch status {
		case http.StatusAccepted:
			job, err = waitTerminal(client, cfg.URL, job.ID, timeout)
			if err != nil {
				return rep, fmt.Errorf("case %d: %w", i, err)
			}
		case http.StatusOK:
			// Served from cache (an earlier campaign, or a duplicate
			// draw); the cross-checks below still apply.
		default:
			rep.violate(InvHTTPProto, "case %d: submit returned status %d", i, status)
			continue
		}
		if job.Status != serve.JobDone || job.Result == nil {
			rep.violate(InvHTTPProto, "case %d: job %s ended %q (error %q), want done",
				i, job.ID, job.Status, job.Error)
			continue
		}
		rep.Completed++
		gotJSON, err := json.Marshal(job.Result)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(gotJSON, oracleJSON) {
			rep.violate(InvHTTPOracle, "case %d: daemon result diverges from local oracle:\n%s\nvs\n%s",
				i, gotJSON, oracleJSON)
			continue
		}

		// Resubmission must be an exact cache replay.
		again, status, err := submit(client, cfg.URL, req, fmt.Sprintf("chaos-%d-replay", i))
		if err != nil {
			return rep, fmt.Errorf("case %d replay: %w", i, err)
		}
		if status != http.StatusOK || !again.Cached || again.Status != serve.JobDone || again.Result == nil {
			rep.violate(InvHTTPCache, "case %d: resubmission status=%d cached=%v job=%q",
				i, status, again.Cached, again.Status)
			continue
		}
		replayJSON, err := json.Marshal(again.Result)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(replayJSON, gotJSON) {
			rep.violate(InvHTTPCache, "case %d: cached replay differs from first result:\n%s\nvs\n%s",
				i, replayJSON, gotJSON)
			continue
		}
		rep.CacheHits++
	}
	return rep, nil
}

// submit POSTs one simulate request and decodes the job envelope.
func submit(client *http.Client, baseURL string, req serve.SimulateRequest, requestID string) (serve.Job, int, error) {
	var job serve.Job
	body, err := json.Marshal(req)
	if err != nil {
		return job, 0, err
	}
	hreq, err := http.NewRequest(http.MethodPost, baseURL+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		return job, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-Id", requestID)
	resp, err := client.Do(hreq)
	if err != nil {
		return job, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return job, resp.StatusCode, err
	}
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &job); err != nil {
			return job, resp.StatusCode, fmt.Errorf("decoding job envelope: %w (body %.200s)", err, data)
		}
	}
	return job, resp.StatusCode, nil
}

// waitTerminal polls the job until done or failed, bounded by timeout.
func waitTerminal(client *http.Client, baseURL, jobID string, timeout time.Duration) (serve.Job, error) {
	deadline := time.Now().Add(timeout)
	var job serve.Job
	for {
		resp, err := client.Get(baseURL + "/v1/jobs/" + jobID)
		if err != nil {
			return job, err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		_ = resp.Body.Close()
		if err != nil {
			return job, err
		}
		if resp.StatusCode != http.StatusOK {
			return job, fmt.Errorf("job %s: status %d (body %.200s)", jobID, resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &job); err != nil {
			return job, err
		}
		if job.Status == serve.JobDone || job.Status == serve.JobFailed {
			return job, nil
		}
		if time.Now().After(deadline) {
			return job, fmt.Errorf("job %s still %q after %v", jobID, job.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
