package chaoshttp

import (
	"net/http/httptest"
	"testing"

	"pftk/internal/chaos"
	"pftk/internal/serve"
)

// TestFeedAgainstInProcessDaemon runs a small HTTP campaign against an
// in-process server: every generated case must complete, match the
// local oracle byte for byte, and replay from the daemon's cache.
func TestFeedAgainstInProcessDaemon(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 4, QueueDepth: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sp := chaos.DefaultSpec()
	sp.Duration = chaos.Range{Min: 2, Max: 5}
	sp.FaultDur = chaos.Range{Min: 0.1, Max: 0.8}
	rep, err := Feed(FeedConfig{URL: ts.URL, Spec: &sp, Seed: 3, Cases: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("[%s] %s", v.Invariant, v.Detail)
	}
	if rep.Submitted != 12 || rep.Completed != 12 || rep.CacheHits != 12 {
		t.Errorf("submitted=%d completed=%d cacheHits=%d, want 12 across the board",
			rep.Submitted, rep.Completed, rep.CacheHits)
	}
}

// TestRequestMapping pins the case-to-wire mapping field for field; a
// silently dropped field would make the HTTP campaign test a different
// simulation than the local one.
func TestRequestMapping(t *testing.T) {
	sp := chaos.DefaultSpec()
	c, err := chaos.Generate(&sp, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := Request(c)
	//pftklint:ignore floatcmp the mapping copies fields verbatim; equality is exact
	if req.RTT != c.RTT || req.LossRate != c.LossRate || req.BurstDur != c.BurstDur ||
		req.Duration != c.Duration || req.MinRTO != c.MinRTO {
		t.Errorf("float fields dropped in mapping: %+v vs %+v", req, c)
	}
	if req.Wm != c.Wm || req.Seed != c.Seed || req.Variant != c.Variant ||
		req.AckEvery != c.AckEvery || req.Scenario != c.Scenario {
		t.Errorf("fields dropped in mapping: %+v vs %+v", req, c)
	}
}
