package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"pftk"
	"pftk/internal/core"
	"pftk/internal/obs"
)

// defaultModelErrorFactor is the default model-vs-measured envelope.
// The PFTK full model evaluated at the measured operating point tracks
// the simulator within ~1.1x on clean Bernoulli paths but drifts to
// ~7x on the worst timed-outage draws (timeout-dominated runs are the
// model's known weak spot); the default is that observed worst case
// with headroom, so the invariant catches an order-of-magnitude
// regression without drowning in the model's own documented error.
const defaultModelErrorFactor = 10

// Invariant names attached to violations.
const (
	InvGenerate     = "generate"          // the generator emitted an invalid case
	InvPanic        = "panic"             // the run panicked (flight dump in Detail)
	InvConservation = "conservation"      // per-link packet conservation (suffixed -fwd/-rev)
	InvObsReconcile = "obs-reconcile"     // obs counters vs. link statistics
	InvSenderLink   = "sender-link"       // sender transmissions vs. link offered
	InvGroundTruth  = "ground-truth"      // trace analysis vs. sender counters
	InvPhaseAttrib  = "phase-attribution" // per-phase sums vs. run totals
	InvModelEnv     = "model-envelope"    // PFTK prediction vs. measured rate
	InvReplay       = "replay"            // same case, different bytes
	InvHook         = "hook"              // injected by a campaign Hook (tests)
	InvFlowConserve = "flow-conservation" // per-flow packet conservation at the shared bottleneck
	InvFlowSanity   = "flow-sanity"       // multi-flow aggregate coherence (rates, fairness, summaries)
)

// Violation is one failed invariant on one case.
type Violation struct {
	// Invariant names the failed check (the Inv* constants).
	Invariant string `json:"invariant"`
	// Detail is a human-readable account of the failure.
	Detail string `json:"detail"`
}

// Outcome is the serializable result of checking one case. It carries
// no wall-clock fields and no copy of the case (reproducible from the
// campaign spec, seed and index), so campaign reports are byte-stable
// across machines and worker counts.
type Outcome struct {
	// Index is the case's campaign index.
	Index int `json:"index"`
	// CaseHash is the canonical hash of the generated case.
	CaseHash string `json:"case_hash"`
	// Packets counts the sender's transmissions (originals plus
	// retransmissions).
	Packets int `json:"packets"`
	// Delivered counts distinct in-order packets at the receiver.
	Delivered uint64 `json:"delivered"`
	// LossIndications is the sender's ground-truth indication count.
	LossIndications int `json:"loss_indications"`
	// SendRate is the measured send rate, packets per second.
	SendRate float64 `json:"send_rate"`
	// Predicted is the full model's prediction at the measured
	// operating point (stationary cases only; 0 when not evaluated).
	Predicted float64 `json:"predicted,omitempty"`
	// ErrorFactor is max(Predicted/SendRate, SendRate/Predicted) when
	// the envelope check ran, else 0.
	ErrorFactor float64 `json:"error_factor,omitempty"`
	// ReplayHash digests the run's full observable output (trace,
	// counters, link stats, phase attribution); equal across replays of
	// the same case by the determinism invariant.
	ReplayHash string `json:"replay_hash"`
	// Violations lists every failed invariant, empty on a clean case.
	Violations []Violation `json:"violations,omitempty"`
}

// Failed reports whether any invariant failed.
func (o Outcome) Failed() bool { return len(o.Violations) > 0 }

// violate appends a formatted violation.
func (o *Outcome) violate(inv, format string, args ...any) {
	o.Violations = append(o.Violations, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// runData is one instrumented execution's complete observable output.
type runData struct {
	res    pftk.SimResult
	ls     pftk.PathStats
	phases []pftk.PhaseStat
	snap   obs.Snapshot
}

// execute runs the case once, fully instrumented, converting a panic —
// an engine invariant failure or a scenario fault — into a violation
// carrying the flight recorder's dump.
func execute(c Case) (rd runData, vio *Violation) {
	flight := pftk.NewFlightRecorder(0)
	defer func() {
		if p := recover(); p != nil {
			vio = &Violation{
				Invariant: InvPanic,
				Detail:    fmt.Sprintf("case %d panicked: %v\n%s", c.Index, p, flight.String()),
			}
		}
	}()
	if c.Flows >= 2 {
		// Multi-flow case: symmetric flows through one shared
		// bottleneck. The single-flow instrumentation (obs registry,
		// link stats, phase attribution) does not apply; the per-flow
		// bottleneck attribution in FlowResults is the ground truth the
		// flow invariants check instead.
		rd.res = pftk.Sim(
			pftk.WithPath(c.RTT),
			pftk.WithBurstLoss(c.LossRate, c.BurstDur),
			pftk.WithWindow(c.Wm),
			pftk.WithMinRTO(c.MinRTO),
			pftk.WithDuration(c.Duration),
			pftk.WithSeed(c.Seed),
			pftk.WithOS(c.Variant),
			pftk.WithDelayedACKs(c.AckEvery),
			pftk.WithFlowCount(c.Flows),
			pftk.WithBottleneck(pftk.Bottleneck{
				Rate:     c.FlowRate,
				QueueCap: c.FlowQueue,
				OneWay:   c.RTT / 2,
			}),
		)
		return rd, nil
	}
	reg := pftk.NewRegistry()
	rd.res = pftk.Sim(
		pftk.WithPath(c.RTT),
		pftk.WithBurstLoss(c.LossRate, c.BurstDur),
		pftk.WithWindow(c.Wm),
		pftk.WithMinRTO(c.MinRTO),
		pftk.WithDuration(c.Duration),
		pftk.WithSeed(c.Seed),
		pftk.WithOS(c.Variant),
		pftk.WithDelayedACKs(c.AckEvery),
		pftk.WithScenario(c.Scenario),
		pftk.WithPhaseStats(&rd.phases),
		pftk.WithObs(reg),
		pftk.WithLinkStats(&rd.ls),
		pftk.WithFlightRecorder(flight),
	)
	rd.snap = reg.Snapshot()
	return rd, nil
}

// digest hashes every observable output of a run: the sender trace, the
// sender counters, the receiver count, both links' statistics, and the
// per-phase attribution. Two executions of the same case must digest
// identically — the simulator's whole determinism story in one string.
func (rd runData) digest() string {
	h := sha256.New()
	for i := range rd.res.Trace {
		_, _ = fmt.Fprintf(h, "%v\n", rd.res.Trace[i])
	}
	_, _ = fmt.Fprintf(h, "stats %+v delivered %d dur %v\n", rd.res.Stats, rd.res.Delivered, rd.res.Duration)
	_, _ = fmt.Fprintf(h, "fwd %+v\nrev %+v\n", rd.ls.Forward, rd.ls.Reverse)
	for _, ph := range rd.phases {
		_, _ = fmt.Fprintf(h, "phase %+v\n", ph)
	}
	// Multi-flow runs: every flow's trace, counters and bottleneck
	// attribution (empty on single-flow runs, leaving their digests
	// unchanged).
	for _, fr := range rd.res.FlowResults {
		_, _ = fmt.Fprintf(h, "flow %d stats %+v delivered %d link %+v\n",
			fr.ID, fr.Result.Stats, fr.Result.Delivered, fr.Link)
		for i := range fr.Result.Trace {
			_, _ = fmt.Fprintf(h, "%v\n", fr.Result.Trace[i])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunCase executes one case twice — once to check the global invariants
// on its instrumented output, once to check byte-exact replay — and
// returns the outcome. env configures the model-envelope check (a zero
// ModelErrorFactor disables it).
func RunCase(c Case, env Envelope) Outcome {
	out := Outcome{Index: c.Index, CaseHash: c.Hash()}
	rd, vio := execute(c)
	if vio != nil {
		out.Violations = append(out.Violations, *vio)
		return out
	}
	out.Packets = rd.res.Stats.TotalSent()
	out.Delivered = rd.res.Delivered
	out.LossIndications = rd.res.Stats.LossIndications()
	out.SendRate = rd.res.SendRate()
	out.ReplayHash = rd.digest()

	if c.Flows >= 2 {
		// Multi-flow cases have their own invariant set; the
		// single-flow checks read instrumentation that multi-flow runs
		// do not populate.
		checkFlowConservation(&out, c, rd)
		checkFlowSanity(&out, c, rd)
	} else {
		checkConservation(&out, rd)
		checkObsReconcile(&out, rd)
		checkSenderLink(&out, rd)
		checkGroundTruth(&out, rd)
		checkPhaseAttribution(&out, c, rd)
		checkModelEnvelope(&out, c, rd, env)
	}

	rd2, vio2 := execute(c)
	if vio2 != nil {
		out.violate(InvReplay, "replay of case %d panicked where first run did not: %s", c.Index, vio2.Detail)
		return out
	}
	if h2 := rd2.digest(); h2 != out.ReplayHash {
		out.violate(InvReplay, "case %d is not replay-stable: first run %s, second run %s",
			c.Index, out.ReplayHash[:16], h2[:16])
	}
	return out
}

// checkConservation verifies per-direction packet conservation: every
// packet offered to a link is delivered, dropped, or still resident
// (queued plus at most one in service) when the run ends.
func checkConservation(out *Outcome, rd runData) {
	check := func(dir string, ls pftk.LinkStats) {
		residual := (ls.Offered - ls.RandomDrops + ls.Duplicated) - ls.Delivered - ls.QueueDrops
		if residual < 0 || residual > ls.MaxQueue+1 {
			out.violate(InvConservation+"-"+dir,
				"residual %d outside [0, maxQueue+1=%d]: %+v", residual, ls.MaxQueue+1, ls)
		}
	}
	check("fwd", rd.ls.Forward)
	check("rev", rd.ls.Reverse)
}

// checkObsReconcile verifies the metric layer against the link's own
// counters: same run, two bookkeepers, every number equal.
func checkObsReconcile(out *Outcome, rd runData) {
	check := func(prefix string, ls pftk.LinkStats) {
		counters := []struct {
			name string
			want int
		}{
			{prefix + ".offered", ls.Offered},
			{prefix + ".delivered", ls.Delivered},
			{prefix + ".drops.loss", ls.RandomDrops},
		}
		for _, c := range counters {
			if got := rd.snap.Counter(c.name); got != uint64(c.want) {
				out.violate(InvObsReconcile, "%s = %d, link stats say %d", c.name, got, c.want)
			}
		}
		queueDrops := rd.snap.Counter(prefix+".drops.fifo") + rd.snap.Counter(prefix+".drops.red")
		if queueDrops != uint64(ls.QueueDrops) {
			out.violate(InvObsReconcile, "%s fifo+red drops = %d, link stats say %d",
				prefix, queueDrops, ls.QueueDrops)
		}
	}
	check("netem.fwd", rd.ls.Forward)
	check("netem.rev", rd.ls.Reverse)
}

// checkSenderLink verifies that the forward link saw exactly the
// sender's transmissions: nothing invented, nothing lost between the
// two layers.
func checkSenderLink(out *Outcome, rd runData) {
	if rd.ls.Forward.Offered != rd.res.Stats.TotalSent() {
		out.violate(InvSenderLink, "forward link offered %d packets, sender transmitted %d",
			rd.ls.Forward.Offered, rd.res.Stats.TotalSent())
	}
}

// checkGroundTruth verifies the trace analysis against the sender's own
// counters: ground-truth loss-event extraction must reproduce the
// sender's TD count and total indications exactly.
func checkGroundTruth(out *Outcome, rd runData) {
	sum := pftk.Analyze(rd.res.Trace, pftk.WithGroundTruth())
	if sum.TD != rd.res.Stats.TDEvents {
		out.violate(InvGroundTruth, "analysis found %d TD events, sender counted %d",
			sum.TD, rd.res.Stats.TDEvents)
	}
	// The analysis counts timeout *sequences* (consecutive backoff fires
	// collapse into one indication); the sender counts individual fires,
	// but every sequence starts at backoff exponent 0, so the sequence
	// count must equal the sender's exponent-zero fire count.
	if sum.TimeoutSequences() != rd.res.Stats.TimeoutsByBackoff[0] {
		out.violate(InvGroundTruth, "analysis found %d timeout sequences, sender started %d",
			sum.TimeoutSequences(), rd.res.Stats.TimeoutsByBackoff[0])
	}
	if sum.PacketsSent != rd.res.Stats.TotalSent() {
		out.violate(InvGroundTruth, "analysis counted %d transmissions, sender counted %d",
			sum.PacketsSent, rd.res.Stats.TotalSent())
	}
}

// checkPhaseAttribution verifies the scenario runner's per-segment
// accounting: segments tile [0, duration) contiguously and their
// offered/dropped/delivered sums telescope to the forward link totals.
func checkPhaseAttribution(out *Outcome, c Case, rd runData) {
	if c.Scenario == nil || len(rd.phases) == 0 {
		return
	}
	if rd.phases[0].Start != 0 {
		out.violate(InvPhaseAttrib, "first segment starts at %v, want 0", rd.phases[0].Start)
	}
	for i := 1; i < len(rd.phases); i++ {
		//pftklint:ignore floatcmp adjacent bounds are copies of the same transition time
		if rd.phases[i].Start != rd.phases[i-1].End {
			out.violate(InvPhaseAttrib, "segment %d starts at %v but segment %d ends at %v",
				i, rd.phases[i].Start, i-1, rd.phases[i-1].End)
		}
	}
	last := rd.phases[len(rd.phases)-1].End
	//pftklint:ignore floatcmp the final bound is a copy of the run duration
	if last != rd.res.Duration {
		out.violate(InvPhaseAttrib, "last segment ends at %v, run lasted %v", last, rd.res.Duration)
	}
	var offered, dropped, delivered int
	for _, ph := range rd.phases {
		offered += ph.Offered
		dropped += ph.Dropped
		delivered += ph.Delivered
	}
	fwd := rd.ls.Forward
	if offered != fwd.Offered {
		out.violate(InvPhaseAttrib, "segments offered %d, link offered %d", offered, fwd.Offered)
	}
	if dropped != fwd.RandomDrops+fwd.QueueDrops {
		out.violate(InvPhaseAttrib, "segments dropped %d, link dropped %d",
			dropped, fwd.RandomDrops+fwd.QueueDrops)
	}
	if delivered != fwd.Delivered {
		out.violate(InvPhaseAttrib, "segments delivered %d, link delivered %d", delivered, fwd.Delivered)
	}
}

// checkFlowConservation verifies per-flow packet conservation at the
// shared bottleneck: for every flow, packets the link attributes to it
// must reconcile with the flow's own sender and receiver — nothing
// invented at the link, nothing delivered that was not offered, and at
// most a queue's worth unaccounted for when the run ends.
func checkFlowConservation(out *Outcome, c Case, rd runData) {
	if len(rd.res.FlowResults) != c.Flows {
		out.violate(InvFlowConserve, "case declares %d flows, run reports %d", c.Flows, len(rd.res.FlowResults))
		return
	}
	for _, fr := range rd.res.FlowResults {
		ls := fr.Link
		sent := fr.Result.Stats.TotalSent()
		// The flow's private access loss (LossRate > 0) drops packets
		// before the bottleneck, so offered is bounded by — and without
		// access loss equals — the sender's transmissions.
		if ls.Offered > sent {
			out.violate(InvFlowConserve, "flow %d: bottleneck offered %d > sender transmitted %d",
				fr.ID, ls.Offered, sent)
		}
		if c.LossRate == 0 && ls.Offered != sent {
			out.violate(InvFlowConserve, "flow %d: lossless access path but bottleneck offered %d != sender transmitted %d",
				fr.ID, ls.Offered, sent)
		}
		residual := ls.Offered - ls.RandomDrops - ls.QueueDrops - ls.Delivered
		if residual < 0 || residual > c.FlowQueue+1 {
			out.violate(InvFlowConserve, "flow %d: residual %d outside [0, queue+1=%d]: %+v",
				fr.ID, residual, c.FlowQueue+1, ls)
		}
		// Distinct in-order packets at the receiver cannot exceed the
		// link's arrivals for the flow.
		if fr.Result.Delivered > uint64(ls.Delivered) {
			out.violate(InvFlowConserve, "flow %d: receiver delivered %d > bottleneck delivered %d",
				fr.ID, fr.Result.Delivered, ls.Delivered)
		}
	}
}

// checkFlowSanity verifies the multi-flow aggregates cohere: per-flow
// summaries reproduce the senders' own counters, the fairness vectors
// are indexed per flow, and Jain's index is in its mathematical range.
func checkFlowSanity(out *Outcome, c Case, rd runData) {
	if len(rd.res.Flows) != len(rd.res.FlowResults) {
		out.violate(InvFlowSanity, "summaries %d != flow results %d", len(rd.res.Flows), len(rd.res.FlowResults))
		return
	}
	for i, fr := range rd.res.FlowResults {
		if sum := rd.res.Flows[i]; sum.PacketsSent != fr.Result.Stats.TotalSent() {
			out.violate(InvFlowSanity, "flow %d: summary counted %d transmissions, sender counted %d",
				i, sum.PacketsSent, fr.Result.Stats.TotalSent())
		}
	}
	f := rd.res.Fairness
	if len(f.Rates) != c.Flows || len(f.Predicted) != c.Flows {
		out.violate(InvFlowSanity, "fairness vectors sized %d/%d, want %d", len(f.Rates), len(f.Predicted), c.Flows)
	}
	if f.AggregateRate > 0 && (f.Jain <= 0 || f.Jain > 1+1e-12) {
		out.violate(InvFlowSanity, "jain index %v outside (0, 1]", f.Jain)
	}
}

// stationary reports whether the case's path is time-invariant: no
// scenario at all, or a scenario whose only program is a single
// phase-zero rewrite (the generator's spelling of a ge base loss
// process) with no faults.
func stationary(c Case) bool {
	if c.Scenario == nil {
		return true
	}
	if len(c.Scenario.Faults) > 0 {
		return false
	}
	return len(c.Scenario.Phases) == 1 && c.Scenario.Phases[0].At == 0
}

// checkModelEnvelope verifies the paper's own claim on stationary
// cases: the full model evaluated at the measured (p, RTT, T0, Wm)
// predicts the measured send rate within the envelope factor. Cases
// with a scenario are non-stationary — the model has no business
// predicting them — and cases with thin loss signal measure p too
// noisily to judge, so both are skipped.
func checkModelEnvelope(out *Outcome, c Case, rd runData, env Envelope) {
	if env.ModelErrorFactor <= 0 || !stationary(c) {
		return
	}
	if rd.res.Stats.LossIndications() < env.MinLossIndications {
		return
	}
	sum := pftk.Analyze(rd.res.Trace)
	params := core.Params{RTT: sum.MeanRTT, T0: sum.MeanT0, Wm: float64(c.Wm), B: c.AckEvery}
	if params.Validate() != nil || !(sum.P > 0) {
		return
	}
	pred := core.SendRateFull(sum.P, params)
	meas := rd.res.SendRate()
	if !(pred > 0) || !(meas > 0) {
		return
	}
	out.Predicted = pred
	out.ErrorFactor = math.Max(pred/meas, meas/pred)
	if out.ErrorFactor > env.ModelErrorFactor {
		out.violate(InvModelEnv,
			"model predicts %.1f pkt/s, measured %.1f pkt/s: factor %.2f exceeds envelope %.2f (p=%.4f rtt=%.3f t0=%.3f)",
			pred, meas, out.ErrorFactor, env.ModelErrorFactor, sum.P, sum.MeanRTT, sum.MeanT0)
	}
}
