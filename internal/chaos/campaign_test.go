package chaos

import (
	"bytes"
	"strings"
	"testing"

	"pftk/internal/scenario"
)

// smokeSpec is a scaled-down default for unit tests: short runs keep
// the suite fast while still sampling every program shape.
func smokeSpec() *Spec {
	sp := DefaultSpec()
	sp.Duration = Range{2, 5}
	sp.FaultDur = Range{0.1, 0.8}
	return &sp
}

// TestCampaignCleanAndWorkerIndependent is the package's core claim in
// one test: a default-distribution campaign holds every invariant, and
// the report is byte-identical across worker counts and across two
// same-seed runs.
func TestCampaignCleanAndWorkerIndependent(t *testing.T) {
	run := func(workers int) []byte {
		t.Helper()
		rep, err := Run(Config{Spec: smokeSpec(), Runs: 60, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range rep.Outcomes {
			for _, v := range o.Violations {
				t.Errorf("case %d violated %s: %s", o.Index, v.Invariant, v.Detail)
			}
		}
		data, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("report differs between 1 and 8 workers")
	}
	if again := run(8); !bytes.Equal(parallel, again) {
		t.Fatal("report differs between two same-seed runs")
	}
}

// TestCampaignSeedMatters guards against a campaign that ignores its
// seed: different seeds must produce different cases and reports.
func TestCampaignSeedMatters(t *testing.T) {
	a, err := Run(Config{Spec: smokeSpec(), Runs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Spec: smokeSpec(), Runs: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcomes[0].CaseHash == b.Outcomes[0].CaseHash {
		t.Error("seeds 1 and 2 generated the same first case")
	}
}

// TestCampaignBrokenInvariantShrinksToMinimalRepro drives the whole
// failure pipeline with an intentionally broken invariant: a test hook
// that flags any case whose scenario contains a delay_spike fault. The
// campaign must catch the failures, shrink the first one to a minimal
// case — exactly one delay_spike fault, no phases, since everything
// else is irrelevant to the hook — and persist it as a corpus entry
// that parses and still reproduces the failure.
func TestCampaignBrokenInvariantShrinksToMinimalRepro(t *testing.T) {
	hook := func(c Case, out *Outcome) {
		if c.Scenario == nil {
			return
		}
		for _, f := range c.Scenario.Faults {
			if f.Kind == scenario.KindDelaySpike {
				out.violate(InvHook, "intentionally broken: scenario contains a delay_spike fault")
				return
			}
		}
	}
	dir := t.TempDir()
	rep, err := Run(Config{
		Spec: smokeSpec(), Runs: 40, Seed: 11, Workers: 4,
		CorpusDir: dir, MaxRepros: 1, Hook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatal("40 default-spec cases produced no delay_spike faults; broaden the campaign")
	}
	if len(rep.Repros) != 1 {
		t.Fatalf("repros written = %v, want exactly 1", rep.Repros)
	}

	entries, err := ReadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("corpus holds %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Invariant != InvHook {
		t.Errorf("entry invariant = %q, want %q", e.Invariant, InvHook)
	}
	min := e.Case
	if min.Scenario == nil {
		t.Fatal("minimal repro lost its scenario entirely — it cannot reproduce the failure")
	}
	if len(min.Scenario.Faults) != 1 || min.Scenario.Faults[0].Kind != scenario.KindDelaySpike {
		t.Errorf("minimal repro faults = %+v, want exactly one delay_spike", min.Scenario.Faults)
	}
	if len(min.Scenario.Phases) != 0 {
		t.Errorf("minimal repro kept %d irrelevant phases: %+v",
			len(min.Scenario.Phases), min.Scenario.Phases)
	}
	if min.Scenario.Faults[0].Period != 0 {
		t.Errorf("minimal repro kept a periodic train: %+v", min.Scenario.Faults[0])
	}

	// The persisted minimal case still fails the (broken) invariant.
	var reOut Outcome
	reOut = RunCase(min, smokeSpec().Envelope)
	hook(min, &reOut)
	if findViolation(reOut, InvHook) == "" {
		t.Error("persisted minimal repro no longer reproduces the hook violation")
	}
}

// TestCampaignRejectsBadConfig pins the error paths.
func TestCampaignRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Spec: smokeSpec(), Runs: 0}); err == nil ||
		!strings.Contains(err.Error(), "positive run count") {
		t.Errorf("zero runs accepted: %v", err)
	}
	bad := smokeSpec()
	bad.Variants = nil
	if _, err := Run(Config{Spec: bad, Runs: 1}); err == nil ||
		!strings.Contains(err.Error(), "variants") {
		t.Errorf("invalid spec accepted: %v", err)
	}
}
