package chaos

import (
	"strings"
	"testing"
)

// TestDefaultSpecValid pins that the shipped default distribution is
// itself valid — the smoke target runs it unmodified.
func TestDefaultSpecValid(t *testing.T) {
	sp := DefaultSpec()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSpecCodecRoundTrip pins Parse(Encode(spec)) == spec and that the
// canonical hash survives the trip.
func TestSpecCodecRoundTrip(t *testing.T) {
	sp := DefaultSpec()
	data, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != sp.Hash() {
		t.Errorf("hash changed across the codec round trip: %s vs %s", back.Hash(), sp.Hash())
	}
	if len(back.Variants) != len(sp.Variants) || back.RTT != sp.RTT || back.Envelope != sp.Envelope {
		t.Errorf("round trip altered the spec: %+v", back)
	}
}

// TestSpecCodecStrict pins the strict-parsing contract: unknown fields,
// trailing garbage and semantic violations are all rejected.
func TestSpecCodecStrict(t *testing.T) {
	def := DefaultSpec()
	valid, err := def.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, doc, wantErr string
	}{
		{"unknown field", `{"rtt":{"min":0.1,"max":0.1},"phazes":{}}`, "unknown field"},
		{"trailing garbage", strings.TrimRight(string(valid), "\n") + `{"again":1}`, "trailing data"},
		{"inverted range", mutate(t, valid, `"min": 0.02`, `"min": 0.5`), "inverted"},
		{"empty variants", mutate(t, valid, `"variants": [`, `"variants_gone": [`), "unknown field"},
		{"bad loss model", mutate(t, valid, `"bernoulli"`, `"markov9"`), "unknown loss model"},
		{"bad fault kind", mutate(t, valid, `"outage"`, `"meteor"`), "unknown fault kind"},
		{"fault longer than shortest run", mutate(t, valid, `"min": 4`, `"min": 1`), "does not fit"},
		{"envelope below one", mutate(t, valid, `"model_error_factor": 10`, `"model_error_factor": 0.5`), "rejects perfect predictions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.doc))
			if err == nil {
				t.Fatalf("parsed, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
}

// mutate replaces the first occurrence of old in the encoded default
// spec, failing the test if the marker is absent (a future re-encoding
// would silently neuter the case).
func mutate(t *testing.T, doc []byte, old, new string) string {
	t.Helper()
	s := string(doc)
	if !strings.Contains(s, old) {
		t.Fatalf("encoded default spec no longer contains %q", old)
	}
	return strings.Replace(s, old, new, 1)
}
