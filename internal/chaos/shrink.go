package chaos

import "pftk/internal/scenario"

// defaultShrinkBudget caps case executions per shrink. Each candidate
// evaluation runs the simulator twice (the replay invariant), so the
// budget is what keeps a pathological failure from stalling a campaign.
const defaultShrinkBudget = 150

// Shrink greedily minimizes a failing case while preserving the named
// failing invariant: at each step it tries a deterministic sequence of
// simplifications — drop a fault train, drop a phase, drop the whole
// scenario, halve the duration, simplify the fixed-path knobs — and
// keeps the first candidate that is still valid and still fails the
// same invariant, restarting from it. It stops at a fixpoint (no
// candidate keeps the failure) or when the execution budget runs out,
// and returns the smallest failing case found.
//
// The walk is deterministic: candidates are tried in a fixed order and
// every evaluation is itself deterministic, so a shrink is as
// replayable as the campaign that triggered it.
func Shrink(c Case, invariant string, env Envelope, hook func(Case, *Outcome), budget int) Case {
	if budget <= 0 {
		budget = defaultShrinkBudget
	}
	fails := func(cand Case) bool {
		if budget <= 0 {
			return false
		}
		if cand.Validate() != nil {
			return false
		}
		budget--
		out := RunCase(cand, env)
		if hook != nil {
			hook(cand, &out)
		}
		return findViolation(out, invariant) != ""
	}

	cur := c
	for {
		improved := false
		for _, cand := range candidates(cur) {
			if fails(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved || budget <= 0 {
			return cur
		}
	}
}

// candidates returns the deterministic sequence of one-step
// simplifications of c, most aggressive first: structural deletions
// shrink faster than scalar halvings, so they lead.
func candidates(c Case) []Case {
	var out []Case
	if sc := c.Scenario; sc != nil {
		// Drop the whole scenario.
		whole := c
		whole.Scenario = nil
		out = append(out, whole)
		// Drop one fault train at a time.
		for i := range sc.Faults {
			out = append(out, withScenario(c, scenario.Scenario{
				Name:     sc.Name,
				Duration: sc.Duration,
				Phases:   sc.Phases,
				Faults:   without(sc.Faults, i),
			}))
		}
		// Drop one phase at a time.
		for i := range sc.Phases {
			out = append(out, withScenario(c, scenario.Scenario{
				Name:     sc.Name,
				Duration: sc.Duration,
				Phases:   without(sc.Phases, i),
				Faults:   sc.Faults,
			}))
		}
		// Collapse a periodic train to a one-shot window.
		for i, f := range sc.Faults {
			if f.Period > 0 {
				faults := append([]scenario.Fault(nil), sc.Faults...)
				faults[i].Period = 0
				faults[i].Count = 0
				out = append(out, withScenario(c, scenario.Scenario{
					Name: sc.Name, Duration: sc.Duration, Phases: sc.Phases, Faults: faults,
				}))
			}
		}
	}
	// Multi-flow simplifications: collapse to the single-flow pipeline
	// first (the failure may not need competing flows at all), else
	// halve the population while scaling the bottleneck to keep each
	// remaining flow's share — and therefore its congestion regime —
	// unchanged.
	if c.Flows >= 2 {
		single := c
		single.Flows, single.FlowRate, single.FlowQueue = 0, 0, 0
		out = append(out, single)
		if half := c.Flows / 2; half >= 2 {
			cand := c
			cand.Flows = half
			cand.FlowRate = c.FlowRate * float64(half) / float64(c.Flows)
			cand.FlowQueue = c.FlowQueue * half / c.Flows
			if cand.FlowQueue < 1 {
				cand.FlowQueue = 1
			}
			out = append(out, cand)
		}
	}
	// Halve the duration (scenario duration tracks it; candidates whose
	// program no longer fits are rejected by Validate inside Shrink).
	if c.Duration > 2 {
		half := c
		half.Duration = c.Duration / 2
		if half.Scenario != nil {
			sc := *half.Scenario
			sc.Duration = half.Duration
			half.Scenario = &sc
		}
		out = append(out, half)
	}
	// Simplify the fixed-path knobs toward the defaults.
	if c.BurstDur > 0 {
		cand := c
		cand.BurstDur = 0
		out = append(out, cand)
	}
	if c.LossRate > 0.02 {
		cand := c
		cand.LossRate = c.LossRate / 2
		out = append(out, cand)
	}
	if c.Variant != "reno" {
		cand := c
		cand.Variant = "reno"
		out = append(out, cand)
	}
	if c.AckEvery != 2 {
		cand := c
		cand.AckEvery = 2
		out = append(out, cand)
	}
	if c.Wm > 16 {
		cand := c
		cand.Wm = c.Wm / 2
		out = append(out, cand)
	}
	return out
}

// withScenario returns c with the given scenario, dropping it entirely
// when it has become empty.
func withScenario(c Case, sc scenario.Scenario) Case {
	if len(sc.Phases) == 0 && len(sc.Faults) == 0 {
		c.Scenario = nil
		return c
	}
	c.Scenario = &sc
	return c
}

// without returns s with element i removed, never aliasing s.
func without[T any](s []T, i int) []T {
	if len(s) <= 1 {
		return nil
	}
	out := make([]T, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}
