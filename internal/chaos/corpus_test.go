package chaos

import (
	"strings"
	"testing"
)

// TestCorpusReplay replays every committed repro under
// testdata/chaos-corpus against the full invariant battery. An entry
// records a case that once failed (or a seeded regression case); all of
// them must run clean now and forever.
func TestCorpusReplay(t *testing.T) {
	entries, err := ReadCorpusDir("testdata/chaos-corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("committed corpus is empty; the replay test is vacuous")
	}
	env := DefaultSpec().Envelope
	for _, e := range entries {
		e := e
		t.Run(e.EntryFilename(), func(t *testing.T) {
			t.Parallel()
			out := RunCase(e.Case, env)
			for _, v := range out.Violations {
				t.Errorf("violated %s: %s", v.Invariant, v.Detail)
			}
		})
	}
}

// TestCorpusEntryCodec pins the strict corpus codec: round trip,
// unknown fields, version and invariant checks.
func TestCorpusEntryCodec(t *testing.T) {
	dir := t.TempDir()
	entry := CorpusEntry{
		Invariant: InvReplay,
		Detail:    "example",
		Case:      Case{Index: 3, Seed: 9, RTT: 0.1, LossRate: 0.02, Wm: 16, MinRTO: 1, Duration: 4, Variant: "reno", AckEvery: 2},
	}
	path, err := WriteCorpusEntry(dir, entry)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, entry.EntryFilename()) {
		t.Errorf("entry written to %s, want filename %s", path, entry.EntryFilename())
	}
	entries, err := ReadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Case.Hash() != entry.Case.Hash() {
		t.Fatalf("round trip lost the case: %+v", entries)
	}
	if entries[0].Version != CorpusVersion {
		t.Errorf("version defaulting failed: %d", entries[0].Version)
	}

	bad := []struct{ name, doc string }{
		{"unknown field", `{"version":1,"invariant":"x","kase":{}}`},
		{"no invariant", `{"version":1,"case":{"index":0,"seed":1,"rtt":0.1,"loss_rate":0,"wm":8,"min_rto":1,"duration":2,"variant":"reno","ack_every":2}}`},
		{"bad version", `{"version":99,"invariant":"x","case":{}}`},
		{"invalid case", `{"version":1,"invariant":"x","case":{"index":0,"seed":1,"rtt":-1,"loss_rate":0,"wm":8,"min_rto":1,"duration":2,"variant":"reno","ack_every":2}}`},
		{"trailing bytes", `{"version":1,"invariant":"x","case":{"index":0,"seed":1,"rtt":0.1,"loss_rate":0,"wm":8,"min_rto":1,"duration":2,"variant":"reno","ack_every":2}} extra`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCorpusEntry([]byte(tc.doc)); err == nil {
				t.Error("parsed, want error")
			}
		})
	}
	// Missing directory = empty corpus, not an error.
	if entries, err := ReadCorpusDir(dir + "/nope"); err != nil || len(entries) != 0 {
		t.Errorf("missing dir: entries=%v err=%v", entries, err)
	}
}
