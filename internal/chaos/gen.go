package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"pftk/internal/scenario"
	"pftk/internal/sim"
)

// Case is one fully-specified simulation drawn from a Spec: the
// fixed-path parameters plus an optional scenario program. Its fields
// mirror the serving daemon's simulate request one-for-one, so a case
// can be fed to a live pftkd byte-identically to how the local runner
// executes it.
type Case struct {
	// Index is the case's position in its campaign; together with the
	// campaign (spec, seed) it names the case uniquely.
	Index int `json:"index"`
	// Seed drives the simulation's random streams.
	Seed uint64 `json:"seed"`
	// RTT is the two-way propagation delay, seconds.
	RTT float64 `json:"rtt"`
	// LossRate is the base loss process's headline rate (bernoulli drop
	// probability or timedburst outage-start probability; 0 when the
	// base process lives in a phase-zero scenario rewrite instead).
	LossRate float64 `json:"loss_rate"`
	// BurstDur is the timedburst outage duration, seconds (0 selects
	// bernoulli).
	BurstDur float64 `json:"burst_dur,omitempty"`
	// Wm is the receiver's advertised window, packets.
	Wm int `json:"wm"`
	// MinRTO floors the retransmission timeout, seconds.
	MinRTO float64 `json:"min_rto"`
	// Duration is the transfer length, simulated seconds.
	Duration float64 `json:"duration"`
	// Variant is the sender flavor.
	Variant string `json:"variant"`
	// AckEvery is the delayed-ACK ratio b.
	AckEvery int `json:"ack_every"`
	// Scenario optionally schedules phases and fault trains; its
	// declared Duration always equals the case Duration, so the
	// scenario codec's past-the-end validation guards every generated
	// program.
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
	// Flows, when 2 or more, runs that many symmetric flows through one
	// shared bottleneck instead of the single-flow pipeline. Multi-flow
	// cases carry no scenario and are checked against the per-flow
	// invariant set.
	Flows int `json:"flows,omitempty"`
	// FlowRate is the shared bottleneck's total rate, pkts/s
	// (multi-flow cases only).
	FlowRate float64 `json:"flow_rate,omitempty"`
	// FlowQueue is the shared bottleneck's total queue capacity,
	// packets (multi-flow cases only).
	FlowQueue int `json:"flow_queue,omitempty"`
}

// Hash returns a canonical content hash of the case.
func (c Case) Hash() string {
	data, err := json.Marshal(c)
	if err != nil {
		// Case is a plain struct of numbers and strings; failure to
		// encode is a programming error.
		panic(fmt.Sprintf("chaos: case hash: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Validate reports the first problem with the case, or nil. Generated
// cases always pass; the check guards corpus entries and hand-written
// repros.
func (c Case) Validate() error {
	switch {
	case !(c.RTT > 0) || math.IsInf(c.RTT, 0):
		return fmt.Errorf("chaos: case %d: rtt must be positive and finite, got %v", c.Index, c.RTT)
	case math.IsNaN(c.LossRate) || c.LossRate < 0 || c.LossRate > 1:
		return fmt.Errorf("chaos: case %d: loss_rate must be in [0, 1], got %v", c.Index, c.LossRate)
	case math.IsNaN(c.BurstDur) || c.BurstDur < 0:
		return fmt.Errorf("chaos: case %d: burst_dur must be non-negative, got %v", c.Index, c.BurstDur)
	case c.Wm < 1:
		return fmt.Errorf("chaos: case %d: wm must be at least 1, got %d", c.Index, c.Wm)
	case !(c.MinRTO > 0):
		return fmt.Errorf("chaos: case %d: min_rto must be positive, got %v", c.Index, c.MinRTO)
	case !(c.Duration > 0) || math.IsInf(c.Duration, 0):
		return fmt.Errorf("chaos: case %d: duration must be positive and finite, got %v", c.Index, c.Duration)
	case !validVariants[c.Variant]:
		return fmt.Errorf("chaos: case %d: unknown variant %q", c.Index, c.Variant)
	case c.AckEvery < 1:
		return fmt.Errorf("chaos: case %d: ack_every must be at least 1, got %d", c.Index, c.AckEvery)
	}
	if c.Flows >= 2 {
		switch {
		case !(c.FlowRate > 0) || math.IsInf(c.FlowRate, 0):
			return fmt.Errorf("chaos: case %d: flow_rate must be positive and finite, got %v", c.Index, c.FlowRate)
		case c.FlowQueue < 1:
			return fmt.Errorf("chaos: case %d: flow_queue must be at least 1, got %d", c.Index, c.FlowQueue)
		case c.Scenario != nil:
			return fmt.Errorf("chaos: case %d: multi-flow cases cannot carry a scenario", c.Index)
		}
	}
	if err := c.Scenario.Validate(); err != nil {
		return fmt.Errorf("chaos: case %d: %w", c.Index, err)
	}
	if c.Scenario != nil && c.Scenario.Duration > 0 && c.Scenario.Duration > c.Duration {
		return fmt.Errorf("chaos: case %d: scenario duration %v exceeds case duration %v",
			c.Index, c.Scenario.Duration, c.Duration)
	}
	return nil
}

// caseRNG returns case i's private generator: a fresh campaign-seeded
// generator forked with the case label, so case i's stream is the same
// whether it is generated alone, in order, or from a shrinking loop —
// order independence is what makes single-case replay exact.
func caseRNG(seed uint64, i int) *sim.RNG {
	return sim.NewRNG(seed).Fork(fmt.Sprintf("case.%d", i))
}

// logUniform samples log-uniformly over [r.Min, r.Max]; a degenerate or
// zero-bounded range falls back to uniform sampling.
func logUniform(rng *sim.RNG, r Range) float64 {
	if r.Min <= 0 || r.Max <= r.Min {
		return rng.Uniform(r.Min, r.Max)
	}
	return math.Exp(rng.Uniform(math.Log(r.Min), math.Log(r.Max)))
}

// intIn samples uniformly over the closed integer range.
func intIn(rng *sim.RNG, r IntRange) int {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + rng.Intn(r.Max-r.Min+1)
}

// pick samples uniformly from a non-empty slice.
func pick[T any](rng *sim.RNG, set []T) T {
	return set[rng.Intn(len(set))]
}

// Generate samples case i of the campaign (spec, seed). It is a pure
// function of its arguments — labeled RNG forks per component, no
// global state — and the returned case always satisfies Validate (a
// non-nil error is a generator bug surfaced to the campaign as a
// violation rather than a panic).
//
//pftk:deterministic
func Generate(sp *Spec, seed uint64, i int) (Case, error) {
	rng := caseRNG(seed, i)
	c := Case{
		Index:    i,
		Seed:     rng.Fork("seed").Uint64(),
		RTT:      rng.Fork("rtt").Uniform(sp.RTT.Min, sp.RTT.Max),
		Wm:       intIn(rng.Fork("wm"), sp.Wm),
		MinRTO:   rng.Fork("minrto").Uniform(sp.MinRTO.Min, sp.MinRTO.Max),
		Duration: rng.Fork("duration").Uniform(sp.Duration.Min, sp.Duration.Max),
		Variant:  pick(rng.Fork("variant"), sp.Variants),
		AckEvery: pick(rng.Fork("ack"), sp.AckEvery),
	}

	// Base loss process. Bernoulli and timedburst map directly onto the
	// fixed-path knobs; a ge base process has no fixed-path spelling, so
	// it becomes a phase-zero scenario rewrite.
	var phases []scenario.Phase
	lossRNG := rng.Fork("loss")
	rate := logUniform(lossRNG, sp.Loss.Rate)
	switch pick(lossRNG, sp.Loss.Models) {
	case scenario.LossGE:
		ge := &scenario.LossSpec{
			Rate:     rate,
			Model:    scenario.LossGE,
			BurstLen: lossRNG.Uniform(sp.Loss.BurstLen.Min, sp.Loss.BurstLen.Max),
		}
		phases = append(phases, scenario.Phase{At: 0, Loss: ge})
	case scenario.LossOutage:
		c.LossRate = rate
		c.BurstDur = lossRNG.Uniform(sp.Loss.BurstDur.Min, sp.Loss.BurstDur.Max)
	default: // bernoulli
		c.LossRate = rate
	}

	// Flow count: a draw of n >= 2 turns the case into n symmetric flows
	// competing for one shared bottleneck. Scenario programs rewrite a
	// single flow's private path, so multi-flow cases skip them, and a
	// ge base process (which has no fixed-path spelling) falls back to
	// bernoulli at the same rate.
	if n := intIn(rng.Fork("flows"), sp.Flows); n >= 2 {
		c.Flows = n
		c.FlowRate = float64(n) * rng.Fork("flowrate").Uniform(sp.FlowRate.Min, sp.FlowRate.Max)
		c.FlowQueue = n * intIn(rng.Fork("flowqueue"), sp.FlowQueue)
		if c.LossRate == 0 && c.BurstDur == 0 {
			c.LossRate = rate
		}
		if err := c.Validate(); err != nil {
			return c, fmt.Errorf("generated case invalid: %w", err)
		}
		return c, nil
	}

	phases = append(phases, genPhases(sp, rng.Fork("phases"), c.Duration)...)
	faults := genFaults(sp, rng.Fork("faults"), c.Duration)

	if len(phases) > 0 || len(faults) > 0 {
		c.Scenario = &scenario.Scenario{
			Name:     fmt.Sprintf("chaos-%d", i),
			Duration: c.Duration,
			Phases:   phases,
			Faults:   faults,
		}
	}
	if err := c.Validate(); err != nil {
		return c, fmt.Errorf("generated case invalid: %w", err)
	}
	return c, nil
}

// genPhases samples the scheduled path rewrites. Phase times land in
// the middle [10%, 90%] of the run (a rewrite in the final instants
// changes nothing observable) and are sorted with duplicates dropped to
// keep the strictly-increasing invariant.
func genPhases(sp *Spec, rng *sim.RNG, duration float64) []scenario.Phase {
	n := intIn(rng, sp.Phases)
	if n == 0 {
		return nil
	}
	times := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		times = append(times, rng.Uniform(0.1*duration, 0.9*duration))
	}
	sort.Float64s(times)
	var phases []scenario.Phase
	for _, at := range times {
		if len(phases) > 0 && !(at > phases[len(phases)-1].At) {
			continue
		}
		ph := scenario.Phase{At: at}
		// Each phase flips at least one knob; loss is likeliest since
		// loss-process churn is the paper's own non-stationarity story.
		if rng.Bool(0.6) {
			ls := &scenario.LossSpec{Rate: logUniform(rng, sp.Loss.Rate)}
			if rng.Bool(0.3) {
				ls.Model = scenario.LossGE
				ls.BurstLen = rng.Uniform(sp.Loss.BurstLen.Min, sp.Loss.BurstLen.Max)
			}
			ph.Loss = ls
		}
		if rng.Bool(0.4) {
			rtt := rng.Uniform(sp.RTT.Min, sp.RTT.Max)
			ph.RTT = &rtt
		}
		if rng.Bool(0.25) {
			r := rng.Uniform(sp.PhaseRate.Min, sp.PhaseRate.Max)
			ph.Rate = &r
			q := intIn(rng, sp.PhaseQueue)
			ph.QueueCap = &q
		}
		if ph.Loss == nil && ph.RTT == nil && ph.Rate == nil {
			rtt := rng.Uniform(sp.RTT.Min, sp.RTT.Max)
			ph.RTT = &rtt
		}
		phases = append(phases, ph)
	}
	return phases
}

// genFaults samples the fault trains. Every occurrence — first and, for
// bounded periodic trains, last — fits inside the run, so generated
// programs always pass the codec's past-the-end validation.
func genFaults(sp *Spec, rng *sim.RNG, duration float64) []scenario.Fault {
	n := intIn(rng, sp.Faults)
	if n == 0 || len(sp.FaultKinds) == 0 {
		return nil
	}
	var faults []scenario.Fault
	for i := 0; i < n; i++ {
		f := scenario.Fault{Kind: pick(rng, sp.FaultKinds)}
		maxDur := math.Min(sp.FaultDur.Max, duration/2)
		f.Dur = rng.Uniform(sp.FaultDur.Min, maxDur)
		f.Start = rng.Uniform(0, duration-f.Dur)
		switch f.Kind {
		case scenario.KindLossBurst:
			f.LossRate = rng.Uniform(sp.LossBurstRate.Min, sp.LossBurstRate.Max)
		case scenario.KindDelaySpike:
			f.ExtraDelay = rng.Uniform(sp.ExtraDelay.Min, sp.ExtraDelay.Max)
		case scenario.KindReorder:
			f.Jitter = rng.Uniform(sp.Jitter.Min, sp.Jitter.Max)
		case scenario.KindDuplicate:
			f.Prob = rng.Uniform(sp.DupProb.Min, sp.DupProb.Max)
		}
		if rng.Bool(sp.FaultPeriodicProb) {
			// A bounded train: period at least the duration (no
			// overlap), count capped so the last occurrence still ends
			// inside the run.
			period := rng.Uniform(f.Dur, math.Max(2*f.Dur, duration/4))
			maxCount := 1 + int((duration-f.Dur-f.Start)/period)
			if maxCount >= 2 {
				f.Period = period
				f.Count = 2 + rng.Intn(maxCount-1)
				if f.Count > maxCount {
					f.Count = maxCount
				}
			}
		}
		faults = append(faults, f)
	}
	return faults
}
