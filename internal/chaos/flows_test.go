package chaos

import "testing"

// TestGenerateFlowsDimension checks the flows dimension samples real
// multi-flow cases from the default spec and that they carry coherent
// bottleneck parameters and no scenario.
func TestGenerateFlowsDimension(t *testing.T) {
	sp := DefaultSpec()
	var multi int
	for i := 0; i < 40; i++ {
		c, err := Generate(&sp, 11, i)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if c.Flows < 2 {
			continue
		}
		multi++
		if c.Scenario != nil {
			t.Errorf("case %d: multi-flow case carries a scenario", i)
		}
		if c.FlowRate < float64(c.Flows)*sp.FlowRate.Min || c.FlowRate > float64(c.Flows)*sp.FlowRate.Max {
			t.Errorf("case %d: total rate %v outside %d x [%v, %v]", i, c.FlowRate, c.Flows, sp.FlowRate.Min, sp.FlowRate.Max)
		}
		if c.FlowQueue < c.Flows*sp.FlowQueue.Min || c.FlowQueue > c.Flows*sp.FlowQueue.Max {
			t.Errorf("case %d: total queue %d outside %d x [%d, %d]", i, c.FlowQueue, c.Flows, sp.FlowQueue.Min, sp.FlowQueue.Max)
		}
		if c.LossRate == 0 && c.BurstDur == 0 {
			t.Errorf("case %d: multi-flow case lost its base loss process", i)
		}
	}
	// Flows{1,4} should yield multi-flow draws about 3/4 of the time;
	// zero out of 40 means the dimension is not being sampled.
	if multi == 0 {
		t.Fatal("no multi-flow cases in 40 draws from the default spec")
	}
}

// TestMultiFlowCaseCleanAndReplayStable runs one multi-flow case
// through the full invariant pipeline: per-flow conservation, aggregate
// sanity and byte-exact replay must all hold.
func TestMultiFlowCaseCleanAndReplayStable(t *testing.T) {
	c := Case{
		Index:     0,
		Seed:      9,
		RTT:       0.08,
		LossRate:  0.01,
		Wm:        32,
		MinRTO:    0.5,
		Duration:  30,
		Variant:   "reno",
		AckEvery:  2,
		Flows:     3,
		FlowRate:  90,
		FlowQueue: 15,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	out := RunCase(c, DefaultSpec().Envelope)
	for _, v := range out.Violations {
		t.Errorf("violated %s: %s", v.Invariant, v.Detail)
	}
	if out.Packets == 0 || out.Delivered == 0 {
		t.Errorf("no traffic: %+v", out)
	}
}

// TestMultiFlowValidation pins the multi-flow case constraints.
func TestMultiFlowValidation(t *testing.T) {
	base := Case{RTT: 0.1, Wm: 16, MinRTO: 1, Duration: 10, Variant: "reno", AckEvery: 2}

	c := base
	c.Flows = 2
	if err := c.Validate(); err == nil {
		t.Error("multi-flow case without a bottleneck rate validated")
	}
	c.FlowRate = 50
	if err := c.Validate(); err == nil {
		t.Error("multi-flow case without a queue validated")
	}
	c.FlowQueue = 8
	if err := c.Validate(); err != nil {
		t.Errorf("valid multi-flow case rejected: %v", err)
	}
}

// TestShrinkDropsFlows checks the shrinker can walk a multi-flow
// failure down to the single-flow pipeline when the flow population is
// irrelevant to the failing invariant.
func TestShrinkDropsFlows(t *testing.T) {
	c := Case{
		Index: 0, Seed: 3, RTT: 0.1, LossRate: 0.05, Wm: 32, MinRTO: 1,
		Duration: 8, Variant: "tahoe", AckEvery: 1,
		Flows: 4, FlowRate: 120, FlowQueue: 20,
	}
	// Hook fails every case regardless of shape: the shrinker should
	// reach a minimal single-flow case.
	hook := func(_ Case, out *Outcome) { out.violate(InvHook, "always fails") }
	min := Shrink(c, InvHook, Envelope{}, hook, 60)
	if min.Flows != 0 {
		t.Errorf("shrunk case still has %d flows", min.Flows)
	}
	if min.Variant != "reno" || min.AckEvery != 2 {
		t.Errorf("knobs not simplified: variant %q ack %d", min.Variant, min.AckEvery)
	}
}
