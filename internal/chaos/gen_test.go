package chaos

import (
	"testing"

	"pftk/internal/scenario"
)

// TestGenerateDeterministicAndOrderFree pins the generator's replay
// contract: case i is a pure function of (spec, seed, i), identical
// whether generated alone, repeatedly, or interleaved with other
// indices — which is what lets a single corpus case be regenerated
// without replaying the whole campaign.
func TestGenerateDeterministicAndOrderFree(t *testing.T) {
	sp := DefaultSpec()
	inOrder := make([]Case, 20)
	for i := range inOrder {
		c, err := Generate(&sp, 42, i)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		inOrder[i] = c
	}
	// Reverse order, fresh calls: same cases.
	for i := len(inOrder) - 1; i >= 0; i-- {
		again, err := Generate(&sp, 42, i)
		if err != nil {
			t.Fatal(err)
		}
		if again.Hash() != inOrder[i].Hash() {
			t.Fatalf("case %d differs when generated out of order", i)
		}
	}
	// A different seed moves every case.
	other, err := Generate(&sp, 43, 0)
	if err != nil {
		t.Fatal(err)
	}
	if other.Hash() == inOrder[0].Hash() {
		t.Error("seed 42 and 43 generated the same case 0")
	}
}

// TestGenerateAlwaysValid pins the generator's validity contract over a
// larger sample than any single campaign, including that every
// generated scenario declares the case duration (so the codec's
// past-the-end validation is armed on every case).
func TestGenerateAlwaysValid(t *testing.T) {
	sp := DefaultSpec()
	for i := 0; i < 500; i++ {
		c, err := Generate(&sp, 7, i)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		//pftklint:ignore floatcmp the generator copies the duration verbatim; equality is exact
		if c.Scenario != nil && c.Scenario.Duration != c.Duration {
			t.Fatalf("case %d: scenario declares duration %v, case has %v",
				i, c.Scenario.Duration, c.Duration)
		}
	}
}

// TestGenerateCoversTheSpec pins that a modest campaign actually
// exercises the distribution: every loss family, every fault kind,
// phases, periodic trains and rate-limited bottleneck phases all
// appear. A generator that silently stopped sampling a dimension would
// quietly hollow out every campaign built on it.
func TestGenerateCoversTheSpec(t *testing.T) {
	sp := DefaultSpec()
	kinds := map[string]int{}
	var ge, timedburst, bernoulli, phased, periodic, rated int
	for i := 0; i < 400; i++ {
		c, err := Generate(&sp, 99, i)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case c.BurstDur > 0:
			timedburst++
		case c.LossRate > 0:
			bernoulli++
		}
		if c.Scenario == nil {
			continue
		}
		for _, ph := range c.Scenario.Phases {
			//pftklint:ignore floatcmp the ge base phase is generated with a literal 0
			if ph.At == 0 && ph.Loss != nil && ph.Loss.Model == scenario.LossGE {
				ge++
			} else {
				phased++
			}
			if ph.Rate != nil {
				rated++
			}
		}
		for _, f := range c.Scenario.Faults {
			kinds[f.Kind]++
			if f.Period > 0 {
				if f.Count < 2 {
					t.Fatalf("case %d: periodic fault with count %d", i, f.Count)
				}
				periodic++
			}
		}
	}
	if ge == 0 || timedburst == 0 || bernoulli == 0 {
		t.Errorf("loss families not all covered: ge=%d timedburst=%d bernoulli=%d", ge, timedburst, bernoulli)
	}
	if phased == 0 || rated == 0 || periodic == 0 {
		t.Errorf("scenario shapes not all covered: phases=%d rate-limited=%d periodic=%d", phased, rated, periodic)
	}
	for _, k := range sp.FaultKinds {
		if kinds[k] == 0 {
			t.Errorf("fault kind %q never generated (seen: %v)", k, kinds)
		}
	}
}
