// Package chaos is the randomized scenario-soak harness: it samples
// valid simulation cases — fixed-path parameters plus declarative
// scenario programs (phases and fault trains) — from a distribution
// Spec, executes them in bulk across a worker pool, and checks a set of
// global invariants on every run: packet conservation per link
// direction, exact reconciliation between the obs metric counters and
// the link's own statistics, per-phase attribution telescoping to the
// run totals, the PFTK model's prediction staying inside a configurable
// envelope of the measured rate on stationary cases, and byte-exact
// replay of every case from its seed.
//
// Everything is a pure function of (Spec, Seed): case i is generated
// from an RNG forked with the label "case.<i>" off a fresh
// generator seeded with the campaign seed, so any single case — and the
// whole campaign report — is reproducible on any machine at any worker
// count. When a case fails an invariant, the Shrink pass greedily
// minimizes it (dropping faults and phases, halving magnitudes) while
// preserving the failing invariant, and the minimal repro is written to
// a corpus directory in a stable JSON format that `go test` replays.
package chaos

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"

	"pftk/internal/scenario"
)

// Range is a closed interval of float64 values to sample from. Min ==
// Max pins the value.
type Range struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// validate reports the first problem with the range under the given
// knob name; lo bounds Min from below.
func (r Range) validate(name string, lo float64) error {
	switch {
	case math.IsNaN(r.Min) || math.IsNaN(r.Max) || math.IsInf(r.Min, 0) || math.IsInf(r.Max, 0):
		return fmt.Errorf("chaos: %s range must be finite, got [%v, %v]", name, r.Min, r.Max)
	case r.Min < lo:
		return fmt.Errorf("chaos: %s range minimum %v below %v", name, r.Min, lo)
	case r.Max < r.Min:
		return fmt.Errorf("chaos: %s range [%v, %v] is inverted", name, r.Min, r.Max)
	}
	return nil
}

// IntRange is a closed interval of integers to sample from.
type IntRange struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

// validate reports the first problem with the range under the given
// knob name; lo bounds Min from below.
func (r IntRange) validate(name string, lo int) error {
	switch {
	case r.Min < lo:
		return fmt.Errorf("chaos: %s range minimum %d below %d", name, r.Min, lo)
	case r.Max < r.Min:
		return fmt.Errorf("chaos: %s range [%d, %d] is inverted", name, r.Min, r.Max)
	}
	return nil
}

// LossDist describes the distribution of the base (phase-zero) loss
// process: which model families to draw from and the parameter ranges.
type LossDist struct {
	// Models is the non-empty set of loss families to sample uniformly:
	// bernoulli, ge and/or timedburst (scenario package names).
	Models []string `json:"models"`
	// Rate is the headline loss-rate range, sampled log-uniformly so
	// campaigns cover the paper's two decades of p evenly.
	Rate Range `json:"rate"`
	// BurstLen is the ge model's mean burst length range, in packets.
	BurstLen Range `json:"burst_len"`
	// BurstDur is the timedburst model's outage-duration range, seconds.
	BurstDur Range `json:"burst_dur"`
}

// Envelope configures the model-vs-measured invariant: on stationary
// (scenario-free) cases with enough loss signal, the full PFTK model
// evaluated at the measured (p, RTT, T0) must predict the measured send
// rate within a multiplicative factor.
type Envelope struct {
	// ModelErrorFactor is the largest tolerated max(pred/meas,
	// meas/pred). Zero disables the check.
	ModelErrorFactor float64 `json:"model_error_factor"`
	// MinLossIndications gates the check: below this many ground-truth
	// loss indications the measured p is noise, not signal.
	MinLossIndications int `json:"min_loss_indications"`
}

// Spec is the declarative distribution a campaign samples cases from.
// It has a strict JSON codec (Parse/Encode) and a canonical Hash, so a
// campaign is replayable — and a report attributable — from
// (spec, seed) alone.
type Spec struct {
	// Name labels the spec in reports.
	Name string `json:"name,omitempty"`

	// RTT is the two-way propagation delay range, seconds.
	RTT Range `json:"rtt"`
	// Duration is the simulated transfer length range, seconds.
	Duration Range `json:"duration"`
	// Wm is the receiver advertised-window range, packets.
	Wm IntRange `json:"wm"`
	// MinRTO is the retransmission-timeout floor range, seconds.
	MinRTO Range `json:"min_rto"`
	// AckEvery is the non-empty set of delayed-ACK ratios to sample.
	AckEvery []int `json:"ack_every"`
	// Variants is the non-empty set of sender flavors to sample.
	Variants []string `json:"variants"`
	// Loss is the base loss-process distribution.
	Loss LossDist `json:"loss"`

	// Phases is the range of scheduled path-rewrite counts per case.
	Phases IntRange `json:"phases"`
	// PhaseRate is the bottleneck-rate range (pkts/s) a phase may set.
	PhaseRate Range `json:"phase_rate"`
	// PhaseQueue is the drop-tail queue-capacity range a phase may set.
	PhaseQueue IntRange `json:"phase_queue"`

	// Faults is the range of fault-train counts per case.
	Faults IntRange `json:"faults"`
	// FaultKinds is the non-empty set of fault kinds to sample.
	FaultKinds []string `json:"fault_kinds"`
	// FaultDur is the per-occurrence fault duration range, seconds.
	FaultDur Range `json:"fault_dur"`
	// FaultPeriodicProb is the probability a fault becomes a bounded
	// periodic train instead of a one-shot window.
	FaultPeriodicProb float64 `json:"fault_periodic_prob"`
	// LossBurstRate is the extra drop probability range of loss_burst
	// windows.
	LossBurstRate Range `json:"loss_burst_rate"`
	// ExtraDelay is the added one-way delay range of delay_spike
	// windows, seconds.
	ExtraDelay Range `json:"extra_delay"`
	// Jitter is the reorder window's uniform delay-bound range, seconds.
	Jitter Range `json:"jitter"`
	// DupProb is the duplicate window's per-packet probability range.
	DupProb Range `json:"dup_prob"`

	// Flows is the range of concurrent-flow counts per case. Counts of
	// 0 or 1 run the classic single-flow pipeline; a draw of n >= 2
	// runs n symmetric flows through one shared bottleneck instead
	// (scenario programs are single-flow machinery and are skipped on
	// multi-flow cases).
	Flows IntRange `json:"flows"`
	// FlowRate is the shared bottleneck's per-flow rate range, pkts/s;
	// a case's total bottleneck rate is the draw times its flow count.
	FlowRate Range `json:"flow_rate"`
	// FlowQueue is the bottleneck's per-flow queue-capacity range,
	// packets (total capacity scales with the flow count likewise).
	FlowQueue IntRange `json:"flow_queue"`

	// Envelope configures the model-vs-measured invariant.
	Envelope Envelope `json:"envelope"`
}

// DefaultSpec is the distribution behind `make chaos-smoke`: short
// transfers (a few seconds to ~20 s keeps 500 runs inside a CI time
// box) over the paper's loss-rate decades, with up to a handful of
// phases and fault trains layered per case.
func DefaultSpec() Spec {
	return Spec{
		Name:     "default",
		RTT:      Range{0.02, 0.4},
		Duration: Range{4, 20},
		Wm:       IntRange{8, 64},
		MinRTO:   Range{0.5, 1.5},
		AckEvery: []int{1, 2},
		Variants: []string{"reno", "tahoe", "linux", "irix", "newreno"},
		Loss: LossDist{
			Models:   []string{scenario.LossBernoulli, scenario.LossGE, scenario.LossOutage},
			Rate:     Range{0.003, 0.15},
			BurstLen: Range{1, 4},
			BurstDur: Range{0.05, 0.5},
		},
		Phases:            IntRange{0, 3},
		PhaseRate:         Range{50, 2000},
		PhaseQueue:        IntRange{4, 64},
		Faults:            IntRange{0, 3},
		FaultKinds:        []string{scenario.KindOutage, scenario.KindLossBurst, scenario.KindDelaySpike, scenario.KindReorder, scenario.KindDuplicate},
		FaultDur:          Range{0.1, 2},
		FaultPeriodicProb: 0.3,
		LossBurstRate:     Range{0.05, 0.5},
		ExtraDelay:        Range{0.05, 0.5},
		Jitter:            Range{0.01, 0.2},
		DupProb:           Range{0.01, 0.3},
		Flows:             IntRange{1, 4},
		FlowRate:          Range{15, 60},
		FlowQueue:         IntRange{3, 8},
		Envelope:          Envelope{ModelErrorFactor: defaultModelErrorFactor, MinLossIndications: 20},
	}
}

// validVariants mirrors the serving layer's sender-flavor set.
var validVariants = map[string]bool{
	"reno": true, "tahoe": true, "linux": true, "irix": true, "newreno": true,
}

// validLossModels is the closed set of base loss families.
var validLossModels = map[string]bool{
	scenario.LossBernoulli: true,
	scenario.LossGE:        true,
	scenario.LossOutage:    true,
}

// validFaultKinds is the closed set of sampleable fault kinds.
var validFaultKinds = map[string]bool{
	scenario.KindOutage:     true,
	scenario.KindLossBurst:  true,
	scenario.KindDelaySpike: true,
	scenario.KindReorder:    true,
	scenario.KindDuplicate:  true,
}

// Validate reports the first problem with the spec, or nil.
func (sp *Spec) Validate() error {
	if sp == nil {
		return errors.New("chaos: nil spec")
	}
	if err := sp.RTT.validate("rtt", 1e-4); err != nil {
		return err
	}
	if err := sp.Duration.validate("duration", 0.5); err != nil {
		return err
	}
	if err := sp.Wm.validate("wm", 1); err != nil {
		return err
	}
	if err := sp.MinRTO.validate("min_rto", 1e-3); err != nil {
		return err
	}
	if len(sp.AckEvery) == 0 {
		return errors.New("chaos: ack_every set is empty")
	}
	for _, b := range sp.AckEvery {
		if b < 1 {
			return fmt.Errorf("chaos: ack_every value %d below 1", b)
		}
	}
	if len(sp.Variants) == 0 {
		return errors.New("chaos: variants set is empty")
	}
	for _, v := range sp.Variants {
		if !validVariants[v] {
			return fmt.Errorf("chaos: unknown variant %q", v)
		}
	}
	if len(sp.Loss.Models) == 0 {
		return errors.New("chaos: loss.models set is empty")
	}
	for _, m := range sp.Loss.Models {
		if !validLossModels[m] {
			return fmt.Errorf("chaos: unknown loss model %q", m)
		}
	}
	if err := sp.Loss.Rate.validate("loss.rate", 0); err != nil {
		return err
	}
	if sp.Loss.Rate.Max > 1 {
		return fmt.Errorf("chaos: loss.rate maximum %v above 1", sp.Loss.Rate.Max)
	}
	if err := sp.Loss.BurstLen.validate("loss.burst_len", 1); err != nil {
		return err
	}
	if err := sp.Loss.BurstDur.validate("loss.burst_dur", 0); err != nil {
		return err
	}
	if err := sp.Phases.validate("phases", 0); err != nil {
		return err
	}
	if err := sp.PhaseRate.validate("phase_rate", 1); err != nil {
		return err
	}
	if err := sp.PhaseQueue.validate("phase_queue", 1); err != nil {
		return err
	}
	if err := sp.Faults.validate("faults", 0); err != nil {
		return err
	}
	if sp.Faults.Max > 0 && len(sp.FaultKinds) == 0 {
		return errors.New("chaos: faults requested but fault_kinds set is empty")
	}
	for _, k := range sp.FaultKinds {
		if !validFaultKinds[k] {
			return fmt.Errorf("chaos: unknown fault kind %q", k)
		}
	}
	if err := sp.FaultDur.validate("fault_dur", 1e-3); err != nil {
		return err
	}
	if sp.FaultDur.Max >= sp.Duration.Min {
		return fmt.Errorf("chaos: fault_dur maximum %v does not fit inside the shortest duration %v",
			sp.FaultDur.Max, sp.Duration.Min)
	}
	if math.IsNaN(sp.FaultPeriodicProb) || sp.FaultPeriodicProb < 0 || sp.FaultPeriodicProb > 1 {
		return fmt.Errorf("chaos: fault_periodic_prob must be in [0, 1], got %v", sp.FaultPeriodicProb)
	}
	if err := sp.LossBurstRate.validate("loss_burst_rate", 1e-6); err != nil {
		return err
	}
	if sp.LossBurstRate.Max > 1 {
		return fmt.Errorf("chaos: loss_burst_rate maximum %v above 1", sp.LossBurstRate.Max)
	}
	if err := sp.ExtraDelay.validate("extra_delay", 1e-6); err != nil {
		return err
	}
	if err := sp.Jitter.validate("jitter", 1e-6); err != nil {
		return err
	}
	if err := sp.DupProb.validate("dup_prob", 1e-6); err != nil {
		return err
	}
	if sp.DupProb.Max > 1 {
		return fmt.Errorf("chaos: dup_prob maximum %v above 1", sp.DupProb.Max)
	}
	if err := sp.Flows.validate("flows", 0); err != nil {
		return err
	}
	if sp.Flows.Max >= 2 {
		if err := sp.FlowRate.validate("flow_rate", 1); err != nil {
			return err
		}
		if err := sp.FlowQueue.validate("flow_queue", 1); err != nil {
			return err
		}
	}
	if math.IsNaN(sp.Envelope.ModelErrorFactor) || sp.Envelope.ModelErrorFactor < 0 {
		return fmt.Errorf("chaos: envelope.model_error_factor must be non-negative, got %v", sp.Envelope.ModelErrorFactor)
	}
	if sp.Envelope.ModelErrorFactor > 0 && sp.Envelope.ModelErrorFactor < 1 {
		return fmt.Errorf("chaos: envelope.model_error_factor %v below 1 rejects perfect predictions", sp.Envelope.ModelErrorFactor)
	}
	if sp.Envelope.MinLossIndications < 0 {
		return fmt.Errorf("chaos: envelope.min_loss_indications must be non-negative, got %d", sp.Envelope.MinLossIndications)
	}
	return nil
}

// maxSpecBytes bounds a spec document; a real spec is a couple of
// kilobytes.
const maxSpecBytes = 1 << 20

// ParseSpec decodes and validates one JSON spec document. Unknown
// fields and trailing garbage are rejected — a typo'd knob silently
// ignored would run a different campaign than the one written down.
func ParseSpec(data []byte) (*Spec, error) {
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("chaos: spec document of %d bytes exceeds limit %d", len(data), maxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("chaos: spec: %w", err)
	}
	if dec.More() {
		return nil, errors.New("chaos: spec: trailing data after JSON document")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// ParseSpecFile reads and parses the spec document at path.
func ParseSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sp, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}

// Encode renders the spec as indented JSON, the inverse of ParseSpec up
// to formatting.
func (sp *Spec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: spec: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Hash returns a canonical content hash of the spec: equal specs hash
// identically however they were spelled in JSON. Campaign reports carry
// it so a report is attributable to the exact distribution that
// produced it.
func (sp *Spec) Hash() string {
	data, err := json.Marshal(sp)
	if err != nil {
		// Spec is a plain struct of numbers and strings; failure to
		// encode is a programming error.
		panic(fmt.Sprintf("chaos: spec hash: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
