package multiflow

import (
	"testing"

	"pftk/internal/sim"
)

// TestSharedBottleneckSteadyStateAllocs pins the packet path for the
// shared-bottleneck engine: with 10 flows warm, advancing the simulation
// stays under ~2 allocations per simulated second per flow. The residue
// is amortized growth (trace chunks, event-pool doublings, link queue
// slices), not per-packet boxing — the boxed path cost tens of
// allocations per packet-event before the typed pkt.Packet slots.
func TestSharedBottleneckSteadyStateAllocs(t *testing.T) {
	const n = 10
	cfg := Config{
		Flows: SymmetricFlows(n, FlowSpec{RTT: 0.08, Wm: 64, MinRTO: 0.5}),
		Bottleneck: Bottleneck{
			Rate:     20 * n,
			QueueCap: 5 * n,
			OneWay:   0.04,
		},
		Duration: 1,
		Seed:     7,
	}
	var eng sim.Engine
	m := New(&eng, cfg)
	m.Start()
	deadline := 30.0
	eng.RunUntil(deadline)

	allocs := testing.AllocsPerRun(20, func() {
		deadline++
		eng.RunUntil(deadline)
	})
	// ~200 packets traverse the bottleneck per simulated second here; a
	// bound of 2 allocs/flow/sec means < 0.1 allocs per packet, all of it
	// amortized buffer growth.
	if allocs >= 2*n {
		t.Errorf("shared-bottleneck path allocates %.1f times per simulated second for %d flows, want < %d", allocs, n, 2*n)
	}
}
