package multiflow

import (
	"math"
	"sync"
	"testing"

	"pftk/internal/sim"
)

// symmetricConfig is the canonical shared-bottleneck population used by
// the fairness tests: n identical Reno flows through one drop-tail
// link. The queue is kept deep relative to the per-flow bandwidth-delay
// product so queueing delay — not timeout collapse — is the dominant
// regime, which is where synchronous-loss fairness emerges.
func symmetricConfig(n int, dur float64) Config {
	return Config{
		Flows: SymmetricFlows(n, FlowSpec{
			RTT:    0.08,
			Wm:     64,
			MinRTO: 0.5,
		}),
		Bottleneck: Bottleneck{
			Rate:     20 * float64(n),
			QueueCap: 5 * n,
			OneWay:   0.04,
		},
		Duration: dur,
		Seed:     42,
	}
}

func TestSharedBottleneckConservation(t *testing.T) {
	res := Run(symmetricConfig(4, 200))
	if len(res.Flows) != 4 {
		t.Fatalf("flows = %d, want 4", len(res.Flows))
	}
	for _, f := range res.Flows {
		ls := f.Link
		if ls.Offered == 0 {
			t.Fatalf("flow %d: no packets offered at bottleneck", f.ID)
		}
		if got := ls.Delivered + ls.RandomDrops + ls.QueueDrops; got > ls.Offered {
			t.Errorf("flow %d: delivered+drops = %d > offered %d", f.ID, got, ls.Offered)
		}
		if f.Result.Delivered == 0 {
			t.Errorf("flow %d: receiver saw nothing", f.ID)
		}
		if f.Rate <= 0 || f.Throughput <= 0 {
			t.Errorf("flow %d: rate %v throughput %v", f.ID, f.Rate, f.Throughput)
		}
	}
	if res.Fairness.Utilization <= 0.5 || res.Fairness.Utilization > 1.5 {
		t.Errorf("utilization = %v, want within (0.5, 1.5]", res.Fairness.Utilization)
	}
}

// TestJain exercises the index on known vectors.
func TestJain(t *testing.T) {
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal rates: jain = %v, want 1", got)
	}
	if got := Jain([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single hog: jain = %v, want 0.25", got)
	}
	if got := Jain(nil); got != 0 {
		t.Errorf("empty: jain = %v, want 0", got)
	}
	if got := Jain([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero: jain = %v, want 0", got)
	}
}

// TestDeterminism: same config, two runs, identical digests.
func TestDeterminism(t *testing.T) {
	cfg := symmetricConfig(6, 150)
	a := Run(cfg).Digest()
	b := Run(cfg).Digest()
	if a != b {
		t.Fatalf("same config digests differ:\n%s\n%s", a, b)
	}
}

// TestSymmetricFairness100 is the acceptance gate: 100 symmetric flows
// through one shared bottleneck must converge to a Jain index of at
// least 0.9, and a serial run must be byte-identical to runs executed
// concurrently from other goroutines (run this under -race).
func TestSymmetricFairness100(t *testing.T) {
	if testing.Short() {
		t.Skip("100-flow campaign is slow")
	}
	cfg := symmetricConfig(100, 400)
	serial := Run(cfg)
	if j := serial.Fairness.Jain; j < 0.9 {
		t.Errorf("jain = %v, want >= 0.9 (rates min %v max %v)",
			j, minOf(serial.Fairness.Rates), maxOf(serial.Fairness.Rates))
	}

	const workers = 3
	digests := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			digests[w] = Run(cfg).Digest()
		}(w)
	}
	wg.Wait()
	want := serial.Digest()
	for w, d := range digests {
		if d != want {
			t.Errorf("worker %d digest differs from serial run", w)
		}
	}
}

// TestFairnessConvergence starts 8 flows staggered (the late flows are
// maximally disadvantaged early on) and checks that the cumulative Jain
// index improves as the run progresses — AIMD's convergence-to-fairness
// property.
func TestFairnessConvergence(t *testing.T) {
	cfg := symmetricConfig(8, 600)
	for i := range cfg.Flows {
		cfg.Flows[i].Start = 5 * float64(i)
	}
	var eng sim.Engine
	m := New(&eng, cfg)
	m.Start()

	var early, late float64
	eng.RunUntil(60)
	early = Jain(m.SenderRates(60))
	eng.RunUntil(cfg.Duration)
	late = Jain(m.SenderRates(cfg.Duration))

	if late < 0.9 {
		t.Errorf("late jain = %v, want >= 0.9", late)
	}
	if late < early {
		t.Errorf("fairness regressed: early %v -> late %v", early, late)
	}
	res := m.Finish()
	if res.Duration != cfg.Duration {
		t.Errorf("duration = %v, want %v", res.Duration, cfg.Duration)
	}
}

// TestMixedVariants runs Reno, Tahoe and TFRC through one bottleneck
// and checks each makes progress with sane per-flow accounting.
func TestMixedVariants(t *testing.T) {
	cfg := Config{
		Flows: []FlowSpec{
			{Variant: "reno", RTT: 0.08, Wm: 64, MinRTO: 0.5},
			{Variant: "tahoe", RTT: 0.08, Wm: 64, MinRTO: 0.5},
			{Variant: "tfrc", RTT: 0.08},
		},
		Bottleneck: Bottleneck{Rate: 90, QueueCap: 20, OneWay: 0.04},
		Duration:   300,
		Seed:       7,
	}
	res := Run(cfg)
	for _, f := range res.Flows {
		if f.Rate <= 0 {
			t.Errorf("flow %d (%s): rate %v, want > 0", f.ID, f.Variant, f.Rate)
		}
		if f.Link.Offered == 0 {
			t.Errorf("flow %d (%s): no bottleneck traffic attributed", f.ID, f.Variant)
		}
	}
	if res.Flows[2].Variant != "tfrc" {
		t.Fatalf("variant = %q, want tfrc", res.Flows[2].Variant)
	}
}

// TestDisjointModeIndependence: in disjoint mode, adding a second flow
// must not change the first flow's trace — flows share the engine but
// nothing else.
func TestDisjointModeIndependence(t *testing.T) {
	spec := FlowSpec{LossRate: 0.02, Seed: 11}
	solo := Run(Config{Flows: []FlowSpec{spec}, Duration: 80})
	duo := Run(Config{Flows: []FlowSpec{spec, {LossRate: 0.05, Seed: 12}}, Duration: 80})

	a, b := solo.Flows[0], duo.Flows[0]
	if len(a.Result.Trace) != len(b.Result.Trace) {
		t.Fatalf("trace length changed: %d vs %d", len(a.Result.Trace), len(b.Result.Trace))
	}
	for i := range a.Result.Trace {
		if a.Result.Trace[i] != b.Result.Trace[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a.Result.Trace[i], b.Result.Trace[i])
		}
	}
	if a.Result.Stats != b.Result.Stats {
		t.Fatalf("stats changed: %+v vs %+v", a.Result.Stats, b.Result.Stats)
	}
}

// TestPerFlowLossModel: a flow with heavy private loss should see a
// higher measured p and lower throughput than a clean flow on the same
// shared bottleneck.
func TestPerFlowLossModel(t *testing.T) {
	cfg := Config{
		Flows: []FlowSpec{
			{RTT: 0.08, Wm: 64, MinRTO: 0.5},
			{RTT: 0.08, Wm: 64, MinRTO: 0.5, LossRate: 0.05},
		},
		Bottleneck: Bottleneck{Rate: 200, QueueCap: 40, OneWay: 0.04},
		Duration:   300,
		Seed:       3,
	}
	res := Run(cfg)
	clean, lossy := res.Flows[0], res.Flows[1]
	if lossy.P <= clean.P {
		t.Errorf("lossy p %v <= clean p %v", lossy.P, clean.P)
	}
	if lossy.Throughput >= clean.Throughput {
		t.Errorf("lossy throughput %v >= clean %v", lossy.Throughput, clean.Throughput)
	}
	if lossy.Predicted <= 0 {
		t.Errorf("lossy flow with p=%v has no model prediction", lossy.P)
	}
}

func minOf(v []float64) float64 {
	m := math.Inf(1)
	for _, x := range v {
		m = math.Min(m, x)
	}
	return m
}

func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		m = math.Max(m, x)
	}
	return m
}
