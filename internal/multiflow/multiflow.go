// Package multiflow runs N concurrent flows — mixed TCP Reno/Tahoe/
// NewReno variants and TFRC — on one simulation engine, either through
// one shared bottleneck link (the regime the mean-field analyses of
// interacting TCP flows predict) or over disjoint per-flow paths (the
// lockstep baseline, byte-identical to N independent single-flow runs).
//
// The shared-bottleneck wiring follows the demultiplexing inherent in
// the link layer: every Send carries its own delivery callback, so N
// senders share one netem.Link without any extra routing machinery, and
// the typed packet union's Flow field attributes per-flow link counters
// and lets a receiver discard packets that are not its own.
//
// Determinism: for a fixed Config (including seeds) a run is
// byte-reproducible — per-flow RNG streams are forked from the config
// seed by flow index, and all flows share the engine's single event
// order.
package multiflow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"pftk/internal/core"
	"pftk/internal/netem"
	"pftk/internal/pkt"
	"pftk/internal/reno"
	"pftk/internal/sim"
	"pftk/internal/tfrc"
	"pftk/internal/trace"
)

// FlowSpec describes one sender in a multi-flow simulation, in the same
// vocabulary as the single-flow SimConfig.
type FlowSpec struct {
	// Variant selects the flow's congestion control: "reno" (default),
	// "tahoe", "newreno", "linux", "irix" or "tfrc".
	Variant string
	// RTT is the flow's two-way propagation delay in seconds (default
	// 0.1). On a shared bottleneck the forward direction contributes
	// the bottleneck's one-way delay; the reverse link supplies the
	// remainder.
	RTT float64
	// LossRate is a per-flow random loss probability applied on the
	// flow's access path, before the shared bottleneck (Bernoulli, or
	// a timed burst when BurstDur > 0). Congestive loss at the shared
	// queue comes on top.
	LossRate float64
	// BurstDur is the loss-outage duration in seconds (0 = isolated
	// single-packet losses).
	BurstDur float64
	// Wm is the receiver's advertised window in packets (default 64).
	Wm int
	// MinRTO floors the retransmission timeout (default 1 s).
	MinRTO float64
	// AckEvery is the receiver's delayed-ACK ratio b (default 2).
	AckEvery int
	// Start delays the flow's first transmission (seconds from run
	// start).
	Start float64
	// Seed fixes the flow's private random streams; 0 derives one from
	// the run seed and the flow index.
	Seed uint64
}

// Bottleneck describes the shared link all flows traverse. A
// non-positive Rate disables sharing: each flow then runs over its own
// private path (disjoint mode).
type Bottleneck struct {
	// Rate is the transmission rate in packets per second.
	Rate float64
	// QueueCap is the drop-tail queue capacity in packets.
	QueueCap int
	// OneWay is the bottleneck's propagation delay in seconds.
	OneWay float64
	// RED manages the queue with Random Early Detection instead of
	// drop-tail.
	RED bool
}

// Config describes a multi-flow run.
type Config struct {
	Flows      []FlowSpec
	Bottleneck Bottleneck
	// Duration is the run length in simulated seconds (default 100).
	Duration float64
	// Seed derives per-flow seeds for flows that leave Seed zero, and
	// drives the shared RED controller when enabled.
	Seed uint64
}

// FlowResult is one flow's measured outcome.
type FlowResult struct {
	// ID is the flow's index in Config.Flows and its packet Flow stamp.
	ID int
	// Variant echoes the spec.
	Variant string
	// Result carries the TCP result (trace, sender stats, delivered);
	// zero-valued for TFRC flows, which have no sender-side trace.
	Result reno.Result
	// Rate is the flow's send rate in packets per second (originals +
	// retransmissions; paced sends for TFRC).
	Rate float64
	// Throughput is distinct packets delivered per second.
	Throughput float64
	// P is the measured loss-indication rate (loss events per packet
	// for TFRC).
	P float64
	// MeanRTT is the average of the flow's RTT samples (the TFRC
	// sender's smoothed estimate), falling back to the spec's
	// propagation RTT when no sample was taken.
	MeanRTT float64
	// Predicted is the 1/(RTT·sqrt(2bp/3)) TD-only model rate at the
	// measured P and MeanRTT; 0 when P is 0 (the model diverges).
	Predicted float64
	// Link counts the flow's packets at the shared bottleneck
	// (zero-valued in disjoint mode).
	Link netem.FlowStats
}

// Fairness aggregates the run: Jain's index and per-flow rates against
// the TD-only model predictions.
type Fairness struct {
	// Jain is Jain's fairness index over per-flow send rates: 1 for a
	// perfectly even split, 1/n when one flow takes everything.
	Jain float64
	// AggregateRate is the sum of per-flow send rates (pkts/s).
	AggregateRate float64
	// Utilization is AggregateRate over the bottleneck rate; 0 in
	// disjoint mode.
	Utilization float64
	// Rates are the per-flow send rates, indexed by flow ID.
	Rates []float64
	// Predicted are the per-flow TD-only model rates at each flow's
	// measured loss rate and RTT (0 where the flow saw no loss).
	Predicted []float64
}

// Result is the outcome of a multi-flow run.
type Result struct {
	// Duration is the simulated run length in seconds.
	Duration float64
	Flows    []FlowResult
	Fairness Fairness
}

func (s FlowSpec) normalize() FlowSpec {
	if s.Variant == "" {
		s.Variant = "reno"
	}
	if s.RTT <= 0 {
		s.RTT = 0.1
	}
	return s
}

func (s FlowSpec) renoVariant() reno.Variant {
	switch s.Variant {
	case "tahoe":
		return reno.Tahoe
	case "linux":
		return reno.Linux
	case "irix":
		return reno.Irix
	case "newreno":
		return reno.NewReno
	default:
		return reno.Reno
	}
}

// flowSeed derives flow i's seed when the spec leaves it zero, forking
// the run seed by flow index so adding a flow never perturbs the
// others' streams.
func flowSeed(runSeed uint64, i int, spec FlowSpec) uint64 {
	if spec.Seed != 0 {
		return spec.Seed
	}
	return sim.NewRNG(runSeed).Fork(fmt.Sprintf("flow.%d", i)).Uint64()
}

// lossModel builds the flow's private loss process from its own seed,
// with the same fork label the single-flow facade uses so disjoint-mode
// flows reproduce independent runs byte for byte.
func lossModel(spec FlowSpec, seed uint64) netem.LossModel {
	rng := sim.NewRNG(seed)
	switch {
	case spec.LossRate <= 0:
		return nil
	case spec.BurstDur > 0:
		return netem.NewTimedBurst(spec.LossRate, spec.BurstDur, rng.Fork("loss"))
	default:
		return netem.NewBernoulli(spec.LossRate, rng.Fork("loss"))
	}
}

// flow is the per-flow runtime state while the engine runs.
type flow struct {
	spec FlowSpec
	conn *reno.Connection // TCP flows
	tfrc *tfrc.Flow       // TFRC flows
}

// Engine is a multi-flow simulation bound to one sim.Engine. Build it
// with New, start it with Run (or drive the engine yourself between
// Start and Finish for mid-run probes).
type Engine struct {
	cfg   Config
	eng   *sim.Engine
	fwd   *netem.Link // shared bottleneck; nil in disjoint mode
	flows []flow
}

// New wires the flows onto eng according to cfg. The engine is ready to
// run but no flow has started.
func New(eng *sim.Engine, cfg Config) *Engine {
	if cfg.Duration <= 0 {
		cfg.Duration = 100
	}
	m := &Engine{cfg: cfg, eng: eng}
	shared := cfg.Bottleneck.Rate > 0
	var sharedPath reno.DataPath
	if shared {
		lcfg := netem.LinkConfig{
			Rate:     cfg.Bottleneck.Rate,
			QueueCap: cfg.Bottleneck.QueueCap,
			Delay:    netem.ConstantDelay(cfg.Bottleneck.OneWay),
		}
		if cfg.Bottleneck.RED {
			red := netem.NewREDLink(eng, lcfg, sim.NewRNG(cfg.Seed).Fork("red"))
			m.fwd = red.Link
			sharedPath = red
		} else {
			m.fwd = netem.NewLink(eng, lcfg)
			sharedPath = m.fwd
		}
		m.fwd.EnablePerFlowStats(len(cfg.Flows))
	}

	for i, spec := range cfg.Flows {
		spec = spec.normalize()
		seed := flowSeed(cfg.Seed, i, spec)
		loss := lossModel(spec, seed)
		if !shared {
			m.flows = append(m.flows, m.buildDisjoint(i, spec, loss))
			continue
		}
		m.flows = append(m.flows, m.buildShared(i, spec, loss, sharedPath))
	}
	return m
}

// buildDisjoint gives flow i a private symmetric path, replicating the
// single-flow facade's construction exactly — the basis of the lockstep
// oracle.
func (m *Engine) buildDisjoint(i int, spec FlowSpec, loss netem.LossModel) flow {
	cfg := reno.ConnConfig{
		Sender: reno.SenderConfig{
			Variant: spec.renoVariant(),
			RWnd:    spec.Wm,
			MinRTO:  spec.MinRTO,
			FlowID:  int32(i),
		},
		Receiver: reno.ReceiverConfig{AckEvery: spec.AckEvery, FlowID: int32(i)},
		Path:     netem.SymmetricPath(spec.RTT/2, loss),
	}
	if spec.Variant == "tfrc" {
		path := netem.NewPath(m.eng, cfg.Path)
		f := tfrc.NewFlow(m.eng, path, tfrc.Config{FlowID: int32(i)})
		return flow{spec: spec, tfrc: f}
	}
	return flow{spec: spec, conn: reno.NewConnection(m.eng, cfg)}
}

// buildShared attaches flow i to the shared bottleneck: the forward
// direction is the common link (behind the flow's private access-loss
// wrapper when configured), the reverse direction a private delay link
// carrying the remainder of the flow's propagation RTT.
func (m *Engine) buildShared(i int, spec FlowSpec, loss netem.LossModel, shared reno.DataPath) flow {
	revDelay := spec.RTT - m.cfg.Bottleneck.OneWay
	if revDelay < 0 {
		revDelay = 0
	}
	rev := netem.NewLink(m.eng, netem.LinkConfig{Delay: netem.ConstantDelay(revDelay)})
	forward := shared
	if loss != nil {
		forward = &lossyPath{eng: m.eng, next: shared, loss: loss}
	}
	if spec.Variant == "tfrc" {
		f := tfrc.NewFlowOnLinks(m.eng, forward, rev, tfrc.Config{FlowID: int32(i)})
		return flow{spec: spec, tfrc: f}
	}
	snd := reno.NewSender(m.eng, forward, reno.SenderConfig{
		Variant: spec.renoVariant(),
		RWnd:    spec.Wm,
		MinRTO:  spec.MinRTO,
		FlowID:  int32(i),
	})
	rcv := reno.NewReceiver(m.eng, rev, snd.OnAck, reno.ReceiverConfig{AckEvery: spec.AckEvery, FlowID: int32(i)})
	snd.SetDeliver(rcv.OnPacket)
	return flow{spec: spec, conn: &reno.Connection{Eng: m.eng, Sender: snd, Receiver: rcv}}
}

// lossyPath drops packets with the flow's private loss process before
// they reach the shared bottleneck — random loss on the access path, as
// distinct from congestive loss at the shared queue.
type lossyPath struct {
	eng  *sim.Engine
	next reno.DataPath
	loss netem.LossModel
}

func (l *lossyPath) Send(p pkt.Packet, deliver func(pkt.Packet)) {
	if l.loss.Drop(l.eng.Now()) {
		return
	}
	l.next.Send(p, deliver)
}

// Start launches every flow: flows with a zero Start offset begin
// immediately (in flow order), later ones on the engine's event queue.
func (m *Engine) Start() {
	for i := range m.flows {
		f := &m.flows[i]
		start := func() {
			if f.tfrc != nil {
				f.tfrc.Start()
			} else {
				f.conn.Sender.Start()
			}
		}
		if f.spec.Start > 0 {
			m.eng.Schedule(f.spec.Start, start)
		} else {
			start()
		}
	}
}

// SenderRates returns each flow's cumulative send count divided by
// elapsed, for mid-run fairness probes.
func (m *Engine) SenderRates(elapsed float64) []float64 {
	rates := make([]float64, len(m.flows))
	if elapsed <= 0 {
		return rates
	}
	for i := range m.flows {
		rates[i] = float64(m.sent(i)) / elapsed
	}
	return rates
}

func (m *Engine) sent(i int) int {
	if f := &m.flows[i]; f.tfrc != nil {
		return f.tfrc.Sent()
	}
	return m.flows[i].conn.Sender.Stats().TotalSent()
}

// Bottleneck returns the shared forward link, or nil in disjoint mode.
func (m *Engine) Bottleneck() *netem.Link { return m.fwd }

// Finish stops every flow and assembles the result at the engine's
// current time.
func (m *Engine) Finish() Result {
	now := m.eng.Now()
	res := Result{Duration: now}
	for i := range m.flows {
		f := &m.flows[i]
		fr := FlowResult{ID: i, Variant: f.spec.normalize().Variant}
		if f.tfrc != nil {
			f.tfrc.Stop()
			fr.Rate = float64(f.tfrc.Sent()) / now
			fr.Throughput = float64(f.tfrc.Received()) / now
			fr.P = f.tfrc.LossEventRate()
			fr.MeanRTT = f.spec.RTT
		} else {
			f.conn.Sender.Stop()
			st := f.conn.Sender.Stats()
			fr.Result = reno.Result{
				Duration:  now,
				Trace:     f.conn.Sender.Trace(),
				Stats:     st,
				Delivered: f.conn.Receiver.Delivered(),
			}
			fr.Rate = fr.Result.SendRate()
			fr.Throughput = fr.Result.Throughput()
			fr.P = fr.Result.LossIndicationRate()
			fr.MeanRTT = meanRTT(fr.Result.Trace, f.spec.RTT)
		}
		if fr.P > 0 && fr.MeanRTT > 0 {
			b := f.spec.AckEvery
			if b < 1 {
				b = 2
			}
			fr.Predicted = core.SendRateTDOnly(fr.P, fr.MeanRTT, float64(b))
		}
		if m.fwd != nil {
			fr.Link = m.fwd.FlowStats(i)
		}
		res.Flows = append(res.Flows, fr)
	}
	res.Fairness = fairness(res.Flows, m.cfg.Bottleneck.Rate)
	return res
}

// meanRTT averages the trace's Karn-filtered round samples, falling
// back to the propagation RTT when the flow never took a sample.
func meanRTT(tr trace.Trace, fallback float64) float64 {
	var sum float64
	var n int
	for _, r := range tr {
		if r.Kind == trace.KindRoundSample {
			sum += r.Val
			n++
		}
	}
	if n == 0 {
		return fallback
	}
	return sum / float64(n)
}

// fairness computes Jain's index and the aggregate statistics over the
// per-flow send rates.
func fairness(flows []FlowResult, bottleneckRate float64) Fairness {
	f := Fairness{
		Rates:     make([]float64, len(flows)),
		Predicted: make([]float64, len(flows)),
	}
	var sum, sq float64
	for i, fr := range flows {
		f.Rates[i] = fr.Rate
		f.Predicted[i] = fr.Predicted
		sum += fr.Rate
		sq += fr.Rate * fr.Rate
	}
	f.AggregateRate = sum
	if sq > 0 && len(flows) > 0 {
		f.Jain = sum * sum / (float64(len(flows)) * sq)
	}
	if bottleneckRate > 0 {
		f.Utilization = sum / bottleneckRate
	}
	return f
}

// Jain computes Jain's fairness index over a rate vector: 1 when all
// rates are equal, 1/n when a single flow takes everything, 0 for an
// empty or all-zero vector.
func Jain(rates []float64) float64 {
	var sum, sq float64
	for _, r := range rates {
		sum += r
		sq += r * r
	}
	if sq == 0 || len(rates) == 0 || math.IsNaN(sum) {
		return 0
	}
	return sum * sum / (float64(len(rates)) * sq)
}

// Digest hashes every observable output of the run — each flow's trace,
// counters, delivery count and bottleneck attribution, plus the
// aggregate fairness statistics. Two executions of the same Config must
// digest identically, whether they ran serially or on concurrent
// engines: the multi-flow determinism contract in one string.
func (r Result) Digest() string {
	h := sha256.New()
	_, _ = fmt.Fprintf(h, "dur %v flows %d\n", r.Duration, len(r.Flows))
	for _, f := range r.Flows {
		_, _ = fmt.Fprintf(h, "flow %d %s rate %v thr %v p %v rtt %v pred %v link %+v\n",
			f.ID, f.Variant, f.Rate, f.Throughput, f.P, f.MeanRTT, f.Predicted, f.Link)
		_, _ = fmt.Fprintf(h, "stats %+v delivered %d\n", f.Result.Stats, f.Result.Delivered)
		for i := range f.Result.Trace {
			_, _ = fmt.Fprintf(h, "%v\n", f.Result.Trace[i])
		}
	}
	_, _ = fmt.Fprintf(h, "fair %+v\n", r.Fairness)
	return hex.EncodeToString(h.Sum(nil))
}

// Run builds a fresh engine for cfg, runs it for cfg.Duration simulated
// seconds and returns the per-flow and aggregate results.
//
//pftk:deterministic
func Run(cfg Config) Result {
	var eng sim.Engine
	m := New(&eng, cfg)
	m.Start()
	eng.RunUntil(cfg.Duration)
	return m.Finish()
}

// SymmetricFlows returns n identical flow specs — the symmetric
// shared-bottleneck population of the fairness experiments.
func SymmetricFlows(n int, template FlowSpec) []FlowSpec {
	flows := make([]FlowSpec, n)
	for i := range flows {
		flows[i] = template
	}
	return flows
}
