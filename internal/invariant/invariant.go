// Package invariant provides cheap runtime assertions for the domain
// invariants of the PFTK numerics: loss probabilities in [0, 1], strictly
// positive durations, and finite rates. The model code is written to
// *clamp* out-of-domain inputs deterministically (see core.clampP), so the
// default build compiles every assertion to a no-op; building with
//
//	go build -tags pftkinvariants ./...
//
// turns the assertions into panics at the offending call site, which is
// the intended mode for soak tests and for applications embedding the
// model that would rather fail loudly than silently clamp.
//
// Two layers are exported:
//
//   - CheckFinite, CheckPositive, CheckNonNegative, CheckProbability:
//     always-compiled predicates returning a descriptive error. Use these
//     when the caller wants to reject bad input itself (and in tests,
//     which must not depend on the build tag).
//   - Finite, Positive, NonNegative, Probability: assertion wrappers that
//     panic on violation when built with the pftkinvariants tag and cost
//     nothing otherwise (Enabled is a compile-time constant, so the
//     no-op bodies are eliminated entirely).
//
// The panic message carries the "invariant: " package prefix, following
// the repo-wide panic-style convention enforced by cmd/pftklint.
package invariant

import (
	"fmt"
	"math"
)

// CheckFinite returns an error unless v is a finite number (not NaN, not
// ±Inf). name labels the quantity in the error message.
func CheckFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("invariant: %s = %v must be finite", name, v)
	}
	return nil
}

// CheckPositive returns an error unless v is finite and strictly positive.
func CheckPositive(name string, v float64) error {
	if err := CheckFinite(name, v); err != nil {
		return err
	}
	if v <= 0 {
		return fmt.Errorf("invariant: %s = %v must be > 0", name, v)
	}
	return nil
}

// CheckNonNegative returns an error unless v is finite and >= 0.
func CheckNonNegative(name string, v float64) error {
	if err := CheckFinite(name, v); err != nil {
		return err
	}
	if v < 0 {
		return fmt.Errorf("invariant: %s = %v must be >= 0", name, v)
	}
	return nil
}

// CheckProbability returns an error unless v is a valid probability:
// finite and within [0, 1].
func CheckProbability(name string, v float64) error {
	if err := CheckFinite(name, v); err != nil {
		return err
	}
	if v < 0 || v > 1 {
		return fmt.Errorf("invariant: %s = %v must be in [0, 1]", name, v)
	}
	return nil
}
