//go:build !pftkinvariants

package invariant

// Enabled reports whether assertions are compiled in. It is a constant so
// that, in the default build, callers guarded by it are eliminated.
const Enabled = false

// Finite is a no-op in the default build; see the pftkinvariants tag.
func Finite(string, float64) {}

// Positive is a no-op in the default build; see the pftkinvariants tag.
func Positive(string, float64) {}

// NonNegative is a no-op in the default build; see the pftkinvariants tag.
func NonNegative(string, float64) {}

// Probability is a no-op in the default build; see the pftkinvariants tag.
func Probability(string, float64) {}
