//go:build pftkinvariants

package invariant

import (
	"math"
	"strings"
	"testing"
)

// These tests only build with the pftkinvariants tag, where the assertion
// wrappers must actually panic:
//
//	go test -tags pftkinvariants ./internal/invariant

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: expected panic, got none", name)
			return
		}
		if s, ok := r.(string); !ok || !strings.HasPrefix(s, "invariant: ") {
			t.Errorf("%s: panic %v lacks invariant prefix", name, r)
		}
	}()
	fn()
}

func TestEnabledAssertionsPanic(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the pftkinvariants tag")
	}
	mustPanic(t, "Finite(NaN)", func() { Finite("x", math.NaN()) })
	mustPanic(t, "Positive(0)", func() { Positive("x", 0) })
	mustPanic(t, "NonNegative(-1)", func() { NonNegative("x", -1) })
	mustPanic(t, "Probability(2)", func() { Probability("x", 2) })
}

func TestEnabledAssertionsPass(t *testing.T) {
	Finite("x", 1)
	Positive("x", 0.2)
	NonNegative("x", 0)
	Probability("x", 1)
}
