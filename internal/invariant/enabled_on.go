//go:build pftkinvariants

package invariant

// Enabled reports whether assertions are compiled in. It is a constant so
// that, in the default build, callers guarded by it are eliminated.
const Enabled = true

// Finite panics unless v is a finite number.
func Finite(name string, v float64) {
	if err := CheckFinite(name, v); err != nil {
		panic(err.Error())
	}
}

// Positive panics unless v is finite and strictly positive.
func Positive(name string, v float64) {
	if err := CheckPositive(name, v); err != nil {
		panic(err.Error())
	}
}

// NonNegative panics unless v is finite and >= 0.
func NonNegative(name string, v float64) {
	if err := CheckNonNegative(name, v); err != nil {
		panic(err.Error())
	}
}

// Probability panics unless v is finite and within [0, 1].
func Probability(name string, v float64) {
	if err := CheckProbability(name, v); err != nil {
		panic(err.Error())
	}
}
