package invariant

import (
	"math"
	"strings"
	"testing"
)

func TestCheckFinite(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 1e-300, 1e300, math.SmallestNonzeroFloat64} {
		if err := CheckFinite("x", v); err != nil {
			t.Errorf("CheckFinite(%g) = %v, want nil", v, err)
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := CheckFinite("x", v)
		if err == nil {
			t.Errorf("CheckFinite(%g) = nil, want error", v)
		} else if !strings.HasPrefix(err.Error(), "invariant: ") {
			t.Errorf("CheckFinite(%g) error %q lacks package prefix", v, err)
		}
	}
}

func TestCheckPositive(t *testing.T) {
	for _, v := range []float64{1e-300, 0.5, 1, 1e12} {
		if err := CheckPositive("rtt", v); err != nil {
			t.Errorf("CheckPositive(%g) = %v, want nil", v, err)
		}
	}
	for _, v := range []float64{0, -1, -1e-300, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if CheckPositive("rtt", v) == nil {
			t.Errorf("CheckPositive(%g) = nil, want error", v)
		}
	}
}

func TestCheckNonNegative(t *testing.T) {
	for _, v := range []float64{0, 1e-300, 7} {
		if err := CheckNonNegative("n", v); err != nil {
			t.Errorf("CheckNonNegative(%g) = %v, want nil", v, err)
		}
	}
	for _, v := range []float64{-1e-300, -3, math.NaN(), math.Inf(1)} {
		if CheckNonNegative("n", v) == nil {
			t.Errorf("CheckNonNegative(%g) = nil, want error", v)
		}
	}
}

func TestCheckProbability(t *testing.T) {
	for _, v := range []float64{0, 1, 0.5, 1e-300} {
		if err := CheckProbability("p", v); err != nil {
			t.Errorf("CheckProbability(%g) = %v, want nil", v, err)
		}
	}
	for _, v := range []float64{-1e-300, 1.0000001, 2, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if CheckProbability("p", v) == nil {
			t.Errorf("CheckProbability(%g) = nil, want error", v)
		}
	}
}

// TestErrorsNameQuantity makes sure the failing quantity's name survives
// into the message, since that is what makes a panic at a model entry
// point actionable.
func TestErrorsNameQuantity(t *testing.T) {
	err := CheckProbability("loss rate p", 2)
	if err == nil || !strings.Contains(err.Error(), "loss rate p") {
		t.Fatalf("error %v does not name the quantity", err)
	}
}
