// Package workpool provides the bounded-queue worker pool shared by the
// pftkd serving daemon and the parallel experiment campaigns: a fixed
// number of goroutines drain a bounded job queue, submission is
// non-blocking (the caller decides what "queue full" means — pftkd turns
// it into HTTP 429, campaigns block and retry), and Close drains every
// accepted job before returning, which is what makes graceful daemon
// shutdown and deterministic campaign teardown the same code path.
package workpool

import (
	"sync"
	"sync/atomic"

	"pftk/internal/tracez"
)

// Pool runs submitted jobs on a fixed set of worker goroutines fed by a
// bounded queue. Create one with New; the zero value is not usable.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup // live workers

	// tracer, when set, wraps every accepted job with a pair of spans:
	// "workpool.wait" (submission to worker pickup, backdated so the
	// span covers the time in the queue) and "workpool.service" (the
	// job body).
	tracer atomic.Pointer[tracez.Tracer]

	mu sync.RWMutex // guards closed vs. in-flight submits
	//pftk:guardedby mu
	closed  bool
	pending sync.WaitGroup // accepted but unfinished jobs
}

// SetTracer installs (or, with nil, removes) the tracer recording
// per-job queue-wait and service spans. Safe to call concurrently with
// submissions; jobs already queued keep the tracer they were wrapped
// with.
func (p *Pool) SetTracer(tr *tracez.Tracer) { p.tracer.Store(tr) }

// instrument wraps job with the queue-wait and service spans when a
// tracer is installed. With no tracer the job is returned unchanged, so
// untraced pools pay one atomic load per submission.
func (p *Pool) instrument(job func()) func() {
	tr := p.tracer.Load()
	if tr == nil {
		return job
	}
	submitted := tr.NowSeconds()
	return func() {
		wait := tr.StartRootAt("workpool.wait", submitted)
		wait.End()
		sp := tr.StartRoot("workpool.service")
		defer sp.End()
		job()
	}
}

// New returns a pool of the given number of workers behind a queue
// holding up to depth jobs beyond the ones being executed. Both are
// floored at 1.
func New(workers, depth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &Pool{jobs: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		job()
		p.pending.Done()
	}
}

// TrySubmit offers job to the queue without blocking. It returns false
// when the queue is full or the pool is closed — the admission-control
// signal behind pftkd's 429 responses.
func (p *Pool) TrySubmit(job func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	// The pending count is raised before the send: a worker may run the
	// job (and call Done) before the send statement even returns.
	p.pending.Add(1)
	select {
	case p.jobs <- p.instrument(job):
		return true
	default:
		p.pending.Done()
		return false
	}
}

// Submit enqueues job, blocking while the queue is full. It returns
// false only when the pool is already closed. Campaign runners use it to
// apply backpressure instead of dropping work.
//
// The blocking send happens under the read lock, so Close (which takes
// the write lock) cannot close the channel underneath it; workers keep
// draining, so the send always completes.
func (p *Pool) Submit(job func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.pending.Add(1)
	p.jobs <- p.instrument(job)
	return true
}

// QueueDepth returns the number of jobs waiting in the queue (not
// counting jobs already picked up by workers).
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// Wait blocks until every job accepted so far has finished. The pool
// stays open; campaigns use it as a barrier between submission rounds.
func (p *Pool) Wait() { p.pending.Wait() }

// Close stops accepting new jobs, drains every job already accepted, and
// waits for the workers to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
