package workpool

import (
	"sync"
	"sync/atomic"
	"testing"

	"pftk/internal/tracez"
)

func TestRunsEveryJob(t *testing.T) {
	p := New(4, 8)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if !p.Submit(func() { n.Add(1) }) {
			t.Fatal("Submit refused on an open pool")
		}
	}
	p.Close()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d jobs, want 100", got)
	}
}

func TestTrySubmitRefusesWhenFull(t *testing.T) {
	p := New(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker...
	if !p.TrySubmit(func() { close(started); <-release }) {
		t.Fatal("first TrySubmit refused")
	}
	<-started
	// ...fill the single queue slot...
	if !p.TrySubmit(func() {}) {
		t.Fatal("second TrySubmit refused with a free queue slot")
	}
	// ...and the next offer must bounce.
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted with a full queue")
	}
	close(release)
	p.Close()
}

func TestCloseDrainsAcceptedJobs(t *testing.T) {
	p := New(2, 64)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		if !p.Submit(func() { n.Add(1) }) {
			t.Fatal("Submit refused")
		}
	}
	p.Close()
	if got := n.Load(); got != 50 {
		t.Fatalf("Close returned with %d/50 jobs done", got)
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted after Close")
	}
	if p.Submit(func() {}) {
		t.Fatal("Submit accepted after Close")
	}
	p.Close() // second Close is a no-op
}

func TestWaitIsABarrier(t *testing.T) {
	p := New(3, 16)
	defer p.Close()
	var n atomic.Int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			if !p.Submit(func() { n.Add(1) }) {
				t.Fatal("Submit refused")
			}
		}
		p.Wait()
		if got, want := n.Load(), int64((round+1)*20); got != want {
			t.Fatalf("after round %d: %d jobs done, want %d", round, got, want)
		}
	}
}

func TestConcurrentSubmitAndClose(t *testing.T) {
	// Hammer Submit/TrySubmit from many goroutines while Close runs;
	// under -race this guards the closed-channel handshake.
	p := New(4, 4)
	var accepted, ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if p.TrySubmit(func() { ran.Add(1) }) {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if accepted.Load() != ran.Load() {
		t.Fatalf("accepted %d jobs but ran %d", accepted.Load(), ran.Load())
	}
}

// TestTracerRecordsWaitAndServiceSpans proves every accepted job gets a
// queue-wait span (backdated to submission) and a service span, and
// that an untraced pool records nothing.
func TestTracerRecordsWaitAndServiceSpans(t *testing.T) {
	tr := tracez.New(tracez.Options{})
	p := New(2, 8)
	p.SetTracer(tr)
	const jobs = 10
	for i := 0; i < jobs; i++ {
		if !p.Submit(func() {}) {
			t.Fatal("Submit refused on an open pool")
		}
	}
	p.Close()
	var waits, services int
	for _, rec := range tr.Snapshot() {
		switch rec.Name {
		case "workpool.wait":
			waits++
		case "workpool.service":
			services++
		default:
			t.Errorf("unexpected span %q", rec.Name)
		}
	}
	if waits != jobs || services != jobs {
		t.Fatalf("recorded %d wait / %d service spans, want %d each", waits, services, jobs)
	}

	// Detaching the tracer stops recording.
	p2 := New(1, 1)
	p2.SetTracer(tr)
	p2.SetTracer(nil)
	if !p2.Submit(func() {}) {
		t.Fatal("Submit refused")
	}
	p2.Close()
	if got := tr.Total(); got != 2*jobs {
		t.Fatalf("untraced pool committed spans: total %d, want %d", got, 2*jobs)
	}
}
