package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func feq(a, b, eps float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= eps
}

func TestRunningBasics(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Var()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Error("empty Running should report NaN everywhere")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if !feq(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", r.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if !feq(r.Var(), 32.0/7, 1e-12) {
		t.Errorf("Var = %g, want %g", r.Var(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", r.Min(), r.Max())
	}
	if !feq(r.Sum(), 40, 1e-12) {
		t.Errorf("Sum = %g, want 40", r.Sum())
	}
}

func TestRunningSingleObservation(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Mean() != 3.5 || r.Min() != 3.5 || r.Max() != 3.5 {
		t.Error("single observation stats wrong")
	}
	if !math.IsNaN(r.Var()) {
		t.Error("variance of one sample must be NaN")
	}
}

func TestMeanStd(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !feq(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Error("Mean wrong")
	}
	if !math.IsNaN(Std([]float64{1})) {
		t.Error("Std of one sample should be NaN")
	}
	if !feq(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7), 1e-12) {
		t.Error("Std wrong")
	}
}

func TestQuickRunningMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		scale := math.Max(1, math.Abs(r.Mean()))
		return feq(r.Mean(), Mean(xs), 1e-6*scale) &&
			feq(r.Std(), Std(xs), 1e-6*math.Max(1, r.Std()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Correlation(xs, xs); !feq(got, 1, 1e-12) {
		t.Errorf("self correlation = %g, want 1", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Correlation(xs, neg); !feq(got, -1, 1e-12) {
		t.Errorf("anti correlation = %g, want -1", got)
	}
	if got := Correlation(xs, []float64{2, 2, 2, 2, 2}); !math.IsNaN(got) {
		t.Errorf("constant series should give NaN, got %g", got)
	}
	if got := Correlation(xs, xs[:3]); !math.IsNaN(got) {
		t.Errorf("length mismatch should give NaN, got %g", got)
	}
	if got := Correlation(nil, nil); !math.IsNaN(got) {
		t.Errorf("empty should give NaN, got %g", got)
	}
}

func TestCorrelationInvariantToAffineTransform(t *testing.T) {
	xs := []float64{1, 4, 2, 8, 5, 7}
	ys := []float64{2, 3, 1, 9, 4, 6}
	base := Correlation(xs, ys)
	scaled := make([]float64, len(xs))
	for i, x := range xs {
		scaled[i] = 3*x + 10
	}
	if got := Correlation(scaled, ys); !feq(got, base, 1e-12) {
		t.Errorf("correlation changed under affine transform: %g vs %g", got, base)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %g, want 5", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("median = %g, want 3", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); !feq(got, 1.5, 1e-12) {
		t.Errorf("interpolated median = %g, want 1.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("invalid quantile inputs should give NaN")
	}
	// input must not be mutated
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestAverageError(t *testing.T) {
	pred := []float64{110, 90, 200}
	obs := []float64{100, 100, 100}
	// |10|/100 + |10|/100 + |100|/100 = 1.2; /3 = 0.4
	if got := AverageError(pred, obs); !feq(got, 0.4, 1e-12) {
		t.Errorf("AverageError = %g, want 0.4", got)
	}
	// zero observations are skipped
	if got := AverageError([]float64{5, 110}, []float64{0, 100}); !feq(got, 0.1, 1e-12) {
		t.Errorf("AverageError with zero obs = %g, want 0.1", got)
	}
	if got := AverageError([]float64{1}, []float64{0}); !math.IsNaN(got) {
		t.Errorf("all-skipped should give NaN, got %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	AverageError([]float64{1}, []float64{1, 2})
}

func TestAverageErrorPerfectPrediction(t *testing.T) {
	obs := []float64{10, 20, 30}
	if got := AverageError(obs, obs); got != 0 {
		t.Errorf("perfect prediction error = %g, want 0", got)
	}
}

func TestGeometricMLE(t *testing.T) {
	if !math.IsNaN(GeometricMLE(nil)) {
		t.Error("empty input should give NaN")
	}
	if got := GeometricMLE([]int{1, 1, 1}); !feq(got, 1, 1e-12) {
		t.Errorf("all-ones should give p=1, got %g", got)
	}
	if got := GeometricMLE([]int{2, 2}); !feq(got, 0.5, 1e-12) {
		t.Errorf("mean 2 should give p=0.5, got %g", got)
	}
	if !math.IsNaN(GeometricMLE([]int{0, 0})) {
		t.Error("mean below 1 should give NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42, math.NaN()} {
		h.Add(x)
	}
	if h.N() != 8 {
		t.Errorf("N = %d, want 8 (NaN ignored)", h.N())
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Underflow, h.Overflow)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range want {
		if h.Bins[i] != c {
			t.Errorf("bin %d = %d, want %d", i, h.Bins[i], c)
		}
	}
	if got := h.BinCenter(0); !feq(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %g, want 1", got)
	}
	if out := h.Render(20); out == "" {
		t.Error("Render returned empty string")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(7, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	// A value just below Hi whose bin index could round to len(Bins).
	h.Add(math.Nextafter(1, 0))
	if h.Bins[2] != 1 || h.Overflow != 0 {
		t.Errorf("top-edge value misplaced: bins=%v overflow=%d", h.Bins, h.Overflow)
	}
}

func TestBootstrapCoversTrueMean(t *testing.T) {
	// Samples from a known distribution: the CI should bracket the
	// sample mean and be reasonably tight.
	xs := make([]float64, 200)
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / (1 << 53)
	}
	for i := range xs {
		xs[i] = 10 + 4*(next()-0.5)
	}
	m := Mean(xs)
	lo, hi := Bootstrap(xs, Mean, 500, 0.05, next)
	if !(lo < m && m < hi) {
		t.Errorf("CI [%g, %g] does not bracket sample mean %g", lo, hi, m)
	}
	if hi-lo > 1.0 {
		t.Errorf("CI width %g too wide for n=200 uniform", hi-lo)
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	next := func() float64 { return 0.5 }
	if lo, hi := Bootstrap(nil, Mean, 100, 0.05, next); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty input should give NaNs")
	}
	if lo, hi := Bootstrap([]float64{5}, Mean, 0, 0.05, next); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("zero rounds should give NaNs")
	}
	// Constant data: CI collapses to the point.
	lo, hi := Bootstrap([]float64{3, 3, 3}, Mean, 50, 0.05, next)
	if lo != 3 || hi != 3 {
		t.Errorf("constant CI = [%g, %g]", lo, hi)
	}
	// Out-of-range alpha falls back to 0.05 without panicking.
	lo, hi = Bootstrap([]float64{1, 2, 3}, Mean, 50, -1, next)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Error("alpha fallback failed")
	}
}
