package stats

import (
	"math"
	"testing"

	"pftk/internal/invariant"
)

// NaN/Inf edge cases: the toolkit must handle non-finite observations
// deterministically in the default build (poison to NaN, never a random
// or order-dependent value), while the invariant layer's checks reject
// the same inputs for callers that want to fail fast.

func TestRunningNaNPoisonsDeterministically(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(math.NaN())
	r.Add(2)
	if !math.IsNaN(r.Mean()) {
		t.Errorf("Mean after NaN = %g, want NaN", r.Mean())
	}
	if !math.IsNaN(r.Var()) {
		t.Errorf("Var after NaN = %g, want NaN", r.Var())
	}
	if !math.IsNaN(r.Std()) {
		t.Errorf("Std after NaN = %g, want NaN", r.Std())
	}
	if r.N() != 3 {
		t.Errorf("N = %d, want 3 (counting is exact even when poisoned)", r.N())
	}
	// The same sequence must poison identically every time.
	var r2 Running
	r2.Add(1)
	r2.Add(math.NaN())
	r2.Add(2)
	if !math.IsNaN(r2.Mean()) || r2.N() != r.N() {
		t.Error("identical NaN sequence produced different state")
	}
	// And the invariant layer rejects the observation up front.
	if invariant.CheckFinite("sample", math.NaN()) == nil {
		t.Error("invariant.CheckFinite must reject NaN samples")
	}
}

func TestRunningInfPoisons(t *testing.T) {
	var r Running
	r.Add(math.Inf(1))
	if !math.IsInf(r.Mean(), 1) {
		t.Errorf("Mean of {+Inf} = %g, want +Inf", r.Mean())
	}
	r.Add(1)
	// Welford's update subtracts Inf from Inf: NaN, deterministically.
	if !math.IsNaN(r.Mean()) {
		t.Errorf("Mean after Inf then finite = %g, want NaN", r.Mean())
	}
	if invariant.CheckFinite("sample", math.Inf(1)) == nil {
		t.Error("invariant.CheckFinite must reject +Inf samples")
	}
}

func TestMeanStdNaN(t *testing.T) {
	xs := []float64{1, math.NaN(), 3}
	if !math.IsNaN(Mean(xs)) {
		t.Errorf("Mean with NaN = %g, want NaN", Mean(xs))
	}
	if !math.IsNaN(Std(xs)) {
		t.Errorf("Std with NaN = %g, want NaN", Std(xs))
	}
}

func TestCorrelationNonFinite(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
	}{
		{"NaN in xs", []float64{1, math.NaN(), 3}, []float64{1, 2, 3}},
		{"NaN in ys", []float64{1, 2, 3}, []float64{1, math.NaN(), 3}},
		{"Inf in xs", []float64{1, math.Inf(1), 3}, []float64{1, 2, 3}},
		{"-Inf in ys", []float64{1, 2, 3}, []float64{math.Inf(-1), 2, 3}},
	}
	for _, c := range cases {
		if rho := Correlation(c.xs, c.ys); !math.IsNaN(rho) {
			t.Errorf("%s: Correlation = %g, want NaN", c.name, rho)
		}
	}
}

func TestQuantileNaNSamples(t *testing.T) {
	// Any NaN sample yields NaN regardless of position: the result must
	// not depend on where sorting happens to place the NaN.
	for _, xs := range [][]float64{
		{math.NaN(), 1, 2, 3},
		{1, 2, math.NaN(), 3},
		{1, 2, 3, math.NaN()},
	} {
		for _, q := range []float64{0, 0.5, 1} {
			if v := Quantile(xs, q); !math.IsNaN(v) {
				t.Errorf("Quantile(%v, %g) = %g, want NaN", xs, q, v)
			}
		}
	}
	if !math.IsNaN(Median([]float64{math.NaN()})) {
		t.Error("Median of {NaN} must be NaN")
	}
}

func TestQuantileInfSamples(t *testing.T) {
	// Infinities sort deterministically, so they are legal samples.
	xs := []float64{math.Inf(-1), 0, math.Inf(1)}
	if v := Quantile(xs, 0.5); v != 0 {
		t.Errorf("median of {-Inf, 0, +Inf} = %g, want 0", v)
	}
	if v := Quantile(xs, 0); !math.IsInf(v, -1) {
		t.Errorf("q=0 of {-Inf, 0, +Inf} = %g, want -Inf", v)
	}
	if v := Quantile(xs, 1); !math.IsInf(v, 1) {
		t.Errorf("q=1 of {-Inf, 0, +Inf} = %g, want +Inf", v)
	}
}

func TestAverageErrorNaNPairsSkipped(t *testing.T) {
	// NaN pairs are skipped like zero-observed pairs; only the clean
	// pair contributes.
	pred := []float64{math.NaN(), 2, 110}
	obs := []float64{5, math.NaN(), 100}
	got := AverageError(pred, obs)
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("AverageError = %g, want 0.1", got)
	}
	// All pairs unusable: NaN, deterministically.
	if !math.IsNaN(AverageError([]float64{math.NaN()}, []float64{1})) {
		t.Error("all-NaN AverageError must be NaN")
	}
}
