// Package stats provides the small statistical toolkit used by the trace
// analysis programs and the experiment harness: running moments,
// correlation, quantiles, histograms and the average-error metric from
// Section III of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"

	"pftk/internal/invariant"
)

// Running accumulates count, mean and variance in one pass using
// Welford's algorithm. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation. A NaN or ±Inf observation poisons
// the accumulator deterministically (Mean, Var and Std become NaN and
// stay NaN); under the pftkinvariants build tag it panics instead.
func (r *Running) Add(x float64) {
	if invariant.Enabled {
		invariant.Finite("stats: sample", x)
	}
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or NaN if empty.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Var returns the unbiased sample variance, or NaN with fewer than two
// observations.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation, or NaN if empty.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation, or NaN if empty.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Sum returns n·mean.
func (r *Running) Sum() float64 { return float64(r.n) * r.mean }

// Mean returns the mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Correlation returns the Pearson coefficient of correlation between xs
// and ys — the statistic the paper computes between per-round RTT samples
// and the number of packets in flight (Section IV). It returns NaN when
// the slices differ in length, are shorter than 2, or either is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for an empty
// slice, out-of-range q, or when any sample is NaN — sorting a slice
// containing NaN would otherwise make the result depend on the input
// order, the kind of nondeterminism that corrupts regenerated tables
// silently. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return math.NaN()
		}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// AverageError computes the paper's model-accuracy metric from
// Section III:
//
//	Σ |predicted - observed| / observed  /  #observations
//
// Pairs whose observed value is zero are skipped (the metric is undefined
// there); if no usable pairs remain it returns NaN. It panics if the
// slices differ in length.
func AverageError(predicted, observed []float64) float64 {
	if len(predicted) != len(observed) {
		panic(fmt.Sprintf("stats: AverageError length mismatch %d != %d", len(predicted), len(observed)))
	}
	sum, n := 0.0, 0
	for i := range observed {
		if observed[i] == 0 || math.IsNaN(observed[i]) || math.IsNaN(predicted[i]) {
			continue
		}
		sum += math.Abs(predicted[i]-observed[i]) / observed[i]
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Bootstrap computes a percentile bootstrap confidence interval for a
// statistic over xs: it resamples xs with replacement rounds times,
// applies stat to each resample, and returns the (alpha/2, 1-alpha/2)
// quantiles of the resulting distribution. The rng function must return
// uniform values in [0,1) (pass a seeded generator for reproducible
// reports). Returns NaNs for empty input.
func Bootstrap(xs []float64, stat func([]float64) float64, rounds int, alpha float64, rng func() float64) (lo, hi float64) {
	if len(xs) == 0 || rounds <= 0 {
		return math.NaN(), math.NaN()
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	estimates := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range resample {
			resample[i] = xs[int(rng()*float64(len(xs)))%len(xs)]
		}
		estimates[r] = stat(resample)
	}
	return Quantile(estimates, alpha/2), Quantile(estimates, 1-alpha/2)
}

// GeometricMLE fits the success parameter of a geometric distribution
// (support 1, 2, ...) to samples by maximum likelihood: p̂ = 1/mean. The
// paper models the number of timeouts in a timeout sequence as geometric;
// this is the estimator the analysis uses to report it. Returns NaN for
// empty input or a mean below 1.
func GeometricMLE(samples []int) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range samples {
		s += float64(x)
	}
	m := s / float64(len(samples))
	if m < 1 {
		return math.NaN()
	}
	return 1 / m
}
