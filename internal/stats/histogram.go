package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width bin histogram over [Lo, Hi). Observations
// outside the range are counted in the under/overflow bins.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int
	Underflow int
	Overflow  int
	n         int
}

// NewHistogram creates a histogram with nbins equal-width bins over
// [lo, hi). It panics on a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: invalid histogram range [%g, %g)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case math.IsNaN(x):
		h.n-- // NaNs are ignored entirely
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i == len(h.Bins) { // guard against rounding at the top edge
			i--
		}
		h.Bins[i]++
	}
}

// N returns the number of recorded (non-NaN) observations, including
// under/overflow.
func (h *Histogram) N() int { return h.n }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Render draws an ASCII bar chart of the histogram, width characters wide
// at the tallest bin — used by the experiment harness to visualize loss
// and RTT distributions in terminal reports.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := 1
	for _, c := range h.Bins {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Bins {
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(&b, "%10.4g | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	if h.Underflow > 0 {
		fmt.Fprintf(&b, "%10s | %d\n", "<lo", h.Underflow)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&b, "%10s | %d\n", ">=hi", h.Overflow)
	}
	return b.String()
}
