package hosts

import (
	"math"
	"testing"

	"pftk/internal/analysis"
	"pftk/internal/reno"
)

func TestCalibrateOptionsNormalize(t *testing.T) {
	o := CalibrateOptions{}.normalize()
	if o.Iterations != 5 || o.ProbeDuration != 900 {
		t.Errorf("defaults: %+v", o)
	}
	e := CalibrateOptions{Iterations: 2, ProbeDuration: 100}.normalize()
	if e.Iterations != 2 || e.ProbeDuration != 100 {
		t.Errorf("explicit values overridden: %+v", e)
	}
}

func TestCalibrateImprovesLossRateFit(t *testing.T) {
	pair, _ := PairByName("void-sutton")
	opts := CalibrateOptions{Iterations: 4, ProbeDuration: 600}
	cal := pair.Calibrate(opts)

	measure := func(p Pair) float64 {
		res := reno.RunConnection(p.ConnConfig(0xD1CE), 900)
		events := analysis.GroundTruthLossEvents(res.Trace)
		return analysis.Summarize(res.Trace, events).P
	}
	target := pair.P()
	errCal := math.Abs(measure(cal) - target)
	// The calibrated pair must land close to the published rate.
	if errCal/target > 0.5 {
		t.Errorf("calibrated measurement off by %.0f%% of target %.4f", 100*errCal/target, target)
	}
	// The burst-duration knob must have been engaged.
	if cal.BurstDurOverride <= 0 {
		t.Error("calibration left BurstDurOverride unset")
	}
}

func TestCalibrateMixKnobDirection(t *testing.T) {
	// A TD-rich target pair should end with a shorter outage than a
	// timeout-dominated one of similar RTT.
	tdRich, _ := PairByName("manic-sutton")   // 60% TD
	toHeavy, _ := PairByName("manic-mafalda") // ~0% TD
	opts := CalibrateOptions{Iterations: 4, ProbeDuration: 600}
	calTD := tdRich.Calibrate(opts)
	calTO := toHeavy.Calibrate(opts)
	if calTD.BurstDur() >= calTO.BurstDur() {
		t.Errorf("TD-rich pair should have shorter outages: %.3f vs %.3f",
			calTD.BurstDur(), calTO.BurstDur())
	}
}

func TestCalibrateZeroTargetNoop(t *testing.T) {
	p := Pair{Sender: "a", Receiver: "b", RTT: 0.2, T0: 1, Wm: 8}
	if got := p.Calibrate(CalibrateOptions{}); got != p {
		t.Error("zero-loss pair should calibrate to itself")
	}
}

func TestCalibratedPairMemoizes(t *testing.T) {
	pair, _ := PairByName("babel-tove")
	opts := CalibrateOptions{Iterations: 1, ProbeDuration: 120}
	a := CalibratedPair(pair, opts)
	b := CalibratedPair(pair, opts)
	if a != b {
		t.Error("memoized calibration returned different results")
	}
	if a.DropRate <= 0 {
		t.Error("calibrated drop rate must be positive")
	}
}

func TestTDFractionAndBurstDur(t *testing.T) {
	p, _ := PairByName("manic-sutton")
	if f := p.TDFraction(); math.Abs(f-988.0/1638) > 1e-9 {
		t.Errorf("TD fraction = %g", f)
	}
	var zero Pair
	if zero.TDFraction() != 0 {
		t.Error("zero pair TD fraction should be 0")
	}
	// Heuristic duration: TD-rich pairs get sub-RTT outages.
	if d := p.BurstDur(); d > p.RTT {
		t.Errorf("TD-rich outage %g should be below one RTT %g", d, p.RTT)
	}
	// Override wins.
	p.BurstDurOverride = 1.23
	if p.BurstDur() != 1.23 {
		t.Error("override ignored")
	}
}

func TestSenderVariantFallback(t *testing.T) {
	p := Pair{Sender: "unknown-host", Receiver: "tove"}
	if v := p.SenderVariant(); v.Name != "reno" {
		t.Errorf("unknown sender variant = %s, want reno fallback", v.Name)
	}
	irix := Pair{Sender: "manic", Receiver: "tove"}
	if v := irix.SenderVariant(); v.Name != "irix" {
		t.Errorf("manic variant = %s", v.Name)
	}
}

func TestPairPZeroPackets(t *testing.T) {
	p := Pair{PaperLoss: 10}
	if p.P() != 0 {
		t.Error("zero packets should give p=0")
	}
}
