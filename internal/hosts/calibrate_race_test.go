package hosts

import (
	"sync"
	"testing"
)

// TestCalibratedPairConcurrent hammers the calibration cache from many
// goroutines across several pairs; it is the regression test for the
// cache's locking discipline and is expected to run under
// `go test -race ./internal/hosts`. Every caller must observe exactly
// the same calibrated pair, and the probe runs must happen once per
// pair, not once per caller.
func TestCalibratedPairConcurrent(t *testing.T) {
	ResetCalibrationCache()
	t.Cleanup(ResetCalibrationCache)

	names := []string{"babel-tove", "manic-sutton", "void-sutton"}
	opts := CalibrateOptions{Iterations: 1, ProbeDuration: 60}

	pairs := make([]Pair, len(names))
	for i, n := range names {
		p, ok := PairByName(n)
		if !ok {
			t.Fatalf("unknown pair %q", n)
		}
		pairs[i] = p
	}

	const workers = 8
	results := make([][]Pair, len(names))
	for i := range results {
		results[i] = make([]Pair, workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker visits the pairs in a different order to
			// shake out lock-ordering assumptions.
			for k := 0; k < len(pairs); k++ {
				i := (k + w) % len(pairs)
				results[i][w] = CalibratedPair(pairs[i], opts)
			}
		}(w)
	}
	wg.Wait()

	for i, name := range names {
		first := results[i][0]
		if first.DropRate <= 0 {
			t.Errorf("%s: calibrated drop rate %g must be positive", name, first.DropRate)
		}
		for w := 1; w < workers; w++ {
			if results[i][w] != first {
				t.Errorf("%s: worker %d observed a different calibration", name, w)
			}
		}
		// A later sequential call must hit the cache and agree too.
		if again := CalibratedPair(pairs[i], opts); again != first {
			t.Errorf("%s: post-race lookup disagrees with concurrent result", name)
		}
	}
}

// TestResetCalibrationCache verifies the reset actually forgets entries
// (a fresh calibration runs afterwards) without disturbing determinism.
func TestResetCalibrationCache(t *testing.T) {
	ResetCalibrationCache()
	t.Cleanup(ResetCalibrationCache)

	pair, ok := PairByName("babel-tove")
	if !ok {
		t.Fatal("unknown pair babel-tove")
	}
	opts := CalibrateOptions{Iterations: 1, ProbeDuration: 60}
	a := CalibratedPair(pair, opts)
	ResetCalibrationCache()
	b := CalibratedPair(pair, opts)
	if a != b {
		t.Error("calibration is deterministic; reset must not change the result")
	}
}
