// Package hosts encodes the measurement infrastructure of the paper's
// Section III: the Table I host inventory (with the per-OS TCP variants
// the paper notes) and, for each of the 23 sender-receiver pairs of
// Table II, an emulated-path profile calibrated to the published per-pair
// statistics (average RTT, average T0, loss-indication rate, and the
// receiver windows given in the Fig. 7 captions).
//
// The real 1997-98 Internet paths are not reproducible; what the model
// validation needs from them is the tuple (p, RTT, T0, Wm) plus a bursty
// loss process, which these profiles supply. Paper-reported packet and
// loss counts are retained on each Pair so reports can print
// paper-vs-simulated columns side by side.
package hosts

import (
	"fmt"

	"pftk/internal/netem"
	"pftk/internal/reno"
	"pftk/internal/sim"
)

// Host is one row of Table I.
type Host struct {
	// Name is the short hostname.
	Name string
	// Domain is the DNS domain from Table I.
	Domain string
	// OS is the operating system string from Table I.
	OS string
	// Variant is the TCP flavor our simulator uses for this host when
	// it acts as a sender, following the paper's Section IV notes
	// (Linux: fast retransmit after 2 dupacks; Irix: 2^5 backoff cap;
	// SunOS 4.x: Tahoe-derived).
	Variant reno.Variant
}

// TableI returns the paper's host inventory.
func TableI() []Host {
	return []Host{
		{"ada", "hofstra.edu", "Irix 6.2", reno.Irix},
		{"afer", "cs.umn.edu", "Linux", reno.Linux},
		{"al", "cs.wm.edu", "Linux 2.0.31", reno.Linux},
		{"alps", "cc.gatech.edu", "SunOS 4.1.3", reno.Tahoe},
		{"babel", "cs.umass.edu", "SunOS 5.5.1", reno.Reno},
		{"baskerville", "cs.arizona.edu", "SunOS 5.5.1", reno.Reno},
		{"ganef", "cs.ucla.edu", "SunOS 5.5.1", reno.Reno},
		{"imagine", "cs.umass.edu", "win95", reno.Reno},
		{"manic", "cs.umass.edu", "Irix 6.2", reno.Irix},
		{"mafalda", "inria.fr", "SunOS 5.5.1", reno.Reno},
		{"maria", "wustl.edu", "SunOS 4.1.3", reno.Tahoe},
		{"modi4", "ncsa.uiuc.edu", "Irix 6.2", reno.Irix},
		{"pif", "inria.fr", "Solaris 2.5", reno.Reno},
		{"pong", "usc.edu", "HP-UX", reno.Reno},
		{"spiff", "sics.se", "SunOS 4.1.4", reno.Tahoe},
		{"sutton", "cs.columbia.edu", "SunOS 5.5.1", reno.Reno},
		{"tove", "cs.umd.edu", "SunOS 4.1.3", reno.Tahoe},
		{"void", "cs.umass.edu", "Linux 2.0.30", reno.Linux},
		{"att", "att.com", "Linux", reno.Linux},
	}
}

// HostByName returns the Table I host with the given name.
func HostByName(name string) (Host, bool) {
	for _, h := range TableI() {
		if h.Name == name {
			return h, true
		}
	}
	return Host{}, false
}

// Pair is one sender-receiver path of the Table II campaign, with the
// paper's published statistics and the emulation parameters calibrated
// from them.
type Pair struct {
	// Sender and Receiver are Table I host names.
	Sender, Receiver string
	// RTT and T0 are the paper's per-trace averages (seconds).
	RTT, T0 float64
	// Wm is the receiver's advertised window in packets — from the
	// Fig. 7 captions where published, otherwise estimated from the
	// pair's TD fraction (mostly-timeout traces imply small windows).
	Wm int
	// WmPublished marks windows taken from the paper rather than
	// estimated.
	WmPublished bool
	// PaperPackets and PaperLoss are the "Packets Sent" and "Loss
	// Indic." columns of Table II.
	PaperPackets, PaperLoss int
	// PaperTD is the TD column of Table II.
	PaperTD int
	// DropRate is the calibrated per-packet loss-burst start
	// probability, initialized to the paper's p = PaperLoss/PaperPackets
	// and refined by Calibrate.
	DropRate float64
	// BurstDurOverride, when positive, replaces the heuristic outage
	// duration; Calibrate fits it to the pair's published TD fraction.
	BurstDurOverride float64
}

// P returns the paper's loss-indication rate for the pair.
func (p Pair) P() float64 {
	if p.PaperPackets == 0 {
		return 0
	}
	return float64(p.PaperLoss) / float64(p.PaperPackets)
}

// Name returns "sender-receiver", the label used on the paper's x axes.
func (p Pair) Name() string { return p.Sender + "-" + p.Receiver }

// TableII returns the 23 pairs of the 1-hour campaign with the paper's
// published statistics.
func TableII() []Pair {
	mk := func(snd, rcv string, pkts, loss, td int, rtt, t0 float64, wm int, pub bool) Pair {
		p := Pair{
			Sender: snd, Receiver: rcv,
			PaperPackets: pkts, PaperLoss: loss, PaperTD: td,
			RTT: rtt, T0: t0, Wm: wm, WmPublished: pub,
		}
		p.DropRate = p.P()
		return p
	}
	return []Pair{
		mk("manic", "alps", 54402, 722, 19, 0.207, 2.505, 6, false),
		mk("manic", "baskerville", 58120, 735, 306, 0.243, 2.495, 6, true), // Fig. 7(a)
		mk("manic", "ganef", 58924, 743, 272, 0.226, 2.405, 16, false),
		mk("manic", "mafalda", 56283, 494, 2, 0.233, 2.146, 5, false),
		mk("manic", "maria", 68752, 649, 1, 0.180, 2.416, 5, false),
		mk("manic", "spiff", 117992, 784, 47, 0.211, 2.274, 8, false),
		mk("manic", "sutton", 81123, 1638, 988, 0.204, 2.459, 24, false),
		mk("manic", "tove", 7938, 264, 1, 0.275, 3.597, 5, false),
		mk("void", "alps", 37137, 838, 7, 0.162, 0.489, 48, true), // Fig. 7(d)
		mk("void", "baskerville", 32042, 853, 339, 0.482, 1.094, 16, false),
		mk("void", "ganef", 60770, 1112, 414, 0.254, 0.637, 16, false),
		mk("void", "maria", 93005, 1651, 33, 0.152, 0.417, 6, false),
		mk("void", "spiff", 65536, 671, 72, 0.415, 0.749, 8, false),
		mk("void", "sutton", 78246, 1928, 840, 0.211, 0.601, 24, false),
		mk("void", "tove", 8265, 856, 5, 0.272, 1.356, 8, true),    // Fig. 7(e)
		mk("babel", "alps", 13460, 1466, 0, 0.194, 1.359, 8, true), // Fig. 7(f)
		mk("babel", "baskerville", 62237, 1753, 197, 0.253, 0.429, 12, false),
		mk("babel", "ganef", 86675, 2125, 398, 0.201, 0.306, 16, false),
		mk("babel", "spiff", 57687, 1120, 0, 0.331, 0.953, 5, false),
		mk("babel", "sutton", 83486, 2320, 685, 0.210, 0.705, 24, false),
		mk("babel", "tove", 83944, 1516, 1, 0.194, 0.520, 5, false),
		mk("pif", "alps", 83971, 762, 0, 0.168, 7.278, 5, false),
		mk("pif", "imagine", 44891, 1346, 15, 0.229, 0.700, 8, true), // Fig. 7(b)
		mk("pif", "manic", 34251, 1422, 43, 0.257, 1.454, 33, true),  // Fig. 7(c)
	}
}

// PairByName returns the Table II pair labeled "sender-receiver".
func PairByName(name string) (Pair, bool) {
	for _, p := range TableII() {
		if p.Name() == name {
			return p, true
		}
	}
	return Pair{}, false
}

// Fig7Pairs returns the six pairs shown in Fig. 7, in the paper's order.
func Fig7Pairs() []Pair {
	names := []string{
		"manic-baskerville", "pif-imagine", "pif-manic",
		"void-alps", "void-tove", "babel-alps",
	}
	out := make([]Pair, 0, len(names))
	for _, n := range names {
		p, ok := PairByName(n)
		if !ok {
			panic("hosts: missing Fig. 7 pair " + n)
		}
		out = append(out, p)
	}
	return out
}

// Fig8Pairs returns the six sender-receiver pairs of the 100-second
// campaign shown in Fig. 8. Pairs involving hosts without a Table II row
// (att-sutton, manic-afer) reuse plausible parameters from related rows.
func Fig8Pairs() []Pair {
	ganef, _ := PairByName("manic-ganef")
	mafalda, _ := PairByName("manic-mafalda")
	tove, _ := PairByName("manic-tove")
	maria, _ := PairByName("manic-maria")
	att := Pair{Sender: "att", Receiver: "sutton", RTT: 0.215, T0: 0.65,
		Wm: 24, PaperPackets: 80000, PaperLoss: 1900, PaperTD: 800}
	att.DropRate = att.P()
	afer := Pair{Sender: "manic", Receiver: "afer", RTT: 0.230, T0: 2.3,
		Wm: 12, PaperPackets: 60000, PaperLoss: 900, PaperTD: 200}
	afer.DropRate = afer.P()
	return []Pair{ganef, mafalda, tove, maria, att, afer}
}

// SenderVariant returns the TCP variant of the pair's sender host.
func (p Pair) SenderVariant() reno.Variant {
	if h, ok := HostByName(p.Sender); ok {
		return h.Variant
	}
	return reno.Reno
}

// seed derives a stable per-pair RNG seed.
func (p Pair) seed(salt uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range []byte(p.Name()) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h ^ salt
}

// TDFraction returns the paper's share of loss indications that were
// triple-duplicate events for this pair.
func (p Pair) TDFraction() float64 {
	if p.PaperLoss == 0 {
		return 0
	}
	return float64(p.PaperTD) / float64(p.PaperLoss)
}

// BurstDur returns the loss-outage duration used for this pair's path.
// It is tied to the paper's TD fraction: pairs whose loss indications
// were almost all timeouts (TD fraction near 0) get outages that outlive
// a whole round-trip — killing the fast retransmission too — while
// TD-rich pairs get sub-RTT outages that fast retransmit repairs.
func (p Pair) BurstDur() float64 {
	if p.BurstDurOverride > 0 {
		return p.BurstDurOverride
	}
	frac := p.TDFraction()
	return p.RTT * (0.2 + 1.3*(1-frac))
}

// ConnConfig builds the emulated connection for this pair. salt
// diversifies the random streams across repetitions (e.g. the 100
// serial connections of the Fig. 8 campaign).
func (p Pair) ConnConfig(salt uint64) reno.ConnConfig {
	rng := sim.NewRNG(p.seed(salt))
	oneWay := p.RTT / 2
	// Correlated losses, per the paper's loss model: an outage that
	// starts with probability DropRate consumes every packet for
	// BurstDur seconds.
	loss := netem.NewTimedBurst(p.DropRate, p.BurstDur(), rng.Fork("loss"))
	return reno.ConnConfig{
		Sender: reno.SenderConfig{
			Variant: p.SenderVariant(),
			RWnd:    p.Wm,
			// Calibrate the emulated first-timeout duration to the
			// paper's published T0 via the RTO floor; the coarse
			// 500 ms BSD tick shaped the originals the same way.
			MinRTO: p.T0,
		},
		Receiver: reno.ReceiverConfig{AckEvery: 2},
		Path: netem.PathConfig{
			Forward: netem.LinkConfig{
				Delay: &netem.UniformJitterDelay{Base: oneWay * 0.9, Jitter: oneWay * 0.2, RNG: rng.Fork("fdelay")},
				Loss:  loss,
			},
			Reverse: netem.LinkConfig{
				Delay: &netem.UniformJitterDelay{Base: oneWay * 0.9, Jitter: oneWay * 0.2, RNG: rng.Fork("rdelay")},
			},
		},
	}
}

// ModemPair returns the Fig. 11 configuration: manic sending to a Linux
// PC behind a 28.8 kb/s modem with a dedicated deep buffer. With
// 1024-byte packets the modem drains ~3.5 packets/s. A small random loss
// component rides on top (the paper's modem trace still saw wide-area
// losses upstream of the modem), giving the Fig. 11 scatter its p axis;
// the deep dedicated buffer itself never overflows, which is exactly why
// the RTT tracks the window.
func ModemPair() (Pair, reno.ConnConfig) {
	p := Pair{Sender: "manic", Receiver: "p5", RTT: 4.726, T0: 18.407, Wm: 22}
	path := netem.ModemPath(3.5, 40, 0.05)
	path.Forward.Loss = netem.NewTimedBurst(0.01, 1.0, sim.NewRNG(p.seed(0xF16)).Fork("modemloss"))
	cfg := reno.ConnConfig{
		Sender: reno.SenderConfig{
			Variant: reno.Irix,
			RWnd:    p.Wm,
			MinRTO:  1.0,
		},
		Receiver: reno.ReceiverConfig{AckEvery: 2},
		Path:     path,
	}
	return p, cfg
}

// String implements fmt.Stringer.
func (p Pair) String() string {
	return fmt.Sprintf("%s (RTT=%.3fs T0=%.3fs Wm=%d p=%.4f)", p.Name(), p.RTT, p.T0, p.Wm, p.P())
}
