package hosts

import (
	"math"
	"testing"

	"pftk/internal/reno"
)

func TestTableIInventory(t *testing.T) {
	hs := TableI()
	if len(hs) != 19 {
		t.Fatalf("Table I has %d hosts, want 19", len(hs))
	}
	seen := map[string]bool{}
	for _, h := range hs {
		if h.Name == "" || h.Domain == "" || h.OS == "" {
			t.Errorf("incomplete host %+v", h)
		}
		if seen[h.Name] {
			t.Errorf("duplicate host %s", h.Name)
		}
		seen[h.Name] = true
	}
}

func TestVariantAssignment(t *testing.T) {
	cases := map[string]string{
		"void":  "linux", // Linux 2.0.30
		"manic": "irix",  // Irix 6.2
		"alps":  "tahoe", // SunOS 4.1.3
		"babel": "reno",  // SunOS 5.5.1 (Solaris)
	}
	for name, variant := range cases {
		h, ok := HostByName(name)
		if !ok {
			t.Fatalf("host %s missing", name)
		}
		if h.Variant.Name != variant {
			t.Errorf("%s variant = %s, want %s", name, h.Variant.Name, variant)
		}
	}
	if _, ok := HostByName("nonesuch"); ok {
		t.Error("unknown host found")
	}
}

func TestTableIIPairs(t *testing.T) {
	pairs := TableII()
	if len(pairs) != 24 {
		t.Fatalf("Table II has %d pairs, want 24", len(pairs))
	}
	senders := map[string]int{}
	for _, p := range pairs {
		senders[p.Sender]++
		if p.PaperPackets <= 0 || p.PaperLoss <= 0 {
			t.Errorf("%s: missing paper statistics", p.Name())
		}
		if p.RTT <= 0 || p.T0 <= 0 || p.Wm < 2 {
			t.Errorf("%s: bad parameters %+v", p.Name(), p)
		}
		if p.PaperTD > p.PaperLoss {
			t.Errorf("%s: TD count exceeds loss indications", p.Name())
		}
		if math.Abs(p.DropRate-p.P()) > 1e-12 {
			t.Errorf("%s: drop rate %g not calibrated to paper p %g", p.Name(), p.DropRate, p.P())
		}
		if _, ok := HostByName(p.Sender); !ok {
			t.Errorf("%s: unknown sender", p.Name())
		}
		if _, ok := HostByName(p.Receiver); !ok {
			t.Errorf("%s: unknown receiver", p.Name())
		}
	}
	// The paper's four senders.
	for _, s := range []string{"manic", "void", "babel", "pif"} {
		if senders[s] == 0 {
			t.Errorf("sender %s missing", s)
		}
	}
}

func TestPublishedWindowsMatchFig7Captions(t *testing.T) {
	want := map[string]int{
		"manic-baskerville": 6,
		"pif-imagine":       8,
		"pif-manic":         33,
		"void-alps":         48,
		"void-tove":         8,
		"babel-alps":        8,
	}
	for name, wm := range want {
		p, ok := PairByName(name)
		if !ok {
			t.Fatalf("pair %s missing", name)
		}
		if p.Wm != wm {
			t.Errorf("%s Wm = %d, want %d (Fig. 7 caption)", name, p.Wm, wm)
		}
		if !p.WmPublished {
			t.Errorf("%s should be marked as published", name)
		}
	}
}

func TestPaperLossRates(t *testing.T) {
	// Spot checks against Table II arithmetic.
	p, _ := PairByName("manic-alps")
	if math.Abs(p.P()-722.0/54402) > 1e-12 {
		t.Errorf("manic-alps p = %g", p.P())
	}
	vt, _ := PairByName("void-tove")
	if vt.P() < 0.1 {
		t.Errorf("void-tove should be the high-loss trace, p = %g", vt.P())
	}
}

func TestFig7PairsOrder(t *testing.T) {
	ps := Fig7Pairs()
	if len(ps) != 6 {
		t.Fatalf("%d pairs", len(ps))
	}
	if ps[0].Name() != "manic-baskerville" || ps[5].Name() != "babel-alps" {
		t.Errorf("order: %v, %v", ps[0].Name(), ps[5].Name())
	}
}

func TestFig8Pairs(t *testing.T) {
	ps := Fig8Pairs()
	if len(ps) != 6 {
		t.Fatalf("%d pairs", len(ps))
	}
	for _, p := range ps {
		if p.DropRate <= 0 || p.RTT <= 0 || p.Wm < 2 {
			t.Errorf("pair %s has unusable parameters: %+v", p.Name(), p)
		}
	}
}

func TestConnConfigDeterministicPerSalt(t *testing.T) {
	p, _ := PairByName("manic-ganef")
	r1 := reno.RunConnection(p.ConnConfig(1), 60)
	r2 := reno.RunConnection(p.ConnConfig(1), 60)
	if r1.Stats.TotalSent() != r2.Stats.TotalSent() {
		t.Error("same salt should reproduce the run exactly")
	}
	r3 := reno.RunConnection(p.ConnConfig(2), 60)
	if r1.Stats.TotalSent() == r3.Stats.TotalSent() && r1.Stats.LossIndications() == r3.Stats.LossIndications() {
		t.Error("different salts should perturb the run")
	}
}

func TestConnConfigProducesPlausibleTrace(t *testing.T) {
	p, _ := PairByName("manic-ganef")
	res := reno.RunConnection(p.ConnConfig(7), 600)
	if res.Stats.TotalSent() < 1000 {
		t.Fatalf("only %d packets in 600s", res.Stats.TotalSent())
	}
	// Measured loss rate should land within 3x of the calibration
	// target (correlated bursts shift it).
	meas := res.LossIndicationRate()
	if meas < p.P()/3 || meas > p.P()*3 {
		t.Errorf("measured p = %g, calibration target %g", meas, p.P())
	}
	if res.Stats.LossIndications() == 0 {
		t.Error("no loss indications")
	}
}

func TestModemPair(t *testing.T) {
	p, cfg := ModemPair()
	if p.Wm != 22 {
		t.Errorf("modem Wm = %d, want 22 (Fig. 11 caption)", p.Wm)
	}
	if cfg.Path.Forward.Rate <= 0 || cfg.Path.Forward.QueueCap < 20 {
		t.Errorf("modem path should be slow with a deep buffer: %+v", cfg.Path.Forward)
	}
}

func TestPairString(t *testing.T) {
	p, _ := PairByName("void-alps")
	if s := p.String(); s == "" {
		t.Error("empty String")
	}
	if _, ok := PairByName("no-pair"); ok {
		t.Error("unknown pair found")
	}
}
