package hosts

import (
	"sync"

	"pftk/internal/analysis"
	"pftk/internal/reno"
)

// Calibration makes a pair's emulated path reproduce the paper's
// *measured* loss-indication rate rather than merely using it as the raw
// drop probability. The two differ because one loss outage can produce
// several loss indications (a fast retransmit followed by timeouts for
// the remaining holes), exactly as on the real Internet paths — the
// paper's p column is the post-hoc measurement, so the drop process must
// be fitted to it.

// CalibrateOptions controls the fitting loop.
type CalibrateOptions struct {
	// Iterations is the number of fitting rounds (default 5).
	Iterations int
	// ProbeDuration is the length of each probe run in simulated
	// seconds (default 900).
	ProbeDuration float64
}

func (o CalibrateOptions) normalize() CalibrateOptions {
	if o.Iterations <= 0 {
		o.Iterations = 5
	}
	if o.ProbeDuration <= 0 {
		o.ProbeDuration = 900
	}
	return o
}

// probe runs a probe connection and returns the loss-indication rate and
// TD fraction measured the way Table II measures them: TD events plus
// timeout *sequences* (a backoff run counts once), divided by packets
// sent.
func probe(p Pair, dur float64) (pRate, tdFrac float64) {
	res := reno.RunConnection(p.ConnConfig(0xCA11B8), dur)
	events := analysis.GroundTruthLossEvents(res.Trace)
	s := analysis.Summarize(res.Trace, events)
	if s.LossIndications > 0 {
		tdFrac = float64(s.TD) / float64(s.LossIndications)
	}
	return s.P, tdFrac
}

// Calibrate returns a copy of the pair whose drop process has been fitted
// so that a simulated trace reproduces the paper's published
// loss-indication rate (via DropRate) and TD-vs-timeout mix (via the
// outage duration).
func (p Pair) Calibrate(o CalibrateOptions) Pair {
	o = o.normalize()
	target := p.P()
	if target <= 0 {
		return p
	}
	targetTD := p.TDFraction()
	cal := p
	cal.BurstDurOverride = cal.BurstDur()
	for i := 0; i < o.Iterations; i++ {
		got, gotTD := probe(cal, o.ProbeDuration)
		if got <= 0 {
			// No losses at all: raise the rate and retry.
			cal.DropRate *= 2
			continue
		}
		// Loss-rate knob: damped multiplicative update.
		ratio := target / got
		if ratio > 3 {
			ratio = 3
		}
		if ratio < 1.0/3 {
			ratio = 1.0 / 3
		}
		cal.DropRate *= ratio
		if cal.DropRate > 0.9 {
			cal.DropRate = 0.9
		}
		// Mix knob: longer outages kill fast retransmissions and push
		// the mix toward timeouts; shorter ones let fast retransmit
		// repair the loss (TD). Adjust when off by more than 0.08.
		switch {
		case gotTD < targetTD-0.08:
			cal.BurstDurOverride *= 0.7
		case gotTD > targetTD+0.08:
			cal.BurstDurOverride *= 1.4
		}
		if min := 0.05 * cal.RTT; cal.BurstDurOverride < min {
			cal.BurstDurOverride = min
		}
		if max := 4 * cal.RTT; cal.BurstDurOverride > max {
			cal.BurstDurOverride = max
		}
	}
	return cal
}

// calEntry is one memoized calibration. Entries are stored in the cache
// by pointer — a calEntry contains a sync.Once and must never be copied
// (the mutexcopy analyzer enforces this repo-wide).
type calEntry struct {
	once sync.Once
	pair Pair
}

var (
	// calMu guards only the map itself; the expensive probe runs happen
	// outside it, under the entry's once, so concurrent campaigns
	// calibrating *different* pairs proceed in parallel while
	// same-pair callers still share a single calibration.
	calMu sync.Mutex
	//pftk:guardedby calMu
	calCache = map[string]*calEntry{}
)

// CalibratedPair returns the pair fitted to its published loss rate,
// memoizing the (deterministic) result per pair name so campaigns do not
// repeat the probe runs. It is safe for concurrent use.
func CalibratedPair(p Pair, o CalibrateOptions) Pair {
	calMu.Lock()
	e, ok := calCache[p.Name()]
	if !ok {
		e = &calEntry{}
		calCache[p.Name()] = e
	}
	calMu.Unlock()
	e.once.Do(func() { e.pair = p.Calibrate(o) })
	return e.pair
}

// ResetCalibrationCache drops every memoized calibration. It exists for
// tests that need a cold cache; production campaigns never call it.
func ResetCalibrationCache() {
	calMu.Lock()
	defer calMu.Unlock()
	calCache = map[string]*calEntry{}
}
