// Package markov implements a numerically-solved Markov model of TCP Reno
// congestion avoidance built from the same assumptions as the closed-form
// analysis of Section II — the counterpart of the more detailed stochastic
// model the paper cites as [13] (UMASS-CS-TR-1999-02) and compares against
// in Fig. 12.
//
// The chain operates at round granularity:
//
//   - Congestion-avoidance states (w, c) track the window w in packets and
//     the ACK-credit c in 0..b-1 accumulated toward the next increment;
//     each loss-free round advances the credit, and the window grows by
//     one every b rounds, capped at the advertised window Wm.
//   - A round of w packets suffers a loss indication with probability
//     1-(1-p)^w (the paper's correlated in-round loss model: only the
//     first loss in a round matters).
//   - On a loss indication, with probability Q̂(w) (eq. 24) the indication
//     is a timeout: the chain enters backoff state k = 1, 2, ... where the
//     k-th timeout lasts min(2^(k-1), 64/2^0)·T0 capped at 64·T0, one
//     packet is retransmitted per timeout, and each retransmission fails
//     independently with probability p; otherwise it is a TD indication
//     and the window halves.
//
// The stationary distribution is found by power iteration; the send rate
// follows from renewal-reward: B = E[packets per transition] / E[time per
// transition]. Matching Fig. 12, its predictions nearly coincide with the
// closed form of eq. (32).
package markov

import (
	"fmt"
	"math"

	"pftk/internal/core"
)

// Config parameterizes the chain.
type Config struct {
	// RTT is the round duration in seconds.
	RTT float64
	// T0 is the base timeout in seconds.
	T0 float64
	// Wm is the maximum (advertised) window in packets; it also bounds
	// the state space.
	Wm int
	// B is the ACK ratio (packets per ACK); defaults to 2.
	B int
	// MaxBackoff caps the timeout doubling at 2^MaxBackoff; defaults to
	// 6 (the 64·T0 cap of Section II-B).
	MaxBackoff int
	// Tol is the power-iteration convergence threshold on the L1 change
	// of the stationary vector; defaults to 1e-12.
	Tol float64
	// MaxIter bounds power iteration; defaults to 100000.
	MaxIter int
}

func (c Config) normalize() Config {
	if c.B < 1 {
		c.B = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 6
	}
	if c.Tol <= 0 {
		c.Tol = 1e-12
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 100000
	}
	return c
}

// Validate reports whether the configuration is solvable.
func (c Config) Validate() error {
	if c.RTT <= 0 || math.IsNaN(c.RTT) {
		return fmt.Errorf("markov: RTT must be positive, got %v", c.RTT)
	}
	if c.T0 <= 0 || math.IsNaN(c.T0) {
		return fmt.Errorf("markov: T0 must be positive, got %v", c.T0)
	}
	if c.Wm < 1 {
		return fmt.Errorf("markov: Wm must be at least 1, got %d", c.Wm)
	}
	return nil
}

// Chain is the assembled Markov chain for one loss rate.
type Chain struct {
	cfg Config
	p   float64

	n      int // total states
	caBase int // congestion-avoidance states start at index 0
	toBase int // timeout states follow

	// next[i] lists transitions from state i.
	next [][]transition
	// rewardPkts[i] and rewardTime[i] are the expected packets sent and
	// time spent on leaving state i.
	rewardPkts []float64
	rewardTime []float64

	pi []float64 // stationary distribution
}

type transition struct {
	to   int
	prob float64
}

// stateCA maps (w, c) to an index: w in 1..Wm, c in 0..b-1.
func (ch *Chain) stateCA(w, c int) int {
	return (w-1)*ch.cfg.B + c
}

// stateTO maps backoff stage k (1-based) to an index; stages beyond
// MaxBackoff share the capped stage.
func (ch *Chain) stateTO(k int) int {
	if k > ch.cfg.MaxBackoff+1 {
		k = ch.cfg.MaxBackoff + 1
	}
	return ch.toBase + (k - 1)
}

// New assembles the chain for loss rate p.
func New(p float64, cfg Config) (*Chain, error) {
	cfg = cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !(p > 0 && p < 1) {
		return nil, fmt.Errorf("markov: p must be in (0,1), got %v", p)
	}
	ch := &Chain{cfg: cfg, p: p}
	nCA := cfg.Wm * cfg.B
	nTO := cfg.MaxBackoff + 1
	ch.caBase = 0
	ch.toBase = nCA
	ch.n = nCA + nTO
	ch.next = make([][]transition, ch.n)
	ch.rewardPkts = make([]float64, ch.n)
	ch.rewardTime = make([]float64, ch.n)
	ch.build()
	return ch, nil
}

// build fills the transition and reward structures.
func (ch *Chain) build() {
	cfg := ch.cfg
	p := ch.p
	for w := 1; w <= cfg.Wm; w++ {
		lossProb := 1 - math.Pow(1-p, float64(w))
		q := core.QHat(p, float64(w)) // P[indication is a TO | loss]
		for c := 0; c < cfg.B; c++ {
			i := ch.stateCA(w, c)
			// One round: w packets sent over one RTT. On a loss the
			// round still transmits, on average, roughly the packets
			// up to the loss plus the following round's shrunken
			// window; the dominant term is w, which we use for both
			// branches (the closed-form analysis makes the same
			// simplification by counting E[Y] packets over E[X]+1
			// rounds).
			ch.rewardPkts[i] = float64(w)
			ch.rewardTime[i] = cfg.RTT

			// Loss-free branch: advance the credit; on wrap, grow.
			nw, nc := w, c+1
			if nc >= cfg.B {
				nc = 0
				if nw < cfg.Wm {
					nw++
				}
			}
			ch.add(i, ch.stateCA(nw, nc), 1-lossProb)

			// TD branch: window halves (at least 1), credit resets.
			half := w / 2
			if half < 1 {
				half = 1
			}
			ch.add(i, ch.stateCA(half, 0), lossProb*(1-q))

			// TO branch: enter the first timeout stage.
			ch.add(i, ch.stateTO(1), lossProb*q)
		}
	}
	// Timeout stages: stage k waits min(2^(k-1), 2^MaxBackoff)·T0, sends
	// one retransmission, which itself is lost with probability p.
	for k := 1; k <= cfg.MaxBackoff+1; k++ {
		i := ch.stateTO(k)
		exp := k - 1
		if exp > cfg.MaxBackoff {
			exp = cfg.MaxBackoff
		}
		ch.rewardPkts[i] = 1
		ch.rewardTime[i] = cfg.T0 * math.Pow(2, float64(exp))
		// Success: leave timeout, restart at window 1 (slow start is
		// not modeled, as in the paper).
		ch.add(i, ch.stateCA(1, 0), 1-p)
		// Failure: next backoff stage (capped).
		ch.add(i, ch.stateTO(k+1), p)
	}
}

func (ch *Chain) add(from, to int, prob float64) {
	if prob <= 0 {
		return
	}
	ch.next[from] = append(ch.next[from], transition{to: to, prob: prob})
}

// NumStates returns the size of the state space.
func (ch *Chain) NumStates() int { return ch.n }

// Solve computes the stationary distribution by power iteration and
// returns the number of iterations used.
func (ch *Chain) Solve() int {
	pi := make([]float64, ch.n)
	for i := range pi {
		pi[i] = 1 / float64(ch.n)
	}
	nxt := make([]float64, ch.n)
	iters := 0
	for ; iters < ch.cfg.MaxIter; iters++ {
		for i := range nxt {
			nxt[i] = 0
		}
		for i, ts := range ch.next {
			if pi[i] == 0 {
				continue
			}
			for _, t := range ts {
				nxt[t.to] += pi[i] * t.prob
			}
		}
		// Normalize to absorb numerical drift.
		sum := 0.0
		for _, v := range nxt {
			sum += v
		}
		diff := 0.0
		for i := range nxt {
			nxt[i] /= sum
			diff += math.Abs(nxt[i] - pi[i])
		}
		pi, nxt = nxt, pi
		if diff < ch.cfg.Tol {
			break
		}
	}
	ch.pi = pi
	return iters
}

// Stationary returns the stationary distribution (solving first if
// needed). The returned slice is owned by the chain.
func (ch *Chain) Stationary() []float64 {
	if ch.pi == nil {
		ch.Solve()
	}
	return ch.pi
}

// SendRate returns the steady-state send rate in packets per second by
// renewal reward over the stationary distribution.
func (ch *Chain) SendRate() float64 {
	pi := ch.Stationary()
	var pkts, dur float64
	for i, w := range pi {
		pkts += w * ch.rewardPkts[i]
		dur += w * ch.rewardTime[i]
	}
	if dur == 0 {
		return 0
	}
	return pkts / dur
}

// TimeoutFraction returns the stationary probability mass in timeout
// states weighted by time — the fraction of wall-clock time spent waiting
// out RTOs.
func (ch *Chain) TimeoutFraction() float64 {
	pi := ch.Stationary()
	var toTime, total float64
	for i, w := range pi {
		t := w * ch.rewardTime[i]
		total += t
		if i >= ch.toBase {
			toTime += t
		}
	}
	if total == 0 {
		return 0
	}
	return toTime / total
}

// MeanWindow returns the stationary mean congestion window over
// congestion-avoidance states (timeout states count as window 1),
// weighted by time.
func (ch *Chain) MeanWindow() float64 {
	pi := ch.Stationary()
	var sum, total float64
	for i, wgt := range pi {
		t := wgt * ch.rewardTime[i]
		total += t
		if i < ch.toBase {
			w := i/ch.cfg.B + 1
			sum += t * float64(w)
		} else {
			sum += t * 1
		}
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// LossMix returns the stationary fraction of loss indications that are
// timeouts — the chain-level counterpart of the model's Q of eq. (26).
// It weights each congestion-avoidance state's TD and TO exit
// probabilities by the stationary flow through that state.
func (ch *Chain) LossMix() float64 {
	pi := ch.Stationary()
	var td, to float64
	for i := 0; i < ch.toBase; i++ {
		w := i/ch.cfg.B + 1
		lossProb := 1 - math.Pow(1-ch.p, float64(w))
		q := core.QHat(ch.p, float64(w))
		td += pi[i] * lossProb * (1 - q)
		to += pi[i] * lossProb * q
	}
	if td+to == 0 {
		return 0
	}
	return to / (td + to)
}

// SendRate solves the chain for the given loss rate and parameters and
// returns the send rate — the one-call form used by the Fig. 12
// experiment.
func SendRate(p float64, cfg Config) (float64, error) {
	ch, err := New(p, cfg)
	if err != nil {
		return 0, err
	}
	return ch.SendRate(), nil
}
