package markov

import (
	"math"
	"testing"

	"pftk/internal/core"
)

func fig12Config() Config {
	// Fig. 12 parameters: RTT = 0.47 s, T0 = 3.2 s, Wm = 12.
	return Config{RTT: 0.47, T0: 3.2, Wm: 12}
}

func TestConfigValidate(t *testing.T) {
	good := fig12Config()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{RTT: 0, T0: 1, Wm: 10},
		{RTT: 1, T0: 0, Wm: 10},
		{RTT: 1, T0: 1, Wm: 0},
		{RTT: math.NaN(), T0: 1, Wm: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.5, math.NaN()} {
		if _, err := New(p, fig12Config()); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
	if _, err := New(0.05, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStationaryDistributionIsProbability(t *testing.T) {
	ch, err := New(0.05, fig12Config())
	if err != nil {
		t.Fatal(err)
	}
	iters := ch.Solve()
	if iters == 0 {
		t.Error("converged in zero iterations (suspicious)")
	}
	pi := ch.Stationary()
	sum := 0.0
	for i, v := range pi {
		if v < -1e-15 {
			t.Errorf("pi[%d] = %g negative", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stationary sums to %g", sum)
	}
}

func TestTransitionRowsSumToOne(t *testing.T) {
	ch, err := New(0.07, fig12Config())
	if err != nil {
		t.Fatal(err)
	}
	for i, ts := range ch.next {
		sum := 0.0
		for _, tr := range ts {
			sum += tr.prob
			if tr.to < 0 || tr.to >= ch.n {
				t.Fatalf("state %d: transition to out-of-range %d", i, tr.to)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("state %d: outgoing probability %g", i, sum)
		}
	}
}

func TestSendRateMatchesClosedForm(t *testing.T) {
	// Fig. 12: the numerically-solved Markov model and eq. (32) nearly
	// coincide. Require agreement within 30% over the validated loss
	// range (the two models make slightly different per-round
	// accounting choices, as did the paper's pair).
	cfg := fig12Config()
	pr := core.Params{RTT: cfg.RTT, T0: cfg.T0, Wm: 12, B: 2}
	for _, p := range []float64{0.005, 0.01, 0.03, 0.05, 0.1, 0.2, 0.3} {
		got, err := SendRate(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := core.SendRateFull(p, pr)
		ratio := got / want
		t.Logf("p=%.3f: markov=%.2f closed=%.2f ratio=%.2f", p, got, want, ratio)
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("p=%g: markov %g vs closed form %g (ratio %.2f)", p, got, want, ratio)
		}
	}
}

func TestSendRateMonotoneInP(t *testing.T) {
	cfg := fig12Config()
	prev := math.Inf(1)
	for _, p := range []float64{0.01, 0.03, 0.07, 0.15, 0.3, 0.5} {
		r, err := SendRate(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev*(1+1e-9) {
			t.Errorf("send rate not monotone at p=%g: %g > %g", p, r, prev)
		}
		prev = r
	}
}

func TestSendRateRespectsWindowCeiling(t *testing.T) {
	cfg := fig12Config()
	r, err := SendRate(0.0005, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ceiling := float64(cfg.Wm) / cfg.RTT
	if r > ceiling*1.001 {
		t.Errorf("rate %g above Wm/RTT = %g", r, ceiling)
	}
	if r < 0.7*ceiling {
		t.Errorf("rate %g at tiny loss should approach the ceiling %g", r, ceiling)
	}
}

func TestTimeoutFractionGrowsWithLoss(t *testing.T) {
	cfg := fig12Config()
	prev := -1.0
	for _, p := range []float64{0.01, 0.05, 0.15, 0.4} {
		ch, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		f := ch.TimeoutFraction()
		if f < 0 || f > 1 {
			t.Fatalf("timeout fraction %g out of range", f)
		}
		if f < prev {
			t.Errorf("timeout fraction not increasing at p=%g: %g < %g", p, f, prev)
		}
		prev = f
	}
	if prev < 0.5 {
		t.Errorf("at p=0.4 the chain should spend most time in timeout, got %g", prev)
	}
}

func TestMeanWindowShrinksWithLoss(t *testing.T) {
	cfg := fig12Config()
	ch1, _ := New(0.005, cfg)
	ch2, _ := New(0.2, cfg)
	w1, w2 := ch1.MeanWindow(), ch2.MeanWindow()
	if w1 <= w2 {
		t.Errorf("mean window should shrink with loss: %g vs %g", w1, w2)
	}
	if w1 > float64(cfg.Wm) || w2 < 1 {
		t.Errorf("mean windows out of range: %g, %g", w1, w2)
	}
}

func TestMeanWindowTracksEW(t *testing.T) {
	// E[W] of eq. (13) is the window at the *end* of a TDP — the
	// sawtooth peak. The chain's MeanWindow is a time average over the
	// whole evolution including timeout dwell (window 1), so it must lie
	// clearly below E[W] but scale with it: within [0.3, 1.0]·E[W] in
	// the moderate-loss regime.
	cfg := Config{RTT: 0.2, T0: 1.0, Wm: 64}
	for _, p := range []float64{0.02, 0.05} {
		ch, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := ch.MeanWindow()
		want := core.EW(p, 2)
		if r := got / want; r < 0.3 || r > 1.0 {
			t.Errorf("p=%g: mean window %g vs E[W] %g (ratio %.2f)", p, got, want, r)
		}
	}
}

func TestBackoffCapRespected(t *testing.T) {
	ch, err := New(0.3, Config{RTT: 0.2, T0: 1.0, Wm: 8, MaxBackoff: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The last timeout state must have max wait 2^3 * T0 = 8.
	last := ch.stateTO(ch.cfg.MaxBackoff + 1)
	if got := ch.rewardTime[last]; got != 8 {
		t.Errorf("capped timeout wait = %g, want 8", got)
	}
	// Mapping beyond the cap folds back to the last state.
	if ch.stateTO(99) != last {
		t.Error("over-cap stage should fold to the capped state")
	}
}

func TestNumStates(t *testing.T) {
	ch, err := New(0.05, Config{RTT: 0.2, T0: 1, Wm: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 10 windows x 2 credits + 7 timeout stages.
	if got := ch.NumStates(); got != 27 {
		t.Errorf("NumStates = %d, want 27", got)
	}
}

func TestLossMixTracksQHat(t *testing.T) {
	// The chain's timeout fraction should track Q̂ evaluated near the
	// chain's own operating window, growing toward 1 with loss.
	cfg := fig12Config()
	prev := 0.0
	for _, p := range []float64{0.005, 0.02, 0.08, 0.3} {
		ch, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mix := ch.LossMix()
		if mix < 0 || mix > 1 {
			t.Fatalf("p=%g: mix %g out of range", p, mix)
		}
		if mix < prev-1e-9 {
			t.Errorf("p=%g: timeout mix %g decreased (prev %g)", p, mix, prev)
		}
		prev = mix
		// Compare against Q̂ at the chain's mean window: same order of
		// magnitude, same trend.
		q := core.QHat(p, ch.MeanWindow())
		if mix < q/3 || mix > math.Min(3*q, 1) {
			t.Errorf("p=%g: chain mix %g vs Q̂(meanW)=%g diverge", p, mix, q)
		}
	}
	if prev < 0.8 {
		t.Errorf("at p=0.3 the mix should be mostly timeouts, got %g", prev)
	}
}

func TestSolveDirectMatchesPowerIteration(t *testing.T) {
	// Two independent solvers must agree on the stationary distribution
	// and the derived send rate.
	for _, p := range []float64{0.005, 0.05, 0.3} {
		iter, err := New(p, fig12Config())
		if err != nil {
			t.Fatal(err)
		}
		iter.Solve()
		rateIter := iter.SendRate()

		direct, err := New(p, fig12Config())
		if err != nil {
			t.Fatal(err)
		}
		if err := direct.SolveDirect(); err != nil {
			t.Fatalf("p=%g: direct solve: %v", p, err)
		}
		rateDirect := direct.SendRate()

		piI, piD := iter.Stationary(), direct.Stationary()
		var l1 float64
		for i := range piI {
			l1 += math.Abs(piI[i] - piD[i])
		}
		if l1 > 1e-6 {
			t.Errorf("p=%g: solvers disagree, L1 distance %g", p, l1)
		}
		if math.Abs(rateIter-rateDirect)/rateDirect > 1e-6 {
			t.Errorf("p=%g: rates disagree: %g vs %g", p, rateIter, rateDirect)
		}
		// The direct solution must be a proper distribution.
		sum := 0.0
		for _, v := range piD {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("p=%g: direct stationary sums to %g", p, sum)
		}
	}
}
