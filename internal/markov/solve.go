package markov

import (
	"fmt"
	"math"
)

// SolveDirect computes the stationary distribution by solving the linear
// system π(P − I) = 0 with Σπ = 1 directly (Gaussian elimination with
// partial pivoting) instead of power iteration. It exists as a numerical
// cross-check: the two solvers take entirely different paths to the same
// distribution, so agreement validates both the transition assembly and
// the convergence of the iterative method.
//
// Cost is O(n³) in the state count, fine for the ≤ few-hundred-state
// chains of this model. The result is stored as the chain's stationary
// distribution (overwriting any iterative solution).
func (ch *Chain) SolveDirect() error {
	n := ch.n
	// Build A = Pᵀ − I with the last row replaced by the normalization
	// constraint, and b = (0, ..., 0, 1).
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
		a[i][i] = -1
	}
	for from, ts := range ch.next {
		for _, t := range ts {
			a[t.to][from] += t.prob
		}
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	a[n-1][n] = 1

	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return fmt.Errorf("markov: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	pi := make([]float64, n)
	for i := 0; i < n; i++ {
		pi[i] = a[i][n] / a[i][i]
		if pi[i] < 0 && pi[i] > -1e-12 {
			pi[i] = 0 // numerical dust
		}
		if pi[i] < 0 {
			return fmt.Errorf("markov: negative stationary probability %g at state %d", pi[i], i)
		}
	}
	ch.pi = pi
	return nil
}
