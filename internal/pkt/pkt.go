// Package pkt defines the typed packet union carried through the
// simulator's event arena and the emulated links. It is the leaf of the
// packet path: sim schedules Packet-carrying events, netem queues and
// delivers Packets, and the protocol layers (reno, tfrc) interpret them
// by Kind.
//
// Packet replaces the `any` payloads the sim/netem boundary used to box:
// a single pointer-free value type covers every protocol's wire format,
// so the hot path — Link.Send through Engine.SchedulePacket to the
// delivery callback — moves packets by value with zero allocations. The
// cost is one discriminator check at each protocol boundary (a receiver
// ignores Kinds it does not own), exactly like demultiplexing on a real
// shared link.
package pkt

// Kind discriminates the protocol payload a Packet carries. The zero
// value is Data so that a bare Packet{Seq: n} literal — the dominant
// case, a TCP data segment — needs no explicit Kind.
type Kind uint8

const (
	// Data is a TCP data segment, numbered in packets from 1 (Seq).
	Data Kind = iota
	// Ack is a cumulative TCP acknowledgment: every packet with
	// sequence < Seq has been received.
	Ack
	// RateData is a paced TFRC datagram (Seq, Sent).
	RateData
	// Feedback is a TFRC receiver report (P, Rate, Sent as the echoed
	// send timestamp).
	Feedback
	// Cross is background cross traffic: it occupies link queues and
	// consumes bottleneck capacity but no protocol consumes it.
	Cross
)

// String returns the wire-format name of the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case RateData:
		return "ratedata"
	case Feedback:
		return "feedback"
	case Cross:
		return "cross"
	default:
		return "unknown"
	}
}

// Packet is one datagram on an emulated link. It is a pointer-free value
// type sized for the event arena: copying it is a handful of word moves
// and a recycled slot retains no heap references. Fields beyond Seq are
// interpreted per Kind; unused fields stay zero.
type Packet struct {
	// Seq is the data sequence number (Data, RateData) or the
	// cumulative acknowledgment number (Ack).
	Seq uint64
	// Sent is the send timestamp (RateData) or the echoed send
	// timestamp for RTT measurement (Feedback).
	Sent float64
	// Rate is the receive rate reported by TFRC feedback (pkts/s).
	Rate float64
	// P is the loss-event rate reported by TFRC feedback.
	P float64
	// Flow identifies the sending flow when several share a link; the
	// per-flow link counters and multi-flow traces key on it. Single
	// flow runs leave it 0.
	Flow int32
	// Kind discriminates the payload; the zero value is Data.
	Kind Kind
	// Retx marks TCP retransmissions (diagnostic only; receivers do
	// not see this bit on a real wire and never read it).
	Retx bool
}
