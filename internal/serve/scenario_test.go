package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"pftk/internal/core"
)

// TestSimulateScenarioDistinctCacheKeys pins the cache contract for
// scenario-bearing requests: the same fixed-path request with and
// without a scenario block are different canonical requests, and each
// replays exactly from its own cache entry.
func TestSimulateScenarioDistinctCacheKeys(t *testing.T) {
	s, reg := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	plain := `{"loss_rate":0.01,"duration":10,"seed":42}`
	scen := `{"loss_rate":0.01,"duration":10,"seed":42,` +
		`"scenario":{"name":"step","phases":[{"at":5,"loss":{"rate":0.2}}]}}`

	submit := func(body string) Job {
		t.Helper()
		rec := postJSON(s, "/v1/simulate", body)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit status %d, want 202; body %s", rec.Code, rec.Body)
		}
		var job Job
		if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
		done := waitForJob(t, s, job.ID)
		if done.Status != JobDone || done.Result == nil {
			t.Fatalf("job did not complete: %+v", done)
		}
		return done
	}

	jobPlain := submit(plain)
	// The scenario-bearing twin must MISS (distinct key) and run.
	jobScen := submit(scen)

	if jobPlain.Result.Retransmits >= jobScen.Result.Retransmits {
		t.Errorf("scenario (step to 20%% loss) should retransmit more: plain %d vs scenario %d",
			jobPlain.Result.Retransmits, jobScen.Result.Retransmits)
	}
	if len(jobPlain.Result.Phases) != 0 {
		t.Errorf("fixed-path result carries phase stats: %+v", jobPlain.Result.Phases)
	}
	if len(jobScen.Result.Phases) != 2 {
		t.Fatalf("scenario result phases = %+v, want base + step", jobScen.Result.Phases)
	}
	if jobScen.Result.Phases[1].Start != 5 {
		t.Errorf("step segment starts at %g, want 5", jobScen.Result.Phases[1].Start)
	}

	// Both replay exactly from cache.
	for _, tc := range []struct {
		body string
		want Job
	}{{plain, jobPlain}, {scen, jobScen}} {
		rec := postJSON(s, "/v1/simulate", tc.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("resubmit status %d, want 200 (cached); body %s", rec.Code, rec.Body)
		}
		var job Job
		if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
		if job.Status != JobDone || !job.Cached {
			t.Fatalf("resubmit not served from cache: %+v", job)
		}
		got, _ := json.Marshal(job.Result)
		want, _ := json.Marshal(tc.want.Result)
		if !bytes.Equal(got, want) {
			t.Fatalf("cached result differs:\n%s\nvs\n%s", got, want)
		}
	}
	snap := reg.Snapshot()
	if n := snap.Counter("serve.jobs.completed"); n != 2 {
		t.Errorf("jobs.completed = %d, want 2 (one per distinct key)", n)
	}
	if n := snap.Counter("serve.cache.hits"); n != 2 {
		t.Errorf("cache.hits = %d, want 2", n)
	}
}

// TestSimulateScenarioBadRequests pins request-level scenario
// validation: schema violations and unknown fields are 400s, not jobs.
func TestSimulateScenarioBadRequests(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		wantInBody string
	}{
		{"empty phase", `{"loss_rate":0.01,"scenario":{"phases":[{"at":1}]}}`, "changes nothing"},
		{"bad fault kind", `{"loss_rate":0.01,"scenario":{"faults":[{"kind":"fire","start":0,"dur":1}]}}`, "unknown kind"},
		{"non-increasing phases", `{"loss_rate":0.01,"scenario":{"phases":[{"at":2,"rtt":0.2},{"at":2,"rtt":0.3}]}}`, "strictly increasing"},
		{"unknown scenario field", `{"loss_rate":0.01,"scenario":{"phazes":[]}}`, "bad request body"},
		{"fault past declared duration", `{"loss_rate":0.01,"duration":50,` +
			`"scenario":{"duration":50,"faults":[{"kind":"outage","start":49,"dur":5}]}}`, "past scenario duration"},
		{"scenario duration exceeds run duration", `{"loss_rate":0.01,"duration":10,` +
			`"scenario":{"duration":60,"faults":[{"kind":"outage","start":20,"dur":5}]}}`, "exceeds run duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(s, "/v1/simulate", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), tc.wantInBody) {
				t.Errorf("body %q missing %q", rec.Body.String(), tc.wantInBody)
			}
		})
	}
}

// TestPredictUnsetBDefaulting is the regression test for the relocated
// TD-only b-defaulting: a /v1/predict request that leaves b unset must
// price the tdonly model at b = 2, identically to an explicit b = 2
// request — never at b = 0 (which would divide by zero inside the
// square root).
func TestPredictUnsetBDefaulting(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	eval := func(body string) float64 {
		t.Helper()
		rec := postJSON(s, "/v1/predict", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d, body %s", rec.Code, rec.Body)
		}
		var resp PredictResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Rates[ModelNameTDOnly]
	}
	unset := eval(`{"p":0.02,"rtt":0.2,"t0":2,"models":["tdonly"]}`)
	explicit := eval(`{"p":0.02,"rtt":0.2,"t0":2,"b":2,"models":["tdonly"]}`)
	want := core.SendRateTDOnly(0.02, 0.2, 2)
	if unset != explicit || unset != want {
		t.Errorf("tdonly with unset b = %g, explicit b=2 = %g, want %g", unset, explicit, want)
	}
}
