// Package serve implements pftkd, the throughput-prediction and
// simulation service: a stdlib-only HTTP JSON API over the PFTK model
// family and the packet-level validation simulator.
//
//	POST /v1/predict   model predictions for one point or a batch
//	POST /v1/simulate  submit a deterministic simulation as an async job
//	GET  /v1/jobs/{id} poll a submitted job
//	GET  /v1/metrics   current metrics snapshot
//	GET  /healthz      liveness and queue state
//
// Internally every piece of work flows through one bounded job queue
// feeding a fixed worker pool (internal/workpool). Predictions are
// executed synchronously (the handler waits for its pool job);
// simulations are asynchronous jobs polled via /v1/jobs. When the queue
// is full the service sheds load with 429 + Retry-After instead of
// queueing unboundedly — it never drops connections. Finished work lands
// in an LRU cache keyed by a canonical request hash: requests are
// normalized (defaults filled, model lists sorted) before hashing, and
// simulations are seeded and deterministic, so a cache hit is exact and a
// resubmitted simulation returns the identical result without re-running.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pftk/internal/obs"
	"pftk/internal/tracez"
	"pftk/internal/workpool"
)

// Config sizes the service. Zero values mean defaults.
type Config struct {
	// Workers is the size of the worker pool; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the job queue; default 256. A full queue turns
	// into 429 responses.
	QueueDepth int
	// CacheEntries bounds the result LRU; default 4096.
	CacheEntries int
	// MaxBatch bounds the number of points in one predict batch;
	// default 1024.
	MaxBatch int
	// MaxJobs bounds retained finished jobs; default 4096.
	MaxJobs int
	// RetryAfter is the hint returned with 429 responses; default 1 s.
	RetryAfter time.Duration
	// Registry receives service metrics; nil disables them at zero
	// cost (the obs nil-handle convention).
	Registry *obs.Registry
	// Tracer records request-scoped spans (root per request, children
	// for admission, cache, queue-wait, eval, encode); nil disables
	// tracing at zero cost (the tracez nil-handle convention). The same
	// tracer is installed on the worker pool for per-job wait/service
	// spans.
	Tracer *tracez.Tracer
	// AccessLog receives one structured line per request; nil disables
	// access logging. Writes are serialized by the server.
	AccessLog io.Writer
	// FlightEvents sizes the per-simulation flight recorder ring (0
	// selects the default capacity, negative disables recording). On a
	// simulation panic the recorder dump is written to AccessLog and
	// the job fails instead of crashing a worker.
	FlightEvents int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 4096
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1024
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// latencyBuckets spans 100 µs to 10 s, the range from an in-memory
// prediction to a long queued simulation.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Server is the pftkd HTTP service. Create one with New; it implements
// http.Handler.
type Server struct {
	cfg    Config
	pool   *workpool.Pool
	cache  *lruCache
	jobs   *jobStore
	mux    *http.ServeMux
	closed atomic.Bool

	// reqSeq numbers requests that arrive without an X-Request-Id.
	reqSeq atomic.Uint64
	// logMu serializes access-log lines; io.Writer is not assumed
	// concurrency-safe.
	logMu sync.Mutex

	// Metric handles; all nil (free no-ops) without a registry.
	mRequests    *obs.Counter
	m2xx, m4xx   *obs.Counter
	m5xx         *obs.Counter
	mRejected    *obs.Counter
	mLatency     *obs.Histogram
	mQueueDepth  *obs.Gauge
	mCacheHits   *obs.Counter
	mCacheMisses *obs.Counter
	mPredictPts  *obs.Counter
	mJobsSub     *obs.Counter
	mJobsDone    *obs.Counter
	mJobsFailed  *obs.Counter
}

// New returns a ready-to-serve Server. Callers must Close it to drain
// in-flight jobs.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:   cfg,
		pool:  workpool.New(cfg.Workers, cfg.QueueDepth),
		cache: newLRUCache(cfg.CacheEntries),
		jobs:  newJobStore(cfg.MaxJobs),
		mux:   http.NewServeMux(),

		mRequests:    reg.Counter("serve.http.requests"),
		m2xx:         reg.Counter("serve.http.responses.2xx"),
		m4xx:         reg.Counter("serve.http.responses.4xx"),
		m5xx:         reg.Counter("serve.http.responses.5xx"),
		mRejected:    reg.Counter("serve.http.rejected"),
		mLatency:     reg.Histogram("serve.http.latency.seconds", latencyBuckets),
		mQueueDepth:  reg.Gauge("serve.queue.depth"),
		mCacheHits:   reg.Counter("serve.cache.hits"),
		mCacheMisses: reg.Counter("serve.cache.misses"),
		mPredictPts:  reg.Counter("serve.predict.points"),
		mJobsSub:     reg.Counter("serve.jobs.submitted"),
		mJobsDone:    reg.Counter("serve.jobs.completed"),
		mJobsFailed:  reg.Counter("serve.jobs.failed"),
	}
	s.pool.SetTracer(cfg.Tracer)
	if cfg.Tracer != nil {
		// The span view rides on the service address, so one port serves
		// both traffic and its traces.
		s.mux.Handle("GET /debug/tracez", cfg.Tracer.Handler())
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// Close stops admitting work and blocks until every accepted job has
// finished — the drain half of graceful shutdown. The HTTP listener (if
// any) is the caller's to stop first.
func (s *Server) Close() {
	s.closed.Store(true)
	s.pool.Close()
}

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// maxRequestIDLen bounds a caller-supplied X-Request-Id; longer values
// are replaced with a server-assigned ID so logs and spans stay
// bounded.
const maxRequestIDLen = 128

// requestID returns the caller's X-Request-Id when usable, or assigns
// the next server-generated ID.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= maxRequestIDLen {
		return id
	}
	return fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
}

// routeName maps a request to its bounded span name: the method plus
// the route pattern, with path parameters collapsed so span names stay
// low-cardinality.
func routeName(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/v1/jobs/") {
		path = "/v1/jobs/{id}"
	}
	return r.Method + " " + path
}

// ServeHTTP implements http.Handler with request accounting around the
// route table: it assigns (or propagates) the X-Request-Id, opens the
// request's root span, and emits one access-log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mRequests.Inc()
	s.mQueueDepth.Set(float64(s.pool.QueueDepth()))

	reqID := s.requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	root := s.cfg.Tracer.StartRoot(routeName(r))
	root.SetAttr("request_id", reqID)
	r = r.WithContext(tracez.NewContext(r.Context(), &root))
	r.Header.Set("X-Request-Id", reqID)

	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)

	elapsed := time.Since(start).Seconds()
	s.mLatency.Observe(elapsed)
	switch {
	case sw.code >= 500:
		s.m5xx.Inc()
	case sw.code >= 400:
		s.m4xx.Inc()
	default:
		s.m2xx.Inc()
	}
	root.SetAttr("status", strconv.Itoa(sw.code))
	if sw.code >= 400 {
		root.SetError(http.StatusText(sw.code))
	}
	root.End()
	s.accessLog(r, sw, reqID, elapsed, &root)
}

// accessLog writes the request's structured log line, if logging is
// configured. The queue/service split is read back from the response
// headers the handlers set, so the log agrees with what the client saw.
func (s *Server) accessLog(r *http.Request, sw *statusWriter, reqID string, elapsed float64, root *tracez.Span) {
	if s.cfg.AccessLog == nil {
		return
	}
	var trace string
	if root.Enabled() {
		trace = fmt.Sprintf(" trace=%016x", root.Trace())
	}
	var split string
	if q := sw.Header().Get("X-Queue-Seconds"); q != "" {
		split = fmt.Sprintf(" queue_seconds=%s service_seconds=%s", q, sw.Header().Get("X-Service-Seconds"))
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	_, _ = fmt.Fprintf(s.cfg.AccessLog, "request_id=%s method=%s path=%s status=%d duration_seconds=%.6f%s%s\n",
		reqID, r.Method, r.URL.Path, sw.code, elapsed, split, trace)
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON encodes v with the given status. Encoding failures past the
// header cannot be reported to the client; they surface in the 5xx
// counter via a best-effort disconnect.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError sends the JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// rejectOverload sends the 429 + Retry-After admission-control response.
func (s *Server) rejectOverload(w http.ResponseWriter) {
	s.mRejected.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeError(w, http.StatusTooManyRequests, "job queue full, retry later")
}

// decodeStrict decodes exactly one JSON value from the body, rejecting
// unknown fields and trailing garbage.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// handleHealthz reports liveness and queue state.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.closed.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"workers":     s.cfg.Workers,
		"queue_depth": s.pool.QueueDepth(),
		"cache_size":  s.cache.len(),
	})
}

// handleMetrics serves the registry snapshot (empty without a registry).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Registry.Snapshot())
}

// predictPayload accepts both request shapes of /v1/predict: a single
// point (top-level fields) or a batch ("requests" array).
type predictPayload struct {
	PredictRequest
	Requests []PredictRequest `json:"requests,omitempty"`
}

// BatchResponse carries per-point results of a predict batch, in request
// order.
type BatchResponse struct {
	Results []PredictResponse `json:"results"`
}

// handlePredict evaluates the model family at one point or a batch of
// points. The computation itself runs on the worker pool — the handler
// goroutine only parses, consults the cache, and waits — so prediction
// load is subject to the same admission control as simulations.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	root := tracez.FromContext(r.Context())
	var payload predictPayload
	if err := decodeStrict(r, &payload); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	batch := payload.Requests != nil
	reqs := payload.Requests
	if !batch {
		reqs = []PredictRequest{payload.PredictRequest}
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(reqs) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(reqs), s.cfg.MaxBatch)
		return
	}
	s.mPredictPts.Add(uint64(len(reqs)))

	// Normalize and validate everything before doing any work, so a bad
	// point fails the request instead of half-computing it.
	keys := make([]string, len(reqs))
	for i := range reqs {
		reqs[i] = reqs[i].normalize()
		if err := reqs[i].validate(); err != nil {
			if batch {
				writeError(w, http.StatusBadRequest, "request %d: %v", i, err)
			} else {
				writeError(w, http.StatusBadRequest, "%v", err)
			}
			return
		}
		keys[i] = canonicalKey("predict", reqs[i])
	}

	// Serve what the cache already knows; compute only the misses.
	results := make([]PredictResponse, len(reqs))
	var misses []int
	cacheSp := root.StartChild("cache")
	for i, key := range keys {
		if v, ok := s.cache.get(key); ok {
			s.mCacheHits.Inc()
			results[i] = v.(PredictResponse)
			continue
		}
		s.mCacheMisses.Inc()
		misses = append(misses, i)
	}
	cacheSp.SetAttr("hits", strconv.Itoa(len(reqs)-len(misses)))
	cacheSp.SetAttr("misses", strconv.Itoa(len(misses)))
	cacheSp.End()

	// The queue-wait/service split is measured on the wall clock and
	// echoed in response headers, so load generators can separate time
	// in the admission queue from model evaluation without a tracer.
	var queueWait, service time.Duration
	if len(misses) > 0 {
		var jobErr error
		done := make(chan struct{})
		submitted := time.Now()
		submittedTrace := s.cfg.Tracer.NowSeconds()
		adm := root.StartChild("admission")
		accepted := s.pool.TrySubmit(func() {
			defer close(done)
			picked := time.Now()
			queueWait = picked.Sub(submitted)
			qsp := root.StartChildAt("queue-wait", submittedTrace)
			qsp.End()
			esp := root.StartChild("eval")
			defer esp.End()
			for _, i := range misses {
				resp, err := predict(reqs[i])
				if err != nil {
					jobErr = fmt.Errorf("request %d: %w", i, err)
					esp.SetError(jobErr.Error())
					service = time.Since(picked)
					return
				}
				results[i] = resp
				s.cache.put(keys[i], resp)
			}
			service = time.Since(picked)
		})
		if !accepted {
			adm.SetError("queue full")
			adm.End()
			s.rejectOverload(w)
			return
		}
		adm.End()
		<-done
		if jobErr != nil {
			writeError(w, http.StatusBadRequest, "%v", jobErr)
			return
		}
	}
	w.Header().Set("X-Queue-Seconds", fmt.Sprintf("%.6f", queueWait.Seconds()))
	w.Header().Set("X-Service-Seconds", fmt.Sprintf("%.6f", service.Seconds()))
	enc := root.StartChild("encode")
	defer enc.End()
	if batch {
		writeJSON(w, http.StatusOK, BatchResponse{Results: results})
		return
	}
	writeJSON(w, http.StatusOK, results[0])
}

// handleSimulate admits one simulation job. Cache hits complete
// immediately (200, status done, cached true); misses are queued on the
// worker pool (202) and polled via /v1/jobs/{id}; a full queue is 429.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	root := tracez.FromContext(r.Context())
	reqID := r.Header.Get("X-Request-Id")
	var req SimulateRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req = req.normalize()
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := canonicalKey("simulate", req)
	cacheSp := root.StartChild("cache")
	if v, ok := s.cache.get(key); ok {
		s.mCacheHits.Inc()
		cacheSp.SetAttr("hit", "true")
		cacheSp.End()
		job := s.jobs.create(req, reqID)
		s.jobs.finish(job.ID, v.(SimulateResult), true)
		job, _ = s.jobs.get(job.ID)
		writeJSON(w, http.StatusOK, job)
		return
	}
	s.mCacheMisses.Inc()
	cacheSp.SetAttr("hit", "false")
	cacheSp.End()
	job := s.jobs.create(req, reqID)
	submittedTrace := s.cfg.Tracer.NowSeconds()
	adm := root.StartChild("admission")
	// The job outlives the handler: its spans hang off the (by then
	// ended) root, which is valid — the child records still carry the
	// request's trace ID, so /debug/tracez ties the async work back to
	// the submission.
	traceRef := *root
	accepted := s.pool.TrySubmit(func() {
		s.jobs.setRunning(job.ID)
		qsp := traceRef.StartChildAt("queue-wait", submittedTrace)
		qsp.End()
		esp := traceRef.StartChild("eval")
		res, dump, err := runSimulationGuarded(req, s.cfg.FlightEvents)
		if err != nil {
			esp.SetError(err.Error())
			esp.End()
			s.jobs.fail(job.ID, err.Error())
			s.mJobsFailed.Inc()
			s.logSimFailure(job.ID, err, dump)
			return
		}
		esp.End()
		s.cache.put(key, res)
		s.jobs.finish(job.ID, res, false)
		s.mJobsDone.Inc()
	})
	if !accepted {
		adm.SetError("queue full")
		adm.End()
		s.jobs.fail(job.ID, "rejected: queue full")
		s.mJobsFailed.Inc()
		s.rejectOverload(w)
		return
	}
	adm.End()
	s.mJobsSub.Inc()
	writeJSON(w, http.StatusAccepted, job)
}

// logSimFailure records a failed (typically panicked) simulation with
// its flight-recorder dump — the engine's black box for post-mortems.
func (s *Server) logSimFailure(jobID string, err error, dump string) {
	if s.cfg.AccessLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	_, _ = fmt.Fprintf(s.cfg.AccessLog, "job=%s simulation_failed error=%q\n%s", jobID, err, dump)
}

// handleJob serves one job's current state.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}
