// Package serve implements pftkd, the throughput-prediction and
// simulation service: a stdlib-only HTTP JSON API over the PFTK model
// family and the packet-level validation simulator.
//
//	POST /v1/predict   model predictions for one point or a batch
//	POST /v1/simulate  submit a deterministic simulation as an async job
//	GET  /v1/jobs/{id} poll a submitted job
//	GET  /v1/metrics   current metrics snapshot
//	GET  /healthz      liveness and queue state
//
// Internally every piece of work flows through one bounded job queue
// feeding a fixed worker pool (internal/workpool). Predictions are
// executed synchronously (the handler waits for its result); simulations
// are asynchronous jobs polled via /v1/jobs. When the queue is full the
// service sheds load with 429 + Retry-After instead of queueing
// unboundedly — it never drops connections. Finished work lands in
// hash-sharded LRU caches keyed by a canonical request hash: requests are
// normalized (defaults filled, model lists sorted) before hashing, and
// simulations are seeded and deterministic, so a cache hit is exact and a
// resubmitted simulation returns the identical result without re-running.
//
// The hot path is built for core-count scaling: the result caches are
// sharded (per-shard mutexes, typed entries), identical in-flight
// requests are coalesced onto one evaluation (singleflight — N concurrent
// askers cost one predict() or one simulation), and single-point predict
// evaluations from different connections are micro-batched into shared
// worker-pool jobs under a configurable latency budget (Config.BatchWait).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pftk/internal/obs"
	"pftk/internal/tracez"
	"pftk/internal/workpool"
)

// Config sizes the service. Zero values mean defaults.
type Config struct {
	// Workers is the size of the worker pool; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the job queue; default 256. A full queue turns
	// into 429 responses.
	QueueDepth int
	// CacheEntries bounds each result LRU (predictions and simulations
	// are cached separately); default 4096.
	CacheEntries int
	// CacheShards is the shard count of each result LRU, rounded up to a
	// power of two; default a few shards per core.
	CacheShards int
	// MaxBatch bounds the number of points in one predict batch, and the
	// number of queued single-point evaluations micro-batched into one
	// worker-pool job; default 1024.
	MaxBatch int
	// BatchWait is the micro-batching latency budget: how long a queued
	// single-point predict evaluation may wait for company before its
	// batch is dispatched. 0 (the default) dispatches immediately —
	// batching then only aggregates what is already queued.
	BatchWait time.Duration
	// MaxJobs bounds retained finished jobs; default 4096.
	MaxJobs int
	// RetryAfter is the hint returned with 429 responses; default 1 s.
	RetryAfter time.Duration
	// Registry receives service metrics; nil disables them at zero
	// cost (the obs nil-handle convention).
	Registry *obs.Registry
	// Tracer records request-scoped spans (root per request, children
	// for admission, cache, queue-wait, eval, encode); nil disables
	// tracing at zero cost (the tracez nil-handle convention). The same
	// tracer is installed on the worker pool for per-job wait/service
	// spans.
	Tracer *tracez.Tracer
	// AccessLog receives one structured line per request; nil disables
	// access logging. Writes are serialized by the server.
	AccessLog io.Writer
	// FlightEvents sizes the per-simulation flight recorder ring (0
	// selects the default capacity, negative disables recording). On a
	// simulation panic the recorder dump is written to AccessLog and
	// the job fails instead of crashing a worker.
	FlightEvents int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 4096
	}
	if c.CacheShards < 1 {
		c.CacheShards = defaultCacheShards()
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1024
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// latencyBuckets spans 100 µs to 10 s, the range from an in-memory
// prediction to a long queued simulation.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// errOverloaded marks a flight that was shed instead of evaluated; the
// waiting handlers translate it into 429 + Retry-After.
var errOverloaded = errors.New("job queue full")

// cachedPredict pairs a finished prediction with its encoded single-point
// response body (JSON plus trailing newline, byte-identical to what
// json.Encoder produced before bodies were cached), so steady-state hits
// skip JSON encoding entirely.
type cachedPredict struct {
	resp PredictResponse
	body []byte
}

// Server is the pftkd HTTP service. Create one with New; it implements
// http.Handler.
type Server struct {
	cfg       Config
	pool      *workpool.Pool
	predCache *shardedLRU[cachedPredict]
	simCache  *shardedLRU[SimulateResult]
	flights   *flightGroup[predictOutcome]
	simflight *simFlights
	batch     *batcher
	jobs      *jobStore
	mux       *http.ServeMux
	log       *logSink
	closed    atomic.Bool

	// reqSeq numbers requests that arrive without an X-Request-Id.
	reqSeq atomic.Uint64

	// Metric handles; all nil (free no-ops) without a registry.
	mRequests      *obs.Counter
	m2xx, m4xx     *obs.Counter
	m5xx           *obs.Counter
	mRejected      *obs.Counter
	mLatency       *obs.Histogram
	mQueueDepth    *obs.Gauge
	mCacheHits     *obs.Counter
	mCacheMisses   *obs.Counter
	mPredictPts    *obs.Counter
	mEvals         *obs.Counter
	mCoalesced     *obs.Counter
	mBatchJobs     *obs.Counter
	mJobsSub       *obs.Counter
	mJobsDone      *obs.Counter
	mJobsFailed    *obs.Counter
	mJobsCoalesced *obs.Counter
}

// New returns a ready-to-serve Server. Callers must Close it to drain
// in-flight jobs.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:       cfg,
		pool:      workpool.New(cfg.Workers, cfg.QueueDepth),
		predCache: newShardedLRU[cachedPredict](cfg.CacheEntries, cfg.CacheShards),
		simCache:  newShardedLRU[SimulateResult](cfg.CacheEntries, cfg.CacheShards),
		flights:   newFlightGroup[predictOutcome](),
		simflight: newSimFlights(),
		jobs:      newJobStore(cfg.MaxJobs),
		mux:       http.NewServeMux(),
		log:       newLogSink(cfg.AccessLog),

		mRequests:      reg.Counter("serve.http.requests"),
		m2xx:           reg.Counter("serve.http.responses.2xx"),
		m4xx:           reg.Counter("serve.http.responses.4xx"),
		m5xx:           reg.Counter("serve.http.responses.5xx"),
		mRejected:      reg.Counter("serve.http.rejected"),
		mLatency:       reg.Histogram("serve.http.latency.seconds", latencyBuckets),
		mQueueDepth:    reg.Gauge("serve.queue.depth"),
		mCacheHits:     reg.Counter("serve.cache.hits"),
		mCacheMisses:   reg.Counter("serve.cache.misses"),
		mPredictPts:    reg.Counter("serve.predict.points"),
		mEvals:         reg.Counter("serve.predict.evals"),
		mCoalesced:     reg.Counter("serve.predict.coalesced"),
		mBatchJobs:     reg.Counter("serve.batch.jobs"),
		mJobsSub:       reg.Counter("serve.jobs.submitted"),
		mJobsDone:      reg.Counter("serve.jobs.completed"),
		mJobsFailed:    reg.Counter("serve.jobs.failed"),
		mJobsCoalesced: reg.Counter("serve.jobs.coalesced"),
	}
	s.batch = newBatcher(cfg.MaxBatch, cfg.BatchWait, cfg.QueueDepth, s.runBatch)
	s.pool.SetTracer(cfg.Tracer)
	if cfg.Tracer != nil {
		// The span view rides on the service address, so one port serves
		// both traffic and its traces.
		s.mux.Handle("GET /debug/tracez", cfg.Tracer.Handler())
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// Close stops admitting work and blocks until every accepted job has
// finished — the drain half of graceful shutdown. The batcher closes
// before the pool so its final batches can still submit; the HTTP
// listener (if any) is the caller's to stop first.
func (s *Server) Close() {
	s.closed.Store(true)
	s.batch.close()
	s.pool.Close()
}

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// maxRequestIDLen bounds a caller-supplied X-Request-Id; longer values
// are replaced with a server-assigned ID so logs and spans stay
// bounded.
const maxRequestIDLen = 128

// requestID returns the caller's X-Request-Id when usable, or assigns
// the next server-generated ID.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= maxRequestIDLen {
		return id
	}
	return fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
}

// routeName maps a request to its bounded span name: the method plus
// the route pattern, with path parameters collapsed so span names stay
// low-cardinality.
func routeName(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/v1/jobs/") {
		path = "/v1/jobs/{id}"
	}
	return r.Method + " " + path
}

// ServeHTTP implements http.Handler with request accounting around the
// route table: it assigns (or propagates) the X-Request-Id, opens the
// request's root span, and emits one access-log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mRequests.Inc()
	s.mQueueDepth.Set(float64(s.pool.QueueDepth()))

	reqID := s.requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	root := s.cfg.Tracer.StartRoot(routeName(r))
	root.SetAttr("request_id", reqID)
	r = r.WithContext(tracez.NewContext(r.Context(), &root))
	r.Header.Set("X-Request-Id", reqID)

	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)

	elapsed := time.Since(start).Seconds()
	s.mLatency.Observe(elapsed)
	switch {
	case sw.code >= 500:
		s.m5xx.Inc()
	case sw.code >= 400:
		s.m4xx.Inc()
	default:
		s.m2xx.Inc()
	}
	root.SetAttr("status", strconv.Itoa(sw.code))
	if sw.code >= 400 {
		root.SetError(http.StatusText(sw.code))
	}
	root.End()
	s.accessLog(r, sw, reqID, elapsed, &root)
}

// accessLog writes the request's structured log line, if logging is
// configured. The queue/service split is read back from the response
// headers the handlers set, so the log agrees with what the client saw.
// The line is formatted here, lock-free, and handed to the sink.
func (s *Server) accessLog(r *http.Request, sw *statusWriter, reqID string, elapsed float64, root *tracez.Span) {
	if s.log == nil {
		return
	}
	var trace string
	if root.Enabled() {
		trace = fmt.Sprintf(" trace=%016x", root.Trace())
	}
	var split string
	if q := sw.Header().Get("X-Queue-Seconds"); q != "" {
		split = fmt.Sprintf(" queue_seconds=%s service_seconds=%s", q, sw.Header().Get("X-Service-Seconds"))
	}
	line := fmt.Appendf(nil, "request_id=%s method=%s path=%s status=%d duration_seconds=%.6f%s%s\n",
		reqID, r.Method, r.URL.Path, sw.code, elapsed, split, trace)
	s.log.append(line)
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON encodes v with the given status. Encoding failures past the
// header cannot be reported to the client; they surface in the 5xx
// counter via a best-effort disconnect.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONBytes sends an already-encoded JSON body (newline included).
func writeJSONBytes(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// writeError sends the JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// rejectOverload sends the 429 + Retry-After admission-control response.
func (s *Server) rejectOverload(w http.ResponseWriter) {
	s.mRejected.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeError(w, http.StatusTooManyRequests, "job queue full, retry later")
}

// setSecondsHeader writes a duration header in the fixed %.6f format the
// load generators parse, without going through fmt.
func setSecondsHeader(w http.ResponseWriter, name string, d time.Duration) {
	var arr [24]byte
	w.Header().Set(name, string(strconv.AppendFloat(arr[:0], d.Seconds(), 'f', 6, 64)))
}

// decodeStrict decodes exactly one JSON value from the body, rejecting
// unknown fields and trailing garbage.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// handleHealthz reports liveness and queue state.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.closed.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"workers":     s.cfg.Workers,
		"queue_depth": s.pool.QueueDepth(),
		"cache_size":  s.predCache.len() + s.simCache.len(),
	})
}

// handleMetrics serves the registry snapshot (empty without a registry).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Registry.Snapshot())
}

// predictPayload accepts both request shapes of /v1/predict: a single
// point (top-level fields) or a batch ("requests" array).
type predictPayload struct {
	PredictRequest
	Requests []PredictRequest `json:"requests,omitempty"`
}

// BatchResponse carries per-point results of a predict batch, in request
// order.
type BatchResponse struct {
	Results []PredictResponse `json:"results"`
}

// pendingFlight is one miss the handler is waiting on: the point's index
// in its request plus the (possibly shared) flight computing it.
type pendingFlight struct {
	i  int
	fl *inflight[predictOutcome]
}

// handlePredict evaluates the model family at one point or a batch of
// points. The handler goroutine only parses, consults the cache, and
// waits: misses are coalesced onto singleflight evaluations and
// dispatched through the micro-batcher onto the worker pool, so duplicate
// in-flight points cost one evaluation process-wide and prediction load
// is subject to the same admission control as simulations.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	root := tracez.FromContext(r.Context())
	var payload predictPayload
	if err := decodeStrict(r, &payload); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	batch := payload.Requests != nil
	reqs := payload.Requests
	if !batch {
		reqs = []PredictRequest{payload.PredictRequest}
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(reqs) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(reqs), s.cfg.MaxBatch)
		return
	}
	s.mPredictPts.Add(uint64(len(reqs)))

	// Normalize and validate everything before doing any work, so a bad
	// point fails the request instead of half-computing it.
	keys := make([]cacheKey, len(reqs))
	for i := range reqs {
		reqs[i] = reqs[i].normalize()
		if err := reqs[i].validate(); err != nil {
			if batch {
				writeError(w, http.StatusBadRequest, "request %d: %v", i, err)
			} else {
				writeError(w, http.StatusBadRequest, "%v", err)
			}
			return
		}
		keys[i] = predictKey(reqs[i])
	}

	// Serve what the cache already knows; join or lead a flight for each
	// miss. Duplicate keys — within this batch or across concurrent
	// requests — share one flight and therefore one evaluation.
	results := make([]PredictResponse, len(reqs))
	var singleBody []byte
	var waits []pendingFlight
	var leaders []*evalItem
	cacheSp := root.StartChild("cache")
	for i := range reqs {
		if v, ok := s.predCache.get(keys[i]); ok {
			s.mCacheHits.Inc()
			results[i] = v.resp
			singleBody = v.body
			continue
		}
		s.mCacheMisses.Inc()
		fl, leader := s.flights.join(keys[i])
		if leader {
			leaders = append(leaders, &evalItem{req: reqs[i], key: keys[i], fl: fl})
		} else {
			s.mCoalesced.Inc()
		}
		waits = append(waits, pendingFlight{i: i, fl: fl})
	}
	cacheSp.SetAttr("hits", strconv.Itoa(len(reqs)-len(waits)))
	cacheSp.SetAttr("misses", strconv.Itoa(len(waits)))
	cacheSp.End()

	// The queue-wait/service split is measured on the wall clock and
	// echoed in response headers, so load generators can separate time
	// in the admission queue from model evaluation without a tracer.
	var queueWait, service time.Duration
	if len(waits) > 0 {
		submitted := time.Now()
		submittedTrace := s.cfg.Tracer.NowSeconds()
		// Flights may outlive this handler (the client can hang up while
		// waiters remain); the span copy keeps the trace ID valid for the
		// async child spans, as with simulation jobs.
		traceRef := *root
		adm := root.StartChild("admission")
		shed := false
		for _, it := range leaders {
			it.submitted = submitted
			it.submittedTrace = submittedTrace
			it.trace = traceRef
			if !s.batch.enqueue(it) {
				s.flights.complete(it.key, it.fl, predictOutcome{}, errOverloaded)
				shed = true
			}
		}
		if shed {
			adm.SetError("queue full")
		}
		adm.End()

		for _, p := range waits {
			select {
			case <-p.fl.done:
			case <-r.Context().Done():
				// The client is gone. The flight still completes into the
				// cache for whoever asks next; there is just no one left
				// to answer here.
				return
			}
			if err := p.fl.err; err != nil {
				if errors.Is(err, errOverloaded) {
					s.rejectOverload(w)
					return
				}
				writeError(w, http.StatusBadRequest, "request %d: %v", p.i, err)
				return
			}
			out := p.fl.val
			results[p.i] = out.resp
			singleBody = out.body
			if out.queueWait > queueWait {
				queueWait = out.queueWait
			}
			if out.service > service {
				service = out.service
			}
		}
	}
	setSecondsHeader(w, "X-Queue-Seconds", queueWait)
	setSecondsHeader(w, "X-Service-Seconds", service)
	enc := root.StartChild("encode")
	defer enc.End()
	if batch {
		writeJSON(w, http.StatusOK, BatchResponse{Results: results})
		return
	}
	// Single-point responses reuse the encoded body cached with the
	// result — byte-identical to encoding results[0] here.
	writeJSONBytes(w, http.StatusOK, singleBody)
}

// runBatch dispatches one drained micro-batch as a single worker-pool
// job. A full pool sheds the whole batch: every flight completes as
// overloaded and the waiting handlers answer 429.
func (s *Server) runBatch(items []*evalItem) {
	s.mBatchJobs.Inc()
	accepted := s.pool.TrySubmit(func() {
		picked := time.Now()
		for _, it := range items {
			s.evalOne(it, picked)
		}
	})
	if !accepted {
		for _, it := range items {
			s.flights.complete(it.key, it.fl, predictOutcome{}, errOverloaded)
		}
	}
}

// evalOne evaluates one coalesced point and completes its flight. The
// cache is re-checked first: between this item's miss and its dispatch, a
// completed racer may have published the result (flights clear only
// after the cache put), and recomputing would waste the win.
func (s *Server) evalOne(it *evalItem, picked time.Time) {
	queueWait := picked.Sub(it.submitted)
	qsp := it.trace.StartChildAt("queue-wait", it.submittedTrace)
	qsp.End()
	if v, ok := s.predCache.get(it.key); ok {
		s.flights.complete(it.key, it.fl, predictOutcome{resp: v.resp, body: v.body, queueWait: queueWait}, nil)
		return
	}
	esp := it.trace.StartChild("eval")
	t := time.Now()
	resp, err := predict(it.req)
	s.mEvals.Inc()
	if err != nil {
		esp.SetError(err.Error())
		esp.End()
		s.flights.complete(it.key, it.fl, predictOutcome{queueWait: queueWait, service: time.Since(t)}, err)
		return
	}
	esp.End()
	data, merr := json.Marshal(resp)
	if merr != nil {
		// Responses are plain structs of numbers and strings; an encoding
		// failure is a programming error, not an input error.
		panic(fmt.Sprintf("serve: encode predict response: %v", merr))
	}
	body := append(data, '\n')
	s.predCache.put(it.key, cachedPredict{resp: resp, body: body})
	s.flights.complete(it.key, it.fl, predictOutcome{resp: resp, body: body, queueWait: queueWait, service: time.Since(t)}, nil)
}

// handleSimulate admits one simulation job. Cache hits complete
// immediately (200, status done, cached true); misses are queued on the
// worker pool (202) and polled via /v1/jobs/{id}; a miss identical to an
// in-flight simulation is coalesced — it gets its own job ID but rides
// the running evaluation (202, no extra worker); a full queue is 429.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	root := tracez.FromContext(r.Context())
	reqID := r.Header.Get("X-Request-Id")
	var req SimulateRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req = req.normalize()
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := canonicalKey("simulate", req)
	cacheSp := root.StartChild("cache")
	if v, ok := s.simCache.get(key); ok {
		s.mCacheHits.Inc()
		cacheSp.SetAttr("hit", "true")
		cacheSp.End()
		job := s.jobs.create(req, reqID)
		s.jobs.finish(job.ID, v, true)
		job, _ = s.jobs.get(job.ID)
		writeJSON(w, http.StatusOK, job)
		return
	}
	s.mCacheMisses.Inc()
	cacheSp.SetAttr("hit", "false")
	cacheSp.End()
	job := s.jobs.create(req, reqID)
	if !s.simflight.join(key, job.ID) {
		// An identical simulation is already running; this job completes
		// from the leader's result without occupying a worker.
		s.mJobsCoalesced.Inc()
		s.mJobsSub.Inc()
		adm := root.StartChild("admission")
		adm.SetAttr("coalesced", "true")
		adm.End()
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	submittedTrace := s.cfg.Tracer.NowSeconds()
	adm := root.StartChild("admission")
	// The job outlives the handler: its spans hang off the (by then
	// ended) root, which is valid — the child records still carry the
	// request's trace ID, so /debug/tracez ties the async work back to
	// the submission.
	traceRef := *root
	accepted := s.pool.TrySubmit(func() {
		s.jobs.setRunning(job.ID)
		qsp := traceRef.StartChildAt("queue-wait", submittedTrace)
		qsp.End()
		// A fresh leader can race an identical just-finished run (the
		// flight clears after the cache put); re-checking here turns that
		// into a free completion instead of a duplicate simulation.
		if v, ok := s.simCache.get(key); ok {
			s.jobs.finish(job.ID, v, true)
			s.mJobsDone.Inc()
			for _, id := range s.simflight.take(key) {
				s.jobs.finish(id, v, true)
				s.mJobsDone.Inc()
			}
			return
		}
		esp := traceRef.StartChild("eval")
		res, dump, err := runSimulationGuarded(req, s.cfg.FlightEvents)
		if err != nil {
			esp.SetError(err.Error())
			esp.End()
			s.jobs.fail(job.ID, err.Error())
			s.mJobsFailed.Inc()
			for _, id := range s.simflight.take(key) {
				s.jobs.fail(id, err.Error())
				s.mJobsFailed.Inc()
			}
			s.logSimFailure(job.ID, err, dump)
			return
		}
		esp.End()
		s.simCache.put(key, res)
		s.jobs.finish(job.ID, res, false)
		s.mJobsDone.Inc()
		for _, id := range s.simflight.take(key) {
			s.jobs.finish(id, res, true)
			s.mJobsDone.Inc()
		}
	})
	if !accepted {
		adm.SetError("queue full")
		adm.End()
		s.jobs.fail(job.ID, "rejected: queue full")
		s.mJobsFailed.Inc()
		for _, id := range s.simflight.take(key) {
			s.jobs.fail(id, "rejected: queue full")
			s.mJobsFailed.Inc()
		}
		s.rejectOverload(w)
		return
	}
	adm.End()
	s.mJobsSub.Inc()
	writeJSON(w, http.StatusAccepted, job)
}

// logSimFailure records a failed (typically panicked) simulation with
// its flight-recorder dump — the engine's black box for post-mortems.
func (s *Server) logSimFailure(jobID string, err error, dump string) {
	if s.log == nil {
		return
	}
	s.log.append(fmt.Appendf(nil, "job=%s simulation_failed error=%q\n%s", jobID, err, dump))
}

// handleJob serves one job's current state.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}
