package serve

import "sync"

// inflight is one coalesced evaluation. The leader writes val and err
// exactly once and then closes done; waiters read them only after done is
// closed, so no lock guards the result fields — the channel close is the
// publication barrier.
type inflight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// flightGroup deduplicates concurrent evaluations of the same canonical
// key: however many requests ask for a key while it is being computed,
// exactly one evaluation runs and every waiter shares its result. Unlike
// the cache, entries live only for the duration of the computation.
type flightGroup[V any] struct {
	mu sync.Mutex
	//pftk:guardedby mu
	calls map[cacheKey]*inflight[V]
}

func newFlightGroup[V any]() *flightGroup[V] {
	return &flightGroup[V]{calls: make(map[cacheKey]*inflight[V])}
}

// join returns the in-flight call for key, creating it when absent.
// leader is true for the creator, who is obligated to complete the call;
// everyone else just waits on done.
func (g *flightGroup[V]) join(key cacheKey) (f *inflight[V], leader bool) {
	g.mu.Lock()
	f, ok := g.calls[key]
	if !ok {
		f = &inflight[V]{done: make(chan struct{})}
		g.calls[key] = f
		leader = true
	}
	g.mu.Unlock()
	return f, leader
}

// complete publishes the result and releases every waiter. Callers must
// put a successful result into the cache *before* completing: the entry
// is removed from the table here, and a request that finds neither a
// cache hit nor an in-flight call becomes a fresh leader.
func (g *flightGroup[V]) complete(key cacheKey, f *inflight[V], val V, err error) {
	f.val = val
	f.err = err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(f.done)
}

// simFlights coalesces identical in-flight simulation jobs. Simulations
// are asynchronous (clients poll their own job ID), so instead of parking
// waiters on a channel the table records which job IDs are waiting for a
// key; the leader finishes them all from its one result.
type simFlights struct {
	mu sync.Mutex
	//pftk:guardedby mu
	waiting map[cacheKey][]string
}

func newSimFlights() *simFlights {
	return &simFlights{waiting: map[cacheKey][]string{}}
}

// join registers interest in key. The first caller becomes the leader
// (its own job ID is not recorded — the leader finishes its job directly)
// and must eventually call take; later callers' job IDs accumulate until
// the leader takes them.
func (t *simFlights) join(key cacheKey, jobID string) (leader bool) {
	t.mu.Lock()
	ids, ok := t.waiting[key]
	if ok {
		t.waiting[key] = append(ids, jobID)
	} else {
		t.waiting[key] = nil
		leader = true
	}
	t.mu.Unlock()
	return leader
}

// take removes the key's flight and returns the waiting job IDs, which
// the leader must drive to a terminal state. As with flightGroup, a
// successful result must be cached before take so late arrivals hit the
// cache instead of finding neither flight nor result.
func (t *simFlights) take(key cacheKey) []string {
	t.mu.Lock()
	ids := t.waiting[key]
	delete(t.waiting, key)
	t.mu.Unlock()
	return ids
}
