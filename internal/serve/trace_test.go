package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pftk/internal/tracez"
)

// postJSONWithID is postJSON plus a caller-supplied X-Request-Id.
func postJSONWithID(s *Server, path, body, reqID string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("X-Request-Id", reqID)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestRequestIDLifecycle follows one X-Request-Id through the whole
// pipeline: the simulate response echoes it, the job record carries it
// to completion, the trace's root span is annotated with it, and the
// root's children are visible through /debug/tracez.
func TestRequestIDLifecycle(t *testing.T) {
	tr := tracez.New(tracez.Options{Shards: 2, PerShard: 64})
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 8, Tracer: tr})
	const reqID = "lifecycle-0042"

	rec := postJSONWithID(s, "/v1/simulate", `{"loss_rate":0.02,"duration":2,"seed":7}`, reqID)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d, body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Request-Id"); got != reqID {
		t.Fatalf("response X-Request-Id = %q, want %q (the id must be echoed)", got, reqID)
	}
	var submitted Job
	if err := json.Unmarshal(rec.Body.Bytes(), &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.RequestID != reqID {
		t.Fatalf("submitted job request_id = %q, want %q", submitted.RequestID, reqID)
	}

	job := waitForJob(t, s, submitted.ID)
	if job.Status != JobDone {
		t.Fatalf("job did not complete: %+v", job)
	}
	if job.RequestID != reqID {
		t.Fatalf("completed job request_id = %q, want %q (lost across the queue)", job.RequestID, reqID)
	}

	// The job's eval span ends inside the worker, which may still be
	// committing when the job flips to done; poll for the trace.
	root, children := waitForTrace(t, tr, reqID)
	if root.Name != "POST /v1/simulate" {
		t.Errorf("root span name = %q, want POST /v1/simulate", root.Name)
	}
	names := map[string]bool{}
	for _, c := range children {
		names[c.Name] = true
	}
	for _, want := range []string{"cache", "admission", "queue-wait", "eval"} {
		if !names[want] {
			t.Errorf("root span has no %q child (children: %v)", want, names)
		}
	}

	// The same spans must be visible over the wire.
	viewRec := getPath(s, "/debug/tracez?format=json")
	if viewRec.Code != http.StatusOK {
		t.Fatalf("/debug/tracez status %d: %s", viewRec.Code, viewRec.Body)
	}
	if body := viewRec.Body.String(); !strings.Contains(body, reqID) {
		t.Errorf("/debug/tracez JSON does not mention request id %q", reqID)
	}
}

// waitForTrace polls the tracer until the root span annotated with
// reqID and its children have committed, returning both.
func waitForTrace(t *testing.T, tr *tracez.Tracer, reqID string) (tracez.Record, []tracez.Record) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := tr.Snapshot()
		var root tracez.Record
		for _, rec := range snap {
			if rec.Parent != 0 {
				continue
			}
			for _, a := range rec.Attrs {
				if a.Key == "request_id" && a.Value == reqID {
					root = rec
				}
			}
		}
		if root.Span != 0 {
			var children []tracez.Record
			for _, rec := range snap {
				if rec.Trace == root.Trace && rec.Parent == root.Span {
					children = append(children, rec)
				}
			}
			// cache, admission, queue-wait, eval: wait for all four so a
			// mid-commit snapshot cannot flake the assertions above.
			if len(children) >= 4 {
				return root, children
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace for request %q never fully committed; snapshot has %d spans", reqID, len(snap))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
