package serve

import (
	"io"
	"sync"
)

// logSink serializes access-log lines with group commit. The old design
// held one global mutex across formatting *and* the io.Writer call, so
// every request queued on the slowest part of logging; here lines are
// formatted by the requesting goroutine with no lock held, appended to a
// shared buffer under a short mutex, and written outside it. Under
// contention concurrent requests piggyback on whichever goroutine holds
// the flush lock — many lines leave in one Write — while append still
// returns only after its line has reached w, preserving the synchronous
// durability the smoke tests rely on (the file is complete the moment
// the response is on the wire).
type logSink struct {
	w io.Writer // not assumed concurrency-safe; flushMu serializes writes

	mu sync.Mutex
	//pftk:guardedby mu
	buf []byte

	flushMu sync.Mutex
	//pftk:guardedby flushMu
	spare []byte // previous buf, being (or about to be) written
}

// newLogSink returns a sink over w, or nil (a no-op sink) for nil w.
func newLogSink(w io.Writer) *logSink {
	if w == nil {
		return nil
	}
	return &logSink{w: w}
}

// append queues one preformatted line (terminator included) and returns
// after it has been flushed to the writer — by this goroutine or by a
// concurrent flusher that swept the buffer first.
func (s *logSink) append(line []byte) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.buf = append(s.buf, line...)
	s.mu.Unlock()
	s.flush()
}

// flush writes everything buffered so far. The buffer swap happens under
// mu, the Write under flushMu only — appenders never block on I/O, and
// flushers leaving the critical section guarantee any line appended
// before their swap is durable.
func (s *logSink) flush() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	s.buf, s.spare = s.spare[:0], s.buf
	s.mu.Unlock()
	if len(s.spare) == 0 {
		return
	}
	_, _ = s.w.Write(s.spare)
}
