package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// canonicalKey hashes a normalized request into its cache key. The value
// must already be normalized (defaults filled, slices sorted): JSON
// encoding of a struct is deterministic given its field values, so equal
// normalized requests — however the client spelled them — map to the same
// key. The kind prefix ("predict", "simulate") keeps the two request
// spaces from ever colliding.
func canonicalKey(kind string, v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Request types are plain structs of numbers and strings; an
		// encoding failure is a programming error, not an input error.
		panic(fmt.Sprintf("serve: canonicalKey(%s): %v", kind, err))
	}
	sum := sha256.Sum256(append([]byte(kind+"\x00"), data...))
	return hex.EncodeToString(sum[:])
}
