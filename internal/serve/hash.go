package serve

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strconv"
)

// cacheKey is the canonical request hash: a SHA-256 digest of the
// normalized request. Fixed-size binary keys keep the sharded cache and
// the singleflight table free of string headers and let the shard index
// be read straight out of the first eight digest bytes.
type cacheKey [32]byte

// canonicalKey hashes a normalized request into its cache key. The value
// must already be normalized (defaults filled, slices sorted): JSON
// encoding of a struct is deterministic given its field values, so equal
// normalized requests — however the client spelled them — map to the same
// key. The kind prefix ("predict", "simulate") keeps the two request
// spaces from ever colliding.
func canonicalKey(kind string, v any) cacheKey {
	data, err := json.Marshal(v)
	if err != nil {
		// Request types are plain structs of numbers and strings; an
		// encoding failure is a programming error, not an input error.
		panic(fmt.Sprintf("serve: canonicalKey(%s): %v", kind, err))
	}
	return sha256.Sum256(append([]byte(kind+"\x00"), data...))
}

// keySep separates fields in the hand-rolled predict encoding. It cannot
// appear in a float, an integer, or a validated model name, so the
// encoding stays injective without JSON's quoting.
const keySep = 0x1f

// predictKey is canonicalKey specialized for the predict hot path: the
// normalized, validated request is encoded with strconv into a stack
// buffer instead of going through reflection-driven json.Marshal. The
// 'g'/-1 float format is injective on float64, so two requests share a
// key exactly when their canonical forms are equal.
func predictKey(r PredictRequest) cacheKey {
	var arr [192]byte
	buf := append(arr[:0], "predict\x00"...)
	buf = strconv.AppendFloat(buf, r.P, 'g', -1, 64)
	buf = append(buf, keySep)
	buf = strconv.AppendFloat(buf, r.RTT, 'g', -1, 64)
	buf = append(buf, keySep)
	buf = strconv.AppendFloat(buf, r.T0, 'g', -1, 64)
	buf = append(buf, keySep)
	buf = strconv.AppendFloat(buf, r.Wm, 'g', -1, 64)
	buf = append(buf, keySep)
	buf = strconv.AppendInt(buf, int64(r.B), 10)
	for _, m := range r.Models {
		buf = append(buf, keySep)
		buf = append(buf, m...)
	}
	return sha256.Sum256(buf)
}
