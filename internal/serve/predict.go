package serve

import (
	"fmt"
	"math"
	"sort"

	"pftk/internal/core"
	"pftk/internal/markov"
)

// Model names accepted in PredictRequest.Models.
const (
	ModelNameFull       = "full"       // eq. (32), the paper's headline model
	ModelNameApprox     = "approx"     // eq. (33) closed form
	ModelNameTDOnly     = "tdonly"     // Mathis et al. square-root baseline
	ModelNameThroughput = "throughput" // receiver-side rate, eq. (37)
	ModelNameMarkov     = "markov"     // numerically-solved chain (Fig. 12)
)

// defaultModels is what a request without an explicit model list gets:
// every closed-form characterization. The Markov chain is opt-in — it
// costs a power iteration rather than a formula evaluation.
var defaultModels = []string{ModelNameApprox, ModelNameFull, ModelNameTDOnly, ModelNameThroughput}

// PredictRequest asks for model predictions at one (p, RTT, T0, Wm, b)
// operating point.
type PredictRequest struct {
	// P is the loss-indication rate, in [0, 1].
	P float64 `json:"p"`
	// RTT is the average round trip time in seconds.
	RTT float64 `json:"rtt"`
	// T0 is the average first-timeout duration in seconds.
	T0 float64 `json:"t0"`
	// Wm is the receiver's advertised window in packets; 0 or absent
	// means unlimited.
	Wm float64 `json:"wm,omitempty"`
	// B is the delayed-ACK ratio; 0 or absent means the paper's b = 2.
	B int `json:"b,omitempty"`
	// Models selects which characterizations to evaluate; empty means
	// full, approx, tdonly and throughput. "markov" must be requested
	// explicitly.
	Models []string `json:"models,omitempty"`
}

// normalize fills defaults and sorts the model list so that equivalent
// requests share one canonical form (and therefore one cache key).
func (r PredictRequest) normalize() PredictRequest {
	if r.B == 0 {
		r.B = core.DefaultB
	}
	if r.Wm < 0 {
		r.Wm = 0
	}
	if len(r.Models) == 0 {
		r.Models = defaultModels
	} else {
		models := append([]string(nil), r.Models...)
		sort.Strings(models)
		// Drop adjacent duplicates: {"full","full"} is the same ask as
		// {"full"}.
		r.Models = models[:0]
		for i, m := range models {
			if i == 0 || m != models[i-1] {
				r.Models = append(r.Models, m)
			}
		}
	}
	return r
}

// validate reports the first problem with a normalized request.
func (r PredictRequest) validate() error {
	switch {
	case math.IsNaN(r.P) || r.P < 0 || r.P > 1:
		return fmt.Errorf("p must be in [0, 1], got %v", r.P)
	case math.IsNaN(r.RTT) || math.IsInf(r.RTT, 0) || r.RTT <= 0:
		return fmt.Errorf("rtt must be positive and finite, got %v", r.RTT)
	case math.IsNaN(r.T0) || math.IsInf(r.T0, 0) || r.T0 <= 0:
		return fmt.Errorf("t0 must be positive and finite, got %v", r.T0)
	case math.IsNaN(r.Wm) || math.IsInf(r.Wm, 0):
		return fmt.Errorf("wm must be finite, got %v", r.Wm)
	case r.B < 1:
		return fmt.Errorf("b must be at least 1, got %d", r.B)
	}
	for _, m := range r.Models {
		switch m {
		case ModelNameFull, ModelNameApprox, ModelNameTDOnly, ModelNameThroughput:
		case ModelNameMarkov:
			if r.Wm < 1 {
				return fmt.Errorf("model %q needs wm >= 1 (the chain's state space is bounded by the advertised window)", m)
			}
			if !(r.P > 0 && r.P < 1) {
				return fmt.Errorf("model %q needs p strictly inside (0, 1), got %v", m, r.P)
			}
		default:
			return fmt.Errorf("unknown model %q (valid: %s, %s, %s, %s, %s)", m,
				ModelNameApprox, ModelNameFull, ModelNameMarkov, ModelNameTDOnly, ModelNameThroughput)
		}
	}
	return nil
}

// params converts the request into model parameters.
func (r PredictRequest) params() core.Params {
	return core.Params{RTT: r.RTT, T0: r.T0, Wm: r.Wm, B: r.B}
}

// PredictResponse carries the rates for one request, in packets per
// second, keyed by model name.
type PredictResponse struct {
	Request PredictRequest     `json:"request"`
	Rates   map[string]float64 `json:"rates"`
}

// predict evaluates every requested model for an already-normalized,
// already-validated request.
func predict(r PredictRequest) (PredictResponse, error) {
	pr := r.params()
	rates := make(map[string]float64, len(r.Models))
	for _, m := range r.Models {
		switch m {
		case ModelNameFull:
			rates[m] = core.SendRateFull(r.P, pr)
		case ModelNameApprox:
			rates[m] = core.SendRateApprox(r.P, pr)
		case ModelNameTDOnly:
			rates[m] = core.SendRateTDOnly(r.P, pr.RTT, float64(r.B))
		case ModelNameThroughput:
			rates[m] = core.Throughput(r.P, pr)
		case ModelNameMarkov:
			rate, err := markov.SendRate(r.P, markov.Config{RTT: r.RTT, T0: r.T0, Wm: int(r.Wm), B: r.B})
			if err != nil {
				return PredictResponse{}, fmt.Errorf("markov: %w", err)
			}
			rates[m] = rate
		}
	}
	return PredictResponse{Request: r, Rates: rates}, nil
}
