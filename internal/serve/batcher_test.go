package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherCoalescesQueuedItems enqueues items faster than the drain
// loop consumes them and checks that the run callback sees multi-item
// batches, that no item is lost, and that the batch-size cap holds.
func TestBatcherCoalescesQueuedItems(t *testing.T) {
	const n = 64
	var (
		mu     sync.Mutex
		sizes  []int
		total  int
		gate   = make(chan struct{})
		gated  atomic.Bool
		maxLen = 8
	)
	b := newBatcher(maxLen, 5*time.Millisecond, n, func(items []*evalItem) {
		// The first batch blocks on the gate so the remaining items pile
		// up in the queue and must be collected together.
		if gated.CompareAndSwap(false, true) {
			<-gate
		}
		mu.Lock()
		sizes = append(sizes, len(items))
		total += len(items)
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if !b.enqueue(&evalItem{}) {
			t.Fatalf("enqueue %d rejected below depth", i)
		}
	}
	close(gate)
	b.close()

	mu.Lock()
	defer mu.Unlock()
	if total != n {
		t.Fatalf("run saw %d items, want %d (close must drain the queue)", total, n)
	}
	coalesced := false
	for _, sz := range sizes {
		if sz > maxLen {
			t.Errorf("batch of %d exceeds max %d", sz, maxLen)
		}
		if sz > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Errorf("no multi-item batches formed; sizes = %v", sizes)
	}
}

// TestBatcherRejectsAfterClose pins the shutdown contract: enqueue after
// close fails fast instead of stranding a flight.
func TestBatcherRejectsAfterClose(t *testing.T) {
	b := newBatcher(4, 0, 4, func([]*evalItem) {})
	if !b.enqueue(&evalItem{}) {
		t.Fatal("enqueue before close rejected")
	}
	b.close()
	if b.enqueue(&evalItem{}) {
		t.Fatal("enqueue after close accepted")
	}
}

// TestBatchedResponsesByteIdentical runs the same single-point predicts
// against an immediate-dispatch server and a micro-batching server and
// requires byte-identical bodies — batching is a scheduling change, not
// a semantic one.
func TestBatchedResponsesByteIdentical(t *testing.T) {
	immediate := New(Config{Workers: 2, QueueDepth: 64})
	defer immediate.Close()
	batched := New(Config{Workers: 2, QueueDepth: 64, BatchWait: 25 * time.Millisecond})
	defer batched.Close()

	bodies := []string{
		`{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`,
		`{"p":0.1,"rtt":0.05,"t0":1.0,"wm":8,"b":2}`,
		`{"p":0.005,"rtt":0.5,"t0":3.0,"wm":32,"models":["full","approx"]}`,
	}
	fetch := func(s *Server, body string) (int, string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	for _, body := range bodies {
		c1, b1 := fetch(immediate, body)
		c2, b2 := fetch(batched, body)
		if c1 != http.StatusOK || c2 != http.StatusOK {
			t.Fatalf("status %d vs %d for %s", c1, c2, body)
		}
		if b1 != b2 {
			t.Errorf("batched body differs for %s:\n%s\nvs\n%s", body, b1, b2)
		}
	}
}
