package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkPredictBatch pins the cost of the raw batch compute path — 64
// normalized points through every closed-form model, no HTTP, no cache.
func BenchmarkPredictBatch(b *testing.B) {
	reqs := make([]PredictRequest, 64)
	for i := range reqs {
		reqs[i] = PredictRequest{
			P: 0.001 * float64(i+1), RTT: 0.2, T0: 2.0, Wm: 12,
		}.normalize()
		if err := reqs[i].validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			if _, err := predict(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServePredict measures the full in-process serving hot path —
// routing, JSON decode, normalization, cache lookup, pool round trip,
// JSON encode — for a single-point predict request. After the first
// iteration every request is a cache hit, so this is the steady-state
// cost a saturating client sees.
func BenchmarkServePredict(b *testing.B) {
	s := New(Config{Workers: 2, QueueDepth: 64})
	defer s.Close()
	body := `{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// BenchmarkServePredictMiss is BenchmarkServePredict with a distinct
// point per iteration: every request takes the compute-and-fill path.
func BenchmarkServePredictMiss(b *testing.B) {
	s := New(Config{Workers: 2, QueueDepth: 64, CacheEntries: 1})
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"p":%g,"rtt":0.2,"t0":2.0,"wm":12}`, 1e-6+float64(i%1000000)*1e-7)
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}
