package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// BenchmarkPredictBatch pins the cost of the raw batch compute path — 64
// normalized points through every closed-form model, no HTTP, no cache.
func BenchmarkPredictBatch(b *testing.B) {
	reqs := make([]PredictRequest, 64)
	for i := range reqs {
		reqs[i] = PredictRequest{
			P: 0.001 * float64(i+1), RTT: 0.2, T0: 2.0, Wm: 12,
		}.normalize()
		if err := reqs[i].validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			if _, err := predict(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServePredict measures the full in-process serving hot path —
// routing, JSON decode, normalization, cache lookup, pool round trip,
// JSON encode — for a single-point predict request. After the first
// iteration every request is a cache hit, so this is the steady-state
// cost a saturating client sees.
func BenchmarkServePredict(b *testing.B) {
	s := New(Config{Workers: 2, QueueDepth: 64})
	defer s.Close()
	body := `{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// BenchmarkServePredictParallel is the contention view of the hot path:
// GOMAXPROCS goroutines hammering the same cache-hit request. This is
// the shape that exposed the serialized access log and the single cache
// mutex; the sharded LRU and the group-commit log sink are sized against
// it.
func BenchmarkServePredictParallel(b *testing.B) {
	s := New(Config{Workers: 2, QueueDepth: 64})
	defer s.Close()
	body := `{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}

// slowWriter models a disk-backed log: each Write carries a fixed
// latency, whatever its size. Group commit amortizes that latency across
// every line accumulated while the previous Write was in flight.
type slowWriter struct {
	mu     sync.Mutex
	writes int
	bytes  int
}

func (w *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(20 * time.Microsecond)
	w.mu.Lock()
	w.writes++
	w.bytes += len(p)
	w.mu.Unlock()
	return len(p), nil
}

// BenchmarkAccessLogContention measures concurrent request logging.
//
// Contention regression note: before the group-commit logSink, every
// handler formatted AND wrote its line while holding one logMu, so a
// slow Write serialized the entire request path — at 20µs per write this
// benchmark degraded to ~50k lines/s total no matter the parallelism.
// The sink formats lock-free, appends under a short buffer mutex and
// flushes outside it, so concurrent handlers batch into few large
// writes. If this benchmark's ns/op ever approaches the sleep cost of
// one Write per line, the group commit has regressed to line-at-a-time.
func BenchmarkAccessLogContention(b *testing.B) {
	line := []byte(`method=POST path=/v1/predict status=200 dur=0.000123 bytes=512` + "\n")
	hammer := func(b *testing.B, sink *logSink) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				sink.append(line)
			}
		})
	}
	b.Run("slow-writer", func(b *testing.B) {
		sw := &slowWriter{}
		hammer(b, newLogSink(sw))
		b.StopTimer()
		sw.mu.Lock()
		if sw.writes > 0 {
			b.ReportMetric(float64(b.N)/float64(sw.writes), "lines/write")
		}
		sw.mu.Unlock()
	})
	b.Run("discard", func(b *testing.B) {
		hammer(b, newLogSink(io.Discard))
	})
}

// BenchmarkServePredictMiss is BenchmarkServePredict with a distinct
// point per iteration: every request takes the compute-and-fill path.
func BenchmarkServePredictMiss(b *testing.B) {
	s := New(Config{Workers: 2, QueueDepth: 64, CacheEntries: 1})
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"p":%g,"rtt":0.2,"t0":2.0,"wm":12}`, 1e-6+float64(i%1000000)*1e-7)
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}
