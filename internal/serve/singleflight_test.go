package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pftk/internal/obs"
)

// TestSingleflightCoalescesIdenticalPredicts proves the K→1 property:
// K concurrent identical single-point predicts perform exactly one model
// evaluation. Every non-leader either joined the leader's flight (the
// coalesce counter) or arrived after completion and hit the cache; the
// responses are byte-identical either way.
func TestSingleflightCoalescesIdenticalPredicts(t *testing.T) {
	const k = 16
	reg := obs.New()
	// The batch window holds the leader's evaluation open long enough
	// that concurrently released requests join its flight rather than
	// racing it; correctness does not depend on the timing, only the
	// coalesced/hit split does.
	s := New(Config{Workers: 2, QueueDepth: 64, BatchWait: 100 * time.Millisecond, Registry: reg})
	defer s.Close()

	const body = `{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`
	var (
		start  = make(chan struct{})
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies []string
	)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			mu.Lock()
			defer mu.Unlock()
			if rec.Code != http.StatusOK {
				t.Errorf("status %d: %s", rec.Code, rec.Body)
				return
			}
			bodies = append(bodies, rec.Body.String())
		}()
	}
	close(start)
	wg.Wait()

	snap := reg.Snapshot()
	if evals := snap.Counter("serve.predict.evals"); evals != 1 {
		t.Errorf("serve.predict.evals = %d, want exactly 1 for %d identical requests", evals, k)
	}
	hits := snap.Counter("serve.cache.hits")
	coalesced := snap.Counter("serve.predict.coalesced")
	if hits+coalesced != k-1 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want %d non-leaders accounted for",
			hits, coalesced, hits+coalesced, k-1)
	}
	if len(bodies) != k {
		t.Fatalf("got %d successful responses, want %d", len(bodies), k)
	}
	for i, b := range bodies {
		if b != bodies[0] {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, b, bodies[0])
		}
	}
}

// TestFlightGroupLateJoinerBecomesLeader pins the table contract that
// completion removes the entry: a joiner arriving afterwards must lead a
// fresh flight (and will find the cache warm instead of re-evaluating —
// see Server.evalOne).
func TestFlightGroupLateJoinerBecomesLeader(t *testing.T) {
	g := newFlightGroup[int]()
	key := testKey(1)
	f1, leader := g.join(key)
	if !leader {
		t.Fatal("first join must lead")
	}
	if _, leader := g.join(key); leader {
		t.Fatal("second join while in flight must not lead")
	}
	g.complete(key, f1, 42, nil)
	select {
	case <-f1.done:
	default:
		t.Fatal("complete did not release waiters")
	}
	if v := f1.val; v != 42 {
		t.Fatalf("flight value %d, want 42", v)
	}
	if _, leader := g.join(key); !leader {
		t.Fatal("join after completion must lead a fresh flight")
	}
}

// TestSimulateCoalescingSharesOneRun submits K identical simulations
// concurrently: every request gets its own job ID and every job reaches
// done, but only one simulation executes — the rest ride the leader's
// run (serve.jobs.coalesced) or hit the result cache.
func TestSimulateCoalescingSharesOneRun(t *testing.T) {
	const k = 8
	reg := obs.New()
	s := New(Config{Workers: 1, QueueDepth: 16, Registry: reg})
	defer s.Close()

	const body = `{"rtt":0.1,"loss_rate":0.02,"duration":2.0,"seed":7}`
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		mu    sync.Mutex
		ids   []string
	)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			req := httptest.NewRequest(http.MethodPost, "/v1/simulate", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			mu.Lock()
			defer mu.Unlock()
			if rec.Code != http.StatusOK && rec.Code != http.StatusAccepted {
				t.Errorf("status %d: %s", rec.Code, rec.Body)
				return
			}
			var job struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
				t.Errorf("decode job: %v", err)
				return
			}
			ids = append(ids, job.ID)
		}()
	}
	close(start)
	wg.Wait()

	// Drain: every job must reach a terminal, successful state.
	deadline := time.Now().Add(10 * time.Second)
	for _, id := range ids {
		for {
			req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			var job struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
				t.Fatalf("decode job %s: %v", id, err)
			}
			if job.Status == "done" {
				break
			}
			if job.Status == "failed" {
				t.Fatalf("job %s failed", id)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %q", id, job.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	snap := reg.Snapshot()
	coalesced := snap.Counter("serve.jobs.coalesced")
	hits := snap.Counter("serve.cache.hits")
	if coalesced+hits != k-1 {
		t.Errorf("coalesced (%d) + cache hits (%d) = %d, want %d riders", coalesced, hits, coalesced+hits, k-1)
	}
	// Cache hits complete without ever entering the queue, so only the
	// leader and its coalesced waiters count as completed jobs.
	if done := snap.Counter("serve.jobs.completed"); done != 1+coalesced {
		t.Errorf("serve.jobs.completed = %d, want %d (leader + coalesced)", done, 1+coalesced)
	}
}
