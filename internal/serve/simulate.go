package serve

import (
	"fmt"
	"math"

	"pftk"
	"pftk/internal/core"
	"pftk/internal/scenario"
)

// simVariants is the set of sender flavors the simulator implements.
var simVariants = map[string]bool{
	"reno": true, "tahoe": true, "linux": true, "irix": true, "newreno": true,
}

// SimulateRequest describes one deterministic packet-level bulk-transfer
// simulation. Together with the seed it fully determines the outcome,
// which is what makes finished simulations exactly cacheable.
type SimulateRequest struct {
	// RTT is the two-way propagation delay in seconds; 0 means the
	// simulator default (0.1 s).
	RTT float64 `json:"rtt,omitempty"`
	// LossRate is the per-packet loss-burst start probability, in
	// [0, 1].
	LossRate float64 `json:"loss_rate"`
	// BurstDur is the loss-outage duration in seconds (0 = isolated
	// single-packet losses).
	BurstDur float64 `json:"burst_dur,omitempty"`
	// Wm is the receiver's advertised window in packets; 0 means the
	// simulator default (64).
	Wm int `json:"wm,omitempty"`
	// MinRTO floors the retransmission timeout in seconds; 0 means the
	// simulator default (1 s).
	MinRTO float64 `json:"min_rto,omitempty"`
	// Duration is the transfer length in simulated seconds; 0 means the
	// default 100 s.
	Duration float64 `json:"duration,omitempty"`
	// Seed makes the run reproducible (and the cache exact).
	Seed uint64 `json:"seed"`
	// Variant is the sender flavor: reno (default), tahoe, linux, irix
	// or newreno.
	Variant string `json:"variant,omitempty"`
	// AckEvery is the receiver's delayed-ACK ratio b; 0 means 2.
	AckEvery int `json:"ack_every,omitempty"`
	// Scenario optionally schedules time-varying path conditions and
	// fault injection over the run (see internal/scenario for the
	// schema). It participates in the canonical request hash, so a
	// scenario-bearing simulation never collides with its fixed-path
	// twin in the cache.
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
}

// normalize fills defaults so that equivalent requests share one cache
// key and the simulation layer never sees implicit zeros.
func (r SimulateRequest) normalize() SimulateRequest {
	if r.RTT == 0 {
		r.RTT = 0.1
	}
	if r.Wm == 0 {
		r.Wm = 64
	}
	if r.MinRTO == 0 {
		r.MinRTO = 1
	}
	if r.Duration == 0 {
		r.Duration = 100
	}
	if r.Variant == "" {
		r.Variant = "reno"
	}
	if r.AckEvery == 0 {
		r.AckEvery = 2
	}
	return r
}

// maxSimDuration bounds one job's simulated length; an hour-scale trace
// is the largest unit the paper's own campaigns use.
const maxSimDuration = 4 * 3600

// validate reports the first problem with a normalized request.
func (r SimulateRequest) validate() error {
	switch {
	case math.IsNaN(r.RTT) || math.IsInf(r.RTT, 0) || r.RTT <= 0:
		return fmt.Errorf("rtt must be positive and finite, got %v", r.RTT)
	case math.IsNaN(r.LossRate) || r.LossRate < 0 || r.LossRate > 1:
		return fmt.Errorf("loss_rate must be in [0, 1], got %v", r.LossRate)
	case math.IsNaN(r.BurstDur) || math.IsInf(r.BurstDur, 0) || r.BurstDur < 0:
		return fmt.Errorf("burst_dur must be non-negative and finite, got %v", r.BurstDur)
	case r.Wm < 1:
		return fmt.Errorf("wm must be at least 1, got %d", r.Wm)
	case math.IsNaN(r.MinRTO) || math.IsInf(r.MinRTO, 0) || r.MinRTO <= 0:
		return fmt.Errorf("min_rto must be positive and finite, got %v", r.MinRTO)
	case math.IsNaN(r.Duration) || r.Duration <= 0:
		return fmt.Errorf("duration must be positive, got %v", r.Duration)
	case r.Duration > maxSimDuration:
		return fmt.Errorf("duration must be at most %d simulated seconds, got %v", maxSimDuration, r.Duration)
	case !simVariants[r.Variant]:
		return fmt.Errorf("unknown variant %q (valid: reno, tahoe, linux, irix, newreno)", r.Variant)
	case r.AckEvery < 1:
		return fmt.Errorf("ack_every must be at least 1, got %d", r.AckEvery)
	}
	if err := r.Scenario.Validate(); err != nil {
		return err
	}
	if r.Scenario != nil && r.Scenario.Duration > 0 && r.Scenario.Duration > r.Duration {
		return fmt.Errorf("scenario duration %v exceeds run duration %v (the program past %v would be silently truncated)",
			r.Scenario.Duration, r.Duration, r.Duration)
	}
	return nil
}

// SimulateResult is the serializable outcome of one finished simulation:
// the measured rates, the sender's ground-truth counters, the Table
// II-style trace analysis, and the full model's prediction at the
// measured operating point (the per-trace comparison at the heart of the
// paper's validation).
type SimulateResult struct {
	// Duration is the simulated length in seconds.
	Duration float64 `json:"duration"`
	// PacketsSent counts originals plus retransmissions.
	PacketsSent int `json:"packets_sent"`
	// Retransmits counts all retransmissions.
	Retransmits int `json:"retransmits"`
	// Delivered counts distinct in-order packets at the receiver.
	Delivered uint64 `json:"delivered"`
	// SendRate is packets sent per second — the paper's B.
	SendRate float64 `json:"send_rate"`
	// Throughput is distinct packets delivered per second — the paper's
	// T.
	Throughput float64 `json:"throughput"`
	// LossIndicationRate is loss indications over packets sent — the
	// sender's ground-truth p estimate.
	LossIndicationRate float64 `json:"loss_indication_rate"`
	// TDEvents and TimeoutEvents split the ground-truth indications.
	TDEvents      int `json:"td_events"`
	TimeoutEvents int `json:"timeout_events"`
	// TraceRecords is the length of the (not returned) sender trace.
	TraceRecords int `json:"trace_records"`

	// MeasuredP, MeasuredRTT and MeasuredT0 come from the wire-level
	// trace analysis (loss-indication inference, Karn-filtered RTT).
	MeasuredP   float64 `json:"measured_p"`
	MeasuredRTT float64 `json:"measured_rtt"`
	MeasuredT0  float64 `json:"measured_t0"`
	// PredictedFull and PredictedApprox evaluate eqs. (32) and (33) at
	// the measured (p, RTT, T0, Wm); 0 when the trace yielded no usable
	// measurements.
	PredictedFull   float64 `json:"predicted_full,omitempty"`
	PredictedApprox float64 `json:"predicted_approx,omitempty"`

	// Phases attributes offered/dropped packets to scenario segments;
	// present only for scenario-bearing requests.
	Phases []scenario.PhaseStat `json:"phases,omitempty"`
}

// Run normalizes, validates and executes one simulation request exactly
// as the /v1/simulate job path does (panic-guarded, flight recorder
// attached), returning the result the daemon would cache. Chaos
// campaigns use it as the local oracle when cross-checking a live
// daemon's responses: same request, same bytes, or the daemon has
// diverged from the library.
func Run(r SimulateRequest) (SimulateResult, error) {
	r = r.normalize()
	if err := r.validate(); err != nil {
		return SimulateResult{}, err
	}
	res, dump, err := runSimulationGuarded(r, 0)
	if err != nil {
		return SimulateResult{}, fmt.Errorf("%w\n%s", err, dump)
	}
	return res, nil
}

// runSimulationGuarded runs one simulation with a flight recorder
// attached (flightEvents sizes its ring; 0 selects the default,
// negative disables recording) and converts a panic — a scenario fault
// or an engine invariant failure — into an error plus the recorder's
// dump, so one poisoned request fails its job instead of killing a
// worker goroutine.
func runSimulationGuarded(r SimulateRequest, flightEvents int) (res SimulateResult, dump string, err error) {
	var flight *pftk.FlightRecorder
	var opts []pftk.SimOption
	if flightEvents >= 0 {
		flight = pftk.NewFlightRecorder(flightEvents)
		opts = append(opts, pftk.WithFlightRecorder(flight))
	}
	defer func() {
		if p := recover(); p != nil {
			dump = flight.String()
			err = fmt.Errorf("simulation panicked: %v", p)
		}
	}()
	res = runSimulation(r, opts...)
	return res, "", nil
}

// runSimulation executes a normalized, validated request. It is a pure
// function of the request — same input, same output — which the result
// cache relies on. Extra options (a flight recorder) must not change
// the simulated outcome.
func runSimulation(r SimulateRequest, extra ...pftk.SimOption) SimulateResult {
	var phases []pftk.PhaseStat
	opts := []pftk.SimOption{
		pftk.WithPath(r.RTT),
		pftk.WithBurstLoss(r.LossRate, r.BurstDur),
		pftk.WithWindow(r.Wm),
		pftk.WithMinRTO(r.MinRTO),
		pftk.WithDuration(r.Duration),
		pftk.WithSeed(r.Seed),
		pftk.WithOS(r.Variant),
		pftk.WithDelayedACKs(r.AckEvery),
		pftk.WithScenario(r.Scenario),
		pftk.WithPhaseStats(&phases),
	}
	opts = append(opts, extra...)
	res := pftk.Sim(opts...)
	sum := pftk.Analyze(res.Trace)
	out := SimulateResult{
		Duration:           res.Duration,
		PacketsSent:        res.Stats.TotalSent(),
		Retransmits:        res.Stats.Retransmits,
		Delivered:          res.Delivered,
		SendRate:           res.SendRate(),
		Throughput:         res.Throughput(),
		LossIndicationRate: res.LossIndicationRate(),
		TDEvents:           res.Stats.TDEvents,
		TimeoutEvents:      res.Stats.TimeoutEvents,
		TraceRecords:       len(res.Trace),
		MeasuredP:          sum.P,
		MeasuredRTT:        sum.MeanRTT,
		MeasuredT0:         sum.MeanT0,
		Phases:             phases,
	}
	params := core.Params{RTT: sum.MeanRTT, T0: sum.MeanT0, Wm: float64(r.Wm), B: r.AckEvery}
	if params.Validate() == nil && sum.P > 0 {
		out.PredictedFull = core.SendRateFull(sum.P, params)
		out.PredictedApprox = core.SendRateApprox(sum.P, params)
	}
	return out
}
