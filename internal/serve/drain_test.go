package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestShutdownDrainsInFlightJobs hammers the admission path from many
// goroutines, closes the server mid-stream, and then requires that every
// job the service accepted reached a terminal state — the drain
// guarantee of graceful shutdown. Run under -race this also guards the
// submit/close handshake end to end.
func TestShutdownDrainsInFlightJobs(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	var (
		mu       sync.Mutex
		accepted []string
	)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body := fmt.Sprintf(`{"loss_rate":0.02,"duration":2,"seed":%d}`, g*100+i)
				rec := postJSON(s, "/v1/simulate", body)
				switch rec.Code {
				case http.StatusAccepted, http.StatusOK:
					var job Job
					if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
						t.Errorf("bad job body: %v", err)
						return
					}
					mu.Lock()
					accepted = append(accepted, job.ID)
					mu.Unlock()
				case http.StatusTooManyRequests:
					// Load shedding is fine; dropped work is not tracked.
				default:
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body)
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()

	if len(accepted) == 0 {
		t.Fatal("no jobs were accepted")
	}
	for _, id := range accepted {
		job, ok := s.jobs.get(id)
		if !ok {
			t.Errorf("job %s vanished", id)
			continue
		}
		if job.Status != JobDone && job.Status != JobFailed {
			t.Errorf("job %s left in state %q after Close", id, job.Status)
		}
	}

	// After the drain the service keeps answering reads but admits no new
	// work.
	if rec := getPath(s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after Close: %d", rec.Code)
	} else if body := rec.Body.String(); !json.Valid([]byte(body)) {
		t.Fatalf("healthz body invalid: %s", body)
	}
	rec := postJSON(s, "/v1/simulate", `{"loss_rate":0.02,"duration":2,"seed":9999}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("post-Close submit status %d, want 429", rec.Code)
	}
}
