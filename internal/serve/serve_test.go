package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pftk/internal/core"
	"pftk/internal/obs"
)

// newTestServer returns a small Server plus its registry; the caller owns
// Close.
func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.New()
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s, cfg.Registry
}

// postJSON performs an in-process POST of body against the handler.
func postJSON(s *Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// getPath performs an in-process GET against the handler.
func getPath(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestPredictGoldenValues(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	rec := postJSON(s, "/v1/predict", `{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	pr := core.Params{RTT: 0.2, T0: 2.0, Wm: 12, B: 2}
	want := map[string]float64{
		ModelNameFull:       core.SendRateFull(0.02, pr),
		ModelNameApprox:     core.SendRateApprox(0.02, pr),
		ModelNameTDOnly:     core.SendRateTDOnly(0.02, 0.2, 2),
		ModelNameThroughput: core.Throughput(0.02, pr),
	}
	if len(resp.Rates) != len(want) {
		t.Fatalf("got models %v, want %v", resp.Rates, want)
	}
	for name, rate := range want {
		got := resp.Rates[name]
		if math.Abs(got-rate) > 1e-12*math.Max(1, math.Abs(rate)) {
			t.Errorf("%s: got %v, want %v", name, got, rate)
		}
	}
}

func TestPredictBatchOrderAndValues(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	var b strings.Builder
	b.WriteString(`{"requests":[`)
	ps := []float64{0.001, 0.01, 0.1, 0.01} // includes a duplicate point
	for i, p := range ps {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"p":%g,"rtt":0.2,"t0":2.0,"wm":12,"models":["full"]}`, p)
	}
	b.WriteString(`]}`)
	rec := postJSON(s, "/v1/predict", b.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(ps) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(ps))
	}
	pr := core.Params{RTT: 0.2, T0: 2.0, Wm: 12, B: 2}
	for i, p := range ps {
		if got, want := resp.Results[i].Rates[ModelNameFull], core.SendRateFull(p, pr); got != want {
			t.Errorf("result %d (p=%g): got %v, want %v", i, p, got, want)
		}
	}
}

func TestPredictBadRequests(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 4})
	cases := []struct {
		name, body string
		wantInBody string
	}{
		{"malformed json", `{"p":0.02,`, "bad request body"},
		{"unknown field", `{"p":0.02,"rtt":0.2,"t0":2.0,"loss":1}`, "unknown field"},
		{"trailing garbage", `{"p":0.02,"rtt":0.2,"t0":2.0} {}`, "trailing data"},
		{"p out of range", `{"p":1.5,"rtt":0.2,"t0":2.0}`, "p must be in [0, 1]"},
		{"negative rtt", `{"p":0.02,"rtt":-1,"t0":2.0}`, "rtt must be positive"},
		{"zero t0", `{"p":0.02,"rtt":0.2,"t0":0}`, "t0 must be positive"},
		{"unknown model", `{"p":0.02,"rtt":0.2,"t0":2.0,"models":["mathis"]}`, "unknown model"},
		{"markov without wm", `{"p":0.02,"rtt":0.2,"t0":2.0,"models":["markov"]}`, "needs wm"},
		{"markov at p=0", `{"p":0,"rtt":0.2,"t0":2.0,"wm":8,"models":["markov"]}`, "strictly inside"},
		{"empty batch", `{"requests":[]}`, "empty batch"},
		{"oversized batch", `{"requests":[{},{},{},{},{}]}`, "exceeds limit"},
		{"bad batch item", `{"requests":[{"p":0.02,"rtt":0.2,"t0":2.0},{"p":-1,"rtt":0.2,"t0":2.0}]}`, "request 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(s, "/v1/predict", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), tc.wantInBody) {
				t.Errorf("body %q missing %q", rec.Body.String(), tc.wantInBody)
			}
		})
	}
}

func TestPredictCacheHitSkipsRecompute(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	body := `{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`
	first := postJSON(s, "/v1/predict", body)
	second := postJSON(s, "/v1/predict", body)
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("status %d / %d", first.Code, second.Code)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("cached response differs:\n%s\nvs\n%s", first.Body, second.Body)
	}
	snap := reg.Snapshot()
	if hits := snap.Counter("serve.cache.hits"); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if misses := snap.Counter("serve.cache.misses"); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
}

func TestPredictCacheKeyNormalization(t *testing.T) {
	// Spelled-out defaults and implicit defaults are the same request,
	// so the second spelling must hit the first one's cache entry.
	s, reg := newTestServer(t, Config{})
	if rec := postJSON(s, "/v1/predict", `{"p":0.02,"rtt":0.2,"t0":2.0}`); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	rec := postJSON(s, "/v1/predict",
		`{"p":0.02,"rtt":0.2,"t0":2.0,"b":2,"models":["tdonly","full","approx","throughput","full"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if hits := reg.Snapshot().Counter("serve.cache.hits"); hits != 1 {
		t.Errorf("cache hits = %d, want 1 (normalization should unify the spellings)", hits)
	}
}

// waitForJob polls the job endpoint until the job leaves the queue.
func waitForJob(t *testing.T, s *Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec := getPath(s, "/v1/jobs/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("job poll status %d: %s", rec.Code, rec.Body)
		}
		var job Job
		if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
		if job.Status == JobDone || job.Status == JobFailed {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

func TestSimulateJobLifecycleAndExactCache(t *testing.T) {
	s, reg := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	body := `{"loss_rate":0.02,"duration":5,"seed":42}`

	rec := postJSON(s, "/v1/simulate", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d, body %s", rec.Code, rec.Body)
	}
	var submitted Job
	if err := json.Unmarshal(rec.Body.Bytes(), &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.Status != JobQueued && submitted.Status != JobRunning {
		t.Fatalf("fresh job status %q", submitted.Status)
	}
	job := waitForJob(t, s, submitted.ID)
	if job.Status != JobDone || job.Result == nil {
		t.Fatalf("job did not complete: %+v", job)
	}
	if job.Cached {
		t.Fatal("first run must not be marked cached")
	}
	if job.Result.PacketsSent == 0 || job.Result.SendRate <= 0 {
		t.Fatalf("degenerate result: %+v", job.Result)
	}

	// Resubmission: same canonical request, exact cached result, no
	// second simulation.
	rec2 := postJSON(s, "/v1/simulate", body)
	if rec2.Code != http.StatusOK {
		t.Fatalf("resubmit status %d, want 200 (immediate cached completion); body %s", rec2.Code, rec2.Body)
	}
	var job2 Job
	if err := json.Unmarshal(rec2.Body.Bytes(), &job2); err != nil {
		t.Fatal(err)
	}
	if job2.Status != JobDone || !job2.Cached {
		t.Fatalf("resubmit not served from cache: %+v", job2)
	}
	got, _ := json.Marshal(job2.Result)
	want, _ := json.Marshal(job.Result)
	if !bytes.Equal(got, want) {
		t.Fatalf("cached result differs:\n%s\nvs\n%s", got, want)
	}
	snap := reg.Snapshot()
	if n := snap.Counter("serve.jobs.completed"); n != 1 {
		t.Errorf("jobs.completed = %d, want 1 (the resubmission must not re-run)", n)
	}
	if n := snap.Counter("serve.cache.hits"); n != 1 {
		t.Errorf("cache.hits = %d, want 1", n)
	}

	// Same parameters with a different seed is a different canonical
	// request and must miss.
	rec3 := postJSON(s, "/v1/simulate", `{"loss_rate":0.02,"duration":5,"seed":43}`)
	if rec3.Code != http.StatusAccepted {
		t.Fatalf("different-seed submit status %d, want 202", rec3.Code)
	}
}

func TestSimulateBadRequests(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		wantInBody string
	}{
		{"malformed", `{`, "bad request body"},
		{"negative duration", `{"loss_rate":0.02,"duration":-5}`, "duration must be positive"},
		{"loss out of range", `{"loss_rate":1.5}`, "loss_rate must be in [0, 1]"},
		{"unknown variant", `{"loss_rate":0.02,"variant":"cubic"}`, "unknown variant"},
		{"negative wm", `{"loss_rate":0.02,"wm":-3}`, "wm must be at least 1"},
		{"excessive duration", `{"loss_rate":0.02,"duration":1e9}`, "at most"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(s, "/v1/simulate", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), tc.wantInBody) {
				t.Errorf("body %q missing %q", rec.Body.String(), tc.wantInBody)
			}
		})
	}
}

func TestOverloadReturns429WithRetryAfter(t *testing.T) {
	s, reg := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the single worker and fill the single queue slot with
	// blocking jobs, so any further admission must be rejected.
	release := make(chan struct{})
	started := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(started); <-release }) {
		t.Fatal("could not occupy worker")
	}
	<-started
	if !s.pool.TrySubmit(func() { <-release }) {
		t.Fatal("could not fill queue slot")
	}
	defer close(release)

	rec := postJSON(s, "/v1/simulate", `{"loss_rate":0.02,"duration":5,"seed":1}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	var job Job
	if err := json.Unmarshal(postJSON(s, "/v1/simulate", `{"loss_rate":0.02,"duration":5,"seed":1}`).Body.Bytes(), &job); err == nil && job.Status == JobDone {
		t.Error("second rejected submission claims completion")
	}

	// Predictions flow through the same admission control.
	recP := postJSON(s, "/v1/predict", `{"p":0.02,"rtt":0.2,"t0":2.0}`)
	if recP.Code != http.StatusTooManyRequests {
		t.Fatalf("predict status %d, want 429", recP.Code)
	}
	if n := reg.Snapshot().Counter("serve.http.rejected"); n < 3 {
		t.Errorf("rejected counter = %d, want >= 3", n)
	}
}

func TestJobEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	rec := getPath(s, "/v1/jobs/job-12345678")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", rec.Code)
	}
	if rec := postJSON(s, "/v1/jobs/whatever", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST to jobs status %d, want 405", rec.Code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 3})
	rec := getPath(s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("status = %v, want ok", health["status"])
	}
	if health["workers"] != float64(3) {
		t.Errorf("workers = %v, want 3", health["workers"])
	}
	recM := getPath(s, "/v1/metrics")
	if recM.Code != http.StatusOK {
		t.Fatalf("metrics status %d", recM.Code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(recM.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counter("serve.http.requests") == 0 {
		t.Error("request counter missing from metrics snapshot")
	}
}

func TestGetPredictMethodNotAllowed(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if rec := getPath(s, "/v1/predict"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict status %d, want 405", rec.Code)
	}
}

// TestRealHTTPRoundTrip exercises the service over a real listener — the
// same path pftkd wires up — rather than the in-process recorder.
func TestRealHTTPRoundTrip(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"p":0.02,"rtt":0.2,"t0":2.0,"wm":12}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Rates[ModelNameFull] <= 0 {
		t.Fatalf("degenerate rate: %+v", pr)
	}
}
