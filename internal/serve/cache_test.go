package serve

import (
	"sync"
	"testing"
)

// testKey builds a distinct cache key without going through a request.
func testKey(i int) cacheKey {
	return canonicalKey("test", i)
}

// TestShardedLRUSemantics pins the single-goroutine contract: recency
// updates on get, replacement on duplicate put, per-shard eviction of
// the least recently used entry once capacity is exceeded.
func TestShardedLRUSemantics(t *testing.T) {
	// One shard makes eviction order globally observable.
	c := newShardedLRU[int](2, 1)
	k0, k1, k2 := testKey(0), testKey(1), testKey(2)
	c.put(k0, 10)
	c.put(k1, 11)
	if v, ok := c.get(k0); !ok || v != 10 {
		t.Fatalf("get(k0) = %v, %v; want 10, true", v, ok)
	}
	// k1 is now least recently used; inserting k2 must evict it.
	c.put(k2, 12)
	if _, ok := c.get(k1); ok {
		t.Error("k1 survived eviction despite being LRU")
	}
	for k, want := range map[cacheKey]int{k0: 10, k2: 12} {
		if v, ok := c.get(k); !ok || v != want {
			t.Errorf("get(%x) = %v, %v; want %v, true", k[:4], v, ok, want)
		}
	}
	c.put(k0, 20)
	if v, _ := c.get(k0); v != 20 {
		t.Errorf("duplicate put did not replace: got %v", v)
	}
	if n := c.len(); n != 2 {
		t.Errorf("len = %d, want 2", n)
	}
}

// TestShardedLRUShardClamping checks the constructor invariants: tiny
// caches collapse to one shard instead of silently growing, shard counts
// round up to powers of two, and capacity is spread across shards.
func TestShardedLRUShardClamping(t *testing.T) {
	if c := newShardedLRU[int](1, 64); len(c.shards) != 1 || c.shards[0].cap != 1 {
		t.Errorf("capacity-1 cache: %d shards cap %d, want 1 shard cap 1", len(c.shards), c.shards[0].cap)
	}
	if c := newShardedLRU[int](1024, 3); len(c.shards) != 4 || c.shards[0].cap != 256 {
		t.Errorf("shards=3: got %d shards cap %d, want 4 shards cap 256", len(c.shards), c.shards[0].cap)
	}
	if got := nextPow2(0); got != 1 {
		t.Errorf("nextPow2(0) = %d", got)
	}
}

// TestShardedLRURace hammers every shard from many goroutines with
// overlapping gets, puts and evictions; run under -race it verifies the
// per-shard lock discipline end to end. Values are derived from keys so
// a torn or misrouted entry is detected, not just a data race.
func TestShardedLRURace(t *testing.T) {
	const (
		workers = 8
		keys    = 256
		iters   = 2000
	)
	// Small capacity relative to the key space keeps eviction constantly
	// active on every shard.
	c := newShardedLRU[int](64, 8)
	ks := make([]cacheKey, keys)
	for i := range ks {
		ks[i] = testKey(i)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*31 + i) % keys
				switch i % 3 {
				case 0:
					c.put(ks[k], k)
				default:
					if v, ok := c.get(ks[k]); ok && v != k {
						t.Errorf("key %d returned value %d", k, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n > 64+8 {
		t.Errorf("len = %d exceeds capacity with per-shard slack", n)
	}
}
