package serve

import (
	"fmt"
	"sync"
)

// JobStatus is the lifecycle state of an asynchronous simulation job.
type JobStatus string

// The job lifecycle: queued -> running -> done | failed. Cached
// resubmissions are born done.
const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// Job is the client-visible record of one simulation submission.
type Job struct {
	// ID names the job for /v1/jobs/{id}.
	ID string `json:"id"`
	// Status is the current lifecycle state.
	Status JobStatus `json:"status"`
	// Cached reports that the result was served from the LRU cache
	// without re-running the simulation.
	Cached bool `json:"cached,omitempty"`
	// RequestID echoes the X-Request-Id of the submitting request, so a
	// polled job result is traceable back to the submission's spans and
	// access-log line.
	RequestID string `json:"request_id,omitempty"`
	// Request echoes the normalized request being simulated.
	Request SimulateRequest `json:"request"`
	// Result is present once Status is done.
	Result *SimulateResult `json:"result,omitempty"`
	// Error is present once Status is failed.
	Error string `json:"error,omitempty"`
}

// jobStore tracks jobs by ID. Finished jobs are retained up to a cap and
// then evicted oldest-first, so an arbitrarily long-lived daemon holds a
// bounded job table; queued and running jobs are never evicted.
type jobStore struct {
	mu  sync.Mutex
	max int // immutable after construction
	//pftk:guardedby mu
	seq uint64
	//pftk:guardedby mu
	jobs map[string]*Job
	//pftk:guardedby mu
	finished []string // eviction order, oldest first
}

// newJobStore returns a store retaining up to max finished jobs (floored
// at 1).
func newJobStore(max int) *jobStore {
	if max < 1 {
		max = 1
	}
	return &jobStore{max: max, jobs: make(map[string]*Job)}
}

// create registers a new queued job for req, tagged with the
// submitting request's ID, and returns a snapshot of it.
func (s *jobStore) create(req SimulateRequest, requestID string) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{ID: fmt.Sprintf("job-%08d", s.seq), Status: JobQueued, Request: req, RequestID: requestID}
	s.jobs[j.ID] = j
	return *j
}

// get returns a snapshot of the job, if it exists.
func (s *jobStore) get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// setRunning transitions a queued job to running.
func (s *jobStore) setRunning(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.Status = JobRunning
	}
}

// finish completes the job with a result, marking it cached when it was
// served from the LRU.
func (s *jobStore) finish(id string, res SimulateResult, cached bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.Status = JobDone
	j.Result = &res
	j.Cached = cached
	s.noteFinishedLocked(id)
}

// fail completes the job with an error.
func (s *jobStore) fail(id string, msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.Status = JobFailed
	j.Error = msg
	s.noteFinishedLocked(id)
}

// noteFinishedLocked records a terminal transition and evicts the oldest
// finished jobs beyond the retention cap. Callers hold s.mu.
//
//pftk:locked(mu)
func (s *jobStore) noteFinishedLocked(id string) {
	s.finished = append(s.finished, id)
	for len(s.finished) > s.max {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}
