package serve

import (
	"sync"
	"time"

	"pftk/internal/tracez"
)

// predictOutcome is the completed evaluation of one canonical predict
// point, shared verbatim by every request coalesced onto its flight.
type predictOutcome struct {
	resp PredictResponse
	// body is the encoded single-point response (JSON plus trailing
	// newline, exactly what json.Encoder would have produced), so hits
	// and waiters skip re-encoding.
	body      []byte
	queueWait time.Duration
	service   time.Duration
}

// evalItem is one queued single-point evaluation: the leader's request
// plus the flight its waiters are parked on and enough trace context to
// attribute the queue-wait/eval spans to the submitting request.
type evalItem struct {
	req            PredictRequest
	key            cacheKey
	fl             *inflight[predictOutcome]
	submitted      time.Time
	submittedTrace float64
	trace          tracez.Span // copy of the submitting request's root span
}

// batcher coalesces queued single-point predict evaluations into bounded
// batches dispatched as one worker-pool job each. Draining is greedy —
// whatever is queued when a batch forms joins it — and optionally waits
// up to a latency budget for stragglers, trading bounded added latency
// for fewer pool round trips under load. A zero budget never delays
// dispatch, so lightly loaded servers keep single-request latency.
type batcher struct {
	queue chan *evalItem
	stop  chan struct{}
	wait  time.Duration
	max   int
	run   func([]*evalItem)
	wg    sync.WaitGroup

	mu sync.RWMutex
	//pftk:guardedby mu
	closed bool
}

// newBatcher starts the drain loop. run is called serially, once per
// batch, with between 1 and max items; it must not block indefinitely.
func newBatcher(max int, wait time.Duration, depth int, run func([]*evalItem)) *batcher {
	if max < 1 {
		max = 1
	}
	if depth < 1 {
		depth = 1
	}
	b := &batcher{
		queue: make(chan *evalItem, depth),
		stop:  make(chan struct{}),
		wait:  wait,
		max:   max,
		run:   run,
	}
	b.wg.Add(1)
	go b.drain()
	return b
}

// enqueue hands one item to the drain loop. False means the batcher is
// closed or its queue is full; the caller must fail the item's flight
// (overload), mirroring the worker pool's TrySubmit contract.
func (b *batcher) enqueue(it *evalItem) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return false
	}
	select {
	case b.queue <- it:
		return true
	default:
		return false
	}
}

// close stops admitting items, then blocks until everything already
// enqueued has been handed to run. Safe to call once; the server closes
// the batcher before the worker pool so final batches can still submit.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	// All enqueues overlapping the flag flip held the read lock, so by
	// here every accepted item is in the channel; stop wakes the drain
	// loop to sweep them out.
	close(b.stop)
	b.wg.Wait()
}

func (b *batcher) drain() {
	defer b.wg.Done()
	for {
		first, ok := b.next()
		if !ok {
			return
		}
		b.run(b.collect(first))
	}
}

// next blocks for the first item of the next batch; false means the
// batcher is closed and fully drained.
func (b *batcher) next() (*evalItem, bool) {
	select {
	case it := <-b.queue:
		return it, true
	case <-b.stop:
		select {
		case it := <-b.queue:
			return it, true
		default:
			return nil, false
		}
	}
}

// collect grows a batch around its first item: greedily take whatever is
// already queued, then — when a latency budget is configured — wait out
// the remainder of the budget for more, up to max items. The budget is
// measured from the first item, so no request waits longer than b.wait
// here regardless of arrival pattern.
func (b *batcher) collect(first *evalItem) []*evalItem {
	batch := []*evalItem{first}
	for len(batch) < b.max {
		select {
		case it := <-b.queue:
			batch = append(batch, it)
			continue
		default:
		}
		break
	}
	if b.wait <= 0 || len(batch) >= b.max {
		return batch
	}
	timer := time.NewTimer(b.wait)
	defer timer.Stop()
	for len(batch) < b.max {
		select {
		case it := <-b.queue:
			batch = append(batch, it)
		case <-timer.C:
			return batch
		case <-b.stop:
			return batch
		}
	}
	return batch
}
