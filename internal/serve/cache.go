package serve

import (
	"encoding/binary"
	"runtime"
	"sync"
)

// shardedLRU is a fixed-capacity least-recently-used cache from canonical
// request hashes to finished results. Predictions and simulations are
// pure functions of their normalized request (simulations carry an
// explicit seed), so a hit can be served verbatim without recomputing.
//
// The cache is split into a power-of-two number of independently locked
// shards, selected by the low bits of the key digest: under concurrent
// load the per-request critical section contends only with the 1/shards
// fraction of traffic that hashes to the same shard, instead of every
// request serializing on one global mutex. Recency is tracked per shard,
// which approximates global LRU closely because SHA-256 spreads keys
// uniformly.
type shardedLRU[V any] struct {
	shards []lruShard[V] // length is a power of two; never copied (holds mutexes)
	mask   uint64        // len(shards) - 1
}

// lruShard is one lock domain of the cache: a map for lookup plus an
// intrusive doubly-linked recency list (front = most recently used). The
// trailing pad keeps adjacent shards' hot mutex words off one cache line.
type lruShard[V any] struct {
	mu  sync.Mutex
	cap int // immutable after construction
	//pftk:guardedby mu
	items map[cacheKey]*lruEntry[V]
	//pftk:guardedby mu
	head *lruEntry[V]
	//pftk:guardedby mu
	tail *lruEntry[V]
	_    [24]byte // pad to a 64-byte line against false sharing
}

// lruEntry is an intrusive recency-list node; embedding the links in the
// entry avoids container/list's per-element interface boxing.
type lruEntry[V any] struct {
	key  cacheKey
	val  V
	prev *lruEntry[V]
	next *lruEntry[V]
}

// defaultCacheShards sizes the shard count for the running machine: a few
// shards per core so that even a fully cache-hit workload rarely sees two
// goroutines queued on one shard mutex.
func defaultCacheShards() int {
	return nextPow2(4 * runtime.GOMAXPROCS(0))
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newShardedLRU returns a cache holding up to capacity entries (floored
// at 1) across the given number of shards. The shard count is rounded up
// to a power of two and clamped so tiny caches do not silently grow:
// capacity 1 is one shard of one entry, whatever shards asks for.
func newShardedLRU[V any](capacity, shards int) *shardedLRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	shards = nextPow2(shards)
	for shards > 1 && shards > capacity {
		shards >>= 1
	}
	perShard := (capacity + shards - 1) / shards
	c := &shardedLRU[V]{
		shards: make([]lruShard[V], shards),
		mask:   uint64(shards - 1),
	}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].items = make(map[cacheKey]*lruEntry[V], perShard)
	}
	return c
}

// shard routes a key to its lock domain. The digest is uniform, so any
// eight bytes of it index shards evenly.
func (c *shardedLRU[V]) shard(key cacheKey) *lruShard[V] {
	return &c.shards[binary.LittleEndian.Uint64(key[:8])&c.mask]
}

// get returns the cached value for key and marks it most recently used.
func (c *shardedLRU[V]) get(key cacheKey) (V, bool) {
	return c.shard(key).get(key)
}

// put stores val under key, evicting the least recently used entry of the
// key's shard when that shard is full.
func (c *shardedLRU[V]) put(key cacheKey, val V) {
	c.shard(key).put(key, val)
}

// len returns the current number of entries across all shards.
func (c *shardedLRU[V]) len() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].len()
	}
	return n
}

func (s *lruShard[V]) get(key cacheKey) (V, bool) {
	s.mu.Lock()
	e, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.moveToFrontLocked(e)
	v := e.val
	s.mu.Unlock()
	return v, true
}

func (s *lruShard[V]) put(key cacheKey, val V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		e.val = val
		s.moveToFrontLocked(e)
		return
	}
	e := &lruEntry[V]{key: key, val: val}
	s.items[key] = e
	s.pushFrontLocked(e)
	if len(s.items) > s.cap {
		s.evictTailLocked()
	}
}

func (s *lruShard[V]) len() int {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	return n
}

// pushFrontLocked links e as the most recently used entry.
//
//pftk:locked(mu)
func (s *lruShard[V]) pushFrontLocked(e *lruEntry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlinkLocked removes e from the recency list.
//
//pftk:locked(mu)
func (s *lruShard[V]) unlinkLocked(e *lruEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFrontLocked marks e most recently used.
//
//pftk:locked(mu)
func (s *lruShard[V]) moveToFrontLocked(e *lruEntry[V]) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
}

// evictTailLocked drops the least recently used entry.
//
//pftk:locked(mu)
func (s *lruShard[V]) evictTailLocked() {
	e := s.tail
	if e == nil {
		return
	}
	s.unlinkLocked(e)
	delete(s.items, e.key)
}
