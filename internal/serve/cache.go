package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache from canonical
// request hashes to finished results. Predictions and simulations are
// pure functions of their normalized request (simulations carry an
// explicit seed), so a hit can be served verbatim without recomputing.
type lruCache struct {
	mu  sync.Mutex
	cap int // immutable after construction
	//pftk:guardedby mu
	order *list.List // front = most recently used
	//pftk:guardedby mu
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// newLRUCache returns a cache holding up to capacity entries (floored at
// 1).
func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached value for key and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores val under key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the current number of entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
