// Package tfrc implements equation-based congestion control in the style
// of TFRC (Floyd et al., later RFC 5348) — the application the paper's
// introduction motivates: a non-TCP flow that measures its loss event rate
// and round-trip time and paces itself at the rate the PFTK formula says a
// TCP connection would achieve, making it safe to run alongside TCP.
//
// The implementation follows the RFC's structure on top of this
// repository's substrates:
//
//   - the receiver detects loss events (gaps in the sequence space, merged
//     within one RTT) and maintains the average loss interval over the
//     last eight intervals with the RFC's decaying weights;
//   - feedback carries the loss-event rate and receive rate back once per
//     RTT;
//   - the sender sets its pace to the paper's approximate model (eq. 33)
//     with t_RTO = 4·RTT, doubling when no loss has been seen.
package tfrc

import (
	"math"

	"pftk/internal/core"
	"pftk/internal/netem"
	"pftk/internal/pkt"
	"pftk/internal/sim"
)

// lossIntervalWeights are the RFC 5348 weights for the average loss
// interval (most recent first).
var lossIntervalWeights = []float64{1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2}

// LossHistory tracks loss intervals (packet counts between loss events)
// and computes the loss event rate by the average-loss-interval method.
type LossHistory struct {
	// intervals[0] is the open (current) interval; intervals[1..] are
	// closed, most recent first. At most len(lossIntervalWeights)+1
	// entries are kept.
	intervals []float64
}

// NewLossHistory returns an empty history.
func NewLossHistory() *LossHistory {
	return &LossHistory{intervals: []float64{0}}
}

// OnPacket records one received (or inferred-in-flight) packet in the
// current interval.
func (h *LossHistory) OnPacket() {
	h.intervals[0]++
}

// OnLossEvent closes the current interval and opens a new one.
func (h *LossHistory) OnLossEvent() {
	h.intervals = append([]float64{0}, h.intervals...)
	if max := len(lossIntervalWeights) + 1; len(h.intervals) > max {
		h.intervals = h.intervals[:max]
	}
}

// Events returns the number of closed intervals (loss events seen).
func (h *LossHistory) Events() int { return len(h.intervals) - 1 }

// AverageInterval returns the weighted average loss interval per RFC 5348,
// including the open interval when that raises the average (so a long
// loss-free stretch lifts the estimate promptly). Returns 0 when no loss
// event has occurred.
func (h *LossHistory) AverageInterval() float64 {
	n := len(h.intervals) - 1
	if n <= 0 {
		return 0
	}
	avg := func(vals []float64) float64 {
		var s, w float64
		for i, v := range vals {
			if i >= len(lossIntervalWeights) {
				break
			}
			s += lossIntervalWeights[i] * v
			w += lossIntervalWeights[i]
		}
		if w == 0 {
			return 0
		}
		return s / w
	}
	closed := avg(h.intervals[1:])
	withOpen := avg(h.intervals[:len(h.intervals)-1])
	return math.Max(closed, withOpen)
}

// LossEventRate returns p = 1 / average loss interval (0 before any loss).
func (h *LossHistory) LossEventRate() float64 {
	ai := h.AverageInterval()
	if ai <= 0 {
		return 0
	}
	return 1 / ai
}

// On the wire a TFRC flow uses two pkt.Packet kinds: pkt.RateData for
// the paced datagrams (Seq, Sent) and pkt.Feedback for the once-per-RTT
// receiver report (P, Rate as the receive rate, Sent echoing the send
// timestamp of the most recent packet for RTT measurement).

// Config parameterizes a TFRC flow.
type Config struct {
	// InitialRate is the starting pace in packets per second (default
	// 2).
	InitialRate float64
	// MaxRate caps the pace (default 10000 pkts/s).
	MaxRate float64
	// FeedbackRTTs is the feedback interval in RTTs (default 1).
	FeedbackRTTs float64
	// B is the delayed-ACK factor fed to the throughput equation
	// (default 2, TFRC commonly uses 1; the paper's formula takes it as
	// a parameter).
	B int
	// FlowID stamps outgoing packets so shared links can attribute them
	// per flow; packets stamped with another flow's ID are ignored.
	FlowID int32
}

func (c Config) normalize() Config {
	if c.InitialRate <= 0 {
		c.InitialRate = 2
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 10000
	}
	if c.FeedbackRTTs <= 0 {
		c.FeedbackRTTs = 1
	}
	if c.B < 1 {
		c.B = 2
	}
	return c
}

// Link is the transmit interface a flow needs from each path direction;
// *netem.Link and *netem.REDQueueLink both satisfy it.
type Link interface {
	Send(payload pkt.Packet, deliver func(pkt.Packet))
}

// Flow is a rate-based sender/receiver pair over an emulated path.
type Flow struct {
	cfg      Config
	eng      *sim.Engine
	fwd, rev Link

	// Sender state.
	rate    float64
	nextSeq uint64
	sent    int
	stopped bool

	// Receiver state.
	history        *LossHistory
	expected       uint64
	lossEventStart float64
	haveLossEvent  bool
	received       int
	recvInWin      int
	lastFbTime     float64
	rttEst         float64

	// Diagnostics: rate trajectory (time, pace) sampled at each update.
	RateLog []RatePoint
}

// RatePoint is one sample of the sender's pace.
type RatePoint struct {
	Time float64
	Rate float64
}

// NewFlow builds a TFRC flow over path on eng.
func NewFlow(eng *sim.Engine, path *netem.Path, cfg Config) *Flow {
	return NewFlowOnLinks(eng, path.Forward, path.Reverse, cfg)
}

// NewFlowOnLinks builds a TFRC flow over explicit forward and reverse
// links — used to share a bottleneck link with other flows.
func NewFlowOnLinks(eng *sim.Engine, fwd, rev Link, cfg Config) *Flow {
	f := &Flow{
		cfg:     cfg.normalize(),
		eng:     eng,
		fwd:     fwd,
		rev:     rev,
		history: NewLossHistory(),
	}
	f.rate = f.cfg.InitialRate
	return f
}

// Rate returns the current pace in packets per second.
func (f *Flow) Rate() float64 { return f.rate }

// Sent returns the number of packets transmitted.
func (f *Flow) Sent() int { return f.sent }

// Received returns the number of packets that reached the receiver.
func (f *Flow) Received() int { return f.received }

// LossEventRate returns the receiver's current estimate.
func (f *Flow) LossEventRate() float64 { return f.history.LossEventRate() }

// Start begins pacing packets and running the feedback loop.
func (f *Flow) Start() {
	f.schedulePacket()
}

// Stop halts the flow.
func (f *Flow) Stop() { f.stopped = true }

func (f *Flow) schedulePacket() {
	if f.stopped {
		return
	}
	gap := 1 / f.rate
	f.eng.After(gap, func() {
		if f.stopped {
			return
		}
		f.nextSeq++
		f.sent++
		p := pkt.Packet{Seq: f.nextSeq, Sent: f.eng.Now(), Kind: pkt.RateData, Flow: f.cfg.FlowID}
		f.fwd.Send(p, f.onReceive)
		f.schedulePacket()
	})
}

// onReceive is the receiver side: loss-event detection and periodic
// feedback.
func (f *Flow) onReceive(p pkt.Packet) {
	if p.Kind != pkt.RateData || p.Flow != f.cfg.FlowID {
		return
	}
	now := f.eng.Now()
	f.received++
	f.recvInWin++
	f.history.OnPacket()

	if p.Seq > f.expected+1 {
		// Gap: one or more packets lost. Per RFC 5348, losses within
		// one RTT of a loss event's *start* belong to that event;
		// later losses begin a new one.
		rtt := f.rttEst
		if rtt <= 0 {
			rtt = 0.1
		}
		if !f.haveLossEvent || now-f.lossEventStart > rtt {
			f.history.OnLossEvent()
			f.haveLossEvent = true
			f.lossEventStart = now
		}
	}
	if p.Seq > f.expected {
		f.expected = p.Seq
	}

	// Feedback once per FeedbackRTTs·RTT (bootstraps at 100 ms).
	interval := f.cfg.FeedbackRTTs * math.Max(f.rttEst, 0.1)
	if now-f.lastFbTime >= interval {
		win := now - f.lastFbTime
		fb := pkt.Packet{
			Kind: pkt.Feedback,
			Flow: f.cfg.FlowID,
			P:    f.history.LossEventRate(),
			Rate: float64(f.recvInWin) / win,
			Sent: p.Sent,
		}
		f.lastFbTime = now
		f.recvInWin = 0
		f.rev.Send(fb, f.onFeedback)
	}
}

// onFeedback is the sender side: apply the throughput equation.
func (f *Flow) onFeedback(fb pkt.Packet) {
	if fb.Kind != pkt.Feedback || fb.Flow != f.cfg.FlowID || f.stopped {
		return
	}
	// RTT sample: now - send time of the echoed packet (the feedback
	// path adds the reverse delay, as in real TFRC).
	sample := f.eng.Now() - fb.Sent
	if sample > 0 {
		if f.rttEst == 0 {
			f.rttEst = sample
		} else {
			f.rttEst = 0.9*f.rttEst + 0.1*sample
		}
	}
	var target float64
	if fb.P <= 0 {
		// No loss seen yet: double per feedback interval, bounded by
		// twice the receive rate (RFC 5348 slow start).
		target = math.Min(2*f.rate, 2*math.Max(fb.Rate, 1))
	} else {
		pr := core.Params{RTT: math.Max(f.rttEst, 1e-3), T0: 4 * math.Max(f.rttEst, 1e-3), Wm: 0, B: f.cfg.B}
		target = core.SendRateApprox(fb.P, pr)
		// RFC 5348 bounds the send rate by twice the reported receive
		// rate to stay responsive to reductions.
		target = math.Min(target, 2*math.Max(fb.Rate, 0.5))
	}
	f.rate = math.Min(math.Max(target, 0.5), f.cfg.MaxRate)
	f.RateLog = append(f.RateLog, RatePoint{Time: f.eng.Now(), Rate: f.rate})
}
