package tfrc

import (
	"math"
	"testing"

	"pftk/internal/core"
	"pftk/internal/netem"
	"pftk/internal/reno"
	"pftk/internal/sim"
	"pftk/internal/stats"
)

func TestLossHistoryWeightedAverage(t *testing.T) {
	h := NewLossHistory()
	// Build closed intervals [newest..oldest] = 100, 200 by feeding
	// packets and loss events.
	for i := 0; i < 200; i++ {
		h.OnPacket()
	}
	h.OnLossEvent()
	for i := 0; i < 100; i++ {
		h.OnPacket()
	}
	h.OnLossEvent()
	// open interval = 0 packets; closed = [100, 200] with weights 1, 1.
	want := (100.0 + 200.0) / 2
	if got := h.AverageInterval(); math.Abs(got-want) > 1e-9 {
		t.Errorf("average interval = %g, want %g", got, want)
	}
	if got := h.LossEventRate(); math.Abs(got-1/want) > 1e-12 {
		t.Errorf("loss event rate = %g, want %g", got, 1/want)
	}
	if h.Events() != 2 {
		t.Errorf("events = %d, want 2", h.Events())
	}
}

func TestLossHistoryOpenIntervalLiftsAverage(t *testing.T) {
	h := NewLossHistory()
	for i := 0; i < 10; i++ {
		h.OnPacket()
	}
	h.OnLossEvent()
	base := h.AverageInterval()
	// A long loss-free run must raise the estimate before the next loss
	// closes the interval.
	for i := 0; i < 1000; i++ {
		h.OnPacket()
	}
	if got := h.AverageInterval(); got <= base {
		t.Errorf("open interval did not lift the average: %g <= %g", got, base)
	}
}

func TestLossHistoryKeepsEightIntervals(t *testing.T) {
	h := NewLossHistory()
	for e := 0; e < 20; e++ {
		for i := 0; i < 50; i++ {
			h.OnPacket()
		}
		h.OnLossEvent()
	}
	if len(h.intervals) != len(lossIntervalWeights)+1 {
		t.Errorf("kept %d intervals, want %d", len(h.intervals), len(lossIntervalWeights)+1)
	}
}

func TestLossHistoryNoLoss(t *testing.T) {
	h := NewLossHistory()
	for i := 0; i < 100; i++ {
		h.OnPacket()
	}
	if h.LossEventRate() != 0 || h.AverageInterval() != 0 {
		t.Error("rate should be 0 before any loss event")
	}
}

// runFlow runs one TFRC flow over a Bernoulli-loss path and returns it.
func runFlow(t *testing.T, drop float64, dur float64, seed uint64) *Flow {
	t.Helper()
	var eng sim.Engine
	path := netem.NewPath(&eng, netem.SymmetricPath(0.05, netem.NewBernoulli(drop, sim.NewRNG(seed))))
	f := NewFlow(&eng, path, Config{})
	f.Start()
	eng.RunUntil(dur)
	f.Stop()
	return f
}

func TestFlowSlowStartWithoutLoss(t *testing.T) {
	f := runFlow(t, 0, 30, 1)
	if f.Rate() < 100 {
		t.Errorf("lossless flow rate = %g, want substantial growth from 2", f.Rate())
	}
	if f.Received() == 0 {
		t.Error("nothing received")
	}
}

func TestFlowConvergesNearEquation(t *testing.T) {
	drop := 0.02
	f := runFlow(t, drop, 600, 7)
	p := f.LossEventRate()
	if p <= 0 {
		t.Fatal("no loss events measured")
	}
	// The long-run send rate should be near the equation evaluated at
	// the measured loss event rate and RTT.
	pr := core.Params{RTT: math.Max(f.rttEst, 1e-3), T0: 4 * f.rttEst, Wm: 0, B: 2}
	want := core.SendRateApprox(p, pr)
	got := float64(f.Sent()) / 600
	if r := got / want; r < 0.4 || r > 2.5 {
		t.Errorf("flow rate %g vs equation %g (ratio %.2f, p=%.4f)", got, want, r, p)
	}
}

func TestFlowRespondsToLossIncrease(t *testing.T) {
	var eng sim.Engine
	loss := netem.NewBernoulli(0.002, sim.NewRNG(3))
	path := netem.NewPath(&eng, netem.SymmetricPath(0.05, loss))
	f := NewFlow(&eng, path, Config{})
	f.Start()
	eng.RunUntil(300)
	before := f.Rate()
	loss.P = 0.08 // congestion onset
	eng.RunUntil(600)
	f.Stop()
	after := f.Rate()
	if after > before/2 {
		t.Errorf("rate did not drop after 40x loss increase: %g -> %g", before, after)
	}
}

// TestFlowTCPFriendly is the headline property: under the same loss
// process, the TFRC flow's long-run rate stays within a small factor of a
// real (simulated) TCP connection's — it neither starves TCP nor is
// starved.
func TestFlowTCPFriendly(t *testing.T) {
	drop := 0.03
	// TCP Reno reference over an identical (but independent) path.
	res := reno.RunConnection(reno.ConnConfig{
		Sender: reno.SenderConfig{RWnd: 512, MinRTO: 0.3, Tick: 0.1},
		Path:   netem.SymmetricPath(0.05, netem.NewBernoulli(drop, sim.NewRNG(11))),
	}, 1200)
	tcpRate := res.SendRate()

	f := runFlow(t, drop, 1200, 12)
	tfrcRate := float64(f.Sent()) / 1200

	ratio := tfrcRate / tcpRate
	t.Logf("tfrc %.1f pkts/s vs tcp %.1f pkts/s (ratio %.2f)", tfrcRate, tcpRate, ratio)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("TFRC/TCP rate ratio = %.2f, want within [0.3, 3]", ratio)
	}
}

// TestFlowSmootherThanTCP checks TFRC's design goal: a smoother rate
// trajectory than TCP's sawtooth under the same conditions.
func TestFlowSmootherThanTCP(t *testing.T) {
	drop := 0.03
	window := 10.0

	// TFRC per-window send counts.
	var eng sim.Engine
	path := netem.NewPath(&eng, netem.SymmetricPath(0.05, netem.NewBernoulli(drop, sim.NewRNG(21))))
	f := NewFlow(&eng, path, Config{})
	f.Start()
	var tfrcCounts []float64
	prevSent := 0
	for w := 0; w < 60; w++ {
		eng.RunUntil(float64(w+1) * window)
		tfrcCounts = append(tfrcCounts, float64(f.Sent()-prevSent))
		prevSent = f.Sent()
	}
	f.Stop()

	// TCP per-window send counts from the trace.
	res := reno.RunConnection(reno.ConnConfig{
		Sender: reno.SenderConfig{RWnd: 512, MinRTO: 0.3, Tick: 0.1},
		Path:   netem.SymmetricPath(0.05, netem.NewBernoulli(drop, sim.NewRNG(22))),
	}, 600)
	var tcpCounts []float64
	for w := 0; w < 60; w++ {
		n := 0
		for _, r := range res.Trace.Window(float64(w)*window, float64(w+1)*window) {
			if r.Kind == 1 || r.Kind == 2 { // send or retransmit
				n++
			}
		}
		tcpCounts = append(tcpCounts, float64(n))
	}

	// Skip the slow-start warmup windows for both.
	cv := func(xs []float64) float64 {
		xs = xs[6:]
		return stats.Std(xs) / stats.Mean(xs)
	}
	tfrcCV, tcpCV := cv(tfrcCounts), cv(tcpCounts)
	t.Logf("rate CV: tfrc %.3f, tcp %.3f", tfrcCV, tcpCV)
	if tfrcCV >= tcpCV {
		t.Errorf("TFRC rate CV %.3f not smoother than TCP %.3f", tfrcCV, tcpCV)
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.InitialRate != 2 || c.MaxRate != 10000 || c.FeedbackRTTs != 1 || c.B != 2 {
		t.Errorf("defaults: %+v", c)
	}
}

func TestFlowRateCap(t *testing.T) {
	var eng sim.Engine
	path := netem.NewPath(&eng, netem.SymmetricPath(0.01, nil))
	f := NewFlow(&eng, path, Config{MaxRate: 50})
	f.Start()
	eng.RunUntil(60)
	f.Stop()
	if f.Rate() > 50 {
		t.Errorf("rate %g exceeds cap 50", f.Rate())
	}
}

func TestRateLogRecordsTrajectory(t *testing.T) {
	f := runFlow(t, 0.02, 300, 31)
	if len(f.RateLog) < 10 {
		t.Fatalf("rate log has %d points", len(f.RateLog))
	}
	prev := 0.0
	for i, pt := range f.RateLog {
		if pt.Time < prev {
			t.Fatalf("rate log out of order at %d", i)
		}
		prev = pt.Time
		if pt.Rate <= 0 || pt.Rate > 10000 {
			t.Fatalf("rate log point %d out of range: %+v", i, pt)
		}
	}
	// After slow start the log should show both increases and decreases
	// (the controller breathing with the loss process).
	var ups, downs int
	for i := 1; i < len(f.RateLog); i++ {
		if f.RateLog[i].Rate > f.RateLog[i-1].Rate {
			ups++
		} else if f.RateLog[i].Rate < f.RateLog[i-1].Rate {
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Errorf("rate trajectory should oscillate: %d ups, %d downs", ups, downs)
	}
}
