package tfrc

import (
	"testing"

	"pftk/internal/netem"
	"pftk/internal/reno"
	"pftk/internal/sim"
)

// sharedBottleneck wires nTCP Reno flows and one TFRC flow through the
// same forward link (bottleneck), returning the senders and the flow.
func sharedBottleneck(eng *sim.Engine, fwd reno.DataPath, tfrcFwd Link, nTCP int) ([]*reno.Sender, *Flow) {
	var tcps []*reno.Sender
	for i := 0; i < nTCP; i++ {
		rev := netem.NewLink(eng, netem.LinkConfig{Delay: netem.ConstantDelay(0.04)})
		snd := reno.NewSender(eng, fwd, reno.SenderConfig{RWnd: 64, MinRTO: 0.5, Tick: 0.1})
		rcv := reno.NewReceiver(eng, rev, snd.OnAck, reno.ReceiverConfig{})
		snd.SetDeliver(rcv.OnPacket)
		tcps = append(tcps, snd)
	}
	tfrcRev := netem.NewLink(eng, netem.LinkConfig{Delay: netem.ConstantDelay(0.04)})
	flow := NewFlowOnLinks(eng, tfrcFwd, tfrcRev, Config{})
	return tcps, flow
}

// TestTFRCSharesREDBottleneckWithTCP is the definitive friendliness test:
// one TFRC flow and three TCP Reno flows through the *same* RED-managed
// bottleneck. RED's probabilistic early drops hit paced and bursty
// arrivals proportionally, so both congestion controllers observe
// comparable loss rates — and the equation-based flow must then claim a
// share comparable to a TCP flow's.
func TestTFRCSharesREDBottleneckWithTCP(t *testing.T) {
	var eng sim.Engine
	const (
		rate = 100.0
		dur  = 3000.0
		nTCP = 3
	)
	fwd := netem.NewREDLink(&eng, netem.LinkConfig{
		Rate: rate, QueueCap: 25, Delay: netem.ConstantDelay(0.04),
	}, sim.NewRNG(99))
	tcps, flow := sharedBottleneck(&eng, fwd, fwd, nTCP)

	for _, s := range tcps {
		s.Start()
	}
	flow.Start()
	eng.RunUntil(dur)
	flow.Stop()

	var tcpMean float64
	for _, s := range tcps {
		s.Stop()
		tcpMean += float64(s.Stats().TotalSent()) / dur
	}
	tcpMean /= nTCP
	tfrcRate := float64(flow.Sent()) / dur
	ratio := tfrcRate / tcpMean
	t.Logf("tfrc %.1f pkts/s vs mean tcp %.1f pkts/s (ratio %.2f)", tfrcRate, tcpMean, ratio)
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("TFRC/TCP shared-RED-bottleneck ratio %.2f outside [0.4, 2.5]", ratio)
	}
	total := tfrcRate + tcpMean*nTCP
	if total < 0.75*rate {
		t.Errorf("aggregate %.1f pkts/s underutilizes the %.0f pkts/s link", total, rate)
	}
	// Both controllers should be seeing comparable loss rates.
	pTCP := 0.0
	for _, s := range tcps {
		pTCP += float64(s.Stats().LossIndications()) / float64(s.Stats().TotalSent())
	}
	pTCP /= nTCP
	if ev := flow.LossEventRate(); ev < pTCP/5 || ev > pTCP*5 {
		t.Errorf("loss rates diverge: tfrc events %.4f vs tcp indications %.4f", ev, pTCP)
	}
}

// TestTFRCPacingAdvantageAtDropTail documents the known pathology the RED
// test avoids: at a *drop-tail* bottleneck, a smoothly-paced flow almost
// never lands on a full queue (its packets arrive as the server drains),
// while TCP's window bursts slam into it and absorb nearly all drops. The
// paced flow therefore measures a far lower loss-event rate and the
// equation lets it dominate. The test asserts the effect exists (TFRC
// above its fair share, TCP loss rate much higher than TFRC's) — it is
// the drop-tail/pacing interaction, not an implementation accident, and
// the reason AQM matters for equation-based control.
func TestTFRCPacingAdvantageAtDropTail(t *testing.T) {
	var eng sim.Engine
	const (
		rate = 100.0
		dur  = 2000.0
		nTCP = 3
	)
	fwd := netem.NewLink(&eng, netem.LinkConfig{
		Rate: rate, QueueCap: 25, Delay: netem.ConstantDelay(0.04),
	})
	tcps, flow := sharedBottleneck(&eng, fwd, fwd, nTCP)
	for _, s := range tcps {
		s.Start()
	}
	flow.Start()
	eng.RunUntil(dur)
	flow.Stop()
	var tcpMean, pTCP float64
	for _, s := range tcps {
		s.Stop()
		st := s.Stats()
		tcpMean += float64(st.TotalSent()) / dur
		pTCP += float64(st.LossIndications()) / float64(st.TotalSent())
	}
	tcpMean /= nTCP
	pTCP /= nTCP
	tfrcRate := float64(flow.Sent()) / dur
	t.Logf("drop-tail: tfrc %.1f pkts/s vs tcp %.1f pkts/s; loss tfrc %.4f tcp %.4f",
		tfrcRate, tcpMean, flow.LossEventRate(), pTCP)
	if tfrcRate <= tcpMean {
		t.Errorf("expected the paced flow to beat TCP at a drop-tail queue (%.1f vs %.1f)",
			tfrcRate, tcpMean)
	}
	if flow.LossEventRate() >= pTCP {
		t.Errorf("expected the paced flow to see less loss (%.4f vs %.4f)",
			flow.LossEventRate(), pTCP)
	}
}
