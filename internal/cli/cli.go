// Package cli provides the small shared plumbing of the command-line
// tools. Its centerpiece is Writer, a sticky-error io.Writer wrapper:
// report-printing code calls Printf/Println freely, and the first write
// error is latched and returned once from Err at the end of the run.
// This is how the commands satisfy the errdrop analyzer honestly — the
// error is captured and propagated, not discarded — without threading an
// error return through every line of table output.
package cli

import (
	"fmt"
	"io"
)

// Writer wraps an io.Writer with a sticky error. After the first failed
// write, subsequent calls are no-ops, and Err returns the first failure.
// The zero value is not useful; use NewWriter.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter returns a sticky-error writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Printf formats to the underlying writer unless an error is latched.
func (w *Writer) Printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

// Println writes the operands followed by a newline unless an error is
// latched.
func (w *Writer) Println(args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintln(w.w, args...)
}

// Print writes the operands unless an error is latched.
func (w *Writer) Print(args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprint(w.w, args...)
}

// WriteString writes s verbatim unless an error is latched.
func (w *Writer) WriteString(s string) {
	if w.err != nil {
		return
	}
	_, w.err = io.WriteString(w.w, s)
}

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

// CloseWith closes c and, if errp holds no earlier error, stores the
// close error into it. It is the standard way to not lose the error of a
// deferred Close on a file that was written to:
//
//	defer cli.CloseWith(&err, f)
func CloseWith(errp *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *errp == nil {
		*errp = cerr
	}
}
