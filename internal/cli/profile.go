package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the CPU and/or heap profiling requested by a
// tool's -cpuprofile/-memprofile flags (empty path = disabled) and
// returns a stop function to run after the workload. Stop ends the CPU
// profile and writes the heap profile — after a GC, so it reflects live
// steady-state memory, not transient garbage. Each path is created
// eagerly, so a bad path fails the run before the workload instead of
// after it.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF, memF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			_ = cpuF.Close()
		}
		if memF != nil {
			_ = memF.Close()
		}
	}
	if memPath != "" {
		if memF, err = os.Create(memPath); err != nil {
			return nil, err
		}
	}
	if cpuPath != "" {
		if cpuF, err = os.Create(cpuPath); err != nil {
			cleanup()
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cleanup()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() (err error) {
		if cpuF != nil {
			pprof.StopCPUProfile()
			err = cpuF.Close()
			cpuF = nil
		}
		if memF != nil {
			runtime.GC()
			if werr := pprof.Lookup("allocs").WriteTo(memF, 0); werr != nil && err == nil {
				err = fmt.Errorf("write heap profile: %w", werr)
			}
			if cerr := memF.Close(); cerr != nil && err == nil {
				err = cerr
			}
			memF = nil
		}
		return err
	}, nil
}
