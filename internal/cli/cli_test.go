package cli

import (
	"errors"
	"strings"
	"testing"
)

// failAfter fails every write once n bytes have been accepted.
type failAfter struct {
	n   int
	got strings.Builder
}

var errWrite = errors.New("cli_test: synthetic write failure")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.got.Len() >= f.n {
		return 0, errWrite
	}
	f.got.Write(p)
	return len(p), nil
}

func TestWriterHappyPath(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Printf("a=%d ", 1)
	w.Print("b ")
	w.Println("c")
	w.WriteString("d\n")
	if err := w.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
	if got, want := sb.String(), "a=1 b c\nd\n"; got != want {
		t.Fatalf("output %q, want %q", got, want)
	}
}

func TestWriterStickyError(t *testing.T) {
	f := &failAfter{n: 4}
	w := NewWriter(f)
	w.Printf("1234")
	if err := w.Err(); err != nil {
		t.Fatalf("unexpected early error: %v", err)
	}
	w.Println("this write fails")
	if !errors.Is(w.Err(), errWrite) {
		t.Fatalf("Err() = %v, want %v", w.Err(), errWrite)
	}
	// Later writes are suppressed and the first error is retained.
	w.Printf("suppressed")
	w.WriteString("suppressed")
	if !errors.Is(w.Err(), errWrite) {
		t.Fatalf("Err() after more writes = %v, want %v", w.Err(), errWrite)
	}
	if got := f.got.String(); got != "1234" {
		t.Fatalf("underlying writer got %q, want %q", got, "1234")
	}
}

type closerWithErr struct{ err error }

func (c closerWithErr) Close() error { return c.err }

func TestCloseWith(t *testing.T) {
	var err error
	CloseWith(&err, closerWithErr{nil})
	if err != nil {
		t.Fatalf("clean close stored %v", err)
	}
	closeErr := errors.New("cli_test: close failed")
	CloseWith(&err, closerWithErr{closeErr})
	if !errors.Is(err, closeErr) {
		t.Fatalf("err = %v, want close error", err)
	}
	// An earlier error is never overwritten.
	other := errors.New("cli_test: earlier")
	err = other
	CloseWith(&err, closerWithErr{closeErr})
	if !errors.Is(err, other) {
		t.Fatalf("err = %v, want earlier error preserved", err)
	}
}
