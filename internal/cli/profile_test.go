package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	s := 0
	for i := 0; i < 1e6; i++ {
		s += i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartProfilesDisabled(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("stop with no profiles: %v", err)
	}
}

func TestStartProfilesBadPathFailsEagerly(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Error("expected an error for an uncreatable CPU profile path")
	}
	if _, err := StartProfiles("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem")); err == nil {
		t.Error("expected an error for an uncreatable heap profile path")
	}
}
