package tracez

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// buildFixtureTracer produces a deterministic tracer: a sim clock, two
// request traces with children, one error, one slow outlier.
func buildFixtureTracer() *Tracer {
	clock := simClock()
	tr := New(Options{Shards: 1, PerShard: 64, Now: clock})

	r1 := tr.StartRoot("POST /v1/predict")
	r1.SetAttr("request_id", "req-000001")
	c1 := r1.StartChild("eval")
	c1.End()
	r1.End()

	r2 := tr.StartRoot("POST /v1/predict")
	r2.SetAttr("request_id", "req-000002")
	c2 := r2.StartChild("eval")
	c2.SetError("bad point")
	// Make r2's eval the slow outlier: burn 10 clock ticks.
	for i := 0; i < 10; i++ {
		clock()
	}
	c2.End()
	r2.End()
	return tr
}

// updateGolden refreshes testdata goldens instead of comparing:
//
//	go test ./internal/tracez -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestHandlerJSONGolden pins the /debug/tracez?format=json document for
// a deterministic sim-clock tracer, byte for byte, against
// testdata/view.golden. An intended change to the view shape is
// accepted with -update.
func TestHandlerJSONGolden(t *testing.T) {
	tr := buildFixtureTracer()
	req := httptest.NewRequest("GET", "/debug/tracez?format=json&n=2", nil)
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	const goldenPath = "testdata/view.golden"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, rec.Body.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}

	if got := rec.Body.Bytes(); !bytes.Equal(got, golden) {
		t.Errorf("JSON view drifted from golden (run with -update after an intended change).\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

func TestHandlerHTMLListsSpans(t *testing.T) {
	tr := buildFixtureTracer()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tracez", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"POST /v1/predict", "eval", "bad point", "request_id=req-000001", "clock=sim"} {
		if !strings.Contains(body, want) {
			t.Errorf("HTML view missing %q", want)
		}
	}
}

func TestHandlerJSONLFormat(t *testing.T) {
	tr := buildFixtureTracer()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tracez?format=jsonl", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	recs, err := ReadJSONL(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("jsonl dump has %d records, want 4", len(recs))
	}
}

func TestHandlerRejectsBadParams(t *testing.T) {
	tr := buildFixtureTracer()
	for _, url := range []string{"/debug/tracez?format=xml", "/debug/tracez?n=0", "/debug/tracez?n=x"} {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

// TestViewJSONStable re-marshals the parsed view and confirms it holds
// the documented top-level fields, guarding the public JSON contract.
func TestViewJSONStable(t *testing.T) {
	tr := buildFixtureTracer()
	var v View
	data, err := json.Marshal(tr.BuildView(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.Clock != "sim" || v.Spans != 4 || v.Retained != 4 || len(v.Names) != 2 {
		t.Fatalf("view round-trip mismatch: %+v", v)
	}
}
