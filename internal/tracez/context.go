package tracez

import "context"

// ctxKey is the private context key for the active span.
type ctxKey struct{}

// noop is the span FromContext hands out when no span is attached: a
// disabled span whose methods all no-op. It is shared — safe because
// every method on a disabled span returns before touching state.
var noop = &Span{}

// NewContext returns ctx with sp attached as the active span. The span
// pointer must outlive every FromContext use, which holds for the
// request-scoped pattern (root span lives on the handler frame, child
// spans are opened and ended within it or by jobs it submitted).
func NewContext(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the active span, or the shared disabled span when
// none is attached — never nil, so callers chain StartChild without a
// presence check.
func FromContext(ctx context.Context) *Span {
	if sp, ok := ctx.Value(ctxKey{}).(*Span); ok && sp != nil {
		return sp
	}
	return noop
}
