package tracez

import (
	"bufio"
	"encoding/json"
	"io"
)

// WriteJSONL writes every retained record as one JSON object per line,
// sorted by (Start, Span) — the same order as Snapshot, so a JSONL dump
// of a deterministic-clock tracer is byte-reproducible.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, rec := range t.Snapshot() {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a WriteJSONL stream back into records, for tests and
// offline span tooling.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var out []Record
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}
