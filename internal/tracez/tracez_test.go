package tracez

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// simClock returns a deterministic clock advancing 1 ms per reading.
func simClock() func() float64 {
	t := 0.0
	return func() float64 {
		t += 0.001
		return t
	}
}

func TestDisabledTracerIsFreeAndSilent(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("op")
	if sp.Enabled() {
		t.Fatal("span from nil tracer reports enabled")
	}
	child := sp.StartChild("child")
	child.SetAttr("k", "v")
	child.SetError("boom")
	child.End()
	sp.End()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil tracer reports state: len=%d total=%d dropped=%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	if got := tr.NowSeconds(); got != 0 {
		t.Fatalf("nil tracer NowSeconds = %g, want 0", got)
	}

	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartRoot("op")
		c := sp.StartChild("child")
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f objects per span pair, want 0", allocs)
	}
}

func TestSpanLifecycleRecords(t *testing.T) {
	tr := New(Options{Now: simClock()})
	root := tr.StartRoot("request")
	root.SetAttr("request_id", "req-1")
	child := root.StartChild("eval")
	child.SetError("bad point")
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Sorted by start: root started first.
	if recs[0].Name != "request" || recs[1].Name != "eval" {
		t.Fatalf("unexpected order: %q, %q", recs[0].Name, recs[1].Name)
	}
	r, c := recs[0], recs[1]
	if r.Parent != 0 {
		t.Errorf("root parent = %d, want 0", r.Parent)
	}
	if c.Parent != r.Span || c.Trace != r.Trace {
		t.Errorf("child (trace %d parent %d) not under root (trace %d span %d)", c.Trace, c.Parent, r.Trace, r.Span)
	}
	if c.Err != "bad point" {
		t.Errorf("child err = %q", c.Err)
	}
	if len(r.Attrs) != 1 || r.Attrs[0] != (Attr{"request_id", "req-1"}) {
		t.Errorf("root attrs = %v", r.Attrs)
	}
	if !(c.Duration > 0) || !(r.Duration > c.Duration) {
		t.Errorf("durations root=%g child=%g want root > child > 0", r.Duration, c.Duration)
	}
}

func TestEndIsExactlyOnce(t *testing.T) {
	tr := New(Options{Now: simClock()})
	sp := tr.StartRoot("op")
	sp.End()
	sp.End()
	sp.SetAttr("late", "ignored")
	sp.SetError("late")
	if n := tr.Len(); n != 1 {
		t.Fatalf("double End committed %d records, want 1", n)
	}
	rec := tr.Snapshot()[0]
	if len(rec.Attrs) != 0 || rec.Err != "" {
		t.Fatalf("post-End mutation leaked into record: %+v", rec)
	}
}

func TestAttrCapDropsAndCounts(t *testing.T) {
	tr := New(Options{Now: simClock()})
	sp := tr.StartRoot("op")
	for i := 0; i < maxSpanAttrs+3; i++ {
		sp.SetAttr(fmt.Sprintf("k%d", i), "v")
	}
	sp.End()
	if got := len(tr.Snapshot()[0].Attrs); got != maxSpanAttrs {
		t.Errorf("retained %d attrs, want %d", got, maxSpanAttrs)
	}
	if got := tr.AttrDrops(); got != 3 {
		t.Errorf("AttrDrops = %d, want 3", got)
	}
}

func TestRingOverwritesOldestAndCountsDropped(t *testing.T) {
	tr := New(Options{Shards: 1, PerShard: 4, Now: simClock()})
	for i := 0; i < 10; i++ {
		sp := tr.StartRoot(fmt.Sprintf("op%d", i))
		sp.End()
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("retained %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped %d, want 6", got)
	}
	recs := tr.Snapshot()
	// The survivors are the newest four, in start order.
	for i, want := range []string{"op6", "op7", "op8", "op9"} {
		if recs[i].Name != want {
			t.Errorf("record %d = %q, want %q", i, recs[i].Name, want)
		}
	}
}

func TestStartRootAtBackdatesQueueWait(t *testing.T) {
	clock := simClock()
	tr := New(Options{Now: clock})
	submitted := tr.NowSeconds()
	clock() // time passes in the queue
	clock()
	sp := tr.StartRootAt("workpool.wait", submitted)
	sp.End()
	rec := tr.Snapshot()[0]
	if !(rec.Duration >= 0.003) {
		t.Fatalf("backdated span duration %g, want >= 3 clock ticks", rec.Duration)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(Options{Now: simClock()})
	root := tr.StartRoot("request")
	ctx := NewContext(context.Background(), &root)
	got := FromContext(ctx)
	if got != &root {
		t.Fatal("FromContext did not return the attached span")
	}
	if sp := FromContext(context.Background()); sp == nil || sp.Enabled() {
		t.Fatal("empty context must yield the shared disabled span")
	}
	// The disabled span must be usable without effect.
	c := FromContext(context.Background()).StartChild("x")
	c.End()
	if tr.Len() != 0 {
		t.Fatal("disabled span committed a record")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New(Options{Now: simClock()})
	a := tr.StartRoot("a")
	b := a.StartChild("b")
	b.SetAttr("k", "v")
	b.End()
	a.SetError("late")
	a.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("JSONL has %d lines, want 2", got)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Snapshot()
	if len(recs) != len(want) {
		t.Fatalf("round-trip lost records: %d vs %d", len(recs), len(want))
	}
	for i := range recs {
		if recs[i].Name != want[i].Name || recs[i].Err != want[i].Err || recs[i].Span != want[i].Span {
			t.Errorf("record %d mismatch: %+v vs %+v", i, recs[i], want[i])
		}
	}
}

// TestShardedRingConcurrentCommits is the race-detector test for the
// sharded ring: many goroutines start, annotate and end spans
// concurrently while readers snapshot, total and dump — `go test -race`
// turns any unsynchronized access into a failure.
func TestShardedRingConcurrentCommits(t *testing.T) {
	tr := New(Options{Shards: 4, PerShard: 64})
	const goroutines = 8
	const spansPer = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				sp := tr.StartRoot("worker")
				sp.SetAttr("g", fmt.Sprint(g))
				child := sp.StartChild("inner")
				child.End()
				sp.End()
			}
		}(g)
	}
	// Concurrent readers exercise every lock path.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = tr.Snapshot()
			_ = tr.Len()
			_ = tr.Total()
			_ = tr.Dropped()
			_ = tr.BuildView(0)
			_ = tr.WriteJSONL(&bytes.Buffer{})
		}
	}()
	wg.Wait()
	<-done
	if got, want := tr.Total(), uint64(goroutines*spansPer*2); got != want {
		t.Fatalf("committed %d spans, want %d", got, want)
	}
	if got := tr.Len(); got != 4*64 {
		t.Fatalf("retained %d, want full ring %d", got, 4*64)
	}
}
