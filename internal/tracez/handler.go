package tracez

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
)

// viewBounds are the latency bucket upper bounds (seconds) of the
// /debug/tracez per-name histograms: 10 µs to 10 s, the range from an
// in-memory cache hit to a long queued simulation, plus the implicit
// overflow bucket.
var viewBounds = []float64{
	0.00001, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// defaultViewSpans is how many recent/slowest/errored spans each name
// section lists without an explicit ?n=.
const defaultViewSpans = 5

// NameSummary aggregates every retained span of one name.
type NameSummary struct {
	// Name is the span name.
	Name string `json:"name"`
	// Count is the number of retained spans.
	Count int `json:"count"`
	// Errors counts retained spans with a non-empty Err.
	Errors int `json:"errors"`
	// MinSeconds and MaxSeconds bound the retained durations.
	MinSeconds float64 `json:"min_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	// P50Seconds, P90Seconds and P99Seconds are exact quantiles of the
	// retained durations (not bucket interpolations — the samples are
	// at hand).
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// Bounds and Counts form the latency histogram; Counts has one
	// entry per bound plus a final overflow bucket, mirroring
	// obs.HistogramValue.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	// Recent holds the newest spans, newest first.
	Recent []Record `json:"recent"`
	// Slowest holds the longest spans, longest first.
	Slowest []Record `json:"slowest"`
	// Errored holds the newest failed spans, newest first.
	Errored []Record `json:"errored,omitempty"`
}

// View is the JSON document served by /debug/tracez?format=json.
type View struct {
	// Clock is "sim" for a deterministic caller-supplied clock, "wall"
	// otherwise.
	Clock string `json:"clock"`
	// Spans counts every span ever committed.
	Spans uint64 `json:"spans"`
	// Retained counts the spans currently in the ring.
	Retained int `json:"retained"`
	// Dropped counts committed spans the ring has overwritten.
	Dropped uint64 `json:"dropped"`
	// Names holds one summary per span name, sorted by name.
	Names []NameSummary `json:"names"`
}

// BuildView aggregates the current ring contents into the export shape.
// limit bounds the recent/slowest/errored lists (<= 0 means the
// default).
func (t *Tracer) BuildView(limit int) View {
	if limit <= 0 {
		limit = defaultViewSpans
	}
	v := View{Clock: "wall", Names: []NameSummary{}}
	if t == nil {
		return v
	}
	if t.sim {
		v.Clock = "sim"
	}
	recs := t.Snapshot()
	v.Spans = t.Total()
	v.Retained = len(recs)
	v.Dropped = t.Dropped()

	byName := map[string][]Record{}
	for _, r := range recs {
		byName[r.Name] = append(byName[r.Name], r)
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v.Names = append(v.Names, summarize(name, byName[name], limit))
	}
	return v
}

// summarize builds one name's section from its records (already sorted
// by (Start, Span) ascending).
func summarize(name string, recs []Record, limit int) NameSummary {
	s := NameSummary{
		Name:   name,
		Count:  len(recs),
		Bounds: viewBounds,
		Counts: make([]uint64, len(viewBounds)+1),
	}
	durs := make([]float64, 0, len(recs))
	for _, r := range recs {
		durs = append(durs, r.Duration)
		s.Counts[bucketOf(r.Duration)]++
		if r.Err != "" {
			s.Errors++
		}
	}
	sort.Float64s(durs)
	s.MinSeconds = durs[0]
	s.MaxSeconds = durs[len(durs)-1]
	s.P50Seconds = quantileSorted(durs, 0.50)
	s.P90Seconds = quantileSorted(durs, 0.90)
	s.P99Seconds = quantileSorted(durs, 0.99)

	// Recent: newest first.
	n := limit
	if n > len(recs) {
		n = len(recs)
	}
	s.Recent = make([]Record, n)
	for i := 0; i < n; i++ {
		s.Recent[i] = recs[len(recs)-1-i]
	}

	// Slowest: longest first; ties broken by span ID for determinism.
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Duration > b.Duration {
			return true
		}
		if a.Duration < b.Duration {
			return false
		}
		return a.Span < b.Span
	})
	s.Slowest = sorted[:n]

	// Errored: newest failed spans first.
	for i := len(recs) - 1; i >= 0 && len(s.Errored) < limit; i-- {
		if recs[i].Err != "" {
			s.Errored = append(s.Errored, recs[i])
		}
	}
	return s
}

// bucketOf returns the histogram bucket index for a duration.
func bucketOf(d float64) int {
	i := sort.SearchFloat64s(viewBounds, d)
	return i
}

// quantileSorted returns the nearest-rank quantile of an ascending
// slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// Handler serves the span view: HTML by default, the View JSON with
// ?format=json, and a raw span JSONL dump with ?format=jsonl. The
// optional ?n= bounds the per-name span lists.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				http.Error(w, "tracez: n must be a positive integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		switch r.URL.Query().Get("format") {
		case "", "html":
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			if err := tracezTmpl.Execute(w, t.BuildView(limit)); err != nil {
				// Header already sent; nothing more to report.
				return
			}
		case "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(t.BuildView(limit))
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = t.WriteJSONL(w)
		default:
			http.Error(w, "tracez: unknown format (valid: html, json, jsonl)", http.StatusBadRequest)
		}
	})
}

// tmplFuncs renders durations and IDs compactly in the HTML view.
var tmplFuncs = template.FuncMap{
	"ms": func(seconds float64) string {
		return fmt.Sprintf("%.3fms", seconds*1e3)
	},
	"hex": func(id uint64) string {
		return fmt.Sprintf("%016x", id)
	},
}

var tracezTmpl = template.Must(template.New("tracez").Funcs(tmplFuncs).Parse(`<!DOCTYPE html>
<html><head><title>/debug/tracez</title><style>
body { font-family: monospace; margin: 1.5em; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #999; padding: 2px 8px; text-align: right; }
th { background: #eee; }
td.l, th.l { text-align: left; }
.err { color: #b00; }
</style></head><body>
<h1>tracez — recent spans</h1>
<p>clock={{.Clock}} spans={{.Spans}} retained={{.Retained}} dropped={{.Dropped}}</p>
{{range .Names}}
<h2>{{.Name}}</h2>
<p>count={{.Count}} errors={{.Errors}} p50={{ms .P50Seconds}} p90={{ms .P90Seconds}} p99={{ms .P99Seconds}} max={{ms .MaxSeconds}}</p>
<table>
<tr><th class="l">kind</th><th class="l">trace</th><th>start</th><th>duration</th><th class="l">error</th><th class="l">attrs</th></tr>
{{range .Recent}}<tr><td class="l">recent</td><td class="l">{{hex .Trace}}</td><td>{{printf "%.6f" .Start}}</td><td>{{ms .Duration}}</td><td class="l err">{{.Err}}</td><td class="l">{{range .Attrs}}{{.Key}}={{.Value}} {{end}}</td></tr>
{{end}}
{{range .Slowest}}<tr><td class="l">slow</td><td class="l">{{hex .Trace}}</td><td>{{printf "%.6f" .Start}}</td><td>{{ms .Duration}}</td><td class="l err">{{.Err}}</td><td class="l">{{range .Attrs}}{{.Key}}={{.Value}} {{end}}</td></tr>
{{end}}
{{range .Errored}}<tr><td class="l">errored</td><td class="l">{{hex .Trace}}</td><td>{{printf "%.6f" .Start}}</td><td>{{ms .Duration}}</td><td class="l err">{{.Err}}</td><td class="l">{{range .Attrs}}{{.Key}}={{.Value}} {{end}}</td></tr>
{{end}}
</table>
{{end}}
</body></html>
`))
