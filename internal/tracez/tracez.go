// Package tracez is the request-scoped tracing layer of the
// reproduction: value-type span contexts recorded into a lock-sharded
// ring buffer, with JSONL export and an HTML+JSON /debug/tracez view of
// recent, slow and errored spans per name.
//
// The design follows internal/obs's nil-handle convention: a nil
// *Tracer is the disabled tracer. Starting a span on it returns the
// zero Span, every Span method on a disabled span is a no-op, and the
// disabled path costs one nil check with zero allocations — components
// hold and use tracers unconditionally, there is no separate "enabled"
// flag to branch on.
//
// # Span model
//
// A trace is a tree of spans sharing one trace ID. Spans are plain
// values (no per-span heap allocation at Start): StartRoot opens a new
// trace, Span.StartChild opens a child in the same trace, and End
// stamps the duration and commits an immutable Record into the ring.
// Attributes are bounded (maxSpanAttrs) so a span never grows.
//
// # Clock discipline
//
// The tracer's clock is pluggable. The default wall tracer stamps spans
// with Unix seconds; simulation contexts pass the engine clock instead
// (Options.Now), so spans recorded inside a deterministic simulation
// carry engine time and are themselves deterministic — the golden test
// for the /debug/tracez JSON view relies on exactly this.
//
// # Ring discipline
//
// Completed spans land in a fixed ring sharded by span ID, each shard
// behind its own mutex, so concurrent End calls from many request
// goroutines contend only 1/shards of the time. The ring overwrites
// oldest-first; Dropped counts what was overwritten. Nothing in the
// package allocates after the rings are built except the Record commit
// itself (the attribute copy), which only runs when tracing is on.
package tracez

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpanAttrs bounds the attributes one span can carry; SetAttr calls
// beyond the cap are dropped (and counted on the tracer).
const maxSpanAttrs = 8

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Record is one completed span as stored in the ring and exported over
// JSONL and /debug/tracez.
type Record struct {
	// Trace groups the spans of one request or one run.
	Trace uint64 `json:"trace"`
	// Span is the span's own ID, unique within the tracer.
	Span uint64 `json:"span"`
	// Parent is the parent span ID; 0 for root spans.
	Parent uint64 `json:"parent,omitempty"`
	// Name is the operation ("POST /v1/predict", "eval", ...).
	Name string `json:"name"`
	// Start is the span's start time in the tracer's clock: Unix
	// seconds for the wall tracer, engine seconds for sim tracers.
	Start float64 `json:"start"`
	// Duration is the span length in seconds.
	Duration float64 `json:"duration"`
	// Err is the span's error annotation, empty when it succeeded.
	Err string `json:"err,omitempty"`
	// Attrs are the span's annotations, in SetAttr order.
	Attrs []Attr `json:"attrs,omitempty"`
}

// shard is one mutex-protected slice of the span ring.
type shard struct {
	mu sync.Mutex
	//pftk:guardedby mu
	ring []Record
	//pftk:guardedby mu
	next int
	//pftk:guardedby mu
	total uint64
}

// Options sizes a Tracer. The zero value is usable: 8 shards of 512
// records on the wall clock.
type Options struct {
	// Shards is the number of ring shards (rounded up to a power of
	// two; default 8).
	Shards int
	// PerShard is the ring capacity of each shard (default 512).
	PerShard int
	// Now supplies span timestamps in seconds; nil means wall time
	// (Unix seconds). Simulation contexts pass the engine clock so
	// spans stay deterministic and wall-time-free.
	Now func() float64
}

// Tracer records completed spans into a sharded ring. A nil *Tracer is
// the disabled tracer: StartRoot returns a disabled span and every
// accessor returns zeros.
type Tracer struct {
	now       func() float64
	sim       bool // true when Options.Now was supplied (deterministic clock)
	shardMask uint64
	shards    []shard
	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64
	attrDrops atomic.Uint64
}

// New builds a tracer from o.
func New(o Options) *Tracer {
	shards := o.Shards
	if shards < 1 {
		shards = 8
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < shards {
		n <<= 1
	}
	per := o.PerShard
	if per < 1 {
		per = 512
	}
	t := &Tracer{
		now:       o.Now,
		sim:       o.Now != nil,
		shardMask: uint64(n - 1),
		shards:    make([]shard, n),
	}
	if t.now == nil {
		t.now = wallSeconds
	}
	for i := range t.shards {
		t.shards[i].ring = make([]Record, 0, per)
	}
	return t
}

// wallSeconds is the default clock: Unix time in seconds.
func wallSeconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}

// SimClock reports whether the tracer runs on a caller-supplied
// (deterministic) clock rather than wall time.
func (t *Tracer) SimClock() bool { return t != nil && t.sim }

// NowSeconds returns the tracer's current clock reading, or 0 on the
// disabled tracer. Callers use it to timestamp work (queue submission)
// that later becomes a span via StartRootAt/StartChildAt.
func (t *Tracer) NowSeconds() float64 {
	if t == nil {
		return 0
	}
	return t.now()
}

// StartRoot opens a new trace with one root span. On the disabled
// tracer it returns the zero (disabled) span.
func (t *Tracer) StartRoot(name string) Span {
	if t == nil {
		return Span{}
	}
	return t.StartRootAt(name, t.now())
}

// StartRootAt is StartRoot with an explicit start time in the tracer's
// clock — the shape used for queue-wait spans, whose start (submission)
// precedes the goroutine that opens them.
func (t *Tracer) StartRootAt(name string, start float64) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		tr:    t,
		trace: t.nextTrace.Add(1),
		id:    t.nextSpan.Add(1),
		name:  name,
		start: start,
	}
}

// Span is one in-flight span. The zero Span is the disabled span: every
// method is a no-op, so code holds and annotates spans unconditionally.
// Spans are values; use them from one goroutine at a time (handing a
// span to the goroutine that ends it is fine, concurrent SetAttr is
// not).
type Span struct {
	tr     *Tracer
	trace  uint64
	id     uint64
	parent uint64
	name   string
	start  float64
	err    string
	nattr  int
	attrs  [maxSpanAttrs]Attr
	ended  bool
}

// Enabled reports whether the span records anywhere.
func (sp *Span) Enabled() bool { return sp.tr != nil }

// Trace returns the span's trace ID (0 when disabled).
func (sp *Span) Trace() uint64 { return sp.trace }

// ID returns the span's own ID (0 when disabled).
func (sp *Span) ID() uint64 { return sp.id }

// StartChild opens a child span in the same trace, starting now.
func (sp *Span) StartChild(name string) Span {
	if sp.tr == nil {
		return Span{}
	}
	return sp.StartChildAt(name, sp.tr.now())
}

// StartChildAt is StartChild with an explicit start time in the
// tracer's clock.
func (sp *Span) StartChildAt(name string, start float64) Span {
	t := sp.tr
	if t == nil {
		return Span{}
	}
	return Span{
		tr:     t,
		trace:  sp.trace,
		id:     t.nextSpan.Add(1),
		parent: sp.id,
		name:   name,
		start:  start,
	}
}

// SetAttr annotates the span. Attributes beyond the per-span cap are
// dropped and counted on the tracer.
func (sp *Span) SetAttr(key, value string) {
	if sp.tr == nil || sp.ended {
		return
	}
	if sp.nattr >= maxSpanAttrs {
		sp.tr.attrDrops.Add(1)
		return
	}
	sp.attrs[sp.nattr] = Attr{Key: key, Value: value}
	sp.nattr++
}

// SetError marks the span failed. The last non-empty message wins.
func (sp *Span) SetError(msg string) {
	if sp.tr == nil || sp.ended || msg == "" {
		return
	}
	sp.err = msg
}

// End stamps the duration and commits the span to the ring. Ending a
// disabled or already-ended span is a no-op, so exactly-once commit
// holds even when an error path and a defer both call End.
func (sp *Span) End() {
	t := sp.tr
	if t == nil || sp.ended {
		return
	}
	sp.ended = true
	rec := Record{
		Trace:    sp.trace,
		Span:     sp.id,
		Parent:   sp.parent,
		Name:     sp.name,
		Start:    sp.start,
		Duration: t.now() - sp.start,
		Err:      sp.err,
	}
	if sp.nattr > 0 {
		rec.Attrs = make([]Attr, sp.nattr)
		copy(rec.Attrs, sp.attrs[:sp.nattr])
	}
	t.commit(rec)
}

// commit appends one record to the shard owned by its span ID,
// overwriting oldest-first once the ring is full.
func (t *Tracer) commit(rec Record) {
	s := &t.shards[rec.Span&t.shardMask]
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, rec)
	} else {
		s.ring[s.next] = rec
		s.next++
		if s.next == len(s.ring) {
			s.next = 0
		}
	}
	s.total++
	s.mu.Unlock()
}

// Len returns the number of records currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.ring)
		s.mu.Unlock()
	}
	return n
}

// Total returns the number of spans ever committed.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += s.total
		s.mu.Unlock()
	}
	return n
}

// Dropped returns the number of committed spans the ring has already
// overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var total, kept uint64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		total += s.total
		kept += uint64(len(s.ring))
		s.mu.Unlock()
	}
	return total - kept
}

// AttrDrops returns the number of SetAttr calls dropped by the per-span
// attribute cap.
func (t *Tracer) AttrDrops() uint64 {
	if t == nil {
		return 0
	}
	return t.attrDrops.Load()
}

// Snapshot copies every retained record, sorted by (Start, Span) so the
// output is deterministic for a deterministic clock. The slice is
// freshly allocated and safe to retain.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	var out []Record
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out = append(out, s.ring...)
		s.mu.Unlock()
	}
	sortRecords(out)
	return out
}

// sortRecords orders by (Start, Span): span IDs are unique, so the
// order is total and stable across runs of a deterministic clock.
// Ordered comparisons only — ties fall through to the span ID without a
// raw float equality test.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Start < b.Start {
			return true
		}
		if a.Start > b.Start {
			return false
		}
		return a.Span < b.Span
	})
}
