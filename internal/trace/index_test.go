package trace

import (
	"bytes"
	"errors"
	"testing"
)

func indexOver(t *testing.T, tr Trace) *IndexedReader {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	ir, err := OpenIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return ir
}

func TestIndexedReaderRandomAccess(t *testing.T) {
	tr := sampleTrace()
	ir := indexOver(t, tr)
	if ir.Len() != len(tr) {
		t.Fatalf("Len = %d, want %d", ir.Len(), len(tr))
	}
	// Access out of order.
	for _, i := range []int{5, 0, len(tr) - 1, 3} {
		rec, err := ir.At(i)
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
		if rec != tr[i] {
			t.Errorf("At(%d) = %v, want %v", i, rec, tr[i])
		}
	}
	if _, err := ir.At(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := ir.At(ir.Len()); err == nil {
		t.Error("past-end index accepted")
	}
}

func TestIndexedReaderSeekTime(t *testing.T) {
	tr := sampleTrace() // times 0 .. 2.1
	ir := indexOver(t, tr)
	cases := []struct {
		t    float64
		want int
	}{
		{-1, 0},
		{0, 0},
		{0.25, 2}, // first record at t=0.25
		{0.26, 4}, // after the two records at 0.25
		{99, ir.Len()},
	}
	for _, c := range cases {
		got, err := ir.SeekTime(c.t)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("SeekTime(%g) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestIndexedReaderWindow(t *testing.T) {
	tr := sampleTrace()
	ir := indexOver(t, tr)
	got, err := ir.Window(0.25, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Window(0.25, 1.5)
	if len(got) != len(want) {
		t.Fatalf("window %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIndexedReaderSliceBounds(t *testing.T) {
	ir := indexOver(t, sampleTrace())
	if _, err := ir.Slice(3, 2); err == nil {
		t.Error("inverted slice accepted")
	}
	if _, err := ir.Slice(-1, 2); err == nil {
		t.Error("negative slice accepted")
	}
	all, err := ir.Slice(0, ir.Len())
	if err != nil || len(all) != ir.Len() {
		t.Errorf("full slice: %d records, err %v", len(all), err)
	}
}

func TestOpenIndexRejectsBadStreams(t *testing.T) {
	if _, err := OpenIndex(bytes.NewReader([]byte("short")), 5); !errors.Is(err, ErrBadMagic) {
		t.Errorf("short stream: %v", err)
	}
	if _, err := OpenIndex(bytes.NewReader([]byte("NOTMAGIC________")), 16); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Truncated record body.
	var buf bytes.Buffer
	if err := Encode(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := OpenIndex(bytes.NewReader(trunc), int64(len(trunc))); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestOpenIndexEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil); err != nil {
		t.Fatal(err)
	}
	ir, err := OpenIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ir.Len() != 0 {
		t.Errorf("empty trace Len = %d", ir.Len())
	}
	if idx, err := ir.SeekTime(0); err != nil || idx != 0 {
		t.Errorf("SeekTime on empty: %d, %v", idx, err)
	}
}
