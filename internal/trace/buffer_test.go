package trace

import "testing"

func TestBufferAppendAndRecords(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Append(Record{Time: float64(i), Kind: KindSend, Seq: uint64(i)})
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d, want 10", b.Len())
	}
	recs := b.Records()
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, i)
		}
	}
	if !recs.Sorted() {
		t.Error("records out of time order")
	}
}

func TestBufferZeroCapacityUsable(t *testing.T) {
	b := NewBuffer(0)
	b.Append(Record{Kind: KindAck, Ack: 7})
	if b.Len() != 1 || b.Records()[0].Ack != 7 {
		t.Errorf("records = %v", b.Records())
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(8)
	for i := 0; i < 20; i++ {
		b.Append(Record{Time: float64(i), Kind: KindSend})
	}
	c := cap(b.recs)
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", b.Len())
	}
	if cap(b.recs) != c {
		t.Errorf("Reset dropped capacity: %d -> %d", c, cap(b.recs))
	}
}

// TestBufferAppendSteadyStateZeroAlloc: once grown past the working size,
// Append never reallocates — the property that keeps trace capture off
// the simulator's allocation budget between growth steps.
func TestBufferAppendSteadyStateZeroAlloc(t *testing.T) {
	b := NewBuffer(4096)
	allocs := testing.AllocsPerRun(500, func() {
		if b.Len() == 4096 {
			b.Reset()
		}
		b.Append(Record{Time: 1, Kind: KindSend, Seq: 1})
	})
	if allocs != 0 {
		t.Errorf("Append within capacity allocates %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkTraceAppend measures the amortized per-record capture cost,
// growth steps included.
func BenchmarkTraceAppend(b *testing.B) {
	buf := NewBuffer(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Append(Record{Time: float64(i), Kind: KindSend, Seq: uint64(i)})
	}
}
