package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// tcpdump-style text format.
//
// The paper's raw data was tcpdump output captured at each sender. This
// codec renders our traces in a tcpdump-like one-line-per-event text form
// and parses it back, so traces can be eyeballed, grepped and diffed the
// way the original analysis programs' inputs were:
//
//	0.000000 snd > rcv: seq 1
//	0.104000 rcv > snd: ack 2
//	1.500000 snd > rcv: seq 5 (retx to)
//	2.000000 snd: timeout backoff=1
//	2.100000 snd: td seq=7
//	2.200000 snd: cwnd 4.50
//	2.300000 snd: round rtt=0.104 flight=6
//
// Ground-truth records (timeout/td/cwnd/round) use a "snd:" prefix since
// they never appear on a real wire.

// EncodeTcpdump writes t in the tcpdump-like text format.
func EncodeTcpdump(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for i, r := range t {
		var line string
		switch r.Kind {
		case KindSend:
			line = fmt.Sprintf("%.6f snd > rcv: seq %d", r.Time, r.Seq)
		case KindRetransmit:
			flavor := "fast"
			if r.Val == 1 {
				flavor = "to"
			}
			line = fmt.Sprintf("%.6f snd > rcv: seq %d (retx %s)", r.Time, r.Seq, flavor)
		case KindAck:
			line = fmt.Sprintf("%.6f rcv > snd: ack %d", r.Time, r.Ack)
		case KindTimeoutFired:
			line = fmt.Sprintf("%.6f snd: timeout backoff=%d", r.Time, int(r.Val))
		case KindTDIndication:
			line = fmt.Sprintf("%.6f snd: td seq=%d", r.Time, r.Seq)
		case KindCwndChange:
			line = fmt.Sprintf("%.6f snd: cwnd %.2f", r.Time, r.Val)
		case KindRoundSample:
			line = fmt.Sprintf("%.6f snd: round rtt=%.6f flight=%d", r.Time, r.Val, r.Seq)
		default:
			return fmt.Errorf("trace: record %d has unencodable kind %d", i, r.Kind)
		}
		if _, err := bw.WriteString(line + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeTcpdump parses the tcpdump-like text format back into a Trace.
// Unrecognized lines produce an error with the line number.
func DecodeTcpdump(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseTcpdumpLine(line)
		if err != nil {
			return t, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t = append(t, rec)
	}
	if err := sc.Err(); err != nil {
		return t, err
	}
	return t, nil
}

func parseTcpdumpLine(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Record{}, fmt.Errorf("too few fields in %q", line)
	}
	ts, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad timestamp %q", fields[0])
	}
	rest := fields[1:]
	switch {
	case len(rest) >= 5 && rest[0] == "snd" && rest[1] == ">" && rest[2] == "rcv:" && rest[3] == "seq":
		seq, err := strconv.ParseUint(rest[4], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad seq %q", rest[4])
		}
		if len(rest) >= 7 && rest[5] == "(retx" {
			val := 0.0
			if strings.TrimSuffix(rest[6], ")") == "to" {
				val = 1
			}
			return Record{Time: ts, Kind: KindRetransmit, Seq: seq, Val: val}, nil
		}
		return Record{Time: ts, Kind: KindSend, Seq: seq}, nil

	case len(rest) >= 5 && rest[0] == "rcv" && rest[1] == ">" && rest[2] == "snd:" && rest[3] == "ack":
		ack, err := strconv.ParseUint(rest[4], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad ack %q", rest[4])
		}
		return Record{Time: ts, Kind: KindAck, Ack: ack}, nil

	case len(rest) >= 2 && rest[0] == "snd:":
		switch {
		case strings.HasPrefix(rest[1], "timeout"):
			if len(rest) < 3 || !strings.HasPrefix(rest[2], "backoff=") {
				return Record{}, fmt.Errorf("malformed timeout line %q", line)
			}
			k, err := strconv.Atoi(strings.TrimPrefix(rest[2], "backoff="))
			if err != nil {
				return Record{}, fmt.Errorf("bad backoff in %q", line)
			}
			return Record{Time: ts, Kind: KindTimeoutFired, Val: float64(k)}, nil
		case rest[1] == "td":
			if len(rest) < 3 || !strings.HasPrefix(rest[2], "seq=") {
				return Record{}, fmt.Errorf("malformed td line %q", line)
			}
			seq, err := strconv.ParseUint(strings.TrimPrefix(rest[2], "seq="), 10, 64)
			if err != nil {
				return Record{}, fmt.Errorf("bad td seq in %q", line)
			}
			return Record{Time: ts, Kind: KindTDIndication, Seq: seq}, nil
		case rest[1] == "cwnd":
			if len(rest) < 3 {
				return Record{}, fmt.Errorf("malformed cwnd line %q", line)
			}
			v, err := strconv.ParseFloat(rest[2], 64)
			if err != nil {
				return Record{}, fmt.Errorf("bad cwnd in %q", line)
			}
			return Record{Time: ts, Kind: KindCwndChange, Val: v}, nil
		case rest[1] == "round":
			if len(rest) < 4 || !strings.HasPrefix(rest[2], "rtt=") || !strings.HasPrefix(rest[3], "flight=") {
				return Record{}, fmt.Errorf("malformed round line %q", line)
			}
			rtt, err := strconv.ParseFloat(strings.TrimPrefix(rest[2], "rtt="), 64)
			if err != nil {
				return Record{}, fmt.Errorf("bad rtt in %q", line)
			}
			flight, err := strconv.ParseUint(strings.TrimPrefix(rest[3], "flight="), 10, 64)
			if err != nil {
				return Record{}, fmt.Errorf("bad flight in %q", line)
			}
			return Record{Time: ts, Kind: KindRoundSample, Seq: flight, Val: rtt}, nil
		}
	}
	return Record{}, fmt.Errorf("unrecognized line %q", line)
}
