// Package trace defines the sender-side packet event traces used
// throughout this repository — the stand-in for the tcpdump captures the
// paper collected at each sender — together with binary and JSON-lines
// codecs and filtering helpers.
//
// A trace is a time-ordered sequence of Records. Two classes of records
// coexist:
//
//   - wire-level records (Send, Retransmit, Ack) carry exactly the
//     information a tcpdump capture at the sender would: timestamps,
//     sequence numbers and cumulative ACKs. The analysis package infers
//     loss indications from these alone, mirroring the paper's
//     methodology.
//   - ground-truth records (TDIndication, TimeoutFired, CwndChange,
//     RoundSample) are emitted by the simulated TCP stack and used to
//     validate the inference in tests and to compute quantities, such as
//     the RTT-window correlation of Section IV, that need internal state.
//
// Sequence numbers count packets (segments), not bytes, matching the
// paper's packet-based model.
package trace

import (
	"fmt"
	"sort"
)

// Kind identifies the type of a trace record.
type Kind uint8

// Record kinds.
const (
	// KindInvalid is the zero Kind; it never appears in valid traces.
	KindInvalid Kind = iota
	// KindSend is an original transmission of packet Seq.
	KindSend
	// KindRetransmit is a retransmission of packet Seq. Val is 1 if the
	// retransmission was triggered by a timeout, 0 if by fast
	// retransmit.
	KindRetransmit
	// KindAck is the arrival of a cumulative acknowledgment. Ack is the
	// next packet expected by the receiver (all packets < Ack have been
	// received).
	KindAck
	// KindTDIndication is a ground-truth triple-duplicate (fast
	// retransmit) loss indication at the sender.
	KindTDIndication
	// KindTimeoutFired is a ground-truth retransmission-timeout loss
	// indication. Val holds the backoff exponent: 0 for the first
	// timeout of a sequence (duration T0), 1 for the doubled timeout,
	// and so on.
	KindTimeoutFired
	// KindCwndChange records a congestion-window update; Val is the new
	// window in packets.
	KindCwndChange
	// KindRoundSample records one "round" observation: Val is the round
	// duration (an RTT sample) and Seq holds the number of packets in
	// flight during that round. Used for the Section IV correlation
	// study.
	KindRoundSample
	kindMax // one past the last valid kind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRetransmit:
		return "retx"
	case KindAck:
		return "ack"
	case KindTDIndication:
		return "td"
	case KindTimeoutFired:
		return "timeout"
	case KindCwndChange:
		return "cwnd"
	case KindRoundSample:
		return "round"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined record kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindMax }

// Record is one trace event.
type Record struct {
	// Time is seconds since the start of the connection.
	Time float64 `json:"t"`
	// Kind is the event type.
	Kind Kind `json:"k"`
	// Seq is the packet sequence number for Send/Retransmit records and
	// the flight size for RoundSample records.
	Seq uint64 `json:"seq,omitempty"`
	// Ack is the cumulative acknowledgment for Ack records.
	Ack uint64 `json:"ack,omitempty"`
	// Val carries kind-specific data; see the Kind constants.
	Val float64 `json:"v,omitempty"`
}

// String implements fmt.Stringer.
func (r Record) String() string {
	return fmt.Sprintf("%.6f %s seq=%d ack=%d val=%g", r.Time, r.Kind, r.Seq, r.Ack, r.Val)
}

// Trace is a time-ordered sequence of records.
type Trace []Record

// Duration returns the time span covered by the trace (last minus first
// timestamp), or 0 for traces with fewer than two records.
func (t Trace) Duration() float64 {
	if len(t) < 2 {
		return 0
	}
	return t[len(t)-1].Time - t[0].Time
}

// Sorted reports whether the records are in non-decreasing time order.
func (t Trace) Sorted() bool {
	return sort.SliceIsSorted(t, func(i, j int) bool { return t[i].Time < t[j].Time })
}

// Sort orders the records by time, stably, preserving the relative order
// of simultaneous records.
func (t Trace) Sort() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].Time < t[j].Time })
}

// Filter returns the records for which keep returns true.
func (t Trace) Filter(keep func(Record) bool) Trace {
	var out Trace
	for _, r := range t {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// Kind returns the records of the given kind.
func (t Trace) Kind(k Kind) Trace {
	return t.Filter(func(r Record) bool { return r.Kind == k })
}

// Count returns the number of records of the given kind.
func (t Trace) Count(k Kind) int {
	n := 0
	for _, r := range t {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// PacketsSent returns the total number of data transmissions in the trace
// (originals plus retransmissions) — the paper's N_t, since the send rate
// counts every packet "regardless of its eventual fate".
func (t Trace) PacketsSent() int {
	return t.Count(KindSend) + t.Count(KindRetransmit)
}

// Window returns the records with Time in [from, to).
func (t Trace) Window(from, to float64) Trace {
	return t.Filter(func(r Record) bool { return r.Time >= from && r.Time < to })
}

// Validate checks structural invariants: kinds are defined, timestamps are
// non-decreasing and non-negative.
func (t Trace) Validate() error {
	prev := 0.0
	for i, r := range t {
		if !r.Kind.Valid() {
			return fmt.Errorf("trace: record %d has invalid kind %d", i, r.Kind)
		}
		if r.Time < 0 {
			return fmt.Errorf("trace: record %d has negative time %g", i, r.Time)
		}
		if r.Time < prev {
			return fmt.Errorf("trace: record %d time %g before previous %g", i, r.Time, prev)
		}
		prev = r.Time
	}
	return nil
}
