package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() Trace {
	return Trace{
		{Time: 0.0, Kind: KindSend, Seq: 1},
		{Time: 0.1, Kind: KindSend, Seq: 2},
		{Time: 0.25, Kind: KindAck, Ack: 2, Val: 0.25},
		{Time: 0.25, Kind: KindCwndChange, Val: 2},
		{Time: 0.3, Kind: KindSend, Seq: 3},
		{Time: 0.3, Kind: KindSend, Seq: 4},
		{Time: 1.5, Kind: KindTimeoutFired, Val: 0},
		{Time: 1.5, Kind: KindRetransmit, Seq: 3, Val: 1},
		{Time: 1.9, Kind: KindAck, Ack: 5, Val: 0.4},
		{Time: 2.0, Kind: KindTDIndication},
		{Time: 2.1, Kind: KindRoundSample, Seq: 4, Val: 0.31},
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindSend: "send", KindRetransmit: "retx", KindAck: "ack",
		KindTDIndication: "td", KindTimeoutFired: "timeout",
		KindCwndChange: "cwnd", KindRoundSample: "round",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d String = %q, want %q", k, k.String(), s)
		}
		if !k.Valid() {
			t.Errorf("kind %v should be valid", k)
		}
	}
	if KindInvalid.Valid() || Kind(200).Valid() {
		t.Error("invalid kinds reported valid")
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind String should include numeric value")
	}
}

func TestRecordString(t *testing.T) {
	s := (Record{Time: 1.25, Kind: KindSend, Seq: 7}).String()
	if !strings.Contains(s, "send") || !strings.Contains(s, "seq=7") {
		t.Errorf("Record.String = %q", s)
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := sampleTrace()
	if d := tr.Duration(); d != 2.1 {
		t.Errorf("Duration = %g, want 2.1", d)
	}
	if (Trace{}).Duration() != 0 || (Trace{{Time: 5}}).Duration() != 0 {
		t.Error("degenerate durations should be 0")
	}
	if !tr.Sorted() {
		t.Error("sample should be sorted")
	}
	if got := tr.Count(KindSend); got != 4 {
		t.Errorf("Count(send) = %d, want 4", got)
	}
	if got := tr.PacketsSent(); got != 5 {
		t.Errorf("PacketsSent = %d, want 5 (4 sends + 1 retx)", got)
	}
	if got := len(tr.Kind(KindAck)); got != 2 {
		t.Errorf("Kind(ack) len = %d, want 2", got)
	}
	win := tr.Window(0.25, 1.5)
	if len(win) != 4 {
		t.Errorf("Window(0.25, 1.5) len = %d, want 4 (from-inclusive, to-exclusive)", len(win))
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTraceSort(t *testing.T) {
	tr := Trace{
		{Time: 2, Kind: KindSend, Seq: 3},
		{Time: 1, Kind: KindSend, Seq: 1},
		{Time: 1, Kind: KindSend, Seq: 2},
	}
	tr.Sort()
	if !tr.Sorted() {
		t.Fatal("not sorted after Sort")
	}
	// stability: the two t=1 records keep their relative order
	if tr[0].Seq != 1 || tr[1].Seq != 2 {
		t.Errorf("Sort not stable: %v", tr)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Trace{
		{{Time: 0, Kind: KindInvalid}},
		{{Time: -1, Kind: KindSend}},
		{{Time: 2, Kind: KindSend}, {Time: 1, Kind: KindSend}},
		{{Time: 0, Kind: Kind(99)}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(tr) {
		t.Fatalf("decoded %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Errorf("record %d: %v != %v", i, got[i], tr[i])
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil); err != nil {
		t.Fatalf("Encode(empty): %v", err)
	}
	if buf.Len() != 8 {
		t.Errorf("empty trace should encode to just the 8-byte header, got %d bytes", buf.Len())
	}
	got, err := Decode(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("Decode(empty) = %v, %v", got, err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := Decode(strings.NewReader("NOTATRACEFILE..."))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	_, err = Decode(strings.NewReader("abc"))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("short stream err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	_, err := Decode(bytes.NewReader(trunc))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated decode err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestCorruptKindRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Trace{{Time: 1, Kind: KindSend}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8+8] = 250 // kind byte of first record
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Error("corrupt kind should fail decode")
	}
}

func TestWriterRejectsInvalidKind(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Record{Kind: KindInvalid}); err == nil {
		t.Error("invalid kind should be rejected at write time")
	}
}

func TestWriterCount(t *testing.T) {
	w := NewWriter(io.Discard)
	for i := 0; i < 3; i++ {
		if err := w.Write(Record{Time: float64(i), Kind: KindSend}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d, want 3", w.Count())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, tr); err != nil {
		t.Fatalf("EncodeJSONL: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(tr) {
		t.Errorf("JSONL lines = %d, want %d", lines, len(tr))
	}
	got, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatalf("DecodeJSONL: %v", err)
	}
	if len(got) != len(tr) {
		t.Fatalf("decoded %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Errorf("record %d: %v != %v", i, got[i], tr[i])
		}
	}
}

func TestJSONLRejectsInvalidKind(t *testing.T) {
	if err := EncodeJSONL(io.Discard, Trace{{Kind: Kind(99)}}); err == nil {
		t.Error("encode should reject invalid kind")
	}
	if _, err := DecodeJSONL(strings.NewReader(`{"t":1,"k":99}` + "\n")); err == nil {
		t.Error("decode should reject invalid kind")
	}
}

func TestJSONLGarbage(t *testing.T) {
	if _, err := DecodeJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("garbage should fail")
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(times []uint32, kinds []uint8, seqs []uint64, vals []float64) bool {
		n := len(times)
		for _, l := range []int{len(kinds), len(seqs), len(vals)} {
			if l < n {
				n = l
			}
		}
		tr := make(Trace, 0, n)
		tcur := 0.0
		for i := 0; i < n; i++ {
			tcur += float64(times[i]%1000) / 1000
			tr = append(tr, Record{
				Time: tcur,
				Kind: Kind(kinds[i]%uint8(kindMax-1)) + 1,
				Seq:  seqs[i],
				Ack:  seqs[i] / 2,
				Val:  vals[i],
			})
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFilter(t *testing.T) {
	tr := sampleTrace()
	sends := tr.Filter(func(r Record) bool { return r.Kind == KindSend })
	if len(sends) != 4 {
		t.Errorf("filtered %d, want 4", len(sends))
	}
	none := tr.Filter(func(r Record) bool { return false })
	if none != nil {
		t.Errorf("empty filter should return nil, got %v", none)
	}
}
