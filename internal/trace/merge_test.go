package trace

import (
	"testing"
	"testing/quick"
)

func TestMergeOrdersByTime(t *testing.T) {
	a := Trace{{Time: 1, Kind: KindSend, Seq: 1}, {Time: 3, Kind: KindSend, Seq: 3}}
	b := Trace{{Time: 2, Kind: KindSend, Seq: 2}, {Time: 4, Kind: KindSend, Seq: 4}}
	m := Merge(a, b)
	if len(m) != 4 || !m.Sorted() {
		t.Fatalf("merge = %v", m)
	}
	for i, r := range m {
		if r.Seq != uint64(i+1) {
			t.Errorf("position %d: seq %d", i, r.Seq)
		}
	}
}

func TestMergeStableOnTies(t *testing.T) {
	a := Trace{{Time: 1, Kind: KindSend, Seq: 10}}
	b := Trace{{Time: 1, Kind: KindSend, Seq: 20}}
	m := Merge(a, b)
	if m[0].Seq != 10 || m[1].Seq != 20 {
		t.Errorf("tie broken wrong: %v", m)
	}
}

func TestMergeEmpty(t *testing.T) {
	if m := Merge(); m != nil {
		t.Errorf("Merge() = %v", m)
	}
	if m := Merge(Trace{}, nil); m != nil {
		t.Errorf("Merge(empty) = %v", m)
	}
	one := Trace{{Time: 1, Kind: KindSend}}
	if m := Merge(one, nil); len(m) != 1 {
		t.Errorf("Merge(one, nil) = %v", m)
	}
}

func TestQuickMergePreservesAllRecords(t *testing.T) {
	f := func(tsA, tsB []uint16) bool {
		mk := func(ts []uint16) Trace {
			var tr Trace
			cur := 0.0
			for _, v := range ts {
				cur += float64(v%100) / 10
				tr = append(tr, Record{Time: cur, Kind: KindSend})
			}
			return tr
		}
		a, b := mk(tsA), mk(tsB)
		m := Merge(a, b)
		return len(m) == len(a)+len(b) && m.Sorted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShift(t *testing.T) {
	tr := Trace{{Time: 1, Kind: KindSend}, {Time: 2, Kind: KindAck}}
	s := Shift(tr, 10)
	if s[0].Time != 11 || s[1].Time != 12 {
		t.Errorf("shifted = %v", s)
	}
	if tr[0].Time != 1 {
		t.Error("Shift mutated its input")
	}
}

func TestDropPattern(t *testing.T) {
	tr := Trace{
		{Time: 0, Kind: KindSend, Seq: 1},
		{Time: 1, Kind: KindSend, Seq: 2}, // lost: retransmitted below
		{Time: 2, Kind: KindSend, Seq: 3},
		{Time: 3, Kind: KindRetransmit, Seq: 2},
		{Time: 4, Kind: KindSend, Seq: 4},
	}
	got := DropPattern(tr)
	want := []bool{false, true, false, false}
	if len(got) != len(want) {
		t.Fatalf("pattern = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pattern[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
