package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode exercises the binary decoder against arbitrary byte streams:
// it must never panic and must only return structurally valid records.
func FuzzDecode(f *testing.F) {
	// Seed with a valid encoding and a few corruptions.
	var buf bytes.Buffer
	if err := Encode(&buf, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // truncated record
	f.Add([]byte("PFTKTRC"))    // truncated magic
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[9] = 0xFF // kind byte
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, r := range tr {
			if !r.Kind.Valid() {
				t.Errorf("record %d has invalid kind %d after successful decode", i, r.Kind)
			}
		}
	})
}

// FuzzDecodeTcpdump exercises the text parser: no panics, and every
// successfully parsed trace re-encodes.
func FuzzDecodeTcpdump(f *testing.F) {
	f.Add("0.000000 snd > rcv: seq 1\n0.104000 rcv > snd: ack 2\n")
	f.Add("0.5 snd: timeout backoff=2\n")
	f.Add("0.5 snd: td seq=7\n# comment\n\n0.6 snd: cwnd 4.5\n")
	f.Add("0.5 snd: round rtt=0.1 flight=3\n")
	f.Add("garbage\n")
	f.Add("1e300 snd > rcv: seq 18446744073709551615\n")

	f.Fuzz(func(t *testing.T, s string) {
		tr, err := DecodeTcpdump(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeTcpdump(&buf, tr); err != nil {
			t.Errorf("parsed trace failed to re-encode: %v", err)
		}
	})
}

// FuzzDecodeJSONL exercises the JSON-lines decoder.
func FuzzDecodeJSONL(f *testing.F) {
	f.Add(`{"t":1,"k":1,"seq":5}` + "\n")
	f.Add(`{"t":1,"k":99}` + "\n")
	f.Add(`{not json`)
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := DecodeJSONL(strings.NewReader(s))
		if err != nil {
			return
		}
		for i, r := range tr {
			if !r.Kind.Valid() {
				t.Errorf("record %d invalid kind %d", i, r.Kind)
			}
		}
	})
}
