package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTcpdumpRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeTcpdump(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTcpdump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("decoded %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		a, b := tr[i], got[i]
		if a.Kind != b.Kind || a.Seq != b.Seq || a.Ack != b.Ack {
			t.Errorf("record %d: %v != %v", i, a, b)
		}
		if math.Abs(a.Time-b.Time) > 1e-6 {
			t.Errorf("record %d time: %v != %v", i, a.Time, b.Time)
		}
		// Val round-trips for the kinds that carry it.
		switch a.Kind {
		case KindRetransmit, KindTimeoutFired:
			if a.Val != b.Val {
				t.Errorf("record %d val: %v != %v", i, a.Val, b.Val)
			}
		case KindRoundSample:
			if math.Abs(a.Val-b.Val) > 1e-6 {
				t.Errorf("record %d rtt: %v != %v", i, a.Val, b.Val)
			}
		}
	}
}

func TestTcpdumpHumanReadable(t *testing.T) {
	tr := Trace{
		{Time: 0, Kind: KindSend, Seq: 1},
		{Time: 0.1, Kind: KindAck, Ack: 2},
		{Time: 1.5, Kind: KindRetransmit, Seq: 1, Val: 1},
		{Time: 1.5, Kind: KindTimeoutFired, Val: 2},
	}
	var buf bytes.Buffer
	if err := EncodeTcpdump(&buf, tr); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"snd > rcv: seq 1",
		"rcv > snd: ack 2",
		"(retx to)",
		"timeout backoff=2",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTcpdumpSkipsCommentsAndBlank(t *testing.T) {
	input := `# a comment

0.000000 snd > rcv: seq 1

0.100000 rcv > snd: ack 2
`
	got, err := DecodeTcpdump(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2", len(got))
	}
}

func TestTcpdumpRejectsGarbage(t *testing.T) {
	cases := []string{
		"not a line at all",
		"x.y snd > rcv: seq 1",
		"0.5 snd > rcv: seq abc",
		"0.5 rcv > snd: ack ",
		"0.5 snd: timeout",
		"0.5 snd: td",
		"0.5 snd: cwnd",
		"0.5 snd: round rtt=x flight=1",
		"0.5 snd: mystery 42",
	}
	for _, c := range cases {
		if _, err := DecodeTcpdump(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("accepted garbage %q", c)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error for %q missing line number: %v", c, err)
		}
	}
}

func TestTcpdumpFastRetxFlavor(t *testing.T) {
	tr := Trace{{Time: 1, Kind: KindRetransmit, Seq: 9, Val: 0}}
	var buf bytes.Buffer
	if err := EncodeTcpdump(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(retx fast)") {
		t.Errorf("fast retx flavor missing: %s", buf.String())
	}
	got, err := DecodeTcpdump(&buf)
	if err != nil || got[0].Val != 0 {
		t.Errorf("fast retx flavor lost: %v %v", got, err)
	}
}

func TestTcpdumpRejectsInvalidKind(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeTcpdump(&buf, Trace{{Kind: Kind(99)}}); err == nil {
		t.Error("invalid kind encoded")
	}
}
