package trace

// Buffer batches record capture for the simulated TCP stack: a pre-grown
// record buffer with explicit amortized growth, so the per-event hot path
// is a bounds check and a struct store. The simulator appends one record
// per wire event (send, retransmit, ACK) and per ground-truth indication;
// at the campaign scale of Table II that is millions of appends per run,
// which this buffer absorbs with a doubling growth policy instead of
// leaning on append's reallocation inside the event loop.
type Buffer struct {
	recs Trace
}

// NewBuffer returns a buffer pre-grown to hold capacity records without
// reallocating. A non-positive capacity defers allocation to the first
// Append.
func NewBuffer(capacity int) *Buffer {
	b := &Buffer{}
	if capacity > 0 {
		b.recs = make(Trace, 0, capacity)
	}
	return b
}

// Append adds one record at the tail, growing the buffer (amortized
// doubling) only when full.
//
//pftk:hotpath
func (b *Buffer) Append(r Record) {
	if len(b.recs) == cap(b.recs) {
		b.grow()
	}
	//pftklint:ignore hotalloc grow above guarantees spare capacity; this append never reallocates
	b.recs = append(b.recs, r)
}

// grow doubles the buffer's capacity (cold path; Append calls it only
// when the buffer is full).
func (b *Buffer) grow() {
	newCap := 2 * cap(b.recs)
	if newCap < 256 {
		newCap = 256
	}
	recs := make(Trace, len(b.recs), newCap)
	copy(recs, b.recs)
	b.recs = recs
}

// Len returns the number of buffered records.
func (b *Buffer) Len() int { return len(b.recs) }

// Records returns the buffered records as a Trace. The slice is owned by
// the buffer — copy before mutating or before the next Append.
func (b *Buffer) Records() Trace { return b.recs }

// Reset empties the buffer, keeping its capacity for reuse.
func (b *Buffer) Reset() { b.recs = b.recs[:0] }
