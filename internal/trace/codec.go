package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary format
//
//	header: 8-byte magic "PFTKTRC\x01"
//	records: 33 bytes each, little endian:
//	    float64 Time | uint8 Kind | uint64 Seq | uint64 Ack | float64 Val
//
// The fixed-width layout keeps the codec trivially seekable (record i
// starts at 8 + 33*i) — useful for sampling long captures — at a modest
// size cost versus varints.

var magic = [8]byte{'P', 'F', 'T', 'K', 'T', 'R', 'C', 1}

const recordSize = 8 + 1 + 8 + 8 + 8

// ErrBadMagic is returned when a binary stream does not start with the
// trace file magic.
var ErrBadMagic = errors.New("trace: bad magic (not a PFTK trace file)")

// Writer streams records to an io.Writer in the binary format.
type Writer struct {
	w       *bufio.Writer
	started bool
	n       int
	buf     [recordSize]byte
}

// NewWriter returns a Writer emitting to w. The header is written lazily
// on the first record (or on Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	if w.started {
		return nil
	}
	w.started = true
	_, err := w.w.Write(magic[:])
	return err
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if !r.Kind.Valid() {
		return fmt.Errorf("trace: refusing to write record with invalid kind %d", r.Kind)
	}
	if err := w.writeHeader(); err != nil {
		return err
	}
	b := w.buf[:]
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(r.Time))
	b[8] = byte(r.Kind)
	binary.LittleEndian.PutUint64(b[9:], r.Seq)
	binary.LittleEndian.PutUint64(b[17:], r.Ack)
	binary.LittleEndian.PutUint64(b[25:], math.Float64bits(r.Val))
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	w.n++
	return nil
}

// WriteAll appends every record of t.
func (w *Writer) WriteAll(t Trace) error {
	for _, r := range t {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Flush writes the header (if no record forced it yet) and flushes
// buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader decodes records from a binary trace stream.
type Reader struct {
	r       *bufio.Reader
	started bool
	buf     [recordSize]byte
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) readHeader() error {
	if r.started {
		return nil
	}
	r.started = true
	var got [8]byte
	if _, err := io.ReadFull(r.r, got[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return ErrBadMagic
		}
		return err
	}
	if got != magic {
		return ErrBadMagic
	}
	return nil
}

// Read returns the next record, or io.EOF at a clean end of stream. A
// truncated trailing record yields io.ErrUnexpectedEOF.
func (r *Reader) Read() (Record, error) {
	if err := r.readHeader(); err != nil {
		return Record{}, err
	}
	b := r.buf[:]
	if _, err := io.ReadFull(r.r, b); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	rec := Record{
		Time: math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		Kind: Kind(b[8]),
		Seq:  binary.LittleEndian.Uint64(b[9:]),
		Ack:  binary.LittleEndian.Uint64(b[17:]),
		Val:  math.Float64frombits(binary.LittleEndian.Uint64(b[25:])),
	}
	if !rec.Kind.Valid() {
		return Record{}, fmt.Errorf("trace: corrupt record kind %d", rec.Kind)
	}
	return rec, nil
}

// ReadAll decodes the remainder of the stream into a Trace.
func (r *Reader) ReadAll() (Trace, error) {
	var t Trace
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return t, nil
		}
		if err != nil {
			return t, err
		}
		t = append(t, rec)
	}
}

// Encode writes t to w in the binary format.
func Encode(w io.Writer, t Trace) error {
	tw := NewWriter(w)
	if err := tw.WriteAll(t); err != nil {
		return err
	}
	return tw.Flush()
}

// Decode reads a complete binary trace from r.
func Decode(r io.Reader) (Trace, error) {
	return NewReader(r).ReadAll()
}

// EncodeJSONL writes t as one JSON object per line — the interoperable
// format for feeding traces to external plotting tools.
func EncodeJSONL(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range t {
		if !r.Kind.Valid() {
			return fmt.Errorf("trace: record %d has invalid kind %d", i, r.Kind)
		}
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads a JSON-lines trace from r.
func DecodeJSONL(r io.Reader) (Trace, error) {
	dec := json.NewDecoder(r)
	var t Trace
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return t, nil
			}
			return t, err
		}
		if !rec.Kind.Valid() {
			return t, fmt.Errorf("trace: record %d has invalid kind %d", len(t), rec.Kind)
		}
		t = append(t, rec)
	}
}
