package trace

// Merge combines multiple traces into one time-ordered trace — used to
// build aggregate views of multi-flow experiments (e.g. all senders
// sharing a bottleneck). Inputs must individually be sorted; the merge is
// stable across inputs (earlier arguments win ties).
func Merge(traces ...Trace) Trace {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	if total == 0 {
		return nil
	}
	out := make(Trace, 0, total)
	idx := make([]int, len(traces))
	for len(out) < total {
		best := -1
		var bestT float64
		for i, t := range traces {
			if idx[i] >= len(t) {
				continue
			}
			if best == -1 || t[idx[i]].Time < bestT {
				best = i
				bestT = t[idx[i]].Time
			}
		}
		out = append(out, traces[best][idx[best]])
		idx[best]++
	}
	return out
}

// Shift returns a copy of the trace with all timestamps offset by dt —
// used to align serially-collected connections (the Fig. 8 campaign
// leaves 50-second gaps between traces) onto one timeline.
func Shift(t Trace, dt float64) Trace {
	out := make(Trace, len(t))
	for i, r := range t {
		r.Time += dt
		out[i] = r
	}
	return out
}

// DropPattern extracts the boolean per-packet loss pattern implied by a
// sender-side trace: for each original transmission, whether it was
// subsequently retransmitted (a proxy for "this packet was lost"). The
// result can drive netem.TraceDriven to replay one run's loss process in
// another experiment.
func DropPattern(t Trace) []bool {
	retx := make(map[uint64]bool)
	for _, r := range t {
		if r.Kind == KindRetransmit {
			retx[r.Seq] = true
		}
	}
	var pattern []bool
	for _, r := range t {
		if r.Kind == KindSend {
			pattern = append(pattern, retx[r.Seq])
		}
	}
	return pattern
}
