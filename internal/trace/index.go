package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// IndexedReader provides random access over a binary trace through an
// io.ReaderAt: record i lives at a fixed offset (the format is
// fixed-width on purpose), so sampling a multi-hour capture or
// binary-searching for a timestamp needs no full decode.
type IndexedReader struct {
	r io.ReaderAt
	n int
}

// OpenIndex validates the magic and computes the record count from the
// stream size. size is the total byte length of the trace (e.g. from
// os.FileInfo).
func OpenIndex(r io.ReaderAt, size int64) (*IndexedReader, error) {
	if size < int64(len(magic)) {
		return nil, ErrBadMagic
	}
	var got [8]byte
	if _, err := r.ReadAt(got[:], 0); err != nil {
		return nil, err
	}
	if got != magic {
		return nil, ErrBadMagic
	}
	body := size - int64(len(magic))
	if body%recordSize != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes (truncated record)", body%recordSize)
	}
	return &IndexedReader{r: r, n: int(body / recordSize)}, nil
}

// Len returns the number of records.
func (ir *IndexedReader) Len() int { return ir.n }

// At decodes record i.
func (ir *IndexedReader) At(i int) (Record, error) {
	if i < 0 || i >= ir.n {
		return Record{}, fmt.Errorf("trace: index %d out of range [0, %d)", i, ir.n)
	}
	var b [recordSize]byte
	off := int64(len(magic)) + int64(i)*recordSize
	if _, err := ir.r.ReadAt(b[:], off); err != nil {
		return Record{}, err
	}
	rec := Record{
		Time: math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		Kind: Kind(b[8]),
		Seq:  binary.LittleEndian.Uint64(b[9:]),
		Ack:  binary.LittleEndian.Uint64(b[17:]),
		Val:  math.Float64frombits(binary.LittleEndian.Uint64(b[25:])),
	}
	if !rec.Kind.Valid() {
		return Record{}, fmt.Errorf("trace: corrupt record kind %d at index %d", rec.Kind, i)
	}
	return rec, nil
}

// SeekTime returns the index of the first record with Time >= t (Len() if
// none), by binary search over the time-ordered records.
func (ir *IndexedReader) SeekTime(t float64) (int, error) {
	var searchErr error
	idx := sort.Search(ir.n, func(i int) bool {
		if searchErr != nil {
			return true
		}
		rec, err := ir.At(i)
		if err != nil {
			searchErr = err
			return true
		}
		return rec.Time >= t
	})
	if searchErr != nil {
		return 0, searchErr
	}
	return idx, nil
}

// Slice decodes records [from, to).
func (ir *IndexedReader) Slice(from, to int) (Trace, error) {
	if from < 0 || to > ir.n || from > to {
		return nil, fmt.Errorf("trace: bad slice [%d, %d) of %d", from, to, ir.n)
	}
	out := make(Trace, 0, to-from)
	for i := from; i < to; i++ {
		rec, err := ir.At(i)
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Window decodes the records with Time in [from, to) without scanning the
// rest of the capture.
func (ir *IndexedReader) Window(from, to float64) (Trace, error) {
	lo, err := ir.SeekTime(from)
	if err != nil {
		return nil, err
	}
	hi, err := ir.SeekTime(to)
	if err != nil {
		return nil, err
	}
	return ir.Slice(lo, hi)
}
