package core

import (
	"math"
	"strings"
	"testing"
)

// Boundary-value coverage for the model building blocks: p = 0, p = 1 and
// degenerate windows must all behave as documented, since the experiment
// harness evaluates the model across the entire measured range.

func TestBuildingBlockBoundaries(t *testing.T) {
	if !math.IsInf(EW(0, 2), 1) || !math.IsInf(EX(0, 2), 1) || !math.IsInf(EY(0, 2), 1) {
		t.Error("E[W], E[X], E[Y] must diverge at p=0")
	}
	if !math.IsInf(EWSmallP(0, 2), 1) || !math.IsInf(EXSmallP(0, 2), 1) {
		t.Error("small-p asymptotes must diverge at p=0")
	}
	if !math.IsInf(EZTO(1, 3.2), 1) {
		t.Error("E[Z^TO] must diverge at p=1")
	}
	if got := EY(1, 2); got != EW(1, 2) {
		t.Errorf("E[Y] at p=1 should reduce to E[W]: %g vs %g", got, EW(1, 2))
	}
}

func TestAProbCProbEdges(t *testing.T) {
	// Out-of-range arguments return 0.
	for _, c := range []struct{ w, k int }{{0, 0}, {5, -1}, {5, 6}} {
		if got := AProb(0.1, c.w, c.k); got != 0 {
			t.Errorf("AProb(%d,%d) = %g, want 0", c.w, c.k, got)
		}
	}
	if AProb(0, 5, 2) != 0 {
		t.Error("AProb at p=0 conditions on an impossible event: want 0")
	}
	for _, c := range []struct{ n, m int }{{0, 0}, {5, -1}, {5, 6}} {
		if got := CProb(0.1, c.n, c.m); got != 0 {
			t.Errorf("CProb(%d,%d) = %g, want 0", c.n, c.m, got)
		}
	}
}

func TestQHatApproxEdges(t *testing.T) {
	if QHatApprox(0) != 1 || QHatApprox(-2) != 1 {
		t.Error("non-positive windows are certain timeouts")
	}
	if QHatApprox(2) != 1 {
		t.Error("w=2 should saturate at 1")
	}
	if got := QHatApprox(12); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("QHatApprox(12) = %g, want 0.25", got)
	}
}

func TestQFunction(t *testing.T) {
	lim := NewParams(0.2, 2.0, 8)
	// At p=0, window-limited connections still time out with Q̂(Wm).
	if got, want := Q(0, lim), QHat(0, 8.0); got != want {
		t.Errorf("Q(0) limited = %g, want %g", got, want)
	}
	un := Params{RTT: 0.2, T0: 2, Wm: 0, B: 2}
	if Q(0, un) != 0 {
		t.Error("Q(0) unconstrained should be 0")
	}
	// Window cap engages when E[Wu] > Wm.
	if got, want := Q(0.001, lim), QHat(0.001, 8.0); got != want {
		t.Errorf("Q capped = %g, want %g", got, want)
	}
	// Uncapped regime uses E[W].
	p := 0.2
	if got, want := Q(p, lim), QHat(p, EW(p, 2)); got != want {
		t.Errorf("Q uncapped = %g, want %g", got, want)
	}
}

func TestSendRateTDOnlyEdges(t *testing.T) {
	if !math.IsInf(SendRateTDOnly(0, 0.2, 2), 1) {
		t.Error("TD-only at p=0 should be +Inf")
	}
	if got := SendRateTDOnly(1, 0.2, 2); got <= 0 || math.IsInf(got, 0) {
		t.Errorf("TD-only at p=1 = %g, want finite positive (sqrt form)", got)
	}
	if !math.IsInf(SendRateTDOnlyExact(0, 0.2, 2), 1) {
		t.Error("exact TD-only at p=0 should be +Inf")
	}
}

func TestSendRateNoTimeoutBranches(t *testing.T) {
	lim := NewParams(0.25, 2.0, 8)
	un := Params{RTT: 0.25, T0: 2, Wm: 0, B: 2}
	// p=0 boundaries.
	if got := SendRateNoTimeout(0, lim); got != 8/0.25 {
		t.Errorf("no-timeout B(0) limited = %g", got)
	}
	if !math.IsInf(SendRateNoTimeout(0, un), 1) {
		t.Error("no-timeout B(0) unconstrained should be +Inf")
	}
	// Unconstrained regime (E[W] < Wm) matches the exact TD model.
	p := 0.2
	if got, want := SendRateNoTimeout(p, lim), SendRateTDOnlyExact(p, lim.RTT, 2); got != want {
		t.Errorf("no-timeout uncapped = %g, want %g", got, want)
	}
	// Window-limited branch: finite, above full model (no timeout term),
	// below the ceiling.
	p = 0.002
	got := SendRateNoTimeout(p, lim)
	if got > 8/0.25 || got <= 0 {
		t.Errorf("no-timeout capped = %g out of range", got)
	}
	if full := SendRateFull(p, lim); got < full {
		t.Errorf("removing the timeout term should not lower the rate: %g < %g", got, full)
	}
}

func TestThroughputWindowLimitedBranch(t *testing.T) {
	// Force the capped branch and verify it against a hand computation.
	p, pr := 0.001, Params{RTT: 0.47, T0: 3.2, Wm: 6, B: 2}
	if EW(p, 2) <= pr.Wm {
		t.Fatal("test setup: expected window-limited regime")
	}
	q := QHat(p, pr.Wm)
	num := (1-p)/p + pr.Wm/2 + q
	den := pr.RTT*(2.0/8*pr.Wm+(1-p)/(p*pr.Wm)+2) + q*FP(p)*pr.T0/(1-p)
	if got := Throughput(p, pr); !almostEqual(got, num/den, 1e-12) {
		t.Errorf("capped throughput = %g, want %g", got, num/den)
	}
}

func TestRateOutOfRangeErrorMessage(t *testing.T) {
	pr := NewParams(0.2, 2.0, 8)
	_, err := LossRateFor(1e9, pr)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error message: %v", err)
	}
}

func TestLogDerivEdges(t *testing.T) {
	if got := logDeriv(func(x float64) float64 { return x }, 0); got != 0 {
		t.Errorf("logDeriv at x=0 = %g, want 0", got)
	}
	// A function that goes non-positive produces NaN rather than garbage.
	got := logDeriv(func(x float64) float64 { return -1 }, 5)
	if !math.IsNaN(got) {
		t.Errorf("negative-valued function should give NaN, got %g", got)
	}
}

func TestSlowStartRoundsEdges(t *testing.T) {
	if SlowStartRounds(-5, 1, 2) != 0 {
		t.Error("negative data should take 0 rounds")
	}
	// w1 below 1 is clamped.
	a := SlowStartRounds(100, 0.1, 2)
	b := SlowStartRounds(100, 1, 2)
	if a != b {
		t.Errorf("w1 clamp failed: %g vs %g", a, b)
	}
}

func TestFirstLossCostEdges(t *testing.T) {
	pr := NewParams(0.1, 1.0, 8)
	if firstLossCost(0, pr) != 0 {
		t.Error("no loss, no cost")
	}
	// Capped window: cost uses Q̂(Wm).
	p := 0.001
	want := QHat(p, 8.0)*EZTO(p, 1.0) + (1-QHat(p, 8.0))*0.1
	if got := firstLossCost(p, pr); !almostEqual(got, want, 1e-12) {
		t.Errorf("capped first-loss cost = %g, want %g", got, want)
	}
}
