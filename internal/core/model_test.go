package core

import (
	"math"
	"testing"
	"testing/quick"
)

// literalEW transcribes eq. (13) directly, as a check against the
// implementation's algebra.
func literalEW(p, b float64) float64 {
	return (2+b)/(3*b) + math.Sqrt(8*(1-p)/(3*b*p)+math.Pow((2+b)/(3*b), 2))
}

// literalEX transcribes eq. (15).
func literalEX(p, b float64) float64 {
	return (2+b)/6 + math.Sqrt(2*b*(1-p)/(3*p)+math.Pow((2+b)/6, 2))
}

// literalFP transcribes eq. (29).
func literalFP(p float64) float64 {
	return 1 + p + 2*p*p + 4*math.Pow(p, 3) + 8*math.Pow(p, 4) + 16*math.Pow(p, 5) + 32*math.Pow(p, 6)
}

// literalQHat transcribes eq. (24).
func literalQHat(p, w float64) float64 {
	num := (1 - math.Pow(1-p, 3)) * (1 + math.Pow(1-p, 3)*(1-math.Pow(1-p, w-3)))
	return math.Min(1, num/(1-math.Pow(1-p, w)))
}

// literalApprox transcribes eq. (33) without the Wm clamp.
func literalApprox(p, rtt, t0, b float64) float64 {
	return 1 / (rtt*math.Sqrt(2*b*p/3) + t0*math.Min(1, 3*math.Sqrt(3*b*p/8))*p*(1+32*p*p))
}

var testPs = []float64{1e-5, 1e-4, 1e-3, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.99}

func almostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

func TestEWMatchesLiteralEquation13(t *testing.T) {
	for _, b := range []float64{1, 2, 3} {
		for _, p := range testPs {
			got, want := EW(p, b), literalEW(p, b)
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("EW(%g, %g) = %g, literal eq.(13) = %g", p, b, got, want)
			}
		}
	}
}

func TestEXMatchesLiteralEquation15(t *testing.T) {
	for _, b := range []float64{1, 2, 3} {
		for _, p := range testPs {
			got, want := EX(p, b), literalEX(p, b)
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("EX(%g, %g) = %g, literal eq.(15) = %g", p, b, got, want)
			}
		}
	}
}

func TestFPMatchesLiteralEquation29(t *testing.T) {
	for _, p := range testPs {
		got, want := FP(p), literalFP(p)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("FP(%g) = %g, literal eq.(29) = %g", p, got, want)
		}
	}
}

func TestFPBoundaries(t *testing.T) {
	if got := FP(0); got != 1 {
		t.Errorf("FP(0) = %g, want 1", got)
	}
	if got := FP(1); got != 64 {
		t.Errorf("FP(1) = %g, want 64 (1+1+2+4+8+16+32)", got)
	}
}

func TestQHatMatchesLiteralEquation24(t *testing.T) {
	for _, w := range []float64{3.5, 4, 6, 10, 25.7, 100} {
		for _, p := range testPs {
			got, want := QHat(p, w), literalQHat(p, w)
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("QHat(%g, %g) = %g, literal eq.(24) = %g", p, w, got, want)
			}
		}
	}
}

// The closed form (24) must agree closely with the exact double summation
// (22)-(23). The paper derives (24) from (22) "after algebraic
// manipulations" that are not exact: the closed form drifts from the
// summation at small w combined with high p (observed up to ~7% at w=4,
// p=0.2). Characterize both regimes: within 2% for p <= 1%, and within
// 10% everywhere.
func TestQHatClosedFormEqualsExactSummation(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5, 8, 12, 20, 40, 64} {
		for _, p := range testPs {
			exact := QHatExact(p, w)
			closed := QHat(p, float64(w))
			tol := 0.10
			if p <= 0.01 {
				tol = 0.02
			}
			if !almostEqual(exact, closed, tol) {
				t.Errorf("w=%d p=%g: exact summation %g vs closed form %g exceeds %g%%",
					w, p, exact, closed, tol*100)
			}
		}
	}
}

func TestQHatSmallWindowIsOne(t *testing.T) {
	for _, w := range []float64{0.5, 1, 2, 3} {
		for _, p := range testPs {
			if got := QHat(p, w); got != 1 {
				t.Errorf("QHat(%g, %g) = %g, want 1 for w <= 3", p, w, got)
			}
		}
	}
}

func TestQHatSmallPLimitIsThreeOverW(t *testing.T) {
	// lim_{p->0} Q̂(w) = 3/w (shown in the paper by L'Hopital's rule).
	for _, w := range []float64{4, 8, 16, 50} {
		got := QHat(1e-9, w)
		want := 3 / w
		if !almostEqual(got, want, 1e-4) {
			t.Errorf("QHat(1e-9, %g) = %g, want ~3/w = %g", w, got, want)
		}
		if got0 := QHat(0, w); !almostEqual(got0, want, 1e-12) {
			t.Errorf("QHat(0, %g) = %g, want exactly 3/w = %g", w, got0, want)
		}
	}
}

func TestQHatApproxCloseToClosedForm(t *testing.T) {
	// The paper calls min(1, 3/w) "a very good approximation" of Q̂. The
	// approximation comes from the small-p limit, so check agreement in
	// the low-loss regime (it visibly diverges for p >~ 5%).
	for _, w := range []float64{4, 6, 10, 20, 40} {
		for _, p := range []float64{1e-4, 1e-3, 0.005, 0.01} {
			exact := QHat(p, w)
			approx := QHatApprox(w)
			if math.Abs(exact-approx) > 0.1 {
				t.Errorf("QHat(%g,%g)=%g vs approx %g: differ by more than 0.1", p, w, exact, approx)
			}
		}
	}
}

func TestEWSmallPAsymptote(t *testing.T) {
	// eq. (14): E[W] = sqrt(8/(3bp)) + o(1/sqrt(p)).
	for _, b := range []float64{1, 2} {
		p := 1e-7
		ratio := EW(p, b) / EWSmallP(p, b)
		if math.Abs(ratio-1) > 1e-2 {
			t.Errorf("b=%g: EW/EWSmallP = %g at p=%g, want ~1", b, ratio, p)
		}
	}
}

func TestEXSmallPAsymptote(t *testing.T) {
	for _, b := range []float64{1, 2} {
		p := 1e-7
		ratio := EX(p, b) / EXSmallP(p, b)
		if math.Abs(ratio-1) > 1e-2 {
			t.Errorf("b=%g: EX/EXSmallP = %g at p=%g, want ~1", b, ratio, p)
		}
	}
}

func TestEWEXRelation(t *testing.T) {
	// eq. (11): E[W] = (2/b)·E[X].
	for _, b := range []float64{1, 2, 4} {
		for _, p := range testPs {
			w, x := EW(p, b), EX(p, b)
			if !almostEqual(w, 2/b*x, 1e-12) {
				t.Errorf("b=%g p=%g: E[W]=%g but (2/b)E[X]=%g", b, p, w, 2/b*x)
			}
		}
	}
}

func TestEAIsRTTTimesXPlusOne(t *testing.T) {
	for _, p := range testPs {
		if got, want := EA(p, 0.2, 2), 0.2*(EX(p, 2)+1); !almostEqual(got, want, 1e-12) {
			t.Errorf("EA(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestER(t *testing.T) {
	if got := ER(0); got != 1 {
		t.Errorf("ER(0) = %g, want 1", got)
	}
	if got := ER(0.5); got != 2 {
		t.Errorf("ER(0.5) = %g, want 2", got)
	}
	if got := ER(1); !math.IsInf(got, 1) {
		t.Errorf("ER(1) = %g, want +Inf", got)
	}
}

func TestEZTO(t *testing.T) {
	// At p=0 a timeout sequence is a single timeout: E[Z^TO] = T0.
	if got := EZTO(0, 3.2); got != 3.2 {
		t.Errorf("EZTO(0, 3.2) = %g, want 3.2", got)
	}
	for _, p := range testPs[:10] {
		want := 3.2 * FP(p) / (1 - p)
		if got := EZTO(p, 3.2); !almostEqual(got, want, 1e-12) {
			t.Errorf("EZTO(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestTimeoutSequenceDuration(t *testing.T) {
	t0 := 1.5
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0}, {-3, 0},
		{1, 1 * t0},   // T0
		{2, 3 * t0},   // T0 + 2T0
		{3, 7 * t0},   // +4T0
		{6, 63 * t0},  // 1+2+4+8+16+32
		{7, 127 * t0}, // 63 + 64
		{8, 191 * t0}, // 63 + 128
	}
	for _, c := range cases {
		if got := TimeoutSequenceDuration(c.k, t0); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("L_%d = %g, want %g", c.k, got, c.want)
		}
	}
}

func TestAProbNormalizes(t *testing.T) {
	// Σ_{k=0}^{w-1} A(w,k) = 1: the first loss is at position k+1 for
	// exactly one k in 0..w-1, given the round has a loss.
	for _, w := range []int{1, 2, 5, 16, 64} {
		for _, p := range testPs {
			sum := 0.0
			for k := 0; k < w; k++ {
				sum += AProb(p, w, k)
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("w=%d p=%g: ΣA(w,k) = %g, want 1", w, p, sum)
			}
		}
	}
}

func TestCProbNormalizes(t *testing.T) {
	// Σ_{m=0}^{n} C(n,m) = 1.
	for _, n := range []int{1, 2, 5, 16} {
		for _, p := range testPs {
			sum := 0.0
			for m := 0; m <= n; m++ {
				sum += CProb(p, n, m)
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("n=%d p=%g: ΣC(n,m) = %g, want 1", n, p, sum)
			}
		}
	}
}

func TestSendRateFullBoundaries(t *testing.T) {
	pr := NewParams(0.2, 2.0, 12)
	if got, want := SendRateFull(0, pr), 12/0.2; got != want {
		t.Errorf("B(0) = %g, want Wm/RTT = %g", got, want)
	}
	if got := SendRateFull(1, pr); got != 0 {
		t.Errorf("B(1) = %g, want 0", got)
	}
	un := pr
	un.Wm = 0
	if got := SendRateFull(0, un); !math.IsInf(got, 1) {
		t.Errorf("unconstrained B(0) = %g, want +Inf", got)
	}
}

func TestSendRateFullMatchesHandComputation(t *testing.T) {
	// Hand-evaluate eq. (32) at one unconstrained point.
	p, rtt, t0, b := 0.02, 0.25, 2.0, 2.0
	w := literalEW(p, b)
	q := literalQHat(p, w)
	num := (1-p)/p + w + q/(1-p)
	den := rtt*(b/2*w+1) + q*t0*literalFP(p)/(1-p)
	want := num / den
	got := SendRateFull(p, Params{RTT: rtt, T0: t0, Wm: 0, B: 2})
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("SendRateFull = %g, hand computation = %g", got, want)
	}
}

func TestSendRateFullWindowLimitedBranch(t *testing.T) {
	// Pick p small enough that E[Wu] > Wm and check the second branch of
	// eq. (32) verbatim.
	p, rtt, t0, wm, b := 0.001, 0.25, 2.0, 8.0, 2.0
	if literalEW(p, b) <= wm {
		t.Fatalf("test setup: E[Wu]=%g must exceed Wm=%g", literalEW(p, b), wm)
	}
	q := literalQHat(p, wm)
	num := (1-p)/p + wm + q/(1-p)
	den := rtt*(b/8*wm+(1-p)/(p*wm)+2) + q*t0*literalFP(p)/(1-p)
	want := num / den
	got := SendRateFull(p, Params{RTT: rtt, T0: t0, Wm: wm, B: 2})
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("window-limited SendRateFull = %g, hand computation = %g", got, want)
	}
}

func TestSendRateApproxMatchesLiteralEquation33(t *testing.T) {
	pr := Params{RTT: 0.25, T0: 2.0, Wm: 0, B: 2}
	for _, p := range testPs {
		got := SendRateApprox(p, pr)
		want := literalApprox(p, pr.RTT, pr.T0, 2)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("approx(%g) = %g, literal = %g", p, got, want)
		}
	}
	lim := Params{RTT: 0.25, T0: 2.0, Wm: 6, B: 2}
	for _, p := range testPs {
		got := SendRateApprox(p, lim)
		want := math.Min(6/0.25, literalApprox(p, 0.25, 2.0, 2))
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("clamped approx(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestApproxCloseToFull(t *testing.T) {
	// Section III: "(33) is indeed a very good approximation of (32)".
	// Verify agreement within 2x over the validated loss range and much
	// tighter in the moderate regime.
	pr := NewParams(0.25, 2.0, 33)
	for _, p := range []float64{1e-4, 1e-3, 0.01, 0.03, 0.05, 0.1} {
		full := SendRateFull(p, pr)
		approx := SendRateApprox(p, pr)
		ratio := approx / full
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("p=%g: approx/full = %g, want within [0.5, 2]", p, ratio)
		}
	}
	// At very high loss (p >= 0.2) the approximation undershoots the full
	// model but must stay within 3x.
	for _, p := range []float64{0.2, 0.3, 0.5} {
		ratio := SendRateApprox(p, pr) / SendRateFull(p, pr)
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("p=%g: approx/full = %g, want within [1/3, 3]", p, ratio)
		}
	}
	for _, p := range []float64{0.005, 0.01, 0.02, 0.05} {
		full := SendRateFull(p, pr)
		approx := SendRateApprox(p, pr)
		if r := approx / full; r < 0.7 || r > 1.5 {
			t.Errorf("p=%g: approx/full = %g, want within [0.7, 1.5] in moderate regime", p, r)
		}
	}
}

func TestTDOnlyOverestimatesAtHighLoss(t *testing.T) {
	// The paper's central empirical point: for p above ~5% the TD-only
	// model predicts much higher send rates than the full model.
	pr := NewParams(0.25, 2.0, 0)
	for _, p := range []float64{0.05, 0.1, 0.2, 0.3} {
		td := SendRateTDOnly(p, pr.RTT, 2)
		full := SendRateFull(p, pr)
		if td <= full {
			t.Errorf("p=%g: TD-only %g should exceed full model %g", p, td, full)
		}
		if p >= 0.1 && td < 2*full {
			t.Errorf("p=%g: TD-only %g should be >= 2x full model %g at high loss", p, td, full)
		}
	}
}

func TestTDOnlyIgnoresWindowLimit(t *testing.T) {
	// Fig. 7(a) commentary: TD-only overestimates at low p because it
	// does not account for the receiver window.
	pr := NewParams(0.243, 2.495, 6) // manic->baskerville parameters
	p := 0.001
	td := SendRateTDOnly(p, pr.RTT, 2)
	full := SendRateFull(p, pr)
	if full > pr.Wm/pr.RTT*1.0001 {
		t.Errorf("full model %g must respect Wm/RTT = %g", full, pr.Wm/pr.RTT)
	}
	if td <= pr.Wm/pr.RTT {
		t.Errorf("TD-only %g should exceed the window-limited ceiling %g at p=%g", td, pr.Wm/pr.RTT, p)
	}
}

func TestSendRateTDOnlyExactVsSqrtForm(t *testing.T) {
	// eq. (20): the exact TD model tends to the sqrt form as p -> 0.
	for _, b := range []float64{1, 2} {
		p := 1e-6
		exact := SendRateTDOnlyExact(p, 0.2, b)
		approx := SendRateTDOnly(p, 0.2, b)
		if math.Abs(exact/approx-1) > 0.01 {
			t.Errorf("b=%g: exact/sqrt = %g at p=%g, want ~1", b, exact/approx, p)
		}
	}
}

func TestThroughputBelowSendRate(t *testing.T) {
	// Fig. 13: throughput <= send rate for all p (the receiver never
	// gets more than was sent).
	pr := NewParams(0.47, 3.2, 12) // Fig. 13 parameters
	for _, p := range testPs {
		tput := Throughput(p, pr)
		rate := SendRateFull(p, pr)
		if tput > rate*(1+1e-9) {
			t.Errorf("p=%g: throughput %g exceeds send rate %g", p, tput, rate)
		}
	}
}

func TestThroughputGapGrowsWithLoss(t *testing.T) {
	pr := NewParams(0.47, 3.2, 12)
	prev := 0.0
	for _, p := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		gap := 1 - Throughput(p, pr)/SendRateFull(p, pr)
		if gap < prev-1e-9 {
			t.Errorf("p=%g: relative throughput gap %g decreased (prev %g)", p, gap, prev)
		}
		prev = gap
	}
}

func TestThroughputMatchesPrintedB2Form(t *testing.T) {
	// eq. (37)/(38) are printed for b=2; check the generic code reduces
	// to the printed form.
	pr := Params{RTT: 0.47, T0: 3.2, Wm: 12, B: 2}
	for _, p := range []float64{0.001, 0.01, 0.05, 0.2} {
		wp := 2.0/3.0 + math.Sqrt(4*(1-p)/(3*p)+4.0/9.0)
		var want float64
		if wp < pr.Wm {
			q := literalQHat(p, wp)
			want = ((1-p)/p + wp/2 + q) / (pr.RTT*(wp+1) + q*literalFP(p)*pr.T0/(1-p))
		} else {
			q := literalQHat(p, pr.Wm)
			want = ((1-p)/p + pr.Wm/2 + q) /
				(pr.RTT*(pr.Wm/4+(1-p)/(p*pr.Wm)+2) + q*literalFP(p)*pr.T0/(1-p))
		}
		if got := Throughput(p, pr); !almostEqual(got, want, 1e-12) {
			t.Errorf("Throughput(%g) = %g, printed eq.(37) = %g", p, got, want)
		}
	}
}

func TestModelRateDispatch(t *testing.T) {
	pr := NewParams(0.2, 2.0, 20)
	p := 0.03
	cases := []struct {
		m    Model
		want float64
	}{
		{ModelFull, SendRateFull(p, pr)},
		{ModelApprox, SendRateApprox(p, pr)},
		{ModelTDOnly, SendRateTDOnly(p, pr.RTT, 2)},
		{ModelThroughput, Throughput(p, pr)},
		{ModelNoTimeout, SendRateNoTimeout(p, pr)},
	}
	for _, c := range cases {
		if got := c.m.Rate(p, pr); got != c.want {
			t.Errorf("%v.Rate = %g, want %g", c.m, got, c.want)
		}
	}
	if !math.IsNaN(Model(99).Rate(p, pr)) {
		t.Error("unknown model should return NaN")
	}
}

func TestModelString(t *testing.T) {
	names := map[Model]string{
		ModelFull: "full", ModelApprox: "approximate", ModelTDOnly: "TD only",
		ModelThroughput: "throughput", ModelNoTimeout: "no-timeout", Model(42): "Model(42)",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("Model(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := NewParams(0.2, 2.0, 12)
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{RTT: 0, T0: 1, Wm: 1},
		{RTT: -1, T0: 1, Wm: 1},
		{RTT: 1, T0: 0, Wm: 1},
		{RTT: 1, T0: -2, Wm: 1},
		{RTT: math.NaN(), T0: 1, Wm: 1},
		{RTT: 1, T0: 1, Wm: math.NaN()},
	}
	for i, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Errorf("case %d: invalid params %+v accepted", i, pr)
		}
	}
}

func TestParamsString(t *testing.T) {
	s := NewParams(0.2, 2, 12).String()
	if s == "" {
		t.Fatal("empty String()")
	}
	un := Params{RTT: 0.2, T0: 2, Wm: 0, B: 2}
	if got := un.String(); got == s {
		t.Errorf("unlimited and limited params should print differently: %q", got)
	}
}

func TestAckRatioDefault(t *testing.T) {
	if got := (Params{}).ackRatio(); got != DefaultB {
		t.Errorf("zero B should default to %d, got %g", DefaultB, got)
	}
	if got := (Params{B: 1}).ackRatio(); got != 1 {
		t.Errorf("B=1 should stay 1, got %g", got)
	}
}

func TestClampP(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1}, {math.NaN(), 0},
	}
	for _, c := range cases {
		if got := clampP(c.in); got != c.want {
			t.Errorf("clampP(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// --- property-based tests (testing/quick) ---

// genP maps an arbitrary float to a valid loss rate in (1e-6, 0.999).
func genP(x float64) float64 {
	x = math.Abs(x)
	x = x - math.Floor(x) // frac in [0,1)
	return 1e-6 + x*(0.999-1e-6)
}

func TestQuickSendRateFullPositiveAndFinite(t *testing.T) {
	pr := NewParams(0.25, 2.0, 40)
	f := func(x float64) bool {
		p := genP(x)
		r := SendRateFull(p, pr)
		return r > 0 && !math.IsInf(r, 0) && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSendRateFullMonotoneInP(t *testing.T) {
	pr := NewParams(0.25, 2.0, 0)
	f := func(x, y float64) bool {
		p1, p2 := genP(x), genP(y)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return SendRateFull(p1, pr) >= SendRateFull(p2, pr)*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSendRateRespectsWindowCeiling(t *testing.T) {
	f := func(x float64, wmRaw uint8) bool {
		p := genP(x)
		wm := float64(wmRaw%60) + 4
		pr := NewParams(0.25, 2.0, wm)
		return SendRateFull(p, pr) <= wm/pr.RTT*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSendRateDecreasesWithRTT(t *testing.T) {
	f := func(x, y float64) bool {
		p := genP(x)
		r1 := 0.05 + math.Abs(y-math.Floor(y))
		r2 := r1 * 2
		b1 := SendRateFull(p, NewParams(r1, 2.0, 0))
		b2 := SendRateFull(p, NewParams(r2, 2.0, 0))
		return b1 >= b2*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickQHatInUnitInterval(t *testing.T) {
	f := func(x float64, wRaw uint8) bool {
		p := genP(x)
		w := float64(wRaw) + 1
		q := QHat(p, w)
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickQHatDecreasingInW(t *testing.T) {
	f := func(x float64, aRaw, bRaw uint8) bool {
		p := genP(x)
		w1 := float64(aRaw%60) + 4
		w2 := w1 + float64(bRaw%20) + 1
		return QHat(p, w1) >= QHat(p, w2)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickThroughputAtMostSendRate(t *testing.T) {
	f := func(x float64, wmRaw uint8) bool {
		p := genP(x)
		pr := NewParams(0.3, 2.5, float64(wmRaw%50)+5)
		return Throughput(p, pr) <= SendRateFull(p, pr)*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickEWDecreasingInP(t *testing.T) {
	f := func(x, y float64) bool {
		p1, p2 := genP(x), genP(y)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return EW(p1, 2) >= EW(p2, 2)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
