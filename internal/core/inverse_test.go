package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLossRateForRoundTrip(t *testing.T) {
	pr := NewParams(0.25, 2.0, 0)
	for _, p := range []float64{1e-4, 1e-3, 0.01, 0.05, 0.1, 0.3} {
		rate := SendRateFull(p, pr)
		got, err := LossRateFor(rate, pr)
		if err != nil {
			t.Fatalf("LossRateFor(%g): %v", rate, err)
		}
		if !almostEqual(got, p, 1e-6) {
			t.Errorf("round trip at p=%g gave %g", p, got)
		}
	}
}

func TestLossRateForWindowLimitedPlateau(t *testing.T) {
	pr := NewParams(0.25, 2.0, 8)
	ceiling := pr.Wm / pr.RTT
	p, err := LossRateFor(ceiling*0.999, pr)
	if err != nil {
		t.Fatalf("LossRateFor near ceiling: %v", err)
	}
	// On the plateau the solver returns the largest p still achieving
	// the target; that p must indeed achieve it.
	if got := SendRateFull(p, pr); got < ceiling*0.999*(1-1e-6) {
		t.Errorf("returned p=%g achieves only %g, want >= %g", p, got, ceiling*0.999)
	}
}

func TestLossRateForOutOfRange(t *testing.T) {
	pr := NewParams(0.25, 2.0, 8)
	if _, err := LossRateFor(pr.Wm/pr.RTT*10, pr); err == nil {
		t.Error("rate above Wm/RTT should be rejected")
	}
	if _, err := LossRateFor(-1, pr); err == nil {
		t.Error("negative rate should be rejected")
	}
	if _, err := LossRateFor(math.NaN(), pr); err == nil {
		t.Error("NaN rate should be rejected")
	}
	if _, err := LossRateFor(5, Params{}); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestLossRateForZeroTargetIsCertainLoss(t *testing.T) {
	pr := NewParams(0.25, 2.0, 8)
	p, err := LossRateFor(0, pr)
	if err != nil || p != 1 {
		t.Errorf("LossRateFor(0) = %g, %v; want 1, nil", p, err)
	}
}

func TestFriendlyRateFinite(t *testing.T) {
	un := Params{RTT: 0.2, T0: 2, Wm: 0, B: 2}
	r := FriendlyRate(0, un)
	if math.IsInf(r, 0) || r <= 0 {
		t.Errorf("FriendlyRate(0) on unconstrained params = %g, want finite positive", r)
	}
	lim := NewParams(0.2, 2, 10)
	if got, want := FriendlyRate(0, lim), lim.Wm/lim.RTT; got != want {
		t.Errorf("FriendlyRate(0) window-limited = %g, want %g", got, want)
	}
	if got, want := FriendlyRate(0.05, lim), SendRateFull(0.05, lim); got != want {
		t.Errorf("FriendlyRate(0.05) = %g, want full model %g", got, want)
	}
}

func TestCurveShape(t *testing.T) {
	pr := NewParams(0.25, 2.0, 20)
	c := Curve(ModelFull, pr, 1e-4, 0.5, 50)
	if len(c) != 50 {
		t.Fatalf("len = %d, want 50", len(c))
	}
	if !almostEqual(c[0].P, 1e-4, 1e-9) || !almostEqual(c[49].P, 0.5, 1e-9) {
		t.Errorf("endpoints: %g .. %g", c[0].P, c[49].P)
	}
	for i := 1; i < len(c); i++ {
		if c[i].P <= c[i-1].P {
			t.Fatalf("P not increasing at %d", i)
		}
		if c[i].Rate > c[i-1].Rate*(1+1e-9) {
			t.Fatalf("full-model curve not non-increasing at %d: %g -> %g", i, c[i-1].Rate, c[i].Rate)
		}
	}
}

func TestCurvePanicsOnBadRange(t *testing.T) {
	pr := NewParams(0.25, 2.0, 20)
	for _, fn := range []func(){
		func() { Curve(ModelFull, pr, 0, 0.5, 10) },
		func() { Curve(ModelFull, pr, 0.5, 0.1, 10) },
		func() { Curve(ModelFull, pr, 0.1, 0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuickInverseConsistent(t *testing.T) {
	pr := NewParams(0.3, 2.5, 0)
	f := func(x float64) bool {
		p := genP(x)
		rate := SendRateFull(p, pr)
		back, err := LossRateFor(rate, pr)
		if err != nil {
			return false
		}
		return almostEqual(SendRateFull(back, pr), rate, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
