// Package core implements the PFTK steady-state model of TCP Reno
// performance from Padhye, Firoiu, Towsley and Kurose, "Modeling TCP
// Throughput: A Simple Model and Its Empirical Validation" (SIGCOMM 1998;
// journal version IEEE/ACM ToN 8(2), 2000).
//
// The package provides, as pure functions of the loss-indication rate p and
// the connection parameters (RTT, T0, Wm, b):
//
//   - the "full model" send rate B(p) of eq. (32),
//   - the "approximate model" of eq. (33),
//   - the "TD only" baseline of Mathis et al. used for comparison in the
//     paper (eq. (20) and its exact form eq. (19)),
//   - the throughput model T(p) of eqs. (34)-(38),
//   - every intermediate quantity of the derivation: E[W] (13), E[X] (15),
//     E[A] (16), Q-hat in both its exact summation form (22)-(23) and its
//     closed form (24), the 3/w approximation (25), E[R] (27), E[Z^TO] and
//     f(p) (29),
//   - the inverse model: the loss rate at which a connection with the given
//     parameters would achieve a target send rate (the "TCP-friendly" use
//     of the formula that motivates the paper).
//
// All rates are in packets per second; RTT and T0 are in seconds; windows
// are in packets. p is the probability that a packet is lost given that it
// is the first packet of its round or the preceding packet of its round was
// not lost (the paper's loss-indication rate).
package core

import (
	"errors"
	"fmt"
	"math"

	"pftk/internal/invariant"
)

// DefaultB is the typical number of packets acknowledged per ACK when the
// receiver implements delayed ACKs (RFC 1122), used throughout the paper.
const DefaultB = 2

// Params holds the connection parameters of the PFTK model.
//
// The zero value is not useful; use NewParams or fill every field. Wm <= 0
// means "no receiver window limitation" (the unconstrained model).
type Params struct {
	// RTT is the average round trip time E[r] in seconds.
	RTT float64
	// T0 is the average duration of a single ("first") retransmission
	// timeout in seconds.
	T0 float64
	// Wm is the maximum window size advertised by the receiver, in
	// packets. Wm <= 0 disables the window limitation.
	Wm float64
	// B is the number of packets acknowledged by one ACK (the paper's b;
	// 2 with delayed ACKs, 1 without). Values < 1 are treated as
	// DefaultB.
	B int
}

// NewParams returns Params with the given average RTT and timeout, a
// receiver window of wm packets (wm <= 0 for unlimited) and delayed ACKs
// (b = 2).
func NewParams(rtt, t0, wm float64) Params {
	return Params{RTT: rtt, T0: t0, Wm: wm, B: DefaultB}
}

// Validate reports whether the parameters define a usable model instance.
func (pr Params) Validate() error {
	switch {
	case math.IsNaN(pr.RTT) || pr.RTT <= 0:
		return fmt.Errorf("core: RTT must be positive, got %v", pr.RTT)
	case math.IsNaN(pr.T0) || pr.T0 <= 0:
		return fmt.Errorf("core: T0 must be positive, got %v", pr.T0)
	case math.IsNaN(pr.Wm):
		return errors.New("core: Wm must not be NaN")
	default:
		return nil
	}
}

// ackRatio returns the effective b, defaulting to DefaultB.
func (pr Params) ackRatio() float64 {
	if pr.B < 1 {
		return DefaultB
	}
	return float64(pr.B)
}

// windowLimited reports whether the parameters include a receiver window
// limitation.
func (pr Params) windowLimited() bool { return pr.Wm > 0 }

// String implements fmt.Stringer.
func (pr Params) String() string {
	wm := "unlimited"
	if pr.windowLimited() {
		wm = fmt.Sprintf("%g pkts", pr.Wm)
	}
	return fmt.Sprintf("Params(RTT=%gs, T0=%gs, Wm=%s, b=%g)", pr.RTT, pr.T0, wm, pr.ackRatio())
}

// checkDomain asserts the model's domain invariants at an entry point.
// In the default build it is a no-op (invariant.Enabled is false); built
// with -tags pftkinvariants it panics on out-of-domain inputs instead of
// letting clampP absorb them — see internal/invariant.
func checkDomain(p float64, pr Params) {
	if !invariant.Enabled {
		return
	}
	invariant.Probability("loss rate p", p)
	invariant.Positive("RTT", pr.RTT)
	invariant.Positive("T0", pr.T0)
	invariant.Finite("Wm", pr.Wm)
}

// checkRate asserts that a computed rate is finite and non-negative.
// Only meaningful for p > 0 (every model legitimately diverges at p = 0
// on an unconstrained connection).
func checkRate(name string, p, rate float64) float64 {
	if invariant.Enabled && p > 0 {
		invariant.NonNegative(name, rate)
	}
	return rate
}

// clampP limits p to the half-open interval the model is defined on.
// Negative or NaN values are treated as 0; values >= 1 as exactly 1.
func clampP(p float64) float64 {
	switch {
	case math.IsNaN(p), p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// EW returns E[W], the mean unconstrained window size at the end of a
// triple-duplicate period, from eq. (13):
//
//	E[W] = (2+b)/(3b) + sqrt( 8(1-p)/(3bp) + ((2+b)/(3b))^2 )
//
// EW(p, b) diverges as p -> 0 and tends to (2+b)/(3b)·2 as p -> 1.
func EW(p float64, b float64) float64 {
	p = clampP(p)
	if p == 0 {
		return math.Inf(1)
	}
	c := (2 + b) / (3 * b)
	return c + math.Sqrt(8*(1-p)/(3*b*p)+c*c)
}

// EWSmallP returns the small-p asymptote of E[W] from eq. (14):
// sqrt(8/(3bp)).
func EWSmallP(p float64, b float64) float64 {
	p = clampP(p)
	if p == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(8 / (3 * b * p))
}

// EX returns E[X], the mean number of rounds in a triple-duplicate period,
// from eq. (15):
//
//	E[X] = (2+b)/6 + sqrt( 2b(1-p)/(3p) + ((2+b)/6)^2 )
func EX(p float64, b float64) float64 {
	p = clampP(p)
	if p == 0 {
		return math.Inf(1)
	}
	c := (2 + b) / 6
	return c + math.Sqrt(2*b*(1-p)/(3*p)+c*c)
}

// EXSmallP returns the small-p asymptote of E[X] from eq. (17):
// sqrt(2b/(3p)).
func EXSmallP(p float64, b float64) float64 {
	p = clampP(p)
	if p == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(2 * b / (3 * p))
}

// EA returns E[A], the mean duration of a triple-duplicate period, from
// eq. (16): RTT·(E[X] + 1).
func EA(p float64, rtt, b float64) float64 {
	return rtt * (EX(p, b) + 1)
}

// EY returns E[Y], the mean number of packets sent in a triple-duplicate
// period, from eq. (5): (1-p)/p + E[W].
func EY(p float64, b float64) float64 {
	p = clampP(p)
	if p == 0 {
		return math.Inf(1)
	}
	return (1-p)/p + EW(p, b)
}

// ER returns E[R], the mean number of packets sent during a timeout
// sequence, from eq. (27): 1/(1-p).
func ER(p float64) float64 {
	p = clampP(p)
	if p == 1 {
		return math.Inf(1)
	}
	return 1 / (1 - p)
}

// FP returns f(p) from eq. (29):
//
//	f(p) = 1 + p + 2p^2 + 4p^3 + 8p^4 + 16p^5 + 32p^6
//
// which arises from the exponentially backed-off timeout durations
// T0, 2T0, 4T0, ..., capped at 64·T0.
func FP(p float64) float64 {
	p = clampP(p)
	// Horner form of 1 + p + 2p^2 + 4p^3 + 8p^4 + 16p^5 + 32p^6.
	return 1 + p*(1+p*(2+p*(4+p*(8+p*(16+p*32)))))
}

// EZTO returns E[Z^TO], the mean duration of a timeout sequence (excluding
// the retransmission rounds that follow it): T0·f(p)/(1-p).
func EZTO(p float64, t0 float64) float64 {
	p = clampP(p)
	if p == 1 {
		return math.Inf(1)
	}
	return t0 * FP(p) / (1 - p)
}

// TimeoutSequenceDuration returns L_k, the duration of a sequence of k
// consecutive timeouts in units of T0:
//
//	L_k = (2^k - 1)·T0        for k <= 6
//	L_k = (63 + 64(k-6))·T0   for k >= 7
//
// It returns 0 for k <= 0.
func TimeoutSequenceDuration(k int, t0 float64) float64 {
	switch {
	case k <= 0:
		return 0
	case k <= 6:
		return (math.Pow(2, float64(k)) - 1) * t0
	default:
		return (63 + 64*float64(k-6)) * t0
	}
}

// AProb returns A(w, k) from Section II-B: the probability that the first k
// packets are ACKed in a round of w packets, given that the round contains
// one or more losses.
func AProb(p float64, w, k int) float64 {
	p = clampP(p)
	if w <= 0 || k < 0 || k > w {
		return 0
	}
	if p == 0 {
		return 0 // conditioning event has probability 0
	}
	denom := 1 - math.Pow(1-p, float64(w))
	if denom == 0 {
		return 0
	}
	return math.Pow(1-p, float64(k)) * p / denom
}

// CProb returns C(n, m) from Section II-B: the probability that m packets
// are ACKed in sequence in the last round of n packets and the rest of the
// round, if any, are lost.
func CProb(p float64, n, m int) float64 {
	p = clampP(p)
	if n <= 0 || m < 0 || m > n {
		return 0
	}
	if m == n {
		return math.Pow(1-p, float64(n))
	}
	return math.Pow(1-p, float64(m)) * p
}

// QHatExact returns the probability that a loss indication occurring at
// window size w is a timeout, computed by the exact summation of
// eqs. (22)-(23):
//
//	Q̂(w) = 1                                                w <= 3
//	Q̂(w) = Σ_{k=0}^{2} A(w,k) + Σ_{k=3}^{w} A(w,k)·h(k)      otherwise
//	h(k) = Σ_{m=0}^{2} C(k,m)
//
// w is the (integer) window size in packets.
func QHatExact(p float64, w int) float64 {
	p = clampP(p)
	if w <= 3 {
		return 1
	}
	if p == 0 {
		// lim_{p->0} Q̂(w) = 3/w (shown in the paper by L'Hopital).
		return 3 / float64(w)
	}
	q := 0.0
	for k := 0; k <= 2; k++ {
		q += AProb(p, w, k)
	}
	for k := 3; k <= w; k++ {
		h := CProb(p, k, 0) + CProb(p, k, 1) + CProb(p, k, 2)
		q += AProb(p, w, k) * h
	}
	return math.Min(1, q)
}

// QHat returns the closed form of Q̂(w) from eq. (24):
//
//	Q̂(w) = min(1, (1-(1-p)^3)·(1+(1-p)^3·(1-(1-p)^{w-3})) / (1-(1-p)^w))
//
// Unlike QHatExact, w may be non-integral (the paper evaluates Q̂ at E[W]).
// For w <= 3 it returns 1, matching eq. (22).
func QHat(p float64, w float64) float64 {
	p = clampP(p)
	if w <= 3 || math.IsNaN(w) {
		return 1
	}
	if p == 0 || math.IsInf(w, 1) {
		if math.IsInf(w, 1) {
			return 0
		}
		return 3 / w
	}
	q := 1 - p
	q3 := q * q * q
	denom := 1 - math.Pow(q, w)
	if denom <= 0 {
		return 1
	}
	v := (1 - q3) * (1 + q3*(1-math.Pow(q, w-3))) / denom
	return math.Min(1, v)
}

// QHatApprox returns the paper's numerical approximation of Q̂ from
// eq. (25): min(1, 3/w).
func QHatApprox(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return math.Min(1, 3/w)
}

// Q returns the probability that a loss indication is a timeout, using the
// paper's approximation (26): Q ≈ Q̂(E[W]) with E[W] from eq. (13), capped
// at Wm when the window is limited.
func Q(p float64, pr Params) float64 {
	p = clampP(p)
	if p == 0 {
		if pr.windowLimited() {
			return QHat(0, pr.Wm)
		}
		return 0
	}
	w := EW(p, pr.ackRatio())
	if pr.windowLimited() && w > pr.Wm {
		w = pr.Wm
	}
	return QHat(p, w)
}

// SendRateTDOnlyExact returns the send rate when all loss indications are
// triple-duplicate ACKs, eq. (19):
//
//	B(p) = ((1-p)/p + E[W]) / (RTT·(E[X] + 1))
//
// This is the model of Section II-A with no timeout or window-limitation
// terms. It returns +Inf at p == 0.
func SendRateTDOnlyExact(p float64, rtt, b float64) float64 {
	p = clampP(p)
	if p == 0 {
		return math.Inf(1)
	}
	return EY(p, b) / EA(p, rtt, b)
}

// SendRateTDOnly returns the "TD only" baseline plotted in the paper's
// Figs. 7-10 — the model of Mathis, Semke, Mahdavi and Ott [9], which is
// the square-root formula of eq. (20) accounting for delayed ACKs:
//
//	B(p) = (1/RTT)·sqrt(3/(2bp))
//
// It returns +Inf at p == 0 and does not account for timeouts or the
// receiver window. A delayed-ACK ratio b below 1 (unset) defaults to
// DefaultB, so every caller — the pftk facade, the prediction service,
// the experiment harness — sees identical defaulting.
func SendRateTDOnly(p float64, rtt, b float64) float64 {
	if b < 1 {
		b = DefaultB
	}
	if invariant.Enabled {
		invariant.Probability("loss rate p", p)
		invariant.Positive("RTT", rtt)
	}
	p = clampP(p)
	if p == 0 {
		return math.Inf(1)
	}
	if p == 1 {
		return 1 / rtt * math.Sqrt(3/(2*b))
	}
	return 1 / rtt * math.Sqrt(3/(2*b*p))
}

// SendRateNoTimeout returns the send rate of the Section II-A model
// extended only with the window limitation but not timeouts; exposed for
// ablation studies. At p == 0 it returns Wm/RTT when the window is limited.
func SendRateNoTimeout(p float64, pr Params) float64 {
	checkDomain(p, pr)
	p = clampP(p)
	b := pr.ackRatio()
	if p == 0 {
		if pr.windowLimited() {
			return pr.Wm / pr.RTT
		}
		return math.Inf(1)
	}
	if !pr.windowLimited() || EW(p, b) < pr.Wm {
		return SendRateTDOnlyExact(p, pr.RTT, b)
	}
	wm := pr.Wm
	num := (1-p)/p + wm
	den := pr.RTT * (b/8*wm + (1-p)/(p*wm) + 2)
	return num / den
}

// SendRateFull returns the paper's "full model" send rate B(p) of eq. (32):
//
//	            (1-p)/p + E[W] + Q̂(E[W])·1/(1-p)
//	B(p) = ─────────────────────────────────────────────     E[Wu] < Wm
//	        RTT·(b/2·E[Wu] + 1) + Q̂(E[W])·T0·f(p)/(1-p)
//
//	            (1-p)/p + Wm + Q̂(Wm)·1/(1-p)
//	B(p) = ──────────────────────────────────────────────────   otherwise
//	        RTT·(b/8·Wm + (1-p)/(p·Wm) + 2) + Q̂(Wm)·T0·f(p)/(1-p)
//
// in packets per second. Boundary behaviour: B(0) = Wm/RTT when the window
// is limited and +Inf otherwise; B(1) = 0.
func SendRateFull(p float64, pr Params) float64 {
	checkDomain(p, pr)
	p = clampP(p)
	b := pr.ackRatio()
	switch p {
	case 0:
		if pr.windowLimited() {
			return pr.Wm / pr.RTT
		}
		return math.Inf(1)
	case 1:
		return 0
	}
	wu := EW(p, b)
	if !pr.windowLimited() || wu < pr.Wm {
		q := QHat(p, wu)
		num := (1-p)/p + wu + q/(1-p)
		den := pr.RTT*(b/2*wu+1) + q*pr.T0*FP(p)/(1-p)
		return checkRate("B(p) full model", p, num/den)
	}
	wm := pr.Wm
	q := QHat(p, wm)
	num := (1-p)/p + wm + q/(1-p)
	den := pr.RTT*(b/8*wm+(1-p)/(p*wm)+2) + q*pr.T0*FP(p)/(1-p)
	return checkRate("B(p) full model", p, num/den)
}

// SendRateApprox returns the paper's "approximate model" of eq. (33):
//
//	B(p) ≈ min( Wm/RTT,
//	            1 / ( RTT·sqrt(2bp/3) + T0·min(1, 3·sqrt(3bp/8))·p·(1+32p²) ) )
//
// in packets per second. When the window is unlimited the Wm/RTT term is
// dropped.
func SendRateApprox(p float64, pr Params) float64 {
	checkDomain(p, pr)
	p = clampP(p)
	b := pr.ackRatio()
	unconstrained := func() float64 {
		if p == 0 {
			return math.Inf(1)
		}
		den := pr.RTT*math.Sqrt(2*b*p/3) +
			pr.T0*math.Min(1, 3*math.Sqrt(3*b*p/8))*p*(1+32*p*p)
		return 1 / den
	}()
	if !pr.windowLimited() {
		return checkRate("B(p) approximate model", p, unconstrained)
	}
	return checkRate("B(p) approximate model", p, math.Min(pr.Wm/pr.RTT, unconstrained))
}

// WThroughput returns W(p) of eq. (38) generalized to arbitrary b; for
// b = 2 it reduces to the printed form 2/3 + sqrt(4(1-p)/(3p) + 4/9).
// It equals EW(p, b).
func WThroughput(p float64, b float64) float64 { return EW(p, b) }

// Throughput returns T(p) of eq. (37): the rate at which data arrives at
// the receiver (as opposed to the send rate, which counts every
// transmission). The printed equation hardcodes b = 2; this implementation
// keeps b parametric through E[W] and E[X], reducing exactly to the printed
// form at b = 2:
//
//	          (1-p)/p + W(p)/2 + Q(p, W(p))
//	T(p) = ─────────────────────────────────────        W(p) < Wm
//	        RTT·(b/2·W(p) + 1) + Q·G(p)·T0/(1-p)
//
//	              (1-p)/p + Wm/2 + Q(p, Wm)
//	T(p) = ────────────────────────────────────────────────   otherwise
//	        RTT·(b/8·Wm + (1-p)/(p·Wm) + 2) + Q·G(p)·T0/(1-p)
//
// Boundary behaviour matches SendRateFull: T(0) = Wm/RTT (window-limited)
// or +Inf; T(1) = 0.
func Throughput(p float64, pr Params) float64 {
	checkDomain(p, pr)
	p = clampP(p)
	b := pr.ackRatio()
	switch p {
	case 0:
		if pr.windowLimited() {
			return pr.Wm / pr.RTT
		}
		return math.Inf(1)
	case 1:
		return 0
	}
	w := WThroughput(p, b)
	if !pr.windowLimited() || w < pr.Wm {
		q := QHat(p, w)
		num := (1-p)/p + w/2 + q
		den := pr.RTT*(b/2*w+1) + q*FP(p)*pr.T0/(1-p)
		return checkRate("T(p) throughput", p, num/den)
	}
	wm := pr.Wm
	q := QHat(p, wm)
	num := (1-p)/p + wm/2 + q
	den := pr.RTT*(b/8*wm+(1-p)/(p*wm)+2) + q*FP(p)*pr.T0/(1-p)
	return checkRate("T(p) throughput", p, num/den)
}

// Model selects one of the analytic characterizations implemented by this
// package.
type Model int

// The models implemented by this package.
const (
	// ModelFull is the paper's full model, eq. (32).
	ModelFull Model = iota
	// ModelApprox is the paper's approximate model, eq. (33).
	ModelApprox
	// ModelTDOnly is the Mathis et al. [9] baseline ("TD only" in the
	// paper's figures), eq. (20).
	ModelTDOnly
	// ModelThroughput is the receiver-side throughput model, eq. (37).
	ModelThroughput
	// ModelNoTimeout is the Section II-A model with window limitation
	// but without timeouts (ablation).
	ModelNoTimeout
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelFull:
		return "full"
	case ModelApprox:
		return "approximate"
	case ModelTDOnly:
		return "TD only"
	case ModelThroughput:
		return "throughput"
	case ModelNoTimeout:
		return "no-timeout"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Rate evaluates the selected model at loss rate p with parameters pr, in
// packets per second.
func (m Model) Rate(p float64, pr Params) float64 {
	switch m {
	case ModelFull:
		return SendRateFull(p, pr)
	case ModelApprox:
		return SendRateApprox(p, pr)
	case ModelTDOnly:
		return SendRateTDOnly(p, pr.RTT, pr.ackRatio())
	case ModelThroughput:
		return Throughput(p, pr)
	case ModelNoTimeout:
		return SendRateNoTimeout(p, pr)
	default:
		return math.NaN()
	}
}
