package core

import "math"

// Sensitivity analysis of the full model — how strongly B(p) reacts to
// each of its inputs. Useful for practitioners deciding what to improve
// (a shorter path? a larger receiver buffer? less loss?) and for
// understanding which regime a connection is in: at low p the RTT term
// dominates (B ~ 1/(RTT·sqrt(p))), at high p the timeout term does
// (B ~ 1/(T0·p·(1+32p²))), and under the window cap only Wm and RTT
// matter.

// Elasticities holds the local elasticity (d log B / d log x) of the send
// rate with respect to each model input, evaluated at one operating
// point. An elasticity of -0.5 means a 1% increase in the input decreases
// B by about 0.5%.
type Elasticities struct {
	P, RTT, T0, Wm float64
}

// relStep is the relative perturbation used by the central differences.
const relStep = 1e-4

// logDeriv computes d log f / d log x by central difference around x.
func logDeriv(f func(float64) float64, x float64) float64 {
	if x == 0 {
		return 0
	}
	h := x * relStep
	up, down := f(x+h), f(x-h)
	if up <= 0 || down <= 0 {
		return math.NaN()
	}
	return (math.Log(up) - math.Log(down)) / (math.Log(x+h) - math.Log(x-h))
}

// SendRateElasticities returns the elasticities of the full model at
// (p, pr). The Wm elasticity is 0 when the window is unlimited.
func SendRateElasticities(p float64, pr Params) Elasticities {
	e := Elasticities{
		P: logDeriv(func(x float64) float64 { return SendRateFull(x, pr) }, p),
		RTT: logDeriv(func(x float64) float64 {
			q := pr
			q.RTT = x
			return SendRateFull(p, q)
		}, pr.RTT),
		T0: logDeriv(func(x float64) float64 {
			q := pr
			q.T0 = x
			return SendRateFull(p, q)
		}, pr.T0),
	}
	if pr.Wm > 0 {
		e.Wm = logDeriv(func(x float64) float64 {
			q := pr
			q.Wm = x
			return SendRateFull(p, q)
		}, pr.Wm)
	}
	return e
}

// Regime classifies the operating point of a connection by its dominant
// constraint.
type Regime int

// The operating regimes of the model.
const (
	// RegimeWindowLimited: E[Wu] >= Wm; the rate pins near Wm/RTT.
	RegimeWindowLimited Regime = iota
	// RegimeCongestionAvoidance: losses are mostly repaired by fast
	// retransmit; the sqrt(p) term dominates.
	RegimeCongestionAvoidance
	// RegimeTimeoutDominated: the timeout term contributes the majority
	// of the denominator of eq. (32).
	RegimeTimeoutDominated
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimeWindowLimited:
		return "window-limited"
	case RegimeCongestionAvoidance:
		return "congestion-avoidance"
	case RegimeTimeoutDominated:
		return "timeout-dominated"
	default:
		return "unknown"
	}
}

// ClassifyRegime reports which constraint dominates B(p) at the operating
// point, using the structure of eq. (32).
func ClassifyRegime(p float64, pr Params) Regime {
	p = clampP(p)
	b := pr.ackRatio()
	if p == 0 {
		if pr.Wm > 0 {
			return RegimeWindowLimited
		}
		return RegimeCongestionAvoidance
	}
	w := EW(p, b)
	if pr.Wm > 0 && w >= pr.Wm {
		// Window-capped — but heavy loss can still make timeouts
		// dominate inside the capped branch.
		w = pr.Wm
		caTerm := pr.RTT * (b/8*w + (1-p)/(p*w) + 2)
		toTerm := QHat(p, w) * pr.T0 * FP(p) / (1 - p)
		if toTerm > caTerm {
			return RegimeTimeoutDominated
		}
		return RegimeWindowLimited
	}
	caTerm := pr.RTT * (b/2*w + 1)
	toTerm := QHat(p, w) * pr.T0 * FP(p) / (1 - p)
	if toTerm > caTerm {
		return RegimeTimeoutDominated
	}
	return RegimeCongestionAvoidance
}
