package core

import (
	"math"
	"testing"
)

func TestElasticitySmallPMatchesSqrtLaw(t *testing.T) {
	// In the sqrt regime, B ~ 1/(RTT*sqrt(p)): elasticity wrt p is
	// -0.5 and wrt RTT is -1.
	pr := NewParams(0.2, 2.0, 0)
	e := SendRateElasticities(1e-4, pr)
	if math.Abs(e.P+0.5) > 0.05 {
		t.Errorf("dlogB/dlogp = %g, want ~-0.5", e.P)
	}
	if math.Abs(e.RTT+1) > 0.05 {
		t.Errorf("dlogB/dlogRTT = %g, want ~-1", e.RTT)
	}
	if math.Abs(e.T0) > 0.05 {
		t.Errorf("dlogB/dlogT0 = %g, want ~0 at tiny p", e.T0)
	}
}

func TestElasticityHighLossTimeoutDominated(t *testing.T) {
	// At high p the timeout term rules: T0 elasticity approaches -1 and
	// RTT fades.
	pr := NewParams(0.2, 2.0, 0)
	e := SendRateElasticities(0.3, pr)
	if e.T0 > -0.7 {
		t.Errorf("dlogB/dlogT0 = %g, want strongly negative at p=0.3", e.T0)
	}
	if e.RTT < -0.35 {
		t.Errorf("dlogB/dlogRTT = %g, want weak at p=0.3", e.RTT)
	}
	// p elasticity much steeper than -0.5 (the 1+32p^2 term bites).
	if e.P > -1 {
		t.Errorf("dlogB/dlogp = %g, want below -1 at p=0.3", e.P)
	}
}

func TestElasticityWindowLimited(t *testing.T) {
	// Deep in the window-limited regime, B ≈ Wm/RTT: Wm elasticity ~1,
	// RTT ~-1, p ~0.
	pr := NewParams(0.2, 2.0, 6)
	e := SendRateElasticities(1e-4, pr)
	if math.Abs(e.Wm-1) > 0.1 {
		t.Errorf("dlogB/dlogWm = %g, want ~1", e.Wm)
	}
	if math.Abs(e.RTT+1) > 0.1 {
		t.Errorf("dlogB/dlogRTT = %g, want ~-1", e.RTT)
	}
	if math.Abs(e.P) > 0.1 {
		t.Errorf("dlogB/dlogp = %g, want ~0", e.P)
	}
}

func TestElasticityUnlimitedWindowHasZeroWm(t *testing.T) {
	pr := NewParams(0.2, 2.0, 0)
	if e := SendRateElasticities(0.01, pr); e.Wm != 0 {
		t.Errorf("Wm elasticity = %g on unlimited window", e.Wm)
	}
}

func TestClassifyRegime(t *testing.T) {
	cases := []struct {
		p    float64
		pr   Params
		want Regime
	}{
		{1e-4, NewParams(0.2, 2.0, 8), RegimeWindowLimited},
		{1e-4, NewParams(0.2, 2.0, 0), RegimeCongestionAvoidance},
		{0.004, NewParams(0.2, 2.0, 0), RegimeCongestionAvoidance},
		{0.3, NewParams(0.2, 2.0, 0), RegimeTimeoutDominated},
		{0.3, NewParams(0.2, 2.0, 8), RegimeTimeoutDominated},
		{0, NewParams(0.2, 2.0, 8), RegimeWindowLimited},
		{0, NewParams(0.2, 2.0, 0), RegimeCongestionAvoidance},
	}
	for _, c := range cases {
		if got := ClassifyRegime(c.p, c.pr); got != c.want {
			t.Errorf("ClassifyRegime(%g, %v) = %v, want %v", c.p, c.pr, got, c.want)
		}
	}
}

func TestRegimeString(t *testing.T) {
	names := map[Regime]string{
		RegimeWindowLimited:       "window-limited",
		RegimeCongestionAvoidance: "congestion-avoidance",
		RegimeTimeoutDominated:    "timeout-dominated",
		Regime(99):                "unknown",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}

func TestRegimeBoundaryMonotone(t *testing.T) {
	// Sweeping p upward on an unlimited window, the regime must move
	// from congestion-avoidance to timeout-dominated exactly once.
	pr := NewParams(0.25, 2.0, 0)
	transitions := 0
	prev := ClassifyRegime(1e-5, pr)
	for _, p := range []float64{1e-4, 1e-3, 0.003, 0.01, 0.03, 0.1, 0.2, 0.4, 0.7} {
		cur := ClassifyRegime(p, pr)
		if cur != prev {
			transitions++
			if prev != RegimeCongestionAvoidance || cur != RegimeTimeoutDominated {
				t.Errorf("unexpected transition %v -> %v at p=%g", prev, cur, p)
			}
		}
		prev = cur
	}
	if transitions != 1 {
		t.Errorf("regime transitions = %d, want exactly 1", transitions)
	}
}
