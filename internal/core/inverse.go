package core

import (
	"fmt"
	"math"
)

// ErrRateOutOfRange is returned (wrapped) by LossRateFor when the requested
// rate cannot be achieved by any loss rate in (0, 1].
type rateOutOfRangeError struct {
	rate float64
	max  float64
}

func (e *rateOutOfRangeError) Error() string {
	return fmt.Sprintf("core: target rate %g pkts/s out of range (model maximum %g pkts/s)", e.rate, e.max)
}

// LossRateFor inverts the full model: it returns the loss-indication rate p
// at which a connection with parameters pr achieves send rate target (in
// packets per second), found by bisection on the monotone-decreasing
// B(p).
//
// This is the computation a "TCP-friendly" non-TCP flow performs: given a
// measured loss rate it may send no faster than B(p); conversely, given its
// current rate, the loss rate it could tolerate is LossRateFor(rate, pr).
//
// If the target exceeds B(p) for every p in (0, 1] — e.g. above Wm/RTT for
// a window-limited connection — an error is returned. Targets at or below
// B(1) = 0 return p = 1.
func LossRateFor(target float64, pr Params) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if math.IsNaN(target) || target < 0 {
		return 0, fmt.Errorf("core: target rate must be non-negative, got %v", target)
	}
	if target == 0 {
		return 1, nil
	}
	const lo0 = 1e-12
	maxRate := SendRateFull(lo0, pr)
	if target > maxRate {
		return 0, &rateOutOfRangeError{rate: target, max: maxRate}
	}
	// B(p) is monotone non-increasing on [lo0, 1]; bisect for the
	// boundary. With a window-limited connection B is flat at Wm/RTT for
	// small p, in which case we return the largest p still achieving the
	// target (the most useful answer for rate control).
	lo, hi := lo0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if SendRateFull(mid, pr) >= target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-15 {
			break
		}
	}
	return lo, nil
}

// FriendlyRate returns the TCP-friendly send rate (packets per second) for
// a flow observing loss rate p over a path with the given parameters — the
// use case from the paper's introduction (defining a "fair share" rate for
// a non-TCP flow). It is simply the full model, clamped to be finite: at
// p == 0 on an unconstrained connection it returns Wm-free fallback
// 1/RTT·sqrt(3/(2b·pmin)) evaluated at pmin = 1e-9 to remain usable in
// controllers.
func FriendlyRate(p float64, pr Params) float64 {
	r := SendRateFull(p, pr)
	if math.IsInf(r, 1) {
		return SendRateFull(1e-9, pr)
	}
	return r
}

// CurvePoint is a single (p, rate) sample of a model curve.
type CurvePoint struct {
	P    float64
	Rate float64
}

// Curve samples the model m at n log-spaced loss rates in [pmin, pmax].
// It panics if pmin or pmax are outside (0, 1] or n < 2.
func Curve(m Model, pr Params, pmin, pmax float64, n int) []CurvePoint {
	if !(pmin > 0 && pmin <= 1) || !(pmax > 0 && pmax <= 1) || pmax < pmin {
		panic(fmt.Sprintf("core: invalid curve range [%g, %g]", pmin, pmax))
	}
	if n < 2 {
		panic("core: curve needs at least 2 points")
	}
	out := make([]CurvePoint, n)
	lmin, lmax := math.Log(pmin), math.Log(pmax)
	for i := range out {
		p := math.Exp(lmin + (lmax-lmin)*float64(i)/float64(n-1))
		out[i] = CurvePoint{P: p, Rate: m.Rate(p, pr)}
	}
	return out
}
