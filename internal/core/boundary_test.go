package core

import (
	"math"
	"testing"

	"pftk/internal/invariant"
)

// Domain-boundary coverage for the model entry points: the extremes
// p→0⁺, p=1 and RTT→0⁺ where naive implementations of Eq. (30)-style
// formulas silently produce NaN or Inf. In the default build the entry
// points clamp and stay deterministic; the invariant layer's Check
// functions reject the same inputs for callers that want to fail fast
// (the pftkinvariants build turns those rejections into panics at the
// call site — see internal/invariant).

func entryPoints() map[string]func(p float64, pr Params) float64 {
	return map[string]func(p float64, pr Params) float64{
		"SendRateFull":   SendRateFull,
		"SendRateApprox": SendRateApprox,
		"Throughput":     Throughput,
		"ShortFlowTime":  func(p float64, pr Params) float64 { return ShortFlowTime(1000, p, pr) },
	}
}

func TestEntryPointsTinyP(t *testing.T) {
	lim := NewParams(0.2, 2.0, 12)
	un := Params{RTT: 0.2, T0: 2, Wm: 0, B: 2}
	for _, p := range []float64{1e-300, 1e-100, 1e-12} {
		for name, fn := range entryPoints() {
			// Window-limited: every quantity must be finite and
			// non-negative all the way down.
			got := fn(p, lim)
			if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
				t.Errorf("%s(p=%g, limited) = %g, want finite non-negative", name, p, got)
			}
		}
		// Rate models must flatten at the receiver-window ceiling.
		if got, ceil := SendRateFull(p, lim), lim.Wm/lim.RTT; math.Abs(got-ceil)/ceil > 1e-6 {
			t.Errorf("SendRateFull(p=%g) = %g, want ~ceiling %g", p, got, ceil)
		}
		// Unconstrained: diverging is the documented behaviour, NaN is
		// not.
		for name, fn := range entryPoints() {
			if got := fn(p, un); math.IsNaN(got) || got < 0 {
				t.Errorf("%s(p=%g, unconstrained) = %g, want non-NaN non-negative", name, p, got)
			}
		}
	}
}

func TestEntryPointsPOne(t *testing.T) {
	pr := NewParams(0.2, 2.0, 12)
	if got := SendRateFull(1, pr); got != 0 {
		t.Errorf("SendRateFull(1) = %g, want 0", got)
	}
	if got := Throughput(1, pr); got != 0 {
		t.Errorf("Throughput(1) = %g, want 0", got)
	}
	if got := SendRateApprox(1, pr); math.IsNaN(got) || got < 0 {
		t.Errorf("SendRateApprox(1) = %g, want finite non-negative", got)
	}
	// Just below 1 everything is still finite.
	for name, fn := range entryPoints() {
		if got := fn(1-1e-12, pr); math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Errorf("%s(1-1e-12) = %g, want finite non-negative", name, got)
		}
	}
}

func TestEntryPointsTinyRTT(t *testing.T) {
	// RTT → 0⁺ passes Validate (strictly positive) and must not produce
	// NaN: the timeout term keeps the denominator alive.
	for _, rtt := range []float64{1e-300, 1e-12} {
		pr := Params{RTT: rtt, T0: 2, Wm: 12, B: 2}
		if err := pr.Validate(); err != nil {
			t.Fatalf("Validate(RTT=%g) = %v, want nil", rtt, err)
		}
		for name, fn := range entryPoints() {
			if got := fn(0.01, pr); math.IsNaN(got) || got < 0 {
				t.Errorf("%s(RTT=%g) = %g, want non-NaN non-negative", name, rtt, got)
			}
		}
	}
	// RTT = 0 and below remain rejected by Validate and by the
	// invariant layer.
	if (Params{RTT: 0, T0: 2, Wm: 12}).Validate() == nil {
		t.Error("Validate must reject RTT = 0")
	}
	if invariant.CheckPositive("RTT", 0) == nil {
		t.Error("invariant.CheckPositive must reject RTT = 0")
	}
}

func TestEntryPointsNonFinitePDeterministic(t *testing.T) {
	pr := NewParams(0.2, 2.0, 12)
	// The default build clamps NaN and negative p to 0, +Inf p to 1 —
	// each call must agree exactly with its clamped counterpart.
	for name, fn := range entryPoints() {
		if got, want := fn(math.NaN(), pr), fn(0, pr); got != want {
			t.Errorf("%s(NaN) = %g, want clamp to %s(0) = %g", name, got, name, want)
		}
		if got, want := fn(-0.5, pr), fn(0, pr); got != want {
			t.Errorf("%s(-0.5) = %g, want clamp to %s(0) = %g", name, got, name, want)
		}
		if got, want := fn(math.Inf(1), pr), fn(1, pr); got != want {
			t.Errorf("%s(+Inf) = %g, want clamp to %s(1) = %g", name, got, name, want)
		}
	}
	// The invariant layer rejects exactly those inputs.
	for _, p := range []float64{math.NaN(), -0.5, math.Inf(1), 1.5} {
		if invariant.CheckProbability("p", p) == nil {
			t.Errorf("invariant.CheckProbability(%g) = nil, want error", p)
		}
	}
}

func TestInverseBoundaries(t *testing.T) {
	pr := NewParams(0.2, 2.0, 12)
	// Target 0 is p = 1 by definition.
	if p, err := LossRateFor(0, pr); err != nil || p != 1 {
		t.Errorf("LossRateFor(0) = %g, %v; want 1, nil", p, err)
	}
	// NaN and negative targets are rejected, not absorbed.
	if _, err := LossRateFor(math.NaN(), pr); err == nil {
		t.Error("LossRateFor(NaN) must error")
	}
	if _, err := LossRateFor(-1, pr); err == nil {
		t.Error("LossRateFor(-1) must error")
	}
	// Round trip near the ceiling: the returned p re-achieves the rate.
	target := 0.95 * pr.Wm / pr.RTT
	p, err := LossRateFor(target, pr)
	if err != nil {
		t.Fatalf("LossRateFor(%g): %v", target, err)
	}
	if got := SendRateFull(p, pr); math.Abs(got-target)/target > 1e-3 {
		t.Errorf("round trip: B(%g) = %g, want %g", p, got, target)
	}
}
