package core

import (
	"math"
	"testing"
)

func TestSlowStartRounds(t *testing.T) {
	// With gamma=2 (b=1) and w1=1, data after r rounds is 2^r - 1.
	cases := []struct {
		d    float64
		want float64
	}{
		{0, 0},
		{1, 1},
		{3, 2},
		{7, 3},
		{15, 4},
	}
	for _, c := range cases {
		got := SlowStartRounds(c.d, 1, 2)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SlowStartRounds(%g) = %g, want %g", c.d, got, c.want)
		}
	}
}

func TestSlowStartRoundsDelayedAcks(t *testing.T) {
	// gamma = 1.5 grows slower: more rounds for the same data.
	r2 := SlowStartRounds(100, 1, 2)
	r15 := SlowStartRounds(100, 1, 1.5)
	if r15 <= r2 {
		t.Errorf("delayed-ACK slow start should take more rounds: %g vs %g", r15, r2)
	}
}

func TestShortFlowTimeLossless(t *testing.T) {
	pr := NewParams(0.1, 1.0, 0)
	// 1 packet: one round.
	if got := ShortFlowTime(1, 0, pr); math.Abs(got-0.1) > 0.05 {
		t.Errorf("1-packet time = %g, want ~0.1", got)
	}
	// Monotone in n.
	prev := 0.0
	for _, n := range []int{1, 2, 5, 10, 50, 200, 1000} {
		got := ShortFlowTime(n, 0, pr)
		if got < prev {
			t.Fatalf("time not monotone at n=%d: %g < %g", n, got, prev)
		}
		prev = got
	}
	if ShortFlowTime(0, 0, pr) != 0 {
		t.Error("0 packets should take 0 time")
	}
}

func TestShortFlowTimeWindowCapSlowsLargeTransfers(t *testing.T) {
	unlimited := NewParams(0.1, 1.0, 0)
	capped := NewParams(0.1, 1.0, 8)
	n := 2000
	if tu, tc := ShortFlowTime(n, 0, unlimited), ShortFlowTime(n, 0, capped); tc <= tu {
		t.Errorf("window cap should slow a large lossless transfer: %g vs %g", tc, tu)
	}
}

func TestShortFlowTimeGrowsWithLoss(t *testing.T) {
	pr := NewParams(0.1, 1.0, 32)
	n := 500
	prev := 0.0
	for _, p := range []float64{0, 0.005, 0.02, 0.05, 0.1} {
		got := ShortFlowTime(n, p, pr)
		if got < prev {
			t.Fatalf("time not monotone in p at %g: %g < %g", p, got, prev)
		}
		prev = got
	}
}

func TestShortFlowRateApproachesSteadyState(t *testing.T) {
	pr := NewParams(0.1, 1.0, 32)
	p := 0.02
	steady := SendRateFull(p, pr)
	r100 := ShortFlowRate(100, p, pr)
	r100k := ShortFlowRate(100000, p, pr)
	if r100 >= steady {
		t.Errorf("a 100-packet flow (%g) should be slower than steady state (%g)", r100, steady)
	}
	if math.Abs(r100k-steady)/steady > 0.1 {
		t.Errorf("a 100k-packet flow (%g) should approach steady state (%g)", r100k, steady)
	}
	if ShortFlowRate(0, p, pr) != math.Inf(1) {
		t.Error("zero-length flow rate should be +Inf")
	}
}

func TestShortFlowSmallFlowsDominatedBySlowStart(t *testing.T) {
	// For a 10-packet flow at light loss, the completion time should be
	// close to the lossless slow-start time (a few rounds), far from
	// n/B(p).
	pr := NewParams(0.1, 1.0, 32)
	p := 0.01
	got := ShortFlowTime(10, p, pr)
	lossless := ShortFlowTime(10, 0, pr)
	if got > 3*lossless {
		t.Errorf("10-packet flow at 1%% loss = %g, want near lossless %g", got, lossless)
	}
}
