package core

import "math"

// Short-flow latency extension.
//
// The paper models saturated senders and lists short connections as
// future work (its reference [2], Cardwell's "Modeling the performance of
// short TCP connections", became Cardwell, Savage & Anderson, INFOCOM
// 2000). This file implements that extension in the same spirit: the
// expected time to transfer n packets decomposes into
//
//	E[T] = E[T_ss] + E[T_loss] + E[T_ca]
//
// where T_ss is the initial slow-start phase (window grows by a factor
// γ = 1 + 1/b per round until the first loss, the receiver window, or the
// end of data), T_loss is the expected cost of the first loss indication
// (a timeout sequence with probability Q̂, one round otherwise), and T_ca
// is the remainder of the data sent at the steady-state rate B(p) of
// eq. (32).

// SlowStartRounds returns the number of slow-start rounds needed to
// transfer d packets starting from window w1 with per-round growth factor
// gamma, before any window cap: the smallest r with
// w1·(γ^r − 1)/(γ − 1) >= d.
func SlowStartRounds(d float64, w1, gamma float64) float64 {
	if d <= 0 {
		return 0
	}
	if w1 < 1 {
		w1 = 1
	}
	return math.Log(d*(gamma-1)/w1+1) / math.Log(gamma)
}

// slowStartDataBeforeLoss returns E[d_ss]: the expected number of packets
// sent before the first loss, capped at n — Cardwell's
// E[d_ss] = (1 − (1−p)^n)·(1/p) generalization.
func slowStartDataBeforeLoss(n float64, p float64) float64 {
	if p <= 0 {
		return n
	}
	return math.Min(n, (1-math.Pow(1-p, n))/p)
}

// ShortFlowTime returns the expected completion time in seconds of a
// transfer of n packets under the model parameters pr and loss rate p.
// It accounts for slow start from an initial window of one packet, the
// receiver window cap, the expected cost of the first loss indication,
// and steady-state transfer of the remainder.
func ShortFlowTime(n int, p float64, pr Params) float64 {
	if n <= 0 {
		return 0
	}
	checkDomain(p, pr)
	p = clampP(p)
	b := pr.ackRatio()
	gamma := 1 + 1/b
	nf := float64(n)

	// Phase 1: slow start until the first loss (or all data sent).
	dss := slowStartDataBeforeLoss(nf, p)
	var tss float64
	wCap := math.Inf(1)
	if pr.windowLimited() {
		wCap = pr.Wm
	}
	// Rounds to either finish dss or hit the window cap.
	rToCap := math.Log(wCap) / math.Log(gamma)
	rNeeded := SlowStartRounds(dss, 1, gamma)
	if rNeeded <= rToCap {
		tss = pr.RTT * rNeeded
	} else {
		// Grow to the cap, then send the rest at Wm per round.
		dAtCap := (math.Pow(gamma, rToCap) - 1) / (gamma - 1)
		rest := dss - dAtCap
		tss = pr.RTT * (rToCap + math.Ceil(rest/wCap))
	}
	if dss >= nf && p == 0 {
		return tss
	}
	// Probability the transfer finishes without any loss at all.
	pNoLoss := math.Pow(1-p, nf)
	if dss >= nf {
		// Data fits in the pre-loss slow-start phase in expectation;
		// add the loss cost weighted by the chance a loss occurs.
		return tss + (1-pNoLoss)*firstLossCost(p, pr)
	}

	// Phase 2: the first loss indication.
	tloss := firstLossCost(p, pr)

	// Phase 3: the remainder at steady state.
	rate := SendRateFull(p, pr)
	var tca float64
	if rate > 0 && !math.IsInf(rate, 0) {
		tca = (nf - dss) / rate
	}
	return tss + tloss + tca
}

// firstLossCost returns the expected time consumed by the first loss
// indication: Q̂(w)·E[Z^TO] for a timeout, one RTT for a fast retransmit,
// evaluated at the slow-start window scale E[W].
func firstLossCost(p float64, pr Params) float64 {
	if p <= 0 {
		return 0
	}
	b := pr.ackRatio()
	w := EW(p, b)
	if pr.windowLimited() && w > pr.Wm {
		w = pr.Wm
	}
	q := QHat(p, w)
	return q*EZTO(p, pr.T0) + (1-q)*pr.RTT
}

// ShortFlowRate returns the effective rate (packets per second) of an
// n-packet transfer: n / ShortFlowTime. It approaches SendRateFull as
// n grows and drops toward 1/(RTT·log) for tiny flows — the "short flows
// never reach steady state" effect.
func ShortFlowRate(n int, p float64, pr Params) float64 {
	t := ShortFlowTime(n, p, pr)
	if t <= 0 {
		return math.Inf(1)
	}
	return float64(n) / t
}
