package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The //pftk: directive vocabulary. Directives are machine-readable
// comments that attach project invariants to declarations; the directive
// analyzer validates spelling and placement, and the determinism,
// guardedby and hotalloc analyzers consume them.
const (
	// DirHotpath marks a function whose steady state must not allocate
	// (consumed by hotalloc).
	DirHotpath = "hotpath"
	// DirDeterministic marks a function that must be reproducible:
	// no wall clock, no global math/rand, no goroutines, no unordered
	// map iteration (consumed by determinism).
	DirDeterministic = "deterministic"
	// DirGuardedBy marks a struct field or package-level variable that
	// may only be accessed while the named mutex is held (consumed by
	// guardedby). Form: //pftk:guardedby mu
	DirGuardedBy = "guardedby"
	// DirLocked marks a function whose callers are required to hold the
	// named mutex, exempting its guarded-field accesses (consumed by
	// guardedby). Form: //pftk:locked(mu)
	DirLocked = "locked"
)

// KnownDirectives lists every recognized //pftk: directive name.
var KnownDirectives = []string{DirHotpath, DirDeterministic, DirGuardedBy, DirLocked}

// directivePrefix introduces every annotation comment.
const directivePrefix = "//pftk:"

// parseDirective splits a //pftk: comment into its name and argument.
// Both "//pftk:guardedby mu" (space form) and "//pftk:locked(mu)"
// (parenthesized form) are recognized; ok is false for ordinary
// comments. The ignore directive ("//pftklint:ignore") is a different
// namespace and not handled here.
func parseDirective(text string) (name, arg string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", "", false
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", true // bare "//pftk:" — malformed, caller reports
	}
	if i := strings.IndexByte(rest, '('); i >= 0 {
		name = rest[:i]
		arg = rest[i+1:]
		arg, _ = strings.CutSuffix(strings.TrimSpace(arg), ")")
		return name, strings.TrimSpace(arg), true
	}
	name, arg, _ = strings.Cut(rest, " ")
	return name, strings.TrimSpace(arg), true
}

// GuardFact records that one object (a struct field or package-level
// variable) is protected by a named mutex.
type GuardFact struct {
	// Guard is the annotated mutex name (e.g. "mu").
	Guard string
	// GuardObj is the resolved guard object: the sibling mutex field for
	// struct fields, or the package-level mutex variable for guarded
	// package variables. Nil when the name does not resolve (the
	// directive analyzer reports that).
	GuardObj types.Object
}

// PackageFacts are the per-package annotation tables the cross-package
// analyzers consume. The driver computes facts for every loaded package
// before any analyzer runs, so a pass over package B can look up the
// guarded fields package A exported.
type PackageFacts struct {
	// Deterministic holds functions annotated //pftk:deterministic.
	Deterministic map[types.Object]bool
	// Locked maps a function to the mutex names its //pftk:locked(...)
	// annotations declare held on entry.
	Locked map[types.Object][]string
	// Guarded maps a field or package-level variable to its
	// //pftk:guardedby annotation.
	Guarded map[types.Object]GuardFact
}

// FactTable indexes PackageFacts by type-checker package identity, so an
// analyzer holding a types.Object from any loaded package can reach its
// annotations.
type FactTable struct {
	byPkg map[*types.Package]*PackageFacts
}

// NewFactTable computes facts for every package.
func NewFactTable(pkgs []*Package) *FactTable {
	t := &FactTable{byPkg: make(map[*types.Package]*PackageFacts, len(pkgs))}
	for _, pkg := range pkgs {
		t.byPkg[pkg.Types] = computeFacts(pkg)
	}
	return t
}

// For returns the facts of one package, or nil when the package was not
// part of the analyzed set (stdlib, failed loads).
func (t *FactTable) For(p *types.Package) *PackageFacts {
	if t == nil {
		return nil
	}
	return t.byPkg[p]
}

// GuardFor resolves the guardedby annotation of an object defined in any
// analyzed package. Fields of generic structs are normalized to their
// origin: a selection through lruShard[V] (or any instantiation) yields
// a substituted field Var distinct from the one the declaration defines,
// and the facts table is keyed by the declared object.
func (t *FactTable) GuardFor(obj types.Object) (GuardFact, bool) {
	if t == nil || obj == nil || obj.Pkg() == nil {
		return GuardFact{}, false
	}
	if v, ok := obj.(*types.Var); ok {
		obj = v.Origin()
	}
	f := t.For(obj.Pkg())
	if f == nil {
		return GuardFact{}, false
	}
	g, ok := f.Guarded[obj]
	return g, ok
}

// LockedGuards returns the mutex names a function's //pftk:locked
// annotations declare held.
func (t *FactTable) LockedGuards(fn types.Object) []string {
	if t == nil || fn == nil || fn.Pkg() == nil {
		return nil
	}
	f := t.For(fn.Pkg())
	if f == nil {
		return nil
	}
	return f.Locked[fn]
}

// IsDeterministic reports whether a function carries the
// //pftk:deterministic annotation.
func (t *FactTable) IsDeterministic(fn types.Object) bool {
	if t == nil || fn == nil || fn.Pkg() == nil {
		return false
	}
	f := t.For(fn.Pkg())
	return f != nil && f.Deterministic[fn]
}

// computeFacts extracts the annotation tables from one package's syntax.
func computeFacts(pkg *Package) *PackageFacts {
	f := &PackageFacts{
		Deterministic: map[types.Object]bool{},
		Locked:        map[types.Object][]string{},
		Guarded:       map[types.Object]GuardFact{},
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				factsFromFuncDoc(pkg, f, d)
			case *ast.GenDecl:
				switch d.Tok {
				case token.TYPE:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if st, ok := ts.Type.(*ast.StructType); ok {
							factsFromStruct(pkg, f, st)
						}
					}
				case token.VAR:
					factsFromVarDecl(pkg, f, d)
				}
			}
		}
	}
	return f
}

// factsFromFuncDoc records deterministic/locked annotations from a
// function's doc comment.
func factsFromFuncDoc(pkg *Package, f *PackageFacts, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	obj := pkg.Info.Defs[fd.Name]
	if obj == nil {
		return
	}
	for _, c := range fd.Doc.List {
		name, arg, ok := parseDirective(c.Text)
		if !ok {
			continue
		}
		switch name {
		case DirDeterministic:
			f.Deterministic[obj] = true
		case DirLocked:
			if arg != "" {
				f.Locked[obj] = append(f.Locked[obj], arg)
			}
		}
	}
}

// factsFromStruct records guardedby annotations on struct fields. The
// guard must be a sibling field of the same struct; resolution failures
// leave GuardObj nil for the directive analyzer to report.
func factsFromStruct(pkg *Package, f *PackageFacts, st *ast.StructType) {
	// Index sibling field objects by name for guard resolution.
	byName := map[string]types.Object{}
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if obj := pkg.Info.Defs[id]; obj != nil {
				byName[id.Name] = obj
			}
		}
	}
	for _, field := range st.Fields.List {
		guard := directiveArg(field.Doc, DirGuardedBy)
		if guard == "" {
			guard = directiveArg(field.Comment, DirGuardedBy)
		}
		if guard == "" {
			continue
		}
		for _, id := range field.Names {
			obj := pkg.Info.Defs[id]
			if obj == nil {
				continue
			}
			f.Guarded[obj] = GuardFact{Guard: guard, GuardObj: byName[guard]}
		}
	}
	// Nested struct types (struct-typed fields with their own guarded
	// members) are handled when their named type declaration is walked;
	// anonymous nested structs with directives are rare enough to skip.
}

// factsFromVarDecl records guardedby annotations on package-level
// variables; the guard must be another package-level variable.
func factsFromVarDecl(pkg *Package, f *PackageFacts, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		guard := directiveArg(vs.Doc, DirGuardedBy)
		if guard == "" {
			guard = directiveArg(vs.Comment, DirGuardedBy)
		}
		if guard == "" && len(gd.Specs) == 1 {
			guard = directiveArg(gd.Doc, DirGuardedBy)
		}
		if guard == "" {
			continue
		}
		var guardObj types.Object
		if pkg.Types != nil {
			guardObj = pkg.Types.Scope().Lookup(guard)
		}
		for _, id := range vs.Names {
			obj := pkg.Info.Defs[id]
			if obj == nil {
				continue
			}
			f.Guarded[obj] = GuardFact{Guard: guard, GuardObj: guardObj}
		}
	}
}

// directiveArg returns the argument of the named directive inside a
// comment group, or "".
func directiveArg(cg *ast.CommentGroup, want string) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		name, arg, ok := parseDirective(c.Text)
		if ok && name == want {
			return arg
		}
	}
	return ""
}
