package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTree materializes a file map under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// driverModule is a module with one broken package, one package that
// imports it (so type-checking fails transitively), and one clean
// package with a finding. The driver must report both load errors AND
// the finding — lenient loading is the whole point.
var driverModule = map[string]string{
	"go.mod": "module drv\n\ngo 1.22\n",

	"broken/broken.go": `package broken

func oops( {
`,

	"importer/importer.go": `package importer

import "drv/broken"

var _ = broken.X
`,

	"dirty/dirty.go": `package dirty

func eq(a, b float64) bool { return a == b }
`,

	"clean/clean.go": `package clean

func ok() int { return 1 }
`,
}

func newDriver(t *testing.T, root string, workers int) *Driver {
	t.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return &Driver{Loader: loader, Workers: workers}
}

func TestDriverLenientLoading(t *testing.T) {
	root := writeTree(t, driverModule)
	report, err := newDriver(t, root, 1).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.LoadErrors) != 2 {
		t.Fatalf("want 2 load errors (broken, importer), got %v", report.LoadErrors)
	}
	var dirs []string
	for _, le := range report.LoadErrors {
		dirs = append(dirs, le.Dir)
	}
	if dirs[0] != "broken" || dirs[1] != "importer" {
		t.Errorf("load error dirs = %v, want [broken importer]", dirs)
	}
	// The finding in dirty must still surface despite the broken
	// packages.
	if len(report.Findings) != 1 || report.Findings[0].Analyzer != "floatcmp" {
		t.Fatalf("want the dirty/ floatcmp finding, got %v", report.Findings)
	}
	if report.Findings[0].File != "dirty/dirty.go" {
		t.Errorf("finding file = %q, want module-relative dirty/dirty.go", report.Findings[0].File)
	}
	if report.Packages != 2 {
		t.Errorf("packages analyzed = %d, want 2 (dirty, clean)", report.Packages)
	}
	if report.ExitCode() != 2 {
		t.Errorf("exit code = %d, want 2 (load errors dominate findings)", report.ExitCode())
	}
}

func TestDriverParallelMatchesSerial(t *testing.T) {
	// Run the suite over this repository itself twice — serial and with
	// an oversubscribed pool — and require byte-identical reports.
	// Package-parallel analysis must not perturb ordering or content.
	serial, err := newDriver(t, "../..", 1).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := newDriver(t, "../..", 8).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("parallel report differs from serial:\nserial:\n%s\nparallel:\n%s", a, b)
	}
}

func TestReportJSONGolden(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module golden\n\ngo 1.22\n",
		"p/p.go": `package p

func eq(a, b float64) bool { return a == b }
`,
	})
	report, err := newDriver(t, root, 1).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "module": "golden",
  "packages": 1,
  "findings": [
    {
      "analyzer": "floatcmp",
      "file": "p/p.go",
      "line": 3,
      "col": 39,
      "message": "floating-point values a and b compared with ==; compare against an explicit sentinel constant or use a tolerance"
    }
  ]
}
`
	if string(data) != want {
		t.Errorf("JSON report mismatch:\ngot:\n%s\nwant:\n%s", data, want)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("JSON report must end with a newline")
	}
}

func TestReportJSONEmptyFindings(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module empty\n\ngo 1.22\n",
		"p/p.go": "package p\n\nfunc ok() {}\n",
	})
	report, err := newDriver(t, root, 1).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// A clean run must serialize findings as [], never null — consumers
	// iterate the array without nil checks.
	if !strings.Contains(string(data), `"findings": []`) {
		t.Errorf("clean report must have \"findings\": [], got:\n%s", data)
	}
	if report.ExitCode() != 0 {
		t.Errorf("clean exit code = %d, want 0", report.ExitCode())
	}
}

func TestBaselineDiff(t *testing.T) {
	mk := func(analyzer, file, msg string) Finding {
		return Finding{Analyzer: analyzer, File: file, Message: msg}
	}
	report := &Report{Findings: []Finding{
		mk("floatcmp", "a.go", "m1"),
		mk("floatcmp", "a.go", "m1"), // duplicate message: multiset semantics
		mk("errdrop", "b.go", "m2"),
	}}

	t.Run("exact match", func(t *testing.T) {
		bl := NewBaseline(report)
		news, stale := bl.Diff(report)
		if len(news) != 0 || len(stale) != 0 {
			t.Errorf("self-diff must be empty, got new=%v stale=%v", news, stale)
		}
	})

	t.Run("new finding", func(t *testing.T) {
		bl := &Baseline{Version: 1, Findings: []BaselineEntry{
			{Analyzer: "floatcmp", File: "a.go", Message: "m1"},
			{Analyzer: "floatcmp", File: "a.go", Message: "m1"},
		}}
		news, stale := bl.Diff(report)
		if len(news) != 1 || news[0].Analyzer != "errdrop" {
			t.Errorf("want the errdrop finding as new, got %v", news)
		}
		if len(stale) != 0 {
			t.Errorf("want no stale entries, got %v", stale)
		}
	})

	t.Run("stale entry", func(t *testing.T) {
		bl := NewBaseline(report)
		bl.Findings = append(bl.Findings, BaselineEntry{Analyzer: "panicstyle", File: "c.go", Message: "gone"})
		news, stale := bl.Diff(report)
		if len(news) != 0 {
			t.Errorf("want no new findings, got %v", news)
		}
		if len(stale) != 1 || stale[0].Analyzer != "panicstyle" {
			t.Errorf("want the panicstyle entry as stale, got %v", stale)
		}
	})

	t.Run("multiset counts", func(t *testing.T) {
		// Baseline has the duplicate once; the second occurrence is new.
		bl := &Baseline{Version: 1, Findings: []BaselineEntry{
			{Analyzer: "floatcmp", File: "a.go", Message: "m1"},
			{Analyzer: "errdrop", File: "b.go", Message: "m2"},
		}}
		news, stale := bl.Diff(report)
		if len(news) != 1 || news[0].Message != "m1" {
			t.Errorf("want the second m1 occurrence as new, got %v", news)
		}
		if len(stale) != 0 {
			t.Errorf("want no stale entries, got %v", stale)
		}
	})
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	bl := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "floatcmp", File: "a.go", Message: "m1"},
	}}
	if err := bl.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bl, got) {
		t.Errorf("round-trip mismatch: wrote %+v, read %+v", bl, got)
	}
	// The file itself must be stable, valid JSON with a trailing newline
	// (it is committed and diffed in review).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(raw), "\n") {
		t.Error("baseline file must end with a newline")
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("baseline file is not valid JSON: %v", err)
	}
}
